// Quickstart: send one anonymously routed message through a DTN.
//
// This example provisions a 20-node delay tolerant network with onion
// groups of size 4, builds a real layered-encryption onion for a
// message from node 0 to node 19 through K = 3 onion groups, and
// drives the network with synthetic contacts until the message is
// delivered. Along the way it prints what each hand-off looks like
// from the outside: ciphertext only.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Provision the network: nodes, onion groups, and group keys.
	nw, err := node.NewNetwork(node.Config{Nodes: 20, GroupSize: 4, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("provisioned %d nodes in %d onion groups of size %d\n",
		20, nw.Directory().NumGroups(), nw.Directory().GroupSize())

	// 2. Node 0 sends an encrypted message to node 19 through 3 onion
	//    groups. The onion is padded so its size reveals nothing.
	const secret = "meet where the river bends, 06:00"
	src, dst := nw.Node(0), nw.Node(19)
	msgID, err := src.Send(node.SendSpec{
		Dst:     19,
		Payload: []byte(secret),
		Relays:  3,
		Copies:  1,
		PadTo:   2048,
	}, rng.New(7))
	if err != nil {
		return err
	}
	fmt.Printf("node 0 -> node 19: onion built, message id %s...\n", msgID[:8])

	// 3. Drive the DTN: nodes meet opportunistically (exponential
	//    inter-contact times, 1-30 minute means) and hand the onion
	//    along the group path.
	graph := contact.NewRandom(20, 1, 30, rng.New(9))
	contacts := nw.DriveSynthetic(graph, 1e6, rng.New(11), func() bool {
		return dst.DeliveredCount() > 0
	})
	fmt.Printf("simulated %d contacts\n", contacts)

	// 4. The destination — and only the destination — recovers the
	//    payload.
	payload, ok := dst.Delivered(msgID)
	if !ok {
		return fmt.Errorf("message was not delivered")
	}
	fmt.Printf("node 19 decrypted: %q\n", payload)

	// 5. Inspect the relays: they carried and peeled layers but never
	//    saw the payload or the endpoints.
	total := nw.TotalStats()
	fmt.Printf("hand-offs: %d (K+1 = 4 expected for a single copy)\n", total.Forwarded)
	for i := contact.NodeID(1); i < 19; i++ {
		if s := nw.Node(i).Stats(); s.Carried > 0 {
			fmt.Printf("  relay node %2d carried the onion one hop (payload never visible to it)\n", i)
		}
	}
	return nil
}
