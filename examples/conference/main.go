// Conference: the multi-copy tradeoff on a human-contact trace.
//
// The paper's Infocom 2005 evaluation (Sec. V-E) shows the central
// tension of multi-copy anonymous routing: extra copies L buy delivery
// rate and delay, but every copy exposes another path to compromised
// observers, lowering path anonymity (Figs. 17 and 19).
//
// This example replays an Infocom-like conference trace (41 devices,
// bursty contacts during session breaks, silent nights) and sweeps
// L in {1, 2, 3, 5}: for each it reports the delivery rate at three
// deadlines, the mean transmissions, and the analytical path anonymity
// under 20% compromised devices — the table a deployer would use to
// pick L.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

const (
	groupSize   = 5
	relays      = 3
	compromised = 0.20
	trials      = 80
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conference:", err)
		os.Exit(1)
	}
}

func run() error {
	tr, err := trace.GenerateInfocom(rng.New(2025))
	if err != nil {
		return err
	}
	st := tr.Summarize()
	fmt.Printf("conference trace: %d devices, %d contacts over %.1f days (density %.2f)\n\n",
		st.Nodes, st.Contacts, st.Duration/86400, st.PairDensity)

	tn, err := core.NewTraceNetwork(tr, 7)
	if err != nil {
		return err
	}

	deadlines := []float64{256, 4096, 65536} // seconds, spanning the diurnal plateau
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "L\tdelivery@256s\tdelivery@4096s\tdelivery@18h\ttransmissions\tanonymity (c/n=20%)")
	for _, l := range []int{1, 2, 3, 5} {
		ecdf := stats.NewECDF()
		var tx stats.Accumulator
		for i := 0; i < trials; i++ {
			trial, err := tn.NewTrial(l*100000+i, groupSize, relays)
			if err != nil {
				return err
			}
			res, err := tn.Route(trial, deadlines[len(deadlines)-1], l, true, true)
			if err != nil {
				return err
			}
			if res.Delivered {
				ecdf.Observe(res.Time - trial.Start)
			} else {
				ecdf.ObserveCensored()
			}
			tx.Add(float64(res.Transmissions))
		}
		anonymity := model.PathAnonymityMultiCopyExact(st.Nodes, relays+1, groupSize, compromised, l)
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.1f\t%.3f\n",
			l, ecdf.At(deadlines[0]), ecdf.At(deadlines[1]), ecdf.At(deadlines[2]),
			tx.Mean(), anonymity)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - delivery stalls between ~256s and ~4096s: the silent session breaks (Fig. 17)")
	fmt.Println("  - more copies help delivery only marginally on this trace — copies tend to")
	fmt.Println("    traverse the same few well-connected relays (Sec. V-E)")
	fmt.Println("  - anonymity strictly decreases with L (Fig. 19): pick the smallest L that")
	fmt.Println("    meets the delivery requirement")
	return nil
}
