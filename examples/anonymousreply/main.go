// Anonymous reply: two-way communication without either party
// learning the other's location.
//
// The paper's protocols deliver a message from v_s to v_d without
// revealing the endpoints to relays. But how does v_d *answer* without
// knowing who asked? This example demonstrates the reply-onion
// extension (following classic onion routing): the requester pre-builds
// a reply header routed through onion groups back to itself and ships
// it inside the forward onion. Each reply relay finds a fresh hop key
// in the header and re-encrypts the response with it, so the payload
// is unlinkable across hops; the requester, who minted the keys,
// strips the layers.
//
// The example uses real cryptography end to end and realizes both
// paths with the contact-graph sampler, so the hop sequence is an
// actual opportunistic routing outcome, not a fixed walk.
//
// Run with: go run ./examples/anonymousreply
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/onion"
	"repro/internal/rng"
	"repro/internal/routing"
)

const (
	nodes     = 30
	groupSize = 5
	relays    = 3
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "anonymousreply:", err)
		os.Exit(1)
	}
}

func run() error {
	root := rng.New(2016)
	dir, err := groups.NewPartition(nodes, groupSize, root.Split("partition"))
	if err != nil {
		return err
	}
	if err := dir.ProvisionKeys(); err != nil {
		return err
	}
	graph := contact.NewRandom(nodes, 1, 60, root.Split("graph"))

	requester, responder := contact.NodeID(0), contact.NodeID(29)

	// --- requester side: forward onion with an embedded reply header.
	fwdPath, err := dir.SelectPath(requester, responder, relays, root.Split("fwd"))
	if err != nil {
		return err
	}
	replyPath, err := dir.SelectPath(responder, requester, relays, root.Split("rev"))
	if err != nil {
		return err
	}
	replyHops, err := hopsFor(dir, replyPath)
	if err != nil {
		return err
	}
	ownerCipher, err := dir.NodeCipher(requester)
	if err != nil {
		return err
	}
	replyHeader, hopKeys, err := onion.BuildReply(
		onion.NodeID(requester), []byte("query#42"), replyHops, ownerCipher, 4096)
	if err != nil {
		return err
	}
	question := append([]byte("QUERY: status of sector 9?\n---reply-header---\n"), replyHeader...)
	fwdHops, err := hopsFor(dir, fwdPath)
	if err != nil {
		return err
	}
	respCipher, err := dir.NodeCipher(responder)
	if err != nil {
		return err
	}
	fwdOnion, err := onion.Build(onion.NodeID(responder), question, fwdHops, respCipher, 8192)
	if err != nil {
		return err
	}
	fmt.Printf("requester %d built a %d-byte forward onion embedding a %d-byte reply header\n",
		requester, len(fwdOnion), len(replyHeader))

	// --- forward trip: realize the path opportunistically, then walk
	// the real ciphertext along it.
	fwdResult, err := routing.SampleOnion(graph, routing.Params{
		Src: requester, Dst: responder, Sets: dir.PathMembers(fwdPath), Copies: 1,
	}, 1e6, root.Split("fwdsim"))
	if err != nil {
		return err
	}
	fwdCopy, ok := fwdResult.DeliveredCopy()
	if !ok {
		return fmt.Errorf("forward message not delivered")
	}
	fmt.Printf("forward path realized in %.0f min: ", fwdResult.Time)
	payload := fwdOnion
	for _, visit := range fwdCopy.Visits[1 : len(fwdCopy.Visits)-1] {
		cipher, err := dir.MemberCipher(visit.Node, fwdPath[visit.Stage-1])
		if err != nil {
			return err
		}
		peeled, err := onion.Peel(payload, cipher)
		if err != nil {
			return fmt.Errorf("relay %d failed to peel: %w", visit.Node, err)
		}
		payload = peeled.Inner
		fmt.Printf("%d ", visit.Node)
	}
	fmt.Println("-> responder")
	plain, err := onion.Unwrap(payload, respCipher)
	if err != nil {
		return err
	}
	parts := bytes.SplitN(plain, []byte("\n---reply-header---\n"), 2)
	fmt.Printf("responder %d decrypted: %q (+ reply header)\n", responder, parts[0])

	// --- reply trip: responder attaches its answer; relays wrap it.
	replyResult, err := routing.SampleOnion(graph, routing.Params{
		Src: responder, Dst: requester, Sets: dir.PathMembers(replyPath), Copies: 1,
	}, 1e6, root.Split("revsim"))
	if err != nil {
		return err
	}
	replyCopy, ok := replyResult.DeliveredCopy()
	if !ok {
		return fmt.Errorf("reply not delivered")
	}
	answer := []byte("REPLY: sector 9 clear, resupply at dusk")
	header := parts[1]
	fmt.Printf("reply path realized in %.0f min: ", replyResult.Time)
	for _, visit := range replyCopy.Visits[1 : len(replyCopy.Visits)-1] {
		cipher, err := dir.MemberCipher(visit.Node, replyPath[visit.Stage-1])
		if err != nil {
			return err
		}
		peeled, err := onion.PeelReply(header, cipher)
		if err != nil {
			return fmt.Errorf("reply relay %d failed to peel: %w", visit.Node, err)
		}
		answer, err = onion.WrapReplyPayload(answer, peeled.HopKey)
		if err != nil {
			return err
		}
		header = peeled.Inner
		fmt.Printf("%d ", visit.Node)
	}
	fmt.Println("-> requester")

	// --- requester strips the layers and matches the tag.
	tag, err := onion.OpenReplyTag(header, ownerCipher)
	if err != nil {
		return err
	}
	got, err := onion.UnwrapReplyPayload(answer, hopKeys)
	if err != nil {
		return err
	}
	fmt.Printf("requester matched tag %q and decrypted: %q\n", tag, got)
	fmt.Println("neither endpoint, nor any relay, ever saw both identities together")
	return nil
}

func hopsFor(dir *groups.Directory, path []onion.GroupID) ([]onion.Hop, error) {
	hops := make([]onion.Hop, len(path))
	for i, gid := range path {
		c, err := dir.GroupCipher(gid)
		if err != nil {
			return nil, err
		}
		hops[i] = onion.Hop{Group: gid, Cipher: c}
	}
	return hops, nil
}
