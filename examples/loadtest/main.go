// Loadtest: system-level behaviour under sustained anonymous traffic.
//
// The paper evaluates one message at a time; a deployment carries a
// stream. This example offers 120 messages (Poisson arrivals, ~1 per
// minute) to a 40-node network with real onion cryptography and
// compares three configurations a deployer would weigh:
//
//  1. multi-copy spray, unlimited buffers, no acknowledgements —
//     highest delivery, but stale copies accumulate forever;
//  2. the same with anti-packet delivery ACKs — same delivery,
//     buffers drain;
//  3. tight per-node buffers (custody refusal) — the degradation mode
//     when storage is scarce.
//
// Run with: go run ./examples/loadtest
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/workload"
)

const (
	nodes   = 40
	horizon = 2000 // minutes
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

type outcome struct {
	name     string
	result   *workload.Result
	residual int
}

func runConfig(name string, cfg node.Config) (outcome, error) {
	cfg.Nodes = nodes
	cfg.GroupSize = 5
	nw, err := node.NewNetwork(cfg)
	if err != nil {
		return outcome{}, err
	}
	g := contact.NewRandom(nodes, 1, 30, rng.New(99))
	res, err := workload.Run(nw, g, workload.Spec{
		Messages:     120,
		ArrivalRate:  1,
		PayloadSize:  256,
		Relays:       3,
		Copies:       3,
		PadTo:        2048,
		ExpiryAfter:  600,
		Seed:         7,
		TrackBuffers: true,
	}, horizon)
	if err != nil {
		return outcome{}, err
	}
	residual := 0
	for i := 0; i < nodes; i++ {
		residual += nw.Node(contact.NodeID(i)).BufferLen()
	}
	return outcome{name: name, result: res, residual: residual}, nil
}

func run() error {
	fmt.Printf("offering 120 onion-routed messages (L=3 spray, K=3, 10h deadline) to %d nodes over %d min\n\n", nodes, horizon)
	configs := []struct {
		name string
		cfg  node.Config
	}{
		{"spray, unlimited buffers", node.Config{Seed: 1, Spray: true}},
		{"spray + anti-packets", node.Config{Seed: 1, Spray: true, AntiPackets: true}},
		{"spray, 2-onion buffers", node.Config{Seed: 1, Spray: true, BufferLimit: 2}},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tdelivery\tmean delay (min)\tpeak buffered\tresidual onions\trefused\tpurged")
	for _, c := range configs {
		out, err := runConfig(c.name, c.cfg)
		if err != nil {
			return err
		}
		r := out.result
		fmt.Fprintf(tw, "%s\t%.2f\t%.0f\t%d\t%d\t%d\t%d\n",
			out.name, r.DeliveryRate, r.Delay.Mean, r.PeakBuffered, out.residual,
			r.Totals.Refused, r.Totals.Purged)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - anti-packets keep delivery while draining stale copies (purged > 0, residual ~ 0)")
	fmt.Println("  - tight buffers trade delivery for storage: custody refusals appear")
	return nil
}
