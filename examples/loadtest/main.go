// Loadtest: system-level behaviour under sustained anonymous traffic.
//
// The paper evaluates one message at a time; a deployment carries a
// stream. This example offers an open-loop Poisson stream (~1 message
// per minute for 120 minutes — injection pressure never adapts to how
// the network copes, so saturation is visible instead of silently
// throttled) to a 40-node network with real onion cryptography and
// compares three configurations a deployer would weigh:
//
//  1. multi-copy spray, unlimited buffers, no acknowledgements —
//     highest delivery, but stale copies accumulate forever;
//  2. the same with anti-packet delivery ACKs — same delivery,
//     buffers drain;
//  3. tight per-node buffers (custody refusal) — the degradation mode
//     when storage is scarce.
//
// Latency columns degrade to an explicit "n/a (nothing delivered)"
// when a configuration delivers nothing; no NaNs.
//
// Run with: go run ./examples/loadtest
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/workload"
)

const (
	nodes   = 40
	horizon = 120  // injection window, minutes
	drain   = 1880 // extra contact time for in-flight messages, minutes
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

type outcome struct {
	name     string
	result   *workload.OpenLoopResult
	residual int
}

func runConfig(name string, cfg node.Config) (outcome, error) {
	cfg.Nodes = nodes
	cfg.GroupSize = 5
	nw, err := node.NewNetwork(cfg)
	if err != nil {
		return outcome{}, err
	}
	g := contact.NewRandom(nodes, 1, 30, rng.New(99))
	res, err := workload.RunOpenLoop(nw, g, workload.OpenLoopSpec{
		Arrivals:     workload.Arrivals{Rate: 1},
		Horizon:      horizon,
		Drain:        drain,
		PayloadSize:  256,
		Relays:       3,
		Copies:       3,
		PadTo:        2048,
		ExpiryAfter:  600,
		Seed:         7,
		TrackBuffers: true,
	})
	if err != nil {
		return outcome{}, err
	}
	residual := 0
	for i := 0; i < nodes; i++ {
		residual += nw.Node(contact.NodeID(i)).BufferLen()
	}
	return outcome{name: name, result: res, residual: residual}, nil
}

func run() error {
	fmt.Printf("offering an open-loop onion stream (1/min for %d min; L=3 spray, K=3, 10h deadline) to %d nodes\n\n", horizon, nodes)
	configs := []struct {
		name string
		cfg  node.Config
	}{
		{"spray, unlimited buffers", node.Config{Seed: 1, Spray: true}},
		{"spray + anti-packets", node.Config{Seed: 1, Spray: true, AntiPackets: true}},
		{"spray, 2-onion buffers", node.Config{Seed: 1, Spray: true, BufferLimit: 2}},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tdelivery\tp50 delay\tp99 delay\tpeak buffered\tresidual onions\trefused\tpurged")
	for _, c := range configs {
		out, err := runConfig(c.name, c.cfg)
		if err != nil {
			return err
		}
		r := out.result
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%s\t%d\t%d\t%d\t%d\n",
			out.name, r.DeliveryRatio, r.FormatLatency(0.50), r.FormatLatency(0.99),
			r.PeakBuffered, out.residual, r.Totals.Refused, r.Totals.Purged)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - anti-packets keep delivery while draining stale copies (purged > 0, residual ~ 0)")
	fmt.Println("  - tight buffers trade delivery for storage: custody refusals appear")
	return nil
}
