// Battlefield: choosing onion parameters under node compromise.
//
// The paper's motivating scenario (Sec. I): in a battlefield DTN one
// endpoint is likely a commander, so disclosing the communicating
// parties or the routing path can be mission-fatal — and some fraction
// of carried devices must be assumed compromised.
//
// This example plays a planner choosing the onion group size g and the
// relay count K for a 100-unit network in which 15% of the devices are
// compromised. For each candidate configuration it reports, side by
// side, the analytical predictions (Eqs. 6, 12, 19) and simulation:
//
//   - delivery rate within a 6-hour deadline,
//   - expected traceable fraction of the routing path,
//   - expected path anonymity,
//
// then routes one real encrypted order through the chosen
// configuration with the message-level runtime.
//
// Run with: go run ./examples/battlefield
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/stats"
)

const (
	units       = 100  // devices in the field
	compromised = 0.15 // fraction assumed captured
	deadlineMin = 360  // 6-hour delivery requirement
	trials      = 300
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "battlefield:", err)
		os.Exit(1)
	}
}

type report struct {
	g, k           int
	simDelivery    float64
	modelDelivery  float64
	modelTraceable float64
	simTraceable   float64
	modelAnonymity float64
	simAnonymity   float64
}

func evaluate(g, k int) (report, error) {
	cfg := core.DefaultConfig()
	cfg.Nodes = units
	cfg.GroupSize = g
	cfg.Relays = k
	nw, err := core.NewNetwork(cfg)
	if err != nil {
		return report{}, err
	}
	rep := report{g: g, k: k,
		modelTraceable: nw.ModelTraceableRate(compromised),
		modelAnonymity: nw.ModelPathAnonymity(compromised),
	}
	var delivered int
	var modelAcc, trAcc, anAcc stats.Accumulator
	for i := 0; i < trials; i++ {
		trial, err := nw.NewTrial(i)
		if err != nil {
			return report{}, err
		}
		res, err := nw.Route(trial, deadlineMin, false, i)
		if err != nil {
			return report{}, err
		}
		if res.Delivered {
			delivered++
		}
		m, err := nw.ModelDelivery(trial, deadlineMin)
		if err != nil {
			return report{}, err
		}
		modelAcc.Add(m)
		sec, err := nw.FastSecurityTrial(compromised, i)
		if err != nil {
			return report{}, err
		}
		trAcc.Add(sec.TraceableRate)
		anAcc.Add(sec.PathAnonymity)
	}
	rep.simDelivery = float64(delivered) / trials
	rep.modelDelivery = modelAcc.Mean()
	rep.simTraceable = trAcc.Mean()
	rep.simAnonymity = anAcc.Mean()
	return rep, nil
}

func run() error {
	fmt.Printf("battlefield planning: %d units, %.0f%% assumed compromised, %d min deadline\n\n",
		units, compromised*100, deadlineMin)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "g\tK\tdelivery sim\tdelivery model\ttraceable sim\ttraceable model\tanonymity sim\tanonymity model")
	candidates := []struct{ g, k int }{
		{1, 3}, {5, 3}, {10, 3}, {5, 5}, {10, 5},
	}
	var best report
	for _, c := range candidates {
		rep, err := evaluate(c.g, c.k)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			rep.g, rep.k, rep.simDelivery, rep.modelDelivery,
			rep.simTraceable, rep.modelTraceable,
			rep.simAnonymity, rep.modelAnonymity)
		// Planner's rule: anonymity first, then delivery.
		if rep.simAnonymity > best.simAnonymity ||
			(rep.simAnonymity == best.simAnonymity && rep.simDelivery > best.simDelivery) {
			best = rep
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nchosen configuration: g=%d, K=%d — larger groups buy anonymity AND delivery\n",
		best.g, best.k)

	// Route one real order through the chosen configuration with full
	// cryptography.
	nw, err := node.NewNetwork(node.Config{Nodes: units, GroupSize: best.g, Seed: 99})
	if err != nil {
		return err
	}
	const order = "hold position until relieved; radio silence"
	msgID, err := nw.Node(0).Send(node.SendSpec{
		Dst: 77, Payload: []byte(order), Relays: best.k, Copies: 1, PadTo: 4096,
	}, rng.New(3))
	if err != nil {
		return err
	}
	graph := contact.NewRandom(units, 1, 360, rng.New(5))
	hq := nw.Node(77)
	nw.DriveSynthetic(graph, deadlineMin*10, rng.New(7), func() bool {
		return hq.DeliveredCount() > 0
	})
	if payload, ok := hq.Delivered(msgID); ok {
		fmt.Printf("order delivered under encryption: %q\n", payload)
	} else {
		fmt.Println("order not delivered within the extended horizon (opportunistic network)")
	}
	return nil
}
