package repro

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// benchOptions keeps one figure generation per benchmark iteration at
// a tractable cost while still exercising the full pipeline. Run with
// larger -benchtime (or cmd/figures with bigger run counts) for
// publication-quality curves. Workers is left at 0 (GOMAXPROCS) so
// `go test -bench Fig04 -cpu 1,4` measures the sequential-vs-parallel
// trial fan-out directly; the figures produced are byte-identical at
// every -cpu value.
func benchOptions() experiment.Options {
	return experiment.Options{Seed: 1, Runs: 120, SecurityRuns: 800, TraceRuns: 25, Workers: 0}
}

// benchFigure generates the figure once per iteration and sanity
// checks it, reporting the wall time per full regeneration.
func benchFigure(b *testing.B, gen experiment.Generator) {
	b.Helper()
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i + 1)
		fig, err := gen(opt)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig04DeliveryVsDeadlineByGroupSize regenerates Fig. 4:
// delivery rate vs. deadline for g in {1, 5, 10}.
func BenchmarkFig04DeliveryVsDeadlineByGroupSize(b *testing.B) { benchFigure(b, experiment.Fig04) }

// BenchmarkFig04Instrumented is BenchmarkFig04 with a live obs
// collector installed, as `-manifest` does. Comparing its ns/op
// against the uninstrumented benchmark measures the full
// observability overhead on a real figure (CI gates the ratio and
// publishes both as BENCH_obs.json).
func BenchmarkFig04Instrumented(b *testing.B) {
	obs.Install(obs.NewCollector())
	defer obs.Install(nil)
	benchFigure(b, experiment.Fig04)
}

// BenchmarkFig05DeliveryVsDeadlineByRelays regenerates Fig. 5:
// delivery rate vs. deadline for K in {3, 5, 10}.
func BenchmarkFig05DeliveryVsDeadlineByRelays(b *testing.B) { benchFigure(b, experiment.Fig05) }

// BenchmarkFig06TraceableVsCompromised regenerates Fig. 6: traceable
// rate vs. compromised rate for K in {3, 5, 10}.
func BenchmarkFig06TraceableVsCompromised(b *testing.B) { benchFigure(b, experiment.Fig06) }

// BenchmarkFig07TraceableVsRelays regenerates Fig. 7: traceable rate
// vs. number of onion relays for c/n in {10%, 20%, 30%}.
func BenchmarkFig07TraceableVsRelays(b *testing.B) { benchFigure(b, experiment.Fig07) }

// BenchmarkFig08AnonymityVsCompromised regenerates Fig. 8: path
// anonymity vs. compromised rate for g in {1, 5, 10}.
func BenchmarkFig08AnonymityVsCompromised(b *testing.B) { benchFigure(b, experiment.Fig08) }

// BenchmarkFig09AnonymityVsGroupSize regenerates Fig. 9: path
// anonymity vs. group size for c/n in {10%, 20%, 30%}.
func BenchmarkFig09AnonymityVsGroupSize(b *testing.B) { benchFigure(b, experiment.Fig09) }

// BenchmarkFig10DeliveryVsDeadlineByCopies regenerates Fig. 10:
// delivery rate vs. deadline for L in {1, 3, 5}.
func BenchmarkFig10DeliveryVsDeadlineByCopies(b *testing.B) { benchFigure(b, experiment.Fig10) }

// BenchmarkFig11TransmissionsVsCopies regenerates Fig. 11: message
// transmission cost vs. number of copies.
func BenchmarkFig11TransmissionsVsCopies(b *testing.B) { benchFigure(b, experiment.Fig11) }

// BenchmarkFig12AnonymityVsCompromisedByCopies regenerates Fig. 12:
// path anonymity vs. compromised rate for L in {1, 3, 5}.
func BenchmarkFig12AnonymityVsCompromisedByCopies(b *testing.B) { benchFigure(b, experiment.Fig12) }

// BenchmarkFig13AnonymityVsGroupSizeByCopies regenerates Fig. 13:
// path anonymity vs. group size for L in {1, 3}.
func BenchmarkFig13AnonymityVsGroupSizeByCopies(b *testing.B) { benchFigure(b, experiment.Fig13) }

// BenchmarkFig14CambridgeDelivery regenerates Fig. 14: delivery rate
// vs. deadline on the Cambridge trace.
func BenchmarkFig14CambridgeDelivery(b *testing.B) { benchFigure(b, experiment.Fig14) }

// BenchmarkFig15CambridgeTraceable regenerates Fig. 15: traceable rate
// vs. compromised rate on the Cambridge trace.
func BenchmarkFig15CambridgeTraceable(b *testing.B) { benchFigure(b, experiment.Fig15) }

// BenchmarkFig16CambridgeAnonymity regenerates Fig. 16: path anonymity
// vs. compromised rate on the Cambridge trace.
func BenchmarkFig16CambridgeAnonymity(b *testing.B) { benchFigure(b, experiment.Fig16) }

// BenchmarkFig17InfocomDelivery regenerates Fig. 17: delivery rate vs.
// deadline on the Infocom 2005 trace.
func BenchmarkFig17InfocomDelivery(b *testing.B) { benchFigure(b, experiment.Fig17) }

// BenchmarkFig18InfocomTraceable regenerates Fig. 18: traceable rate
// vs. compromised rate on the Infocom 2005 trace.
func BenchmarkFig18InfocomTraceable(b *testing.B) { benchFigure(b, experiment.Fig18) }

// BenchmarkFig19InfocomAnonymity regenerates Fig. 19: path anonymity
// vs. compromised rate on the Infocom 2005 trace.
func BenchmarkFig19InfocomAnonymity(b *testing.B) { benchFigure(b, experiment.Fig19) }

// BenchmarkAblationSpray regenerates the strict-vs-spray multi-copy
// ablation (DESIGN.md Sec. 5.3).
func BenchmarkAblationSpray(b *testing.B) { benchFigure(b, experiment.AblationSpray) }

// BenchmarkAblationTraceable regenerates the traceable-rate model
// reconstruction ablation (DESIGN.md Sec. 5.4).
func BenchmarkAblationTraceable(b *testing.B) { benchFigure(b, experiment.AblationTraceableModel) }

// BenchmarkAblationTPS regenerates the onion-vs-TPS comparison
// (Sec. VI-C extension).
func BenchmarkAblationTPS(b *testing.B) { benchFigure(b, experiment.AblationTPS) }

// BenchmarkAblationModelGap regenerates the delivery-model optimism
// decomposition (DESIGN.md Sec. 5.1).
func BenchmarkAblationModelGap(b *testing.B) { benchFigure(b, experiment.AblationModelGap) }

// BenchmarkAblationBaselines regenerates the price-of-anonymity
// comparison against non-anonymous DTN protocols (Sec. VI-A).
func BenchmarkAblationBaselines(b *testing.B) { benchFigure(b, experiment.AblationBaselines) }

// BenchmarkAblationPredecessor regenerates the predecessor-attack
// longitudinal experiment.
func BenchmarkAblationPredecessor(b *testing.B) { benchFigure(b, experiment.AblationPredecessor) }

// BenchmarkAblationBuffers regenerates the buffer-pressure experiment
// on the full-crypto runtime.
func BenchmarkAblationBuffers(b *testing.B) { benchFigure(b, experiment.AblationBuffers) }

// BenchmarkAblationFaults regenerates the fault-injection sweep:
// delivery/cost/anonymity vs. fault rate across the analysis, the
// abstract simulation, and the full-crypto runtime.
func BenchmarkAblationFaults(b *testing.B) { benchFigure(b, experiment.AblationFaults) }
