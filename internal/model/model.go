// Package model implements the paper's analytical contributions
// (Sec. IV): the opportunistic onion path delivery-rate model
// (Eqs. 3-7), the message forwarding cost bounds (Sec. IV-C), the
// traceable-rate model (Eqs. 1, 8-12), and the entropy-based path
// anonymity (Eqs. 13-20).
//
// All functions are pure; per-hop contact rates come from
// contact.GroupPathRates (Eq. 4) or trace estimation.
package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// ContactProbability returns Eq. 3: the probability that a pair with
// contact rate lambda meets within deadline T.
func ContactProbability(lambda, t float64) float64 {
	if lambda <= 0 || t <= 0 {
		return 0
	}
	return 1 - math.Exp(-lambda*t)
}

// DeliveryRate returns Eq. 6: the probability that a message delivered
// along an opportunistic onion path with per-hop aggregate rates
// lambda_k (from Eq. 4) arrives within deadline T. The path traversal
// time is hypoexponential with those rates.
func DeliveryRate(rates []float64, t float64) (float64, error) {
	v, err := numeric.HypoexpCDF(rates, t)
	if err != nil {
		return 0, fmt.Errorf("model: delivery rate: %w", err)
	}
	return v, nil
}

// DeliveryEvaluator is the reusable form of DeliveryRateMultiCopy:
// it fixes one (rates, copies) pair up front so a deadline sweep can
// evaluate Eq. 7 at many T values without re-deriving the
// hypoexponential coefficients each time. At returns bit-identical
// values to DeliveryRateMultiCopy with the same inputs because both
// run the same numeric.HypoexpEval.
type DeliveryEvaluator struct {
	eval *numeric.HypoexpEval
}

// NewDeliveryEvaluator scales every hop rate by the copy count
// (Eq. 7) and precomputes the CDF evaluation state.
func NewDeliveryEvaluator(rates []float64, copies int) (*DeliveryEvaluator, error) {
	if copies < 1 {
		return nil, fmt.Errorf("model: copies must be >= 1, got %d", copies)
	}
	scaled := make([]float64, len(rates))
	for i, r := range rates {
		scaled[i] = r * float64(copies)
	}
	eval, err := numeric.NewHypoexpEval(scaled)
	if err != nil {
		return nil, fmt.Errorf("model: multi-copy delivery rate: %w", err)
	}
	return &DeliveryEvaluator{eval: eval}, nil
}

// At returns the delivery probability within deadline t.
func (d *DeliveryEvaluator) At(t float64) float64 {
	return d.eval.CDF(t)
}

// DeliveryRateMultiCopy returns Eq. 7: with L copies in flight the
// expected per-hop delay divides by L, so every hop rate is multiplied
// by L.
func DeliveryRateMultiCopy(rates []float64, copies int, t float64) (float64, error) {
	ev, err := NewDeliveryEvaluator(rates, copies)
	if err != nil {
		return 0, err
	}
	return ev.At(t), nil
}

// CostSingleCopy returns the transmission count of single-copy onion
// routing: exactly K+1 forwardings (Sec. IV-C).
func CostSingleCopy(k int) int {
	if k < 1 {
		panic("model: K must be >= 1")
	}
	return k + 1
}

// CostMultiCopyBound returns the paper's transmission bound for L-copy
// forwarding: at most 1 + 2(L-1) transmissions on the first hop (one
// copy straight into R_1, L-1 copies sprayed to arbitrary relays that
// each forward into R_1) plus at most K*L transmissions from the second
// hop on — i.e. 2L - 1 + K*L <= (K+2)L (Sec. IV-C).
func CostMultiCopyBound(k, copies int) int {
	if k < 1 || copies < 1 {
		panic("model: K and L must be >= 1")
	}
	return 2*copies - 1 + k*copies
}

// CostNonAnonymous returns the paper's non-anonymous baseline: a
// routing protocol unconstrained by onions spends 2L transmissions for
// L copies (Sec. IV-C).
func CostNonAnonymous(copies int) int {
	if copies < 1 {
		panic("model: L must be >= 1")
	}
	return 2 * copies
}

// TraceableRateOfPath evaluates Eq. 1 on a realized path: bits[i] is
// true when the sender of hop i+1 is compromised (so the link it sends
// over is disclosed). The traceable rate is the sum over compromised
// segments of squared segment length, divided by eta^2.
func TraceableRateOfPath(bits []bool) float64 {
	eta := len(bits)
	if eta == 0 {
		return 0
	}
	return float64(stats.SumSquaredTrueRuns(bits)) / float64(eta*eta)
}

// TraceableRate returns the expected traceable rate (Eq. 12) of an
// eta-hop path when each hop's sender is independently compromised
// with probability p = c/n. This is the exact expectation of Eq. 1
// over Bernoulli bit strings, computed from the closed-form expected
// number of compromised segments of each length:
//
//	E[#runs of length k] = (eta-k-1) p^k (1-p)^2 + 2 p^k (1-p)   (k < eta)
//	E[#runs of length eta] = p^eta
//
// It reduces the problem to run lengths exactly as the paper's
// derivation does, without the small-c truncation of Eqs. 8-11 (see
// TraceableRatePaperApprox for that variant).
func TraceableRate(eta int, p float64) float64 {
	if eta <= 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	total := 0.0
	for k := 1; k < eta; k++ {
		pk := math.Pow(p, float64(k))
		runs := float64(eta-k-1)*pk*(1-p)*(1-p) + 2*pk*(1-p)
		total += float64(k*k) * runs
	}
	total += float64(eta*eta) * math.Pow(p, float64(eta))
	return numeric.Clamp01(total / float64(eta*eta))
}

// TraceableRatePaperApprox is the literal small-c approximation of
// Eqs. 8-12: at most eta/2 compromised segments, each with second
// moment E[X^2] = sum_k k^2 p^k (1-p) truncated at the remaining hops.
func TraceableRatePaperApprox(eta int, p float64) float64 {
	if eta <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	segments := (eta + 1) / 2
	total := 0.0
	for i := 1; i <= segments; i++ {
		limit := eta - i + 1
		e2 := 0.0
		for k := 1; k <= limit; k++ {
			e2 += float64(k*k) * math.Pow(p, float64(k)) * (1 - p)
		}
		total += e2
	}
	return numeric.Clamp01(total / float64(eta*eta))
}

// MaxEntropy returns Eq. 14: the entropy (bits) of the anonymous set
// of all acyclic eta-hop paths over n nodes, log2(n!/(n-eta)!).
func MaxEntropy(n, eta int) float64 {
	if eta < 1 || n < eta {
		panic(fmt.Sprintf("model: MaxEntropy requires 1 <= eta <= n, got eta=%d n=%d", eta, n))
	}
	return numeric.LogFallingFactorial(n, eta) / math.Ln2
}

// PathEntropy returns Eq. 17: the residual entropy when cO of the
// path's hops are compromised. An uncompromised hop leaves ~n
// candidate next routers; a compromised hop confines the next router
// to its onion group of size g (Eq. 16), so the anonymous set has
// n!/(n-eta+cO)! * g^cO members:
//
//	H = log2( n! * g^cO / (n - eta + cO)! )
//
// cO may be fractional (it is an expectation); the factorial is
// interpolated through the gamma function.
func PathEntropy(n, eta, g int, cO float64) float64 {
	if eta < 1 || n < eta {
		panic(fmt.Sprintf("model: PathEntropy requires 1 <= eta <= n, got eta=%d n=%d", eta, n))
	}
	if g < 1 {
		panic("model: group size must be >= 1")
	}
	cO = math.Max(0, math.Min(float64(eta), cO))
	lgNum, _ := math.Lgamma(float64(n) + 1)
	lgDen, _ := math.Lgamma(float64(n-eta) + cO + 1)
	h := (lgNum - lgDen + cO*math.Log(float64(g))) / math.Ln2
	return math.Max(0, h)
}

// PathAnonymityExact returns D = H(phi')/H_max using the exact
// factorial forms of Eqs. 14 and 17.
func PathAnonymityExact(n, eta, g int, cO float64) float64 {
	hm := MaxEntropy(n, eta)
	if hm == 0 {
		return 0
	}
	return numeric.Clamp01(PathEntropy(n, eta, g, cO) / hm)
}

// PathAnonymity returns Eq. 19, the paper's Stirling approximation of
// the anonymity degree:
//
//	D = ((eta - cO)(ln n - 1) + cO ln g) / (eta (ln n - 1))
//
// valid for n >> K (the paper's standing assumption).
func PathAnonymity(n, eta, g int, cO float64) float64 {
	if eta < 1 || n < 3 {
		panic(fmt.Sprintf("model: PathAnonymity requires eta >= 1 and n >= 3, got eta=%d n=%d", eta, n))
	}
	if g < 1 {
		panic("model: group size must be >= 1")
	}
	cO = math.Max(0, math.Min(float64(eta), cO))
	lnN1 := math.Log(float64(n)) - 1
	d := ((float64(eta)-cO)*lnN1 + cO*math.Log(float64(g))) / (float64(eta) * lnN1)
	return numeric.Clamp01(d)
}

// ExpectedCompromisedOnPath returns Eq. 15: E[Y], the expected number
// of compromised hops on an eta-hop path when each on-path node is
// compromised with probability p = c/n. (The binomial mean eta*p,
// computed as the paper's explicit sum.)
func ExpectedCompromisedOnPath(eta int, p float64) float64 {
	if eta < 0 {
		panic("model: eta must be >= 0")
	}
	e := 0.0
	for i := 0; i <= eta; i++ {
		e += float64(i) * numeric.BinomialPMF(eta, i, p)
	}
	return e
}

// ExpectedCompromisedGroupsMultiCopy returns Eq. 20: E[Y'], the
// expected number of hop positions at which at least one of the L
// per-copy relays is compromised. Each position is compromised with
// probability 1 - (1-p)^L.
func ExpectedCompromisedGroupsMultiCopy(eta int, p float64, copies int) float64 {
	if copies < 1 {
		panic("model: L must be >= 1")
	}
	q := 1 - math.Pow(1-clampProb(p), float64(copies))
	e := 0.0
	for i := 0; i <= eta; i++ {
		e += float64(i) * numeric.BinomialPMF(eta, i, q)
	}
	return e
}

// PathAnonymitySingleCopy composes Eqs. 15 and 19: the expected
// anonymity degree for single-copy forwarding with compromise
// probability p = c/n.
func PathAnonymitySingleCopy(n, eta, g int, p float64) float64 {
	cO := ExpectedCompromisedOnPath(eta, clampProb(p))
	return PathAnonymity(n, eta, g, cO)
}

// PathAnonymityMultiCopy composes Eqs. 20 and 19: the expected
// anonymity degree for L-copy forwarding (Sec. IV-F).
func PathAnonymityMultiCopy(n, eta, g int, p float64, copies int) float64 {
	cO := ExpectedCompromisedGroupsMultiCopy(eta, clampProb(p), copies)
	return PathAnonymity(n, eta, g, cO)
}

// PathAnonymityMultiCopyExact composes Eq. 20 with the exact entropy
// ratio of Eqs. 14/17. Use this instead of the Stirling form when the
// n >> K premise of Eq. 19 fails — e.g. the Cambridge trace (n = 12,
// g = 10), where Eq. 19's (ln n - 1) denominator would make anonymity
// *increase* with compromise.
func PathAnonymityMultiCopyExact(n, eta, g int, p float64, copies int) float64 {
	cO := ExpectedCompromisedGroupsMultiCopy(eta, clampProb(p), copies)
	return PathAnonymityExact(n, eta, g, cO)
}

func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
