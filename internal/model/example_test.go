package model_test

import (
	"fmt"

	"repro/internal/model"
)

// ExampleDeliveryRate evaluates Eq. 6 for a 3-group onion path whose
// per-hop aggregate rates came from Eq. 4.
func ExampleDeliveryRate() {
	rates := []float64{0.08, 0.07, 0.09, 0.06} // per minute, eta = K+1 = 4 hops
	for _, deadline := range []float64{60, 180, 600} {
		p, err := model.DeliveryRate(rates, deadline)
		if err != nil {
			panic(err)
		}
		fmt.Printf("P[delivered within %4.0f min] = %.3f\n", deadline, p)
	}
	// Output:
	// P[delivered within   60 min] = 0.641
	// P[delivered within  180 min] = 0.999
	// P[delivered within  600 min] = 1.000
}

// ExamplePathAnonymitySingleCopy evaluates the Eq. 15 + Eq. 19
// pipeline: expected anonymity of a K=3 path in a 100-node network at
// increasing compromise levels.
func ExamplePathAnonymitySingleCopy() {
	for _, frac := range []float64{0, 0.1, 0.3} {
		d := model.PathAnonymitySingleCopy(100, 4, 5, frac)
		fmt.Printf("c/n = %.0f%%: D = %.3f\n", frac*100, d)
	}
	// Output:
	// c/n = 0%: D = 1.000
	// c/n = 10%: D = 0.945
	// c/n = 30%: D = 0.834
}

// ExampleCostMultiCopyBound shows the Sec. IV-C transmission bounds.
func ExampleCostMultiCopyBound() {
	const k = 3
	for _, l := range []int{1, 3, 5} {
		fmt.Printf("L=%d: onion <= %2d, non-anonymous = %2d\n",
			l, model.CostMultiCopyBound(k, l), model.CostNonAnonymous(l))
	}
	// Output:
	// L=1: onion <=  4, non-anonymous =  2
	// L=3: onion <= 14, non-anonymous =  6
	// L=5: onion <= 24, non-anonymous = 10
}

// ExampleTraceableRateOfPath reproduces the paper's Sec. II-C example:
// compromising v1, v2, v4 on the 4-hop path v1 v2 v3 v4 v5 discloses
// segments of lengths 2 and 1.
func ExampleTraceableRateOfPath() {
	bits := []bool{true, true, false, true} // senders v1, v2, v4 compromised
	fmt.Printf("traceable rate = %.4f\n", model.TraceableRateOfPath(bits))
	// Output:
	// traceable rate = 0.3125
}
