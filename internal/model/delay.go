package model

import (
	"fmt"
	"math"
)

// Delay-side views of the opportunistic onion path model. The paper
// reports delivery *rate* curves; planners usually want the inverse
// questions — "how long until p% of messages arrive?" and "what is the
// expected delay?" — which the hypoexponential structure answers in
// closed form or by monotone inversion.

// ExpectedDelay returns the mean end-to-end traversal time of an
// opportunistic onion path: the hypoexponential mean, the sum of
// per-hop mean inter-contact times 1/lambda_k.
func ExpectedDelay(rates []float64) (float64, error) {
	if len(rates) == 0 {
		return 0, fmt.Errorf("model: no rates")
	}
	sum := 0.0
	for k, r := range rates {
		if r <= 0 {
			return 0, fmt.Errorf("model: hop %d has non-positive rate %v", k+1, r)
		}
		sum += 1 / r
	}
	return sum, nil
}

// DelayVariance returns the variance of the traversal time: the sum of
// per-hop exponential variances 1/lambda_k^2.
func DelayVariance(rates []float64) (float64, error) {
	if len(rates) == 0 {
		return 0, fmt.Errorf("model: no rates")
	}
	sum := 0.0
	for k, r := range rates {
		if r <= 0 {
			return 0, fmt.Errorf("model: hop %d has non-positive rate %v", k+1, r)
		}
		sum += 1 / (r * r)
	}
	return sum, nil
}

// ExpectedDelayMultiCopy returns the mean traversal time with L copies
// (Eq. 7's rate scaling: every hop's rate multiplies by L).
func ExpectedDelayMultiCopy(rates []float64, copies int) (float64, error) {
	if copies < 1 {
		return 0, fmt.Errorf("model: copies must be >= 1, got %d", copies)
	}
	mean, err := ExpectedDelay(rates)
	if err != nil {
		return 0, err
	}
	return mean / float64(copies), nil
}

// DeadlineForRate inverts the delivery-rate model: the smallest
// deadline T such that P_delivery(T) >= target. target must lie in
// (0, 1); rates must be positive.
func DeadlineForRate(rates []float64, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("model: target rate %v outside (0, 1)", target)
	}
	mean, err := ExpectedDelay(rates)
	if err != nil {
		return 0, err
	}
	// Bracket: the CDF is continuous and strictly increasing on
	// (0, inf). Grow the upper bound geometrically from the mean.
	lo, hi := 0.0, mean
	for {
		v, err := DeliveryRate(rates, hi)
		if err != nil {
			return 0, err
		}
		if v >= target {
			break
		}
		hi *= 2
		if hi > mean*1e9 {
			return 0, fmt.Errorf("model: target %v unreachable", target)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		v, err := DeliveryRate(rates, mid)
		if err != nil {
			return 0, err
		}
		if v >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// DelayPercentile returns the p-quantile (0 < p < 1) of the traversal
// time — the deadline by which a fraction p of messages arrive.
// Identical to DeadlineForRate; provided under the statistical name.
func DelayPercentile(rates []float64, p float64) (float64, error) {
	return DeadlineForRate(rates, p)
}
