package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestContactProbability(t *testing.T) {
	if ContactProbability(0, 10) != 0 || ContactProbability(1, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	got := ContactProbability(0.5, 2)
	want := 1 - math.Exp(-1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	if p := ContactProbability(10, 1000); p <= 0.999999 {
		t.Fatalf("long deadline should saturate, got %v", p)
	}
}

func TestDeliveryRateIncreasesWithDeadline(t *testing.T) {
	rates := []float64{0.1, 0.25, 0.4, 0.8}
	prev := 0.0
	for _, tt := range []float64{1, 5, 10, 50, 200} {
		v, err := DeliveryRate(rates, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("delivery rate decreased at T=%v", tt)
		}
		prev = v
	}
	if prev < 0.99 {
		t.Fatalf("delivery rate did not saturate: %v", prev)
	}
}

func TestDeliveryRateMultiCopyDominates(t *testing.T) {
	rates := []float64{0.05, 0.07, 0.09, 0.11}
	for _, tt := range []float64{5, 20, 60} {
		single, err := DeliveryRate(rates, tt)
		if err != nil {
			t.Fatal(err)
		}
		prev := single
		for _, l := range []int{2, 3, 5} {
			multi, err := DeliveryRateMultiCopy(rates, l, tt)
			if err != nil {
				t.Fatal(err)
			}
			if multi < prev-1e-9 {
				t.Fatalf("L=%d T=%v: delivery %v below L-1 value %v", l, tt, multi, prev)
			}
			prev = multi
		}
	}
}

func TestDeliveryRateMultiCopyLOneEqualsSingle(t *testing.T) {
	rates := []float64{0.05, 0.07, 0.09}
	a, err := DeliveryRate(rates, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeliveryRateMultiCopy(rates, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("L=1 differs from single copy: %v vs %v", a, b)
	}
}

func TestDeliveryRateMultiCopyValidation(t *testing.T) {
	if _, err := DeliveryRateMultiCopy([]float64{1}, 0, 1); err == nil {
		t.Fatal("accepted L=0")
	}
	if _, err := DeliveryRate(nil, 1); err == nil {
		t.Fatal("accepted empty rates")
	}
}

func TestCostFormulas(t *testing.T) {
	if CostSingleCopy(3) != 4 {
		t.Fatalf("CostSingleCopy(3) = %d", CostSingleCopy(3))
	}
	// L=1 multi-copy degenerates to single copy: 2*1-1+K = K+1.
	if CostMultiCopyBound(3, 1) != CostSingleCopy(3) {
		t.Fatalf("bound at L=1 is %d, want %d", CostMultiCopyBound(3, 1), CostSingleCopy(3))
	}
	// 2L-1+KL for K=3, L=5: 9+15 = 24 <= (K+2)L = 25.
	if CostMultiCopyBound(3, 5) != 24 {
		t.Fatalf("bound = %d", CostMultiCopyBound(3, 5))
	}
	if CostMultiCopyBound(3, 5) > (3+2)*5 {
		t.Fatal("tight bound exceeds the paper's (K+2)L")
	}
	if CostNonAnonymous(4) != 8 {
		t.Fatalf("non-anonymous cost = %d", CostNonAnonymous(4))
	}
}

func TestCostPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CostSingleCopy(0) },
		func() { CostMultiCopyBound(0, 1) },
		func() { CostMultiCopyBound(1, 0) },
		func() { CostNonAnonymous(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTraceableRateOfPathPaperExamples(t *testing.T) {
	// Sec. II-C: v1, v2, v4 compromised on a 4-hop path -> (2^2+1)/16.
	got := TraceableRateOfPath([]bool{true, true, false, true})
	if math.Abs(got-5.0/16.0) > 1e-12 {
		t.Fatalf("got %v want %v", got, 5.0/16.0)
	}
	// v2, v3, v4 compromised -> 3^2/16.
	got = TraceableRateOfPath([]bool{false, true, true, true})
	if math.Abs(got-9.0/16.0) > 1e-12 {
		t.Fatalf("got %v want %v", got, 9.0/16.0)
	}
	if TraceableRateOfPath(nil) != 0 {
		t.Fatal("empty path should have zero traceable rate")
	}
}

func TestTraceableRateEdges(t *testing.T) {
	if TraceableRate(4, 0) != 0 {
		t.Fatal("p=0 should give 0")
	}
	if TraceableRate(4, 1) != 1 {
		t.Fatal("p=1 should give 1 (entire path disclosed)")
	}
	if TraceableRate(0, 0.5) != 0 {
		t.Fatal("eta=0 should give 0")
	}
}

func TestTraceableRateMatchesMonteCarlo(t *testing.T) {
	s := rng.New(77)
	for _, eta := range []int{4, 6, 11} {
		for _, p := range []float64{0.05, 0.1, 0.3, 0.5} {
			const trials = 200000
			sum := 0.0
			bits := make([]bool, eta)
			for i := 0; i < trials; i++ {
				for k := range bits {
					bits[k] = s.Bernoulli(p)
				}
				sum += TraceableRateOfPath(bits)
			}
			emp := sum / trials
			got := TraceableRate(eta, p)
			if math.Abs(got-emp) > 0.005 {
				t.Fatalf("eta=%d p=%v: model %v vs Monte Carlo %v", eta, p, got, emp)
			}
		}
	}
}

func TestTraceableRateMonotone(t *testing.T) {
	f := func(rawEta, rawP uint8) bool {
		eta := int(rawEta%10) + 2
		p1 := float64(rawP%50) / 100
		p2 := p1 + 0.1
		return TraceableRate(eta, p2) >= TraceableRate(eta, p1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceableRateDecreasesWithMoreRelays(t *testing.T) {
	// Fig. 7: more onion routers -> smaller traceable portion.
	p := 0.2
	prev := 1.0
	for _, k := range []int{1, 3, 5, 10} {
		v := TraceableRate(k+1, p)
		if v > prev+1e-12 {
			t.Fatalf("traceable rate rose from %v to %v at K=%d", prev, v, k)
		}
		prev = v
	}
}

func TestTraceableRatePaperApproxCloseForSmallP(t *testing.T) {
	// The paper's approximation assumes c << n; within that regime it
	// should track the exact expectation within a small absolute gap.
	for _, eta := range []int{4, 6, 11} {
		for _, p := range []float64{0.01, 0.05, 0.1} {
			exact := TraceableRate(eta, p)
			approx := TraceableRatePaperApprox(eta, p)
			if math.Abs(exact-approx) > 0.05 {
				t.Fatalf("eta=%d p=%v: exact %v vs paper approx %v", eta, p, exact, approx)
			}
		}
	}
}

func TestMaxEntropy(t *testing.T) {
	// n=4, eta=2: 12 ordered paths -> log2(12).
	got := MaxEntropy(4, 2)
	if math.Abs(got-math.Log2(12)) > 1e-9 {
		t.Fatalf("got %v want %v", got, math.Log2(12))
	}
}

func TestPathEntropyNoCompromiseEqualsMax(t *testing.T) {
	for _, n := range []int{50, 100} {
		for _, eta := range []int{3, 4, 6} {
			if math.Abs(PathEntropy(n, eta, 5, 0)-MaxEntropy(n, eta)) > 1e-9 {
				t.Fatalf("n=%d eta=%d: H(0) != Hmax", n, eta)
			}
		}
	}
}

func TestPathAnonymityBounds(t *testing.T) {
	f := func(rawC, rawG uint8) bool {
		n, eta := 100, 4
		g := int(rawG%20) + 1
		cO := float64(rawC%5) * 0.9
		d := PathAnonymity(n, eta, g, cO)
		e := PathAnonymityExact(n, eta, g, cO)
		return d >= 0 && d <= 1 && e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPathAnonymityFullWhenNoCompromise(t *testing.T) {
	if d := PathAnonymity(100, 4, 5, 0); math.Abs(d-1) > 1e-12 {
		t.Fatalf("D(cO=0) = %v, want 1", d)
	}
	if d := PathAnonymityExact(100, 4, 5, 0); math.Abs(d-1) > 1e-12 {
		t.Fatalf("exact D(cO=0) = %v, want 1", d)
	}
}

func TestPathAnonymityDecreasesWithCompromise(t *testing.T) {
	prev := 2.0
	for _, cO := range []float64{0, 1, 2, 3, 4} {
		d := PathAnonymity(100, 4, 5, cO)
		if d > prev {
			t.Fatalf("anonymity rose at cO=%v", cO)
		}
		prev = d
	}
}

func TestPathAnonymityIncreasesWithGroupSize(t *testing.T) {
	// Fig. 9: larger groups -> higher anonymity.
	prev := -1.0
	for _, g := range []int{1, 2, 5, 10, 20} {
		d := PathAnonymity(100, 4, g, 2)
		if d < prev {
			t.Fatalf("anonymity fell at g=%d", g)
		}
		prev = d
	}
}

func TestPathAnonymityGroupOfOne(t *testing.T) {
	// g=1: a compromised hop is fully identified; D = (eta-cO)/eta.
	for _, cO := range []float64{0, 1, 2, 4} {
		d := PathAnonymity(100, 4, 1, cO)
		want := (4 - cO) / 4
		if math.Abs(d-want) > 1e-12 {
			t.Fatalf("g=1 cO=%v: D=%v want %v", cO, d, want)
		}
	}
}

func TestStirlingApproxTracksExact(t *testing.T) {
	// In the paper's validity regime (c << n, so cO well below eta) the
	// Stirling form of Eq. 19 must be close to the exact factorial
	// ratio.
	for _, g := range []int{1, 5, 10} {
		for _, cO := range []float64{0, 0.5, 1, 2} {
			exact := PathAnonymityExact(1000, 4, g, cO)
			approx := PathAnonymity(1000, 4, g, cO)
			if math.Abs(exact-approx) > 0.05 {
				t.Fatalf("g=%d cO=%v: exact %v vs Stirling %v", g, cO, exact, approx)
			}
		}
	}
}

func TestStirlingApproxGapShrinksWithN(t *testing.T) {
	// The (ln n - 1) artifact of the crude Stirling approximation
	// vanishes as n grows.
	gap := func(n int) float64 {
		return math.Abs(PathAnonymityExact(n, 4, 10, 4) - PathAnonymity(n, 4, 10, 4))
	}
	if !(gap(100000) < gap(1000)) {
		t.Fatalf("gap did not shrink: %v vs %v", gap(100000), gap(1000))
	}
}

func TestExpectedCompromisedOnPathIsBinomialMean(t *testing.T) {
	for _, eta := range []int{1, 4, 9} {
		for _, p := range []float64{0, 0.1, 0.5, 1} {
			got := ExpectedCompromisedOnPath(eta, p)
			if math.Abs(got-float64(eta)*p) > 1e-9 {
				t.Fatalf("eta=%d p=%v: got %v want %v", eta, p, got, float64(eta)*p)
			}
		}
	}
}

func TestExpectedCompromisedGroupsMultiCopy(t *testing.T) {
	// Eq. 20's mean is eta * (1 - (1-p)^L).
	eta, p, l := 4, 0.1, 3
	got := ExpectedCompromisedGroupsMultiCopy(eta, p, l)
	want := float64(eta) * (1 - math.Pow(1-p, float64(l)))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
	// L=1 must agree with the single-copy expectation.
	a := ExpectedCompromisedGroupsMultiCopy(eta, p, 1)
	b := ExpectedCompromisedOnPath(eta, p)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("L=1 mismatch: %v vs %v", a, b)
	}
}

func TestMultiCopyAnonymityBelowSingleCopy(t *testing.T) {
	// Fig. 12: more copies -> lower anonymity.
	n, eta, g := 100, 4, 5
	for _, p := range []float64{0.05, 0.1, 0.3} {
		prev := 2.0
		for _, l := range []int{1, 3, 5} {
			d := PathAnonymityMultiCopy(n, eta, g, p, l)
			if d > prev+1e-12 {
				t.Fatalf("p=%v: anonymity rose from L-1 to L=%d", p, l)
			}
			prev = d
		}
	}
	single := PathAnonymitySingleCopy(n, eta, g, 0.1)
	multi1 := PathAnonymityMultiCopy(n, eta, g, 0.1, 1)
	if math.Abs(single-multi1) > 1e-12 {
		t.Fatalf("single vs L=1: %v vs %v", single, multi1)
	}
}

func TestClampProb(t *testing.T) {
	if clampProb(-1) != 0 || clampProb(2) != 1 || clampProb(0.4) != 0.4 {
		t.Fatal("clampProb broken")
	}
}

func BenchmarkDeliveryRate(b *testing.B) {
	rates := []float64{0.11, 0.13, 0.17, 0.19}
	for i := 0; i < b.N; i++ {
		_, _ = DeliveryRate(rates, 600)
	}
}

func BenchmarkTraceableRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TraceableRate(11, 0.2)
	}
}

func BenchmarkPathAnonymity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PathAnonymityMultiCopy(100, 4, 5, 0.1, 3)
	}
}
