package model

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestExpectedDelay(t *testing.T) {
	got, err := ExpectedDelay([]float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-12 { // 2 + 4
		t.Fatalf("got %v, want 6", got)
	}
	if _, err := ExpectedDelay(nil); err == nil {
		t.Fatal("accepted empty rates")
	}
	if _, err := ExpectedDelay([]float64{1, 0}); err == nil {
		t.Fatal("accepted zero rate")
	}
}

func TestDelayVariance(t *testing.T) {
	got, err := DelayVariance([]float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-12 { // 4 + 16
		t.Fatalf("got %v, want 20", got)
	}
	if _, err := DelayVariance([]float64{-1}); err == nil {
		t.Fatal("accepted negative rate")
	}
}

func TestExpectedDelayMultiCopy(t *testing.T) {
	base, err := ExpectedDelay([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	triple, err := ExpectedDelayMultiCopy([]float64{0.1, 0.2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(triple-base/3) > 1e-12 {
		t.Fatalf("L=3 delay %v, want %v", triple, base/3)
	}
	if _, err := ExpectedDelayMultiCopy([]float64{0.1}, 0); err == nil {
		t.Fatal("accepted L=0")
	}
}

func TestExpectedDelayMatchesMonteCarlo(t *testing.T) {
	rates := []float64{0.3, 0.7, 1.3}
	want, err := ExpectedDelay(rates)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		for _, r := range rates {
			sum += s.Exp(r)
		}
	}
	got := sum / n
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("MC mean %v vs model %v", got, want)
	}
}

func TestDeadlineForRateInvertsCDF(t *testing.T) {
	rates := []float64{0.05, 0.11, 0.23, 0.47}
	for _, target := range []float64{0.1, 0.5, 0.9, 0.99} {
		d, err := DeadlineForRate(rates, target)
		if err != nil {
			t.Fatal(err)
		}
		v, err := DeliveryRate(rates, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-target) > 1e-6 {
			t.Fatalf("target %v: deadline %v gives rate %v", target, d, v)
		}
	}
}

func TestDeadlineForRateMonotoneInTarget(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.3}
	prev := 0.0
	for _, target := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		d, err := DeadlineForRate(rates, target)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Fatalf("deadline not increasing at target %v", target)
		}
		prev = d
	}
}

func TestDeadlineForRateValidation(t *testing.T) {
	if _, err := DeadlineForRate([]float64{1}, 0); err == nil {
		t.Fatal("accepted target 0")
	}
	if _, err := DeadlineForRate([]float64{1}, 1); err == nil {
		t.Fatal("accepted target 1")
	}
	if _, err := DeadlineForRate(nil, 0.5); err == nil {
		t.Fatal("accepted empty rates")
	}
}

func TestDelayPercentileAlias(t *testing.T) {
	rates := []float64{0.2, 0.4}
	a, err := DelayPercentile(rates, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeadlineForRate(rates, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("alias mismatch: %v vs %v", a, b)
	}
}

func BenchmarkDeadlineForRate(b *testing.B) {
	rates := []float64{0.05, 0.11, 0.23, 0.47}
	for i := 0; i < b.N; i++ {
		if _, err := DeadlineForRate(rates, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
