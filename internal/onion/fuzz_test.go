package onion

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/rng"
)

// fixedCipher builds a layer cipher from a deterministic key so fuzz
// seed corpora are stable across runs.
func fixedCipher(tb testing.TB, fill byte) *SymmetricCipher {
	tb.Helper()
	c, err := NewSymmetricCipher(bytes.Repeat([]byte{fill}, KeySize))
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// fixedOnion builds a 2-hop onion under deterministic keys and returns
// it with the outer-layer and destination ciphers.
func fixedOnion(tb testing.TB) (onion []byte, outer, dest *SymmetricCipher) {
	tb.Helper()
	outer = fixedCipher(tb, 0x11)
	inner := fixedCipher(tb, 0x22)
	dest = fixedCipher(tb, 0x33)
	hops := []Hop{{Group: 1, Cipher: outer}, {Group: 2, Cipher: inner}}
	on, err := Build(7, []byte("fuzz payload"), hops, dest, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return on, outer, dest
}

// FuzzPeel hammers layer decryption with arbitrary ciphertexts: it
// must never panic, and anything it accepts under the fuzzed key must
// be a structurally sane layer. The seed corpus includes the exact
// torn and flipped onions the fault layer produces.
func FuzzPeel(f *testing.F) {
	onion, outer, _ := fixedOnion(f)
	f.Add(onion)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(fault.Truncate(onion, len(onion)/2))
	f.Add(fault.Truncate(onion, 1))
	plan := fault.NewPlan(fault.Uniform(1), rng.New(2).Split("faults"))
	for i := 0; i < 8; i++ {
		h := plan.Handoff(len(onion))
		switch {
		case h.Truncate:
			f.Add(fault.Truncate(onion, h.Cut))
		case h.Corrupt:
			f.Add(fault.Flip(onion, h.Flip))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Peel(data, outer)
		if err != nil {
			return
		}
		// AEAD forgery is out of reach for the fuzzer, so anything that
		// opens is an authentic build under this key. Build's nonces
		// are random, so corpus entries from other processes are valid
		// onions with different bytes — check the decoded layer, not
		// the ciphertext: every seed onion routes to group 2 next.
		if p.Deliver || p.NextGroup != 2 {
			t.Fatalf("peeled layer is not the seed structure: %+v (input %d bytes)", p, len(data))
		}
	})
}

// FuzzUnwrap hammers the destination-side payload recovery: no panics,
// and only the authentic inner body may open.
func FuzzUnwrap(f *testing.F) {
	dest := fixedCipher(f, 0x33)
	body, err := dest.Seal([]byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(body)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 32))
	f.Add(fault.Truncate(body, len(body)-1))
	f.Add(fault.Flip(body, 0))
	f.Add(fault.Flip(body, len(body)-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Unwrap(data, dest)
		if err != nil {
			return
		}
		// Seal's nonce is random, so authentic bodies from other fuzz
		// processes differ bytewise; the recovered plaintext is the
		// invariant.
		if string(payload) != "hello" {
			t.Fatalf("unwrap opened but recovered %q, want \"hello\"", payload)
		}
	})
}

// TestOnionCorruptTamperEveryByte is the AEAD counterpart of the
// bundle CRC flip sweep: every single-byte flip of an onion must make
// Peel fail, so a corrupted onion can never advance along the path.
func TestOnionCorruptTamperEveryByte(t *testing.T) {
	onion, outer, _ := fixedOnion(t)
	for i := range onion {
		if _, err := Peel(fault.Flip(onion, i), outer); err == nil {
			t.Fatalf("flip at byte %d peeled successfully", i)
		}
	}
}

// TestOnionTruncationRejected sweeps every tear point of an onion
// through Peel: no torn ciphertext may open.
func TestOnionTruncationRejected(t *testing.T) {
	onion, outer, _ := fixedOnion(t)
	for keep := 0; keep < len(onion); keep++ {
		if _, err := Peel(fault.Truncate(onion, keep), outer); err == nil {
			t.Fatalf("onion torn at %d bytes peeled successfully", keep)
		}
	}
}
