package onion

import (
	"bytes"
	"testing"
)

// TestReplyFullRoundTrip walks the complete anonymous reply flow: the
// owner builds a header through 3 groups; the responder attaches a
// payload; each relay peels its header layer and wraps the payload
// with the embedded hop key; the owner strips everything.
func TestReplyFullRoundTrip(t *testing.T) {
	const K = 3
	hops, ciphers := buildTestHops(t, K)
	ownerCipher := mustSym(t)
	tag := []byte("request-7731")

	header, hopKeys, err := BuildReply(5, tag, hops, ownerCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hopKeys) != K {
		t.Fatalf("hop keys = %d, want %d", len(hopKeys), K)
	}

	// Responder attaches its payload in the clear (it could further
	// encrypt end to end; out of scope here).
	payload := []byte("the answer is 42")
	curHeader, curPayload := header, payload
	for k := 0; k < K; k++ {
		p, err := PeelReply(curHeader, ciphers[k])
		if err != nil {
			t.Fatalf("peel reply layer %d: %v", k, err)
		}
		if k < K-1 {
			if p.Deliver {
				t.Fatalf("layer %d unexpectedly final", k)
			}
			if p.NextGroup != hops[k+1].Group {
				t.Fatalf("layer %d next group %d, want %d", k, p.NextGroup, hops[k+1].Group)
			}
		} else {
			if !p.Deliver || p.Dest != 5 {
				t.Fatalf("deliver layer wrong: %+v", p)
			}
		}
		if !bytes.Equal(p.HopKey, hopKeys[k]) {
			t.Fatalf("layer %d hop key mismatch", k)
		}
		curPayload, err = WrapReplyPayload(curPayload, p.HopKey)
		if err != nil {
			t.Fatal(err)
		}
		curHeader = p.Inner
	}

	// Owner side: verify the tag and unwrap the payload.
	gotTag, err := OpenReplyTag(curHeader, ownerCipher)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTag, tag) {
		t.Fatalf("tag = %q, want %q", gotTag, tag)
	}
	got, err := UnwrapReplyPayload(curPayload, hopKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestReplyPayloadChangesEveryHop(t *testing.T) {
	hops, ciphers := buildTestHops(t, 2)
	ownerCipher := mustSym(t)
	header, _, err := BuildReply(1, []byte("t"), hops, ownerCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("trackable-if-unchanged-0123456789")
	cur := header
	seen := [][]byte{append([]byte(nil), payload...)}
	p := payload
	for k := 0; k < 2; k++ {
		peeled, err := PeelReply(cur, ciphers[k])
		if err != nil {
			t.Fatal(err)
		}
		p, err = WrapReplyPayload(p, peeled.HopKey)
		if err != nil {
			t.Fatal(err)
		}
		for _, old := range seen {
			if bytes.Contains(p, old[:16]) {
				t.Fatalf("hop %d payload contains a previous hop's bytes", k)
			}
		}
		seen = append(seen, append([]byte(nil), p...))
		cur = peeled.Inner
	}
}

func TestReplyUnwrapWrongOrderFails(t *testing.T) {
	hops, ciphers := buildTestHops(t, 2)
	ownerCipher := mustSym(t)
	header, hopKeys, err := BuildReply(1, []byte("t"), hops, ownerCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("resp")
	cur := header
	for k := 0; k < 2; k++ {
		peeled, err := PeelReply(cur, ciphers[k])
		if err != nil {
			t.Fatal(err)
		}
		p, err = WrapReplyPayload(p, peeled.HopKey)
		if err != nil {
			t.Fatal(err)
		}
		cur = peeled.Inner
	}
	// Reversed key order must fail (GCM authentication).
	reversed := [][]byte{hopKeys[1], hopKeys[0]}
	if _, err := UnwrapReplyPayload(p, reversed); err == nil {
		t.Fatal("unwrapped with reversed keys")
	}
	if got, err := UnwrapReplyPayload(p, hopKeys); err != nil || !bytes.Equal(got, []byte("resp")) {
		t.Fatalf("correct order failed: %v", err)
	}
}

func TestReplyPadding(t *testing.T) {
	hops, _ := buildTestHops(t, 2)
	ownerCipher := mustSym(t)
	const padTo = 2048
	a, _, err := BuildReply(1, []byte("x"), hops, ownerCipher, padTo)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := BuildReply(1, bytes.Repeat([]byte("y"), 300), hops, ownerCipher, padTo)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != padTo || len(b) != padTo {
		t.Fatalf("padded sizes %d, %d; want %d", len(a), len(b), padTo)
	}
	if _, _, err := BuildReply(1, bytes.Repeat([]byte("z"), 100), hops, ownerCipher, 8); err == nil {
		t.Fatal("accepted padTo below minimum")
	}
}

func TestBuildReplyValidation(t *testing.T) {
	hops, _ := buildTestHops(t, 1)
	ownerCipher := mustSym(t)
	if _, _, err := BuildReply(1, nil, nil, ownerCipher, 0); err == nil {
		t.Fatal("accepted zero hops")
	}
	if _, _, err := BuildReply(-1, nil, hops, ownerCipher, 0); err == nil {
		t.Fatal("accepted negative owner")
	}
	if _, _, err := BuildReply(1, nil, hops, nil, 0); err == nil {
		t.Fatal("accepted nil owner cipher")
	}
	if _, _, err := BuildReply(1, nil, []Hop{{Group: -1, Cipher: ownerCipher}}, ownerCipher, 0); err == nil {
		t.Fatal("accepted invalid hop")
	}
}

func TestPeelReplyRejectsForwardOnion(t *testing.T) {
	// A forward onion layer must not parse as a reply layer.
	hops, ciphers := buildTestHops(t, 1)
	destCipher := mustSym(t)
	data, err := Build(1, []byte("m"), hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PeelReply(data, ciphers[0]); err == nil {
		t.Fatal("forward onion parsed as reply header")
	}
}

func TestPeelReplyGarbage(t *testing.T) {
	c := mustSym(t)
	if _, err := PeelReply([]byte("junk"), c); err == nil {
		t.Fatal("peeled garbage")
	}
	if _, err := PeelReply(nil, nil); err == nil {
		t.Fatal("nil cipher accepted")
	}
}

func TestWrapReplyPayloadBadKey(t *testing.T) {
	if _, err := WrapReplyPayload([]byte("p"), []byte("short")); err == nil {
		t.Fatal("accepted short hop key")
	}
	if _, err := UnwrapReplyPayload([]byte("p"), [][]byte{{1, 2}}); err == nil {
		t.Fatal("accepted short hop key in unwrap")
	}
}

func BenchmarkBuildReply(b *testing.B) {
	hops, _ := buildTestHops(b, 3)
	ownerCipher := mustSym(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildReply(1, []byte("tag"), hops, ownerCipher, 2048); err != nil {
			b.Fatal(err)
		}
	}
}
