package onion

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// GroupID identifies an onion group (see package groups).
type GroupID int32

// NodeID mirrors contact.NodeID without importing the graph package;
// the two are freely convertible.
type NodeID int32

// Layer type tags (start at 1 so a zeroed buffer never parses).
const (
	tagRelay   byte = 1 // plaintext: [tag][4B next group][inner onion]
	tagDeliver byte = 2 // plaintext: [tag][4B destination][inner (sealed for dest)]
)

const layerHeader = 1 + 4 // tag + 4-byte address

// Hop is one onion layer in travel order: the group that can peel it.
type Hop struct {
	Group  GroupID
	Cipher Cipher
}

// Peeled is the result of removing one onion layer.
type Peeled struct {
	// Deliver reports whether this was the last relay layer: the
	// holder must hand Inner to the destination Dest. Otherwise the
	// holder forwards Inner to any member of NextGroup.
	Deliver   bool
	NextGroup GroupID
	Dest      NodeID
	Inner     []byte
}

// MinSize returns the smallest possible onion size for a payload of
// payloadLen bytes routed through the given hops and sealed for the
// destination with destCipher.
func MinSize(payloadLen int, hops []Hop, destCipher Cipher) int {
	size := 4 + payloadLen + destCipher.Overhead() // [4B len][payload]
	for _, h := range hops {
		size += layerHeader + h.Cipher.Overhead()
	}
	return size
}

// Build constructs an onion for the path src -> hops[0].Group -> ... ->
// hops[K-1].Group -> dest (Fig. 1's layered encryption with onion
// groups). The innermost layer is sealed with destCipher so that relays
// never see the payload. If padTo > 0 the payload is padded with
// random bytes so the outermost onion is exactly padTo bytes,
// concealing the payload length (and, across onions with the same
// padTo, the remaining layer count is already concealed by encryption).
func Build(dest NodeID, payload []byte, hops []Hop, destCipher Cipher, padTo int) ([]byte, error) {
	return buildWithRand(dest, payload, hops, destCipher, padTo, rand.Reader)
}

func buildWithRand(dest NodeID, payload []byte, hops []Hop, destCipher Cipher, padTo int, rnd io.Reader) ([]byte, error) {
	if len(hops) == 0 {
		return nil, errors.New("onion: at least one hop is required")
	}
	if dest < 0 {
		return nil, fmt.Errorf("onion: invalid destination %d", dest)
	}
	for i, h := range hops {
		if h.Group < 0 {
			return nil, fmt.Errorf("onion: hop %d has invalid group %d", i, h.Group)
		}
		if h.Cipher == nil {
			return nil, fmt.Errorf("onion: hop %d has nil cipher", i)
		}
	}
	if destCipher == nil {
		return nil, errors.New("onion: nil destination cipher")
	}

	pad := 0
	if padTo > 0 {
		min := MinSize(len(payload), hops, destCipher)
		if padTo < min {
			return nil, fmt.Errorf("onion: padTo %d smaller than minimum size %d", padTo, min)
		}
		pad = padTo - min
	}

	// Innermost: [4B payload len][payload][random padding], sealed for
	// the destination.
	body := make([]byte, 4+len(payload)+pad)
	binary.BigEndian.PutUint32(body, uint32(len(payload)))
	copy(body[4:], payload)
	if pad > 0 {
		if _, err := io.ReadFull(rnd, body[4+len(payload):]); err != nil {
			return nil, fmt.Errorf("onion: padding: %w", err)
		}
	}
	cur, err := destCipher.Seal(body)
	if err != nil {
		return nil, fmt.Errorf("onion: seal payload: %w", err)
	}

	// Wrap layers inside-out: the last hop gets the deliver tag.
	for k := len(hops) - 1; k >= 0; k-- {
		pt := make([]byte, layerHeader+len(cur))
		if k == len(hops)-1 {
			pt[0] = tagDeliver
			binary.BigEndian.PutUint32(pt[1:], uint32(dest))
		} else {
			pt[0] = tagRelay
			binary.BigEndian.PutUint32(pt[1:], uint32(hops[k+1].Group))
		}
		copy(pt[layerHeader:], cur)
		cur, err = hops[k].Cipher.Seal(pt)
		if err != nil {
			return nil, fmt.Errorf("onion: seal layer %d: %w", k, err)
		}
	}
	return cur, nil
}

// Peel removes one relay layer using the group cipher of the node that
// received the onion. Tampered or foreign onions produce an error.
func Peel(data []byte, c Cipher) (*Peeled, error) {
	if c == nil {
		return nil, errors.New("onion: nil cipher")
	}
	pt, err := c.Open(data)
	if err != nil {
		return nil, err
	}
	if len(pt) < layerHeader {
		return nil, errors.New("onion: layer plaintext too short")
	}
	addr := binary.BigEndian.Uint32(pt[1:])
	inner := append([]byte(nil), pt[layerHeader:]...)
	switch pt[0] {
	case tagRelay:
		return &Peeled{NextGroup: GroupID(addr), Inner: inner}, nil
	case tagDeliver:
		return &Peeled{Deliver: true, Dest: NodeID(addr), Inner: inner}, nil
	default:
		return nil, fmt.Errorf("onion: unknown layer tag %d", pt[0])
	}
}

// Unwrap recovers the payload from the innermost onion body using the
// destination's cipher.
func Unwrap(inner []byte, destCipher Cipher) ([]byte, error) {
	if destCipher == nil {
		return nil, errors.New("onion: nil cipher")
	}
	body, err := destCipher.Open(inner)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, errors.New("onion: body too short")
	}
	n := binary.BigEndian.Uint32(body)
	if int(n) > len(body)-4 {
		return nil, fmt.Errorf("onion: declared payload length %d exceeds body %d", n, len(body)-4)
	}
	return append([]byte(nil), body[4:4+n]...), nil
}
