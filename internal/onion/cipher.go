// Package onion implements the cryptographic substrate of onion-based
// anonymous routing (Sec. II-A/II-B): layered encryption in which each
// layer can be peeled only with the corresponding key, plus the group
// key model of ARDEN-style onion groups, where every member of group
// R_k shares the key for layer k.
//
// The paper's source protocols establish group keys with attribute-
// based or identity-based encryption; this package substitutes
// group-shared AES-256-GCM keys (same access structure: any group
// member can peel its layer, nobody else can) and also offers a hybrid
// RSA-OAEP mode mirroring classic public-key onion routing (Fig. 1).
package onion

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key size in bytes (AES-256).
const KeySize = 32

const gcmNonceSize = 12

// Cipher seals and opens one onion layer. Implementations must be
// authenticated: Open fails on any tampering.
type Cipher interface {
	// Seal encrypts plaintext and returns a self-contained ciphertext.
	Seal(plaintext []byte) ([]byte, error)
	// Open decrypts a ciphertext produced by Seal.
	Open(ciphertext []byte) ([]byte, error)
	// Overhead returns the ciphertext expansion in bytes:
	// len(Seal(p)) == len(p) + Overhead() for every p.
	Overhead() int
}

// SymmetricCipher is an AES-256-GCM layer cipher keyed by a shared
// group key.
type SymmetricCipher struct {
	aead cipher.AEAD
	rand io.Reader
}

var _ Cipher = (*SymmetricCipher)(nil)

// NewSymmetricCipher builds a layer cipher from a KeySize-byte key.
func NewSymmetricCipher(key []byte) (*SymmetricCipher, error) {
	return newSymmetricCipher(key, rand.Reader)
}

func newSymmetricCipher(key []byte, rnd io.Reader) (*SymmetricCipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("onion: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("onion: new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("onion: new GCM: %w", err)
	}
	return &SymmetricCipher{aead: aead, rand: rnd}, nil
}

// Seal implements Cipher.
func (c *SymmetricCipher) Seal(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, gcmNonceSize, gcmNonceSize+len(plaintext)+c.aead.Overhead())
	if _, err := io.ReadFull(c.rand, nonce); err != nil {
		return nil, fmt.Errorf("onion: nonce: %w", err)
	}
	return c.aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Open implements Cipher.
func (c *SymmetricCipher) Open(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < gcmNonceSize+c.aead.Overhead() {
		return nil, errors.New("onion: ciphertext too short")
	}
	nonce, sealed := ciphertext[:gcmNonceSize], ciphertext[gcmNonceSize:]
	pt, err := c.aead.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("onion: open layer: %w", err)
	}
	return pt, nil
}

// Overhead implements Cipher.
func (c *SymmetricCipher) Overhead() int { return gcmNonceSize + c.aead.Overhead() }

// GenerateKey returns a fresh random group key.
func GenerateKey() ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("onion: generate key: %w", err)
	}
	return key, nil
}

// HybridCipher is a public-key layer cipher: an ephemeral AES-256-GCM
// key encrypts the payload and is wrapped with RSA-OAEP, the classic
// onion-routing construction of Fig. 1 (E_PK_r(...)).
type HybridCipher struct {
	pub  *rsa.PublicKey
	priv *rsa.PrivateKey // nil for a seal-only cipher
	rand io.Reader
}

var _ Cipher = (*HybridCipher)(nil)

// NewHybridSealer returns a cipher that can only Seal (as a source node
// holding a router's public key would).
func NewHybridSealer(pub *rsa.PublicKey) (*HybridCipher, error) {
	if pub == nil {
		return nil, errors.New("onion: nil public key")
	}
	return &HybridCipher{pub: pub, rand: rand.Reader}, nil
}

// NewHybridCipher returns a cipher that can Seal and Open (as the
// onion router holding the private key would).
func NewHybridCipher(priv *rsa.PrivateKey) (*HybridCipher, error) {
	if priv == nil {
		return nil, errors.New("onion: nil private key")
	}
	return &HybridCipher{pub: &priv.PublicKey, priv: priv, rand: rand.Reader}, nil
}

// Seal implements Cipher.
func (c *HybridCipher) Seal(plaintext []byte) ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(c.rand, key); err != nil {
		return nil, fmt.Errorf("onion: ephemeral key: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), c.rand, c.pub, key, nil)
	if err != nil {
		return nil, fmt.Errorf("onion: wrap key: %w", err)
	}
	sym, err := newSymmetricCipher(key, c.rand)
	if err != nil {
		return nil, err
	}
	body, err := sym.Seal(plaintext)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(wrapped)+len(body))
	out = append(out, wrapped...)
	return append(out, body...), nil
}

// Open implements Cipher.
func (c *HybridCipher) Open(ciphertext []byte) ([]byte, error) {
	if c.priv == nil {
		return nil, errors.New("onion: cipher is seal-only (no private key)")
	}
	wrapLen := c.priv.PublicKey.Size()
	if len(ciphertext) < wrapLen {
		return nil, errors.New("onion: ciphertext shorter than wrapped key")
	}
	key, err := rsa.DecryptOAEP(sha256.New(), nil, c.priv, ciphertext[:wrapLen], nil)
	if err != nil {
		return nil, fmt.Errorf("onion: unwrap key: %w", err)
	}
	sym, err := newSymmetricCipher(key, c.rand)
	if err != nil {
		return nil, err
	}
	return sym.Open(ciphertext[wrapLen:])
}

// Overhead implements Cipher.
func (c *HybridCipher) Overhead() int {
	return c.pub.Size() + gcmNonceSize + 16 // RSA block + nonce + GCM tag
}

// NullCipher passes data through unchanged. It exists so that
// large-scale simulations can skip cryptographic work while exercising
// the exact same onion construction and routing code paths; it must
// never be used outside simulation.
type NullCipher struct{}

var _ Cipher = NullCipher{}

// Seal implements Cipher (identity).
func (NullCipher) Seal(plaintext []byte) ([]byte, error) {
	return append([]byte(nil), plaintext...), nil
}

// Open implements Cipher (identity).
func (NullCipher) Open(ciphertext []byte) ([]byte, error) {
	return append([]byte(nil), ciphertext...), nil
}

// Overhead implements Cipher.
func (NullCipher) Overhead() int { return 0 }
