package onion_test

import (
	"fmt"

	"repro/internal/onion"
)

// Example walks the basic onion lifecycle: the source wraps a message
// in layers for two onion groups and the destination; each group
// member peels its layer; the destination unwraps the payload.
func Example() {
	newCipher := func() onion.Cipher {
		key, err := onion.GenerateKey()
		if err != nil {
			panic(err)
		}
		c, err := onion.NewSymmetricCipher(key)
		if err != nil {
			panic(err)
		}
		return c
	}
	group1, group2, dest := newCipher(), newCipher(), newCipher()

	data, err := onion.Build(
		42, // destination node
		[]byte("meet at dawn"),
		[]onion.Hop{{Group: 7, Cipher: group1}, {Group: 9, Cipher: group2}},
		dest,
		0, // no padding
	)
	if err != nil {
		panic(err)
	}

	// An R_7 member peels the first layer and learns only "forward to
	// any member of group 9".
	p1, err := onion.Peel(data, group1)
	if err != nil {
		panic(err)
	}
	fmt.Println("first relay sees next group:", p1.NextGroup)

	// An R_9 member peels the second layer and learns the destination.
	p2, err := onion.Peel(p1.Inner, group2)
	if err != nil {
		panic(err)
	}
	fmt.Println("last relay sees destination:", p2.Dest)

	// Only node 42 recovers the payload.
	msg, err := onion.Unwrap(p2.Inner, dest)
	if err != nil {
		panic(err)
	}
	fmt.Printf("destination reads: %s\n", msg)
	// Output:
	// first relay sees next group: 9
	// last relay sees destination: 42
	// destination reads: meet at dawn
}
