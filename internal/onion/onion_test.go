package onion

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"testing"
	"testing/quick"
)

func mustKey(t testing.TB) []byte {
	t.Helper()
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func mustSym(t testing.TB) *SymmetricCipher {
	t.Helper()
	c, err := NewSymmetricCipher(mustKey(t))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSymmetricRoundTrip(t *testing.T) {
	c := mustSym(t)
	for _, msg := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		ct, err := c.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != len(msg)+c.Overhead() {
			t.Fatalf("overhead mismatch: %d != %d + %d", len(ct), len(msg), c.Overhead())
		}
		pt, err := c.Open(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestSymmetricTamperDetected(t *testing.T) {
	c := mustSym(t)
	ct, err := c.Seal([]byte("secret payload"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ct); i += 7 {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x01
		if _, err := c.Open(bad); err == nil {
			t.Fatalf("tampering at byte %d not detected", i)
		}
	}
}

func TestSymmetricWrongKeyFails(t *testing.T) {
	a, b := mustSym(t), mustSym(t)
	ct, err := a.Seal([]byte("for a only"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(ct); err == nil {
		t.Fatal("opened with wrong key")
	}
}

func TestSymmetricNondeterministicCiphertext(t *testing.T) {
	c := mustSym(t)
	a, _ := c.Seal([]byte("same"))
	b, _ := c.Seal([]byte("same"))
	if bytes.Equal(a, b) {
		t.Fatal("ciphertexts repeat; nonce reuse?")
	}
}

func TestNewSymmetricCipherBadKey(t *testing.T) {
	if _, err := NewSymmetricCipher([]byte("short")); err == nil {
		t.Fatal("accepted short key")
	}
}

func TestOpenTooShort(t *testing.T) {
	c := mustSym(t)
	if _, err := c.Open([]byte{1, 2, 3}); err == nil {
		t.Fatal("opened garbage")
	}
}

func TestHybridRoundTrip(t *testing.T) {
	priv, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewHybridCipher(priv)
	if err != nil {
		t.Fatal(err)
	}
	source, err := NewHybridSealer(&priv.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("onion routed via public keys")
	ct, err := source.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(msg)+source.Overhead() {
		t.Fatalf("overhead mismatch: %d vs %d", len(ct)-len(msg), source.Overhead())
	}
	pt, err := router.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestHybridSealerCannotOpen(t *testing.T) {
	priv, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	source, err := NewHybridSealer(&priv.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := source.Seal([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := source.Open(ct); err == nil {
		t.Fatal("seal-only cipher opened a ciphertext")
	}
}

func TestNullCipher(t *testing.T) {
	c := NullCipher{}
	msg := []byte("clear")
	ct, err := c.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct, msg) || c.Overhead() != 0 {
		t.Fatal("null cipher is not identity")
	}
	ct[0] = 'X' // must not alias the input
	if msg[0] != 'c' {
		t.Fatal("Seal aliased input")
	}
}

func buildTestHops(t testing.TB, k int) ([]Hop, []*SymmetricCipher) {
	t.Helper()
	hops := make([]Hop, k)
	ciphers := make([]*SymmetricCipher, k)
	for i := range hops {
		c := mustSym(t)
		hops[i] = Hop{Group: GroupID(i + 10), Cipher: c}
		ciphers[i] = c
	}
	return hops, ciphers
}

func TestOnionFullTraversal(t *testing.T) {
	const K = 3
	hops, ciphers := buildTestHops(t, K)
	destCipher := mustSym(t)
	payload := []byte("meet at the bridge at dawn")

	data, err := Build(42, payload, hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Walk the onion as the routers would.
	cur := data
	for k := 0; k < K; k++ {
		p, err := Peel(cur, ciphers[k])
		if err != nil {
			t.Fatalf("peel layer %d: %v", k, err)
		}
		if k < K-1 {
			if p.Deliver {
				t.Fatalf("layer %d unexpectedly final", k)
			}
			if p.NextGroup != hops[k+1].Group {
				t.Fatalf("layer %d points to group %d, want %d", k, p.NextGroup, hops[k+1].Group)
			}
		} else {
			if !p.Deliver {
				t.Fatal("last layer not marked deliver")
			}
			if p.Dest != 42 {
				t.Fatalf("dest = %d, want 42", p.Dest)
			}
		}
		cur = p.Inner
	}
	got, err := Unwrap(cur, destCipher)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestOnionSingleHop(t *testing.T) {
	hops, ciphers := buildTestHops(t, 1)
	destCipher := mustSym(t)
	data, err := Build(7, []byte("hi"), hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Peel(data, ciphers[0])
	if err != nil {
		t.Fatal(err)
	}
	if !p.Deliver || p.Dest != 7 {
		t.Fatalf("single-hop peel: %+v", p)
	}
	got, err := Unwrap(p.Inner, destCipher)
	if err != nil || !bytes.Equal(got, []byte("hi")) {
		t.Fatalf("unwrap: %q, %v", got, err)
	}
}

func TestOnionWrongLayerKeyFails(t *testing.T) {
	hops, ciphers := buildTestHops(t, 3)
	destCipher := mustSym(t)
	data, err := Build(1, []byte("m"), hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Peeling the outer layer with layer 2's key must fail: only R_1
	// members can peel.
	if _, err := Peel(data, ciphers[1]); err == nil {
		t.Fatal("peeled with wrong group key")
	}
}

func TestOnionPayloadHiddenFromRelays(t *testing.T) {
	hops, _ := buildTestHops(t, 2)
	destCipher := mustSym(t)
	payload := []byte("attack at dawn --- unmistakable marker 0xDEADBEEF")
	data, err := Build(1, payload, hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, payload[5:20]) {
		t.Fatal("payload fragment visible in onion ciphertext")
	}
}

func TestOnionPadding(t *testing.T) {
	hops, ciphers := buildTestHops(t, 2)
	destCipher := mustSym(t)
	const padTo = 1024
	short, err := Build(3, []byte("a"), hops, destCipher, padTo)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Build(3, bytes.Repeat([]byte("b"), 500), hops, destCipher, padTo)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != padTo || len(long) != padTo {
		t.Fatalf("padded sizes %d, %d; want %d", len(short), len(long), padTo)
	}
	// Padded onion still decodes to the original payload.
	p1, err := Peel(short, ciphers[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Peel(p1.Inner, ciphers[1])
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unwrap(p2.Inner, destCipher)
	if err != nil || !bytes.Equal(got, []byte("a")) {
		t.Fatalf("padded unwrap: %q, %v", got, err)
	}
}

func TestOnionPadTooSmall(t *testing.T) {
	hops, _ := buildTestHops(t, 2)
	destCipher := mustSym(t)
	if _, err := Build(3, bytes.Repeat([]byte("x"), 100), hops, destCipher, 16); err == nil {
		t.Fatal("accepted padTo below minimum")
	}
}

func TestMinSizeMatchesBuild(t *testing.T) {
	for _, k := range []int{1, 2, 5} {
		hops, _ := buildTestHops(t, k)
		destCipher := mustSym(t)
		payload := bytes.Repeat([]byte("p"), 37)
		data, err := Build(1, payload, hops, destCipher, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := MinSize(len(payload), hops, destCipher); len(data) != want {
			t.Fatalf("K=%d: built %d bytes, MinSize says %d", k, len(data), want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	hops, _ := buildTestHops(t, 1)
	destCipher := mustSym(t)
	if _, err := Build(1, nil, nil, destCipher, 0); err == nil {
		t.Fatal("accepted zero hops")
	}
	if _, err := Build(-1, nil, hops, destCipher, 0); err == nil {
		t.Fatal("accepted negative destination")
	}
	if _, err := Build(1, nil, []Hop{{Group: -1, Cipher: destCipher}}, destCipher, 0); err == nil {
		t.Fatal("accepted negative group")
	}
	if _, err := Build(1, nil, []Hop{{Group: 1, Cipher: nil}}, destCipher, 0); err == nil {
		t.Fatal("accepted nil hop cipher")
	}
	if _, err := Build(1, nil, hops, nil, 0); err == nil {
		t.Fatal("accepted nil destination cipher")
	}
}

func TestPeelGarbage(t *testing.T) {
	c := mustSym(t)
	if _, err := Peel([]byte("not an onion at all"), c); err == nil {
		t.Fatal("peeled garbage")
	}
	if _, err := Peel(nil, nil); err == nil {
		t.Fatal("peeled with nil cipher")
	}
}

func TestUnwrapGarbage(t *testing.T) {
	c := mustSym(t)
	if _, err := Unwrap([]byte("zzz"), c); err == nil {
		t.Fatal("unwrapped garbage")
	}
	if _, err := Unwrap(nil, nil); err == nil {
		t.Fatal("unwrapped with nil cipher")
	}
}

func TestUnwrapBadLength(t *testing.T) {
	c := mustSym(t)
	// Body claims more payload than present.
	body := []byte{0, 0, 0, 200, 'x'}
	ct, err := c.Seal(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unwrap(ct, c); err == nil {
		t.Fatal("accepted overlong declared payload")
	}
}

func TestOnionPropertyRoundTrip(t *testing.T) {
	destCipher := mustSym(t)
	hops, ciphers := buildTestHops(t, 4)
	f := func(payload []byte, destRaw uint16) bool {
		dest := NodeID(destRaw % 1000)
		data, err := buildWithRand(dest, payload, hops, destCipher, 0, rand.Reader)
		if err != nil {
			return false
		}
		cur := data
		for k := range hops {
			p, err := Peel(cur, ciphers[k])
			if err != nil {
				return false
			}
			if k == len(hops)-1 && (!p.Deliver || p.Dest != dest) {
				return false
			}
			cur = p.Inner
		}
		got, err := Unwrap(cur, destCipher)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildOnionK3(b *testing.B) {
	hops, _ := buildTestHops(b, 3)
	destCipher := mustSym(b)
	payload := bytes.Repeat([]byte("m"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(1, payload, hops, destCipher, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeel(b *testing.B) {
	hops, ciphers := buildTestHops(b, 3)
	destCipher := mustSym(b)
	data, err := Build(1, bytes.Repeat([]byte("m"), 256), hops, destCipher, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Peel(data, ciphers[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestClassicOnionRoutingRSA exercises the paper's Figs. 1-2
// construction: classic onion routing with per-router public keys
// (hybrid RSA-OAEP layers) instead of group-shared symmetric keys —
// the degenerate g=1 case the paper generalizes.
func TestClassicOnionRoutingRSA(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen")
	}
	const K = 3
	routers := make([]*HybridCipher, K)
	hops := make([]Hop, K)
	for i := range routers {
		priv, err := rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			t.Fatal(err)
		}
		router, err := NewHybridCipher(priv)
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = router
		// The source only holds the router's PUBLIC key.
		sealer, err := NewHybridSealer(&priv.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = Hop{Group: GroupID(i + 1), Cipher: sealer}
	}
	destPriv, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	destRouter, err := NewHybridCipher(destPriv)
	if err != nil {
		t.Fatal(err)
	}
	destSealer, err := NewHybridSealer(&destPriv.PublicKey)
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("E(PK_r1, E(PK_r2, E(PK_r3, m))) per Fig. 1")
	data, err := Build(9, msg, hops, destSealer, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := data
	for k := 0; k < K; k++ {
		p, err := Peel(cur, routers[k])
		if err != nil {
			t.Fatalf("router %d peel: %v", k, err)
		}
		if k < K-1 && p.NextGroup != GroupID(k+2) {
			t.Fatalf("router %d next = %d", k, p.NextGroup)
		}
		cur = p.Inner
	}
	got, err := Unwrap(cur, destRouter)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("classic RSA onion round trip failed")
	}
}

func TestOnionMixedCipherHops(t *testing.T) {
	// A single onion can mix symmetric group layers with a hybrid RSA
	// layer (e.g. a high-security relay with its own keypair).
	if testing.Short() {
		t.Skip("RSA keygen")
	}
	priv, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	rsaRouter, err := NewHybridCipher(priv)
	if err != nil {
		t.Fatal(err)
	}
	rsaSealer, err := NewHybridSealer(&priv.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	sym := mustSym(t)
	destCipher := mustSym(t)
	hops := []Hop{
		{Group: 1, Cipher: sym},
		{Group: 2, Cipher: rsaSealer},
	}
	data, err := Build(5, []byte("mixed"), hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Peel(data, sym)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Peel(p1.Inner, rsaRouter)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unwrap(p2.Inner, destCipher)
	if err != nil || !bytes.Equal(got, []byte("mixed")) {
		t.Fatalf("mixed-cipher onion failed: %q, %v", got, err)
	}
}
