package onion

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Reply onions (an extension following classic onion routing
// [Goldschlag et al. 1999]): a source that wants an answer without
// revealing its identity pre-builds a reply header routed through
// onion groups back to itself and ships it inside the forward
// message. The responder attaches its payload to the header and sends
// both to the first reply group; each relay that peels a header layer
// finds a fresh hop key and *adds* an encryption layer to the payload
// with it, so the payload looks different at every hop (no traffic
// correlation) while no relay learns either endpoint. The source, who
// generated all hop keys, strips the layers.
//
// Reply layers extend the wire layer format with a hop key:
//
//	relay:   [tag][4B next group][32B hop key][inner header]
//	deliver: [tag][4B owner]     [32B hop key][inner header]

const (
	tagReplyRelay   byte = 3
	tagReplyDeliver byte = 4
)

const replyLayerHeader = layerHeader + KeySize

// PeeledReply is the result of removing one reply-header layer.
type PeeledReply struct {
	// Deliver reports whether this was the last relay layer: the
	// holder hands (Inner, wrapped payload) to the owner Dest.
	Deliver   bool
	NextGroup GroupID
	Dest      NodeID
	// HopKey is this relay's payload-wrapping key.
	HopKey []byte
	Inner  []byte
}

// MinReplySize returns the smallest reply header size for a tag of
// tagLen bytes through the given hops.
func MinReplySize(tagLen int, hops []Hop, ownerCipher Cipher) int {
	size := 4 + tagLen + ownerCipher.Overhead()
	for _, h := range hops {
		size += replyLayerHeader + h.Cipher.Overhead()
	}
	return size
}

// BuildReply constructs a reply header routed through hops back to the
// owner, plus the hop keys the owner must retain to unwrap the
// response (in travel order: hopKeys[k] belongs to the relay of
// hops[k]). tag is sealed for the owner so it can correlate the
// response with the original request; padTo pads the header like
// Build.
func BuildReply(owner NodeID, tag []byte, hops []Hop, ownerCipher Cipher, padTo int) (header []byte, hopKeys [][]byte, err error) {
	if len(hops) == 0 {
		return nil, nil, errors.New("onion: at least one hop is required")
	}
	if owner < 0 {
		return nil, nil, fmt.Errorf("onion: invalid owner %d", owner)
	}
	if ownerCipher == nil {
		return nil, nil, errors.New("onion: nil owner cipher")
	}
	for i, h := range hops {
		if h.Group < 0 || h.Cipher == nil {
			return nil, nil, fmt.Errorf("onion: invalid hop %d", i)
		}
	}
	pad := 0
	if padTo > 0 {
		min := MinReplySize(len(tag), hops, ownerCipher)
		if padTo < min {
			return nil, nil, fmt.Errorf("onion: padTo %d smaller than minimum size %d", padTo, min)
		}
		pad = padTo - min
	}

	body := make([]byte, 4+len(tag)+pad)
	binary.BigEndian.PutUint32(body, uint32(len(tag)))
	copy(body[4:], tag)
	if pad > 0 {
		if _, err := io.ReadFull(rand.Reader, body[4+len(tag):]); err != nil {
			return nil, nil, fmt.Errorf("onion: padding: %w", err)
		}
	}
	cur, err := ownerCipher.Seal(body)
	if err != nil {
		return nil, nil, fmt.Errorf("onion: seal reply tag: %w", err)
	}

	hopKeys = make([][]byte, len(hops))
	for k := len(hops) - 1; k >= 0; k-- {
		key, err := GenerateKey()
		if err != nil {
			return nil, nil, err
		}
		hopKeys[k] = key
		pt := make([]byte, replyLayerHeader+len(cur))
		if k == len(hops)-1 {
			pt[0] = tagReplyDeliver
			binary.BigEndian.PutUint32(pt[1:], uint32(owner))
		} else {
			pt[0] = tagReplyRelay
			binary.BigEndian.PutUint32(pt[1:], uint32(hops[k+1].Group))
		}
		copy(pt[layerHeader:], key)
		copy(pt[replyLayerHeader:], cur)
		cur, err = hops[k].Cipher.Seal(pt)
		if err != nil {
			return nil, nil, fmt.Errorf("onion: seal reply layer %d: %w", k, err)
		}
	}
	return cur, hopKeys, nil
}

// PeelReply removes one reply-header layer with the relay's group
// cipher, yielding the hop key the relay must wrap the payload with.
func PeelReply(data []byte, c Cipher) (*PeeledReply, error) {
	if c == nil {
		return nil, errors.New("onion: nil cipher")
	}
	pt, err := c.Open(data)
	if err != nil {
		return nil, err
	}
	if len(pt) < replyLayerHeader {
		return nil, errors.New("onion: reply layer too short")
	}
	addr := binary.BigEndian.Uint32(pt[1:])
	key := append([]byte(nil), pt[layerHeader:replyLayerHeader]...)
	inner := append([]byte(nil), pt[replyLayerHeader:]...)
	switch pt[0] {
	case tagReplyRelay:
		return &PeeledReply{NextGroup: GroupID(addr), HopKey: key, Inner: inner}, nil
	case tagReplyDeliver:
		return &PeeledReply{Deliver: true, Dest: NodeID(addr), HopKey: key, Inner: inner}, nil
	default:
		return nil, fmt.Errorf("onion: unknown reply layer tag %d", pt[0])
	}
}

// WrapReplyPayload adds one relay's encryption layer to the response
// payload using the hop key found in its header layer.
func WrapReplyPayload(payload, hopKey []byte) ([]byte, error) {
	c, err := NewSymmetricCipher(hopKey)
	if err != nil {
		return nil, err
	}
	return c.Seal(payload)
}

// UnwrapReplyPayload strips all relay layers from a response: the
// owner applies its retained hop keys in reverse travel order (the
// last relay wrapped last, so its layer is outermost).
func UnwrapReplyPayload(wrapped []byte, hopKeys [][]byte) ([]byte, error) {
	cur := wrapped
	for k := len(hopKeys) - 1; k >= 0; k-- {
		c, err := NewSymmetricCipher(hopKeys[k])
		if err != nil {
			return nil, err
		}
		cur, err = c.Open(cur)
		if err != nil {
			return nil, fmt.Errorf("onion: unwrap reply layer %d: %w", k, err)
		}
	}
	return cur, nil
}

// OpenReplyTag recovers the correlation tag from the innermost reply
// header, proving the response followed the owner's own header.
func OpenReplyTag(inner []byte, ownerCipher Cipher) ([]byte, error) {
	return Unwrap(inner, ownerCipher)
}
