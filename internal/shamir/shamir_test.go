package shamir

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	secret := []byte("the commander is at hill 402")
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {3, 2}, {5, 3}, {10, 10}, {255, 128},
	} {
		shares, err := Split(secret, tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("share count %d", len(shares))
		}
		got, err := Combine(shares[:tc.k])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("n=%d k=%d: reconstruction failed", tc.n, tc.k)
		}
	}
}

func TestAnyKSharesSuffice(t *testing.T) {
	secret := []byte("any subset works")
	const n, k = 6, 3
	shares, err := Split(secret, n, k)
	if err != nil {
		t.Fatal(err)
	}
	// Try several k-subsets, including non-contiguous ones.
	subsets := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5}, {5, 0, 3}}
	for _, idx := range subsets {
		sub := make([]Share, 0, k)
		for _, i := range idx {
			sub = append(sub, shares[i])
		}
		got, err := Combine(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("subset %v failed", idx)
		}
	}
	// More than k shares also reconstruct.
	got, err := Combine(shares)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("all-shares reconstruction failed")
	}
}

func TestFewerThanKSharesGarbage(t *testing.T) {
	secret := bytes.Repeat([]byte{0xAB}, 64)
	shares, err := Split(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[:2]) // below threshold
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, secret) {
		t.Fatal("two shares reconstructed a threshold-3 secret")
	}
}

func TestSingleShareRevealsNothing(t *testing.T) {
	// With k >= 2, one share's bytes should look unrelated to the
	// secret: for a constant secret, share bytes should not be
	// constant-equal to it.
	secret := bytes.Repeat([]byte{0x00}, 256)
	shares, err := Split(secret, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, b := range shares[0].Y {
		if b == 0 {
			zeros++
		}
	}
	// Uniformly random bytes: expect ~1 zero in 256; allow slack.
	if zeros > 30 {
		t.Fatalf("share leaks the all-zero secret: %d/256 zero bytes", zeros)
	}
}

func TestSplitValidation(t *testing.T) {
	if _, err := Split(nil, 3, 2); err == nil {
		t.Fatal("accepted empty secret")
	}
	if _, err := Split([]byte("x"), 2, 0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Split([]byte("x"), 2, 3); err == nil {
		t.Fatal("accepted n < k")
	}
	if _, err := Split([]byte("x"), 256, 2); err == nil {
		t.Fatal("accepted n > 255")
	}
}

func TestCombineValidation(t *testing.T) {
	if _, err := Combine(nil); err == nil {
		t.Fatal("accepted no shares")
	}
	if _, err := Combine([]Share{{X: 0, Y: []byte{1}}}); err == nil {
		t.Fatal("accepted x=0 share")
	}
	if _, err := Combine([]Share{{X: 1, Y: []byte{1}}, {X: 1, Y: []byte{2}}}); err == nil {
		t.Fatal("accepted duplicate share points")
	}
	if _, err := Combine([]Share{{X: 1, Y: []byte{1}}, {X: 2, Y: []byte{1, 2}}}); err == nil {
		t.Fatal("accepted mismatched share lengths")
	}
}

func TestThresholdOneIsPlaintextAtPoints(t *testing.T) {
	// k=1: polynomial is constant, every share equals the secret.
	secret := []byte("public")
	shares, err := Split(secret, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if !bytes.Equal(s.Y, secret) {
			t.Fatal("k=1 share differs from secret")
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []byte, rawN, rawK uint8) bool {
		if len(raw) == 0 {
			raw = []byte{42}
		}
		if len(raw) > 128 {
			raw = raw[:128]
		}
		n := int(rawN%12) + 1
		k := int(rawK)%n + 1
		shares, err := Split(raw, n, k)
		if err != nil {
			return false
		}
		got, err := Combine(shares[n-k:])
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverse: a * a^-1 = 1 for all nonzero a.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv failed for %d", a)
		}
	}
	// Distributivity spot checks via quick.
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Commutativity and associativity.
	g := func(a, b, c byte) bool {
		return gfMul(a, b) == gfMul(b, a) && gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	gfInv(0)
}

func TestSplitDeterministicGivenRand(t *testing.T) {
	// Same randomness stream -> same shares.
	secret := []byte("det")
	a, err := splitWithRand(secret, 4, 2, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := splitWithRand(secret, 4, 2, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].X != b[i].X || !bytes.Equal(a[i].Y, b[i].Y) {
			t.Fatal("same randomness produced different shares")
		}
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x5c
	}
	return len(p), nil
}

func BenchmarkSplit(b *testing.B) {
	secret := make([]byte, 1024)
	if _, err := rand.Read(secret); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, 10, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine(b *testing.B) {
	secret := make([]byte, 1024)
	if _, err := rand.Read(secret); err != nil {
		b.Fatal(err)
	}
	shares, err := Split(secret, 10, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:4]); err != nil {
			b.Fatal(err)
		}
	}
}
