package shamir_test

import (
	"fmt"

	"repro/internal/shamir"
)

// Example splits a secret 5 ways with threshold 3: any three shares
// reconstruct it; two do not.
func Example() {
	secret := []byte("fall back to checkpoint bravo")
	shares, err := shamir.Split(secret, 5, 3)
	if err != nil {
		panic(err)
	}

	recovered, err := shamir.Combine([]shamir.Share{shares[4], shares[0], shares[2]})
	if err != nil {
		panic(err)
	}
	fmt.Printf("three shares: %s\n", recovered)

	garbage, err := shamir.Combine(shares[:2])
	if err != nil {
		panic(err)
	}
	fmt.Println("two shares reconstruct the secret:", string(garbage) == string(secret))
	// Output:
	// three shares: fall back to checkpoint bravo
	// two shares reconstruct the secret: false
}
