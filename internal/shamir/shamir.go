// Package shamir implements Shamir's (k, n) threshold secret sharing
// [Shamir 1979] over GF(2^8), the primitive behind the Threshold Pivot
// Scheme (TPS) for anonymous DTN routing [Jansen & Beverly 2011] that
// the paper discusses as the main alternative to onion groups
// (Sec. VI-C). A secret is split into n shares such that any k shares
// reconstruct it and any k-1 shares reveal nothing.
//
// Each byte of the secret is shared independently: share j carries the
// evaluations of per-byte random polynomials of degree k-1 at the
// nonzero field point x_j.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Share is one fragment of a split secret.
type Share struct {
	X uint8  // evaluation point, unique per share, never zero
	Y []byte // one evaluation per secret byte
}

// MaxShares is the largest supported n (nonzero points of GF(2^8)).
const MaxShares = 255

// Split divides secret into n shares with reconstruction threshold k.
// It draws randomness from crypto/rand.
func Split(secret []byte, n, k int) ([]Share, error) {
	return splitWithRand(secret, n, k, rand.Reader)
}

func splitWithRand(secret []byte, n, k int, rnd io.Reader) ([]Share, error) {
	switch {
	case len(secret) == 0:
		return nil, errors.New("shamir: empty secret")
	case k < 1:
		return nil, fmt.Errorf("shamir: threshold %d must be >= 1", k)
	case n < k:
		return nil, fmt.Errorf("shamir: cannot make %d shares with threshold %d", n, k)
	case n > MaxShares:
		return nil, fmt.Errorf("shamir: at most %d shares, requested %d", MaxShares, n)
	}
	shares := make([]Share, n)
	for j := range shares {
		shares[j] = Share{X: uint8(j + 1), Y: make([]byte, len(secret))}
	}
	coeffs := make([]byte, k-1)
	for i, b := range secret {
		if _, err := io.ReadFull(rnd, coeffs); err != nil {
			return nil, fmt.Errorf("shamir: randomness: %w", err)
		}
		for j := range shares {
			shares[j].Y[i] = evalPoly(b, coeffs, shares[j].X)
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least k distinct shares
// produced by Split with threshold k. Passing fewer shares than the
// threshold yields garbage (by design, it is indistinguishable from
// random), so callers must track k themselves.
func Combine(shares []Share) ([]byte, error) {
	if len(shares) == 0 {
		return nil, errors.New("shamir: no shares")
	}
	length := len(shares[0].Y)
	seen := make(map[uint8]bool, len(shares))
	for _, s := range shares {
		if s.X == 0 {
			return nil, errors.New("shamir: share with x = 0")
		}
		if seen[s.X] {
			return nil, fmt.Errorf("shamir: duplicate share point %d", s.X)
		}
		seen[s.X] = true
		if len(s.Y) != length {
			return nil, fmt.Errorf("shamir: share length mismatch: %d vs %d", len(s.Y), length)
		}
	}
	secret := make([]byte, length)
	for i := range secret {
		var v byte
		for j, sj := range shares {
			// Lagrange basis at x = 0.
			num, den := byte(1), byte(1)
			for m, sm := range shares {
				if m == j {
					continue
				}
				num = gfMul(num, sm.X)
				den = gfMul(den, sj.X^sm.X)
			}
			v ^= gfMul(sj.Y[i], gfMul(num, gfInv(den)))
		}
		secret[i] = v
	}
	return secret, nil
}

// evalPoly evaluates secret + c_1 x + ... + c_{k-1} x^{k-1} at x.
func evalPoly(secret byte, coeffs []byte, x uint8) byte {
	// Horner's rule from the highest coefficient down.
	v := byte(0)
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = gfMul(v, x) ^ coeffs[i]
	}
	return gfMul(v, x) ^ secret
}

// gfMul multiplies in GF(2^8) with the AES reduction polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11b).
func gfMul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 == 1 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfInv returns the multiplicative inverse in GF(2^8); it panics on
// zero (division by zero is a caller bug: share points are distinct).
func gfInv(a byte) byte {
	if a == 0 {
		panic("shamir: inverse of zero")
	}
	// a^254 = a^-1 by Fermat's little theorem for GF(2^8).
	result := byte(1)
	base := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
	}
	return result
}
