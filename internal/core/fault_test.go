package core

import (
	"reflect"
	"testing"
)

func TestContactFailureValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1, 1.5} {
		c := DefaultConfig()
		c.ContactFailure = bad
		if err := c.Validate(); err == nil {
			t.Errorf("contact failure %v validated", bad)
		}
	}
	c := DefaultConfig()
	c.ContactFailure = 0.3
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroContactFailureByteIdentical is the rate-0 acceptance
// criterion at the core layer: a network with ContactFailure = 0 is
// indistinguishable — trial-for-trial, draw-for-draw — from one built
// before the field existed (the zero-value config).
func TestZeroContactFailureByteIdentical(t *testing.T) {
	base := DefaultConfig()
	base.Nodes = 40
	zero := base
	zero.ContactFailure = 0
	a, err := NewNetwork(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(zero)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ta, err := a.NewTrial(i)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.NewTrial(i)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := a.Route(ta, 600, true, i)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Route(tb, 600, true, i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("trial %d diverged at fault rate 0: %+v vs %+v", i, ra, rb)
		}
		ma, err := a.ModelDelivery(ta, 600)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.ModelDeliveryLossy(tb, 600)
		if err != nil {
			t.Fatal(err)
		}
		if ma != mb {
			t.Fatalf("trial %d: lossy model at failure 0 = %v, ideal = %v", i, mb, ma)
		}
	}
}

// TestContactFailureDegradesDelivery: both the simulated and the
// thinned-model delivery rates fall monotonically with the fault
// rate, while the ideal model is untouched.
func TestContactFailureDegradesDelivery(t *testing.T) {
	const deadline = 120
	const trials = 150
	eval := func(failure float64) (sim, lossyModel, idealModel float64) {
		cfg := DefaultConfig()
		cfg.Nodes = 40
		cfg.ContactFailure = failure
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var delivered int
		for i := 0; i < trials; i++ {
			tr, err := nw.NewTrial(i)
			if err != nil {
				t.Fatal(err)
			}
			r, err := nw.Route(tr, deadline, false, i)
			if err != nil {
				t.Fatal(err)
			}
			if r.Delivered {
				delivered++
			}
			lm, err := nw.ModelDeliveryLossy(tr, deadline)
			if err != nil {
				t.Fatal(err)
			}
			lossyModel += lm
			im, err := nw.ModelDelivery(tr, deadline)
			if err != nil {
				t.Fatal(err)
			}
			idealModel += im
		}
		return float64(delivered) / trials, lossyModel / trials, idealModel / trials
	}
	s0, lm0, im0 := eval(0)
	s5, lm5, im5 := eval(0.5)
	if !(s0 > s5) {
		t.Fatalf("simulated delivery did not degrade: %.3f at p=0 vs %.3f at p=0.5", s0, s5)
	}
	if !(lm0 > lm5) {
		t.Fatalf("thinned model did not degrade: %.3f at p=0 vs %.3f at p=0.5", lm0, lm5)
	}
	if im0 != im5 {
		t.Fatalf("ideal model moved with the fault rate: %.3f vs %.3f", im0, im5)
	}
}

// TestTraceRouteLossy: trace replay under faults loses contacts —
// never gains them — and failure 0 reproduces Route exactly.
func TestTraceRouteLossy(t *testing.T) {
	tn := buildTraceNetwork(t)
	var base, faulted int
	for i := 0; i < 30; i++ {
		tr, err := tn.NewTrial(i, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		r0, err := tn.Route(tr, 1e6, 1, false, false)
		if err != nil {
			t.Fatal(err)
		}
		rz, err := tn.RouteLossy(tr, 1e6, 1, false, false, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r0, rz) {
			t.Fatalf("trial %d: RouteLossy(0) diverged from Route", i)
		}
		rf, err := tn.RouteLossy(tr, 1e6, 1, false, false, 0.6, i)
		if err != nil {
			t.Fatal(err)
		}
		if r0.Delivered {
			base++
		}
		if rf.Delivered {
			faulted++
		}
	}
	if faulted > base {
		t.Fatalf("faulted trace delivered more (%d) than unfaulted (%d)", faulted, base)
	}
	if _, err := tn.RouteLossy(&TraceTrial{}, 1, 1, false, false, 1.2, 0); err == nil {
		t.Fatal("accepted failure probability > 1")
	}
}
