// Package core is the top-level API of the reproduction: it wires the
// substrates (contact graphs, onion groups, routing protocols,
// adversary, analytical models) into the experiment primitives the
// paper's evaluation is built from.
//
// A Network realizes the paper's random-contact-graph environment
// (Table II); a TraceNetwork realizes the trace-replay environment of
// Sec. V-D/E. Both expose Trial objects that bundle a
// source/destination pair with its onion-group path, and can evaluate
// each trial by simulation (Route) and by the analytical models
// (ModelDelivery, plus the security helpers).
package core

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/model"
	"repro/internal/onion"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config mirrors the paper's simulation parameters (Table II).
type Config struct {
	Nodes     int     // n: number of nodes (default 100)
	GroupSize int     // g: onion group size (default 5)
	Relays    int     // K: onion groups per path (default 3)
	Copies    int     // L: message copies (default 1)
	Spray     bool    // source spray-and-wait augmentation (Sec. V)
	MinICT    float64 // minimum mean inter-contact time, minutes (default 1)
	MaxICT    float64 // maximum mean inter-contact time, minutes (default 360)
	Seed      uint64  // root seed for all randomness
	// ContactFailure is the fault layer's per-contact failure
	// probability in [0, 1): each contact independently fails before
	// any hand-off can happen. By Poisson thinning this is exactly a
	// rate scaling of every pair process to λ(1−p), which is how both
	// the direct sampler (SampleOnionLossy) and the lossy analytical
	// model (ModelDeliveryLossy) account for it. 0 (the default)
	// reproduces the unfaulted environment byte-for-byte.
	ContactFailure float64
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		Nodes:     100,
		GroupSize: 5,
		Relays:    3,
		Copies:    1,
		Spray:     true,
		MinICT:    1,
		MaxICT:    360,
		Seed:      1,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 3:
		return fmt.Errorf("core: need at least 3 nodes, got %d", c.Nodes)
	case c.GroupSize < 1 || c.GroupSize > c.Nodes:
		return fmt.Errorf("core: group size %d out of [1, %d]", c.GroupSize, c.Nodes)
	case c.Relays < 1:
		return fmt.Errorf("core: need at least one onion group, got %d", c.Relays)
	case c.Copies < 1:
		return fmt.Errorf("core: need at least one copy, got %d", c.Copies)
	case c.MinICT <= 0 || c.MaxICT <= c.MinICT:
		return fmt.Errorf("core: invalid ICT range [%v, %v)", c.MinICT, c.MaxICT)
	case c.ContactFailure < 0 || c.ContactFailure >= 1:
		return fmt.Errorf("core: contact failure %v out of [0,1)", c.ContactFailure)
	}
	return nil
}

// Network is a realized random-contact-graph environment: one contact
// graph and one onion-group partition, from which trials are drawn.
type Network struct {
	cfg    Config
	graph  *contact.Graph
	groups *groups.Directory
	root   *rng.Stream
}

// NewNetwork realizes the environment for the given configuration.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	g := contact.NewRandom(cfg.Nodes, cfg.MinICT, cfg.MaxICT, root.Split("graph"))
	return newNetwork(cfg, g, root)
}

// NewNetworkWithGraph builds the environment over a caller-provided
// contact graph (e.g. one loaded with contact.ReadGraph), so saved
// scenarios can be replayed exactly. cfg.Nodes must match the graph;
// cfg's ICT bounds are ignored.
func NewNetworkWithGraph(cfg Config, g *contact.Graph) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if g.N() != cfg.Nodes {
		return nil, fmt.Errorf("core: graph has %d nodes, config says %d", g.N(), cfg.Nodes)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: graph: %w", err)
	}
	return newNetwork(cfg, g, rng.New(cfg.Seed))
}

func newNetwork(cfg Config, g *contact.Graph, root *rng.Stream) (*Network, error) {
	dir, err := groups.NewPartition(cfg.Nodes, cfg.GroupSize, root.Split("groups"))
	if err != nil {
		return nil, fmt.Errorf("core: partition: %w", err)
	}
	return &Network{cfg: cfg, graph: g, groups: dir, root: root}, nil
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Graph returns the realized contact graph.
func (nw *Network) Graph() *contact.Graph { return nw.graph }

// Groups returns the onion-group partition.
func (nw *Network) Groups() *groups.Directory { return nw.groups }

// Trial bundles one message's endpoints with its onion path and the
// per-hop aggregate rates of Eq. 4.
type Trial struct {
	Src, Dst contact.NodeID
	GroupIDs []onion.GroupID
	Sets     [][]contact.NodeID
	Rates    []float64
}

// Eta returns the hop count K+1.
func (t *Trial) Eta() int { return len(t.Sets) + 1 }

// NewTrial draws the i-th trial: uniform distinct endpoints and K
// onion groups excluding the endpoint groups. Trials are deterministic
// in (Seed, i).
func (nw *Network) NewTrial(i int) (*Trial, error) {
	s := nw.root.SplitN("trial", i)
	src := contact.NodeID(s.IntN(nw.cfg.Nodes))
	dst := contact.NodeID(s.PickOther(nw.cfg.Nodes, int(src)))
	ids, err := nw.groups.SelectPath(src, dst, nw.cfg.Relays, s)
	if err != nil {
		return nil, fmt.Errorf("core: trial %d: %w", i, err)
	}
	sets := nw.groups.PathMembers(ids)
	// Endpoints never relay their own message: remove them from the
	// member sets if the partition placed them there (it cannot, since
	// SelectPath excludes endpoint groups, but ad-hoc callers may
	// construct trials directly).
	rates, err := contact.GroupPathRates(nw.graph, src, dst, sets)
	if err != nil {
		return nil, fmt.Errorf("core: trial %d: %w", i, err)
	}
	return &Trial{Src: src, Dst: dst, GroupIDs: ids, Sets: sets, Rates: rates}, nil
}

// Route simulates the abstract protocol for one trial. The deadline T
// is in minutes; runToCompletion keeps all L copies moving after the
// first delivery so the full transmission cost is observed.
func (nw *Network) Route(t *Trial, deadline float64, runToCompletion bool, i int) (routing.Result, error) {
	p := routing.Params{
		Src:             t.Src,
		Dst:             t.Dst,
		Sets:            t.Sets,
		Copies:          nw.cfg.Copies,
		Spray:           nw.cfg.Spray,
		RunToCompletion: runToCompletion,
	}
	return routing.SampleOnionLossy(nw.graph, p, deadline, nw.cfg.ContactFailure, nw.root.SplitN("route", i))
}

// ModelDelivery evaluates the trial's analytical delivery rate
// (Eq. 6 for L=1, Eq. 7 otherwise) under IDEAL contacts — the paper's
// published curves, regardless of cfg.ContactFailure. Compare with
// ModelDeliveryLossy to see how far faults pull simulation away from
// the ideal model.
func (nw *Network) ModelDelivery(t *Trial, deadline float64) (float64, error) {
	return model.DeliveryRateMultiCopy(t.Rates, nw.cfg.Copies, deadline)
}

// ModelDeliveryLossy evaluates the analytical delivery rate with the
// configured per-contact failure folded in: every per-hop aggregate
// rate of Eq. 4 is thinned to λ(1−p), which is exact for independent
// per-contact failures over Poisson pair processes. At
// ContactFailure = 0 it equals ModelDelivery.
func (nw *Network) ModelDeliveryLossy(t *Trial, deadline float64) (float64, error) {
	if nw.cfg.ContactFailure == 0 {
		return model.DeliveryRateMultiCopy(t.Rates, nw.cfg.Copies, deadline)
	}
	return model.DeliveryRateMultiCopy(nw.ThinnedRates(t), nw.cfg.Copies, deadline)
}

// ThinnedRates returns the trial's per-hop aggregate rates with the
// configured contact-failure rate folded in (λ(1−p), the exact
// thinning ModelDeliveryLossy evaluates). At ContactFailure = 0 it
// returns the trial's rate slice itself; callers must treat the
// result as read-only.
func (nw *Network) ThinnedRates(t *Trial) []float64 {
	if nw.cfg.ContactFailure == 0 {
		return t.Rates
	}
	keep := 1 - nw.cfg.ContactFailure
	thinned := make([]float64, len(t.Rates))
	for i, r := range t.Rates {
		thinned[i] = keep * r
	}
	return thinned
}

// Rand derives a labeled deterministic random stream from the
// network's root seed, for experiment-level randomness (adversary
// draws, auxiliary sampling) that must not perturb trial generation.
func (nw *Network) Rand(label string, i int) *rng.Stream {
	return nw.root.SplitN(label, i)
}

// RouteFrom routes one message from a fixed source to a fresh random
// destination through freshly selected onion groups. Longitudinal
// experiments (e.g. the predecessor attack) use it to observe a stream
// of messages from the same sender.
func (nw *Network) RouteFrom(src contact.NodeID, i int, deadline float64) (routing.Result, error) {
	if src < 0 || int(src) >= nw.cfg.Nodes {
		return routing.Result{}, fmt.Errorf("core: source %d out of range", src)
	}
	s := nw.root.SplitN("routefrom", i)
	dst := contact.NodeID(s.PickOther(nw.cfg.Nodes, int(src)))
	ids, err := nw.groups.SelectPath(src, dst, nw.cfg.Relays, s)
	if err != nil {
		return routing.Result{}, fmt.Errorf("core: route from %d: %w", src, err)
	}
	p := routing.Params{
		Src:    src,
		Dst:    dst,
		Sets:   nw.groups.PathMembers(ids),
		Copies: nw.cfg.Copies,
		Spray:  nw.cfg.Spray,
	}
	return routing.SampleOnionLossy(nw.graph, p, deadline, nw.cfg.ContactFailure, s.Split("route"))
}

// SecurityOutcome aggregates the two security metrics of one trial
// under one adversary realization.
type SecurityOutcome struct {
	TraceableRate        float64
	PathAnonymity        float64
	CompromisedPositions int
}

// SecurityFromResult measures the realized security metrics of a
// routed message: the traceable rate of the delivered copy (Eq. 1) and
// the observed path anonymity over all copies (Eq. 19 with the
// realized compromised-position count).
func (nw *Network) SecurityFromResult(res routing.Result, frac float64, i int) (SecurityOutcome, bool, error) {
	adv, err := adversary.RandomFraction(nw.cfg.Nodes, frac, nw.root.SplitN("adv", i))
	if err != nil {
		return SecurityOutcome{}, false, err
	}
	delivered, ok := res.DeliveredCopy()
	if !ok {
		return SecurityOutcome{}, false, nil
	}
	out := SecurityOutcome{
		TraceableRate:        adv.TraceableRate(delivered),
		CompromisedPositions: adv.CompromisedPositions(res.Copies, nw.cfg.Relays),
	}
	out.PathAnonymity = adv.ObservedPathAnonymity(nw.cfg.GroupSize, nw.cfg.Relays, res.Copies)
	return out, true, nil
}

// FastSecurityTrial measures the security metrics on a directly
// sampled path realization, valid because both metrics are independent
// of the contact-graph realization (Sec. V-A). This is how the paper's
// security figures are generated at scale.
func (nw *Network) FastSecurityTrial(frac float64, i int) (SecurityOutcome, error) {
	s := nw.root.SplitN("fastsec", i)
	adv, err := adversary.RandomFraction(nw.cfg.Nodes, frac, s.Split("adv"))
	if err != nil {
		return SecurityOutcome{}, err
	}
	senders, err := adversary.SampleSenders(nw.cfg.Nodes, nw.cfg.Relays, s.Split("senders"))
	if err != nil {
		return SecurityOutcome{}, err
	}
	positions, err := adversary.SamplePositions(
		nw.cfg.Nodes, nw.cfg.Relays, nw.cfg.Copies, nw.cfg.GroupSize, nw.cfg.Spray, s.Split("positions"))
	if err != nil {
		return SecurityOutcome{}, err
	}
	cO := adv.PositionsCompromised(positions)
	return SecurityOutcome{
		TraceableRate:        model.TraceableRateOfPath(adv.SenderBits(senders)),
		PathAnonymity:        model.PathAnonymity(nw.cfg.Nodes, nw.cfg.Relays+1, nw.cfg.GroupSize, float64(cO)),
		CompromisedPositions: cO,
	}, nil
}

// ModelTraceableRate returns the analytical traceable rate (Eq. 12)
// at the given compromised fraction.
func (nw *Network) ModelTraceableRate(frac float64) float64 {
	return model.TraceableRate(nw.cfg.Relays+1, frac)
}

// ModelPathAnonymity returns the analytical path anonymity (Eqs. 15,
// 19, 20) at the given compromised fraction.
func (nw *Network) ModelPathAnonymity(frac float64) float64 {
	return model.PathAnonymityMultiCopy(nw.cfg.Nodes, nw.cfg.Relays+1, nw.cfg.GroupSize, frac, nw.cfg.Copies)
}

// TraceNetwork is the trace-replay environment of Sec. V-D/E: a
// recorded contact trace with rates fitted for the analytical models.
type TraceNetwork struct {
	tr    *trace.Trace
	rates *contact.Graph
	root  *rng.Stream
}

// NewTraceNetwork wraps a contact trace, fitting per-pair exponential
// rates ("training the traces", Sec. V-A).
func NewTraceNetwork(tr *trace.Trace, seed uint64) (*TraceNetwork, error) {
	rates, err := tr.EstimateRates()
	if err != nil {
		return nil, fmt.Errorf("core: estimate rates: %w", err)
	}
	return &TraceNetwork{tr: tr, rates: rates, root: rng.New(seed)}, nil
}

// Trace returns the underlying trace.
func (tn *TraceNetwork) Trace() *trace.Trace { return tn.tr }

// Rates returns the fitted contact-rate graph.
func (tn *TraceNetwork) Rates() *contact.Graph { return tn.rates }

// N returns the node count.
func (tn *TraceNetwork) N() int { return tn.tr.NodeCount }

// TraceTrial is one trace-replay message: endpoints, ad-hoc onion
// groups, fitted rates, and the transmission start time (a contact of
// the source during business hours, per Sec. V-A).
type TraceTrial struct {
	Src, Dst contact.NodeID
	Sets     [][]contact.NodeID
	Rates    []float64 // may be nil if the fitted path has a zero-rate hop
	Start    float64   // seconds
}

// NewTrial draws the i-th trace trial with K ad-hoc groups of size g.
func (tn *TraceNetwork) NewTrial(i, g, k int) (*TraceTrial, error) {
	s := tn.root.SplitN("trial", i)
	n := tn.tr.NodeCount
	src := contact.NodeID(s.IntN(n))
	dst := contact.NodeID(s.PickOther(n, int(src)))
	sets, err := groups.AdHoc(n, g, k, []contact.NodeID{src, dst}, s.Split("groups"))
	if err != nil {
		return nil, fmt.Errorf("core: trace trial %d: %w", i, err)
	}
	// The message is initiated at one of the source's contacts,
	// uniformly chosen: "a source node initiates a message
	// transmission at any time after it has a contact with any node".
	srcContacts := tn.tr.ContactsOf(src)
	if len(srcContacts) == 0 {
		return nil, fmt.Errorf("core: trace trial %d: source %d never meets anyone", i, src)
	}
	start := tn.tr.Contacts[srcContacts[s.IntN(len(srcContacts))]].Start
	rates, err := contact.GroupPathRates(tn.rates, src, dst, sets)
	if err != nil {
		rates = nil // the model cannot be evaluated for this trial
	}
	return &TraceTrial{Src: src, Dst: dst, Sets: sets, Rates: rates, Start: start}, nil
}

// Route replays the trace for one trial. deadline is in seconds.
func (tn *TraceNetwork) Route(t *TraceTrial, deadline float64, copies int, spray, runToCompletion bool) (routing.Result, error) {
	return tn.RouteLossy(t, deadline, copies, spray, runToCompletion, 0, 0)
}

// RouteLossy replays the trace for one trial with the fault layer's
// per-contact failure probability: each recorded contact independently
// fails with probability failure before the protocol sees it
// (sim.Lossy). Traces have no Poisson structure to thin, so the DES
// wrapper is the only exact treatment here. The failure schedule is
// deterministic in (seed, i); failure = 0 consumes no stream state and
// reproduces Route byte-for-byte.
func (tn *TraceNetwork) RouteLossy(t *TraceTrial, deadline float64, copies int, spray, runToCompletion bool, failure float64, i int) (routing.Result, error) {
	if failure < 0 || failure >= 1 {
		return routing.Result{}, fmt.Errorf("core: contact failure %v out of [0,1)", failure)
	}
	p := routing.Params{
		Src:             t.Src,
		Dst:             t.Dst,
		Sets:            t.Sets,
		Copies:          copies,
		Spray:           spray,
		StartTime:       t.Start,
		RunToCompletion: runToCompletion,
	}
	o, err := routing.NewOnion(p)
	if err != nil {
		return routing.Result{}, err
	}
	sim.Replay(tn.tr, t.Start, deadline, sim.Lossy(o, failure, tn.root.SplitN("loss", i)))
	return o.Result(), nil
}

// ModelDelivery evaluates the analytical delivery rate for a trace
// trial, or ok=false when the fitted rates contain a zero-rate hop.
func (tn *TraceNetwork) ModelDelivery(t *TraceTrial, deadline float64, copies int) (float64, bool, error) {
	if t.Rates == nil {
		return 0, false, nil
	}
	v, err := model.DeliveryRateMultiCopy(t.Rates, copies, deadline)
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}
