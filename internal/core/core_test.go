package core

import (
	"math"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"too few nodes": func(c *Config) { c.Nodes = 2 },
		"zero group":    func(c *Config) { c.GroupSize = 0 },
		"group > n":     func(c *Config) { c.GroupSize = 101 },
		"zero relays":   func(c *Config) { c.Relays = 0 },
		"zero copies":   func(c *Config) { c.Copies = 0 },
		"bad ICT":       func(c *Config) { c.MinICT = 10; c.MaxICT = 5 },
	}
	for name, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestNewNetworkDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := a.NewTrial(7)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.NewTrial(7)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Src != tb.Src || ta.Dst != tb.Dst {
		t.Fatal("same seed produced different trials")
	}
	for i := range ta.Rates {
		if ta.Rates[i] != tb.Rates[i] {
			t.Fatal("same seed produced different rates")
		}
	}
}

func TestTrialShape(t *testing.T) {
	nw, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr, err := nw.NewTrial(i)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Src == tr.Dst {
			t.Fatal("trial with identical endpoints")
		}
		if len(tr.Sets) != 3 || tr.Eta() != 4 {
			t.Fatalf("K=%d eta=%d", len(tr.Sets), tr.Eta())
		}
		if len(tr.Rates) != 4 {
			t.Fatalf("rates = %d", len(tr.Rates))
		}
		for _, set := range tr.Sets {
			for _, v := range set {
				if v == tr.Src || v == tr.Dst {
					t.Fatal("endpoint inside an onion group")
				}
			}
		}
	}
}

func TestRouteAndModelAgreeOnSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 50
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.NewTrial(0)
	if err != nil {
		t.Fatal(err)
	}
	// Enormous deadline: both simulation and model must deliver.
	res, err := nw.Route(tr, 1e7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("not delivered with huge deadline")
	}
	m, err := nw.ModelDelivery(tr, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.999 {
		t.Fatalf("model did not saturate: %v", m)
	}
	if res.Transmissions != 4 { // single copy: K+1
		t.Fatalf("transmissions = %d", res.Transmissions)
	}
}

func TestSecurityFromResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 50
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.NewTrial(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(tr, 1e7, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := nw.SecurityFromResult(res, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no delivered copy")
	}
	if out.TraceableRate < 0 || out.TraceableRate > 1 {
		t.Fatalf("traceable rate %v", out.TraceableRate)
	}
	if out.PathAnonymity < 0 || out.PathAnonymity > 1 {
		t.Fatalf("anonymity %v", out.PathAnonymity)
	}
	// Zero compromise: metrics at their extremes.
	clean, ok, err := nw.SecurityFromResult(res, 0, 2)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if clean.TraceableRate != 0 || math.Abs(clean.PathAnonymity-1) > 1e-12 {
		t.Fatalf("clean outcome: %+v", clean)
	}
}

func TestFastSecurityTrialStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical check")
	}
	cfg := DefaultConfig()
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const frac = 0.2
	const runs = 20000
	var trSum, anSum float64
	for i := 0; i < runs; i++ {
		out, err := nw.FastSecurityTrial(frac, i)
		if err != nil {
			t.Fatal(err)
		}
		trSum += out.TraceableRate
		anSum += out.PathAnonymity
	}
	gotTR, gotAN := trSum/runs, anSum/runs
	wantTR := nw.ModelTraceableRate(frac)
	wantAN := nw.ModelPathAnonymity(frac)
	if math.Abs(gotTR-wantTR) > 0.01 {
		t.Errorf("traceable: measured %v vs model %v", gotTR, wantTR)
	}
	if math.Abs(gotAN-wantAN) > 0.02 {
		t.Errorf("anonymity: measured %v vs model %v", gotAN, wantAN)
	}
}

func buildTraceNetwork(t *testing.T) *TraceNetwork {
	t.Helper()
	tr, err := trace.GenerateCambridge(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTraceNetwork(tr, 9)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestTraceNetworkTrial(t *testing.T) {
	tn := buildTraceNetwork(t)
	if tn.N() != 12 {
		t.Fatalf("N = %d", tn.N())
	}
	for i := 0; i < 20; i++ {
		tr, err := tn.NewTrial(i, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Src == tr.Dst {
			t.Fatal("identical endpoints")
		}
		if len(tr.Sets) != 3 {
			t.Fatalf("K = %d", len(tr.Sets))
		}
		if tr.Start < 0 {
			t.Fatalf("start %v", tr.Start)
		}
	}
}

func TestTraceNetworkRouteDelivers(t *testing.T) {
	tn := buildTraceNetwork(t)
	delivered := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		tr, err := tn.NewTrial(i, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Route(tr, 3600, 1, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			delivered++
			if res.Time < tr.Start {
				t.Fatalf("delivered before start: %v < %v", res.Time, tr.Start)
			}
			if res.Time-tr.Start > 3600 {
				t.Fatalf("delivered past deadline: %v", res.Time-tr.Start)
			}
		}
	}
	// Cambridge is dense: most messages should arrive within an hour
	// of active time.
	if delivered < trials/2 {
		t.Fatalf("only %d/%d delivered on the dense trace", delivered, trials)
	}
}

func TestTraceNetworkModelDelivery(t *testing.T) {
	tn := buildTraceNetwork(t)
	tr, err := tn.NewTrial(0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tn.ModelDelivery(tr, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("fitted rates unavailable for this trial")
	}
	if v < 0.9 {
		t.Fatalf("model delivery %v too low for a full-day deadline", v)
	}
}

func BenchmarkNetworkRoute(b *testing.B) {
	nw, err := NewNetwork(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := nw.NewTrial(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Route(tr, 1800, false, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceRoute(b *testing.B) {
	tr, err := trace.GenerateCambridge(rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	tn, err := NewTraceNetwork(tr, 9)
	if err != nil {
		b.Fatal(err)
	}
	trial, err := tn.NewTrial(0, 10, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.Route(trial, 1800, 1, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAccessors(t *testing.T) {
	cfg := DefaultConfig()
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Config().Nodes != cfg.Nodes {
		t.Fatal("Config accessor wrong")
	}
	if nw.Graph().N() != cfg.Nodes {
		t.Fatal("Graph accessor wrong")
	}
	if nw.Groups().N() != cfg.Nodes {
		t.Fatal("Groups accessor wrong")
	}
	tn := buildTraceNetwork(t)
	if tn.Trace().NodeCount != 12 || tn.Rates().N() != 12 {
		t.Fatal("trace accessors wrong")
	}
}

func TestNewNetworkRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("accepted bad config")
	}
}

func TestNewTraceNetworkRejectsBadTrace(t *testing.T) {
	bad := &trace.Trace{NodeCount: 2, Contacts: []trace.Contact{{A: 0, B: 1, Start: 0, End: 0}}}
	if _, err := NewTraceNetwork(bad, 1); err == nil {
		t.Fatal("accepted zero-duration trace")
	}
}

func TestSecurityFromResultUndelivered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.NewTrial(0)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny deadline: almost surely undelivered.
	res, err := nw.Route(tr, 1e-9, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Skip("improbably delivered")
	}
	_, ok, err := nw.SecurityFromResult(res, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("security outcome from an undelivered message")
	}
}

func TestSecurityFromResultBadFraction(t *testing.T) {
	nw, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.NewTrial(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(tr, 1e7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nw.SecurityFromResult(res, 1.5, 0); err == nil {
		t.Fatal("accepted fraction > 1")
	}
	if _, err := nw.FastSecurityTrial(-0.5, 0); err == nil {
		t.Fatal("accepted negative fraction")
	}
}

func TestTraceModelDeliveryNilRates(t *testing.T) {
	tn := buildTraceNetwork(t)
	trial := &TraceTrial{Src: 0, Dst: 1, Sets: [][]contact.NodeID{{2}}, Rates: nil, Start: 0}
	_, ok, err := tn.ModelDelivery(trial, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("model evaluated with nil rates")
	}
	bad := &TraceTrial{Rates: []float64{1}, Start: 0}
	if _, _, err := tn.ModelDelivery(bad, 100, 0); err == nil {
		t.Fatal("accepted zero copies")
	}
}

func TestNewNetworkWithGraph(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	g := contact.NewRandom(30, 1, 100, rng.New(9))
	nw, err := NewNetworkWithGraph(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Graph() != g {
		t.Fatal("network does not use the provided graph")
	}
	// Mismatched size rejected.
	bad := DefaultConfig()
	bad.Nodes = 10
	if _, err := NewNetworkWithGraph(bad, g); err == nil {
		t.Fatal("accepted mismatched node count")
	}
	if _, err := NewNetworkWithGraph(cfg, nil); err == nil {
		t.Fatal("accepted nil graph")
	}
	badCfg := cfg
	badCfg.GroupSize = 0
	if _, err := NewNetworkWithGraph(badCfg, g); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestRandDeterministic(t *testing.T) {
	nw, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := nw.Rand("x", 3).Uint64()
	b := nw.Rand("x", 3).Uint64()
	c := nw.Rand("x", 4).Uint64()
	if a != b {
		t.Fatal("Rand not deterministic per (label, index)")
	}
	if a == c {
		t.Fatal("Rand does not vary with index")
	}
}

func TestRouteFrom(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 40
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const src = contact.NodeID(7)
	for i := 0; i < 20; i++ {
		res, err := nw.RouteFrom(src, i, 1e7)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			continue
		}
		c, ok := res.DeliveredCopy()
		if !ok {
			t.Fatal("delivered without a delivered copy")
		}
		if c.Visits[0].Node != src {
			t.Fatalf("path does not start at the fixed source: %+v", c.Visits[0])
		}
	}
	if _, err := nw.RouteFrom(999, 0, 100); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}
