package core_test

import (
	"fmt"

	"repro/internal/core"
)

// Example reproduces the paper's basic experiment in a few lines:
// realize a random contact network (Table II defaults), draw a trial,
// and compare the simulated outcome with the analytical models.
func Example() {
	cfg := core.DefaultConfig() // n=100, g=5, K=3, L=1, ICT 1-360 min
	nw, err := core.NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	trial, err := nw.NewTrial(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trial: %d hops through %d onion groups\n", trial.Eta(), len(trial.Sets))

	const deadline = 600 // minutes
	res, err := nw.Route(trial, deadline, false, 0)
	if err != nil {
		panic(err)
	}
	analytical, err := nw.ModelDelivery(trial, deadline)
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulated delivery: %v (analysis predicts %.2f)\n", res.Delivered, analytical)
	fmt.Printf("transmissions: %d (single copy costs K+1 = %d)\n", res.Transmissions, cfg.Relays+1)
	// Output:
	// trial: 4 hops through 3 onion groups
	// simulated delivery: true (analysis predicts 1.00)
	// transmissions: 4 (single copy costs K+1 = 4)
}

// ExampleNetwork_FastSecurityTrial measures the security metrics the
// paper's Figs. 6-9 sweep.
func ExampleNetwork_FastSecurityTrial() {
	nw, err := core.NewNetwork(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	const frac = 0.2 // 20% of nodes compromised
	var traceable, anonymity float64
	const runs = 10000
	for i := 0; i < runs; i++ {
		out, err := nw.FastSecurityTrial(frac, i)
		if err != nil {
			panic(err)
		}
		traceable += out.TraceableRate
		anonymity += out.PathAnonymity
	}
	fmt.Printf("measured traceable rate %.2f (model %.2f)\n", traceable/runs, nw.ModelTraceableRate(frac))
	fmt.Printf("measured path anonymity %.2f (model %.2f)\n", anonymity/runs, nw.ModelPathAnonymity(frac))
	// Output:
	// measured traceable rate 0.07 (model 0.07)
	// measured path anonymity 0.89 (model 0.89)
}
