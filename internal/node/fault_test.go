package node

import (
	"errors"
	"testing"

	"repro/internal/bundle"
	"repro/internal/contact"
	"repro/internal/fault"
	"repro/internal/rng"
)

// TestTruncatedAtHeaderBoundaryRejected is the regression test for the
// satellite fix: a frame torn at exactly the header boundary — the
// header itself parses cleanly, but payload and CRC trailer are gone —
// must be rejected by the receive path, never silently accepted.
func TestTruncatedAtHeaderBoundaryRejected(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 10, GroupSize: 2, Seed: 5})
	if _, err := nw.Node(0).Send(SendSpec{Dst: 9, Payload: []byte("torn"), Relays: 1, Copies: 1}, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	src := nw.Node(0)
	src.mu.Lock()
	var frame []byte
	for _, c := range src.buffer {
		var err error
		if frame, err = c.toBundle().Marshal(); err != nil {
			src.mu.Unlock()
			t.Fatal(err)
		}
	}
	src.mu.Unlock()
	if frame == nil {
		t.Fatal("no custody frame after Send")
	}
	torn := fault.Truncate(frame, bundle.HeaderSize)
	c, err := receiveFrame(torn)
	if err == nil {
		t.Fatalf("receiveFrame accepted a header-boundary tear as %+v", c)
	}
	if !errors.Is(err, bundle.ErrTruncated) {
		t.Fatalf("header-boundary tear classified %v, want bundle.ErrTruncated", err)
	}
	// Every other tear point is rejected too.
	for keep := 0; keep < len(frame); keep++ {
		if _, err := receiveFrame(fault.Truncate(frame, keep)); err == nil {
			t.Fatalf("receiveFrame accepted a tear at %d bytes", keep)
		}
	}
}

// TestTruncationAlwaysTornNeverTransfers drives a network where every
// hand-off tears and the retry budget is zero: nothing may ever change
// custody, and senders must keep theirs.
func TestTruncationAlwaysTornNeverTransfers(t *testing.T) {
	nw := testNetwork(t, Config{
		Nodes: 10, GroupSize: 2, Seed: 5,
		Faults: fault.Config{Truncate: 1, Retries: 0},
	})
	src := nw.Node(0)
	if _, err := src.Send(SendSpec{Dst: 9, Payload: []byte("torn"), Relays: 1, Copies: 1}, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(10, 1, 10, rng.New(2))
	nw.DriveSynthetic(g, 5e4, rng.New(3), nil)
	stats := nw.TotalStats()
	if stats.Forwarded != 0 || stats.Delivered != 0 {
		t.Fatalf("custody moved under total truncation: %+v", stats)
	}
	if stats.Truncated == 0 {
		t.Fatal("no truncation ever recorded")
	}
	if src.BufferLen() != 1 {
		t.Fatalf("sender lost custody of its torn message: buffer %d", src.BufferLen())
	}
}

// TestTruncationRetriedInContact checks the retry path: with a
// mid-range tear probability and an in-contact retry budget, messages
// still arrive and the retransmission counters move.
func TestTruncationRetriedInContact(t *testing.T) {
	nw := testNetwork(t, Config{
		Nodes: 20, GroupSize: 4, Seed: 9,
		Faults: fault.Config{Truncate: 0.4, Retries: 4},
	})
	const msgs = 8
	ids := make([]string, msgs)
	for i := range ids {
		id, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: []byte("persist"), Relays: 2, Copies: 1}, rng.New(uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	g := contact.NewRandom(20, 1, 10, rng.New(11))
	dst := nw.Node(19)
	nw.DriveSynthetic(g, 1e7, rng.New(12), func() bool { return dst.DeliveredCount() == msgs })
	for i, id := range ids {
		if _, ok := dst.Delivered(id); !ok {
			t.Fatalf("message %d lost under truncation with retries", i)
		}
	}
	stats := nw.TotalStats()
	if stats.Truncated == 0 || stats.Retried == 0 {
		t.Fatalf("retry path never exercised: %+v", stats)
	}
	if dst.Stats().Delivered != msgs {
		t.Fatalf("destination delivered %d times for %d messages", dst.Stats().Delivered, msgs)
	}
}

// TestCorruptionDroppedGracefully: with every hand-off flipped, no
// payload may ever reach an application layer, and the sender retains
// custody for later contacts (graceful drop, no in-contact retry).
func TestCorruptionDroppedGracefully(t *testing.T) {
	nw := testNetwork(t, Config{
		Nodes: 10, GroupSize: 2, Seed: 3,
		Faults: fault.Config{Corrupt: 1, Retries: 4},
	})
	src := nw.Node(0)
	if _, err := src.Send(SendSpec{Dst: 9, Payload: []byte("secret"), Relays: 1, Copies: 1}, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(10, 1, 10, rng.New(2))
	nw.DriveSynthetic(g, 5e4, rng.New(3), nil)
	stats := nw.TotalStats()
	if stats.Delivered != 0 {
		t.Fatalf("corrupted bundle reached an application layer: %+v", stats)
	}
	if stats.Corrupted == 0 {
		t.Fatal("no corruption ever recorded")
	}
	// Most flips are classified as tamper and dropped without retry; a
	// flip inside the length field is indistinguishable from a tear on
	// the wire and may legitimately trigger retransmissions.
	if stats.Retried > stats.Corrupted {
		t.Fatalf("corruption retried more often than it was detected: %+v", stats)
	}
	if src.BufferLen() != 1 {
		t.Fatalf("sender lost custody under corruption: buffer %d", src.BufferLen())
	}
}

// TestDuplicateRedeliverySuppressed forces a duplicate on every
// successful hand-off: each message must still be delivered to the
// application layer exactly once.
func TestDuplicateRedeliverySuppressed(t *testing.T) {
	nw := testNetwork(t, Config{
		Nodes: 20, GroupSize: 4, Seed: 7,
		Faults: fault.Config{Duplicate: 1},
	})
	const msgs = 6
	for i := 0; i < msgs; i++ {
		if _, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: []byte("once"), Relays: 2, Copies: 1}, rng.New(uint64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	g := contact.NewRandom(20, 1, 10, rng.New(8))
	dst := nw.Node(19)
	nw.DriveSynthetic(g, 1e7, rng.New(9), func() bool { return dst.DeliveredCount() == msgs })
	if got := dst.Stats().Delivered; got != msgs {
		t.Fatalf("application layer delivered %d times for %d messages", got, msgs)
	}
	if nw.TotalStats().Duplicates == 0 {
		t.Fatal("no duplicate was ever suppressed at duplicate probability 1")
	}
}

// TestCrashDropsVolatileCustody: churn with volatile buffers loses
// custody; with PreserveCustody the same schedule keeps it.
func TestCrashDropsVolatileCustody(t *testing.T) {
	run := func(preserve bool) Stats {
		nw := testNetwork(t, Config{
			Nodes: 10, GroupSize: 2, Seed: 13,
			Faults: fault.Config{Crash: 1, PreserveCustody: preserve},
		})
		if _, err := nw.Node(0).Send(SendSpec{Dst: 9, Payload: []byte("churn"), Relays: 1, Copies: 1}, rng.New(1)); err != nil {
			t.Fatal(err)
		}
		g := contact.NewRandom(10, 1, 10, rng.New(2))
		nw.DriveSynthetic(g, 200, rng.New(3), nil)
		return nw.TotalStats()
	}
	volatile := run(false)
	if volatile.Crashes == 0 {
		t.Fatalf("no crash at probability 1: %+v", volatile)
	}
	if volatile.CrashDropped == 0 {
		t.Fatalf("crashes never dropped custody: %+v", volatile)
	}
	durable := run(true)
	if durable.Crashes == 0 {
		t.Fatalf("no crash with preserved custody: %+v", durable)
	}
	if durable.CrashDropped != 0 {
		t.Fatalf("preserved custody still dropped %d onions", durable.CrashDropped)
	}
}

// TestCrashKeepsDeliveredState: a destination that crashes after
// delivery keeps its delivered log (durable state) and still
// suppresses a late duplicate copy.
func TestCrashKeepsDeliveredState(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 10, GroupSize: 2, Seed: 21})
	dst := nw.Node(9)
	id, err := nw.Node(0).Send(SendSpec{Dst: 9, Payload: []byte("durable"), Relays: 1, Copies: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(10, 1, 10, rng.New(2))
	nw.DriveSynthetic(g, 1e6, rng.New(3), func() bool { return dst.DeliveredCount() == 1 })
	if dst.DeliveredCount() != 1 {
		t.Fatal("message never delivered")
	}
	dst.mu.Lock()
	dst.crashLocked(false)
	dst.mu.Unlock()
	if _, ok := dst.Delivered(id); !ok {
		t.Fatal("crash lost the delivered-payload log")
	}
	if !dst.KnowsDelivered(id) {
		t.Fatal("crash lost the acknowledgement log")
	}
}

// TestFaultConfigValidatedAtConstruction: NewNetwork refuses an
// out-of-range fault config instead of panicking later.
func TestFaultConfigValidatedAtConstruction(t *testing.T) {
	if _, err := NewNetwork(Config{Nodes: 10, GroupSize: 2, Faults: fault.Config{Truncate: 1.5}}); err == nil {
		t.Fatal("accepted truncate probability > 1")
	}
	if _, err := NewNetwork(Config{Nodes: 10, GroupSize: 2, Faults: fault.Config{Retries: -1}}); err == nil {
		t.Fatal("accepted negative retry budget")
	}
}

// TestLegacyCorruptProbFoldsIntoFaults: the old single-knob config
// behaves as Faults.Corrupt.
func TestLegacyCorruptProbFoldsIntoFaults(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 10, GroupSize: 2, Seed: 3, CorruptProb: 1})
	if got := nw.plan.Config().Corrupt; got != 1 {
		t.Fatalf("CorruptProb not folded: plan corrupt = %v", got)
	}
	// An explicit Faults.Corrupt wins over the legacy knob.
	nw = testNetwork(t, Config{Nodes: 10, GroupSize: 2, Seed: 3, CorruptProb: 0.9, Faults: fault.Config{Corrupt: 0.5}})
	if got := nw.plan.Config().Corrupt; got != 0.5 {
		t.Fatalf("explicit fault config overridden: plan corrupt = %v", got)
	}
}
