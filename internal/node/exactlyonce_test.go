package node_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/contact"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/rng"
)

// trialDigest is one trial's observable outcome, comparable across
// worker counts.
type trialDigest struct {
	Delivered  int
	AppDeliver int // destination's app-layer delivery count
	Truncated  int
	Retried    int
	Duplicates int
}

// faultTrial runs one self-contained network under heavy truncation
// and duplicate injection and returns its digest. All randomness is
// derived from the trial index, so the digest is a pure function of
// (seed, index) — the MapTrials worker count cannot affect it.
func faultTrial(seed uint64, i int) (trialDigest, error) {
	const msgs = 3
	nw, err := node.NewNetwork(node.Config{
		Nodes: 10, GroupSize: 2,
		Seed: seed*1000003 + uint64(i),
		Faults: fault.Config{
			Truncate:  0.5,
			Duplicate: 0.5,
			Retries:   8,
		},
	})
	if err != nil {
		return trialDigest{}, err
	}
	dst := nw.Node(9)
	ids := make([]string, msgs)
	for m := range ids {
		id, err := nw.Node(0).Send(node.SendSpec{
			Dst: 9, Payload: []byte("exactly once"), Relays: 1, Copies: 1,
		}, rng.New(seed).SplitN("path", i*msgs+m))
		if err != nil {
			return trialDigest{}, err
		}
		ids[m] = id
	}
	g := contact.NewRandom(10, 1, 2, rng.New(seed).SplitN("graph", i))
	nw.DriveSynthetic(g, 1e7, rng.New(seed).SplitN("drive", i), func() bool {
		return dst.DeliveredCount() == msgs
	})
	for m, id := range ids {
		if _, ok := dst.Delivered(id); !ok {
			return trialDigest{}, fmt.Errorf("trial %d: message %d never delivered", i, m)
		}
	}
	stats := nw.TotalStats()
	return trialDigest{
		Delivered:  stats.Delivered,
		AppDeliver: dst.Stats().Delivered,
		Truncated:  stats.Truncated,
		Retried:    stats.Retried,
		Duplicates: stats.Duplicates,
	}, nil
}

// TestTruncationDeliversExactlyOnce is the satellite property test:
// N injected truncations with eventual success always deliver each
// message to the application layer exactly once — never zero, never
// twice — for seeds {1, 42} and MapTrials workers {1, 4}. The digests
// are additionally byte-compared across worker counts.
func TestTruncationDeliversExactlyOnce(t *testing.T) {
	const trials = 12
	for _, seed := range []uint64{1, 42} {
		var ref []trialDigest
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				digests, err := experiment.MapTrials(workers, trials, func(i int) (trialDigest, error) {
					return faultTrial(seed, i)
				})
				if err != nil {
					t.Fatal(err)
				}
				var truncations int
				for i, d := range digests {
					if d.Delivered != 3 || d.AppDeliver != 3 {
						t.Fatalf("trial %d: delivered %d network-wide / %d at destination, want exactly 3", i, d.Delivered, d.AppDeliver)
					}
					truncations += d.Truncated
				}
				if truncations == 0 {
					t.Fatal("vacuous run: no truncation was ever injected")
				}
				if ref == nil {
					ref = digests
				} else if !reflect.DeepEqual(ref, digests) {
					t.Fatalf("fault schedule depends on worker count:\n 1 worker: %+v\n %d workers: %+v", ref, workers, digests)
				}
			})
		}
	}
}
