package node

import (
	"bytes"
	"testing"

	"repro/internal/onion"
)

func TestCarriedBundleRoundTrip(t *testing.T) {
	c := &carried{
		id:      "00112233445566778899aabbccddeeff",
		data:    []byte("layered ciphertext"),
		group:   onion.GroupID(5),
		tickets: 3,
		expiry:  120,
	}
	frame, err := c.toBundle().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiveFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.id != c.id || got.group != c.group || got.lastHop || got.expiry != c.expiry {
		t.Fatalf("round trip: %+v", got)
	}
	if !bytes.Equal(got.data, c.data) {
		t.Fatal("data mismatch")
	}
	// Receivers always get exactly one ticket regardless of sender
	// state.
	if got.tickets != 1 {
		t.Fatalf("tickets = %d, want 1", got.tickets)
	}
}

func TestCarriedBundleLastHop(t *testing.T) {
	c := &carried{
		id:        "00112233445566778899aabbccddeeff",
		data:      []byte("inner"),
		lastHop:   true,
		deliverTo: 9,
		tickets:   1,
	}
	frame, err := c.toBundle().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiveFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.lastHop || got.deliverTo != 9 {
		t.Fatalf("last hop fields: %+v", got)
	}
}

func TestMalformedMessageIDPanics(t *testing.T) {
	c := &carried{id: "not-hex", data: []byte("x"), group: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on malformed id")
		}
	}()
	_ = c.toBundle()
}

func TestReceiveFrameRejectsGarbage(t *testing.T) {
	if _, err := receiveFrame([]byte("junk")); err == nil {
		t.Fatal("accepted garbage frame")
	}
}
