package node

// Transport surface: the custody-exchange protocol factored out of
// Network.Meet so it can run over any frame transport. Network keeps
// the in-memory pipe (with PR 2 fault injection); internal/cluster
// drives the same methods over real TCP sockets. The protocol is a
// half-duplex offer/verdict exchange per direction:
//
//	sender:   OffersTo(peer)             -> eligible frames, FIFO order
//	receiver: Receive(frame, senderHops) -> accept / classified reject
//	sender:   HandoffAccepted(id)        -> on an accepted verdict only
//
// Custody safety falls out of the verdict discipline: a sender that
// never hears an accept keeps the onion and re-offers at a later
// contact (the inter-contact gap is the backoff), so a connection torn
// mid-contact can delay but never lose or duplicate a delivery — the
// receiver's seen log rejects the re-offer if the verdict, not the
// transfer, was what got lost.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bundle"
	"repro/internal/contact"
)

// Offer is one custody record proposed for hand-off to a peer: the
// marshaled bundle frame plus the hop count that rides alongside it.
type Offer struct {
	MsgID string
	Hops  int
	Frame []byte
}

// custodyFIFOLocked snapshots the buffer in custody (FIFO) order. The
// caller holds n.mu. Map iteration order and crypto-random message IDs
// would both make transfer order — and with it buffer-refusal outcomes
// — nondeterministic for a fixed seed.
func (n *Node) custodyFIFOLocked() []*carried {
	held := make([]*carried, 0, len(n.buffer))
	for _, c := range n.buffer {
		held = append(held, c)
	}
	sort.Slice(held, func(i, j int) bool { return held[i].seq < held[j].seq })
	return held
}

// eligibleLocked reports whether peer may take custody of c: the final
// destination of a last-hop onion, a member of the addressed group, or
// (in spray mode) any node while spare tickets remain. The caller
// holds n.mu.
func (n *Node) eligibleLocked(c *carried, peer contact.NodeID, spray bool) bool {
	switch {
	case c.lastHop:
		return c.deliverTo == peer
	case n.dir.Contains(c.group, peer):
		return true
	case spray && c.tickets >= 2:
		return true
	}
	return false
}

// OffersTo returns a marshaled frame for every onion in custody that
// peer is eligible to receive, in custody FIFO order. The offers are
// snapshots: custody is only released by HandoffAccepted, so a
// connection that dies between offer and verdict leaves the sender
// holding every unacknowledged onion.
func (n *Node) OffersTo(peer contact.NodeID, spray bool) []Offer {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []Offer
	for _, c := range n.custodyFIFOLocked() {
		if !n.eligibleLocked(c, peer, spray) {
			continue
		}
		frame, err := c.toBundle().Marshal()
		if err != nil {
			// A carried onion that cannot be framed is a programming
			// error; surface it loudly rather than silently dropping.
			panic(fmt.Sprintf("node: marshal custody of %s: %v", c.id, err))
		}
		out = append(out, Offer{MsgID: c.id, Hops: c.hops, Frame: frame})
	}
	return out
}

// Receive parses, validates, and ingests one incoming wire frame from
// a peer whose copy had traveled senderHops custody transfers. It
// reports whether the frame was a final delivery to this node. Damaged
// frames fail before any state changes and are classified like the
// in-memory pipe classifies them: bundle.ErrTruncated (torn — the peer
// may retransmit in-contact), bundle.ErrTampered (drop gracefully).
func (n *Node) Receive(frame []byte, senderHops int) (delivered bool, err error) {
	c, err := receiveFrame(frame)
	if err != nil {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.stats.Rejected++
		if errors.Is(err, bundle.ErrTruncated) {
			n.stats.Truncated++
		} else {
			n.stats.Corrupted++
		}
		return false, err
	}
	c.hops = senderHops + 1
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.acceptLocked(c); err != nil {
		return false, err
	}
	return c.lastHop && c.deliverTo == n.id, nil
}

// HandoffAccepted finalizes a successful hand-off: one ticket is
// spent, and custody is released when none remain. Calling it for an
// unknown message (e.g. after a crash dropped the buffer) is a no-op.
func (n *Node) HandoffAccepted(msgID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.buffer[msgID]
	if !ok {
		return
	}
	n.stats.Forwarded++
	c.tickets--
	if c.tickets <= 0 {
		delete(n.buffer, msgID)
	}
}

// HandoffRefused charges one buffer-full refusal against a carried
// copy and reports whether the re-offer budget is now exhausted and
// custody was released (the backpressure drop policy — see
// SetReofferLimit). Calling it for an unknown message is a no-op.
func (n *Node) HandoffRefused(msgID string) (dropped bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.buffer[msgID]
	if !ok {
		return false
	}
	return n.refusedLocked(c)
}

// Expire drops onions past their deadline, as Network.Meet does at the
// start of every contact.
func (n *Node) Expire(now float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.expireLocked(now)
}

// Crash models a crash/restart of this node outside a Network-driven
// contact (a killed daemon): the volatile custody buffer is lost
// unless preserved, while the delivered log, the duplicate-suppression
// log, and known acknowledgements survive — a restarted node must
// still deliver each message to its application layer exactly once.
func (n *Node) Crash(preserveCustody bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashLocked(preserveCustody)
}

// DeliveryRecord summarizes one message delivered to this node.
type DeliveryRecord struct {
	MsgID string
	Hops  int // custody transfers from source to destination
}

// DeliveredHops returns the number of custody transfers a delivered
// message experienced, if it was delivered here.
func (n *Node) DeliveredHops(msgID string) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.deliveredHops[msgID]
	return h, ok
}

// CustodyRecord describes one onion currently held in the custody
// buffer — the audit surface the cluster invariant checker walks to
// prove conservation (no bundle vanishes without a recorded cause) and
// the spray ticket bound (no copy set ever exceeds its budget).
type CustodyRecord struct {
	MsgID   string
	Tickets int
	Hops    int
}

// CustodySnapshot lists the buffer contents sorted by message ID.
func (n *Node) CustodySnapshot() []CustodyRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]CustodyRecord, 0, len(n.buffer))
	for id, c := range n.buffer {
		out = append(out, CustodyRecord{MsgID: id, Tickets: c.tickets, Hops: c.hops})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MsgID < out[j].MsgID })
	return out
}

// DeliveryRecords returns every delivery at this node, sorted by
// message ID for deterministic comparison.
func (n *Node) DeliveryRecords() []DeliveryRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]DeliveryRecord, 0, len(n.deliveredHops))
	for id, h := range n.deliveredHops {
		out = append(out, DeliveryRecord{MsgID: id, Hops: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MsgID < out[j].MsgID })
	return out
}
