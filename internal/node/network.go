package node

import (
	"errors"
	"fmt"

	"repro/internal/bundle"
	"repro/internal/contact"
	"repro/internal/fault"
	"repro/internal/groups"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The carried/bundle conversions live in wire.go.

// Config configures a runtime network.
type Config struct {
	Nodes     int
	GroupSize int
	Seed      uint64
	// Spray enables source spray-and-wait hand-offs: a holder with
	// spare tickets may give a copy to any node, which carries the
	// ciphertext until it meets a member of the addressed group.
	Spray bool
	// Faults configures the deterministic fault-injection layer:
	// truncated transfers (retried in-contact, then re-offered at the
	// next meeting), corrupting byte flips (rejected by the bundle CRC
	// or onion AEAD, dropped gracefully), duplicate redelivery
	// (suppressed by the receiver's seen log), and node churn.
	Faults fault.Config
	// CorruptProb is the legacy single-knob spelling of
	// Faults.Corrupt: each hand-off is corrupted (one flipped byte)
	// with this probability. It is folded into Faults at construction
	// and kept for config compatibility.
	CorruptProb float64
	// BufferLimit caps each node's custody buffer (0 = unlimited).
	// A full node refuses new custody — the sender retries with other
	// peers — but final deliveries are always accepted.
	BufferLimit int
	// ReofferLimit caps how many buffer-full refusals a carried copy
	// survives before its holder drops it (0 = unlimited re-offers, the
	// historical behavior). Under sustained load this bounds the work a
	// hopeless copy can generate instead of letting it be re-offered to
	// full peers forever.
	ReofferLimit int
	// AntiPackets enables delivery acknowledgements ("immunity" in the
	// epidemic-routing literature): destinations gossip the IDs of
	// delivered messages at every contact, and custodians purge stale
	// copies, freeing buffers that multi-copy forwarding would
	// otherwise occupy forever.
	AntiPackets bool
}

// Network owns the nodes, the shared group directory, and the
// fault-injection plan. Meet is safe for concurrent use.
type Network struct {
	cfg   Config
	dir   *groups.Directory
	nodes []*Node
	plan  *fault.Plan
}

// NewNetwork provisions n nodes, a random onion-group partition of
// size g, and all group and node keys.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("node: need at least 3 nodes, got %d", cfg.Nodes)
	}
	if cfg.CorruptProb < 0 || cfg.CorruptProb > 1 {
		return nil, fmt.Errorf("node: corrupt probability %v out of [0,1]", cfg.CorruptProb)
	}
	if cfg.BufferLimit < 0 {
		return nil, fmt.Errorf("node: negative buffer limit %d", cfg.BufferLimit)
	}
	if cfg.ReofferLimit < 0 {
		return nil, fmt.Errorf("node: negative re-offer limit %d", cfg.ReofferLimit)
	}
	// Fold the legacy corruption knob into the fault config. The draw
	// sequence (one Bernoulli per hand-off, one IntN on a hit, flip of
	// one bit) is identical to the pre-fault-layer behavior, so
	// CorruptProb-seeded runs reproduce their historical schedules.
	faults := cfg.Faults
	if cfg.CorruptProb > 0 && faults.Corrupt == 0 {
		faults.Corrupt = cfg.CorruptProb
	}
	if err := faults.Validate(); err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	root := rng.New(cfg.Seed)
	dir, err := groups.NewPartition(cfg.Nodes, cfg.GroupSize, root.Split("partition"))
	if err != nil {
		return nil, err
	}
	if err := dir.ProvisionKeys(); err != nil {
		return nil, err
	}
	nw := &Network{cfg: cfg, dir: dir, plan: fault.NewPlan(faults, root.Split("faults"))}
	nw.nodes = make([]*Node, cfg.Nodes)
	for i := range nw.nodes {
		nw.nodes[i] = newNode(contact.NodeID(i), dir, cfg.BufferLimit)
		nw.nodes[i].reofferLimit = cfg.ReofferLimit
	}
	return nw, nil
}

// Node returns the node with the given ID.
func (nw *Network) Node(id contact.NodeID) *Node {
	if id < 0 || int(id) >= len(nw.nodes) {
		panic(fmt.Sprintf("node: id %d out of range", id))
	}
	return nw.nodes[id]
}

// Directory returns the shared onion-group directory.
func (nw *Network) Directory() *groups.Directory { return nw.dir }

// MeetReport summarizes one contact.
type MeetReport struct {
	Transfers  int // onions that changed custody
	Deliveries int // payloads that reached their destination
	Rejected   int // hand-offs rejected (tampering, truncation)
	Refused    int // custody offers refused by a full buffer (subset of Rejected)
	Dropped    int // copies dropped after exhausting their re-offer budget
	Truncated  int // hand-offs torn mid-transfer
	Corrupted  int // hand-offs damaged by byte flips
	Retried    int // in-contact retransmissions after a tear
	Duplicates int // redeliveries suppressed by the receiver
}

// Meet executes a contact between nodes x and y at the given time:
// expired onions are dropped, then each side hands over every onion
// the peer is eligible for. Both nodes are locked in ID order for the
// whole exchange, so concurrent Meets never double-spend a ticket.
func (nw *Network) Meet(x, y contact.NodeID, now float64) MeetReport {
	if x == y {
		return MeetReport{}
	}
	a, b := nw.Node(x), nw.Node(y)
	first, second := a, b
	if second.id < first.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	// Node churn: each participant may crash and restart at the start
	// of the contact. Rolls are drawn in ID order so a contact's fate
	// does not depend on the direction it was reported in. Crash()
	// consumes no stream state when churn is disabled, keeping
	// zero-fault schedules byte-identical.
	if nw.plan.CrashEnabled() {
		preserve := nw.plan.Config().PreserveCustody
		if nw.plan.Crash() {
			first.crashLocked(preserve)
		}
		if nw.plan.Crash() {
			second.crashLocked(preserve)
		}
	}

	a.expireLocked(now)
	b.expireLocked(now)
	if nw.cfg.AntiPackets {
		exchangeAcksLocked(a, b)
	}

	var rep MeetReport
	// One observability guard per contact; nil when disabled. The
	// collector is threaded through the exchange so per-hand-off
	// metrics avoid repeated atomic loads.
	col := obs.Active()
	nw.exchangeLocked(a, b, &rep, col)
	nw.exchangeLocked(b, a, &rep, col)
	if col != nil {
		col.Add(obs.NodeContacts, 1)
		col.Add(obs.NodeHandoffs, int64(rep.Transfers))
		col.Add(obs.NodeDeliveries, int64(rep.Deliveries))
		col.Add(obs.NodeRejected, int64(rep.Rejected))
		col.Add(obs.NodeRefusals, int64(rep.Refused))
		col.Add(obs.NodeBackpressureDrops, int64(rep.Dropped))
		col.Add(obs.NodeTruncated, int64(rep.Truncated))
		col.Add(obs.NodeRetransmissions, int64(rep.Retried))
		col.Add(obs.NodeTamperDrops, int64(rep.Corrupted))
		col.Add(obs.NodeDedupHits, int64(rep.Duplicates))
		col.Observe(obs.HistContactTransfers, int64(rep.Transfers))
		occupancy := len(a.buffer)
		if len(b.buffer) > occupancy {
			occupancy = len(b.buffer)
		}
		col.RecordMax(obs.NodeCustodyHighWater, int64(occupancy))
	}
	return rep
}

// exchangeAcksLocked merges both parties' acknowledgement sets and
// purges any buffered copy of an already-delivered message. Both locks
// are held.
func exchangeAcksLocked(a, b *Node) {
	for id := range a.acks {
		b.learnAckLocked(id)
	}
	for id := range b.acks {
		a.learnAckLocked(id)
	}
}

// exchangeLocked hands over every eligible onion from sender to
// receiver as a marshaled Bundle-layer frame — the receiver re-parses
// and re-validates everything it is given. Both locks are held.
// Onions are offered in custody (FIFO) order: under a receiver buffer
// limit the transfer order decides which custody offers are refused,
// and both map iteration order and the crypto-random message IDs would
// make delivery outcomes nondeterministic for a fixed seed.
func (nw *Network) exchangeLocked(sender, receiver *Node, rep *MeetReport, col *obs.Collector) {
	for _, c := range sender.custodyFIFOLocked() {
		id := c.id
		if receiver.seen[id] {
			continue
		}
		if !sender.eligibleLocked(c, receiver.id, nw.cfg.Spray) {
			continue
		}
		frame, err := c.toBundle().Marshal()
		if err != nil {
			// A carried onion that cannot be framed is a programming
			// error; surface it loudly rather than silently dropping.
			panic(fmt.Sprintf("node: marshal custody of %s: %v", id, err))
		}
		incoming, dup := nw.handoffLocked(sender, receiver, frame, rep, col)
		if incoming == nil {
			// Transfer failed every attempt: the receiver never saw a
			// valid bundle; the sender keeps custody and re-offers at a
			// later contact (the inter-contact gap is the backoff).
			continue
		}
		// The hop counter rides outside the bundle frame (the frame
		// layout is pinned by the PR 2 fault schedules).
		incoming.hops = c.hops + 1
		if dup != nil {
			dup.hops = c.hops + 1
		}
		if err := receiver.acceptLocked(incoming); err != nil {
			rep.Rejected++
			if errors.Is(err, ErrBufferFull) {
				// Backpressure: the refusal charges the copy's re-offer
				// budget; an exhausted budget releases custody instead of
				// re-offering to full peers forever. With no budget
				// configured (the default) the sender just keeps custody,
				// exactly as before.
				rep.Refused++
				if sender.refusedLocked(c) {
					rep.Dropped++
				}
			}
			continue
		}
		if dup != nil {
			// Duplicate redelivery: the same frame arrives again. The
			// receiver's seen log must suppress it — a second accept
			// would double-deliver to the application layer.
			if err := receiver.acceptLocked(dup); err == nil {
				panic(fmt.Sprintf("node: duplicate redelivery of %s accepted twice", id))
			}
			receiver.stats.Duplicates++
			rep.Duplicates++
		}
		sender.stats.Forwarded++
		rep.Transfers++
		if incoming.lastHop {
			rep.Deliveries++
		}
		c.tickets--
		if c.tickets <= 0 {
			delete(sender.buffer, id)
		}
	}
}

// handoffLocked pushes one frame across the (possibly faulty) wire,
// retrying in-contact after truncated transfers up to the configured
// retry budget. It returns the parsed custody record on success (nil
// if every attempt failed) plus a second parsed record when the fault
// plan schedules a duplicate redelivery. Both locks are held.
func (nw *Network) handoffLocked(sender, receiver *Node, frame []byte, rep *MeetReport, col *obs.Collector) (incoming, dup *carried) {
	retries := nw.plan.Config().Retries
	for attempt := 0; ; attempt++ {
		h := nw.plan.Handoff(len(frame))
		wire := frame
		switch {
		case h.Truncate:
			wire = fault.Truncate(frame, h.Cut)
		case h.Corrupt:
			wire = fault.Flip(frame, h.Flip)
		}
		if col != nil {
			col.Add(obs.NodeWireBytes, int64(len(wire)))
			col.Observe(obs.HistHandoffFrameBytes, int64(len(frame)))
		}
		incoming, err := receiveFrame(wire)
		if err == nil {
			if h.Duplicate {
				// Parse the duplicate independently: the receiver
				// validates every frame it is handed, even repeats.
				if dup, err = receiveFrame(wire); err != nil {
					panic(fmt.Sprintf("node: duplicate of valid frame failed to parse: %v", err))
				}
			}
			return incoming, dup
		}
		receiver.stats.Rejected++
		rep.Rejected++
		if errors.Is(err, bundle.ErrTruncated) {
			// Torn transfer: the peer is still in contact, so the
			// sender retransmits immediately (short backoff) until the
			// in-contact budget is spent.
			receiver.stats.Truncated++
			rep.Truncated++
			if attempt < retries {
				sender.stats.Retried++
				rep.Retried++
				continue
			}
			return nil, nil
		}
		// Corruption (CRC/tamper class): drop gracefully, no
		// retransmission — a flipped frame signals a bad link, not an
		// aborted transfer.
		receiver.stats.Corrupted++
		rep.Corrupted++
		return nil, nil
	}
}

// TotalStats aggregates all node counters.
func (nw *Network) TotalStats() Stats {
	var total Stats
	for _, n := range nw.nodes {
		s := n.Stats()
		total.Sent += s.Sent
		total.Forwarded += s.Forwarded
		total.Carried += s.Carried
		total.Delivered += s.Delivered
		total.Rejected += s.Rejected
		total.Refused += s.Refused
		total.Expired += s.Expired
		total.Purged += s.Purged
		total.BackpressureDropped += s.BackpressureDropped
		total.Truncated += s.Truncated
		total.Corrupted += s.Corrupted
		total.Retried += s.Retried
		total.Duplicates += s.Duplicates
		total.Crashes += s.Crashes
		total.CrashDropped += s.CrashDropped
	}
	return total
}

// contactDriver adapts the network to the sim.Protocol interface so
// synthetic engines and trace replay can drive real nodes.
type contactDriver struct {
	nw   *Network
	done func() bool
}

func (d contactDriver) OnContact(t float64, a, b contact.NodeID) { d.nw.Meet(a, b, t) }

func (d contactDriver) Done() bool {
	if d.done == nil {
		return false
	}
	return d.done()
}

// DriveSynthetic runs the network over a synthetic contact process
// until the horizon or until done() reports true. It returns the
// number of contacts executed.
func (nw *Network) DriveSynthetic(g *contact.Graph, horizon float64, s *rng.Stream, done func() bool) int {
	return sim.RunSynthetic(g, horizon, s, contactDriver{nw: nw, done: done})
}

// DriveTrace replays a recorded trace window over the network. It
// returns the number of contacts executed.
func (nw *Network) DriveTrace(tr *trace.Trace, from, horizon float64, done func() bool) int {
	return sim.Replay(tr, from, horizon, contactDriver{nw: nw, done: done})
}
