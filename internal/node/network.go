package node

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// maybeCorrupt and the carried/bundle conversions live in wire.go.

// Config configures a runtime network.
type Config struct {
	Nodes     int
	GroupSize int
	Seed      uint64
	// Spray enables source spray-and-wait hand-offs: a holder with
	// spare tickets may give a copy to any node, which carries the
	// ciphertext until it meets a member of the addressed group.
	Spray bool
	// CorruptProb injects transport faults: each hand-off is corrupted
	// (one flipped byte) with this probability. Authenticated
	// encryption makes receivers reject corrupt onions; the sender
	// keeps custody and retries at a later contact.
	CorruptProb float64
	// BufferLimit caps each node's custody buffer (0 = unlimited).
	// A full node refuses new custody — the sender retries with other
	// peers — but final deliveries are always accepted.
	BufferLimit int
	// AntiPackets enables delivery acknowledgements ("immunity" in the
	// epidemic-routing literature): destinations gossip the IDs of
	// delivered messages at every contact, and custodians purge stale
	// copies, freeing buffers that multi-copy forwarding would
	// otherwise occupy forever.
	AntiPackets bool
}

// Network owns the nodes, the shared group directory, and the
// fault-injection state. Meet is safe for concurrent use.
type Network struct {
	cfg   Config
	dir   *groups.Directory
	nodes []*Node

	mu    sync.Mutex // guards faults
	fault *rng.Stream
}

// NewNetwork provisions n nodes, a random onion-group partition of
// size g, and all group and node keys.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("node: need at least 3 nodes, got %d", cfg.Nodes)
	}
	if cfg.CorruptProb < 0 || cfg.CorruptProb > 1 {
		return nil, fmt.Errorf("node: corrupt probability %v out of [0,1]", cfg.CorruptProb)
	}
	if cfg.BufferLimit < 0 {
		return nil, fmt.Errorf("node: negative buffer limit %d", cfg.BufferLimit)
	}
	root := rng.New(cfg.Seed)
	dir, err := groups.NewPartition(cfg.Nodes, cfg.GroupSize, root.Split("partition"))
	if err != nil {
		return nil, err
	}
	if err := dir.ProvisionKeys(); err != nil {
		return nil, err
	}
	nw := &Network{cfg: cfg, dir: dir, fault: root.Split("faults")}
	nw.nodes = make([]*Node, cfg.Nodes)
	for i := range nw.nodes {
		nw.nodes[i] = newNode(contact.NodeID(i), dir, cfg.BufferLimit)
	}
	return nw, nil
}

// Node returns the node with the given ID.
func (nw *Network) Node(id contact.NodeID) *Node {
	if id < 0 || int(id) >= len(nw.nodes) {
		panic(fmt.Sprintf("node: id %d out of range", id))
	}
	return nw.nodes[id]
}

// Directory returns the shared onion-group directory.
func (nw *Network) Directory() *groups.Directory { return nw.dir }

// MeetReport summarizes one contact.
type MeetReport struct {
	Transfers  int // onions that changed custody
	Deliveries int // payloads that reached their destination
	Rejected   int // hand-offs rejected (tampering)
}

// Meet executes a contact between nodes x and y at the given time:
// expired onions are dropped, then each side hands over every onion
// the peer is eligible for. Both nodes are locked in ID order for the
// whole exchange, so concurrent Meets never double-spend a ticket.
func (nw *Network) Meet(x, y contact.NodeID, now float64) MeetReport {
	if x == y {
		return MeetReport{}
	}
	a, b := nw.Node(x), nw.Node(y)
	first, second := a, b
	if second.id < first.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	a.expireLocked(now)
	b.expireLocked(now)
	if nw.cfg.AntiPackets {
		exchangeAcksLocked(a, b)
	}

	var rep MeetReport
	nw.exchangeLocked(a, b, &rep)
	nw.exchangeLocked(b, a, &rep)
	return rep
}

// exchangeAcksLocked merges both parties' acknowledgement sets and
// purges any buffered copy of an already-delivered message. Both locks
// are held.
func exchangeAcksLocked(a, b *Node) {
	for id := range a.acks {
		b.learnAckLocked(id)
	}
	for id := range b.acks {
		a.learnAckLocked(id)
	}
}

// exchangeLocked hands over every eligible onion from sender to
// receiver as a marshaled Bundle-layer frame — the receiver re-parses
// and re-validates everything it is given. Both locks are held.
// Onions are offered in custody (FIFO) order: under a receiver buffer
// limit the transfer order decides which custody offers are refused,
// and both map iteration order and the crypto-random message IDs would
// make delivery outcomes nondeterministic for a fixed seed.
func (nw *Network) exchangeLocked(sender, receiver *Node, rep *MeetReport) {
	held := make([]*carried, 0, len(sender.buffer))
	for _, c := range sender.buffer {
		held = append(held, c)
	}
	sort.Slice(held, func(i, j int) bool { return held[i].seq < held[j].seq })
	for _, c := range held {
		id := c.id
		if receiver.seen[id] {
			continue
		}
		eligible := false
		switch {
		case c.lastHop:
			eligible = c.deliverTo == receiver.id
		case nw.dir.Contains(c.group, receiver.id):
			eligible = true
		case nw.cfg.Spray && c.tickets >= 2:
			eligible = true
		}
		if !eligible {
			continue
		}
		frame, err := c.toBundle().Marshal()
		if err != nil {
			// A carried onion that cannot be framed is a programming
			// error; surface it loudly rather than silently dropping.
			panic(fmt.Sprintf("node: marshal custody of %s: %v", id, err))
		}
		incoming, err := receiveFrame(nw.maybeCorrupt(frame))
		if err != nil {
			// Frame damaged in transit: the receiver never saw a valid
			// bundle; the sender keeps custody and retries later.
			receiver.stats.Rejected++
			rep.Rejected++
			continue
		}
		if err := receiver.acceptLocked(incoming); err != nil {
			rep.Rejected++
			continue
		}
		sender.stats.Forwarded++
		rep.Transfers++
		if incoming.lastHop {
			rep.Deliveries++
		}
		c.tickets--
		if c.tickets <= 0 {
			delete(sender.buffer, id)
		}
	}
}

// maybeCorrupt returns the data, flipping one byte with the configured
// probability (always on a copy).
func (nw *Network) maybeCorrupt(data []byte) []byte {
	if nw.cfg.CorruptProb <= 0 || len(data) == 0 {
		return data
	}
	nw.mu.Lock()
	hit := nw.fault.Bernoulli(nw.cfg.CorruptProb)
	var pos int
	if hit {
		pos = nw.fault.IntN(len(data))
	}
	nw.mu.Unlock()
	if !hit {
		return data
	}
	out := append([]byte(nil), data...)
	out[pos] ^= 0x01
	return out
}

// TotalStats aggregates all node counters.
func (nw *Network) TotalStats() Stats {
	var total Stats
	for _, n := range nw.nodes {
		s := n.Stats()
		total.Sent += s.Sent
		total.Forwarded += s.Forwarded
		total.Carried += s.Carried
		total.Delivered += s.Delivered
		total.Rejected += s.Rejected
		total.Refused += s.Refused
		total.Expired += s.Expired
		total.Purged += s.Purged
	}
	return total
}

// contactDriver adapts the network to the sim.Protocol interface so
// synthetic engines and trace replay can drive real nodes.
type contactDriver struct {
	nw   *Network
	done func() bool
}

func (d contactDriver) OnContact(t float64, a, b contact.NodeID) { d.nw.Meet(a, b, t) }

func (d contactDriver) Done() bool {
	if d.done == nil {
		return false
	}
	return d.done()
}

// DriveSynthetic runs the network over a synthetic contact process
// until the horizon or until done() reports true. It returns the
// number of contacts executed.
func (nw *Network) DriveSynthetic(g *contact.Graph, horizon float64, s *rng.Stream, done func() bool) int {
	return sim.RunSynthetic(g, horizon, s, contactDriver{nw: nw, done: done})
}

// DriveTrace replays a recorded trace window over the network. It
// returns the number of contacts executed.
func (nw *Network) DriveTrace(tr *trace.Trace, from, horizon float64, done func() bool) int {
	return sim.Replay(tr, from, horizon, contactDriver{nw: nw, done: done})
}
