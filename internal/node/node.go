// Package node is the message-level runtime of the system: concurrent
// DTN nodes that carry, hand off, peel, and deliver *real* encrypted
// onions (package onion) according to the abstract protocol, driven by
// any contact schedule (synthetic engine or trace replay).
//
// Where package routing simulates the protocol's forwarding decisions
// in the abstract (for the paper's large-scale experiments), this
// package executes them end to end: every hand-off moves ciphertext,
// every relay peels its layer with its group key, tampering is
// detected and rejected, and only the destination recovers the
// payload. The examples build on this runtime.
package node

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/onion"
	"repro/internal/rng"
)

// Stats counts a node's observable activity.
type Stats struct {
	Sent      int // messages originated
	Forwarded int // onions handed to a next hop
	Carried   int // onions accepted into the buffer
	Delivered int // payloads received as final destination
	Rejected  int // transfers rejected (tamper, unknown layer)
	Refused   int // transfers refused (buffer full)
	Expired   int // onions dropped at their deadline
	Purged    int // onions dropped after a delivery acknowledgement
	// BackpressureDropped counts onions this node gave up on after
	// exhausting their re-offer budget: every offer was refused by a
	// full peer ReofferLimit times, so custody was released without a
	// hand-off instead of queueing the copy forever.
	BackpressureDropped int

	// Fault-injection observables (zero without injected faults).
	Truncated    int // incoming frames torn mid-transfer
	Corrupted    int // incoming frames damaged by byte flips
	Retried      int // in-contact retransmissions after a torn frame
	Duplicates   int // redelivered frames suppressed by the seen log
	Crashes      int // crash/restart events at contacts
	CrashDropped int // custody onions lost to volatile-buffer crashes
}

// carried is one onion in a node's buffer.
type carried struct {
	id string
	// data is the ciphertext this node holds. For a relay hop it is
	// the layer addressed to group; for the final hop it is the inner
	// body sealed for deliverTo.
	data      []byte
	group     onion.GroupID
	deliverTo contact.NodeID
	lastHop   bool
	tickets   int
	expiry    float64
	// hops counts the custody transfers this copy has experienced since
	// origination. It rides outside the bundle wire format (the Network
	// and the cluster protocol thread it alongside the frame), so the
	// PR 2 fault schedules — which draw on frame length — are
	// untouched.
	hops int
	// seq orders this node's custody FIFO. Message IDs are drawn from
	// crypto/rand, so any ID-based ordering would differ run to run;
	// custody order is reproducible for a fixed workload seed, and
	// exchange iterates in it so buffer-refusal outcomes are too.
	seq uint64
	// refusals counts how many custody offers of this copy were refused
	// by a full peer; once it reaches the holder's re-offer budget the
	// copy is dropped instead of re-offered forever.
	refusals int
}

// Node is a single DTN participant. All methods are safe for
// concurrent use.
type Node struct {
	id          contact.NodeID
	dir         *groups.Directory
	bufferLimit int // 0 = unlimited
	// reofferLimit caps how many buffer-full refusals a carried copy
	// survives before the holder drops it (backpressure) instead of
	// re-offering indefinitely. 0 = unlimited re-offers, the historical
	// behavior.
	reofferLimit int

	mu            sync.Mutex
	buffer        map[string]*carried
	delivered     map[string][]byte
	deliveredHops map[string]int  // msg id -> custody transfers to reach us
	seen          map[string]bool // message IDs ever carried or delivered
	acks          map[string]bool // delivered-message IDs known to this node
	nextSeq       uint64          // custody FIFO counter for carried.seq
	stats         Stats
}

// newNode builds a node bound to the shared group directory.
func newNode(id contact.NodeID, dir *groups.Directory, bufferLimit int) *Node {
	return &Node{
		id:            id,
		dir:           dir,
		bufferLimit:   bufferLimit,
		buffer:        make(map[string]*carried),
		delivered:     make(map[string][]byte),
		deliveredHops: make(map[string]int),
		seen:          make(map[string]bool),
		acks:          make(map[string]bool),
	}
}

// New builds a standalone node bound to a group directory — the entry
// point for runtimes that own a single node per process (the TCP
// daemons in internal/cluster), where NewNetwork's all-nodes-in-one-
// address-space provisioning does not apply. The directory is typically
// a client-side view reconstructed from a directory service
// (groups.NewFromAssignment + InstallSymmetricKeys).
func New(id contact.NodeID, dir *groups.Directory, bufferLimit int) (*Node, error) {
	if dir == nil {
		return nil, errors.New("node: nil directory")
	}
	if id < 0 || int(id) >= dir.N() {
		return nil, fmt.Errorf("node: id %d out of range [0, %d)", id, dir.N())
	}
	if bufferLimit < 0 {
		return nil, fmt.Errorf("node: negative buffer limit %d", bufferLimit)
	}
	return newNode(id, dir, bufferLimit), nil
}

// ID returns the node's identifier.
func (n *Node) ID() contact.NodeID { return n.id }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// BufferLen returns the number of onions in custody.
func (n *Node) BufferLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.buffer)
}

// Delivered returns the payload of a message delivered to this node,
// if any.
func (n *Node) Delivered(msgID string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.delivered[msgID]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), p...), true
}

// DeliveredCount returns how many distinct messages reached this node
// as their final destination.
func (n *Node) DeliveredCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.delivered)
}

// SendSpec configures an originated message.
type SendSpec struct {
	Dst     contact.NodeID
	Payload []byte
	Relays  int     // K onion groups
	Copies  int     // L tickets
	Expiry  float64 // absolute deadline; 0 = never expires
	PadTo   int     // onion padding target; 0 = no padding
	// ID optionally fixes the message ID (32 hex characters). The
	// default draws from crypto/rand; differential harnesses that
	// compare delivered-message sets across tiers inject deterministic
	// IDs here so the same workload is identifiable in both.
	ID string
}

// Send builds an onion for the destination through Relays onion groups
// and places it in this node's buffer. It returns the message ID used
// to query delivery at the destination.
func (n *Node) Send(spec SendSpec, pathStream *rng.Stream) (string, error) {
	if spec.Copies < 1 {
		return "", fmt.Errorf("node: copies must be >= 1, got %d", spec.Copies)
	}
	ids, err := n.dir.SelectPath(n.id, spec.Dst, spec.Relays, pathStream)
	if err != nil {
		return "", fmt.Errorf("node: select path: %w", err)
	}
	hops := make([]onion.Hop, len(ids))
	for i, gid := range ids {
		c, err := n.dir.GroupCipher(gid)
		if err != nil {
			return "", fmt.Errorf("node: hop %d: %w", i, err)
		}
		hops[i] = onion.Hop{Group: gid, Cipher: c}
	}
	destCipher, err := n.dir.NodeCipher(spec.Dst)
	if err != nil {
		return "", fmt.Errorf("node: destination cipher: %w", err)
	}
	data, err := onion.Build(onion.NodeID(spec.Dst), spec.Payload, hops, destCipher, spec.PadTo)
	if err != nil {
		return "", fmt.Errorf("node: build onion: %w", err)
	}
	msgID := spec.ID
	if msgID == "" {
		if msgID, err = newMessageID(); err != nil {
			return "", err
		}
	} else if raw, err := hex.DecodeString(msgID); err != nil || len(raw) != 16 {
		return "", fmt.Errorf("node: message id %q is not 32 hex characters", msgID)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.seen[msgID] {
		return "", fmt.Errorf("node: message id %s already used", msgID)
	}
	n.buffer[msgID] = &carried{
		id:      msgID,
		data:    data,
		group:   ids[0],
		tickets: spec.Copies,
		expiry:  spec.Expiry,
		seq:     n.claimSeqLocked(),
	}
	n.seen[msgID] = true
	n.stats.Sent++
	return msgID, nil
}

func newMessageID() (string, error) {
	var raw [16]byte
	if _, err := io.ReadFull(rand.Reader, raw[:]); err != nil {
		return "", fmt.Errorf("node: message id: %w", err)
	}
	return hex.EncodeToString(raw[:]), nil
}

// claimSeqLocked returns the next custody sequence number. The caller
// holds n.mu.
func (n *Node) claimSeqLocked() uint64 {
	n.nextSeq++
	return n.nextSeq
}

// errTransfer classifies a rejected hand-off: the sender keeps custody.
var errTransfer = errors.New("node: transfer rejected")

// ErrBufferFull marks the refusal subclass of rejected hand-offs: the
// receiver's custody buffer is at its limit. Senders distinguish it
// from tamper/unknown-layer rejections to charge the copy's re-offer
// budget — a full peer is backpressure, not a broken frame.
var ErrBufferFull = errors.New("buffer full")

// SetReofferLimit caps how many buffer-full refusals a carried copy
// survives before this node drops it (0 = unlimited, the default).
// Backpressure turns unbounded re-offer queues into an explicit drop
// policy for sustained-load service mode.
func (n *Node) SetReofferLimit(limit int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if limit < 0 {
		limit = 0
	}
	n.reofferLimit = limit
}

// refusedLocked charges one buffer-full refusal against a carried copy
// and reports whether the re-offer budget is now exhausted, in which
// case custody is released (the copy is dropped). The caller holds
// n.mu.
func (n *Node) refusedLocked(c *carried) (dropped bool) {
	c.refusals++
	if n.reofferLimit <= 0 || c.refusals < n.reofferLimit {
		return false
	}
	if _, held := n.buffer[c.id]; held {
		delete(n.buffer, c.id)
		n.stats.BackpressureDropped++
	}
	return true
}

// acceptLocked ingests an onion handed over by a peer. The caller
// holds n.mu (Network.Meet locks both parties in ID order). The node
// peels the layer if it is a member of the addressed group, unwraps
// the payload if it is the destination of a final hop, and otherwise
// carries the ciphertext unchanged (a sprayed copy). A tampered onion
// returns an error and leaves this node unchanged.
func (n *Node) acceptLocked(c *carried) error {
	if n.seen[c.id] {
		return fmt.Errorf("%w: already saw message %s", errTransfer, c.id)
	}
	// Custody refusal when the buffer is full; deliveries to the final
	// destination consume no buffer and are always accepted.
	if n.bufferLimit > 0 && len(n.buffer) >= n.bufferLimit && !(c.lastHop && c.deliverTo == n.id) {
		n.stats.Refused++
		return fmt.Errorf("%w: %w (%d onions)", errTransfer, ErrBufferFull, len(n.buffer))
	}
	if c.lastHop {
		if c.deliverTo != n.id {
			return fmt.Errorf("%w: final hop addressed to %d, not %d", errTransfer, c.deliverTo, n.id)
		}
		cipher, err := n.dir.OwnCipher(n.id)
		if err != nil {
			n.stats.Rejected++
			return fmt.Errorf("%w: %v", errTransfer, err)
		}
		payload, err := onion.Unwrap(c.data, cipher)
		if err != nil {
			n.stats.Rejected++
			return fmt.Errorf("%w: %v", errTransfer, err)
		}
		n.delivered[c.id] = payload
		n.deliveredHops[c.id] = c.hops
		n.seen[c.id] = true
		n.acks[c.id] = true // origin of the anti-packet
		n.stats.Delivered++
		return nil
	}
	if !n.dir.Contains(c.group, n.id) {
		// Sprayed copy: carry the ciphertext unchanged until a group
		// member is met.
		n.buffer[c.id] = &carried{
			id: c.id, data: c.data, group: c.group, tickets: 1, expiry: c.expiry,
			hops: c.hops, seq: n.claimSeqLocked(),
		}
		n.seen[c.id] = true
		n.stats.Carried++
		return nil
	}
	cipher, err := n.dir.MemberCipher(n.id, c.group)
	if err != nil {
		// A member without epoch access (revoked) cannot peel; the
		// sender keeps custody and routes via another member.
		n.stats.Rejected++
		return fmt.Errorf("%w: %v", errTransfer, err)
	}
	peeled, err := onion.Peel(c.data, cipher)
	if err != nil {
		n.stats.Rejected++
		return fmt.Errorf("%w: %v", errTransfer, err)
	}
	next := &carried{id: c.id, tickets: 1, expiry: c.expiry, hops: c.hops, seq: n.claimSeqLocked()}
	if peeled.Deliver {
		next.lastHop = true
		next.deliverTo = contact.NodeID(peeled.Dest)
		next.data = peeled.Inner
	} else {
		next.group = peeled.NextGroup
		next.data = peeled.Inner
	}
	n.buffer[c.id] = next
	n.seen[c.id] = true
	n.stats.Carried++
	return nil
}

// learnAckLocked records a delivery acknowledgement and purges any
// buffered copy of that message. The caller holds n.mu.
func (n *Node) learnAckLocked(id string) {
	if n.acks[id] {
		return
	}
	n.acks[id] = true
	if _, held := n.buffer[id]; held {
		delete(n.buffer, id)
		n.stats.Purged++
	}
}

// KnowsDelivered reports whether this node has learned (directly or
// via anti-packet gossip) that the message was delivered.
func (n *Node) KnowsDelivered(msgID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.acks[msgID]
}

// crashLocked models a crash/restart at a contact (node churn). The
// volatile custody buffer is lost unless the node persists custody to
// stable storage; the delivered-payload log, the duplicate-suppression
// log, and known acknowledgements are durable state — a restarted node
// must still deliver each message to its application layer exactly
// once. The caller holds n.mu.
func (n *Node) crashLocked(preserveCustody bool) {
	n.stats.Crashes++
	if preserveCustody || len(n.buffer) == 0 {
		return
	}
	n.stats.CrashDropped += len(n.buffer)
	n.buffer = make(map[string]*carried)
}

// expireLocked drops onions past their deadline. The caller holds n.mu.
func (n *Node) expireLocked(now float64) {
	for id, c := range n.buffer {
		if c.expiry > 0 && now > c.expiry {
			delete(n.buffer, id)
			n.stats.Expired++
		}
	}
}
