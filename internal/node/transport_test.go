package node

import (
	"fmt"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
)

// driveTransport executes one contact through the exported transport
// surface — the exact call sequence a cluster daemon performs over
// TCP: expire both sides, then each direction offers, receives, and
// releases custody on accept.
func driveTransport(nw *Network, x, y contact.NodeID, now float64) {
	a, b := nw.Node(x), nw.Node(y)
	a.Expire(now)
	b.Expire(now)
	for _, pair := range [][2]*Node{{a, b}, {b, a}} {
		sender, receiver := pair[0], pair[1]
		for _, off := range sender.OffersTo(receiver.ID(), nw.cfg.Spray) {
			if _, err := receiver.Receive(off.Frame, off.Hops); err == nil {
				sender.HandoffAccepted(off.MsgID)
			}
		}
	}
}

// TestTransportMatchesMeet drives the identical workload and contact
// sequence through Network.Meet and through the transport methods; the
// two runtimes must agree on every node's delivered set, hop counts,
// and the conserved counters. This pins the refactor that extracted
// the custody protocol out of Meet.
func TestTransportMatchesMeet(t *testing.T) {
	const n, seed = 6, 99
	build := func() *Network {
		nw, err := NewNetwork(Config{Nodes: n, GroupSize: 2, Seed: seed, Spray: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			src := contact.NodeID(i % n)
			dst := contact.NodeID((i + 3) % n)
			spec := SendSpec{
				Dst:     dst,
				Payload: []byte(fmt.Sprintf("parity-%d", i)),
				Relays:  1,
				Copies:  2,
				ID:      fmt.Sprintf("%032x", i+1),
			}
			if _, err := nw.Node(src).Send(spec, rng.New(seed).SplitN("path", i)); err != nil {
				t.Fatal(err)
			}
		}
		return nw
	}
	meetNW, transportNW := build(), build()

	// A deterministic pseudo-random contact sequence over all pairs.
	cs := rng.New(5).Split("contacts")
	for step := 0; step < 60; step++ {
		x := contact.NodeID(cs.IntN(n))
		y := contact.NodeID(cs.IntN(n - 1))
		if y >= x {
			y++
		}
		now := float64(step)
		meetNW.Meet(x, y, now)
		driveTransport(transportNW, x, y, now)
	}

	for v := 0; v < n; v++ {
		id := contact.NodeID(v)
		ms, ts := meetNW.Node(id).Stats(), transportNW.Node(id).Stats()
		if ms.Sent != ts.Sent || ms.Forwarded != ts.Forwarded ||
			ms.Carried != ts.Carried || ms.Delivered != ts.Delivered ||
			ms.Refused != ts.Refused || ms.Expired != ts.Expired {
			t.Fatalf("node %d stats diverged:\nmeet:      %+v\ntransport: %+v", v, ms, ts)
		}
		mr, tr := meetNW.Node(id).DeliveryRecords(), transportNW.Node(id).DeliveryRecords()
		if len(mr) != len(tr) {
			t.Fatalf("node %d delivered %d vs %d messages", v, len(mr), len(tr))
		}
		for i := range mr {
			if mr[i] != tr[i] {
				t.Fatalf("node %d delivery %d diverged: %+v vs %+v", v, i, mr[i], tr[i])
			}
		}
		if meetNW.Node(id).BufferLen() != transportNW.Node(id).BufferLen() {
			t.Fatalf("node %d buffer %d vs %d", v, meetNW.Node(id).BufferLen(), transportNW.Node(id).BufferLen())
		}
	}
}
