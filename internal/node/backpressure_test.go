package node

import (
	"testing"

	"repro/internal/rng"
)

// sprayNetwork builds a network where node 0 originates five 3-copy
// spray messages, so every peer is an eligible custodian and a
// BufferLimit-1 receiver deterministically refuses four of the five
// offers at each contact.
func sprayNetwork(t *testing.T, reofferLimit int) (*Network, []string) {
	t.Helper()
	nw, err := NewNetwork(Config{
		Nodes: 10, GroupSize: 3, Seed: 91, Spray: true,
		BufferLimit: 1, ReofferLimit: reofferLimit,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := nw.Node(0).Send(SendSpec{Dst: 9, Payload: []byte{byte(i)}, Relays: 2, Copies: 3}, rng.New(uint64(92+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return nw, ids
}

// TestReofferBudgetDropsHopelessCopies: with a re-offer budget, copies
// whose every offer is refused by a full peer are dropped once the
// budget is spent, instead of being re-offered forever.
func TestReofferBudgetDropsHopelessCopies(t *testing.T) {
	nw, _ := sprayNetwork(t, 2)
	// First contact: node 1 accepts one copy, its buffer is full, the
	// remaining four offers are refused (one charge each).
	rep := nw.Meet(0, 1, 1)
	if rep.Refused != 4 {
		t.Fatalf("first contact refused %d offers, want 4", rep.Refused)
	}
	if rep.Dropped != 0 || nw.TotalStats().BackpressureDropped != 0 {
		t.Fatalf("copies dropped after a single refusal: %+v", rep)
	}
	// Second contact: the same four offers are refused again, hitting
	// the budget of 2; all four copies are dropped.
	rep = nw.Meet(0, 1, 2)
	if rep.Refused != 4 || rep.Dropped != 4 {
		t.Fatalf("second contact = %+v, want 4 refused and 4 dropped", rep)
	}
	if got := nw.TotalStats().BackpressureDropped; got != 4 {
		t.Fatalf("BackpressureDropped = %d, want 4", got)
	}
	// Only the accepted message's remaining tickets stay in custody.
	if got := nw.Node(0).BufferLen(); got != 1 {
		t.Fatalf("sender buffer = %d onions, want 1 after backpressure drops", got)
	}
	// Third contact: nothing left to refuse.
	if rep = nw.Meet(0, 1, 3); rep.Refused != 0 {
		t.Fatalf("dropped copies were re-offered: %+v", rep)
	}
}

// TestNoReofferBudgetKeepsCustody pins the historical default: with
// ReofferLimit 0 the sender re-offers refused copies indefinitely and
// never drops custody.
func TestNoReofferBudgetKeepsCustody(t *testing.T) {
	nw, _ := sprayNetwork(t, 0)
	totalRefused := 0
	for step := 1; step <= 4; step++ {
		rep := nw.Meet(0, 1, float64(step))
		if rep.Dropped != 0 {
			t.Fatalf("step %d dropped copies without a budget: %+v", step, rep)
		}
		totalRefused += rep.Refused
	}
	if totalRefused != 16 {
		t.Fatalf("refusals = %d, want 4 per contact x 4 contacts", totalRefused)
	}
	if got := nw.TotalStats().BackpressureDropped; got != 0 {
		t.Fatalf("BackpressureDropped = %d, want 0", got)
	}
	if got := nw.Node(0).BufferLen(); got != 5 {
		t.Fatalf("sender buffer = %d onions, want all 5 retained", got)
	}
}

// TestHandoffRefused covers the transport-surface spelling used by the
// cluster tier: refusal verdicts charge the budget, exhaustion releases
// custody, unknown IDs are no-ops.
func TestHandoffRefused(t *testing.T) {
	nw, ids := sprayNetwork(t, 0)
	src := nw.Node(0)
	src.SetReofferLimit(2)
	if src.HandoffRefused("00000000000000000000000000000000") {
		t.Fatal("unknown message reported dropped")
	}
	if dropped := src.HandoffRefused(ids[0]); dropped {
		t.Fatal("dropped on first refusal with budget 2")
	}
	if dropped := src.HandoffRefused(ids[0]); !dropped {
		t.Fatal("second refusal did not exhaust the budget")
	}
	if src.BufferLen() != 4 {
		t.Fatalf("buffer = %d, want 4 after one backpressure drop", src.BufferLen())
	}
	if got := src.Stats().BackpressureDropped; got != 1 {
		t.Fatalf("BackpressureDropped = %d, want 1", got)
	}
	// A negative limit is clamped to "unlimited".
	src.SetReofferLimit(-1)
	for i := 0; i < 5; i++ {
		if src.HandoffRefused(ids[1]) {
			t.Fatal("unlimited budget dropped a copy")
		}
	}
}
