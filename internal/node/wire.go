package node

import (
	"encoding/hex"
	"fmt"

	"repro/internal/bundle"
	"repro/internal/contact"
	"repro/internal/onion"
)

// toBundle frames a carried onion for transfer. The recipient always
// receives exactly one ticket.
func (c *carried) toBundle() *bundle.Bundle {
	b := &bundle.Bundle{
		Expiry:    c.expiry,
		LastHop:   c.lastHop,
		Group:     -1,
		DeliverTo: -1,
		Data:      c.data,
	}
	if c.lastHop {
		b.DeliverTo = int32(c.deliverTo)
	} else {
		b.Group = int32(c.group)
	}
	raw, err := hex.DecodeString(c.id)
	if err != nil || len(raw) != len(b.ID) {
		panic(fmt.Sprintf("node: malformed message id %q", c.id))
	}
	copy(b.ID[:], raw)
	return b
}

// receiveFrame parses and validates an incoming wire frame into a
// custody record. Damaged frames fail here, before any state changes.
func receiveFrame(frame []byte) (*carried, error) {
	b, err := bundle.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	c := &carried{
		id:      hex.EncodeToString(b.ID[:]),
		data:    b.Data,
		lastHop: b.LastHop,
		tickets: 1,
		expiry:  b.Expiry,
	}
	if b.LastHop {
		c.deliverTo = contact.NodeID(b.DeliverTo)
	} else {
		c.group = onion.GroupID(b.Group)
	}
	return c, nil
}
