package node_test

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/rng"
)

// Example provisions a small DTN, sends one encrypted message through
// three onion groups, and drives synthetic contacts until delivery.
func Example() {
	nw, err := node.NewNetwork(node.Config{Nodes: 20, GroupSize: 4, Seed: 42})
	if err != nil {
		panic(err)
	}
	msgID, err := nw.Node(0).Send(node.SendSpec{
		Dst:     19,
		Payload: []byte("meet where the river bends"),
		Relays:  3,
		Copies:  1,
		PadTo:   2048,
	}, rng.New(7))
	if err != nil {
		panic(err)
	}
	graph := contact.NewRandom(20, 1, 30, rng.New(9))
	dst := nw.Node(19)
	nw.DriveSynthetic(graph, 1e6, rng.New(11), func() bool {
		return dst.DeliveredCount() > 0
	})
	payload, ok := dst.Delivered(msgID)
	fmt.Println("delivered:", ok)
	fmt.Printf("payload: %s\n", payload)
	fmt.Println("hand-offs:", nw.TotalStats().Forwarded)
	// Output:
	// delivered: true
	// payload: meet where the river bends
	// hand-offs: 4
}
