package node

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/trace"
)

func testNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Nodes: 2, GroupSize: 1}); err == nil {
		t.Fatal("accepted 2 nodes")
	}
	if _, err := NewNetwork(Config{Nodes: 10, GroupSize: 2, CorruptProb: 1.5}); err == nil {
		t.Fatal("accepted corrupt probability > 1")
	}
	if _, err := NewNetwork(Config{Nodes: 10, GroupSize: 20}); err == nil {
		t.Fatal("accepted group size > nodes")
	}
}

func TestSendValidation(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 20, GroupSize: 4, Seed: 1})
	src := nw.Node(0)
	if _, err := src.Send(SendSpec{Dst: 19, Relays: 3, Copies: 0}, rng.New(1)); err == nil {
		t.Fatal("accepted zero copies")
	}
	if _, err := src.Send(SendSpec{Dst: 19, Relays: 99, Copies: 1}, rng.New(1)); err == nil {
		t.Fatal("accepted impossible relay count")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 20, GroupSize: 4, Seed: 1})
	payload := []byte("rendezvous at grid 7-alpha")
	msgID, err := nw.Node(0).Send(SendSpec{
		Dst: 19, Payload: payload, Relays: 3, Copies: 1, PadTo: 2048,
	}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(20, 1, 30, rng.New(3))
	dst := nw.Node(19)
	nw.DriveSynthetic(g, 1e6, rng.New(4), func() bool { return dst.DeliveredCount() > 0 })

	got, ok := dst.Delivered(msgID)
	if !ok {
		t.Fatal("message not delivered")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// Exactly K+1 = 4 hand-offs for a single-copy message.
	total := nw.TotalStats()
	if total.Forwarded != 4 {
		t.Fatalf("forwarded = %d, want 4", total.Forwarded)
	}
	if total.Delivered != 1 {
		t.Fatalf("delivered = %d", total.Delivered)
	}
	if total.Rejected != 0 {
		t.Fatalf("rejected = %d", total.Rejected)
	}
}

func TestPayloadHiddenFromRelays(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 20, GroupSize: 4, Seed: 5})
	payload := []byte("THE-SECRET-MARKER-0xFEEDFACE-THAT-MUST-NOT-LEAK")
	if _, err := nw.Node(0).Send(SendSpec{
		Dst: 19, Payload: payload, Relays: 3, Copies: 1,
	}, rng.New(6)); err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(20, 1, 30, rng.New(7))
	dst := nw.Node(19)

	// Inspect every relay buffer after every contact: the payload must
	// never appear outside the destination.
	leaked := false
	for step := 0; step < 100000 && dst.DeliveredCount() == 0; step++ {
		nw.DriveSynthetic(g, float64(step+1), rng.New(uint64(step)), func() bool { return true })
		for i := 0; i < 19; i++ {
			n := nw.Node(contact.NodeID(i))
			n.mu.Lock()
			for _, c := range n.buffer {
				if bytes.Contains(c.data, payload[:16]) {
					leaked = true
				}
			}
			n.mu.Unlock()
		}
		if leaked {
			t.Fatal("payload fragment visible in a relay buffer")
		}
	}
}

func TestTamperingRejectedAndRetried(t *testing.T) {
	// 30% of hand-offs are corrupted; authenticated encryption must
	// reject them and the message must still arrive via retries.
	nw := testNetwork(t, Config{Nodes: 20, GroupSize: 4, Seed: 9, CorruptProb: 0.3})
	const msgs = 10
	ids := make([]string, msgs)
	for i := range ids {
		id, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: []byte("persist"), Relays: 2, Copies: 1}, rng.New(uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	g := contact.NewRandom(20, 1, 10, rng.New(11))
	dst := nw.Node(19)
	nw.DriveSynthetic(g, 1e7, rng.New(12), func() bool { return dst.DeliveredCount() == msgs })
	for i, id := range ids {
		if _, ok := dst.Delivered(id); !ok {
			t.Fatalf("message %d lost under transport corruption", i)
		}
	}
	if nw.TotalStats().Rejected == 0 {
		t.Fatal("no hand-off was ever rejected at 30% corruption across 30 hops")
	}
}

func TestFullCorruptionNeverDelivers(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 12, GroupSize: 3, Seed: 13, CorruptProb: 1})
	if _, err := nw.Node(0).Send(SendSpec{Dst: 11, Payload: []byte("doomed"), Relays: 2, Copies: 1}, rng.New(14)); err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(12, 1, 5, rng.New(15))
	nw.DriveSynthetic(g, 5000, rng.New(16), nil)
	if nw.TotalStats().Delivered != 0 {
		t.Fatal("delivered despite total corruption")
	}
	// The source still holds the onion: nothing was lost.
	if nw.Node(0).BufferLen() != 1 {
		t.Fatalf("source buffer = %d, want 1", nw.Node(0).BufferLen())
	}
}

func TestExpiry(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 12, GroupSize: 3, Seed: 17})
	if _, err := nw.Node(0).Send(SendSpec{
		Dst: 11, Payload: []byte("late"), Relays: 2, Copies: 1, Expiry: 0.001,
	}, rng.New(18)); err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(12, 1, 5, rng.New(19))
	nw.DriveSynthetic(g, 1000, rng.New(20), nil)
	total := nw.TotalStats()
	if total.Delivered != 0 {
		t.Fatal("expired message was delivered")
	}
	if total.Expired == 0 {
		t.Fatal("expiry never triggered")
	}
}

func TestMultiCopyStrict(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 30, GroupSize: 5, Seed: 21})
	msgID, err := nw.Node(0).Send(SendSpec{Dst: 29, Payload: []byte("multi"), Relays: 3, Copies: 3}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(30, 1, 20, rng.New(23))
	dst := nw.Node(29)
	nw.DriveSynthetic(g, 1e6, rng.New(24), func() bool { return dst.DeliveredCount() > 0 })
	if _, ok := dst.Delivered(msgID); !ok {
		t.Fatal("not delivered")
	}
	// Cost within the multi-copy bound 2L-1+KL.
	if f := nw.TotalStats().Forwarded; f > 2*3-1+3*3 {
		t.Fatalf("forwarded = %d exceeds bound", f)
	}
}

func TestSprayCarriersCannotPeel(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 30, GroupSize: 5, Seed: 25, Spray: true})
	msgID, err := nw.Node(0).Send(SendSpec{Dst: 29, Payload: []byte("spray"), Relays: 2, Copies: 4}, rng.New(26))
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(30, 1, 20, rng.New(27))
	dst := nw.Node(29)
	nw.DriveSynthetic(g, 1e6, rng.New(28), func() bool { return dst.DeliveredCount() > 0 })
	if _, ok := dst.Delivered(msgID); !ok {
		t.Fatal("not delivered in spray mode")
	}
}

func TestMeetSelfIsNoop(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 10, GroupSize: 2, Seed: 29})
	if rep := nw.Meet(3, 3, 0); rep.Transfers != 0 {
		t.Fatal("self-meeting transferred something")
	}
}

func TestConcurrentMeets(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 40, GroupSize: 5, Seed: 31})
	// Ten messages from different sources.
	for i := 0; i < 10; i++ {
		if _, err := nw.Node(contact.NodeID(i)).Send(SendSpec{
			Dst: contact.NodeID(39 - i), Payload: []byte{byte(i)}, Relays: 2, Copies: 2,
		}, rng.New(uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer Meet from many goroutines; the per-pair double-locking
	// must keep ticket accounting consistent (run with -race).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := rng.New(uint64(w))
			for i := 0; i < 2000; i++ {
				a := contact.NodeID(s.IntN(40))
				b := contact.NodeID(s.PickOther(40, int(a)))
				nw.Meet(a, b, float64(i))
			}
		}(w)
	}
	wg.Wait()
	total := nw.TotalStats()
	if total.Delivered > 10 {
		t.Fatalf("delivered %d > sent 10", total.Delivered)
	}
	if total.Sent != 10 {
		t.Fatalf("sent = %d", total.Sent)
	}
}

func TestDriveTrace(t *testing.T) {
	tr, err := trace.GenerateCambridge(rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	nw := testNetwork(t, Config{Nodes: tr.NodeCount, GroupSize: 3, Seed: 34})
	msgID, err := nw.Node(0).Send(SendSpec{Dst: 11, Payload: []byte("trace"), Relays: 2, Copies: 1}, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	dst := nw.Node(11)
	start := tr.Contacts[0].Start
	nw.DriveTrace(tr, start, 86400, func() bool { return dst.DeliveredCount() > 0 })
	if _, ok := dst.Delivered(msgID); !ok {
		t.Fatal("not delivered over the dense trace within a day")
	}
}

func BenchmarkMeet(b *testing.B) {
	nw, err := NewNetwork(Config{Nodes: 20, GroupSize: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: make([]byte, 256), Relays: 3, Copies: 1}, rng.New(2)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Meet(contact.NodeID(i%19), contact.NodeID((i+7)%19), float64(i))
	}
}

func BenchmarkEndToEnd(b *testing.B) {
	g := contact.NewRandom(20, 1, 30, rng.New(3))
	for i := 0; i < b.N; i++ {
		nw, err := NewNetwork(Config{Nodes: 20, GroupSize: 4, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: make([]byte, 256), Relays: 3, Copies: 1}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
		dst := nw.Node(19)
		nw.DriveSynthetic(g, 1e6, rng.New(uint64(i)+1), func() bool { return dst.DeliveredCount() > 0 })
	}
}

func TestRevokedRelayRoutedAround(t *testing.T) {
	// A compromised relay is revoked via rekey; it can no longer peel,
	// so hand-offs to it are rejected and the message routes through
	// another member of the same onion group.
	nw := testNetwork(t, Config{Nodes: 20, GroupSize: 4, Seed: 41})
	dir := nw.Directory()
	if err := dir.Rekey(nil); err != nil { // fresh epoch before sending
		t.Fatal(err)
	}
	msgID, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: []byte("resilient"), Relays: 2, Copies: 1}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// Revoking reissues all keys, which would strand the in-flight
	// onion; so revoke WITHOUT rotating by marking the node directly:
	// use Rekey on a copy-free path instead. Here we simply revoke a
	// node and rebuild the message afterwards to model the real order
	// of operations: compromise detected -> rekey -> new traffic.
	victims := dir.Members(0)
	if err := dir.Rekey([]contact.NodeID{victims[0]}); err != nil {
		t.Fatal(err)
	}
	// The pre-rekey onion is now stale: it can never be peeled. Send a
	// fresh one under the new epoch.
	msgID2, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: []byte("fresh epoch"), Relays: 2, Copies: 1}, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(20, 1, 10, rng.New(44))
	dst := nw.Node(19)
	nw.DriveSynthetic(g, 1e6, rng.New(45), func() bool {
		_, ok := dst.Delivered(msgID2)
		return ok
	})
	if _, ok := dst.Delivered(msgID2); !ok {
		t.Fatal("fresh-epoch message not delivered")
	}
	if _, ok := dst.Delivered(msgID); ok {
		t.Fatal("stale-epoch onion was delivered despite the rekey")
	}
	// The revoked node never successfully carried the new message.
	if s := nw.Node(victims[0]).Stats(); s.Carried > 0 && dir.IsRevoked(victims[0]) {
		// Carrying without peeling is allowed only for sprayed copies;
		// with Spray disabled the revoked node must not have carried.
		t.Fatalf("revoked node carried a copy: %+v", s)
	}
}

func TestBufferLimitRefusesCustody(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 20, GroupSize: 4, Seed: 51, BufferLimit: 1})
	// Two messages from node 0: relays can hold only one onion each,
	// so some custody hand-offs are refused, yet both messages arrive
	// eventually (refusal leaves custody with the sender).
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := nw.Node(0).Send(SendSpec{Dst: 19, Payload: []byte{byte(i)}, Relays: 2, Copies: 1}, rng.New(uint64(52+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Note the source itself holds 2 onions; Send is exempt from the
	// limit (a node may always originate), only accepts are capped.
	g := contact.NewRandom(20, 1, 5, rng.New(54))
	dst := nw.Node(19)
	nw.DriveSynthetic(g, 1e6, rng.New(55), func() bool { return dst.DeliveredCount() == 2 })
	for i, id := range ids {
		if _, ok := dst.Delivered(id); !ok {
			t.Fatalf("message %d lost under buffer pressure", i)
		}
	}
}

func TestBufferLimitValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Nodes: 5, GroupSize: 2, BufferLimit: -1}); err == nil {
		t.Fatal("accepted negative buffer limit")
	}
}

func TestBufferRefusalCounted(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 10, GroupSize: 3, Seed: 57, BufferLimit: 1})
	// Fill node 1's buffer manually by sending it a message addressed
	// through its group, then try a second transfer to it.
	dir := nw.Directory()
	gid := dir.GroupOf(1)
	var inGroup contact.NodeID = 1
	// Two messages whose first group is node 1's group.
	sent := 0
	for i := 0; i < 50 && sent < 2; i++ {
		id, err := nw.Node(0).Send(SendSpec{Dst: 9, Payload: []byte{byte(i)}, Relays: 2, Copies: 1}, rng.New(uint64(60+i)))
		if err != nil {
			t.Fatal(err)
		}
		_ = id
		sent++
	}
	// Drive only meetings between 0 and 1: the second custody transfer
	// to node 1 must be refused if both onions start at 1's group.
	for step := 0; step < 10; step++ {
		nw.Meet(0, inGroup, float64(step))
	}
	_ = gid
	if nw.Node(1).BufferLen() > 1 {
		t.Fatalf("buffer limit exceeded: %d", nw.Node(1).BufferLen())
	}
}

func TestAntiPacketsPurgeStaleCopies(t *testing.T) {
	// Multi-copy message with anti-packets: after delivery, the ACK
	// gossips through contacts and stale copies are purged everywhere.
	nw := testNetwork(t, Config{Nodes: 30, GroupSize: 5, Seed: 71, Spray: true, AntiPackets: true})
	msgID, err := nw.Node(0).Send(SendSpec{Dst: 29, Payload: []byte("ack me"), Relays: 2, Copies: 5}, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(30, 1, 10, rng.New(73))
	dst := nw.Node(29)
	// Run well past delivery so the anti-packet can spread.
	nw.DriveSynthetic(g, 1e6, rng.New(74), func() bool {
		if dst.DeliveredCount() == 0 {
			return false
		}
		for i := 0; i < 30; i++ {
			if nw.Node(contact.NodeID(i)).BufferLen() > 0 {
				return false
			}
		}
		return true
	})
	if _, ok := dst.Delivered(msgID); !ok {
		t.Fatal("not delivered")
	}
	total := 0
	for i := 0; i < 30; i++ {
		total += nw.Node(contact.NodeID(i)).BufferLen()
	}
	if total != 0 {
		t.Fatalf("%d stale copies still buffered after anti-packet spread", total)
	}
	if nw.TotalStats().Purged == 0 {
		t.Fatal("no copy was ever purged despite L=5")
	}
	if !nw.Node(0).KnowsDelivered(msgID) {
		t.Fatal("source never learned about the delivery")
	}
}

func TestWithoutAntiPacketsStaleCopiesLinger(t *testing.T) {
	nw := testNetwork(t, Config{Nodes: 30, GroupSize: 5, Seed: 75, Spray: true})
	if _, err := nw.Node(0).Send(SendSpec{Dst: 29, Payload: []byte("no ack"), Relays: 2, Copies: 5}, rng.New(76)); err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(30, 1, 10, rng.New(77))
	dst := nw.Node(29)
	nw.DriveSynthetic(g, 1e5, rng.New(78), func() bool { return dst.DeliveredCount() > 0 })
	if dst.DeliveredCount() == 0 {
		t.Skip("no delivery on this realization")
	}
	// Stalled copies remain: holders at the last hop can never hand to
	// the destination again.
	nw.DriveSynthetic(g, 1e5, rng.New(79), nil)
	total := 0
	for i := 0; i < 30; i++ {
		total += nw.Node(contact.NodeID(i)).BufferLen()
	}
	if total == 0 {
		t.Fatal("expected stale copies without anti-packets")
	}
	if nw.TotalStats().Purged != 0 {
		t.Fatal("purge happened without anti-packets")
	}
}
