// Package obs is the observability layer of the system: cheap event
// counters, log2-bucketed histograms, and wall-clock phase timers
// collected behind a Sink interface, plus the per-invocation run
// manifest (manifest.go) and the shared profiling flags (prof.go) the
// commands expose.
//
// Two invariants make instrumentation safe to leave wired through the
// hot layers (des, sim, node, experiment):
//
//   - Zero RNG: no obs call ever draws from an rng.Stream or perturbs
//     any seeded state, so instrumented and uninstrumented runs produce
//     byte-identical figures (enforced by TestObsByteIdentical).
//   - Zero overhead when disabled: the default state has no collector
//     installed; hot paths guard with `if c := obs.Active(); c != nil`,
//     a single atomic pointer load, and allocate nothing. The enabled
//     path uses fixed-index atomic counters — no maps, no strings — so
//     aggregation across worker goroutines is deterministic (integer
//     sums and maxes are order-independent).
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one event counter. Counters are fixed at compile
// time and indexed into an array, keeping the enabled path free of map
// lookups and the manifest output free of map iteration order.
type Counter uint8

// The counter set, grouped by the layer that emits it.
const (
	// internal/des: discrete-event scheduler.
	DESEvents         Counter = iota // events dispatched by Run/RunUntil
	DESQueueHighWater                // max pending events observed (high-water)

	// internal/sim: contact engines.
	SimSyntheticContacts // contacts delivered by the synthetic engine
	SimReplayContacts    // contacts delivered by trace replay
	SimContactsDropped   // contacts dropped by the Lossy fault wrapper

	// internal/routing: abstract direct sampler (the engine behind the
	// paper's large-scale figures).
	RoutingContacts   // protocol-relevant contacts realized by the sampler
	RoutingHandoffs   // transmissions across all copies
	RoutingDeliveries // messages delivered within the deadline

	// internal/node: message-level runtime.
	NodeContacts         // Meet calls executed
	NodeHandoffs         // onions that changed custody
	NodeDeliveries       // payloads delivered to their destination
	NodeRejected         // hand-offs rejected (tamper, dup, unknown layer)
	NodeTruncated        // frames torn mid-transfer
	NodeRetransmissions  // in-contact retransmissions after a tear
	NodeTamperDrops      // frames dropped after corrupting byte flips
	NodeDedupHits        // duplicate redeliveries suppressed by the seen log
	NodeWireBytes        // bytes pushed across the wire (retries included)
	NodeCustodyHighWater // max custody-buffer occupancy observed (high-water)

	// internal/experiment: Monte Carlo harness.
	ExpTrialBatches       // MapTrials invocations
	ExpTrials             // trials executed across all batches
	ExpBatchWallNanos     // wall-clock summed over batches
	ExpBatchCapacityNanos // wall-clock x workers summed over batches
	ExpTrialBusyNanos     // per-trial busy time summed over all trials

	// internal/cluster: live TCP runtime.
	ClusterDials         // outbound connections dialed
	ClusterAccepts       // inbound connections accepted
	ClusterContacts      // socket contacts executed
	ClusterFramesOut     // frames written to sockets
	ClusterFramesIn      // frames read from sockets
	ClusterBytesOut      // frame payload bytes written
	ClusterBytesIn       // frame payload bytes read
	ClusterFrameErrors   // truncated/tampered reads
	ClusterRegistrations // directory registrations accepted

	// internal/node: backpressure-aware custody (PR 8). Appended after
	// the cluster block so earlier manifest consumers keep their
	// positional prefix.
	NodeRefusals          // custody offers refused because the receiver's buffer was full
	NodeBackpressureDrops // onions dropped after exhausting their re-offer budget

	// cmd/dtnload: sustained-load service mode.
	LoadInjected    // messages injected by the open-loop generator
	LoadDelivered   // injected messages observed delivered
	LoadSLOBreaches // epochs that missed a configured SLO

	// internal/resultcache + internal/dispatch: content-addressed trial
	// cache and work-stealing fleet dispatch (PR 9). Appended after the
	// load block so earlier manifest consumers keep their positional
	// prefix.
	CacheHits      // trial results served from the content-addressed cache (prior runs or fleet peers)
	CacheMisses    // trials this process executed because no cached result held them
	DispatchLeases // trial-range leases acquired by this process
	DispatchSteals // expired leases stolen back from dead or stalled workers

	// internal/chaos + cluster self-healing (PR 10). Appended after the
	// dispatch block so earlier manifest consumers keep their positional
	// prefix.
	ChaosInjected  // chaos faults applied: connection profiles, partition and blackout dial blocks
	ChaosBlackouts // scheduled directory blackout windows executed by a harness
	RetryAttempts  // backoff retries of dials, registrations, and contact preambles
	BreakerOpens   // per-peer circuit breakers tripped open

	numCounters
)

// counterNames are the manifest keys, emitted in declaration order.
var counterNames = [numCounters]string{
	DESEvents:             "des.events_dispatched",
	DESQueueHighWater:     "des.queue_high_water",
	SimSyntheticContacts:  "sim.contacts_synthetic",
	SimReplayContacts:     "sim.contacts_replayed",
	SimContactsDropped:    "sim.contacts_dropped",
	RoutingContacts:       "routing.contacts",
	RoutingHandoffs:       "routing.handoffs",
	RoutingDeliveries:     "routing.deliveries",
	NodeContacts:          "node.contacts",
	NodeHandoffs:          "node.handoffs",
	NodeDeliveries:        "node.deliveries",
	NodeRejected:          "node.rejected",
	NodeTruncated:         "node.truncated",
	NodeRetransmissions:   "node.retransmissions",
	NodeTamperDrops:       "node.tamper_drops",
	NodeDedupHits:         "node.dedup_hits",
	NodeWireBytes:         "node.wire_bytes",
	NodeCustodyHighWater:  "node.custody_high_water",
	ExpTrialBatches:       "experiment.trial_batches",
	ExpTrials:             "experiment.trials",
	ExpBatchWallNanos:     "experiment.batch_wall_nanos",
	ExpBatchCapacityNanos: "experiment.batch_capacity_nanos",
	ExpTrialBusyNanos:     "experiment.trial_busy_nanos",
	ClusterDials:          "cluster.dials",
	ClusterAccepts:        "cluster.accepts",
	ClusterContacts:       "cluster.contacts",
	ClusterFramesOut:      "cluster.frames_out",
	ClusterFramesIn:       "cluster.frames_in",
	ClusterBytesOut:       "cluster.bytes_out",
	ClusterBytesIn:        "cluster.bytes_in",
	ClusterFrameErrors:    "cluster.frame_errors",
	ClusterRegistrations:  "cluster.registrations",
	NodeRefusals:          "node.refusals",
	NodeBackpressureDrops: "node.backpressure_drops",
	LoadInjected:          "load.injected",
	LoadDelivered:         "load.delivered",
	LoadSLOBreaches:       "load.slo_breaches",
	ChaosInjected:         "chaos.injected",
	ChaosBlackouts:        "chaos.blackouts",
	RetryAttempts:         "retry.attempts",
	BreakerOpens:          "breaker.opens",
	CacheHits:             "cache.hits",
	CacheMisses:           "cache.misses",
	DispatchLeases:        "dispatch.leases",
	DispatchSteals:        "dispatch.steals",
}

// String returns the manifest key of the counter.
func (c Counter) String() string { return counterNames[c] }

// Histogram identifies one log2-bucketed value distribution.
type Histogram uint8

const (
	HistContactTransfers  Histogram = iota // custody transfers per contact
	HistHandoffFrameBytes                  // marshaled frame size per hand-off attempt
	HistTrialBatchTrials                   // trials per MapTrials batch
	HistClusterConnFrames                  // frames exchanged per socket connection
	HistLoadLatencyMillis                  // delivery latency per delivered load message (sim ms)

	numHistograms
)

var histogramNames = [numHistograms]string{
	HistContactTransfers:  "node.contact_transfers",
	HistHandoffFrameBytes: "node.handoff_frame_bytes",
	HistTrialBatchTrials:  "experiment.trial_batch_trials",
	HistClusterConnFrames: "cluster.conn_frames",
	HistLoadLatencyMillis: "load.delivery_latency_ms",
}

// String returns the manifest key of the histogram.
func (h Histogram) String() string { return histogramNames[h] }

// histBuckets is enough for values up to 2^61-1; everything larger
// lands in the final overflow bucket.
const histBuckets = 63

// bucketIndex maps v to its log2 bucket. The semantics are pinned by
// TestBucketSemantics (and frozen into Prometheus scrape output by the
// promhttp exporter):
//
//   - bucket 0 holds v <= 0 (negative observations are clamped, never
//     silently dropped: they count in bucket 0 and contribute 0 to the
//     histogram sum so sum and buckets stay mutually consistent);
//   - bucket i (1 <= i <= 61) holds v in [2^(i-1), 2^i), i.e. its
//     inclusive upper bound is 2^i - 1;
//   - bucket 62 is the overflow bucket holding every v >= 2^61. Its
//     upper bound is MaxInt64 (rendered +Inf by the exporter) — the
//     earlier code reported 2^62-1 while also binning values up to
//     2^63-1 there, so the top bucket's bound lied about its contents.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := 0
	for u := uint64(v); u != 0; u >>= 1 {
		idx++
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpperBound returns the inclusive upper bound of bucket i; the
// final bucket is the overflow bucket with no finite bound.
func bucketUpperBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Sink receives instrumentation events. The two implementations are
// Nop (the default; every method is empty) and *Collector. Arguments
// are fixed-size integers so a no-op sink costs a dynamic dispatch and
// nothing else.
type Sink interface {
	// Add increments a sum-aggregated counter.
	Add(c Counter, delta int64)
	// RecordMax raises a high-water counter to v if v is larger.
	RecordMax(c Counter, v int64)
	// Observe records one value in a histogram.
	Observe(h Histogram, v int64)
	// StartPhase opens a named wall-clock phase; the returned func
	// closes it. Phases with the same name accumulate.
	StartPhase(name string) func()
}

// Nop is the default sink: it discards everything and allocates
// nothing.
type Nop struct{}

var nopEnd = func() {}

// Add implements Sink.
func (Nop) Add(Counter, int64) {}

// RecordMax implements Sink.
func (Nop) RecordMax(Counter, int64) {}

// Observe implements Sink.
func (Nop) Observe(Histogram, int64) {}

// StartPhase implements Sink.
func (Nop) StartPhase(string) func() { return nopEnd }

// Collector is the live sink: fixed arrays of atomic counters and
// histogram buckets plus a mutex-guarded phase table. All methods are
// safe for concurrent use, and because every aggregation is an integer
// sum or max, totals are identical for every worker count and
// completion order.
type Collector struct {
	counters [numCounters]atomic.Int64
	buckets  [numHistograms][histBuckets]atomic.Int64
	histSum  [numHistograms]atomic.Int64

	mu     sync.Mutex
	phases map[string]*phaseAgg
	order  []string // phase names in first-start order
}

type phaseAgg struct {
	count int64
	total time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{phases: make(map[string]*phaseAgg)}
}

// Add implements Sink.
func (c *Collector) Add(ctr Counter, delta int64) { c.counters[ctr].Add(delta) }

// RecordMax implements Sink.
func (c *Collector) RecordMax(ctr Counter, v int64) {
	for {
		cur := c.counters[ctr].Load()
		if v <= cur || c.counters[ctr].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe implements Sink. Negative values are clamped to zero (bucket
// 0, zero sum contribution) so the histogram sum can never disagree
// with the bucket counts.
func (c *Collector) Observe(h Histogram, v int64) {
	if v < 0 {
		v = 0
	}
	c.buckets[h][bucketIndex(v)].Add(1)
	c.histSum[h].Add(v)
}

// StartPhase implements Sink.
func (c *Collector) StartPhase(name string) func() {
	start := time.Now()
	return func() {
		elapsed := time.Since(start)
		c.mu.Lock()
		defer c.mu.Unlock()
		p := c.phases[name]
		if p == nil {
			p = &phaseAgg{}
			c.phases[name] = p
			c.order = append(c.order, name)
		}
		p.count++
		p.total += elapsed
	}
}

// Get returns the current value of a counter.
func (c *Collector) Get(ctr Counter) int64 { return c.counters[ctr].Load() }

// CounterTotal is one counter in a snapshot.
type CounterTotal struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Counters snapshots every counter in declaration order (a fixed,
// deterministic order — never map iteration).
func (c *Collector) Counters() []CounterTotal {
	out := make([]CounterTotal, numCounters)
	for i := range out {
		out[i] = CounterTotal{Name: counterNames[i], Value: c.counters[i].Load()}
	}
	return out
}

// HistogramBucket is one populated bucket: Count values <= Le (and
// greater than the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram in a snapshot.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Histograms snapshots every histogram in declaration order, eliding
// empty buckets.
func (c *Collector) Histograms() []HistogramSnapshot {
	out := make([]HistogramSnapshot, numHistograms)
	for h := range out {
		snap := HistogramSnapshot{Name: histogramNames[h], Sum: c.histSum[h].Load()}
		for i := 0; i < histBuckets; i++ {
			n := c.buckets[h][i].Load()
			if n == 0 {
				continue
			}
			snap.Count += n
			snap.Buckets = append(snap.Buckets, HistogramBucket{Le: bucketUpperBound(i), Count: n})
		}
		out[h] = snap
	}
	return out
}

// PhaseTiming is one named phase in a snapshot.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Phases snapshots the phase table in first-start order.
func (c *Collector) Phases() []PhaseTiming {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PhaseTiming, 0, len(c.order))
	for _, name := range c.order {
		p := c.phases[name]
		out = append(out, PhaseTiming{Name: name, Count: p.count, Seconds: p.total.Seconds()})
	}
	return out
}

// active is the process-wide collector; nil means disabled (the
// default). Commands install one collector for the whole invocation;
// the manifest they emit aggregates everything the run did.
var active atomic.Pointer[Collector]

// Install makes c the process-wide collector. Passing nil disables
// collection (the default state).
func Install(c *Collector) { active.Store(c) }

// Active returns the installed collector, or nil when collection is
// disabled. Hot paths use this as their guard:
//
//	if c := obs.Active(); c != nil {
//	    c.Add(obs.NodeContacts, 1)
//	}
func Active() *Collector { return active.Load() }

// Current returns the installed collector as a Sink, or Nop when
// collection is disabled. Convenient for cold paths that always want a
// usable sink.
func Current() Sink {
	if c := active.Load(); c != nil {
		return c
	}
	return Nop{}
}
