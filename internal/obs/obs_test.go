package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterAndHistogramNamesComplete(t *testing.T) {
	for i := Counter(0); i < numCounters; i++ {
		if counterNames[i] == "" {
			t.Errorf("counter %d has no name", i)
		}
	}
	for i := Histogram(0); i < numHistograms; i++ {
		if histogramNames[i] == "" {
			t.Errorf("histogram %d has no name", i)
		}
	}
	seen := map[string]bool{}
	for _, n := range counterNames {
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}

// TestBucketSemantics pins the histogram binning the Prometheus
// exporter freezes into scrape output: exact bucket-boundary values,
// negative observations, and the overflow bucket.
func TestBucketSemantics(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		// Negatives and zero all land in bucket 0.
		{math.MinInt64, 0}, {-5, 0}, {-1, 0}, {0, 0},
		// Regular buckets: bucket i holds [2^(i-1), 2^i).
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41},
		// Exact boundaries: a power of two opens the next bucket, the
		// value one below it closes the previous one.
		{(1 << 20) - 1, 20}, {1 << 20, 21}, {(1 << 20) + 1, 21},
		// Overflow bucket: everything >= 2^61 shares bucket 62.
		{(1 << 61) - 1, 61}, {1 << 61, 62}, {1 << 62, 62}, {math.MaxInt64, 62},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		if ub := bucketUpperBound(bucketIndex(c.v)); c.v > ub {
			t.Errorf("value %d above its bucket upper bound %d", c.v, ub)
		}
	}
	// The bounds and the binning must agree bucket by bucket: each
	// bucket's upper bound bins into that bucket, and the next value
	// into the next one.
	for i := 0; i < histBuckets; i++ {
		ub := bucketUpperBound(i)
		if got := bucketIndex(ub); got != i {
			t.Errorf("bucketIndex(bucketUpperBound(%d)=%d) = %d", i, ub, got)
		}
		if i < histBuckets-1 {
			if got := bucketIndex(ub + 1); got != i+1 {
				t.Errorf("bucketIndex(%d+1) = %d, want %d", ub, got, i+1)
			}
		}
	}
	if ub := bucketUpperBound(histBuckets - 1); ub != math.MaxInt64 {
		t.Errorf("overflow bucket upper bound = %d, want MaxInt64", ub)
	}
}

// TestObserveClampsNegatives: a negative observation counts in bucket 0
// and contributes zero to the sum, so sum and buckets stay mutually
// consistent — it is never silently dropped.
func TestObserveClampsNegatives(t *testing.T) {
	c := NewCollector()
	c.Observe(HistContactTransfers, -42)
	c.Observe(HistContactTransfers, -1)
	c.Observe(HistContactTransfers, 5)
	var snap HistogramSnapshot
	for _, h := range c.Histograms() {
		if h.Name == HistContactTransfers.String() {
			snap = h
		}
	}
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3 (negatives must not be dropped)", snap.Count)
	}
	if snap.Sum != 5 {
		t.Fatalf("sum = %d, want 5 (negatives clamp to 0)", snap.Sum)
	}
	if len(snap.Buckets) != 2 || snap.Buckets[0].Le != 0 || snap.Buckets[0].Count != 2 {
		t.Fatalf("buckets = %+v, want two negatives in bucket le=0", snap.Buckets)
	}
}

// TestDeterministicAggregation hammers one collector from many
// goroutines and checks the totals are the exact integer sums and
// maxes, independent of scheduling.
func TestDeterministicAggregation(t *testing.T) {
	c := NewCollector()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(NodeHandoffs, 3)
				c.RecordMax(NodeCustodyHighWater, int64(w*perWorker+i))
				c.Observe(HistContactTransfers, int64(i%7))
			}
		}()
	}
	wg.Wait()
	if got, want := c.Get(NodeHandoffs), int64(3*workers*perWorker); got != want {
		t.Errorf("NodeHandoffs = %d, want %d", got, want)
	}
	if got, want := c.Get(NodeCustodyHighWater), int64(workers*perWorker-1); got != want {
		t.Errorf("NodeCustodyHighWater = %d, want %d", got, want)
	}
	var histCount int64
	for _, h := range c.Histograms() {
		if h.Name == HistContactTransfers.String() {
			histCount = h.Count
		}
	}
	if want := int64(workers * perWorker); histCount != want {
		t.Errorf("histogram count = %d, want %d", histCount, want)
	}
}

func TestCountersSnapshotOrder(t *testing.T) {
	c := NewCollector()
	c.Add(ExpTrials, 7)
	snap := c.Counters()
	if len(snap) != int(numCounters) {
		t.Fatalf("snapshot has %d counters, want %d", len(snap), numCounters)
	}
	for i, ct := range snap {
		if ct.Name != counterNames[i] {
			t.Errorf("counter %d is %q, want %q (declaration order must be preserved)", i, ct.Name, counterNames[i])
		}
	}
}

func TestPhasesAccumulateInFirstStartOrder(t *testing.T) {
	c := NewCollector()
	c.StartPhase("alpha")()
	end := c.StartPhase("beta")
	time.Sleep(time.Millisecond)
	end()
	c.StartPhase("alpha")()
	phases := c.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].Name != "alpha" || phases[0].Count != 2 {
		t.Errorf("phase 0 = %+v, want alpha count 2", phases[0])
	}
	if phases[1].Name != "beta" || phases[1].Count != 1 || phases[1].Seconds <= 0 {
		t.Errorf("phase 1 = %+v, want beta count 1 with positive duration", phases[1])
	}
}

func TestInstallActiveCurrent(t *testing.T) {
	if Active() != nil {
		t.Fatal("collector installed at test start")
	}
	if _, ok := Current().(Nop); !ok {
		t.Fatal("Current() should be Nop when disabled")
	}
	c := NewCollector()
	Install(c)
	defer Install(nil)
	if Active() != c {
		t.Fatal("Active() did not return the installed collector")
	}
	if Current() != Sink(c) {
		t.Fatal("Current() did not return the installed collector")
	}
}

func TestManifestRoundTripAndValidate(t *testing.T) {
	c := NewCollector()
	c.Add(NodeContacts, 42)
	c.Observe(HistHandoffFrameBytes, 512)
	c.StartPhase("fig04")()
	m := BuildManifest(c, "figures", []string{"-fig", "fig04"}, time.Now().Add(-time.Second))
	m.Config = map[string]any{"runs": 60}
	m.Seed = 1
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.GitRevision == "" || m.GitRevision == "unknown" {
		t.Errorf("git revision not resolved: %q", m.GitRevision)
	}
	if m.WallSeconds <= 0 {
		t.Errorf("wall seconds = %v, want > 0", m.WallSeconds)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ValidateManifestBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := parsed.Counter("node.contacts"); !ok || v != 42 {
		t.Errorf("node.contacts = %d (ok=%v), want 42", v, ok)
	}
}

func TestManifestValidateRejects(t *testing.T) {
	c := NewCollector()
	m := BuildManifest(c, "figures", nil, time.Now())
	m.Command = ""
	if err := m.Validate(); err == nil {
		t.Error("missing command accepted")
	}
	m = BuildManifest(c, "figures", nil, time.Now())
	m.Counters = m.Counters[:3]
	if err := m.Validate(); err == nil {
		t.Error("truncated counter set accepted")
	}
	m = BuildManifest(c, "figures", nil, time.Now())
	m.Counters[0].Name = "bogus"
	if err := m.Validate(); err == nil {
		t.Error("renamed counter accepted")
	}
}

func TestRunFlagsLifecycle(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	rf := AddRunFlags(fs)
	manifest := filepath.Join(dir, "m.json")
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := fs.Parse([]string{"-manifest", manifest, "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	run, err := rf.Begin("testcmd", []string{"-x"})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Abort()
	if Active() != run.Collector() {
		t.Fatal("Begin did not install the collector")
	}
	Active().Add(SimSyntheticContacts, 5)
	if err := run.Finish(map[string]int{"n": 100}, 7, 4, 0.1); err != nil {
		t.Fatal(err)
	}
	if Active() != nil {
		t.Fatal("Finish did not uninstall the collector")
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ValidateManifestBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 7 || m.Workers != 4 || m.FaultRate != 0.1 {
		t.Errorf("scenario fields not recorded: %+v", m)
	}
	if v, _ := m.Counter("sim.contacts_synthetic"); v != 5 {
		t.Errorf("sim.contacts_synthetic = %d, want 5", v)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// BenchmarkDisabledGuard measures the hot-path cost when no collector
// is installed: one atomic load and a nil check, no allocations.
func BenchmarkDisabledGuard(b *testing.B) {
	Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := Active(); c != nil {
			c.Add(NodeContacts, 1)
		}
	}
}

// BenchmarkNopSink measures the dynamic-dispatch cost of the no-op
// sink; it must not allocate.
func BenchmarkNopSink(b *testing.B) {
	var s Sink = Nop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(NodeContacts, 1)
		s.Observe(HistContactTransfers, 3)
	}
}

// BenchmarkCollectorAdd measures the enabled-path counter cost.
func BenchmarkCollectorAdd(b *testing.B) {
	c := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(NodeContacts, 1)
	}
}

func TestNopAllocFree(t *testing.T) {
	var s Sink = Nop{}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(NodeContacts, 1)
		s.RecordMax(NodeCustodyHighWater, 9)
		s.Observe(HistContactTransfers, 2)
		s.StartPhase("x")()
	})
	if allocs != 0 {
		t.Errorf("Nop sink allocates %v per op, want 0", allocs)
	}
}
