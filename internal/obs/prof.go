package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
	"time"
)

// Profiles holds the standard profiling flag values shared by the
// commands (-cpuprofile, -memprofile, -trace).
type Profiles struct {
	CPU   string
	Mem   string
	Trace string

	cpuFile   *os.File
	traceFile *os.File
}

// AddProfileFlags registers the profiling flags on fs and returns the
// value holder. Call Start after parsing and defer Stop.
func AddProfileFlags(fs *flag.FlagSet) *Profiles {
	return AddProfileFlagsNamed(fs, "trace")
}

// AddProfileFlagsNamed is AddProfileFlags with a custom name for the
// execution-trace flag, for commands where -trace already means
// something else (dtnsim's contact-trace replay uses -exectrace).
func AddProfileFlagsNamed(fs *flag.FlagSet, traceFlag string) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.Trace, traceFlag, "", "write a runtime execution trace to this file")
	return p
}

// Start begins CPU profiling and execution tracing as requested. On
// error, anything already started is stopped.
func (p *Profiles) Start() error {
	if p.CPU != "" {
		f, err := os.Create(p.CPU)
		if err != nil {
			return fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	if p.Trace != "" {
		f, err := os.Create(p.Trace)
		if err != nil {
			p.stopCPU()
			return fmt.Errorf("obs: create trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return fmt.Errorf("obs: start trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

func (p *Profiles) stopCPU() {
	if p.cpuFile == nil {
		return
	}
	pprof.StopCPUProfile()
	p.cpuFile.Close()
	p.cpuFile = nil
}

// Stop finalizes every requested profile: stops the CPU profile and
// trace, and writes the heap profile. Safe to call when nothing was
// requested or Start failed.
func (p *Profiles) Stop() error {
	var firstErr error
	p.stopCPU()
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("obs: close trace: %w", err)
		}
		p.traceFile = nil
	}
	if p.Mem != "" {
		f, err := os.Create(p.Mem)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("obs: create heap profile: %w", err)
			}
		} else {
			runtime.GC() // materialize a settled heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: close heap profile: %w", err)
			}
		}
	}
	return firstErr
}

// Run bundles the whole per-invocation observability lifecycle the
// commands share: -manifest plus the profiling flags. Usage:
//
//	rf := obs.AddRunFlags(fs)
//	... fs.Parse ...
//	run, err := rf.Begin("figures", args)
//	defer run.Abort()
//	... work ...
//	err = run.Finish(cfg, seed, workers, faultRate)
type RunFlags struct {
	ManifestPath string
	Profiles     *Profiles
}

// AddRunFlags registers -manifest and the profiling flags on fs.
func AddRunFlags(fs *flag.FlagSet) *RunFlags {
	return AddRunFlagsNamed(fs, "trace")
}

// AddRunFlagsNamed is AddRunFlags with a custom execution-trace flag
// name (see AddProfileFlagsNamed).
func AddRunFlagsNamed(fs *flag.FlagSet, traceFlag string) *RunFlags {
	rf := &RunFlags{Profiles: AddProfileFlagsNamed(fs, traceFlag)}
	fs.StringVar(&rf.ManifestPath, "manifest", "", "write a JSON run manifest (config, seed, git revision, counters, phase timings) to this file")
	return rf
}

// Run is one command invocation's observability session.
type Run struct {
	flags     *RunFlags
	command   string
	args      []string
	startedAt time.Time
	collector *Collector
	finished  bool

	mu     sync.Mutex
	events []RunEvent
}

// RecordEvent appends a supervision event (resume, interruption,
// quarantine) to the manifest being assembled. Safe for concurrent
// use; a no-op when no manifest was requested.
func (r *Run) RecordEvent(ev RunEvent) {
	if r == nil || r.collector == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Begin starts profiling and, when a manifest was requested, installs
// a fresh process-wide collector.
func (rf *RunFlags) Begin(command string, args []string) (*Run, error) {
	if err := rf.Profiles.Start(); err != nil {
		return nil, err
	}
	r := &Run{flags: rf, command: command, args: args, startedAt: time.Now()}
	if rf.ManifestPath != "" {
		r.collector = NewCollector()
		Install(r.collector)
	}
	return r, nil
}

// Collector returns the run's collector, or nil when no manifest was
// requested.
func (r *Run) Collector() *Collector { return r.collector }

// Finish stops profiling, uninstalls the collector, and writes the
// manifest if one was requested. The config block, seed, workers, and
// fault rate describe the scenario the command ran.
func (r *Run) Finish(config any, seed uint64, workers int, faultRate float64) error {
	r.finished = true
	profErr := r.flags.Profiles.Stop()
	if r.collector == nil {
		return profErr
	}
	Install(nil)
	m := BuildManifest(r.collector, r.command, r.args, r.startedAt)
	m.Config = config
	m.Seed = seed
	m.Workers = workers
	m.FaultRate = faultRate
	r.mu.Lock()
	m.Events = append([]RunEvent(nil), r.events...)
	r.mu.Unlock()
	if err := m.WriteFile(r.flags.ManifestPath); err != nil {
		return err
	}
	return profErr
}

// Abort releases profiling and the collector without writing a
// manifest. A no-op after Finish; intended for defer on error paths.
func (r *Run) Abort() {
	if r.finished {
		return
	}
	r.finished = true
	_ = r.flags.Profiles.Stop()
	if r.collector != nil {
		Install(nil)
	}
}
