package obs

// Prometheus text-format exposition of the collector, stdlib only (the
// repo is dependency-free by policy). The exporter renders the same
// fixed-enum counters, log2 histograms, and phase timers the JSON run
// manifest reports, so a scrape mid-run and the manifest written at
// exit can be cross-checked total for total. Exposition follows the
// text format version 0.0.4:
//
//   - sum counters      -> <prefix><name>_total, TYPE counter
//   - high-water marks  -> <prefix><name>, TYPE gauge
//   - histograms        -> <prefix><name> with cumulative _bucket{le=...},
//     _sum and _count series, TYPE histogram (the le bounds are the
//     inclusive bucket upper bounds pinned by TestBucketSemantics; the
//     overflow bucket renders as le="+Inf")
//   - phase timers      -> <prefix>phase_seconds_total{phase=...} and
//     <prefix>phase_runs_total{phase=...}, TYPE counter
//
// ServeMetrics exposes the exposition over HTTP for the long-running
// commands (dtnload, dtnnode, dtndir -metrics). ParseExposition is the
// validating parser the end-to-end tests and obscheck -scrape use.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricPrefix namespaces every exported series.
const MetricPrefix = "dtn_"

// gaugeCounters marks the counters that are high-water marks rather
// than monotone sums; they export as gauges without the _total suffix.
var gaugeCounters = map[Counter]bool{
	DESQueueHighWater:    true,
	NodeCustodyHighWater: true,
}

var metricNameReplacer = strings.NewReplacer(".", "_", "-", "_")

// metricName converts a manifest key ("routing.contacts") into a
// Prometheus metric name ("dtn_routing_contacts").
func metricName(key string) string {
	return MetricPrefix + metricNameReplacer.Replace(key)
}

// escapeLabel escapes a label value per the exposition format.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders the collector snapshot in Prometheus text
// exposition format version 0.0.4.
func (c *Collector) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := Counter(0); i < numCounters; i++ {
		name := metricName(counterNames[i])
		typ := "counter"
		if gaugeCounters[i] {
			typ = "gauge"
		} else {
			name += "_total"
		}
		fmt.Fprintf(bw, "# HELP %s Run total of the %s %q.\n", name, typ, counterNames[i])
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		fmt.Fprintf(bw, "%s %d\n", name, c.counters[i].Load())
	}
	for h := Histogram(0); h < numHistograms; h++ {
		name := metricName(histogramNames[h])
		fmt.Fprintf(bw, "# HELP %s Distribution of %q (log2 buckets).\n", name, histogramNames[h])
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum int64
		for i := 0; i < histBuckets; i++ {
			n := c.buckets[h][i].Load()
			if n == 0 {
				continue
			}
			cum += n
			if ub := bucketUpperBound(i); ub != math.MaxInt64 {
				// The overflow bucket has no finite bound; its count is
				// folded into +Inf below.
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, ub, cum)
			}
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", name, c.histSum[h].Load())
		fmt.Fprintf(bw, "%s_count %d\n", name, cum)
	}
	secName := MetricPrefix + "phase_seconds_total"
	runName := MetricPrefix + "phase_runs_total"
	phases := c.Phases()
	fmt.Fprintf(bw, "# HELP %s Wall-clock seconds accumulated per named phase.\n", secName)
	fmt.Fprintf(bw, "# TYPE %s counter\n", secName)
	for _, p := range phases {
		fmt.Fprintf(bw, "%s{phase=\"%s\"} %g\n", secName, escapeLabel.Replace(p.Name), p.Seconds)
	}
	fmt.Fprintf(bw, "# HELP %s Completed runs per named phase.\n", runName)
	fmt.Fprintf(bw, "# TYPE %s counter\n", runName)
	for _, p := range phases {
		fmt.Fprintf(bw, "%s{phase=\"%s\"} %d\n", runName, escapeLabel.Replace(p.Name), p.Count)
	}
	return bw.Flush()
}

// MetricsServer serves a collector as a Prometheus scrape target.
type MetricsServer struct {
	lis  net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeMetrics starts an HTTP server on addr (use "127.0.0.1:0" for an
// ephemeral port) exposing /metrics for c. When c is nil the handler
// falls back to the process-wide Active() collector at scrape time, and
// answers 503 while collection is disabled.
func ServeMetrics(addr string, c *Collector) (*MetricsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		col := c
		if col == nil {
			col = Active()
		}
		if col == nil {
			http.Error(w, "collection disabled: no collector installed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = col.WritePrometheus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "dtn metrics endpoint; scrape /metrics\n")
	})
	s := &MetricsServer{
		lis:  lis,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(lis)
	}()
	return s, nil
}

// Addr returns the server's listening address.
func (s *MetricsServer) Addr() string { return s.lis.Addr().String() }

// URL returns the scrape URL.
func (s *MetricsServer) URL() string { return "http://" + s.Addr() + "/metrics" }

// Close shuts the server down and waits until the serve goroutine and
// every connection handler have exited (the goroutine-leak gates in the
// command tests depend on a full drain).
func (s *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// A hung connection outlived the grace period; tear it down.
		err = s.srv.Close()
	}
	<-s.done
	return err
}

// Sample is one parsed exposition sample: a metric name with its
// rendered label part (possibly empty) and value.
type Sample struct {
	Name   string // metric name without labels
	Labels string // raw label block including braces, "" when absent
	Value  float64
}

// Exposition is the parsed form of a Prometheus text scrape.
type Exposition struct {
	Types   map[string]string // metric family name -> counter|gauge|histogram
	Samples []Sample
}

// Value returns the value of the sample with the given full series
// name (name plus raw label block, e.g. `dtn_phase_runs_total{phase="run"}`).
func (e *Exposition) Value(series string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name+s.Labels == series {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses and validates a Prometheus text-format scrape:
// well-formed HELP/TYPE/sample lines, no duplicate HELP or TYPE per
// family, every sample preceded by its family's TYPE, histogram bucket
// series cumulative with a +Inf bucket equal to _count. It returns the
// parsed samples for counter cross-checks.
func ParseExposition(data []byte) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	helps := make(map[string]bool)
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 1 || fields[0] == "" {
				return nil, fmt.Errorf("obs: line %d: malformed HELP", ln+1)
			}
			if helps[fields[0]] {
				return nil, fmt.Errorf("obs: line %d: duplicate HELP for %s", ln+1, fields[0])
			}
			helps[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE", ln+1)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := exp.Types[name]; dup {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %s", ln+1, name)
			}
			exp.Types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		if family := familyOf(s.Name, exp.Types); family == "" {
			return nil, fmt.Errorf("obs: line %d: sample %s has no preceding TYPE", ln+1, s.Name)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := exp.validateHistograms(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseSample splits `name{labels} value` or `name value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced label braces in %q", line)
		}
		s.Name = line[:i]
		s.Labels = line[i : j+1]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" {
		return s, fmt.Errorf("sample with empty name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// familyOf resolves a sample name to its declared metric family,
// stripping the histogram series suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return ""
}

// validateHistograms checks every histogram family for cumulative
// buckets and a +Inf bucket that equals _count.
func (e *Exposition) validateHistograms() error {
	type histState struct {
		les    []float64
		counts []float64
		inf    float64
		hasInf bool
		count  float64
	}
	hists := make(map[string]*histState)
	for name, typ := range e.Types {
		if typ == "histogram" {
			hists[name] = &histState{}
		}
	}
	for _, s := range e.Samples {
		if base := strings.TrimSuffix(s.Name, "_bucket"); base != s.Name && hists[base] != nil {
			h := hists[base]
			le := strings.TrimSuffix(strings.TrimPrefix(s.Labels, `{le="`), `"}`)
			if le == "+Inf" {
				h.inf, h.hasInf = s.Value, true
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", base, le)
			}
			h.les = append(h.les, v)
			h.counts = append(h.counts, s.Value)
		}
		if base := strings.TrimSuffix(s.Name, "_count"); base != s.Name && hists[base] != nil {
			hists[base].count = s.Value
		}
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if !h.hasInf {
			return fmt.Errorf("obs: histogram %s has no +Inf bucket", name)
		}
		if h.inf != h.count {
			return fmt.Errorf("obs: histogram %s: +Inf bucket %g != count %g", name, h.inf, h.count)
		}
		for i := 1; i < len(h.counts); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("obs: histogram %s: le bounds not increasing at %g", name, h.les[i])
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("obs: histogram %s: bucket counts not cumulative at le=%g", name, h.les[i])
			}
		}
		if n := len(h.counts); n > 0 && h.counts[n-1] > h.inf {
			return fmt.Errorf("obs: histogram %s: finite bucket exceeds +Inf", name)
		}
	}
	return nil
}
