package obs

import (
	"bytes"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// populated returns a collector with every metric kind exercised,
// including an overflow and a negative observation.
func populated() *Collector {
	c := NewCollector()
	c.Add(RoutingContacts, 42)
	c.Add(NodeDeliveries, 7)
	c.RecordMax(NodeCustodyHighWater, 19)
	c.Observe(HistContactTransfers, 0)
	c.Observe(HistContactTransfers, 1)
	c.Observe(HistContactTransfers, 3)
	c.Observe(HistContactTransfers, -9)    // clamps to bucket 0
	c.Observe(HistContactTransfers, 1<<61) // overflow bucket
	c.StartPhase("scan")()
	c.StartPhase("scan")()
	return c
}

func TestWritePrometheusParsesAndMatches(t *testing.T) {
	c := populated()
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Value("dtn_routing_contacts_total"); !ok || v != 42 {
		t.Errorf("dtn_routing_contacts_total = %v, %v; want 42", v, ok)
	}
	if typ := exp.Types["dtn_node_custody_high_water"]; typ != "gauge" {
		t.Errorf("high-water type = %q, want gauge", typ)
	}
	if v, ok := exp.Value("dtn_node_custody_high_water"); !ok || v != 19 {
		t.Errorf("dtn_node_custody_high_water = %v, %v; want 19", v, ok)
	}
	if typ := exp.Types["dtn_node_contact_transfers"]; typ != "histogram" {
		t.Errorf("histogram type = %q", typ)
	}
	// 5 observations total: the overflow one appears only in +Inf.
	if v, ok := exp.Value(`dtn_node_contact_transfers_bucket{le="+Inf"}`); !ok || v != 5 {
		t.Errorf(`+Inf bucket = %v, %v; want 5`, v, ok)
	}
	if v, ok := exp.Value("dtn_node_contact_transfers_count"); !ok || v != 5 {
		t.Errorf("count = %v, %v; want 5", v, ok)
	}
	// Bucket 0 holds the zero and the clamped negative.
	if v, ok := exp.Value(`dtn_node_contact_transfers_bucket{le="0"}`); !ok || v != 2 {
		t.Errorf(`le="0" bucket = %v, %v; want 2`, v, ok)
	}
	// Sum: 0+1+3+0(clamped)+2^61.
	if v, ok := exp.Value("dtn_node_contact_transfers_sum"); !ok || v != float64(int64(1)<<61)+4 {
		t.Errorf("sum = %v, %v", v, ok)
	}
	if v, ok := exp.Value(`dtn_phase_runs_total{phase="scan"}`); !ok || v != 2 {
		t.Errorf("phase runs = %v, %v; want 2", v, ok)
	}
	// No finite bucket may carry the MaxInt64 bound.
	if strings.Contains(buf.String(), "9223372036854775807") &&
		strings.Contains(buf.String(), `le="9223372036854775807"`) {
		t.Errorf("overflow bucket leaked a finite le bound:\n%s", buf.String())
	}
}

func TestExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE": "# TYPE a counter\na 1\n# TYPE a counter\n",
		"duplicate HELP": "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n",
		"untyped sample": "a 1\n",
		"bad value":      "# TYPE a counter\na one\n",
		"no +Inf":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestMetricsServerScrapeAndShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	c := populated()
	s, err := ServeMetrics("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	exp, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if v, ok := exp.Value("dtn_routing_contacts_total"); !ok || v != 42 {
		t.Errorf("scraped dtn_routing_contacts_total = %v, %v", v, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The serve goroutine and every handler must drain: no leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("metrics server leaked goroutines: %d -> %d\n%s", before, now, buf[:n])
	}
}

func TestMetricsServerDisabledCollector(t *testing.T) {
	s, err := ServeMetrics("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get(s.URL())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while collection is disabled", resp.StatusCode)
	}
}
