package obs

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/atomicio"
)

// ManifestVersion identifies the manifest schema. Bump it when a
// required field is added or changes meaning.
const ManifestVersion = 1

// Manifest is the audit record one command invocation emits via
// -manifest: everything needed to trace a reported number back to the
// exact configuration, seed, code revision, and event totals that
// produced it. Counters, histograms, and phases are emitted as ordered
// slices, never maps, so two identical runs serialize identically
// (modulo wall-clock fields).
type Manifest struct {
	Version     int       `json:"version"`
	Command     string    `json:"command"`        // e.g. "figures"
	Args        []string  `json:"args,omitempty"` // raw CLI args as invoked
	GitRevision string    `json:"gitRevision"`
	GoVersion   string    `json:"goVersion"`
	StartedAt   time.Time `json:"startedAt"`
	WallSeconds float64   `json:"wallSeconds"`

	// Scenario identity.
	Config    any     `json:"config,omitempty"` // command-specific config block
	Seed      uint64  `json:"seed"`
	Workers   int     `json:"workers"` // 0 = GOMAXPROCS
	FaultRate float64 `json:"faultRate"`

	// Run totals.
	Counters          []CounterTotal      `json:"counters"`
	Histograms        []HistogramSnapshot `json:"histograms,omitempty"`
	Phases            []PhaseTiming       `json:"phases,omitempty"`
	WorkerUtilization float64             `json:"workerUtilization,omitempty"`

	// Events record run-supervision incidents — resumed checkpoints,
	// drain requests, quarantined trials — in occurrence order. Optional:
	// absent on clean unsupervised runs, so no version bump.
	Events []RunEvent `json:"events,omitempty"`
}

// Run-supervision event kinds.
const (
	// EventResumed: the run loaded completed trials from a checkpoint.
	EventResumed = "resumed"
	// EventInterrupted: a drain (SIGINT/SIGTERM) stopped the run before
	// every trial completed.
	EventInterrupted = "interrupted"
	// EventTrialQuarantined: a panicking or hung trial was isolated;
	// the remaining trials continued.
	EventTrialQuarantined = "trial-quarantined"
)

// RunEvent is one supervision incident.
type RunEvent struct {
	Kind string `json:"kind"`
	// Detail identifies the subject: the checkpoint file for resumed,
	// the batch and trial index for quarantines.
	Detail string `json:"detail,omitempty"`
	// Batch/Trial pinpoint a quarantined trial.
	Batch string `json:"batch,omitempty"`
	Trial int    `json:"trial,omitempty"`
}

// BuildManifest assembles a manifest from a collector snapshot.
func BuildManifest(c *Collector, command string, args []string, startedAt time.Time) *Manifest {
	m := &Manifest{
		Version:     ManifestVersion,
		Command:     command,
		Args:        args,
		GitRevision: GitRevision(),
		GoVersion:   runtime.Version(),
		StartedAt:   startedAt,
		WallSeconds: time.Since(startedAt).Seconds(),
		Counters:    c.Counters(),
		Histograms:  c.Histograms(),
		Phases:      c.Phases(),
	}
	if capacity := c.Get(ExpBatchCapacityNanos); capacity > 0 {
		m.WorkerUtilization = float64(c.Get(ExpTrialBusyNanos)) / float64(capacity)
	}
	return m
}

// JSON renders the manifest as indented JSON with a trailing newline.
func (m *Manifest) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: marshal manifest: %w", err)
	}
	return append(out, '\n'), nil
}

// WriteFile validates the manifest and writes it to path atomically,
// so a killed process never leaves a truncated manifest that parses.
func (m *Manifest) WriteFile(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := m.JSON()
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// Validate checks the manifest against the schema: required fields
// present, counter set complete and in declaration order.
func (m *Manifest) Validate() error {
	switch {
	case m.Version != ManifestVersion:
		return fmt.Errorf("obs: manifest version %d, want %d", m.Version, ManifestVersion)
	case m.Command == "":
		return fmt.Errorf("obs: manifest missing command")
	case m.GitRevision == "":
		return fmt.Errorf("obs: manifest missing git revision")
	case m.GoVersion == "":
		return fmt.Errorf("obs: manifest missing go version")
	case m.StartedAt.IsZero():
		return fmt.Errorf("obs: manifest missing start time")
	case len(m.Counters) != int(numCounters):
		return fmt.Errorf("obs: manifest has %d counters, want %d", len(m.Counters), numCounters)
	}
	for i, ct := range m.Counters {
		if ct.Name != counterNames[i] {
			return fmt.Errorf("obs: manifest counter %d is %q, want %q", i, ct.Name, counterNames[i])
		}
		if ct.Value < 0 {
			return fmt.Errorf("obs: manifest counter %q is negative: %d", ct.Name, ct.Value)
		}
	}
	for _, p := range m.Phases {
		if p.Name == "" || p.Count <= 0 || p.Seconds < 0 {
			return fmt.Errorf("obs: manifest phase %+v invalid", p)
		}
	}
	for _, ev := range m.Events {
		if ev.Kind == "" {
			return fmt.Errorf("obs: manifest event %+v missing kind", ev)
		}
	}
	return nil
}

// ValidateManifestBytes parses and validates a serialized manifest.
func ValidateManifestBytes(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Counter returns the value of the named counter, or false if the
// manifest does not carry it.
func (m *Manifest) Counter(name string) (int64, bool) {
	for _, ct := range m.Counters {
		if ct.Name == name {
			return ct.Value, true
		}
	}
	return 0, false
}

// GitRevision returns the VCS revision the binary was built from: the
// revision stamped into the build info when available (go build of a
// checkout), otherwise the HEAD of the working directory's repository
// (go run, go test), otherwise "unknown".
func GitRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}
