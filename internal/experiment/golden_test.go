package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenOptions is the effort level every committed golden CSV was
// generated at (see testdata/goldens/). Regenerate with:
//
//	go run ./cmd/figures -fig <id> -out <dir> -no-plot \
//	  -runs 60 -security-runs 300 -trace-runs 15 -seed <seed>
func goldenOptions(seed uint64, workers int) Options {
	return Options{
		Seed: seed, Runs: 60, SecurityRuns: 300, TraceRuns: 15,
		Workers: workers,
	}
}

// TestGoldenFigures byte-compares representative figures — one per
// measurement kind, plus the heaviest custom ablation — against CSVs
// committed before the scenario-engine refactor. Any byte of drift at
// any seed or worker count fails: the refactor's contract is exact
// reproduction, not statistical agreement.
func TestGoldenFigures(t *testing.T) {
	ids := []string{"fig04", "fig06", "fig11", "fig14", "ablation-faults"}
	seeds := []uint64{1, 42}
	workerCounts := []int{1, 4}
	if testing.Short() {
		seeds = seeds[:1]
		workerCounts = workerCounts[:1]
	}
	for _, id := range ids {
		for _, seed := range seeds {
			golden, err := os.ReadFile(filepath.Join(
				"testdata", "goldens", fmt.Sprintf("%s-seed%d.csv", id, seed)))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range workerCounts {
				id, seed, workers := id, seed, workers
				t.Run(fmt.Sprintf("%s/seed%d/workers%d", id, seed, workers), func(t *testing.T) {
					t.Parallel()
					fig, err := Generate(id, goldenOptions(seed, workers))
					if err != nil {
						t.Fatal(err)
					}
					if got := fig.CSV(); got != string(golden) {
						t.Errorf("%s at seed %d, workers %d drifted from the committed golden", id, seed, workers)
					}
				})
			}
		}
	}
}
