package experiment

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	scenario.RegisterCustom("ablation-buffers", ablationBuffers)
}

// ablationBuffers stresses the full-crypto runtime (internal/node)
// under storage pressure — the resource the paper's infinite-buffer
// model abstracts away. A fixed Poisson traffic load (L=3 spray) is
// offered to 40 nodes whose custody buffers are capped at 1..8 onions
// (and uncapped), with and without anti-packet delivery ACKs. Tight
// buffers force custody refusals and depress delivery; anti-packets
// reclaim buffer space from already-delivered messages and recover
// most of the loss.
func ablationBuffers(e *scenario.Engine, sc *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	const nodes = 40
	const reps = 3
	limits := []float64{1, 2, 4, 8, 0} // 0 = unlimited, plotted at x=16
	messages := opt.Runs / 5
	if messages < 30 {
		messages = 30
	}
	// Each (anti, limit, rep) cell is an independent deterministic run;
	// cells execute on the supervised trial pool (flattened index j) and
	// aggregate in cell order, so output is worker-count invariant and
	// checkpointable per cell.
	perAnti := len(limits) * reps
	cells, err := scenario.Trials(e, sc.ID+"/cells", 2*perAnti, func(j int) (float64, error) {
		anti := j >= perAnti
		lim := limits[(j%perAnti)/reps]
		rep := uint64(j % reps)
		nw, err := node.NewNetwork(node.Config{
			Nodes:       nodes,
			GroupSize:   5,
			Seed:        opt.Seed + rep,
			Spray:       true,
			AntiPackets: anti,
			BufferLimit: int(lim),
			Faults:      fault.Uniform(opt.FaultRate),
		})
		if err != nil {
			return 0, err
		}
		g := contact.NewRandom(nodes, 1, 30, rng.New(opt.Seed+rep+101))
		res, err := workload.Run(nw, g, workload.Spec{
			Messages:    messages,
			ArrivalRate: 1,
			PayloadSize: 128,
			Relays:      3,
			Copies:      3,
			ExpiryAfter: 600,
			Seed:        opt.Seed + rep + 7,
		}, float64(messages)+1200)
		if err != nil {
			return 0, fmt.Errorf("experiment: buffers (anti=%v lim=%v): %w", anti, lim, err)
		}
		return res.DeliveryRate, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var series []stats.Series
	for ai, anti := range []bool{false, true} {
		name := "No acknowledgements"
		if anti {
			name = "Anti-packets"
		}
		s := stats.Series{Name: name}
		for li, lim := range limits {
			var acc stats.Accumulator
			for rep := 0; rep < reps; rep++ {
				acc.Add(cells[ai*perAnti+li*reps+rep])
			}
			x := lim
			if lim == 0 {
				x = 16
			}
			s.Append(x, acc.Mean(), acc.CI95())
		}
		series = append(series, s)
	}
	notes := []string{
		fmt.Sprintf("%d messages at 1/min, 10h per-message deadline, every hand-off a real encrypted bundle", messages),
	}
	return series, notes, nil
}
