package experiment

import (
	"bytes"
	"testing"

	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// cacheRun evaluates one spec against a shared content-addressed cache
// directory and reports the figure JSON plus the run's cache traffic.
type cacheRunResult struct {
	json   []byte
	hits   int64
	misses int64
	trials int64 // obs ExpTrials: trials that entered runner.Supervised
}

func cacheRun(t *testing.T, spec scenario.Scenario, opt Options, cacheDir, owner string) cacheRunResult {
	t.Helper()
	if obs.Active() != nil {
		t.Fatal("a collector is already installed")
	}
	c := obs.NewCollector()
	obs.Install(c)
	defer obs.Install(nil)

	key, err := scenario.ContentKey(&spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	store, err := resultcache.Open(cacheDir, key, spec.ID, opt.Seed, owner)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := scenario.NewEngine(opt)
	eng.SuperviseFleet(nil, dispatch.New(store, dispatch.Options{Owner: owner}))
	fig, err := eng.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	js, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return cacheRunResult{
		json:   js,
		hits:   c.Get(obs.CacheHits),
		misses: c.Get(obs.CacheMisses),
		trials: c.Get(obs.ExpTrials),
	}
}

// TestCrossEditInvalidation is the tentpole's contract: after a warm
// cache is built for several specs, editing ONE spec's numerical axis
// recomputes only that spec — every other artifact regenerates purely
// from cache, byte-identical, with the hit/miss counters pinned.
func TestCrossEditInvalidation(t *testing.T) {
	opt := Options{Seed: 1, Runs: 30, SecurityRuns: 200, TraceRuns: 5, Workers: 2}
	specs := map[string]scenario.Scenario{}
	for _, s := range FigureSpecs() {
		if s.ID == "fig04" || s.ID == "fig06" {
			specs[s.ID] = s
		}
	}
	if len(specs) != 2 {
		t.Fatalf("registry specs missing: got %v", specs)
	}
	cacheDir := t.TempDir()

	// Cold: every trial is computed, nothing served from cache.
	cold := map[string]cacheRunResult{}
	for id, s := range specs {
		r := cacheRun(t, s, opt, cacheDir, "cold")
		if r.misses == 0 {
			t.Fatalf("%s: cold run computed no trials", id)
		}
		if r.hits != 0 {
			t.Fatalf("%s: cold run claims %d cache hits", id, r.hits)
		}
		cold[id] = r
	}

	// Warm: zero computation. The pinned counters: misses == 0, hits ==
	// the cold run's miss count, and ExpTrials == 0 because satisfied
	// chunks never enter runner.Supervised — the machine-independent
	// "warm run executed nothing" gate CI uses.
	for id, s := range specs {
		r := cacheRun(t, s, opt, cacheDir, "warm")
		if r.misses != 0 {
			t.Fatalf("%s: warm run recomputed %d trials", id, r.misses)
		}
		if r.hits != cold[id].misses {
			t.Fatalf("%s: warm hits = %d; want %d (the cold miss count)", id, r.hits, cold[id].misses)
		}
		if r.trials != 0 {
			t.Fatalf("%s: warm run passed %d trials into the runner; want 0", id, r.trials)
		}
		if !bytes.Equal(r.json, cold[id].json) {
			t.Fatalf("%s: warm artifact differs from cold artifact", id)
		}
	}

	// Edit fig04's deadline axis — a numerical input. Its content key
	// must move; fig06's must not.
	edited := specs["fig04"]
	edited.X.Values = append([]float64(nil), edited.X.Values...)
	edited.X.Values[len(edited.X.Values)-1] *= 1.25
	fig04 := specs["fig04"]
	oldKey, err := scenario.ContentKey(&fig04, opt)
	if err != nil {
		t.Fatal(err)
	}
	newKey, err := scenario.ContentKey(&edited, opt)
	if err != nil {
		t.Fatal(err)
	}
	if oldKey == newKey {
		t.Fatal("editing an axis value did not change the content key")
	}

	// Regenerate both: only the edited spec recomputes.
	rEdited := cacheRun(t, edited, opt, cacheDir, "edit")
	if rEdited.misses == 0 {
		t.Fatal("edited spec served stale cached results")
	}
	rOther := cacheRun(t, specs["fig06"], opt, cacheDir, "edit")
	if rOther.misses != 0 {
		t.Fatalf("unedited spec recomputed %d trials after a foreign edit", rOther.misses)
	}
	if !bytes.Equal(rOther.json, cold["fig06"].json) {
		t.Fatal("unedited spec's artifact changed after a foreign edit")
	}

	// Presentation edits (title, labels, notes) must not move the key:
	// they regenerate from cache without recomputing anything.
	cosmetic := specs["fig04"]
	cosmetic.Title = "A different title"
	cosmetic.XLabel = "relabeled"
	cosmetic.Notes = append([]string{"new note"}, cosmetic.Notes...)
	cosmeticKey, err := scenario.ContentKey(&cosmetic, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cosmeticKey != oldKey {
		t.Fatal("presentation-only edit changed the content key")
	}
	rCosmetic := cacheRun(t, cosmetic, opt, cacheDir, "cosmetic")
	if rCosmetic.misses != 0 {
		t.Fatalf("presentation-only edit recomputed %d trials", rCosmetic.misses)
	}
}

// TestContentKeySensitivity pins what the content key must and must
// not react to.
func TestContentKeySensitivity(t *testing.T) {
	base := FigureSpecs()[0]
	opt := Options{Seed: 1, Runs: 30, SecurityRuns: 200, TraceRuns: 5}
	key := func(s scenario.Scenario, o Options) string {
		k, err := scenario.ContentKey(&s, o)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	ref := key(base, opt)

	// Must move: numerical inputs.
	if s := base; true {
		s.Base.Nodes++
		if key(s, opt) == ref {
			t.Fatal("config edit did not move the key")
		}
	}
	if o := opt; true {
		o.Runs++
		if key(base, o) == ref {
			t.Fatal("effort edit did not move the key")
		}
	}
	if o := opt; true {
		o.Seed = 42
		if key(base, o) == ref {
			t.Fatal("seed change did not move the key")
		}
	}
	if o := opt; true {
		o.FaultRate = 0.1
		if key(base, o) == ref {
			t.Fatal("fault-rate change did not move the key")
		}
	}

	// Must NOT move: presentation and worker count.
	if s := base; true {
		s.Title, s.YLabel, s.LogX = "x", "y", !s.LogX
		s.Series.Labels = []string{}
		s.Series.LabelFormat = "q=%d"
		s.Series.Name = "renamed"
		if key(s, opt) != ref {
			t.Fatal("presentation edit moved the key")
		}
	}
	if o := opt; true {
		o.Workers = 7
		if key(base, o) != ref {
			t.Fatal("worker count moved the key")
		}
	}
}
