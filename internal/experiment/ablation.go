package experiment

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	scenario.RegisterCustom("ablation-traceable", ablationTraceable)
	scenario.RegisterCustom("ablation-tps", ablationTPS)
	scenario.RegisterCustom("ablation-model-gap", ablationModelGap)
}

// ablationTraceable compares the two reconstructions of the
// traceable-rate analysis (DESIGN.md Sec. 5.4): the exact run-length
// expectation used as the headline model versus the paper's literal
// small-c geometric approximation (Eqs. 8-12), against a Monte-Carlo
// reference.
func ablationTraceable(e *scenario.Engine, s *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	const eta = 4 // K = 3
	fracs := scenario.CompromisedFractions()
	exact := stats.Series{Name: "Exact expectation"}
	approx := stats.Series{Name: "Paper approximation (Eqs. 8-12)"}
	mc := stats.Series{Name: "Monte Carlo"}
	root := rng.New(opt.Seed)
	for fi, frac := range fracs {
		exact.Append(frac, model.TraceableRate(eta, frac), 0)
		approx.Append(frac, model.TraceableRatePaperApprox(eta, frac), 0)
		// One index-labeled substream per sample (not one shared stream
		// per point) so the Monte Carlo column is worker-count
		// invariant.
		vals, err := scenario.Trials(e, fmt.Sprintf("%s/mc/f%d", s.ID, fi), opt.SecurityRuns, func(i int) (float64, error) {
			st := root.SplitN("mc", fi*1000003+i)
			bits := make([]bool, eta)
			for b := range bits {
				bits[b] = st.Bernoulli(frac)
			}
			return model.TraceableRateOfPath(bits), nil
		})
		if err != nil {
			return nil, nil, err
		}
		var acc stats.Accumulator
		for _, v := range vals {
			acc.Add(v)
		}
		mc.Append(frac, acc.Mean(), acc.CI95())
	}
	return []stats.Series{exact, approx, mc}, nil, nil
}

// ablationTPS compares onion routing (K = 3 and K = 10, L = 1)
// against the Threshold Pivot Scheme (s = 3 share groups, tau = 2)
// from Sec. VI-C on delivery rate vs. deadline. The related work
// credits TPS with "alleviating the longer delay due to the use of
// onions"; the reproduction shows the fine print: the pivot is a
// single node, so the relay-to-pivot and pivot-to-destination hops are
// single-pair contact bottlenecks. TPS therefore only wins against
// long onion paths — short group-aggregated onion paths beat it.
func ablationTPS(e *scenario.Engine, sc *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	const n = 100
	root := rng.New(opt.Seed)
	g := contact.NewRandom(n, 1, 360, root.Split("graph"))
	deadlines := scenario.DeliveryDeadlines()
	maxT := deadlines[len(deadlines)-1]

	type tpsTrial struct {
		Onion3, Onion10, TPS obsPoint
		OnionTx, TPSTx       float64
	}
	trials, err := scenario.Trials(e, sc.ID+"/tps", opt.Runs, func(i int) (tpsTrial, error) {
		s := root.SplitN("run", i)
		src := contact.NodeID(s.IntN(n))
		dst := contact.NodeID(s.PickOther(n, int(src)))
		var pivot contact.NodeID
		for {
			pivot = contact.NodeID(s.IntN(n))
			if pivot != src && pivot != dst {
				break
			}
		}
		makeSets := func(k int, used map[contact.NodeID]bool) [][]contact.NodeID {
			sets := make([][]contact.NodeID, k)
			for gi := range sets {
				for len(sets[gi]) < 5 {
					v := contact.NodeID(s.IntN(n))
					if !used[v] {
						used[v] = true
						sets[gi] = append(sets[gi], v)
					}
				}
			}
			return sets
		}
		sets3 := makeSets(3, map[contact.NodeID]bool{src: true, dst: true, pivot: true})
		sets10 := makeSets(10, map[contact.NodeID]bool{src: true, dst: true})

		var out tpsTrial
		or3, err := routing.SampleOnion(g, routing.Params{Src: src, Dst: dst, Sets: sets3, Copies: 1}, maxT, s.Split("onion3"))
		if err != nil {
			return tpsTrial{}, err
		}
		out.Onion3 = obsPoint{or3.Delivered, or3.Time}
		out.OnionTx = float64(or3.Transmissions)

		or10, err := routing.SampleOnion(g, routing.Params{Src: src, Dst: dst, Sets: sets10, Copies: 1}, maxT, s.Split("onion10"))
		if err != nil {
			return tpsTrial{}, err
		}
		out.Onion10 = obsPoint{or10.Delivered, or10.Time}

		tp, err := routing.NewTPS(routing.TPSParams{
			Src: src, Dst: dst, Pivot: pivot, Sets: sets3, Threshold: 2,
		})
		if err != nil {
			return tpsTrial{}, err
		}
		sim.RunSynthetic(g, maxT, s.Split("tps"), tp)
		tr := tp.Result()
		out.TPS = obsPoint{tr.Delivered, tr.Time}
		out.TPSTx = float64(tr.Transmissions)
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}

	onion3ECDF, onion10ECDF, tpsECDF := stats.NewECDF(), stats.NewECDF(), stats.NewECDF()
	var onionTx, tpsTx stats.Accumulator
	for _, tt := range trials {
		observe(onion3ECDF, tt.Onion3.Delivered, tt.Onion3.T)
		onionTx.Add(tt.OnionTx)
		observe(onion10ECDF, tt.Onion10.Delivered, tt.Onion10.T)
		observe(tpsECDF, tt.TPS.Delivered, tt.TPS.T)
		tpsTx.Add(tt.TPSTx)
	}

	onion3 := stats.Series{Name: "Onion groups (K=3)"}
	onion10 := stats.Series{Name: "Onion groups (K=10)"}
	tps := stats.Series{Name: "TPS (s=3, tau=2)"}
	for _, t := range deadlines {
		onion3.Append(t, onion3ECDF.At(t), 0)
		onion10.Append(t, onion10ECDF.At(t), 0)
		tps.Append(t, tpsECDF.At(t), 0)
	}
	notes := []string{
		fmt.Sprintf("mean transmissions: onion K=3 %.1f, TPS %.1f (bound 2s+1 = 7)", onionTx.Mean(), tpsTx.Mean()),
	}
	return []stats.Series{onion3, onion10, tps}, notes, nil
}

// obsPoint is one simulated delivery observation awaiting in-order
// aggregation into an ECDF. Fields are exported so checkpointed trial
// results gob-encode.
type obsPoint struct {
	Delivered bool
	T         float64
}

func observe(e *stats.ECDF, delivered bool, t float64) {
	if delivered {
		e.Observe(t)
	} else {
		e.ObserveCensored()
	}
}

// ablationModelGap decomposes the analysis-vs-simulation delivery gap
// the paper observes in Figs. 5 and 10. Eq. 4's optimism has two
// sources: (a) the LAST hop sums contact rates over all g members of
// R_K although only one member holds the message — present even with
// homogeneous rates — and (b) averaging middle-hop rates over group
// members, which under heavy-tailed rates confuses 1/E[rate] with
// E[1/rate]. Sweeping the ICT spread while also plotting a corrected
// model (last hop averaged instead of summed) separates the two.
func ablationModelGap(e *scenario.Engine, sc *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	spreads := []float64{2, 30, 90, 180, 360, 720}
	paperS := stats.Series{Name: "Analysis (Eq. 4 as printed)"}
	corrS := stats.Series{Name: "Analysis (last hop averaged)"}
	simS := stats.Series{Name: "Simulation"}
	for mi, maxICT := range spreads {
		cfg := core.DefaultConfig()
		cfg.MaxICT = maxICT
		cfg.Seed = opt.Seed
		cfg.ContactFailure = opt.FaultRate
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, nil, err
		}
		// Deadline scaled to twice the corrected model's mean traversal
		// so every spread is compared at the same relative operating
		// point.
		type gapTrial struct {
			OK, Delivered bool
			Paper, Corr   float64
		}
		trials, err := scenario.Trials(e, fmt.Sprintf("%s/gap/ict%d", sc.ID, mi), opt.Runs, func(i int) (gapTrial, error) {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return gapTrial{}, nil
			}
			corrected := append([]float64(nil), trial.Rates...)
			lastGroup := trial.Sets[len(trial.Sets)-1]
			corrected[len(corrected)-1] /= float64(len(lastGroup))
			meanTraversal := 0.0
			for _, r := range corrected {
				meanTraversal += 1 / r
			}
			deadline := 2 * meanTraversal

			m, err := nw.ModelDelivery(trial, deadline)
			if err != nil {
				return gapTrial{}, err
			}
			mc, err := model.DeliveryRate(corrected, deadline)
			if err != nil {
				return gapTrial{}, err
			}
			res, err := nw.Route(trial, deadline, false, i)
			if err != nil {
				return gapTrial{}, err
			}
			return gapTrial{OK: true, Delivered: res.Delivered, Paper: m, Corr: mc}, nil
		})
		if err != nil {
			return nil, nil, err
		}
		var paperAcc, corrAcc stats.Accumulator
		delivered, total := 0, 0
		for _, gt := range trials {
			if !gt.OK {
				continue
			}
			paperAcc.Add(gt.Paper)
			corrAcc.Add(gt.Corr)
			if gt.Delivered {
				delivered++
			}
			total++
		}
		paperS.Append(maxICT, paperAcc.Mean(), paperAcc.CI95())
		corrS.Append(maxICT, corrAcc.Mean(), corrAcc.CI95())
		simS.Append(maxICT, float64(delivered)/float64(total), 0)
	}
	return []stats.Series{paperS, corrS, simS}, nil, nil
}
