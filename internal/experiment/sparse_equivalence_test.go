package experiment

import (
	"bytes"
	"testing"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/scenario"
)

// The sparse/dense equivalence suite closes the loop from the contact
// package's backend differential tests to the committed artifacts: the
// full figure registry is generated with the dense matrix (the
// backend every committed golden was produced on) and with the sparse
// adjacency forced on, and the figure JSON must be byte-identical.
// These tests flip the process-wide backend threshold, so they must
// not run in parallel with each other — each restores the default
// before returning.

func allSpecs() []scenario.Scenario {
	return append(FigureSpecs(), AblationSpecs()...)
}

// sparseEquivalenceOptions keeps the 24-spec sweep affordable while
// still driving every measure kind through GroupPathRates, the
// samplers, and the DES.
func sparseEquivalenceOptions(seed uint64, workers int) Options {
	return Options{Seed: seed, Runs: 12, SecurityRuns: 40, TraceRuns: 4, Workers: workers}
}

// TestGroupPathRatesSparseDenseBitIdentical checks the model-facing
// hot path at every registry spec's base configuration: per-trial
// Eq. 4 rate vectors must match bit for bit across backends.
func TestGroupPathRatesSparseDenseBitIdentical(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			for _, seed := range []uint64{1, 42} {
				cfg := spec.Base
				cfg.Seed = seed

				dnw, err := core.NewNetwork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				restore := contact.SetDenseNodeLimit(0)
				snw, err := core.NewNetwork(cfg)
				restore()
				if err != nil {
					t.Fatal(err)
				}
				if dnw.Graph().Sparse() {
					t.Fatal("reference network unexpectedly sparse")
				}
				if !snw.Graph().Sparse() {
					t.Fatal("forced-sparse network is dense")
				}

				for i := 0; i < 8; i++ {
					dt, derr := dnw.NewTrial(i)
					st, serr := snw.NewTrial(i)
					if (derr == nil) != (serr == nil) {
						t.Fatalf("seed %d trial %d: error divergence: dense %v sparse %v", seed, i, derr, serr)
					}
					if derr != nil {
						continue
					}
					if dt.Src != st.Src || dt.Dst != st.Dst {
						t.Fatalf("seed %d trial %d: endpoints diverged", seed, i)
					}
					if len(dt.Rates) != len(st.Rates) {
						t.Fatalf("seed %d trial %d: rate vector length %d vs %d", seed, i, len(dt.Rates), len(st.Rates))
					}
					for k := range dt.Rates {
						if dt.Rates[k] != st.Rates[k] {
							t.Fatalf("seed %d trial %d hop %d: dense %v sparse %v", seed, i, k, dt.Rates[k], st.Rates[k])
						}
					}
				}
			}
		})
	}
}

// TestSparseDenseByteIdenticalAcrossRegistry generates every figure
// and ablation in the registry under the dense backend (workers=1)
// and under the forced-sparse backend (workers 1 and 4), asserting
// byte-identical JSON. This is the acceptance gate for the backend
// switchover: no artifact may move by a single byte.
func TestSparseDenseByteIdenticalAcrossRegistry(t *testing.T) {
	seeds := []uint64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			for _, seed := range seeds {
				opt := sparseEquivalenceOptions(seed, 1)
				fig, err := Generate(spec.ID, opt)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := fig.JSON()
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					func() {
						restore := contact.SetDenseNodeLimit(0)
						defer restore()
						opt := sparseEquivalenceOptions(seed, workers)
						sfig, err := Generate(spec.ID, opt)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sfig.JSON()
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(ref, got) {
							t.Errorf("%s seed %d: sparse backend (workers=%d) JSON differs from dense reference (%d vs %d bytes)",
								spec.ID, seed, workers, len(got), len(ref))
						}
					}()
				}
			}
		})
	}
}

// TestRegistryCoversExpectedSpecCount pins the registry size the
// equivalence sweep relies on; growing the registry extends the sweep
// automatically, and this test just keeps the number honest.
func TestRegistryCoversExpectedSpecCount(t *testing.T) {
	if n := len(allSpecs()); n < 24 {
		t.Fatalf("registry has %d specs, expected at least 24", n)
	}
	seen := map[string]bool{}
	for _, s := range allSpecs() {
		if seen[s.ID] {
			t.Fatalf("duplicate spec id %q", s.ID)
		}
		seen[s.ID] = true
	}
}
