package experiment

import (
	"bytes"
	"runtime"
	"testing"
)

// equivalenceOptions keeps the worker-count sweep affordable: the
// figures are regenerated once per worker count per seed.
func equivalenceOptions(seed uint64, workers int) Options {
	return Options{Seed: seed, Runs: 40, SecurityRuns: 200, TraceRuns: 8, Workers: workers}
}

// TestEquivalenceAcrossWorkerCounts is the determinism contract of the
// parallel Monte Carlo harness: for a representative subset of
// generators — a random-graph delivery figure (Fig. 4), a security
// figure (Fig. 8), a trace-replay figure (Fig. 14), and the ablations
// exercising the remaining trial shapes — the JSON-marshaled Figure
// must be byte-identical for Workers in {1, 4, GOMAXPROCS}, across two
// different seeds.
func TestEquivalenceAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates figures several times")
	}
	gens := []struct {
		name string
		gen  Generator
	}{
		{"fig04", Fig04},
		{"fig08", Fig08},
		{"fig14", Fig14},
		{"fig11", Fig11},
		{"ablation-baselines", AblationBaselines},
		{"ablation-predecessor", AblationPredecessor},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []uint64{1, 42} {
				var reference []byte
				for _, w := range workerCounts {
					fig, err := g.gen(equivalenceOptions(seed, w))
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
					data, err := fig.JSON()
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
					if reference == nil {
						reference = data
						continue
					}
					if !bytes.Equal(reference, data) {
						t.Fatalf("seed %d: workers=%d output differs from workers=%d (%d vs %d bytes)",
							seed, w, workerCounts[0], len(data), len(reference))
					}
				}
			}
		})
	}
}

// TestEquivalenceSeedsDiffer guards the test above against vacuity: a
// harness that ignored the seed entirely would pass the byte-equality
// checks, so assert the two seeds actually produce different figures.
func TestEquivalenceSeedsDiffer(t *testing.T) {
	a, err := Fig04(equivalenceOptions(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig04(equivalenceOptions(42, 2))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jb) {
		t.Fatal("seeds 1 and 42 produced byte-identical figures; the equivalence test would be vacuous")
	}
}
