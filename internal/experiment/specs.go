package experiment

import (
	"repro/internal/core"
	"repro/internal/scenario"
)

// Axis value tables shared by several specs (Table II sweeps).
func oneToTen() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

// figureSpecs is the declarative table behind Figs. 4-19: every figure
// is a base config, one or two axes, and a measurement kind. The
// trace figures (14-19) run on the synthetic Cambridge (12 nodes,
// g=10) and Infocom 2005 (41 nodes, g=5) populations with K=3.
func figureSpecs() []scenario.Scenario {
	fracLabels := []string{"c/n=10%", "c/n=20%", "c/n=30%"}
	fracValues := []float64{0.1, 0.2, 0.3}

	cambridge := core.DefaultConfig()
	cambridge.Nodes, cambridge.GroupSize = 12, 10
	infocom := core.DefaultConfig()
	infocom.Nodes, infocom.GroupSize = 41, 5

	var infocomDeadlines []float64
	for t := 16.0; t <= 65536; t *= 2 {
		infocomDeadlines = append(infocomDeadlines, t)
	}

	return []scenario.Scenario{
		{
			ID: "fig04", Title: "Delivery rate w.r.t. deadline (group size)",
			XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "group size", Param: "GroupSize", Values: []float64{1, 5, 10}, LabelFormat: "g=%d"},
			X:       scenario.Axis{Name: "deadline", Param: scenario.ParamDeadline, Values: scenario.DeliveryDeadlines()},
			Measure: scenario.Measure{Kind: scenario.KindDeliveryCurve},
		},
		{
			ID: "fig05", Title: "Delivery rate w.r.t. deadline (number of onion routers)",
			XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "onion routers", Param: "Relays", Values: []float64{3, 5, 10}, LabelFormat: "%d onions"},
			X:       scenario.Axis{Name: "deadline", Param: scenario.ParamDeadline, Values: scenario.DeliveryDeadlines()},
			Measure: scenario.Measure{Kind: scenario.KindDeliveryCurve},
		},
		{
			ID: "fig06", Title: "Traceable rate w.r.t. compromised rate",
			XLabel: "Compromised rate (c/n)", YLabel: "Traceable rate",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "onion routers", Param: "Relays", Values: []float64{3, 5, 10}, LabelFormat: "%d onions"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindSecurityPoint, SeriesSaltStride: 100},
		},
		{
			ID: "fig07", Title: "Traceable rate w.r.t. number of onion relays",
			XLabel: "Number of onion relays (K)", YLabel: "Traceable rate",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: fracValues, Labels: fracLabels},
			X:       scenario.Axis{Name: "onion relays", Param: "Relays", Values: oneToTen()},
			Measure: scenario.Measure{Kind: scenario.KindSecurityPoint, SeriesSaltStride: 100},
		},
		{
			ID: "fig08", Title: "Path anonymity w.r.t. compromised rate (group size)",
			XLabel: "Compromised rate (c/n)", YLabel: "Path anonymity",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "group size", Param: "GroupSize", Values: []float64{1, 5, 10}, LabelFormat: "g=%d"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindAnonymity, SeriesSaltStride: 1000},
		},
		{
			ID: "fig09", Title: "Path anonymity w.r.t. group size",
			XLabel: "Group size (g)", YLabel: "Path anonymity",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: fracValues, Labels: fracLabels},
			X:       scenario.Axis{Name: "group size", Param: "GroupSize", Values: oneToTen()},
			Measure: scenario.Measure{Kind: scenario.KindAnonymity, SeriesSaltStride: 1000},
		},
		{
			ID: "fig10", Title: "Delivery rate w.r.t. deadline (number of copies, g=5)",
			XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1, 3, 5}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "deadline", Param: scenario.ParamDeadline, Values: scenario.DeliveryDeadlines()},
			Measure: scenario.Measure{Kind: scenario.KindDeliveryCurve},
		},
		{
			ID: "fig11", Title: "Message transmission cost w.r.t. number of copies",
			XLabel: "Number of copies (L)", YLabel: "Number of transmissions",
			Base:    core.DefaultConfig(),
			X:       scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1, 2, 3, 4, 5}},
			Measure: scenario.Measure{Kind: scenario.KindCost, Deadline: 1800},
		},
		{
			ID: "fig12", Title: "Path anonymity w.r.t. compromised rate (copies, g=5)",
			XLabel: "Compromised rate (c/n)", YLabel: "Path anonymity",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1, 3, 5}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindAnonymity, SeriesSaltStride: 10000},
		},
		{
			ID: "fig13", Title: "Path anonymity w.r.t. group size (copies, c/n=10%)",
			XLabel: "Group size (g)", YLabel: "Path anonymity",
			Base:    core.DefaultConfig(),
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1, 3}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "group size", Param: "GroupSize", Values: oneToTen()},
			Measure: scenario.Measure{Kind: scenario.KindAnonymity, Frac: 0.1, SeriesSaltStride: 100000},
		},
		{
			ID: "fig14", Title: "Delivery rate w.r.t. deadline (Cambridge trace)",
			XLabel: "Deadline (seconds)", YLabel: "Delivery rate",
			Notes:  []string{"synthetic Cambridge-like trace (see DESIGN.md substitution table)"},
			Base:   cambridge,
			Series: scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1}, LabelFormat: "L=%d"},
			X: scenario.Axis{Name: "deadline", Param: scenario.ParamDeadline,
				Values: []float64{180, 360, 540, 720, 900, 1080, 1260, 1440, 1620, 1800}},
			Measure: scenario.Measure{Kind: scenario.KindTraceReplay, Trace: scenario.TraceCambridge},
		},
		{
			ID: "fig15", Title: "Traceable rate w.r.t. compromised rate (Cambridge trace)",
			XLabel: "Compromised rate (c/n)", YLabel: "Traceable rate",
			Base:    cambridge,
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindSecurityPoint, Trace: scenario.TraceCambridge},
		},
		{
			ID: "fig16", Title: "Path anonymity w.r.t. compromised rate (Cambridge trace)",
			XLabel: "Compromised rate (c/n)", YLabel: "Path anonymity",
			Notes:   []string{"exact entropy ratio (Eqs. 14/17) used: Eq. 19's n >> K premise fails at n=12"},
			Base:    cambridge,
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindAnonymity, Trace: scenario.TraceCambridge},
		},
		{
			ID: "fig17", Title: "Delivery rate w.r.t. deadline (Infocom 2005 trace)",
			XLabel: "Deadline (seconds)", YLabel: "Delivery rate",
			LogX:    true,
			Notes:   []string{"synthetic Infocom-like trace; the plateau spans the silent session breaks"},
			Base:    infocom,
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1, 3, 5}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "deadline", Param: scenario.ParamDeadline, Values: infocomDeadlines},
			Measure: scenario.Measure{Kind: scenario.KindTraceReplay, Trace: scenario.TraceInfocom},
		},
		{
			ID: "fig18", Title: "Traceable rate w.r.t. compromised rate (Infocom 2005 trace)",
			XLabel: "Compromised rate (c/n)", YLabel: "Traceable rate",
			Base:    infocom,
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindSecurityPoint, Trace: scenario.TraceInfocom},
		},
		{
			ID: "fig19", Title: "Path anonymity w.r.t. compromised rate (Infocom 2005 trace)",
			XLabel: "Compromised rate (c/n)", YLabel: "Path anonymity",
			Base:    infocom,
			Series:  scenario.Axis{Name: "copies", Param: "Copies", Values: []float64{1, 3, 5}, LabelFormat: "L=%d"},
			X:       scenario.Axis{Name: "compromised rate", Param: scenario.ParamFrac, Values: scenario.CompromisedFractions()},
			Measure: scenario.Measure{Kind: scenario.KindAnonymity, Trace: scenario.TraceInfocom},
		},
	}
}

// ablationSpecs is the declarative table behind the ablations
// (DESIGN.md Sec. 5). ablation-spray is a plain delivery-curve spec;
// the rest dispatch to bespoke generators registered as scenario
// customs (this package's init functions), with IDs, titles, labels
// and static notes owned by the table.
func ablationSpecs() []scenario.Scenario {
	sprayBase := core.DefaultConfig()
	sprayBase.Copies = 3
	return []scenario.Scenario{
		{
			ID: "ablation-baselines", Title: "The price of anonymity: onion routing vs. non-anonymous DTN protocols",
			XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
			Notes:   []string{"engine baselines compared on identical contact realizations (paired)"},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-baselines"},
		},
		{
			ID: "ablation-buffers", Title: "Delivery under buffer pressure (full-crypto runtime, L=3 spray)",
			XLabel: "Per-node buffer limit (onions; 16 = unlimited)", YLabel: "Delivery rate",
			Notes:   []string{"the paper's models assume infinite buffers (Sec. III-A); this shows what that assumption hides"},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-buffers"},
		},
		{
			ID: "ablation-faults", Title: "Delivery, cost and anonymity vs. injected fault rate",
			XLabel: "Fault rate p (per contact / per hand-off)", YLabel: "Delivery rate (cost and anonymity noted)",
			Notes: []string{
				"every corrupted frame was rejected at the CRC/AEAD layer: delivery counts contain authenticated bundles only",
				"cost series is in transmissions (right-hand scale when plotted); anonymity is flat because faults do not change the anonymity set at fixed c/n",
			},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-faults"},
		},
		{
			ID: "ablation-predecessor", Title: "Predecessor attack: source identification vs. observed messages (c/n=20%)",
			XLabel: "Messages observed from the same source", YLabel: "P[adversary identifies the source]",
			Notes:   []string{"spray mode dilutes the attack: sprayed carriers appear as predecessors alongside the source"},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-predecessor"},
		},
		{
			ID: "ablation-spray", Title: "Multi-copy variants: Algorithm 2 strict vs. source spray-and-wait (L=3)",
			XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
			Base: sprayBase,
			Series: scenario.Axis{Name: "variant", Param: "Spray", Values: []float64{0, 1},
				Labels: []string{"Strict (Alg. 2)", "Spray (Sec. V variant)"}},
			X: scenario.Axis{Name: "deadline", Param: scenario.ParamDeadline, Values: scenario.DeliveryDeadlines()},
			Measure: scenario.Measure{Kind: scenario.KindDeliveryCurve,
				RunToCompletion: true, SimOnly: true, TxNotes: true},
		},
		{
			ID: "ablation-traceable", Title: "Traceable-rate model reconstructions (K=3)",
			XLabel: "Compromised rate (c/n)", YLabel: "Traceable rate",
			Notes:   []string{"the exact expectation is the headline model; the paper's truncation undershoots as c/n grows"},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-traceable"},
		},
		{
			ID: "ablation-tps", Title: "Onion groups vs. Threshold Pivot Scheme",
			XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
			Notes: []string{
				"TPS's pivot is a single-pair contact bottleneck: it loses to short group-aggregated onion paths and lands in the league of long ones",
				"TPS reveals the destination to the pivot (Sec. VI-C); onion groups never do",
			},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-tps"},
		},
		{
			ID: "ablation-model-gap", Title: "Decomposing the opportunistic onion path model's optimism",
			XLabel: "Max mean ICT (minutes; min fixed at 1)", YLabel: "Delivery rate at T = 2 x mean traversal",
			Notes: []string{
				"Eq. 4 as printed sums last-hop rates over all g members of R_K; only one member holds the message",
				"averaging the last hop closes most of the gap at homogeneous rates; the residual right-side gap is rate heterogeneity (E[1/rate] > 1/E[rate])",
			},
			Base:    core.DefaultConfig(),
			Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "ablation-model-gap"},
		},
	}
}

// Named generators: each figure and ablation keeps its exported
// one-call entry point, now a thin delegate into the spec table.

// Fig04 — delivery rate vs. deadline for group sizes g in {1, 5, 10}
// (K = 3, L = 1, n = 100).
func Fig04(opt Options) (*Figure, error) { return Generate("fig04", opt) }

// Fig05 — delivery rate vs. deadline for K in {3, 5, 10} onion
// routers (g = 5, L = 1).
func Fig05(opt Options) (*Figure, error) { return Generate("fig05", opt) }

// Fig06 — traceable rate vs. compromised rate for K in {3, 5, 10}.
func Fig06(opt Options) (*Figure, error) { return Generate("fig06", opt) }

// Fig07 — traceable rate vs. number of onion relays for c/n in
// {10%, 20%, 30%}.
func Fig07(opt Options) (*Figure, error) { return Generate("fig07", opt) }

// Fig08 — path anonymity vs. compromised rate for g in {1, 5, 10}
// (L = 1).
func Fig08(opt Options) (*Figure, error) { return Generate("fig08", opt) }

// Fig09 — path anonymity vs. group size for c/n in {10%, 20%, 30%}
// (L = 1).
func Fig09(opt Options) (*Figure, error) { return Generate("fig09", opt) }

// Fig10 — delivery rate vs. deadline for L in {1, 3, 5} copies
// (g = 5, K = 3, spray mode).
func Fig10(opt Options) (*Figure, error) { return Generate("fig10", opt) }

// Fig11 — message transmissions vs. number of copies: non-anonymous
// baseline 2L, the analysis bound 2L-1+KL, and the simulated protocol.
func Fig11(opt Options) (*Figure, error) { return Generate("fig11", opt) }

// Fig12 — path anonymity vs. compromised rate for L in {1, 3, 5}
// (g = 5).
func Fig12(opt Options) (*Figure, error) { return Generate("fig12", opt) }

// Fig13 — path anonymity vs. group size for L in {1, 3} (c/n = 10%).
func Fig13(opt Options) (*Figure, error) { return Generate("fig13", opt) }

// Fig14 — delivery rate vs. deadline on the Cambridge trace (L = 1,
// K = 3, g = 10, 12 nodes).
func Fig14(opt Options) (*Figure, error) { return Generate("fig14", opt) }

// Fig15 — traceable rate vs. compromised rate on the Cambridge trace
// (K = 3, 12 nodes).
func Fig15(opt Options) (*Figure, error) { return Generate("fig15", opt) }

// Fig16 — path anonymity vs. compromised rate on the Cambridge trace
// (L = 1, g = 10, 12 nodes).
func Fig16(opt Options) (*Figure, error) { return Generate("fig16", opt) }

// Fig17 — delivery rate vs. deadline on the Infocom 2005 trace
// (L in {1, 3, 5}, K = 3, g = 5, 41 nodes; log-scale x-axis).
func Fig17(opt Options) (*Figure, error) { return Generate("fig17", opt) }

// Fig18 — traceable rate vs. compromised rate on the Infocom trace
// (K = 3, 41 nodes).
func Fig18(opt Options) (*Figure, error) { return Generate("fig18", opt) }

// Fig19 — path anonymity vs. compromised rate on the Infocom trace
// (L in {1, 3, 5}, g = 5, 41 nodes).
func Fig19(opt Options) (*Figure, error) { return Generate("fig19", opt) }

// AblationBaselines — the price of anonymity: onion routing against
// the non-anonymous DTN baselines of Sec. VI-A.
func AblationBaselines(opt Options) (*Figure, error) { return Generate("ablation-baselines", opt) }

// AblationBuffers — delivery under storage pressure in the full-crypto
// runtime, with and without anti-packets.
func AblationBuffers(opt Options) (*Figure, error) { return Generate("ablation-buffers", opt) }

// AblationFaults — every layer's view of the injected-fault sweep.
func AblationFaults(opt Options) (*Figure, error) { return Generate("ablation-faults", opt) }

// AblationPredecessor — longitudinal predecessor attack on the
// abstract protocol.
func AblationPredecessor(opt Options) (*Figure, error) { return Generate("ablation-predecessor", opt) }

// AblationSpray — Algorithm 2 strict vs. the paper's source
// spray-and-wait variant at L = 3.
func AblationSpray(opt Options) (*Figure, error) { return Generate("ablation-spray", opt) }

// AblationTraceableModel — the two reconstructions of the
// traceable-rate analysis against a Monte-Carlo reference.
func AblationTraceableModel(opt Options) (*Figure, error) { return Generate("ablation-traceable", opt) }

// AblationTPS — onion groups vs. the Threshold Pivot Scheme of
// Sec. VI-C.
func AblationTPS(opt Options) (*Figure, error) { return Generate("ablation-tps", opt) }

// AblationModelGap — decomposing Eq. 4's optimism into last-hop
// summation and rate heterogeneity.
func AblationModelGap(opt Options) (*Figure, error) { return Generate("ablation-model-gap", opt) }
