// Package experiment reproduces every figure of the paper's evaluation
// (Sec. V, Figs. 4-19) plus the repository's own ablations. Each
// artifact is one declarative scenario.Scenario spec — the tables in
// specs.go — evaluated by the shared scenario.Engine; cmd/figures
// renders the results as CSV and ASCII plots, and the repository
// root's bench_test.go exposes one benchmark per figure.
package experiment

import (
	"fmt"
	"sort"

	"repro/internal/scenario"
)

// Options tunes experiment effort (alias of scenario.Options).
// Defaults reproduce the paper's shapes in seconds per figure; raise
// the run counts for smoother curves.
type Options = scenario.Options

// Figure is one reproduced evaluation artifact (alias of
// scenario.Figure).
type Figure = scenario.Figure

// DefaultOptions returns a balanced effort level.
func DefaultOptions() Options {
	return Options{Seed: 1, Runs: 400, SecurityRuns: 4000, TraceRuns: 60}
}

// Generator builds one figure.
type Generator func(Options) (*Figure, error)

// FigureSpecs returns the declarative specs behind Figs. 4-19, in ID
// order. Callers get fresh copies and may mutate them freely.
func FigureSpecs() []scenario.Scenario { return figureSpecs() }

// AblationSpecs returns the declarative specs behind the ablations, in
// ID order. Callers get fresh copies and may mutate them freely.
func AblationSpecs() []scenario.Scenario { return ablationSpecs() }

// registryFrom wraps each spec in a Generator that evaluates it on a
// fresh engine.
func registryFrom(specs []scenario.Scenario) (map[string]Generator, []string) {
	reg := make(map[string]Generator, len(specs))
	ids := make([]string, 0, len(specs))
	for i := range specs {
		spec := specs[i]
		reg[spec.ID] = func(opt Options) (*Figure, error) {
			return scenario.NewEngine(opt).Run(&spec)
		}
		ids = append(ids, spec.ID)
	}
	sort.Strings(ids)
	return reg, ids
}

// Registry returns the figure generators keyed by ID, plus the ordered
// ID list.
func Registry() (map[string]Generator, []string) {
	return registryFrom(figureSpecs())
}

// AblationRegistry returns the ablation generators — experiments beyond
// the paper's figures that probe the reproduction's own design
// decisions (DESIGN.md Sec. 5) — keyed by ID, plus the ordered ID list.
func AblationRegistry() (map[string]Generator, []string) {
	return registryFrom(ablationSpecs())
}

// Generate evaluates the identified figure or ablation spec.
func Generate(id string, opt Options) (*Figure, error) {
	for _, specs := range [][]scenario.Scenario{figureSpecs(), ablationSpecs()} {
		for i := range specs {
			if specs[i].ID == id {
				return scenario.NewEngine(opt).Run(&specs[i])
			}
		}
	}
	return nil, fmt.Errorf("experiment: unknown figure %q", id)
}
