package experiment

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// faultOptions keeps the ablation-faults sweep affordable in tests:
// 25 abstract trials per rate and the minimum 20-message runtime
// workload per (rate, rep) cell.
func faultOptions(seed uint64, workers int) Options {
	return Options{Seed: seed, Runs: 25, SecurityRuns: 50, TraceRuns: 4, Workers: workers}
}

// TestFaultScheduleWorkerInvariance extends the PR 1 determinism
// contract to the fault-injection pipeline: the ablation-faults figure
// — whose runtime series injects truncations, corruptions, duplicates
// and crashes into real encrypted hand-offs — must marshal to
// byte-identical JSON for Workers in {1, 4, GOMAXPROCS} at two seeds.
// Fault schedules are drawn from per-cell rng substreams, never from
// shared state, so the worker count cannot perturb them.
func TestFaultScheduleWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the figure several times")
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, seed := range []uint64{1, 42} {
		var reference []byte
		for _, w := range workerCounts {
			fig, err := AblationFaults(faultOptions(seed, w))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			data, err := fig.JSON()
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if reference == nil {
				reference = data
				continue
			}
			if !bytes.Equal(reference, data) {
				t.Fatalf("seed %d: workers=%d output differs from workers=%d (%d vs %d bytes)",
					seed, w, workerCounts[0], len(data), len(reference))
			}
		}
	}
}

// TestFaultScheduleSeedsDiffer guards the invariance test against
// vacuity: distinct seeds must produce distinct fault realizations and
// therefore distinct figures.
func TestFaultScheduleSeedsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the figure twice")
	}
	a, err := AblationFaults(faultOptions(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AblationFaults(faultOptions(42, 2))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jb) {
		t.Fatal("seeds 1 and 42 produced byte-identical ablation-faults figures; the invariance test would be vacuous")
	}
}

// TestFaultAblationShapes checks the physics of the figure on one cheap
// generation: delivery falls monotonically (within noise) as the fault
// rate rises in both the thinned analysis and the abstract simulation,
// the ideal-analysis and anonymity series stay flat, and the runtime
// series actually injected faults (non-vacuity).
func TestFaultAblationShapes(t *testing.T) {
	fig, err := AblationFaults(faultOptions(7, runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, s := range fig.Series {
		byName[s.Name] = i
	}
	get := func(name string) []float64 {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("series %q missing (have %v)", name, byName)
		}
		return fig.Series[i].Y
	}
	ideal := get("Analysis (Eq. 4-7, ideal contacts)")
	thinned := get("Analysis (thinned to λ(1-p))")
	anon := get("Path anonymity (model, c/n=10%)")
	for i := 1; i < len(ideal); i++ {
		if ideal[i] != ideal[0] {
			t.Errorf("ideal analysis not flat: y[%d]=%v vs y[0]=%v", i, ideal[i], ideal[0])
		}
		if anon[i] != anon[0] {
			t.Errorf("anonymity not flat: y[%d]=%v vs y[0]=%v", i, anon[i], anon[0])
		}
	}
	if thinned[0] != ideal[0] {
		t.Errorf("thinned analysis at rate 0 is %v, want the ideal value %v", thinned[0], ideal[0])
	}
	// Strict monotonicity holds for the analytical series (no noise).
	for i := 1; i < len(thinned); i++ {
		if thinned[i] >= thinned[i-1] {
			t.Errorf("thinned analysis not strictly decreasing at index %d: %v -> %v", i, thinned[i-1], thinned[i])
		}
	}
	// The endpoints of the noisy simulated series must fall.
	sim := get("Simulation (abstract, lossy contacts)")
	rt := get("Runtime (full crypto, uniform faults)")
	last := len(sim) - 1
	if sim[last] >= sim[0] {
		t.Errorf("abstract simulation did not degrade: rate 0 %.3f vs max rate %.3f", sim[0], sim[last])
	}
	if rt[last] >= rt[0] {
		t.Errorf("runtime did not degrade: rate 0 %.3f vs max rate %.3f", rt[0], rt[last])
	}
	// Non-vacuity: the notes must report injected faults.
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "truncations") && !strings.Contains(n, " 0 truncations") {
			found = true
		}
	}
	if !found {
		t.Errorf("no injected-faults note in %v", fig.Notes)
	}
}
