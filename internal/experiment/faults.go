package experiment

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	scenario.RegisterCustom("ablation-faults", ablationFaults)
}

// ablationFaults sweeps the fault-injection rate and plots what each
// layer of the stack reports against the paper's unfaulted analysis
// (Eqs. 4–7). Four delivery views share the x-axis:
//
//   - the ideal analysis (flat — the paper assumes lossless contacts);
//   - the thinned analysis, every pair rate scaled to λ(1−p) (exact by
//     Poisson thinning, see core.ModelDeliveryLossy);
//   - the abstract simulation with per-contact failure probability p;
//   - the full-crypto runtime under fault.Uniform(p): truncated
//     hand-offs, corrupted frames, duplicate redelivery and node churn
//     all at once, with in-contact retransmission and custody re-offer
//     doing the repairing.
//
// Two more series complete the picture: the abstract simulation's mean
// transmission cost (repairs are not free) and the model path anonymity
// at c/n = 10%, which is flat — faults change availability, not the
// anonymity set at a fixed compromised fraction.
//
// The sweep is internal; opt.FaultRate (the knob that applies a single
// rate to the standard figures) is deliberately ignored here. At rate 0
// every series reproduces the unfaulted pipeline byte-for-byte.
func ablationFaults(e *scenario.Engine, sc *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	const deadline = 600.0 // minutes

	ideal := stats.Series{Name: "Analysis (Eq. 4-7, ideal contacts)"}
	thinned := stats.Series{Name: "Analysis (thinned to λ(1-p))"}
	abstract := stats.Series{Name: "Simulation (abstract, lossy contacts)"}
	cost := stats.Series{Name: "Simulation cost (mean transmissions)"}
	runtime := stats.Series{Name: "Runtime (full crypto, uniform faults)"}
	anon := stats.Series{Name: "Path anonymity (model, c/n=10%)"}

	// Abstract layer: one environment per rate, same seed, so the
	// contact graph, groups and trial draws pair exactly across rates.
	type abstractTrial struct {
		Delivered       bool
		Tx              float64
		Ideal, ThinnedP float64
	}
	var idealMean float64
	var anonVal float64
	for ri, rate := range rates {
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.ContactFailure = rate
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, nil, err
		}
		trials, err := scenario.Trials(e, fmt.Sprintf("%s/abstract/r%d", sc.ID, ri), opt.Runs, func(i int) (abstractTrial, error) {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return abstractTrial{}, err
			}
			res, err := nw.Route(trial, deadline, false, i)
			if err != nil {
				return abstractTrial{}, err
			}
			at := abstractTrial{Delivered: res.Delivered, Tx: float64(res.Transmissions)}
			if at.Ideal, err = nw.ModelDelivery(trial, deadline); err != nil {
				return abstractTrial{}, err
			}
			if at.ThinnedP, err = nw.ModelDeliveryLossy(trial, deadline); err != nil {
				return abstractTrial{}, err
			}
			return at, nil
		})
		if err != nil {
			return nil, nil, err
		}
		var delAcc, txAcc, idealAcc, thinAcc stats.Accumulator
		for _, at := range trials {
			if at.Delivered {
				delAcc.Add(1)
			} else {
				delAcc.Add(0)
			}
			txAcc.Add(at.Tx)
			idealAcc.Add(at.Ideal)
			thinAcc.Add(at.ThinnedP)
		}
		if ri == 0 {
			// The ideal analysis and the anonymity metric do not depend
			// on the fault rate; evaluate once and plot flat.
			idealMean = idealAcc.Mean()
			anonVal = nw.ModelPathAnonymity(0.1)
		}
		ideal.Append(rate, idealMean, 0)
		thinned.Append(rate, thinAcc.Mean(), thinAcc.CI95())
		abstract.Append(rate, delAcc.Mean(), delAcc.CI95())
		cost.Append(rate, txAcc.Mean(), txAcc.CI95())
		anon.Append(rate, anonVal, 0)
	}

	// Runtime layer: real encrypted bundles over internal/node with the
	// uniform fault mix. Each (rate, rep) cell is an independent
	// deterministic run; cells execute concurrently via MapTrials and
	// aggregate in cell order, so output is worker-count invariant.
	const (
		rtNodes = 40
		rtReps  = 2
	)
	messages := opt.Runs / 5
	if messages < 20 {
		messages = 20
	}
	type runtimeCell struct {
		Rate  float64
		Stats node.Stats
	}
	cells, err := scenario.Trials(e, sc.ID+"/runtime", len(rates)*rtReps, func(j int) (runtimeCell, error) {
		rate := rates[j/rtReps]
		rep := uint64(j % rtReps)
		nw, err := node.NewNetwork(node.Config{
			Nodes:     rtNodes,
			GroupSize: 5,
			Seed:      opt.Seed + rep,
			Spray:     true,
			Faults:    fault.Uniform(rate),
		})
		if err != nil {
			return runtimeCell{}, err
		}
		g := contact.NewRandom(rtNodes, 1, 30, rng.New(opt.Seed+rep+101))
		res, err := workload.Run(nw, g, workload.Spec{
			Messages:    messages,
			ArrivalRate: 1,
			PayloadSize: 128,
			Relays:      3,
			Copies:      3,
			ExpiryAfter: 600,
			Seed:        opt.Seed + rep + 7,
		}, float64(messages)+1200)
		if err != nil {
			return runtimeCell{}, fmt.Errorf("experiment: faults (rate=%v rep=%d): %w", rate, rep, err)
		}
		return runtimeCell{Rate: res.DeliveryRate, Stats: res.Totals}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var injected node.Stats
	for ri, rate := range rates {
		var acc stats.Accumulator
		for rep := 0; rep < rtReps; rep++ {
			c := cells[ri*rtReps+rep]
			acc.Add(c.Rate)
			injected.Truncated += c.Stats.Truncated
			injected.Corrupted += c.Stats.Corrupted
			injected.Retried += c.Stats.Retried
			injected.Duplicates += c.Stats.Duplicates
			injected.Crashes += c.Stats.Crashes
			injected.CrashDropped += c.Stats.CrashDropped
		}
		runtime.Append(rate, acc.Mean(), acc.CI95())
	}

	notes := []string{
		fmt.Sprintf("%d abstract trials per rate, 10h deadline; runtime: %d messages x %d reps on %d nodes per rate",
			opt.Runs, messages, rtReps, rtNodes),
		fmt.Sprintf("runtime faults injected across the sweep: %d truncations (%d retransmits), %d corruptions, %d duplicates, %d crashes (%d custody onions dropped)",
			injected.Truncated, injected.Retried, injected.Corrupted, injected.Duplicates, injected.Crashes, injected.CrashDropped),
	}
	return []stats.Series{ideal, thinned, abstract, cost, runtime, anon}, notes, nil
}
