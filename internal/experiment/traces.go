package experiment

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Trace-figure parameters (Sec. V-D/E): Cambridge uses K=3, g=10,
// L=1; Infocom uses K=3, g=5, L in {1,3,5}.
const (
	cambridgeGroupSize = 10
	infocomGroupSize   = 5
	traceRelays        = 3
)

func cambridgeNetwork(opt Options) (*core.TraceNetwork, error) {
	tr, err := trace.GenerateCambridge(rng.New(opt.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiment: generate cambridge: %w", err)
	}
	return core.NewTraceNetwork(tr, opt.Seed+1)
}

func infocomNetwork(opt Options) (*core.TraceNetwork, error) {
	tr, err := trace.GenerateInfocom(rng.New(opt.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiment: generate infocom: %w", err)
	}
	return core.NewTraceNetwork(tr, opt.Seed+1)
}

// traceTrialOutcome is one replayed trace message: the simulated delay
// plus the analytical delivery rate per deadline (modelOK is false
// where the fitted path had a zero-rate hop and the model could not be
// evaluated).
type traceTrialOutcome struct {
	delivered bool
	delay     float64
	model     []float64
	modelOK   []bool
}

// traceDeliveryCurves builds one Analysis + Simulation pair per copy
// count by replaying the trace. Deadlines are in seconds. Replays run
// concurrently on opt.Workers workers and aggregate in trial order.
func traceDeliveryCurves(opt Options, tn *core.TraceNetwork, g int, copyCounts []int, deadlines []float64) ([]stats.Series, []string, error) {
	var series []stats.Series
	var notes []string
	maxT := deadlines[len(deadlines)-1]
	for _, l := range copyCounts {
		trials, err := MapTrials(opt.Workers, opt.TraceRuns, func(i int) (traceTrialOutcome, error) {
			trial, err := tn.NewTrial(l*1000000+i, g, traceRelays)
			if err != nil {
				return traceTrialOutcome{}, err
			}
			res, err := tn.RouteLossy(trial, maxT, l, true, false, opt.FaultRate, l*1000000+i)
			if err != nil {
				return traceTrialOutcome{}, err
			}
			out := traceTrialOutcome{
				delivered: res.Delivered,
				delay:     res.Time - trial.Start,
				model:     make([]float64, len(deadlines)),
				modelOK:   make([]bool, len(deadlines)),
			}
			for d, t := range deadlines {
				m, ok, err := tn.ModelDelivery(trial, t, l)
				if err != nil {
					return traceTrialOutcome{}, err
				}
				out.model[d], out.modelOK[d] = m, ok
			}
			return out, nil
		})
		if err != nil {
			return nil, nil, err
		}
		ecdf := stats.NewECDF()
		modelAcc := make([]stats.Accumulator, len(deadlines))
		modelSkipped := 0
		for _, tt := range trials {
			if tt.delivered {
				ecdf.Observe(tt.delay)
			} else {
				ecdf.ObserveCensored()
			}
			for d := range deadlines {
				if !tt.modelOK[d] {
					if d == 0 {
						modelSkipped++
					}
					continue
				}
				modelAcc[d].Add(tt.model[d])
			}
		}
		if modelSkipped > 0 {
			notes = append(notes, fmt.Sprintf(
				"L=%d: %d/%d trials excluded from the analysis curve (a fitted hop rate was zero)",
				l, modelSkipped, opt.TraceRuns))
		}
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: L=%d", l)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: L=%d", l)}
		n := float64(ecdf.N())
		for d, t := range deadlines {
			analysis.Append(t, modelAcc[d].Mean(), modelAcc[d].CI95())
			p := ecdf.At(t)
			ci := 0.0
			if n > 0 {
				ci = 1.96 * math.Sqrt(p*(1-p)/n)
			}
			simulation.Append(t, p, ci)
		}
		series = append(series, analysis, simulation)
	}
	return series, notes, nil
}

// traceSecuritySeries measures a security metric in fast mode for a
// trace population of n nodes (the metrics are contact-graph
// independent, Sec. V-D).
func traceSecuritySeries(name string, n, g, copies int, fracs []float64, runs, workers int, seed uint64,
	metric func(a *adversary.Adversary, senders []contact.NodeID, cO int) float64) (stats.Series, error) {
	root := rng.New(seed)
	out := stats.Series{Name: name}
	for fi, frac := range fracs {
		vals, err := MapTrials(workers, runs, func(i int) (float64, error) {
			s := root.SplitN("trial", fi*1000000+i)
			adv, err := adversary.RandomFraction(n, frac, s.Split("adv"))
			if err != nil {
				return 0, err
			}
			senders, err := adversary.SampleSenders(n, traceRelays, s.Split("senders"))
			if err != nil {
				return 0, err
			}
			positions, err := adversary.SamplePositions(n, traceRelays, copies, g, copies > 1, s.Split("positions"))
			if err != nil {
				return 0, err
			}
			return metric(adv, senders, adv.PositionsCompromised(positions)), nil
		})
		if err != nil {
			return stats.Series{}, err
		}
		var acc stats.Accumulator
		for _, v := range vals {
			acc.Add(v)
		}
		out.Append(frac, acc.Mean(), acc.CI95())
	}
	return out, nil
}

// Fig14 — delivery rate vs. deadline on the Cambridge trace (L = 1,
// K = 3, g = 10, 12 nodes).
func Fig14(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	tn, err := cambridgeNetwork(opt)
	if err != nil {
		return nil, err
	}
	deadlines := []float64{180, 360, 540, 720, 900, 1080, 1260, 1440, 1620, 1800}
	series, notes, err := traceDeliveryCurves(opt, tn, cambridgeGroupSize, []int{1}, deadlines)
	if err != nil {
		return nil, err
	}
	notes = append(notes, "synthetic Cambridge-like trace (see DESIGN.md substitution table)")
	return &Figure{
		ID: "fig14", Title: "Delivery rate w.r.t. deadline (Cambridge trace)",
		XLabel: "Deadline (seconds)", YLabel: "Delivery rate",
		Series: series, Notes: notes,
	}, nil
}

// Fig17 — delivery rate vs. deadline on the Infocom 2005 trace
// (L in {1, 3, 5}, K = 3, g = 5, 41 nodes; log-scale x-axis).
func Fig17(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	tn, err := infocomNetwork(opt)
	if err != nil {
		return nil, err
	}
	var deadlines []float64
	for t := 16.0; t <= 65536; t *= 2 {
		deadlines = append(deadlines, t)
	}
	series, notes, err := traceDeliveryCurves(opt, tn, infocomGroupSize, []int{1, 3, 5}, deadlines)
	if err != nil {
		return nil, err
	}
	notes = append(notes, "synthetic Infocom-like trace; the plateau spans the silent session breaks")
	return &Figure{
		ID: "fig17", Title: "Delivery rate w.r.t. deadline (Infocom 2005 trace)",
		XLabel: "Deadline (seconds)", YLabel: "Delivery rate",
		LogX:   true,
		Series: series, Notes: notes,
	}, nil
}

// traceSecurityFigure builds the shared structure of Figs. 15/16/18/19.
func traceSecurityFigure(opt Options, id, title, metricName string, n, g int, copyCounts []int,
	analysisFn func(frac float64, copies int) float64,
	metricFn func(a *adversary.Adversary, senders []contact.NodeID, cO int) float64) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	fracs := compromisedFractions()
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Compromised rate (c/n)", YLabel: metricName,
	}
	for _, l := range copyCounts {
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: L=%d", l)}
		for _, frac := range fracs {
			analysis.Append(frac, analysisFn(frac, l), 0)
		}
		simulation, err := traceSecuritySeries(
			fmt.Sprintf("Simulation: L=%d", l), n, g, l, fracs, opt.SecurityRuns, opt.Workers,
			opt.Seed+uint64(l), metricFn)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}

// Fig15 — traceable rate vs. compromised rate on the Cambridge trace
// (K = 3, 12 nodes).
func Fig15(opt Options) (*Figure, error) {
	const n = 12
	return traceSecurityFigure(opt, "fig15",
		"Traceable rate w.r.t. compromised rate (Cambridge trace)",
		"Traceable rate", n, cambridgeGroupSize, []int{1},
		func(frac float64, _ int) float64 {
			return model.TraceableRate(traceRelays+1, frac)
		},
		func(a *adversary.Adversary, senders []contact.NodeID, _ int) float64 {
			return model.TraceableRateOfPath(a.SenderBits(senders))
		})
}

// Fig16 — path anonymity vs. compromised rate on the Cambridge trace
// (L = 1, g = 10, 12 nodes).
func Fig16(opt Options) (*Figure, error) {
	const n = 12
	// Small-n regime: the n >> K premise of the Stirling form (Eq. 19)
	// fails at n=12, g=10, so the exact entropy ratio (Eqs. 14/17) is
	// used on both the analysis and the simulation side.
	fig, err := traceSecurityFigure(opt, "fig16",
		"Path anonymity w.r.t. compromised rate (Cambridge trace)",
		"Path anonymity", n, cambridgeGroupSize, []int{1},
		func(frac float64, l int) float64 {
			return model.PathAnonymityMultiCopyExact(n, traceRelays+1, cambridgeGroupSize, frac, l)
		},
		func(a *adversary.Adversary, _ []contact.NodeID, cO int) float64 {
			return model.PathAnonymityExact(n, traceRelays+1, cambridgeGroupSize, float64(cO))
		})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "exact entropy ratio (Eqs. 14/17) used: Eq. 19's n >> K premise fails at n=12")
	return fig, nil
}

// Fig18 — traceable rate vs. compromised rate on the Infocom trace
// (K = 3, 41 nodes).
func Fig18(opt Options) (*Figure, error) {
	const n = 41
	return traceSecurityFigure(opt, "fig18",
		"Traceable rate w.r.t. compromised rate (Infocom 2005 trace)",
		"Traceable rate", n, infocomGroupSize, []int{1},
		func(frac float64, _ int) float64 {
			return model.TraceableRate(traceRelays+1, frac)
		},
		func(a *adversary.Adversary, senders []contact.NodeID, _ int) float64 {
			return model.TraceableRateOfPath(a.SenderBits(senders))
		})
}

// Fig19 — path anonymity vs. compromised rate on the Infocom trace
// (L in {1, 3, 5}, g = 5, 41 nodes).
func Fig19(opt Options) (*Figure, error) {
	const n = 41
	return traceSecurityFigure(opt, "fig19",
		"Path anonymity w.r.t. compromised rate (Infocom 2005 trace)",
		"Path anonymity", n, infocomGroupSize, []int{1, 3, 5},
		func(frac float64, l int) float64 {
			return model.PathAnonymityMultiCopyExact(n, traceRelays+1, infocomGroupSize, frac, l)
		},
		func(a *adversary.Adversary, _ []contact.NodeID, cO int) float64 {
			return model.PathAnonymityExact(n, traceRelays+1, infocomGroupSize, float64(cO))
		})
}
