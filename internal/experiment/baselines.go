package experiment

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	scenario.RegisterCustom("ablation-baselines", ablationBaselines)
}

// ablationBaselines quantifies the price of anonymity: onion routing
// (K=3, L=1 and L=3 spray) against the non-anonymous DTN protocols the
// paper reviews in Sec. VI-A — epidemic flooding, binary
// spray-and-wait, PRoPHET, and direct delivery — on one random contact
// graph. The four engine-driven baselines are evaluated on the
// IDENTICAL contact stream per run (sim.Fanout paired comparison).
// Epidemic upper-bounds delivery and direct delivery costs one
// transmission; on a complete contact graph even direct delivery beats
// the onion's K+1 serial hops, the starkest view of what the anonymity
// constraint costs in delay.
func ablationBaselines(e *scenario.Engine, sc *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	const n = 100
	const copies = 3
	root := rng.New(opt.Seed)
	g := contact.NewRandom(n, 1, 360, root.Split("graph"))
	deadlines := scenario.DeliveryDeadlines()
	maxT := deadlines[len(deadlines)-1]

	onionCfg := core.DefaultConfig()
	onionCfg.Seed = opt.Seed
	onionCfg.ContactFailure = opt.FaultRate
	onionNet, err := core.NewNetwork(onionCfg)
	if err != nil {
		return nil, nil, err
	}
	onionCfg3 := onionCfg
	onionCfg3.Copies = copies
	onionNet3, err := core.NewNetwork(onionCfg3)
	if err != nil {
		return nil, nil, err
	}

	names := []string{
		"Onion (K=3, L=1)",
		fmt.Sprintf("Onion (K=3, L=%d spray)", copies),
		"Epidemic",
		fmt.Sprintf("Binary spray-and-wait (L=%d)", copies),
		"PRoPHET",
		"Direct delivery",
	}
	type baselineTrial struct {
		Obs [6]obsPoint
		Tx  [6]float64
	}
	trials, err := scenario.Trials(e, sc.ID+"/baselines", opt.Runs, func(i int) (baselineTrial, error) {
		s := root.SplitN("run", i)
		src := contact.NodeID(s.IntN(n))
		dst := contact.NodeID(s.PickOther(n, int(src)))

		var bt baselineTrial
		// Onion lines use the direct sampler (statistically identical
		// to the engine; see the KS cross-check).
		for oi, nw := range []*core.Network{onionNet, onionNet3} {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return baselineTrial{}, err
			}
			res, err := nw.Route(trial, maxT, false, i)
			if err != nil {
				return baselineTrial{}, err
			}
			bt.Obs[oi] = obsPoint{res.Delivered, res.Time}
			bt.Tx[oi] = float64(res.Transmissions)
		}

		// Engine-driven baselines share one identical contact stream.
		epi, err := routing.NewEpidemic(src, dst, 0)
		if err != nil {
			return baselineTrial{}, err
		}
		bin, err := routing.NewBinarySprayAndWait(src, dst, copies, 0)
		if err != nil {
			return baselineTrial{}, err
		}
		pro, err := routing.NewProphet(n, src, dst, 0, routing.ProphetConfig{})
		if err != nil {
			return baselineTrial{}, err
		}
		dir, err := routing.NewDirect(src, dst, 0)
		if err != nil {
			return baselineTrial{}, err
		}
		// The fault layer drops each contact for the whole fan-out at
		// once, so the paired comparison stays paired under faults.
		sim.RunSynthetic(g, maxT, s.Split("contacts"),
			sim.Lossy(sim.Fanout{epi, bin, pro, dir}, opt.FaultRate, s.Split("faults")))
		for bi, r := range []routing.BaselineResult{
			epi.Result(), bin.Result(), pro.Result(), dir.Result(),
		} {
			bt.Obs[2+bi] = obsPoint{r.Delivered, r.Time}
			bt.Tx[2+bi] = float64(r.Transmissions)
		}
		return bt, nil
	})
	if err != nil {
		return nil, nil, err
	}

	ecdfs := make([]*stats.ECDF, len(names))
	txs := make([]stats.Accumulator, len(names))
	for i := range ecdfs {
		ecdfs[i] = stats.NewECDF()
	}
	for _, bt := range trials {
		for bi := range names {
			observe(ecdfs[bi], bt.Obs[bi].Delivered, bt.Obs[bi].T)
			txs[bi].Add(bt.Tx[bi])
		}
	}

	var series []stats.Series
	var notes []string
	for i, name := range names {
		s := stats.Series{Name: name}
		for _, t := range deadlines {
			s.Append(t, ecdfs[i].At(t), 0)
		}
		series = append(series, s)
		notes = append(notes, fmt.Sprintf("%s: %.1f mean transmissions", name, txs[i].Mean()))
	}
	return series, notes, nil
}
