package experiment

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Claim is one qualitative result the paper states about a figure,
// expressed as a programmatic check on the reproduced series. Claims
// are what "reproduced" means here: the shapes — who wins, what rises
// or falls, where analysis tracks simulation — rather than absolute
// values, since the substrate is a reimplemented simulator.
type Claim struct {
	// Paper quotes or paraphrases the claim from Sec. V.
	Paper string
	// Check evaluates the claim on a generated figure and returns an
	// explanation of what was measured.
	Check func(*Figure) (bool, string)
}

// ClaimsFor returns the paper's claims for a figure (or ablation) ID.
// Unknown IDs return nil.
func ClaimsFor(id string) []Claim {
	switch id {
	case "fig04":
		return []Claim{
			{
				Paper: "the delivery rate increases as the onion group size increases (Sec. V-B)",
				Check: seriesOrdered("Simulation: g=1", "Simulation: g=5", "Simulation: g=10"),
			},
			{
				Paper: "our delivery rate analysis provides a reasonable approximation (same trend)",
				Check: sameTrend("Analysis: g=5", "Simulation: g=5"),
			},
		}
	case "fig05":
		return []Claim{
			{
				Paper: "a smaller number of onion routers results in a higher delivery rate (Sec. V-B)",
				Check: seriesOrdered("Simulation: 10 onions", "Simulation: 5 onions", "Simulation: 3 onions"),
			},
			{
				Paper: "although there exists a gap between numerical and simulation results, the same trend can be clearly observed",
				Check: sameTrend("Analysis: 3 onions", "Simulation: 3 onions"),
			},
		}
	case "fig06":
		return []Claim{
			{
				Paper: "the traceable rate increases in proportion to the percentage of compromised nodes",
				Check: increasing("Simulation: 3 onions"),
			},
			{
				Paper: "numerical and simulation results are close to each other",
				Check: closeSeries("Analysis: 3 onions", "Simulation: 3 onions", 0.05),
			},
		}
	case "fig07":
		return []Claim{
			{
				Paper: "adversaries can trace smaller portions of a path as the number of onion routers increases",
				Check: decreasing("Simulation: c/n=20%"),
			},
			{
				Paper: "numerical and simulation results are close to each other",
				Check: closeSeries("Analysis: c/n=20%", "Simulation: c/n=20%", 0.05),
			},
		}
	case "fig08":
		return []Claim{
			{
				Paper: "the larger group size results in higher anonymity",
				Check: seriesOrdered("Simulation: g=1", "Simulation: g=5", "Simulation: g=10"),
			},
			{
				Paper: "our anonymity analysis approximates the simulation results with very high accuracy",
				Check: closeSeries("Analysis: g=5", "Simulation: g=5", 0.05),
			},
		}
	case "fig09":
		return []Claim{
			{
				Paper: "the path anonymity gradually increases as the group size increases",
				Check: increasing("Simulation: c/n=10%"),
			},
			{
				Paper: "higher compromised rates lower anonymity at every group size",
				Check: seriesOrdered("Simulation: c/n=30%", "Simulation: c/n=20%", "Simulation: c/n=10%"),
			},
		}
	case "fig10":
		return []Claim{
			{
				Paper: "the delivery rate increases as the value of L increases",
				Check: seriesOrdered("Simulation: L=1", "Simulation: L=3", "Simulation: L=5"),
			},
			{
				Paper: "our analysis still displays the same trend as the simulation results",
				Check: sameTrend("Analysis: L=3", "Simulation: L=3"),
			},
		}
	case "fig11":
		return []Claim{
			{
				Paper: "as the value of L increases, the number of message transmissions increases",
				Check: increasing("Simulation"),
			},
			{
				Paper: "the analytical and simulation results are very close to each other (simulation within the bound)",
				Check: dominates("Analysis", "Simulation", 1e-9),
			},
			{
				Paper: "the message cost without anonymity is the smallest",
				Check: dominates("Simulation", "Non-anonymous", 0.5),
			},
		}
	case "fig12":
		return []Claim{
			{
				Paper: "the anonymity decreases when L increases",
				Check: seriesOrdered("Simulation: L=5", "Simulation: L=3", "Simulation: L=1"),
			},
			{
				Paper: "numerical and simulation results of L=3 are very close when c/n <= 30%",
				Check: closePrefix("Analysis: L=3", "Simulation: L=3", 0.3, 0.06),
			},
		}
	case "fig13":
		return []Claim{
			{
				Paper: "the numerical and simulation results are very close to each other",
				Check: closeSeries("Analysis: L=1", "Simulation: L=1", 0.05),
			},
			{
				Paper: "anonymity grows with the group size at both L",
				Check: increasing("Simulation: L=3"),
			},
		}
	case "fig14":
		return []Claim{
			{
				Paper: "the delivery rate reaches ~100% within 1800 seconds on the dense Cambridge trace",
				Check: finalAtLeast("Simulation: L=1", 0.85),
			},
			{
				Paper: "our analysis presents the similar trend as the real trace",
				Check: sameTrend("Analysis: L=1", "Simulation: L=1"),
			},
		}
	case "fig15":
		return []Claim{
			{
				Paper: "the proposed traceable rate analysis provides close approximation even with the real traces",
				Check: closeSeries("Analysis: L=1", "Simulation: L=1", 0.05),
			},
		}
	case "fig16":
		return []Claim{
			{
				Paper: "the path anonymity decreases as the percentage of compromised nodes increases",
				Check: decreasing("Simulation: L=1"),
			},
			{
				Paper: "the results from simulations and the analysis are very close to each other",
				Check: closeSeries("Analysis: L=1", "Simulation: L=1", 0.05),
			},
		}
	case "fig17":
		return []Claim{
			{
				Paper: "the delivery rate plateaus where there are no contacts, then increases with longer deadlines",
				Check: hasPlateauThenGrowth("Simulation: L=1"),
			},
			{
				Paper: "multi-copy forwarding improves delivery only slightly on the Infocom trace",
				Check: marginalGain("Simulation: L=1", "Simulation: L=5", 0.45),
			},
		}
	case "fig18":
		return []Claim{
			{
				Paper: "the difference between the analysis and simulation results are up to only a few percents",
				Check: closeSeries("Analysis: L=1", "Simulation: L=1", 0.05),
			},
		}
	case "fig19":
		return []Claim{
			{
				Paper: "when L=1, the numerical and simulation results are nearly matched",
				Check: closeSeries("Analysis: L=1", "Simulation: L=1", 0.05),
			},
			{
				Paper: "the path anonymity slightly decreases from L=3 to L=5",
				Check: seriesOrdered("Simulation: L=5", "Simulation: L=3", "Simulation: L=1"),
			},
		}
	case "ablation-baselines":
		return []Claim{
			{
				Paper: "(reproduction) epidemic flooding upper-bounds every protocol's delivery rate",
				Check: dominates("Epidemic", "Onion (K=3, L=1)", 0.02),
			},
			{
				Paper: "(reproduction) anonymity costs delivery: non-anonymous epidemic beats the single-copy onion",
				Check: seriesOrdered("Onion (K=3, L=1)", "Epidemic"),
			},
			{
				Paper: "(reproduction) multi-copy spray narrows but does not close the gap",
				Check: seriesOrdered("Onion (K=3, L=1)", "Onion (K=3, L=3 spray)", "Epidemic"),
			},
		}
	case "ablation-buffers":
		return []Claim{
			{
				Paper: "(reproduction) delivery rate rises with the buffer limit",
				Check: increasing("No acknowledgements"),
			},
			{
				Paper: "(reproduction) anti-packets recover delivery lost to buffer pressure (mean over the sweep)",
				Check: seriesOrdered("No acknowledgements", "Anti-packets"),
			},
		}
	case "ablation-faults":
		return []Claim{
			{
				Paper: "(reproduction) thinning every contact rate to λ(1−p) lowers the analytical delivery rate monotonically",
				Check: decreasing("Analysis (thinned to λ(1-p))"),
			},
			{
				Paper: "(reproduction) the ideal Eq. 4-7 analysis upper-bounds the thinned analysis, meeting it at fault rate 0",
				Check: dominates("Analysis (Eq. 4-7, ideal contacts)", "Analysis (thinned to λ(1-p))", 0.001),
			},
			{
				Paper: "(reproduction) injected contact loss degrades the abstract simulation's delivery",
				Check: endpointDrop("Simulation (abstract, lossy contacts)"),
			},
			{
				Paper: "(reproduction) truncation/corruption/duplication/churn degrade the full-crypto runtime's delivery",
				Check: endpointDrop("Runtime (full crypto, uniform faults)"),
			},
			{
				Paper: "(reproduction) faults change availability, not anonymity: path anonymity is flat at fixed c/n",
				Check: flat("Path anonymity (model, c/n=10%)"),
			},
		}
	case "ablation-predecessor":
		return []Claim{
			{
				Paper: "(reproduction) longer observation improves the predecessor attack against a single-copy source",
				Check: increasing("L=1 (single copy)"),
			},
			{
				Paper: "(reproduction) spray mode dilutes the predecessor attack relative to strict multi-copy",
				Check: dominates("L=3 strict", "L=3 spray", 0.1),
			},
		}
	case "ablation-spray":
		return []Claim{
			{
				Paper: "(reproduction) the spray augmentation never loses to strict Algorithm 2",
				Check: dominates("Spray (Sec. V variant)", "Strict (Alg. 2)", 0.08),
			},
		}
	case "ablation-traceable":
		return []Claim{
			{
				Paper: "(reproduction) the exact run-length expectation matches Monte Carlo everywhere",
				Check: closeSeries("Exact expectation", "Monte Carlo", 0.03),
			},
		}
	case "ablation-tps":
		return []Claim{
			{
				Paper: "(reproduction) short group-aggregated onion paths beat TPS's single-node pivot",
				Check: dominates("Onion groups (K=3)", "TPS (s=3, tau=2)", 0.05),
			},
		}
	case "ablation-model-gap":
		return []Claim{
			{
				Paper: "(reproduction) Eq. 4 as printed is at least as optimistic as the last-hop-averaged variant",
				Check: dominates("Analysis (Eq. 4 as printed)", "Analysis (last hop averaged)", 1e-9),
			},
		}
	default:
		return nil
	}
}

// --- claim combinators ---

func getSeries(f *Figure, name string) (*stats.Series, bool, string) {
	s, ok := f.SeriesByName(name)
	if !ok {
		return nil, false, fmt.Sprintf("series %q missing", name)
	}
	return s, true, ""
}

// seriesOrdered checks mean(first) <= mean(second) <= ... with a small
// noise allowance.
func seriesOrdered(names ...string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		const slack = 0.02
		prev := -math.MaxFloat64
		detail := ""
		for _, name := range names {
			s, ok, msg := getSeries(f, name)
			if !ok {
				return false, msg
			}
			m := stats.Mean(s.Y)
			detail += fmt.Sprintf("%s mean=%.3f; ", name, m)
			if m < prev-slack {
				return false, detail + "ordering violated"
			}
			prev = m
		}
		return true, detail + "ordered as claimed"
	}
}

// increasing checks the series rises from its first to last point and
// never dips sharply.
func increasing(name string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		s, ok, msg := getSeries(f, name)
		if !ok {
			return false, msg
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last <= first {
			return false, fmt.Sprintf("%s: %.3f -> %.3f not increasing", name, first, last)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-0.05 {
				return false, fmt.Sprintf("%s dips at x=%v", name, s.X[i])
			}
		}
		return true, fmt.Sprintf("%s rises %.3f -> %.3f", name, first, last)
	}
}

// decreasing is the mirror of increasing.
func decreasing(name string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		s, ok, msg := getSeries(f, name)
		if !ok {
			return false, msg
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last >= first {
			return false, fmt.Sprintf("%s: %.3f -> %.3f not decreasing", name, first, last)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.05 {
				return false, fmt.Sprintf("%s bumps at x=%v", name, s.X[i])
			}
		}
		return true, fmt.Sprintf("%s falls %.3f -> %.3f", name, first, last)
	}
}

// closeSeries checks |a - b| <= tol pointwise.
func closeSeries(a, b string, tol float64) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		sa, ok, msg := getSeries(f, a)
		if !ok {
			return false, msg
		}
		sb, ok, msg := getSeries(f, b)
		if !ok {
			return false, msg
		}
		maxGap := 0.0
		for i := range sa.Y {
			maxGap = math.Max(maxGap, math.Abs(sa.Y[i]-sb.Y[i]))
		}
		return maxGap <= tol, fmt.Sprintf("max |%s - %s| = %.3f (tol %.3f)", a, b, maxGap, tol)
	}
}

// closePrefix checks closeness only for x <= xMax (the paper's claims
// about the small-c regime).
func closePrefix(a, b string, xMax, tol float64) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		sa, ok, msg := getSeries(f, a)
		if !ok {
			return false, msg
		}
		sb, ok, msg := getSeries(f, b)
		if !ok {
			return false, msg
		}
		maxGap := 0.0
		for i := range sa.Y {
			if sa.X[i] > xMax {
				continue
			}
			maxGap = math.Max(maxGap, math.Abs(sa.Y[i]-sb.Y[i]))
		}
		return maxGap <= tol, fmt.Sprintf("max |%s - %s| = %.3f for x <= %v (tol %.3f)", a, b, maxGap, xMax, tol)
	}
}

// sameTrend checks rank correlation between two series is strongly
// positive: they rise and fall together.
func sameTrend(a, b string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		sa, ok, msg := getSeries(f, a)
		if !ok {
			return false, msg
		}
		sb, ok, msg := getSeries(f, b)
		if !ok {
			return false, msg
		}
		agree, total := 0, 0
		for i := 1; i < len(sa.Y); i++ {
			da, db := sa.Y[i]-sa.Y[i-1], sb.Y[i]-sb.Y[i-1]
			if math.Abs(da) < 1e-6 && math.Abs(db) < 1e-6 {
				continue // both flat: trivially agreeing, skip
			}
			total++
			if (da >= -1e-6 && db >= -1e-6) || (da <= 1e-6 && db <= 1e-6) {
				agree++
			}
		}
		if total == 0 {
			return true, "both series flat"
		}
		frac := float64(agree) / float64(total)
		return frac >= 0.8, fmt.Sprintf("%s and %s move together on %.0f%% of steps", a, b, frac*100)
	}
}

// dominates checks a >= b - slack pointwise.
func dominates(a, b string, slack float64) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		sa, ok, msg := getSeries(f, a)
		if !ok {
			return false, msg
		}
		sb, ok, msg := getSeries(f, b)
		if !ok {
			return false, msg
		}
		worst := 0.0
		for i := range sa.Y {
			worst = math.Max(worst, sb.Y[i]-sa.Y[i])
		}
		return worst <= slack, fmt.Sprintf("worst shortfall of %s under %s = %.3f (slack %.3f)", a, b, worst, slack)
	}
}

// finalAtLeast checks the last point of the series reaches the floor.
func finalAtLeast(name string, floor float64) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		s, ok, msg := getSeries(f, name)
		if !ok {
			return false, msg
		}
		last := s.Y[len(s.Y)-1]
		return last >= floor, fmt.Sprintf("%s final value %.3f (floor %.3f)", name, last, floor)
	}
}

// hasPlateauThenGrowth checks for a flat stretch in the middle of the
// sweep followed by further growth (the Infocom diurnal signature).
func hasPlateauThenGrowth(name string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		s, ok, msg := getSeries(f, name)
		if !ok {
			return false, msg
		}
		plateauAt := -1
		for i := 2; i+1 < len(s.Y); i++ {
			if s.Y[i] > 0.05 && s.Y[i] < 0.95 && s.Y[i+1]-s.Y[i-1] < 0.02 {
				plateauAt = i
				break
			}
		}
		if plateauAt < 0 {
			return false, "no plateau found"
		}
		last := s.Y[len(s.Y)-1]
		if last <= s.Y[plateauAt]+0.05 {
			return false, fmt.Sprintf("no growth after the plateau at x=%v", s.X[plateauAt])
		}
		return true, fmt.Sprintf("plateau near x=%v at %.3f, final %.3f", s.X[plateauAt], s.Y[plateauAt], last)
	}
}

// marginalGain checks b improves on a, but by at most maxGain in the
// mean (the paper's "the difference is not significant").
func marginalGain(a, b string, maxGain float64) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		sa, ok, msg := getSeries(f, a)
		if !ok {
			return false, msg
		}
		sb, ok, msg := getSeries(f, b)
		if !ok {
			return false, msg
		}
		gain := stats.Mean(sb.Y) - stats.Mean(sa.Y)
		return gain >= -0.05 && gain <= maxGain,
			fmt.Sprintf("mean gain of %s over %s = %.3f (window [-0.05, %.2f])", b, a, gain, maxGain)
	}
}

// endpointDrop checks the series ends strictly below where it started
// — a degradation claim robust to mid-sweep Monte Carlo noise.
func endpointDrop(name string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		s, ok, msg := getSeries(f, name)
		if !ok {
			return false, msg
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		return last < first, fmt.Sprintf("%s endpoint %.3f vs start %.3f", name, last, first)
	}
}

// flat checks every point of the series equals the first exactly (for
// analytical series that must not react to the swept parameter).
func flat(name string) func(*Figure) (bool, string) {
	return func(f *Figure) (bool, string) {
		s, ok, msg := getSeries(f, name)
		if !ok {
			return false, msg
		}
		for i, y := range s.Y {
			if y != s.Y[0] {
				return false, fmt.Sprintf("%s moves at x=%v: %.6f vs %.6f", name, s.X[i], y, s.Y[0])
			}
		}
		return true, fmt.Sprintf("%s constant at %.3f", name, s.Y[0])
	}
}
