package experiment

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func init() {
	scenario.RegisterCustom("ablation-predecessor", ablationPredecessor)
}

// ablationPredecessor mounts a predecessor attack [Wright et al.] on
// the abstract protocol: compromised R_1 members log who handed them
// each fresh onion, and after observing a stream of messages from the
// same (unknown) source the adversary guesses that the most frequent
// predecessor is the source. The paper's path-anonymity metric is
// per-message; this experiment shows the longitudinal picture and how
// the spray augmentation (arbitrary relays injecting copies into R_1)
// dilutes the attack, at the cost of the lower per-message anonymity
// of Fig. 12.
func ablationPredecessor(e *scenario.Engine, sc *scenario.Scenario) ([]stats.Series, []string, error) {
	opt := e.Options()
	const frac = 0.2
	messageCounts := []float64{1, 2, 5, 10, 20, 50, 100}
	var series []stats.Series
	for ci, tc := range []struct {
		label  string
		copies int
		spray  bool
	}{
		{"L=1 (single copy)", 1, false},
		{"L=3 strict", 3, false},
		{"L=3 spray", 3, true},
	} {
		cfg := core.DefaultConfig()
		cfg.Copies = tc.copies
		cfg.Spray = tc.spray
		cfg.Seed = opt.Seed
		cfg.ContactFailure = opt.FaultRate
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, nil, err
		}
		s := stats.Series{Name: tc.label}
		// Trials: independent adversaries, each observing a stream of
		// messages from a fixed source. Reuse one long routed stream
		// per trial and evaluate all message-count prefixes.
		trials := opt.Runs / 4
		if trials < 20 {
			trials = 20
		}
		maxMsgs := int(messageCounts[len(messageCounts)-1])
		// Each trial is one independent adversary observing one source's
		// message stream; trials run concurrently and report whether the
		// guess was correct at each message-count checkpoint.
		perTrial, err := scenario.Trials(e, fmt.Sprintf("%s/pred/c%d", sc.ID, ci), trials, func(trial int) ([]bool, error) {
			adv, err := adversary.RandomFraction(cfg.Nodes, frac, nw.Rand("predadv", trial))
			if err != nil {
				return nil, err
			}
			src := contact.NodeID(trial % cfg.Nodes)
			// Predecessor observation counts accumulated over the
			// stream.
			counts := map[contact.NodeID]int{}
			correct := make([]bool, len(messageCounts))
			msgIdx := 0
			for mi := 0; mi < maxMsgs; mi++ {
				res, err := nw.RouteFrom(src, trial*1000+mi, 1800)
				if err != nil {
					return nil, err
				}
				// Compromised receivers at stage >= 1 log their
				// predecessor; predecessors at position 0 are the
				// source or spray carriers.
				for _, c := range res.Copies {
					for vi := 1; vi < len(c.Visits); vi++ {
						v := c.Visits[vi]
						if v.Stage == 1 && adv.IsCompromised(v.Node) {
							counts[c.Visits[vi-1].Node]++
						}
					}
				}
				msgIdx++
				for ci, mc := range messageCounts {
					if int(mc) == msgIdx {
						correct[ci] = guessSource(counts) == src
					}
				}
			}
			return correct, nil
		})
		if err != nil {
			return nil, nil, err
		}
		correctAt := make([]int, len(messageCounts))
		for _, correct := range perTrial {
			for ci, ok := range correct {
				if ok {
					correctAt[ci]++
				}
			}
		}
		for ci, mc := range messageCounts {
			s.Append(mc, float64(correctAt[ci])/float64(trials), 0)
		}
		series = append(series, s)
	}
	notes := []string{
		fmt.Sprintf("%d independent adversary trials per line; adversary guesses the most frequent first-hop predecessor", opt.Runs/4),
	}
	return series, notes, nil
}

// guessSource returns the most frequently observed predecessor, with
// deterministic tie-breaking (lowest node ID); -1 if nothing observed.
func guessSource(counts map[contact.NodeID]int) contact.NodeID {
	best := contact.NodeID(-1)
	bestCount := 0
	for v, c := range counts {
		if c > bestCount || (c == bestCount && best >= 0 && v < best) {
			best = v
			bestCount = c
		}
	}
	return best
}
