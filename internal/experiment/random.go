package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stats"
)

// deliveryDeadlines is the paper's deadline sweep: 60 to 1800 minutes
// (Table II).
func deliveryDeadlines() []float64 {
	out := make([]float64, 0, 11)
	for t := 60.0; t <= 1800; t += 174 {
		out = append(out, t)
	}
	return append(out, 1800)
}

// compromisedFractions is the paper's compromised-rate sweep: 1% to
// 50% (Table II).
func compromisedFractions() []float64 {
	out := []float64{0.01}
	for f := 0.05; f <= 0.501; f += 0.05 {
		out = append(out, math.Round(f*100)/100)
	}
	return out
}

type labeledConfig struct {
	label string
	cfg   core.Config
}

// deliveryTrial is the outcome of one routed message: the simulated
// delivery plus the analytical delivery rate at every deadline. A
// skipped trial (no eligible group path) contributes nothing.
type deliveryTrial struct {
	skipped   bool
	delivered bool
	time      float64
	model     []float64 // per deadline
}

// deliveryCurves runs one simulation series and one analysis series
// per configuration: each routed message is simulated once to the
// maximum deadline and its delivery time feeds an empirical CDF, which
// is exactly the delivery rate as a function of the deadline. Trials
// run concurrently on opt.Workers workers and are aggregated in trial
// order, so the series are identical for every worker count.
func deliveryCurves(opt Options, cfgs []labeledConfig, deadlines []float64) ([]stats.Series, []string, error) {
	var series []stats.Series
	var notes []string
	maxT := deadlines[len(deadlines)-1]
	for _, lc := range cfgs {
		lcfg := lc.cfg
		lcfg.Seed = opt.Seed
		lcfg.ContactFailure = opt.FaultRate
		nw, err := core.NewNetwork(lcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: %s: %w", lc.label, err)
		}
		trials, err := MapTrials(opt.Workers, opt.Runs, func(i int) (deliveryTrial, error) {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return deliveryTrial{skipped: true}, nil
			}
			res, err := nw.Route(trial, maxT, false, i)
			if err != nil {
				return deliveryTrial{}, fmt.Errorf("%s run %d: %w", lc.label, i, err)
			}
			dt := deliveryTrial{
				delivered: res.Delivered,
				time:      res.Time,
				model:     make([]float64, len(deadlines)),
			}
			for d, t := range deadlines {
				m, err := nw.ModelDelivery(trial, t)
				if err != nil {
					return deliveryTrial{}, fmt.Errorf("%s model: %w", lc.label, err)
				}
				dt.model[d] = m
			}
			return dt, nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: %w", err)
		}
		ecdf := stats.NewECDF()
		modelAcc := make([]stats.Accumulator, len(deadlines))
		skipped := 0
		for _, dt := range trials {
			if dt.skipped {
				skipped++
				continue
			}
			if dt.delivered {
				ecdf.Observe(dt.time)
			} else {
				ecdf.ObserveCensored()
			}
			for d := range deadlines {
				modelAcc[d].Add(dt.model[d])
			}
		}
		if skipped > 0 {
			notes = append(notes, fmt.Sprintf("%s: %d trials skipped (no eligible group path)", lc.label, skipped))
		}

		analysis := stats.Series{Name: "Analysis: " + lc.label}
		simulation := stats.Series{Name: "Simulation: " + lc.label}
		n := float64(ecdf.N())
		for d, t := range deadlines {
			analysis.Append(t, modelAcc[d].Mean(), modelAcc[d].CI95())
			p := ecdf.At(t)
			ci := 0.0
			if n > 0 {
				ci = 1.96 * math.Sqrt(p*(1-p)/n)
			}
			simulation.Append(t, p, ci)
		}
		series = append(series, analysis, simulation)
	}
	return series, notes, nil
}

// securityPoint measures one fast-mode security point. Samples are
// drawn concurrently on workers workers and accumulated in trial
// order.
func securityPoint(nw *core.Network, frac float64, runs, workers, salt int, metric func(core.SecurityOutcome) float64) (stats.Summary, error) {
	vals, err := MapTrials(workers, runs, func(i int) (float64, error) {
		out, err := nw.FastSecurityTrial(frac, salt*1000003+i)
		if err != nil {
			return 0, err
		}
		return metric(out), nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	var acc stats.Accumulator
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Summarize(), nil
}

// Fig04 — delivery rate vs. deadline for group sizes g in {1, 5, 10}
// (K = 3, L = 1, n = 100).
func Fig04(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var cfgs []labeledConfig
	for _, g := range []int{1, 5, 10} {
		cfg := core.DefaultConfig()
		cfg.GroupSize = g
		cfgs = append(cfgs, labeledConfig{fmt.Sprintf("g=%d", g), cfg})
	}
	series, notes, err := deliveryCurves(opt, cfgs, deliveryDeadlines())
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig04", Title: "Delivery rate w.r.t. deadline (group size)",
		XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
		Series: series, Notes: notes,
	}, nil
}

// Fig05 — delivery rate vs. deadline for K in {3, 5, 10} onion
// routers (g = 5, L = 1).
func Fig05(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var cfgs []labeledConfig
	for _, k := range []int{3, 5, 10} {
		cfg := core.DefaultConfig()
		cfg.Relays = k
		cfgs = append(cfgs, labeledConfig{fmt.Sprintf("%d onions", k), cfg})
	}
	series, notes, err := deliveryCurves(opt, cfgs, deliveryDeadlines())
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig05", Title: "Delivery rate w.r.t. deadline (number of onion routers)",
		XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
		Series: series, Notes: notes,
	}, nil
}

// Fig06 — traceable rate vs. compromised rate for K in {3, 5, 10}.
func Fig06(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	fracs := compromisedFractions()
	fig := &Figure{
		ID: "fig06", Title: "Traceable rate w.r.t. compromised rate",
		XLabel: "Compromised rate (c/n)", YLabel: "Traceable rate",
	}
	for _, k := range []int{3, 5, 10} {
		cfg := core.DefaultConfig()
		cfg.Relays = k
		cfg.Seed = opt.Seed
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: %d onions", k)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: %d onions", k)}
		for fi, frac := range fracs {
			analysis.Append(frac, nw.ModelTraceableRate(frac), 0)
			sum, err := securityPoint(nw, frac, opt.SecurityRuns, opt.Workers, k*100+fi,
				func(o core.SecurityOutcome) float64 { return o.TraceableRate })
			if err != nil {
				return nil, err
			}
			simulation.Append(frac, sum.Mean, sum.CI95)
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}

// Fig07 — traceable rate vs. number of onion relays for c/n in
// {10%, 20%, 30%}.
func Fig07(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	fig := &Figure{
		ID: "fig07", Title: "Traceable rate w.r.t. number of onion relays",
		XLabel: "Number of onion relays (K)", YLabel: "Traceable rate",
	}
	for _, frac := range []float64{0.1, 0.2, 0.3} {
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: c/n=%.0f%%", frac*100)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: c/n=%.0f%%", frac*100)}
		for _, k := range ks {
			cfg := core.DefaultConfig()
			cfg.Relays = k
			cfg.Seed = opt.Seed
			nw, err := core.NewNetwork(cfg)
			if err != nil {
				return nil, err
			}
			analysis.Append(float64(k), nw.ModelTraceableRate(frac), 0)
			sum, err := securityPoint(nw, frac, opt.SecurityRuns, opt.Workers, int(frac*100)*100+k,
				func(o core.SecurityOutcome) float64 { return o.TraceableRate })
			if err != nil {
				return nil, err
			}
			simulation.Append(float64(k), sum.Mean, sum.CI95)
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}

// Fig08 — path anonymity vs. compromised rate for g in {1, 5, 10}
// (L = 1).
func Fig08(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	fracs := compromisedFractions()
	fig := &Figure{
		ID: "fig08", Title: "Path anonymity w.r.t. compromised rate (group size)",
		XLabel: "Compromised rate (c/n)", YLabel: "Path anonymity",
	}
	for _, g := range []int{1, 5, 10} {
		cfg := core.DefaultConfig()
		cfg.GroupSize = g
		cfg.Seed = opt.Seed
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: g=%d", g)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: g=%d", g)}
		for fi, frac := range fracs {
			analysis.Append(frac, nw.ModelPathAnonymity(frac), 0)
			sum, err := securityPoint(nw, frac, opt.SecurityRuns, opt.Workers, g*1000+fi,
				func(o core.SecurityOutcome) float64 { return o.PathAnonymity })
			if err != nil {
				return nil, err
			}
			simulation.Append(frac, sum.Mean, sum.CI95)
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}

// Fig09 — path anonymity vs. group size for c/n in {10%, 20%, 30%}
// (L = 1).
func Fig09(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	gs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	fig := &Figure{
		ID: "fig09", Title: "Path anonymity w.r.t. group size",
		XLabel: "Group size (g)", YLabel: "Path anonymity",
	}
	for _, frac := range []float64{0.1, 0.2, 0.3} {
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: c/n=%.0f%%", frac*100)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: c/n=%.0f%%", frac*100)}
		for _, g := range gs {
			cfg := core.DefaultConfig()
			cfg.GroupSize = g
			cfg.Seed = opt.Seed
			nw, err := core.NewNetwork(cfg)
			if err != nil {
				return nil, err
			}
			analysis.Append(float64(g), nw.ModelPathAnonymity(frac), 0)
			sum, err := securityPoint(nw, frac, opt.SecurityRuns, opt.Workers, int(frac*100)*1000+g,
				func(o core.SecurityOutcome) float64 { return o.PathAnonymity })
			if err != nil {
				return nil, err
			}
			simulation.Append(float64(g), sum.Mean, sum.CI95)
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}

// Fig10 — delivery rate vs. deadline for L in {1, 3, 5} copies
// (g = 5, K = 3, spray mode).
func Fig10(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var cfgs []labeledConfig
	for _, l := range []int{1, 3, 5} {
		cfg := core.DefaultConfig()
		cfg.Copies = l
		cfgs = append(cfgs, labeledConfig{fmt.Sprintf("L=%d", l), cfg})
	}
	series, notes, err := deliveryCurves(opt, cfgs, deliveryDeadlines())
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig10", Title: "Delivery rate w.r.t. deadline (number of copies, g=5)",
		XLabel: "Deadline (minutes)", YLabel: "Delivery rate",
		Series: series, Notes: notes,
	}, nil
}

// Fig11 — message transmissions vs. number of copies: non-anonymous
// baseline 2L, the analysis bound 2L-1+KL, and the simulated protocol.
func Fig11(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	const k = 3
	copies := []int{1, 2, 3, 4, 5}
	nonAnon := stats.Series{Name: "Non-anonymous"}
	analysis := stats.Series{Name: "Analysis"}
	simulation := stats.Series{Name: "Simulation"}
	for _, l := range copies {
		nonAnon.Append(float64(l), float64(model.CostNonAnonymous(l)), 0)
		analysis.Append(float64(l), float64(model.CostMultiCopyBound(k, l)), 0)

		cfg := core.DefaultConfig()
		cfg.Copies = l
		cfg.Seed = opt.Seed
		cfg.ContactFailure = opt.FaultRate
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		type txTrial struct {
			ok bool
			tx float64
		}
		trials, err := MapTrials(opt.Workers, opt.Runs, func(i int) (txTrial, error) {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return txTrial{}, nil
			}
			res, err := nw.Route(trial, 1800, true, i)
			if err != nil {
				return txTrial{}, err
			}
			return txTrial{ok: true, tx: float64(res.Transmissions)}, nil
		})
		if err != nil {
			return nil, err
		}
		var acc stats.Accumulator
		for _, tt := range trials {
			if tt.ok {
				acc.Add(tt.tx)
			}
		}
		simulation.Append(float64(l), acc.Mean(), acc.CI95())
	}
	return &Figure{
		ID: "fig11", Title: "Message transmission cost w.r.t. number of copies",
		XLabel: "Number of copies (L)", YLabel: "Number of transmissions",
		Series: []stats.Series{nonAnon, analysis, simulation},
	}, nil
}

// Fig12 — path anonymity vs. compromised rate for L in {1, 3, 5}
// (g = 5).
func Fig12(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	fracs := compromisedFractions()
	fig := &Figure{
		ID: "fig12", Title: "Path anonymity w.r.t. compromised rate (copies, g=5)",
		XLabel: "Compromised rate (c/n)", YLabel: "Path anonymity",
	}
	for _, l := range []int{1, 3, 5} {
		cfg := core.DefaultConfig()
		cfg.Copies = l
		cfg.Seed = opt.Seed
		nw, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: L=%d", l)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: L=%d", l)}
		for fi, frac := range fracs {
			analysis.Append(frac, nw.ModelPathAnonymity(frac), 0)
			sum, err := securityPoint(nw, frac, opt.SecurityRuns, opt.Workers, l*10000+fi,
				func(o core.SecurityOutcome) float64 { return o.PathAnonymity })
			if err != nil {
				return nil, err
			}
			simulation.Append(frac, sum.Mean, sum.CI95)
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}

// Fig13 — path anonymity vs. group size for L in {1, 3} (c/n = 10%).
func Fig13(opt Options) (*Figure, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	const frac = 0.1
	gs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	fig := &Figure{
		ID: "fig13", Title: "Path anonymity w.r.t. group size (copies, c/n=10%)",
		XLabel: "Group size (g)", YLabel: "Path anonymity",
	}
	for _, l := range []int{1, 3} {
		analysis := stats.Series{Name: fmt.Sprintf("Analysis: L=%d", l)}
		simulation := stats.Series{Name: fmt.Sprintf("Simulation: L=%d", l)}
		for _, g := range gs {
			cfg := core.DefaultConfig()
			cfg.Copies = l
			cfg.GroupSize = g
			cfg.Seed = opt.Seed
			nw, err := core.NewNetwork(cfg)
			if err != nil {
				return nil, err
			}
			analysis.Append(float64(g), nw.ModelPathAnonymity(frac), 0)
			sum, err := securityPoint(nw, frac, opt.SecurityRuns, opt.Workers, l*100000+g,
				func(o core.SecurityOutcome) float64 { return o.PathAnonymity })
			if err != nil {
				return nil, err
			}
			simulation.Append(float64(g), sum.Mean, sum.CI95)
		}
		fig.Series = append(fig.Series, analysis, simulation)
	}
	return fig, nil
}
