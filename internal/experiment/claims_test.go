package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestClaimsRegisteredForEveryFigure(t *testing.T) {
	_, ids := Registry()
	for _, id := range ids {
		if len(ClaimsFor(id)) == 0 {
			t.Errorf("no claims for %s", id)
		}
	}
	_, ablIDs := AblationRegistry()
	for _, id := range ablIDs {
		if len(ClaimsFor(id)) == 0 {
			t.Errorf("no claims for %s", id)
		}
	}
	if ClaimsFor("not-a-figure") != nil {
		t.Error("claims for unknown figure")
	}
}

func TestClaimsPassOnGeneratedFigures(t *testing.T) {
	// The fast options keep this affordable; each figure's claims must
	// hold at test effort too (slack in the combinators covers noise).
	reg, ids := Registry()
	ablReg, ablIDs := AblationRegistry()
	for id, gen := range ablReg {
		reg[id] = gen
	}
	all := append(append([]string(nil), ids...), ablIDs...)
	for _, id := range all {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := reg[id](fastOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range ClaimsFor(id) {
				ok, detail := c.Check(fig)
				if !ok {
					t.Errorf("claim %q failed: %s", c.Paper, detail)
				}
			}
		})
	}
}

func claimFigure() *Figure {
	return &Figure{
		ID: "t", Title: "t",
		Series: []stats.Series{
			{Name: "up", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.5, 0.9}},
			{Name: "down", X: []float64{1, 2, 3}, Y: []float64{0.9, 0.5, 0.1}},
			{Name: "upish", X: []float64{1, 2, 3}, Y: []float64{0.12, 0.52, 0.88}},
			{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.5, 0.5}},
			{Name: "low", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.1, 0.1}},
		},
	}
}

func TestCombinators(t *testing.T) {
	f := claimFigure()
	cases := []struct {
		name  string
		check func(*Figure) (bool, string)
		want  bool
	}{
		{"increasing up", increasing("up"), true},
		{"increasing down", increasing("down"), false},
		{"decreasing down", decreasing("down"), true},
		{"decreasing flat", decreasing("flat"), false},
		{"close up/upish", closeSeries("up", "upish", 0.05), true},
		{"close up/down", closeSeries("up", "down", 0.05), false},
		{"trend up/upish", sameTrend("up", "upish"), true},
		{"trend up/down", sameTrend("up", "down"), false},
		{"ordered flat then low is wrong", seriesOrdered("flat", "low"), false},
		{"ordered low then flat", seriesOrdered("low", "flat"), true},
		{"dominates up over down", dominates("up", "down", 1), true},
		{"dominates up over down no slack", dominates("up", "down", 0.1), false},
		{"final at least", finalAtLeast("up", 0.8), true},
		{"final too low", finalAtLeast("down", 0.8), false},
		{"close prefix", closePrefix("up", "down", 0, 0.01), true}, // nothing in range
		{"missing series", increasing("nope"), false},
	}
	for _, c := range cases {
		got, detail := c.check(f)
		if got != c.want {
			t.Errorf("%s: got %v (%s), want %v", c.name, got, detail, c.want)
		}
	}
}

func TestPlateauCombinator(t *testing.T) {
	fig := &Figure{Series: []stats.Series{
		{Name: "p", X: []float64{1, 2, 4, 8, 16, 32, 64}, Y: []float64{0.05, 0.2, 0.4, 0.4, 0.4, 0.6, 0.8}},
		{Name: "np", X: []float64{1, 2, 4, 8}, Y: []float64{0.1, 0.3, 0.5, 0.7}},
	}}
	if ok, detail := hasPlateauThenGrowth("p")(fig); !ok {
		t.Fatalf("plateau not detected: %s", detail)
	}
	if ok, _ := hasPlateauThenGrowth("np")(fig); ok {
		t.Fatal("plateau falsely detected")
	}
}

func TestMarginalGainCombinator(t *testing.T) {
	fig := &Figure{Series: []stats.Series{
		{Name: "base", X: []float64{1, 2}, Y: []float64{0.4, 0.5}},
		{Name: "small", X: []float64{1, 2}, Y: []float64{0.45, 0.55}},
		{Name: "big", X: []float64{1, 2}, Y: []float64{0.9, 1.0}},
	}}
	if ok, _ := marginalGain("base", "small", 0.2)(fig); !ok {
		t.Fatal("small gain rejected")
	}
	if ok, _ := marginalGain("base", "big", 0.2)(fig); ok {
		t.Fatal("big gain accepted as marginal")
	}
}
