package experiment

import (
	"math"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	reg, ids := AblationRegistry()
	if len(ids) != 8 {
		t.Fatalf("ablations = %d", len(ids))
	}
	for _, id := range ids {
		if reg[id] == nil {
			t.Fatalf("nil generator for %s", id)
		}
	}
}

func TestAblationSprayDominatesStrict(t *testing.T) {
	fig := runFigure(t, AblationSpray)
	strict := mustSeries(t, fig, "Strict (Alg. 2)")
	spray := mustSeries(t, fig, "Spray (Sec. V variant)")
	// Spray must not lose overall, and must win somewhere early.
	if seriesMean(spray) < seriesMean(strict)-0.02 {
		t.Fatalf("spray mean %v below strict %v", seriesMean(spray), seriesMean(strict))
	}
	won := false
	for i := range spray.Y {
		if spray.Y[i] > strict.Y[i]+0.01 {
			won = true
		}
		if strict.Y[i] > spray.Y[i]+0.08 {
			t.Fatalf("strict beats spray at point %d by %v", i, strict.Y[i]-spray.Y[i])
		}
	}
	if !won {
		t.Log("spray never strictly ahead at this run count (acceptable but unusual)")
	}
}

func TestAblationTraceableModels(t *testing.T) {
	fig := runFigure(t, AblationTraceableModel)
	exact := mustSeries(t, fig, "Exact expectation")
	approx := mustSeries(t, fig, "Paper approximation (Eqs. 8-12)")
	mc := mustSeries(t, fig, "Monte Carlo")
	for i := range exact.Y {
		// The exact model must track Monte Carlo tightly everywhere.
		if math.Abs(exact.Y[i]-mc.Y[i]) > 0.03 {
			t.Fatalf("point %d: exact %v vs MC %v", i, exact.Y[i], mc.Y[i])
		}
	}
	// The paper approximation is close for small c/n but departs for
	// large c/n (its stated validity regime is c << n).
	if math.Abs(approx.Y[0]-exact.Y[0]) > 0.02 {
		t.Fatalf("approximation wrong even at c/n=1%%: %v vs %v", approx.Y[0], exact.Y[0])
	}
	last := len(exact.Y) - 1
	if math.Abs(approx.Y[last]-exact.Y[last]) < 0.01 {
		t.Log("approximation unexpectedly tight at 50% compromise")
	}
}

func TestAblationTPSShape(t *testing.T) {
	fig := runFigure(t, AblationTPS)
	onion3 := mustSeries(t, fig, "Onion groups (K=3)")
	onion10 := mustSeries(t, fig, "Onion groups (K=10)")
	tps := mustSeries(t, fig, "TPS (s=3, tau=2)")
	// Short onion paths dominate long ones.
	if seriesMean(onion3) <= seriesMean(onion10) {
		t.Fatalf("K=3 onion mean %v not above K=10 %v", seriesMean(onion3), seriesMean(onion10))
	}
	// The reproduction's finding: TPS's single-node pivot bottleneck
	// keeps it below the short group-aggregated onion path, roughly in
	// the league of a very long one.
	if seriesMean(tps) >= seriesMean(onion3) {
		t.Fatalf("TPS mean %v not below K=3 onion %v", seriesMean(tps), seriesMean(onion3))
	}
	if lastY(tps) < 0.3 {
		t.Fatalf("TPS never gets off the ground: %v", lastY(tps))
	}
	for i := 1; i < len(tps.Y); i++ {
		if tps.Y[i] < tps.Y[i-1]-1e-9 {
			t.Fatal("TPS delivery curve not monotone")
		}
	}
}

func TestAblationModelGapDecomposition(t *testing.T) {
	fig := runFigure(t, AblationModelGap)
	paper := mustSeries(t, fig, "Analysis (Eq. 4 as printed)")
	corr := mustSeries(t, fig, "Analysis (last hop averaged)")
	sim := mustSeries(t, fig, "Simulation")
	// The printed model is at least as optimistic as the corrected one
	// everywhere.
	for i := range paper.Y {
		if paper.Y[i] < corr.Y[i]-1e-9 {
			t.Fatalf("point %d: printed model %v below corrected %v", i, paper.Y[i], corr.Y[i])
		}
	}
	// With homogeneous rates the corrected model matches simulation.
	if math.Abs(corr.Y[0]-sim.Y[0]) > 0.1 {
		t.Fatalf("corrected model %v vs sim %v at homogeneous rates", corr.Y[0], sim.Y[0])
	}
	// The printed model's gap at homogeneous rates is the last-hop
	// aggregation artifact: it must exceed the corrected model's gap.
	paperGap := paper.Y[0] - sim.Y[0]
	corrGap := math.Abs(corr.Y[0] - sim.Y[0])
	if paperGap <= corrGap {
		t.Fatalf("last-hop artifact not visible: paper gap %v vs corrected gap %v", paperGap, corrGap)
	}
	// Heterogeneity widens the corrected model's gap.
	lastGap := corr.Y[len(corr.Y)-1] - sim.Y[len(sim.Y)-1]
	if lastGap <= corrGap {
		t.Log("heterogeneity gap did not widen at this run count")
	}
}

func TestAblationBaselinesShape(t *testing.T) {
	fig := runFigure(t, AblationBaselines)
	epi := mustSeries(t, fig, "Epidemic")
	onion1 := mustSeries(t, fig, "Onion (K=3, L=1)")
	direct := mustSeries(t, fig, "Direct delivery")
	// Epidemic dominates everything; the onion sits between direct
	// delivery and epidemic.
	for i := range epi.Y {
		if epi.Y[i] < onion1.Y[i]-0.05 {
			t.Fatalf("epidemic below onion at point %d", i)
		}
	}
	// On a complete contact graph even direct delivery (one hop) beats
	// the onion's K+1 serial hops — the starkest view of anonymity's
	// delivery cost.
	if seriesMean(direct) <= seriesMean(onion1)-0.05 {
		t.Fatalf("expected direct %v to be at least competitive with onion %v",
			seriesMean(direct), seriesMean(onion1))
	}
	// PRoPHET beats direct delivery (history helps).
	prophet := mustSeries(t, fig, "PRoPHET")
	if seriesMean(prophet) <= seriesMean(direct) {
		t.Fatalf("prophet mean %v not above direct %v", seriesMean(prophet), seriesMean(direct))
	}
}

func TestAblationPredecessorShape(t *testing.T) {
	fig := runFigure(t, AblationPredecessor)
	single := mustSeries(t, fig, "L=1 (single copy)")
	// With enough observations the attack succeeds far above the 1/n
	// prior against a single-copy source.
	if lastY(single) < 0.3 {
		t.Fatalf("attack never gets traction: %v", single.Y)
	}
	if single.Y[0] >= lastY(single) {
		t.Fatalf("attack does not improve with observations: %v", single.Y)
	}
}

func TestAblationBuffersShape(t *testing.T) {
	fig := runFigure(t, AblationBuffers)
	plain := mustSeries(t, fig, "No acknowledgements")
	anti := mustSeries(t, fig, "Anti-packets")
	// Unlimited buffers deliver more than 1-onion buffers.
	if lastY(plain) <= plain.Y[0] {
		t.Fatalf("delivery not improved by buffers: %v", plain.Y)
	}
	// Anti-packets never hurt, and help somewhere under pressure.
	helped := false
	for i := range anti.Y {
		if anti.Y[i] < plain.Y[i]-0.07 {
			t.Fatalf("anti-packets hurt at point %d: %v vs %v", i, anti.Y[i], plain.Y[i])
		}
		if anti.Y[i] > plain.Y[i]+0.03 {
			helped = true
		}
	}
	if !helped {
		t.Log("anti-packets made no measurable difference at this effort (acceptable)")
	}
}
