package experiment

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// stoppingStore wraps a checkpoint store and requests a drain after a
// fixed number of saves — the in-process analogue of hitting Ctrl-C
// partway through a run.
type stoppingStore struct {
	runner.ResultStore
	sup       *runner.Supervisor
	stopAfter int
	saves     int
}

func (s *stoppingStore) Save(batch string, trial int, data []byte) error {
	if err := s.ResultStore.Save(batch, trial, data); err != nil {
		return err
	}
	s.saves++
	if s.saves == s.stopAfter {
		s.sup.Stop()
	}
	return nil
}

func resumeOptions(seed uint64, workers int) Options {
	return Options{Seed: seed, Runs: 12, SecurityRuns: 40, TraceRuns: 4, Workers: workers}
}

// TestResumeByteIdenticalAcrossRegistry is the resume determinism
// contract over every figure and ablation spec: a run interrupted
// mid-trial-pool and resumed from its checkpoint — at a different
// worker count — produces a figure byte-identical to an uninterrupted
// run. Trial results are index-labeled, so the checkpointed set plus
// the freshly computed remainder is the same set an uninterrupted run
// computes, regardless of where the interruption landed.
func TestResumeByteIdenticalAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every spec three times")
	}
	specs := append(FigureSpecs(), AblationSpecs()...)
	for i := range specs {
		spec := specs[i]
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			opt := resumeOptions(1, 2)
			golden, err := scenario.NewEngine(opt).Run(&spec)
			if err != nil {
				t.Fatal(err)
			}
			goldenJSON, err := golden.JSON()
			if err != nil {
				t.Fatal(err)
			}

			key, err := scenario.RunKey(&spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), spec.ID+".ckpt")
			store, err := checkpoint.Create(path, key)
			if err != nil {
				t.Fatal(err)
			}
			// Interrupt partway through, at yet another worker count.
			iOpt := opt
			iOpt.Workers = 1
			sup := runner.NewSupervisor(0)
			eng := scenario.NewEngine(iOpt)
			// The smallest batch any spec runs at these options has 4
			// trials, so stopping after 3 saves always interrupts
			// mid-batch.
			eng.Supervise(sup, &stoppingStore{ResultStore: store, sup: sup, stopAfter: 3})
			if _, err := eng.Run(&spec); !errors.Is(err, runner.ErrInterrupted) {
				t.Fatalf("interrupted run: err = %v, want ErrInterrupted", err)
			}
			store.Close()

			resumed, err := checkpoint.Resume(path, key)
			if err != nil {
				t.Fatal(err)
			}
			defer resumed.Close()
			if resumed.Loaded() == 0 {
				t.Fatal("nothing checkpointed before the interruption; test is vacuous")
			}
			rOpt := opt
			rOpt.Workers = 4
			eng2 := scenario.NewEngine(rOpt)
			eng2.Supervise(runner.NewSupervisor(0), resumed)
			fig, err := eng2.Run(&spec)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			resumedJSON, err := fig.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(goldenJSON, resumedJSON) {
				t.Fatalf("resumed figure differs from uninterrupted golden (%d vs %d bytes)",
					len(resumedJSON), len(goldenJSON))
			}
		})
	}
}

// TestSupervisedUninterruptedMatchesPlain pins that merely attaching
// the supervision layer (no interruption, no checkpoint hits) does not
// change output: the supervised engine's figure is byte-identical to
// the plain engine's.
func TestSupervisedUninterruptedMatchesPlain(t *testing.T) {
	opt := resumeOptions(42, 2)
	spec := FigureSpecs()[0]
	plain, err := scenario.NewEngine(opt).Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	plainJSON, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}

	key, err := scenario.RunKey(&spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Create(filepath.Join(t.TempDir(), "s.ckpt"), key)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := scenario.NewEngine(opt)
	eng.Supervise(runner.NewSupervisor(0), store)
	fig, err := eng.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	supJSON, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainJSON, supJSON) {
		t.Fatal("supervised engine changed output with no interruption")
	}
}

// TestRunKeyDiscriminates pins what the checkpoint key must and must
// not distinguish: seed, spec identity and effort options change the
// key; the worker count does not (resume at any -workers value).
func TestRunKeyDiscriminates(t *testing.T) {
	specs := FigureSpecs()
	base := resumeOptions(1, 2)
	k0, err := scenario.RunKey(&specs[0], base)
	if err != nil {
		t.Fatal(err)
	}

	w := base
	w.Workers = 7
	kw, err := scenario.RunKey(&specs[0], w)
	if err != nil {
		t.Fatal(err)
	}
	if k0 != kw {
		t.Fatal("worker count changed the checkpoint key; resume would be refused across -workers values")
	}

	diffs := map[string]Options{}
	s := base
	s.Seed = 2
	diffs["seed"] = s
	r := base
	r.Runs++
	diffs["runs"] = r
	sr := base
	sr.SecurityRuns++
	diffs["security runs"] = sr
	f := base
	f.FaultRate = 0.1
	diffs["fault rate"] = f
	for name, opt := range diffs {
		k, err := scenario.RunKey(&specs[0], opt)
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("%s change left the checkpoint key unchanged", name)
		}
	}

	k1, err := scenario.RunKey(&specs[1], base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k0 {
		t.Fatal("two different specs share a checkpoint key")
	}
}

// TestResumeRefusesForeignCheckpoint pins the loud-rejection behavior
// end to end: a checkpoint written under one seed must not resume a
// run at another.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	spec := FigureSpecs()[0]
	path := filepath.Join(t.TempDir(), "x.ckpt")
	k1, err := scenario.RunKey(&spec, resumeOptions(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Create(path, k1)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	k2, err := scenario.RunKey(&spec, resumeOptions(42, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Resume(path, k2); !errors.Is(err, checkpoint.ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
}

// TestQuarantineSurfacesThroughEngine pins the end-to-end quarantine
// path: a spec with a trial that panics yields a QuarantineError
// naming the batch and trial, the healthy trials still run, and the
// supervisor records the failure for the manifest.
func TestQuarantineSurfacesThroughEngine(t *testing.T) {
	var ran int64
	scenario.RegisterCustom("test-panicking", func(e *scenario.Engine, s *scenario.Scenario) ([]stats.Series, []string, error) {
		_, err := scenario.Trials(e, s.ID+"/panicky", 8, func(i int) (float64, error) {
			atomic.AddInt64(&ran, 1)
			if i == 4 {
				panic("injected trial failure")
			}
			return float64(i), nil
		})
		if err != nil {
			return nil, nil, err
		}
		return []stats.Series{{Name: "x", X: []float64{0}, Y: []float64{0}, CI: []float64{0}}}, nil, nil
	})
	spec := scenario.Scenario{
		ID: "quarantine-e2e", Title: "t", XLabel: "x", YLabel: "y",
		Measure: scenario.Measure{Kind: scenario.KindCustom, Custom: "test-panicking"},
	}
	sup := runner.NewSupervisor(0)
	eng := scenario.NewEngine(resumeOptions(1, 2))
	eng.Supervise(sup, nil)
	_, err := eng.Run(&spec)
	var qe *runner.QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	te := qe.Trials[0]
	if te.Trial != 4 || te.Batch != "quarantine-e2e/panicky" {
		t.Fatalf("quarantined = %+v, want trial 4 of quarantine-e2e/panicky", te)
	}
	if got := atomic.LoadInt64(&ran); got != 8 {
		t.Fatalf("%d trials ran, want all 8 despite the panic", got)
	}
	if q := sup.Quarantined(); len(q) != 1 {
		t.Fatalf("supervisor recorded %d quarantines, want 1", len(q))
	}
}
