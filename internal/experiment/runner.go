package experiment

import "repro/internal/runner"

// MapTrials runs trial(i) for every index in [0, trials) on a bounded
// pool of worker goroutines and returns the per-trial results in trial
// order. It delegates to runner.MapTrials — see that package for the
// determinism and error contracts. The alias is kept here because the
// figure generators and external callers (cmd/sweep, node tests) have
// always reached the pool through this package.
func MapTrials[T any](workers, trials int, trial func(i int) (T, error)) ([]T, error) {
	return runner.MapTrials(workers, trials, trial)
}
