package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestObsByteIdentical enforces the observability layer's central
// invariant: an instrumented run — collector installed, manifest
// written — produces byte-identical figure JSON to an uninstrumented
// run, across seeds {1, 42} x workers {1, 4}. Instrumentation draws
// no RNG state and changes no control flow, so the only difference
// between the two runs may be the manifest file on disk.
func TestObsByteIdentical(t *testing.T) {
	if obs.Active() != nil {
		t.Fatal("a collector is already installed; test requires the disabled default state")
	}
	gen := func(t *testing.T, opt Options) []byte {
		t.Helper()
		fig, err := Fig04(opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := fig.Validate(); err != nil {
			t.Fatal(err)
		}
		js, err := fig.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	for _, seed := range []uint64{1, 42} {
		for _, workers := range []int{1, 4} {
			opt := Options{Seed: seed, Runs: 40, SecurityRuns: 100, TraceRuns: 5, Workers: workers}

			plain := gen(t, opt)

			// Instrumented run: the full command lifecycle, including
			// the manifest write.
			manifest := filepath.Join(t.TempDir(), "manifest.json")
			rf := &obs.RunFlags{ManifestPath: manifest, Profiles: &obs.Profiles{}}
			run, err := rf.Begin("experiment-test", nil)
			if err != nil {
				t.Fatal(err)
			}
			if obs.Active() == nil {
				t.Fatal("Begin with a manifest path did not install a collector")
			}
			instrumented := gen(t, opt)
			if err := run.Finish(opt, seed, workers, 0); err != nil {
				t.Fatal(err)
			}
			if obs.Active() != nil {
				t.Fatal("Finish left a collector installed")
			}

			if !bytes.Equal(plain, instrumented) {
				t.Errorf("seed %d workers %d: instrumented figure JSON differs from uninstrumented (%d vs %d bytes)",
					seed, workers, len(plain), len(instrumented))
			}

			raw, err := os.ReadFile(manifest)
			if err != nil {
				t.Fatal(err)
			}
			m, err := obs.ValidateManifestBytes(raw)
			if err != nil {
				t.Fatalf("seed %d workers %d: manifest invalid: %v", seed, workers, err)
			}
			// The instrumented run must actually have observed the
			// simulation: fig04 drives the abstract sampler.
			for _, name := range []string{"routing.contacts", "routing.handoffs", "experiment.trials"} {
				v, ok := m.Counter(name)
				if !ok {
					t.Fatalf("manifest missing counter %q", name)
				}
				if v == 0 {
					t.Errorf("seed %d workers %d: counter %q is zero; instrumentation not reaching the hot path", seed, workers, name)
				}
			}
		}
	}
}
