package experiment

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// fastOptions keeps unit-test runtime low; the statistical fidelity of
// each figure is covered by the shape tests below and by the cross
// checks in the adversary/routing packages.
func fastOptions() Options {
	return Options{Seed: 1, Runs: 60, SecurityRuns: 400, TraceRuns: 15}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Options{Seed: 1, Runs: 0, SecurityRuns: 1, TraceRuns: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero runs")
	}
	if _, err := Fig04(bad); err == nil {
		t.Fatal("generator accepted invalid options")
	}
	negWorkers := Options{Seed: 1, Runs: 1, SecurityRuns: 1, TraceRuns: 1, Workers: -1}
	if err := negWorkers.Validate(); err == nil {
		t.Fatal("accepted negative workers")
	}
	if _, err := Fig04(negWorkers); err == nil {
		t.Fatal("generator accepted negative workers")
	}
	for _, w := range []int{0, 1, 8} {
		ok := Options{Seed: 1, Runs: 1, SecurityRuns: 1, TraceRuns: 1, Workers: w}
		if err := ok.Validate(); err != nil {
			t.Fatalf("rejected workers=%d: %v", w, err)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg, ids := Registry()
	if len(ids) != 16 {
		t.Fatalf("expected 16 figures (4-19), got %d", len(ids))
	}
	for i, want := range []string{
		"fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
	} {
		if ids[i] != want {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want)
		}
		if reg[want] == nil {
			t.Fatalf("no generator for %s", want)
		}
	}
}

// runFigure generates a figure with fast options and validates it.
func runFigure(t *testing.T, gen Generator) *Figure {
	t.Helper()
	fig, err := gen(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	return fig
}

func seriesMean(s *stats.Series) float64 {
	return stats.Mean(s.Y)
}

func lastY(s *stats.Series) float64 { return s.Y[len(s.Y)-1] }

func mustSeries(t *testing.T, f *Figure, name string) *stats.Series {
	t.Helper()
	s, ok := f.SeriesByName(name)
	if !ok {
		names := make([]string, len(f.Series))
		for i := range f.Series {
			names[i] = f.Series[i].Name
		}
		t.Fatalf("series %q not in %v", name, names)
	}
	return s
}

func TestFig04Shape(t *testing.T) {
	fig := runFigure(t, Fig04)
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Larger groups deliver more (both in analysis and simulation).
	if seriesMean(mustSeries(t, fig, "Simulation: g=10")) <= seriesMean(mustSeries(t, fig, "Simulation: g=1")) {
		t.Error("simulation: g=10 does not beat g=1")
	}
	if seriesMean(mustSeries(t, fig, "Analysis: g=10")) <= seriesMean(mustSeries(t, fig, "Analysis: g=1")) {
		t.Error("analysis: g=10 does not beat g=1")
	}
	// Saturation at the longest deadline for the biggest group.
	if lastY(mustSeries(t, fig, "Simulation: g=10")) < 0.8 {
		t.Errorf("g=10 did not saturate: %v", lastY(mustSeries(t, fig, "Simulation: g=10")))
	}
}

func TestFig05Shape(t *testing.T) {
	fig := runFigure(t, Fig05)
	// Fewer onion routers deliver faster.
	if seriesMean(mustSeries(t, fig, "Simulation: 3 onions")) <= seriesMean(mustSeries(t, fig, "Simulation: 10 onions")) {
		t.Error("simulation: K=3 does not beat K=10")
	}
	if seriesMean(mustSeries(t, fig, "Analysis: 3 onions")) <= seriesMean(mustSeries(t, fig, "Analysis: 10 onions")) {
		t.Error("analysis: K=3 does not beat K=10")
	}
}

func TestFig06Shape(t *testing.T) {
	fig := runFigure(t, Fig06)
	// Traceable rate grows with the compromised fraction...
	sim := mustSeries(t, fig, "Simulation: 3 onions")
	if lastY(sim) <= sim.Y[0] {
		t.Error("traceable rate not increasing with c/n")
	}
	// ... and shrinks with more onion routers.
	if seriesMean(mustSeries(t, fig, "Simulation: 10 onions")) >= seriesMean(mustSeries(t, fig, "Simulation: 3 onions")) {
		t.Error("K=10 not below K=3")
	}
	// Analysis tracks simulation closely (the paper's headline claim).
	ana := mustSeries(t, fig, "Analysis: 3 onions")
	for i := range sim.Y {
		if d := sim.Y[i] - ana.Y[i]; d > 0.05 || d < -0.05 {
			t.Errorf("point %d: |sim-analysis| = %v", i, d)
		}
	}
}

func TestFig07Shape(t *testing.T) {
	fig := runFigure(t, Fig07)
	// More compromised nodes -> more traceable at any K.
	if seriesMean(mustSeries(t, fig, "Simulation: c/n=30%")) <= seriesMean(mustSeries(t, fig, "Simulation: c/n=10%")) {
		t.Error("c/n=30% not above c/n=10%")
	}
	// Traceable rate decreases in K.
	s := mustSeries(t, fig, "Simulation: c/n=20%")
	if s.Y[len(s.Y)-1] >= s.Y[0] {
		t.Error("traceable rate not decreasing in K")
	}
}

func TestFig08Shape(t *testing.T) {
	fig := runFigure(t, Fig08)
	// Anonymity decreases with c/n, increases with g.
	s1 := mustSeries(t, fig, "Simulation: g=1")
	if lastY(s1) >= s1.Y[0] {
		t.Error("anonymity not decreasing with c/n")
	}
	if seriesMean(mustSeries(t, fig, "Simulation: g=10")) <= seriesMean(mustSeries(t, fig, "Simulation: g=1")) {
		t.Error("g=10 not above g=1")
	}
	// Analysis ~ simulation ("very high accuracy", Sec. V-B).
	for _, g := range []string{"g=1", "g=5", "g=10"} {
		sim := mustSeries(t, fig, "Simulation: "+g)
		ana := mustSeries(t, fig, "Analysis: "+g)
		for i := range sim.Y {
			if d := sim.Y[i] - ana.Y[i]; d > 0.06 || d < -0.06 {
				t.Errorf("%s point %d: |sim-analysis| = %v", g, i, d)
			}
		}
	}
}

func TestFig09Shape(t *testing.T) {
	fig := runFigure(t, Fig09)
	s := mustSeries(t, fig, "Simulation: c/n=10%")
	if lastY(s) <= s.Y[0] {
		t.Error("anonymity not increasing with g")
	}
	if seriesMean(mustSeries(t, fig, "Simulation: c/n=30%")) >= seriesMean(mustSeries(t, fig, "Simulation: c/n=10%")) {
		t.Error("c/n=30% not below c/n=10%")
	}
}

func TestFig10Shape(t *testing.T) {
	fig := runFigure(t, Fig10)
	if seriesMean(mustSeries(t, fig, "Simulation: L=5")) < seriesMean(mustSeries(t, fig, "Simulation: L=1")) {
		t.Error("L=5 not above L=1")
	}
	if seriesMean(mustSeries(t, fig, "Analysis: L=5")) <= seriesMean(mustSeries(t, fig, "Analysis: L=1")) {
		t.Error("analysis: L=5 not above L=1")
	}
}

func TestFig11Shape(t *testing.T) {
	fig := runFigure(t, Fig11)
	non := mustSeries(t, fig, "Non-anonymous")
	ana := mustSeries(t, fig, "Analysis")
	sim := mustSeries(t, fig, "Simulation")
	for i := range non.X {
		l := non.X[i]
		if non.Y[i] != 2*l {
			t.Errorf("non-anonymous cost at L=%v is %v", l, non.Y[i])
		}
		// Simulation is bounded by the analysis and costs more than the
		// non-anonymous baseline at L=1 (K+1 > 2 transmissions).
		if sim.Y[i] > ana.Y[i]+1e-9 {
			t.Errorf("L=%v: simulated cost %v exceeds bound %v", l, sim.Y[i], ana.Y[i])
		}
	}
	// Cost grows with L.
	if lastY(sim) <= sim.Y[0] {
		t.Error("simulated cost not increasing with L")
	}
}

func TestFig12Shape(t *testing.T) {
	fig := runFigure(t, Fig12)
	if seriesMean(mustSeries(t, fig, "Simulation: L=5")) >= seriesMean(mustSeries(t, fig, "Simulation: L=1")) {
		t.Error("anonymity with L=5 not below L=1")
	}
	if seriesMean(mustSeries(t, fig, "Analysis: L=5")) >= seriesMean(mustSeries(t, fig, "Analysis: L=1")) {
		t.Error("analysis: anonymity with L=5 not below L=1")
	}
}

func TestFig13Shape(t *testing.T) {
	fig := runFigure(t, Fig13)
	s := mustSeries(t, fig, "Simulation: L=1")
	if lastY(s) <= s.Y[0] {
		t.Error("anonymity not increasing with g")
	}
	if seriesMean(mustSeries(t, fig, "Simulation: L=3")) >= seriesMean(mustSeries(t, fig, "Simulation: L=1")) {
		t.Error("L=3 not below L=1")
	}
}

func TestFig14Shape(t *testing.T) {
	fig := runFigure(t, Fig14)
	sim := mustSeries(t, fig, "Simulation: L=1")
	// Cambridge is dense: the delivery rate saturates by 1800 s.
	if lastY(sim) < 0.85 {
		t.Errorf("Cambridge delivery did not saturate: %v", lastY(sim))
	}
	for i := 1; i < len(sim.Y); i++ {
		if sim.Y[i] < sim.Y[i-1]-1e-9 {
			t.Error("delivery rate not monotone in deadline")
		}
	}
}

func TestFig15And16Shapes(t *testing.T) {
	f15 := runFigure(t, Fig15)
	sim := mustSeries(t, f15, "Simulation: L=1")
	ana := mustSeries(t, f15, "Analysis: L=1")
	for i := range sim.Y {
		if d := sim.Y[i] - ana.Y[i]; d > 0.06 || d < -0.06 {
			t.Errorf("fig15 point %d: |sim-analysis| = %v", i, d)
		}
	}
	f16 := runFigure(t, Fig16)
	s := mustSeries(t, f16, "Simulation: L=1")
	if lastY(s) >= s.Y[0] {
		t.Error("fig16 anonymity not decreasing")
	}
}

func TestFig17Shape(t *testing.T) {
	fig := runFigure(t, Fig17)
	if !fig.LogX {
		t.Error("Infocom figure should use a log x-axis")
	}
	sim := mustSeries(t, fig, "Simulation: L=1")
	// A plateau exists: somewhere in the middle of the sweep the rate
	// stops increasing for at least two consecutive doublings while
	// not yet saturated.
	plateau := false
	for i := 2; i+1 < len(sim.Y); i++ {
		if sim.Y[i] > 0.05 && sim.Y[i] < 0.95 && sim.Y[i+1]-sim.Y[i-1] < 0.02 {
			plateau = true
		}
	}
	if !plateau {
		t.Errorf("no diurnal plateau in Infocom delivery curve: %v", sim.Y)
	}
	// Delivery eventually improves well beyond the early values.
	if lastY(sim) <= sim.Y[0]+0.2 {
		t.Errorf("delivery did not grow across the sweep: %v", sim.Y)
	}
}

func TestFig18And19Shapes(t *testing.T) {
	f18 := runFigure(t, Fig18)
	sim := mustSeries(t, f18, "Simulation: L=1")
	ana := mustSeries(t, f18, "Analysis: L=1")
	for i := range sim.Y {
		if d := sim.Y[i] - ana.Y[i]; d > 0.06 || d < -0.06 {
			t.Errorf("fig18 point %d: |sim-analysis| = %v", i, d)
		}
	}
	f19 := runFigure(t, Fig19)
	if seriesMean(mustSeries(t, f19, "Simulation: L=5")) >= seriesMean(mustSeries(t, f19, "Simulation: L=1")) {
		t.Error("fig19: L=5 anonymity not below L=1")
	}
}

func TestCSVOutput(t *testing.T) {
	fig := &Figure{
		ID: "figXX", Title: "t", XLabel: "x", YLabel: "y",
		Series: []stats.Series{{Name: "a,b", X: []float64{1}, Y: []float64{2}, CI: []float64{0.1}}},
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "series,x,y,ci\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, `"a,b",1,2,0.1`) {
		t.Fatalf("csv body: %q", csv)
	}
}

func TestRenderOutput(t *testing.T) {
	fig := &Figure{
		ID: "fig99", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []stats.Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
		Notes: []string{"a note"},
	}
	out := fig.Render(40, 10)
	for _, want := range []string{"FIG99", "a = up", "b = down", "note: a note", "(x)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	empty := &Figure{ID: "e"}
	if got := empty.Render(40, 10); !strings.Contains(got, "empty") {
		t.Fatalf("empty render: %q", got)
	}
}

func TestRenderLogX(t *testing.T) {
	fig := &Figure{
		ID: "figL", Title: "log", XLabel: "x", LogX: true,
		Series: []stats.Series{{Name: "s", X: []float64{16, 256, 4096}, Y: []float64{0, 0.5, 1}}},
	}
	out := fig.Render(40, 8)
	if !strings.Contains(out, "16") {
		t.Fatalf("log ticks missing:\n%s", out)
	}
}

func TestFigureValidateCatchesEmpty(t *testing.T) {
	f := &Figure{ID: "f"}
	if err := f.Validate(); err == nil {
		t.Fatal("empty figure validated")
	}
	f.Series = []stats.Series{{Name: "s"}}
	if err := f.Validate(); err == nil {
		t.Fatal("empty series validated")
	}
}
