package experiment

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// TestEverySpecRoundTripsThroughJSON: each registry Scenario must
// survive Marshal → ParseSpecs unchanged, so every built-in figure is
// also expressible as an external -scenario spec file.
func TestEverySpecRoundTripsThroughJSON(t *testing.T) {
	specs := append(FigureSpecs(), AblationSpecs()...)
	if len(specs) != 24 {
		t.Fatalf("registry holds %d specs, want 24", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			data, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := scenario.ParseSpecs(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(parsed) != 1 {
				t.Fatalf("parsed %d specs", len(parsed))
			}
			if !reflect.DeepEqual(parsed[0], spec) {
				t.Errorf("round trip drifted:\n got %+v\nwant %+v", parsed[0], spec)
			}
		})
	}
}

// TestParsedSpecMatchesRegistry: a spec that went through JSON
// produces byte-identical output to the registry generator — the
// external spec path is not a near-copy of the internal one, it IS
// the internal one.
func TestParsedSpecMatchesRegistry(t *testing.T) {
	opt := Options{Seed: 7, Runs: 25, SecurityRuns: 50, TraceRuns: 5, Workers: 2}
	for _, id := range []string{"fig04", "fig08", "fig11"} {
		var spec *scenario.Scenario
		for _, s := range FigureSpecs() {
			if s.ID == id {
				s := s
				spec = &s
				break
			}
		}
		if spec == nil {
			t.Fatalf("spec %s missing", id)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := scenario.ParseSpecs(data)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON, err := scenario.NewEngine(opt).Run(&parsed[0])
		if err != nil {
			t.Fatal(err)
		}
		fromRegistry, err := Generate(id, opt)
		if err != nil {
			t.Fatal(err)
		}
		a, err := fromJSON.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := fromRegistry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: JSON-parsed spec output differs from registry output", id)
		}
	}
}

// TestSpecsAreCopies: mutating a returned spec must not poison the
// registry.
func TestSpecsAreCopies(t *testing.T) {
	specs := FigureSpecs()
	specs[0].ID = "mutated"
	specs[0].Series.Values[0] = -99
	again := FigureSpecs()
	if again[0].ID == "mutated" || again[0].Series.Values[0] == -99 {
		t.Fatal("FigureSpecs shares state across calls")
	}
	abl := AblationSpecs()
	abl[0].ID = "mutated"
	if AblationSpecs()[0].ID == "mutated" {
		t.Fatal("AblationSpecs shares state across calls")
	}
}
