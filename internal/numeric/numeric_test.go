package numeric

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHypoexpCoefficientsSumToOne(t *testing.T) {
	cases := [][]float64{
		{1},
		{1, 2},
		{0.5, 1.5, 3},
		{0.1, 0.2, 0.4, 0.8, 1.6},
	}
	for _, rates := range cases {
		coef, err := HypoexpCoefficients(rates)
		if err != nil {
			t.Fatalf("rates %v: %v", rates, err)
		}
		sum := 0.0
		for _, a := range coef {
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("rates %v: coefficients sum to %v, want 1", rates, sum)
		}
	}
}

func TestHypoexpCoefficientsErrors(t *testing.T) {
	if _, err := HypoexpCoefficients(nil); err == nil {
		t.Fatal("no error for empty rates")
	}
	if _, err := HypoexpCoefficients([]float64{1, -2}); err == nil {
		t.Fatal("no error for negative rate")
	}
	if _, err := HypoexpCoefficients([]float64{1, 1}); err == nil {
		t.Fatal("no error for duplicate rates")
	}
	if _, err := HypoexpCoefficients([]float64{1, 1 + 1e-9}); err == nil {
		t.Fatal("no error for nearly-equal rates")
	}
}

func TestHypoexpSingleRateIsExponential(t *testing.T) {
	for _, tt := range []float64{0.1, 1, 5, 20} {
		got, err := HypoexpCDF([]float64{0.7}, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-0.7*tt)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("t=%v: got %v want %v", tt, got, want)
		}
	}
}

func TestHypoexpEqualRatesMatchesErlang(t *testing.T) {
	// Equal rates force the uniformization fallback, which must agree
	// with the Erlang closed form.
	for _, k := range []int{2, 3, 5} {
		for _, tt := range []float64{0.5, 2, 10, 40} {
			rates := make([]float64, k)
			for i := range rates {
				rates[i] = 0.3
			}
			got, err := HypoexpCDF(rates, tt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ErlangCDF(k, 0.3, tt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-8 {
				t.Fatalf("k=%d t=%v: uniformization %v vs Erlang %v", k, tt, got, want)
			}
		}
	}
}

func TestHypoexpDistinctRatesBothMethodsAgree(t *testing.T) {
	rates := []float64{0.2, 0.5, 1.1, 2.3}
	for _, tt := range []float64{0.1, 1, 3, 8, 25} {
		closed, err := HypoexpCDF(rates, tt)
		if err != nil {
			t.Fatal(err)
		}
		unif := hypoexpUniformization(rates, tt)
		if math.Abs(closed-unif) > 1e-7 {
			t.Fatalf("t=%v: closed %v vs uniformization %v", tt, closed, unif)
		}
	}
}

func TestHypoexpMonteCarlo(t *testing.T) {
	// The CDF must match the empirical distribution of a sum of
	// independent exponentials.
	rates := []float64{0.4, 0.9, 1.7}
	s := rng.New(99)
	const n = 100000
	samples := make([]float64, n)
	for i := range samples {
		v := 0.0
		for _, r := range rates {
			v += s.Exp(r)
		}
		samples[i] = v
	}
	for _, tt := range []float64{1, 3, 6, 12} {
		hits := 0
		for _, v := range samples {
			if v <= tt {
				hits++
			}
		}
		emp := float64(hits) / n
		got, err := HypoexpCDF(rates, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-emp) > 0.01 {
			t.Fatalf("t=%v: CDF %v vs empirical %v", tt, got, emp)
		}
	}
}

func TestHypoexpCDFMonotoneAndBounded(t *testing.T) {
	s := rng.New(5)
	f := func(a, b, c uint16) bool {
		rates := []float64{
			0.01 + float64(a%1000)/100,
			0.013 + float64(b%1000)/97,
			0.017 + float64(c%1000)/89,
		}
		prev := 0.0
		for tt := 0.0; tt <= 50; tt += 2.5 {
			v, err := HypoexpCDF(rates, tt+s.Float64()*0) // deterministic grid
			if err != nil {
				return false
			}
			if v < prev-1e-9 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHypoexpCDFNonPositiveTime(t *testing.T) {
	v, err := HypoexpCDF([]float64{1, 2}, -3)
	if err != nil || v != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", v, err)
	}
}

func TestErlangCDFAgainstIncompleteGamma(t *testing.T) {
	// Erlang(1, r) is Exp(r).
	got, err := ErlangCDF(1, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-3)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestErlangErrors(t *testing.T) {
	if _, err := ErlangCDF(0, 1, 1); err == nil {
		t.Fatal("no error for k=0")
	}
	if _, err := ErlangCDF(2, 0, 1); err == nil {
		t.Fatal("no error for rate=0")
	}
}

func TestLogFactorial(t *testing.T) {
	fact := 1.0
	for n := 0; n <= 20; n++ {
		if n > 0 {
			fact *= float64(n)
		}
		if math.Abs(LogFactorial(n)-math.Log(fact)) > 1e-9 {
			t.Fatalf("LogFactorial(%d) = %v, want %v", n, LogFactorial(n), math.Log(fact))
		}
	}
}

func TestLogFallingFactorial(t *testing.T) {
	// 10*9*8 = 720
	if v := LogFallingFactorial(10, 3); math.Abs(v-math.Log(720)) > 1e-9 {
		t.Fatalf("got %v want %v", v, math.Log(720))
	}
	if v := LogFallingFactorial(5, 0); v != 0 {
		t.Fatalf("k=0 should be 0, got %v", v)
	}
}

func TestLogChoose(t *testing.T) {
	// C(10, 4) = 210
	if v := LogChoose(10, 4); math.Abs(v-math.Log(210)) > 1e-9 {
		t.Fatalf("got %v want %v", v, math.Log(210))
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 4, 11} {
		for _, p := range []float64{0, 0.2, 0.5, 0.9, 1} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				v := BinomialPMF(n, k, p)
				if v < 0 || v > 1 {
					t.Fatalf("PMF(%d,%d,%v) = %v out of range", n, k, p, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("n=%d p=%v: PMF sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFMean(t *testing.T) {
	n, p := 12, 0.3
	mean := 0.0
	for k := 0; k <= n; k++ {
		mean += float64(k) * BinomialPMF(n, k, p)
	}
	if math.Abs(mean-float64(n)*p) > 1e-9 {
		t.Fatalf("mean %v, want %v", mean, float64(n)*p)
	}
}

func TestBinomialPMFOutOfRange(t *testing.T) {
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Fatal("out-of-range k should have zero probability")
	}
}

func TestStirlingLogFactorialApproximation(t *testing.T) {
	// Relative error of n ln n - n against ln n! shrinks as n grows.
	for _, n := range []float64{100, 1000, 10000} {
		exact, _ := math.Lgamma(n + 1)
		approx := StirlingLogFactorial(n)
		rel := math.Abs(exact-approx) / exact
		if rel > 0.02 {
			t.Fatalf("n=%v: relative error %v too large", n, rel)
		}
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Fatalf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatalf("Log2(8) = %v", Log2(8))
	}
	if Log2(0) != 0 || Log2(-1) != 0 {
		t.Fatal("Log2 of non-positive should be 0")
	}
}

func BenchmarkHypoexpCDFClosed(b *testing.B) {
	rates := []float64{0.2, 0.5, 1.1, 2.3}
	for i := 0; i < b.N; i++ {
		_, _ = HypoexpCDF(rates, 7)
	}
}

func BenchmarkHypoexpCDFUniformization(b *testing.B) {
	rates := []float64{0.3, 0.3, 0.3, 0.3}
	for i := 0; i < b.N; i++ {
		_, _ = HypoexpCDF(rates, 7)
	}
}
