// Package numeric provides the numerical building blocks of the paper's
// analytical models: a numerically stable hypoexponential CDF (the
// "opportunistic onion path" distribution of Eqs. 5-6), log-factorials
// and binomial terms (traceable rate, Eq. 11; anonymity, Eq. 15), and
// the Stirling approximation used by Eq. 19.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoRates is returned when a distribution is requested over an empty
// rate vector.
var ErrNoRates = errors.New("numeric: at least one rate is required")

// relGapThreshold is the minimum relative separation between two rates
// below which the product-form coefficients of Eq. 5 become unstable
// and the uniformization fallback is used instead.
const relGapThreshold = 1e-6

// coefMagLimit caps the product-form coefficient magnitude HypoexpCDF
// will evaluate through Eq. 6. The closed form's absolute error is
// roughly n * maxAbs(A_k) * machine epsilon (the sum cancels huge
// alternating terms down to a value in [0,1]), so admitting
// coefficients up to 1e5 keeps it under ~1e-10 — comfortably inside
// the 1e-9 agreement bound the switchover property test enforces. The
// previous limit of 1e12 let near-threshold vectors lose up to ~1e-4
// of absolute accuracy. Pairwise separation alone cannot guarantee
// this: several moderately close pairs multiply into one huge
// coefficient, which is exactly what this magnitude check catches.
const coefMagLimit = 1e5

// HypoexpCoefficients returns the coefficients A_k of Eq. 5,
//
//	A_k = prod_{j != k} lambda_j / (lambda_j - lambda_k),
//
// for the hypoexponential distribution with the given per-hop rates.
// An error is returned if any rate is non-positive or if two rates are
// too close for the product form to be numerically meaningful; callers
// should then evaluate the CDF via HypoexpCDF, which falls back to a
// stable method automatically.
func HypoexpCoefficients(rates []float64) ([]float64, error) {
	if len(rates) == 0 {
		return nil, ErrNoRates
	}
	for _, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("numeric: invalid rate %v", r)
		}
	}
	if !ratesWellSeparated(rates) {
		return nil, errors.New("numeric: rates too close for product-form coefficients")
	}
	coef := make([]float64, len(rates))
	for k, lk := range rates {
		a := 1.0
		for j, lj := range rates {
			if j == k {
				continue
			}
			a *= lj / (lj - lk)
		}
		coef[k] = a
	}
	return coef, nil
}

func ratesWellSeparated(rates []float64) bool {
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	for i := 1; i < len(sorted); i++ {
		gap := sorted[i] - sorted[i-1]
		if gap <= relGapThreshold*sorted[i] {
			return false
		}
	}
	return true
}

// HypoexpEval is a reusable evaluator for the hypoexponential CDF at
// one fixed rate vector. NewHypoexpEval performs the validation and
// the product-form coefficient analysis (Eq. 5) once; CDF then
// evaluates P[X <= t] for any number of deadlines without repeating
// that work. HypoexpCDF is implemented on top of this type, so a
// cached evaluator returns bit-identical values to the one-shot call
// by construction.
type HypoexpEval struct {
	rates []float64
	// coef holds the Eq. 5 coefficients when the closed form of Eq. 6
	// is numerically safe (rates well separated, magnitudes below
	// coefMagLimit); nil means CDF uses the uniformization fallback.
	coef []float64
}

// NewHypoexpEval validates the rate vector and decides once between
// the closed form and the uniformization fallback. The rates are
// copied, so the caller may reuse its slice.
func NewHypoexpEval(rates []float64) (*HypoexpEval, error) {
	if len(rates) == 0 {
		return nil, ErrNoRates
	}
	for _, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("numeric: invalid rate %v", r)
		}
	}
	e := &HypoexpEval{rates: append([]float64(nil), rates...)}
	if coef, err := HypoexpCoefficients(e.rates); err == nil {
		// Guard: the product form can still lose precision when the
		// coefficients are huge with alternating signs. Detect by
		// magnitude and fall back (see coefMagLimit).
		var maxAbs float64
		for _, a := range coef {
			maxAbs = math.Max(maxAbs, math.Abs(a))
		}
		if maxAbs < coefMagLimit {
			e.coef = coef
		}
	}
	return e, nil
}

// CDF returns P[X <= t] for the evaluator's rate vector; t <= 0
// yields 0.
func (e *HypoexpEval) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if e.coef != nil {
		f := 0.0
		for k, a := range e.coef {
			f += a * (1 - math.Exp(-e.rates[k]*t))
		}
		return Clamp01(f)
	}
	return hypoexpUniformization(e.rates, t)
}

// HypoexpCDF returns P[X <= t] for X hypoexponential with the given
// rates: the probability that a message traverses all hops within t
// (Eq. 6 with the 1-sum identity). Rates must be positive; t < 0
// yields 0. When rates are distinct the closed form
//
//	F(t) = sum_k A_k (1 - e^{-lambda_k t})
//
// is used; when rates (nearly) coincide the evaluation falls back to
// uniformization of the underlying absorbing Markov chain, which is
// unconditionally stable.
func HypoexpCDF(rates []float64, t float64) (float64, error) {
	e, err := NewHypoexpEval(rates)
	if err != nil {
		return 0, err
	}
	return e.CDF(t), nil
}

// hypoexpUniformization evaluates the hypoexponential CDF via
// uniformization. The absorbing CTMC has phases 1..n with rate
// lambda_k out of phase k into phase k+1 (phase n+1 absorbing).
// With uniformization constant q >= max lambda, the DTMC jumps from
// phase k to k+1 with probability lambda_k/q and self-loops otherwise;
// F(t) = sum_m Poisson(m; qt) * P[absorbed within m jumps].
func hypoexpUniformization(rates []float64, t float64) float64 {
	n := len(rates)
	q := 0.0
	for _, r := range rates {
		q = math.Max(q, r)
	}
	q *= 1.0000001 // keep self-loop probability strictly positive
	qt := q * t

	// probs[k] = probability the chain currently sits in phase k
	// (0-indexed); absorbed = probability it has been absorbed.
	probs := make([]float64, n)
	next := make([]float64, n)
	probs[0] = 1
	absorbed := 0.0

	// Poisson weights computed iteratively in log space to survive
	// large qt.
	logW := -qt // log Poisson(0; qt)
	f := 0.0
	// Truncation: stop once the remaining Poisson tail cannot change
	// the result by more than eps. Conservative bound: remaining mass
	// times 1.
	const eps = 1e-13
	cum := 0.0
	for m := 0; ; m++ {
		if m > 0 {
			logW += math.Log(qt) - math.Log(float64(m))
		}
		w := math.Exp(logW)
		cum += w
		f += w * absorbed
		if cum > 1-eps && m > int(qt) {
			break
		}
		if m > int(qt)+200+int(20*math.Sqrt(qt+1)) {
			break
		}
		// Advance the DTMC one jump.
		for k := 0; k < n; k++ {
			p := rates[k] / q
			stay := probs[k] * (1 - p)
			move := probs[k] * p
			next[k] += stay
			if k+1 < n {
				next[k+1] += move
			} else {
				absorbed += move
			}
		}
		probs, next = next, probs
		for k := range next {
			next[k] = 0
		}
	}
	// Account for the truncated tail: by then the chain is absorbed
	// with probability ~absorbed, so add tail mass times absorbed.
	f += (1 - math.Min(cum, 1)) * absorbed
	return Clamp01(f)
}

// ErlangCDF returns the CDF at t of an Erlang distribution with k
// phases of the given rate: the k-fold convolution of Exp(rate).
func ErlangCDF(k int, rate, t float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("numeric: Erlang requires k >= 1, got %d", k)
	}
	if rate <= 0 {
		return 0, fmt.Errorf("numeric: Erlang requires rate > 0, got %v", rate)
	}
	if t <= 0 {
		return 0, nil
	}
	// F(t) = 1 - e^{-rt} sum_{m<k} (rt)^m / m!
	rt := rate * t
	term := 1.0
	sum := 1.0
	for m := 1; m < k; m++ {
		term *= rt / float64(m)
		sum += term
	}
	return Clamp01(1 - math.Exp(-rt)*sum), nil
}

// LogFactorial returns ln(n!). It panics if n < 0.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("numeric: LogFactorial of negative n")
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// LogFallingFactorial returns ln(n! / (n-k)!) = ln(n (n-1) ... (n-k+1)),
// the log of the number of ordered selections of k items from n.
// It panics if k < 0 or k > n.
func LogFallingFactorial(n, k int) float64 {
	if k < 0 || k > n {
		panic("numeric: LogFallingFactorial requires 0 <= k <= n")
	}
	return LogFactorial(n) - LogFactorial(n-k)
}

// LogChoose returns ln C(n, k). It panics if k < 0 or k > n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		panic("numeric: LogChoose requires 0 <= k <= n")
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 1
		}
		return 0
	case p >= 1:
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// StirlingLogFactorial returns the paper's Stirling approximation
// ln(n!) ~= n ln(n) - n, used to derive Eq. 19.
func StirlingLogFactorial(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return n*math.Log(n) - n
}

// Clamp01 clamps v into [0, 1].
func Clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	case math.IsNaN(v):
		return 0
	default:
		return v
	}
}

// Log2 returns base-2 logarithm; 0 for x <= 0 (entropy convention
// 0*log 0 = 0 is handled by callers).
func Log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}
