package numeric

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// closedForm evaluates Eq. 6 through the product-form coefficients
// without the stability guards, so the tests can compare the two
// HypoexpCDF evaluation paths directly. The second return reports the
// largest coefficient magnitude — the quantity the switchover guards
// on.
func closedForm(t *testing.T, rates []float64, x float64) (float64, float64) {
	t.Helper()
	coef, err := HypoexpCoefficients(rates)
	if err != nil {
		t.Fatalf("coefficients for %v: %v", rates, err)
	}
	f, maxAbs := 0.0, 0.0
	for k, a := range coef {
		f += a * (1 - math.Exp(-rates[k]*x))
		maxAbs = math.Max(maxAbs, math.Abs(a))
	}
	return Clamp01(f), maxAbs
}

// switchoverTimes spans the interesting part of the CDF for a rate
// vector: around the mean sum(1/rate) plus deep tail points.
func switchoverTimes(rates []float64) []float64 {
	mean := 0.0
	for _, r := range rates {
		mean += 1 / r
	}
	return []float64{mean / 10, mean / 2, mean, 2 * mean, 5 * mean, 20 * mean}
}

// TestHypoexpSwitchoverAgreement is the audit the switchover was
// missing: whenever HypoexpCDF admits the product form (rates well
// separated AND coefficients under coefMagLimit), the closed form must
// agree with the uniformization fallback to 1e-9. Rate vectors whose
// tightest relative gap sits just above relGapThreshold pass the
// separation check but produce ~1/gap coefficients, so they must be
// caught by the magnitude guard instead — the test asserts that too.
func TestHypoexpSwitchoverAgreement(t *testing.T) {
	gaps := []float64{1.05e-6, 2e-6, 5e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	admitted, rejected := 0, 0
	for _, g := range gaps {
		// ratesWellSeparated compares gap <= threshold*larger, so scale
		// the perturbation to clear the check for the larger rate of
		// each adjacent pair.
		d := g * (1 + g) * 1.0000001
		for _, rates := range [][]float64{
			{1, 1 + d},
			{1, 1 + d, 2},
			{1, 1 + d, 2, 2 * (1 + d)},
			{0.2, 0.2 * (1 + d), 3, 7},
		} {
			if !ratesWellSeparated(rates) {
				t.Fatalf("gap %v: %v unexpectedly rejected by the separation guard", g, rates)
			}
			for _, x := range switchoverTimes(rates) {
				cf, maxAbs := closedForm(t, rates, x)
				if maxAbs >= coefMagLimit {
					rejected++
					continue // HypoexpCDF takes uniformization here
				}
				admitted++
				uni := hypoexpUniformization(rates, x)
				if diff := math.Abs(cf - uni); diff > 1e-9 {
					t.Errorf("gap %v rates %v t=%v: closed form %v vs uniformization %v (diff %.3g)",
						g, rates, x, cf, uni, diff)
				}
			}
		}
	}
	// The sweep must exercise both sides of the magnitude guard, or it
	// is not testing the switchover at all.
	if admitted == 0 || rejected == 0 {
		t.Fatalf("sweep did not straddle the switchover: %d admitted, %d rejected", admitted, rejected)
	}
}

// TestHypoexpGuardRejectsNearThresholdVectors pins the tightening of
// the coefficient-magnitude guard: a vector that passes the pairwise
// separation check with a gap just above relGapThreshold produces
// ~1/gap coefficients, so HypoexpCDF must route it through
// uniformization. Cross-checking against 50-digit arithmetic showed
// the closed form losing up to ~3e-9 at coefficient magnitudes of a
// few 1e5 (several moderately close pairs multiplying up) while
// uniformization stayed exact to ~1e-14; with the old 1e12 limit this
// test fails.
func TestHypoexpGuardRejectsNearThresholdVectors(t *testing.T) {
	rates := []float64{1, 1 + 2.2e-6, 2}
	if !ratesWellSeparated(rates) {
		t.Fatal("test vector rejected by the separation guard; expected the magnitude guard to do the work")
	}
	_, maxAbs := closedForm(t, rates, 1)
	if maxAbs < coefMagLimit {
		t.Fatalf("maxAbs = %v admits the closed form; the guard no longer covers near-threshold vectors", maxAbs)
	}
	// And the value HypoexpCDF returns must match uniformization
	// exactly, proving the fallback is the path actually taken.
	for _, x := range switchoverTimes(rates) {
		got, err := HypoexpCDF(rates, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := hypoexpUniformization(rates, x); got != want {
			t.Errorf("t=%v: HypoexpCDF = %v, uniformization = %v; closed form leaked through the guard", x, got, want)
		}
	}
}

// TestHypoexpSwitchoverContinuity checks that crossing the switchover
// adds no artificial jump: sweeping the gap g of {1, 1+g, 2} through
// the region where the coefficient magnitude 2/g crosses coefMagLimit,
// adjacent evaluations of HypoexpCDF may differ by no more than the
// genuine CDF change (measured through uniformization on both sides)
// plus the 1e-9 agreement bound.
func TestHypoexpSwitchoverContinuity(t *testing.T) {
	// Geometric sweep of the pair gap across the magnitude boundary at
	// g = 2/coefMagLimit = 2e-5.
	var gs []float64
	for g := 5e-6; g <= 1e-4; g *= 1.15 {
		gs = append(gs, g)
	}
	ratesFor := func(g float64) []float64 { return []float64{1, 1 + g, 2} }
	sawBothPaths := false
	for i := 1; i < len(gs); i++ {
		ra, rb := ratesFor(gs[i-1]), ratesFor(gs[i])
		_, ma := closedForm(t, ra, 1)
		_, mb := closedForm(t, rb, 1)
		if (ma >= coefMagLimit) != (mb >= coefMagLimit) {
			sawBothPaths = true // this pair straddles the switchover
		}
		for _, x := range switchoverTimes(ra) {
			fa, err := HypoexpCDF(ra, x)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := HypoexpCDF(rb, x)
			if err != nil {
				t.Fatal(err)
			}
			genuine := math.Abs(hypoexpUniformization(ra, x) - hypoexpUniformization(rb, x))
			if diff := math.Abs(fa - fb); diff > genuine+1e-9 {
				t.Errorf("g %v->%v t=%v: CDF jumps by %.3g across the switchover (genuine change %.3g)",
					gs[i-1], gs[i], x, diff, genuine)
			}
		}
	}
	if !sawBothPaths {
		t.Fatal("gap sweep never crossed the coefficient-magnitude boundary")
	}
}

// TestHypoexpSwitchoverRandomized is the property-test sweep: random
// rate vectors, half of them squeezed to a near-threshold pair gap,
// must evaluate identically (1e-9) through both paths whenever
// HypoexpCDF admits the closed form.
func TestHypoexpSwitchoverRandomized(t *testing.T) {
	s := rng.New(20260806).Split("hypoexp-switchover")
	admitted := 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + s.IntN(4)
		// Log-uniform base rates in [0.05, 20].
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.05 * math.Exp(s.Float64()*math.Log(400))
		}
		// Half the trials squeeze a pair to a near-threshold gap.
		if s.Float64() < 0.5 {
			i := s.IntN(n - 1)
			g := relGapThreshold * (1.1 + 10*s.Float64())
			rates[i+1] = rates[i] * (1 + g) * 1.000001
		}
		if !ratesWellSeparated(rates) {
			continue // closed form not admitted; nothing to compare
		}
		for _, x := range switchoverTimes(rates) {
			cf, maxAbs := closedForm(t, rates, x)
			if maxAbs >= coefMagLimit {
				continue // HypoexpCDF falls back here
			}
			admitted++
			uni := hypoexpUniformization(rates, x)
			if diff := math.Abs(cf - uni); diff > 1e-9 {
				t.Errorf("trial %d rates %v t=%v: closed %v vs uniformization %v (diff %.3g)",
					trial, rates, x, cf, uni, diff)
			}
		}
	}
	if admitted < 100 {
		t.Fatalf("only %d admitted comparisons; the sweep is not exercising the closed form", admitted)
	}
}
