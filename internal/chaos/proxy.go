package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is an in-process TCP proxy that forwards every accepted
// connection to a fixed target through this Chaos instance's
// connection profiles — the process-level analogue of the in-process
// chaos dialer, for tests that run real daemons (cmd/dtnnode against a
// turbulent directory). A blacked-out proxy refuses connections
// outright, simulating a dark directory without stopping it.
type Proxy struct {
	chaos  *Chaos
	target string
	lis    net.Listener
	dark   atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewProxy listens on an ephemeral loopback port and forwards to
// target under ch's profiles.
func NewProxy(target string, ch *Chaos) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{chaos: ch, target: target, lis: lis, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// SetDark toggles blackout mode: while dark, accepted connections are
// closed immediately (the dialer sees a reset, as if the directory
// were down).
func (p *Proxy) SetDark(dark bool) { p.dark.Store(dark) }

// Close stops the listener and tears down every in-flight pipe.
func (p *Proxy) Close() {
	_ = p.lis.Close()
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.lis.Accept()
		if err != nil {
			return
		}
		if p.dark.Load() {
			countInjected()
			_ = down.Close()
			continue
		}
		up, err := p.chaos.DialDir(p.target, func(addr string) (net.Conn, error) {
			return net.Dial("tcp", addr)
		})
		if err != nil {
			_ = down.Close()
			continue
		}
		p.track(down)
		p.track(up)
		p.wg.Add(2)
		go p.pipe(up, down)
		go p.pipe(down, up)
	}
}

func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	// Tear down both halves so the opposite pipe unblocks.
	_ = dst.Close()
	_ = src.Close()
}
