// Package chaos is a seed-driven network turbulence layer for the live
// cluster tier: latency and jitter, bandwidth throttling, connection
// resets, half-open stalls, short-read tears, asymmetric partitions,
// and scheduled directory blackouts — every fault drawn from rng
// substreams so a chaos schedule is a replayable artifact. The Plan is
// computed up front from (seed, config) alone: the same -chaos-seed
// always serializes to byte-identical JSON regardless of worker count
// or wall-clock timing, and goes into the run manifest so a violation
// reproduces from a single number.
//
// Two properties make turbulence compatible with the differential
// harness's exact delivered-set agreement:
//
//   - Connection faults are custody-ambiguity-free by construction:
//     resets, stalls, and tears strike in the contact preamble (the
//     dial and the hello frame — cut offsets are capped below the
//     minimum hello size), never between an offer and its verdict. A
//     faulted contact attempt therefore moves no custody, and a clean
//     retry replays it exactly. Mid-offer tears — where custody
//     ambiguity genuinely lives — are exercised separately by the
//     fault-layer socket suite.
//   - Turbulence is bounded: per peer address at most RelentAfter
//     consecutive faulted connections are granted before a clean one
//     is guaranteed, so a retry loop with backoff always converges.
//
// Asymmetric partitions block the dialing direction of a node pair in
// cyclic windows; the blocked dialer is told how long the window has
// left so its backoff can wait it out — a partitioned contact is
// delayed, not dropped, preserving the contact set a reference run
// sees. Directory blackouts are planned as run fractions and executed
// by the harness that owns the directory (stop, run dark, restart).
package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Kind classifies one connection-slot fault.
type Kind string

const (
	KindClean    Kind = "clean"
	KindDelay    Kind = "delay"    // sleep before the first I/O in each direction
	KindThrottle Kind = "throttle" // pace all bytes at a drawn bandwidth
	KindReset    Kind = "reset"    // close abruptly once the write cut-point is reached
	KindStall    Kind = "stall"    // half-open: freeze the first write, then die
	KindTear     Kind = "tear"     // short write: deliver a frame prefix, then close
)

// Slot is one planned connection profile. Connections consume slots in
// grant order (an atomic cursor over the slot table, wrapping), so the
// table — not the racy assignment of slots to connections — is the
// deterministic artifact.
type Slot struct {
	Kind     Kind `json:"kind"`
	DelayMs  int  `json:"delay_ms,omitempty"`  // KindDelay: pre-I/O latency
	Bps      int  `json:"bps,omitempty"`       // KindThrottle: bytes per second
	CutAfter int  `json:"cut_after,omitempty"` // KindReset/KindTear: written bytes before the cut
	StallMs  int  `json:"stall_ms,omitempty"`  // KindStall: freeze duration before the tear
}

// Partition is one asymmetric (directional) link block: dials From->To
// fail during [StartMs, EndMs) of every PeriodMs cycle of wall time
// since the Chaos clock started. The reverse direction is unaffected.
type Partition struct {
	From    int `json:"from"`
	To      int `json:"to"`
	StartMs int `json:"start_ms"`
	EndMs   int `json:"end_ms"`
}

// Blackout is one scheduled directory outage, expressed as fractions
// of the run so any harness pacing (contact index, epoch progress) can
// realize it deterministically.
type Blackout struct {
	StartFrac float64 `json:"start_frac"`
	EndFrac   float64 `json:"end_frac"`
}

// Plan is the full replayable chaos schedule.
type Plan struct {
	Seed        uint64      `json:"seed"`
	Nodes       int         `json:"nodes"`
	RelentAfter int         `json:"relent_after"`
	PeriodMs    int         `json:"period_ms"`
	Slots       []Slot      `json:"slots"`
	Partitions  []Partition `json:"partitions"`
	Blackouts   []Blackout  `json:"blackouts"`
}

// JSON serializes the plan deterministically (fixed field order, no
// maps): the byte-compare artifact for the manifest and CI.
func (p *Plan) JSON() []byte {
	raw, err := json.Marshal(p)
	if err != nil {
		// A Plan is plain data; marshal cannot fail.
		panic(fmt.Sprintf("chaos: marshal plan: %v", err))
	}
	return raw
}

// Config parameterizes plan generation. The zero value of every field
// gets a usable default; only Seed and Nodes are meaningfully caller-
// chosen.
type Config struct {
	Seed  uint64
	Nodes int // population size, for partition pair draws (>= 2 enables partitions)

	Slots        int     // connection slot table size (default 64)
	FaultDensity float64 // fraction of slots that are non-clean (default 0.35)
	MaxDelayMs   int     // delay upper bound (default 40)
	MinBps       int     // throttle lower bound (default 4096)
	MaxBps       int     // throttle upper bound (default 32768)
	MaxStallMs   int     // stall upper bound (default 150)

	Partitions     int // directional partition windows per period (default 2)
	PeriodMs       int // partition cycle length (default 1000)
	MaxPartitionMs int // partition window upper bound (default 250)

	Blackouts   int // scheduled directory outages per run (default 1)
	RelentAfter int // max consecutive faulted connections per address (default 3)
}

func (c Config) filled() Config {
	if c.Slots <= 0 {
		c.Slots = 64
	}
	if c.FaultDensity <= 0 {
		c.FaultDensity = 0.35
	}
	if c.MaxDelayMs <= 0 {
		c.MaxDelayMs = 40
	}
	if c.MinBps <= 0 {
		c.MinBps = 4096
	}
	if c.MaxBps <= c.MinBps {
		c.MaxBps = c.MinBps * 8
	}
	if c.MaxStallMs <= 0 {
		c.MaxStallMs = 150
	}
	if c.Partitions < 0 {
		c.Partitions = 0
	} else if c.Partitions == 0 {
		c.Partitions = 2
	}
	if c.PeriodMs <= 0 {
		c.PeriodMs = 1000
	}
	if c.MaxPartitionMs <= 0 || c.MaxPartitionMs > c.PeriodMs/2 {
		c.MaxPartitionMs = min(250, c.PeriodMs/2)
	}
	if c.Blackouts < 0 {
		c.Blackouts = 0
	} else if c.Blackouts == 0 {
		c.Blackouts = 1
	}
	if c.RelentAfter <= 0 {
		c.RelentAfter = 3
	}
	return c
}

// maxCut caps reset/tear cut offsets strictly below the smallest
// possible hello frame (4-byte length prefix + 1 type byte + ~29 bytes
// of JSON), so a cut always lands inside the contact preamble and
// never between an offer and its verdict.
const maxCut = 28

// NewPlan draws the full schedule from rng substreams of cfg.Seed. The
// draw order is fixed and every family uses its own substream, so
// adding slots never perturbs partitions and vice versa.
func NewPlan(cfg Config) *Plan {
	cfg = cfg.filled()
	root := rng.New(cfg.Seed)
	p := &Plan{
		Seed:        cfg.Seed,
		Nodes:       cfg.Nodes,
		RelentAfter: cfg.RelentAfter,
		PeriodMs:    cfg.PeriodMs,
		Slots:       make([]Slot, cfg.Slots),
	}
	kinds := []Kind{KindDelay, KindThrottle, KindReset, KindStall, KindTear}
	for i := range p.Slots {
		s := root.SplitN("chaos-slot", i)
		if s.Float64() >= cfg.FaultDensity {
			p.Slots[i] = Slot{Kind: KindClean}
			continue
		}
		switch kinds[s.IntN(len(kinds))] {
		case KindDelay:
			p.Slots[i] = Slot{Kind: KindDelay, DelayMs: 1 + s.IntN(cfg.MaxDelayMs)}
		case KindThrottle:
			p.Slots[i] = Slot{Kind: KindThrottle, Bps: cfg.MinBps + s.IntN(cfg.MaxBps-cfg.MinBps)}
		case KindReset:
			p.Slots[i] = Slot{Kind: KindReset, CutAfter: 4 + s.IntN(maxCut-4)}
		case KindStall:
			p.Slots[i] = Slot{Kind: KindStall, StallMs: 10 + s.IntN(cfg.MaxStallMs)}
		case KindTear:
			p.Slots[i] = Slot{Kind: KindTear, CutAfter: 4 + s.IntN(maxCut-4)}
		}
	}
	// Slot 0 is guaranteed non-clean so any run that opens at least one
	// connection injects at least one fault — obscheck's "chaos.injected
	// is nonzero under -chaos" family check holds by construction.
	if p.Slots[0].Kind == KindClean {
		s := root.Split("chaos-slot0")
		p.Slots[0] = Slot{Kind: KindDelay, DelayMs: 1 + s.IntN(cfg.MaxDelayMs)}
	}
	if cfg.Nodes >= 2 {
		for k := 0; k < cfg.Partitions; k++ {
			s := root.SplitN("chaos-partition", k)
			from := s.IntN(cfg.Nodes)
			to := s.PickOther(cfg.Nodes, from)
			win := 50 + s.IntN(max(cfg.MaxPartitionMs-50, 1))
			start := s.IntN(cfg.PeriodMs - win)
			p.Partitions = append(p.Partitions, Partition{From: from, To: to, StartMs: start, EndMs: start + win})
		}
	}
	for k := 0; k < cfg.Blackouts; k++ {
		s := root.SplitN("chaos-blackout", k)
		start := s.Uniform(0.25, 0.55)
		length := s.Uniform(0.08, 0.18)
		p.Blackouts = append(p.Blackouts, Blackout{StartFrac: start, EndFrac: start + length})
	}
	return p
}

// Chaos realizes a Plan at runtime: it grants connection profiles,
// answers partition queries against its wall clock, and exposes the
// blackout schedule for the harness to execute.
type Chaos struct {
	plan  *Plan
	start time.Time

	mu     sync.Mutex
	cursor int            // next slot to grant
	streak map[string]int // consecutive faulted grants per address
}

// New draws a fresh plan from cfg and arms it.
func New(cfg Config) *Chaos { return FromPlan(NewPlan(cfg)) }

// FromPlan arms a previously serialized plan (replay).
func FromPlan(p *Plan) *Chaos {
	return &Chaos{plan: p, start: time.Now(), streak: make(map[string]int)}
}

// Plan returns the armed schedule.
func (c *Chaos) Plan() *Plan { return c.plan }

// BlockedError reports a dial refused by an asymmetric partition.
// Wait is how long the current window has left: the caller's backoff
// should sleep at least that long before retrying, turning a
// partitioned contact into a delayed one rather than a dropped one.
type BlockedError struct {
	From, To int
	Wait     time.Duration
}

func (e *BlockedError) Error() string {
	return fmt.Sprintf("chaos: dial %d->%d blocked by partition for %v", e.From, e.To, e.Wait)
}

// partitionWait reports how long a From->To dial stays blocked at
// offset t into the partition cycle (0 = not blocked).
func (c *Chaos) partitionWait(from, to int, t time.Duration) time.Duration {
	ms := int(t.Milliseconds()) % c.plan.PeriodMs
	for _, w := range c.plan.Partitions {
		if w.From == from && w.To == to && ms >= w.StartMs && ms < w.EndMs {
			return time.Duration(w.EndMs-ms) * time.Millisecond
		}
	}
	return 0
}

// grant consumes the next connection slot for addr, honoring the
// relent bound: after RelentAfter consecutive faulted grants to the
// same address the next grant is forced clean and the streak resets,
// so a retrying dialer always converges.
func (c *Chaos) grant(addr string) Slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.streak[addr] >= c.plan.RelentAfter {
		c.streak[addr] = 0
		return Slot{Kind: KindClean}
	}
	s := c.plan.Slots[c.cursor%len(c.plan.Slots)]
	c.cursor++
	if s.Kind == KindClean {
		c.streak[addr] = 0
	} else {
		c.streak[addr]++
	}
	return s
}

// DialPeer dials a contact connection from node `from` to node `to`,
// applying the partition schedule and the next connection profile.
// dialer performs the underlying dial (the cluster passes its own so
// obs accounting and timeouts stay in one place).
func (c *Chaos) DialPeer(from, to int, addr string, dialer func(addr string) (net.Conn, error)) (net.Conn, error) {
	if wait := c.partitionWait(from, to, time.Since(c.start)); wait > 0 {
		countInjected()
		return nil, &BlockedError{From: from, To: to, Wait: wait}
	}
	return c.dialFaulted(addr, dialer)
}

// DialDir dials the directory, applying the next connection profile
// (blackouts are executed by the harness stopping the directory, so a
// dark directory refuses connections for real).
func (c *Chaos) DialDir(addr string, dialer func(addr string) (net.Conn, error)) (net.Conn, error) {
	return c.dialFaulted(addr, dialer)
}

func (c *Chaos) dialFaulted(addr string, dialer func(addr string) (net.Conn, error)) (net.Conn, error) {
	slot := c.grant(addr)
	conn, err := dialer(addr)
	if err != nil {
		return nil, err
	}
	if slot.Kind == KindClean {
		return conn, nil
	}
	countInjected()
	return newFaultConn(conn, slot), nil
}

// Blackouts returns the scheduled directory outages.
func (c *Chaos) Blackouts() []Blackout { return c.plan.Blackouts }

func countInjected() {
	if col := obs.Active(); col != nil {
		col.Add(obs.ChaosInjected, 1)
	}
}
