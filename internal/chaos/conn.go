package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrInjected wraps every failure a faultConn manufactures, so callers
// (and tests) can tell injected weather from genuine network errors.
var ErrInjected = errors.New("chaos: injected fault")

// faultConn applies one Slot profile to a connection. Delay and
// throttle preserve every byte; reset, stall, and tear kill the
// connection during its first writes (CutAfter is capped below the
// smallest hello frame), so a faulted contact attempt never crosses
// the offer/verdict boundary where custody ambiguity lives.
type faultConn struct {
	net.Conn
	slot Slot

	mu       sync.Mutex
	written  int  // bytes written, for the cut point
	delayedR bool // delay already charged on the read side
	delayedW bool // delay already charged on the write side
}

func newFaultConn(conn net.Conn, slot Slot) net.Conn {
	return &faultConn{Conn: conn, slot: slot}
}

// throttleChunk is the pacing quantum: bytes cross in chunks of this
// size with a sleep per chunk sized to the slot's Bps.
const throttleChunk = 512

func (c *faultConn) pace(n int) {
	if c.slot.Kind == KindThrottle && c.slot.Bps > 0 && n > 0 {
		time.Sleep(time.Duration(float64(n) / float64(c.slot.Bps) * float64(time.Second)))
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch c.slot.Kind {
	case KindDelay:
		c.mu.Lock()
		first := !c.delayedR
		c.delayedR = true
		c.mu.Unlock()
		if first {
			time.Sleep(time.Duration(c.slot.DelayMs) * time.Millisecond)
		}
	case KindThrottle:
		if len(p) > throttleChunk {
			p = p[:throttleChunk]
		}
		n, err := c.Conn.Read(p)
		c.pace(n)
		return n, err
	case KindStall:
		// The write side stalls first on every cluster exchange (the
		// dialer speaks first); a pure reader just waits out the tear.
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch c.slot.Kind {
	case KindDelay:
		c.mu.Lock()
		first := !c.delayedW
		c.delayedW = true
		c.mu.Unlock()
		if first {
			time.Sleep(time.Duration(c.slot.DelayMs) * time.Millisecond)
		}
	case KindThrottle:
		total := 0
		for len(p) > 0 {
			chunk := p
			if len(chunk) > throttleChunk {
				chunk = chunk[:throttleChunk]
			}
			n, err := c.Conn.Write(chunk)
			total += n
			c.pace(n)
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		return total, nil
	case KindStall:
		time.Sleep(time.Duration(c.slot.StallMs) * time.Millisecond)
		_ = c.Conn.Close()
		return 0, fmt.Errorf("%w: half-open stall after %dms", ErrInjected, c.slot.StallMs)
	case KindReset, KindTear:
		c.mu.Lock()
		room := c.slot.CutAfter - c.written
		c.mu.Unlock()
		if room >= len(p) {
			n, err := c.Conn.Write(p)
			c.mu.Lock()
			c.written += n
			c.mu.Unlock()
			return n, err
		}
		// The cut point falls inside this write.
		n := 0
		if c.slot.Kind == KindTear && room > 0 {
			n, _ = c.Conn.Write(p[:room]) // deliver a frame prefix: a short-read tear for the peer
		}
		_ = c.Conn.Close()
		return n, fmt.Errorf("%w: connection %s after %d bytes", ErrInjected, c.slot.Kind, c.slot.CutAfter)
	}
	return c.Conn.Write(p)
}
