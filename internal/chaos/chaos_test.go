package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestPlanDeterministic: the plan is a pure function of (seed, config)
// and serializes byte-identically — the replay artifact contract.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Nodes: 5}
	a := NewPlan(cfg).JSON()
	b := NewPlan(cfg).JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different plans:\n%s\n%s", a, b)
	}
	c := NewPlan(Config{Seed: 43, Nodes: 5}).JSON()
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestPlanBounds: cut offsets stay inside the contact preamble, the
// first slot always injects, and partition windows fit their period.
func TestPlanBounds(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		p := NewPlan(Config{Seed: seed, Nodes: 6})
		if p.Slots[0].Kind == KindClean {
			t.Fatalf("seed %d: slot 0 is clean — a chaos run could inject nothing", seed)
		}
		for i, s := range p.Slots {
			if (s.Kind == KindReset || s.Kind == KindTear) && (s.CutAfter < 4 || s.CutAfter >= maxCut) {
				t.Fatalf("seed %d slot %d: cut at %d bytes escapes the hello preamble", seed, i, s.CutAfter)
			}
		}
		for i, w := range p.Partitions {
			if w.From == w.To || w.From < 0 || w.From >= 6 || w.To < 0 || w.To >= 6 {
				t.Fatalf("seed %d partition %d: bad pair %d->%d", seed, i, w.From, w.To)
			}
			if w.StartMs < 0 || w.EndMs <= w.StartMs || w.EndMs > p.PeriodMs {
				t.Fatalf("seed %d partition %d: window [%d,%d) escapes period %d", seed, i, w.StartMs, w.EndMs, p.PeriodMs)
			}
		}
		for i, b := range p.Blackouts {
			if b.StartFrac <= 0 || b.EndFrac >= 1 || b.EndFrac <= b.StartFrac {
				t.Fatalf("seed %d blackout %d: bad window [%v,%v)", seed, i, b.StartFrac, b.EndFrac)
			}
		}
	}
}

// TestRelentBound: after RelentAfter consecutive faulted grants to one
// address the next grant is forced clean — the convergence guarantee
// retry loops rely on.
func TestRelentBound(t *testing.T) {
	p := &Plan{
		Seed: 1, RelentAfter: 3, PeriodMs: 1000,
		Slots: []Slot{{Kind: KindReset, CutAfter: 8}}, // every planned slot faults
	}
	c := FromPlan(p)
	for i := 0; i < 3; i++ {
		if s := c.grant("a"); s.Kind == KindClean {
			t.Fatalf("grant %d: clean before the relent bound", i)
		}
	}
	if s := c.grant("a"); s.Kind != KindClean {
		t.Fatalf("grant after relent bound is %v, want clean", s.Kind)
	}
	// The streak reset means turbulence resumes afterwards.
	if s := c.grant("a"); s.Kind == KindClean {
		t.Fatal("turbulence did not resume after the forced-clean grant")
	}
}

// TestPartitionBlocksDialWithWaitHint: a partitioned dial fails with a
// BlockedError whose Wait covers the rest of the window.
func TestPartitionBlocksDialWithWaitHint(t *testing.T) {
	p := &Plan{
		Seed: 1, RelentAfter: 3, PeriodMs: 1 << 30, // one cycle far longer than the test
		Slots:      []Slot{{Kind: KindClean}},
		Partitions: []Partition{{From: 0, To: 1, StartMs: 0, EndMs: 1 << 29}},
	}
	c := FromPlan(p)
	_, err := c.DialPeer(0, 1, "unused", func(string) (net.Conn, error) {
		t.Fatal("dial ran despite the partition")
		return nil, nil
	})
	var blocked *BlockedError
	if !errors.As(err, &blocked) {
		t.Fatalf("err = %v, want BlockedError", err)
	}
	if blocked.Wait <= 0 {
		t.Fatalf("blocked dial carries no wait hint: %+v", blocked)
	}
	// The reverse direction is unaffected: asymmetric.
	dialed := false
	_, err = c.DialPeer(1, 0, "unused", func(string) (net.Conn, error) {
		dialed = true
		return nil, errors.New("stop here")
	})
	if !dialed {
		t.Fatalf("reverse direction blocked too: %v", err)
	}
}

// echoListener accepts one connection and echoes everything back.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				_, _ = io.Copy(c, c)
				_ = c.Close()
			}(conn)
		}
	}()
	t.Cleanup(func() { _ = lis.Close() })
	return lis
}

func faultedDial(t *testing.T, addr string, slot Slot) net.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := newFaultConn(raw, slot)
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// TestFaultConnPreservesBytes: delay and throttle profiles reorder
// nothing and lose nothing.
func TestFaultConnPreservesBytes(t *testing.T) {
	lis := echoListener(t)
	payload := bytes.Repeat([]byte("turbulence"), 200)
	for _, slot := range []Slot{
		{Kind: KindDelay, DelayMs: 5},
		{Kind: KindThrottle, Bps: 1 << 20},
	} {
		conn := faultedDial(t, lis.Addr().String(), slot)
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("%v write: %v", slot.Kind, err)
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			t.Fatalf("%v read: %v", slot.Kind, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%v corrupted the stream", slot.Kind)
		}
	}
}

// TestFaultConnCutsInPreamble: reset, tear, and stall all fail the
// dialer's first frame-sized write and kill the connection.
func TestFaultConnCutsInPreamble(t *testing.T) {
	lis := echoListener(t)
	hello := bytes.Repeat([]byte("h"), 40) // a typical hello frame exceeds every cut point
	for _, slot := range []Slot{
		{Kind: KindReset, CutAfter: 8},
		{Kind: KindTear, CutAfter: 8},
		{Kind: KindStall, StallMs: 10},
	} {
		conn := faultedDial(t, lis.Addr().String(), slot)
		n, err := conn.Write(hello)
		if err == nil || !errors.Is(err, ErrInjected) {
			t.Fatalf("%v write: n=%d err=%v, want ErrInjected", slot.Kind, n, err)
		}
		if n >= len(hello) {
			t.Fatalf("%v wrote the whole frame before failing", slot.Kind)
		}
	}
}

// TestProxyForwardsAndGoesDark: the proxy relays under clean profiles
// and refuses connections while dark.
func TestProxyForwardsAndGoesDark(t *testing.T) {
	lis := echoListener(t)
	ch := FromPlan(&Plan{Seed: 1, RelentAfter: 3, PeriodMs: 1000, Slots: []Slot{{Kind: KindClean}}})
	proxy, err := NewProxy(lis.Addr().String(), ch)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(conn, got); err != nil || string(got) != "ping" {
		t.Fatalf("proxy relay: %q, %v", got, err)
	}

	proxy.SetDark(true)
	dark, err := net.Dial("tcp", proxy.Addr())
	if err == nil {
		_ = dark.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := dark.Read(make([]byte, 1)); err == nil {
			t.Fatal("dark proxy still relays")
		}
		_ = dark.Close()
	}
}
