package groups

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/onion"
	"repro/internal/rng"
)

// TestAssignmentRoundTrip proves a client-side view rebuilt from the
// wire assignment is structurally identical to the origin partition.
func TestAssignmentRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, g int }{{12, 4}, {20, 5}, {7, 3}, {5, 5}} {
		origin, err := NewPartition(tc.n, tc.g, rng.New(42).Split("partition"))
		if err != nil {
			t.Fatal(err)
		}
		view, err := NewFromAssignment(origin.Assignment(), tc.g)
		if err != nil {
			t.Fatalf("n=%d g=%d: %v", tc.n, tc.g, err)
		}
		if err := view.Validate(); err != nil {
			t.Fatal(err)
		}
		if view.N() != origin.N() || view.NumGroups() != origin.NumGroups() {
			t.Fatalf("shape mismatch: %d/%d vs %d/%d",
				view.N(), view.NumGroups(), origin.N(), origin.NumGroups())
		}
		for v := 0; v < tc.n; v++ {
			if view.GroupOf(contact.NodeID(v)) != origin.GroupOf(contact.NodeID(v)) {
				t.Fatalf("node %d assigned differently", v)
			}
		}
	}
}

func TestNewFromAssignmentRejects(t *testing.T) {
	cases := []struct {
		name   string
		assign []onion.GroupID
		g      int
	}{
		{"empty", nil, 2},
		{"negative group", []onion.GroupID{0, -1, 0}, 2},
		{"group beyond population", []onion.GroupID{0, 99, 0}, 2},
		{"hole in group ids", []onion.GroupID{0, 2, 0}, 2},
		{"oversized group", []onion.GroupID{0, 0, 0}, 2},
		{"bad size", []onion.GroupID{0, 0}, 0},
	}
	for _, tc := range cases {
		if _, err := NewFromAssignment(tc.assign, tc.g); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestInstallSymmetricKeys proves an externally keyed view
// interoperates with an origin directory holding the same keys: an
// onion layer sealed by one side opens on the other.
func TestInstallSymmetricKeys(t *testing.T) {
	origin, err := NewPartition(10, 3, rng.New(7).Split("partition"))
	if err != nil {
		t.Fatal(err)
	}
	groupKeys := make(map[onion.GroupID][]byte, origin.NumGroups())
	for gid := 0; gid < origin.NumGroups(); gid++ {
		key, err := onion.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		groupKeys[onion.GroupID(gid)] = key
	}
	nodeKeys := make([][]byte, origin.N())
	for v := range nodeKeys {
		key, err := onion.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		nodeKeys[v] = key
	}
	if err := origin.InstallSymmetricKeys(groupKeys, nodeKeys); err != nil {
		t.Fatal(err)
	}
	view, err := NewFromAssignment(origin.Assignment(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := view.InstallSymmetricKeys(groupKeys, nodeKeys); err != nil {
		t.Fatal(err)
	}

	sealer, err := origin.GroupCipher(0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sealer.Seal([]byte("cross-process layer"))
	if err != nil {
		t.Fatal(err)
	}
	member := view.Members(0)[0]
	opener, err := view.MemberCipher(member, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := opener.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "cross-process layer" {
		t.Fatal("layer did not round-trip across views")
	}

	if err := view.Rekey(nil); err == nil {
		t.Fatal("externally keyed view allowed a local rekey")
	}
}

func TestInstallSymmetricKeysRejects(t *testing.T) {
	d, err := NewPartition(6, 2, rng.New(1).Split("partition"))
	if err != nil {
		t.Fatal(err)
	}
	good := make(map[onion.GroupID][]byte)
	for gid := 0; gid < d.NumGroups(); gid++ {
		key, _ := onion.GenerateKey()
		good[onion.GroupID(gid)] = key
	}
	nodeKeys := make([][]byte, 6)
	for v := range nodeKeys {
		nodeKeys[v], _ = onion.GenerateKey()
	}
	if err := d.InstallSymmetricKeys(good, nodeKeys[:5]); err == nil {
		t.Fatal("accepted short node-key table")
	}
	missing := map[onion.GroupID][]byte{0: good[0]}
	if err := d.InstallSymmetricKeys(missing, nodeKeys); err == nil {
		t.Fatal("accepted missing group key")
	}
	bad := map[onion.GroupID][]byte{}
	for gid, k := range good {
		bad[gid] = k
	}
	bad[0] = []byte("short")
	if err := d.InstallSymmetricKeys(bad, nodeKeys); err == nil {
		t.Fatal("accepted malformed key")
	}
}
