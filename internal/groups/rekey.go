package groups

import (
	"errors"
	"fmt"

	"repro/internal/contact"
	"repro/internal/onion"
)

// Key lifecycle. The paper's protocols assume group keys exist and
// cites secure key-update schemes as the mechanism for evicting
// compromised members (Sec. VI-B); this file models that lifecycle:
// the directory tracks a key epoch, Rekey rotates every group and node
// key, and revoked nodes are denied the new epoch's keys. Onions built
// before a rekey cannot be peeled afterwards — senders must rebuild —
// and a revoked member can no longer peel its group's layers even
// though it still appears in the membership lists.

// Epoch returns the current key epoch (0 until ProvisionKeys, then
// incremented by every Rekey).
func (d *Directory) Epoch() int { return d.epoch }

// IsRevoked reports whether node v has been excluded from the current
// key epoch.
func (d *Directory) IsRevoked(v contact.NodeID) bool {
	return d.revoked[v]
}

// Revoked returns the number of currently revoked nodes.
func (d *Directory) Revoked() int { return len(d.revoked) }

// Rekey rotates all group and node keys, starting a new epoch, and
// additionally revokes the listed nodes: they are denied the new keys
// until Reinstate. Rekey requires keys to have been provisioned.
func (d *Directory) Rekey(revoke []contact.NodeID) error {
	if d.group == nil {
		return fmt.Errorf("groups: rekey before keys were provisioned")
	}
	for _, v := range revoke {
		if v < 0 || int(v) >= d.n {
			return fmt.Errorf("groups: cannot revoke unknown node %d", v)
		}
	}
	if err := d.reKey(); err != nil {
		return fmt.Errorf("groups: rekey: %w", err)
	}
	if d.revoked == nil {
		d.revoked = make(map[contact.NodeID]bool)
	}
	for _, v := range revoke {
		d.revoked[v] = true
	}
	d.epoch++
	return nil
}

// Reinstate restores a revoked node's access to the CURRENT epoch's
// keys. (A real deployment would only reinstate together with a fresh
// Rekey; the directory does not enforce that policy.)
func (d *Directory) Reinstate(v contact.NodeID) {
	delete(d.revoked, v)
}

// MemberCipher returns the layer cipher of group id as held by node v:
// it enforces both group membership and epoch access. Non-members and
// revoked members are denied. This is the accessor protocol runtimes
// should use; GroupCipher is the omniscient view for tests and the
// source (which may address any group).
func (d *Directory) MemberCipher(v contact.NodeID, id onion.GroupID) (onion.Cipher, error) {
	if v < 0 || int(v) >= d.n {
		return nil, fmt.Errorf("groups: node %d out of range", v)
	}
	if d.revoked[v] {
		return nil, fmt.Errorf("groups: node %d revoked at epoch %d", v, d.epoch)
	}
	if !d.Contains(id, v) {
		return nil, fmt.Errorf("groups: node %d is not a member of group %d", v, id)
	}
	if d.groupOpen == nil {
		return nil, errors.New("groups: keys not provisioned")
	}
	c, ok := d.groupOpen[id]
	if !ok {
		return nil, fmt.Errorf("groups: no cipher for group %d", id)
	}
	return c, nil
}

// OwnCipher returns node v's OPEN-side destination-layer cipher (the
// private key in hybrid mode), denied while v is revoked.
func (d *Directory) OwnCipher(v contact.NodeID) (onion.Cipher, error) {
	if d.revoked[v] {
		return nil, fmt.Errorf("groups: node %d revoked at epoch %d", v, d.epoch)
	}
	if d.nodeOpen == nil {
		return nil, errors.New("groups: keys not provisioned")
	}
	if v < 0 || int(v) >= d.n {
		return nil, fmt.Errorf("groups: node %d out of range", v)
	}
	return d.nodeOpen[v], nil
}
