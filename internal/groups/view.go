package groups

// Client-side directory views: a daemon that joins the network through
// a directory service (internal/cluster) does not run NewPartition —
// it receives the node->group assignment and the symmetric layer keys
// over the wire and reconstructs an equivalent Directory locally.
// NewFromAssignment rebuilds the partition structure;
// InstallSymmetricKeys equips it with externally distributed keys.

import (
	"errors"
	"fmt"

	"repro/internal/contact"
	"repro/internal/onion"
)

// Assignment returns a copy of the node -> group table, the wire
// representation a directory service distributes to joining nodes.
func (d *Directory) Assignment() []onion.GroupID {
	out := make([]onion.GroupID, len(d.byNode))
	copy(out, d.byNode)
	return out
}

// NewFromAssignment reconstructs a Directory from an explicit
// node -> group assignment with nominal group size g. The resulting
// directory is structurally identical to the one the assignment was
// taken from (Validate-clean, same membership), so protocol decisions
// (eligibility, path selection support) agree across processes.
func NewFromAssignment(byNode []onion.GroupID, g int) (*Directory, error) {
	n := len(byNode)
	if n < 1 {
		return nil, errors.New("groups: empty assignment")
	}
	if g < 1 || g > n {
		return nil, fmt.Errorf("groups: group size %d out of [1, %d]", g, n)
	}
	numGroups := 0
	for v, gid := range byNode {
		if gid < 0 {
			return nil, fmt.Errorf("groups: node %d assigned to negative group %d", v, gid)
		}
		if int(gid) >= n {
			return nil, fmt.Errorf("groups: node %d assigned to group %d beyond population", v, gid)
		}
		if int(gid)+1 > numGroups {
			numGroups = int(gid) + 1
		}
	}
	d := &Directory{
		n:       n,
		g:       g,
		members: make([][]contact.NodeID, numGroups),
		byNode:  make([]onion.GroupID, n),
	}
	copy(d.byNode, byNode)
	for v, gid := range byNode {
		d.members[gid] = append(d.members[gid], contact.NodeID(v))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// InstallSymmetricKeys equips the directory with externally
// distributed AES layer keys (one per group, one per node), the
// symmetric trust model of ProvisionKeys: seal and open sides
// coincide. Key material arrives from a directory service (typically
// recovered from shamir threshold shares); this directory cannot
// Rekey — rotation is the key-origin's job.
func (d *Directory) InstallSymmetricKeys(groupKeys map[onion.GroupID][]byte, nodeKeys [][]byte) error {
	if len(nodeKeys) != d.n {
		return fmt.Errorf("groups: %d node keys for %d nodes", len(nodeKeys), d.n)
	}
	group := make(map[onion.GroupID]onion.Cipher, len(d.members))
	for gid := range d.members {
		key, ok := groupKeys[onion.GroupID(gid)]
		if !ok {
			return fmt.Errorf("groups: no key for group %d", gid)
		}
		c, err := onion.NewSymmetricCipher(key)
		if err != nil {
			return fmt.Errorf("groups: install group %d: %w", gid, err)
		}
		group[onion.GroupID(gid)] = c
	}
	node := make([]onion.Cipher, d.n)
	for v := range node {
		c, err := onion.NewSymmetricCipher(nodeKeys[v])
		if err != nil {
			return fmt.Errorf("groups: install node %d: %w", v, err)
		}
		node[v] = c
	}
	d.group, d.groupOpen = group, group
	d.node, d.nodeOpen = node, node
	d.reKey = func() error {
		return errors.New("groups: externally keyed directory cannot rekey locally")
	}
	return nil
}
