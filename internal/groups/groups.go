// Package groups implements onion group formation and key management
// (Sec. III-A): the n nodes of a DTN are partitioned into n/g groups of
// size g, every member of a group shares the key that peels the
// corresponding onion layer, and a source selects K groups uniformly at
// random as the relay sequence R_1, ..., R_K of a message.
//
// Two selection modes are provided:
//
//   - Partition mode (Directory): the paper's default for random
//     contact graphs. Groups are disjoint; if n is not divisible by g
//     the last group is smaller ("some onion groups may have different
//     group sizes", Sec. V).
//   - Ad-hoc mode (AdHoc): used when the population is too small for K
//     disjoint groups of size g, as in the Cambridge trace (12 nodes,
//     g = 10, K = 3). Groups are independent random g-subsets and may
//     overlap, preserving the anycast forwarding property.
package groups

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"

	"repro/internal/contact"
	"repro/internal/onion"
	"repro/internal/rng"
)

// Directory is a partition of n nodes into onion groups, with optional
// per-group and per-node layer keys.
type Directory struct {
	n, g    int
	members [][]contact.NodeID // group id -> members
	byNode  []onion.GroupID    // node -> its group
	// Sealing (source-side) and opening (member-side) layer ciphers.
	// With symmetric provisioning the two coincide; with hybrid
	// provisioning sources hold only public keys.
	group     map[onion.GroupID]onion.Cipher // seal side
	groupOpen map[onion.GroupID]onion.Cipher // open side
	node      []onion.Cipher                 // destination seal side
	nodeOpen  []onion.Cipher                 // destination open side
	reKey     func() error                   // re-runs the active provisioning
	epoch     int                            // key epoch, bumped by Rekey
	revoked   map[contact.NodeID]bool        // nodes denied current keys
}

// NewPartition randomly partitions n nodes into ceil(n/g) groups of
// size at most g. The partition is uniform over node assignments.
func NewPartition(n, g int, s *rng.Stream) (*Directory, error) {
	if n < 1 {
		return nil, fmt.Errorf("groups: need at least one node, got %d", n)
	}
	if g < 1 || g > n {
		return nil, fmt.Errorf("groups: group size %d out of [1, %d]", g, n)
	}
	perm := s.Perm(n)
	numGroups := (n + g - 1) / g
	d := &Directory{
		n:       n,
		g:       g,
		members: make([][]contact.NodeID, numGroups),
		byNode:  make([]onion.GroupID, n),
	}
	for idx, node := range perm {
		gid := idx / g
		d.members[gid] = append(d.members[gid], contact.NodeID(node))
		d.byNode[node] = onion.GroupID(gid)
	}
	return d, nil
}

// N returns the number of nodes.
func (d *Directory) N() int { return d.n }

// GroupSize returns the nominal group size g.
func (d *Directory) GroupSize() int { return d.g }

// NumGroups returns the number of groups in the partition.
func (d *Directory) NumGroups() int { return len(d.members) }

// GroupOf returns the group containing node v.
func (d *Directory) GroupOf(v contact.NodeID) onion.GroupID {
	if v < 0 || int(v) >= d.n {
		panic(fmt.Sprintf("groups: node %d out of range", v))
	}
	return d.byNode[v]
}

// Members returns the members of group id. The returned slice must not
// be modified.
func (d *Directory) Members(id onion.GroupID) []contact.NodeID {
	if id < 0 || int(id) >= len(d.members) {
		panic(fmt.Sprintf("groups: group %d out of range", id))
	}
	return d.members[id]
}

// Contains reports whether node v belongs to group id.
func (d *Directory) Contains(id onion.GroupID, v contact.NodeID) bool {
	return d.GroupOf(v) == id
}

// Validate checks the partition invariants: every node in exactly one
// group, group sizes in {g, n mod g}.
func (d *Directory) Validate() error {
	seen := make([]bool, d.n)
	for gid, ms := range d.members {
		if len(ms) == 0 {
			return fmt.Errorf("groups: group %d is empty", gid)
		}
		if len(ms) > d.g {
			return fmt.Errorf("groups: group %d has %d members, max %d", gid, len(ms), d.g)
		}
		for _, v := range ms {
			if v < 0 || int(v) >= d.n {
				return fmt.Errorf("groups: group %d contains invalid node %d", gid, v)
			}
			if seen[v] {
				return fmt.Errorf("groups: node %d appears in multiple groups", v)
			}
			seen[v] = true
			if d.byNode[v] != onion.GroupID(gid) {
				return fmt.Errorf("groups: index inconsistency for node %d", v)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("groups: node %d not assigned to any group", v)
		}
	}
	return nil
}

// ProvisionKeys generates AES group keys (shared among group members)
// and per-node destination keys, enabling real onion construction.
// The paper's protocols establish these via ABE/IBC; see package onion
// for the substitution rationale. With shared symmetric keys, any
// party that can ADDRESS a group (including sources) can also PEEL its
// layers; use ProvisionHybridKeys when that capability split matters.
func (d *Directory) ProvisionKeys() error {
	group := make(map[onion.GroupID]onion.Cipher, len(d.members))
	for gid := range d.members {
		key, err := onion.GenerateKey()
		if err != nil {
			return fmt.Errorf("groups: provision group %d: %w", gid, err)
		}
		c, err := onion.NewSymmetricCipher(key)
		if err != nil {
			return fmt.Errorf("groups: provision group %d: %w", gid, err)
		}
		group[onion.GroupID(gid)] = c
	}
	node := make([]onion.Cipher, d.n)
	for v := range node {
		key, err := onion.GenerateKey()
		if err != nil {
			return fmt.Errorf("groups: provision node %d: %w", v, err)
		}
		c, err := onion.NewSymmetricCipher(key)
		if err != nil {
			return fmt.Errorf("groups: provision node %d: %w", v, err)
		}
		node[v] = c
	}
	d.group, d.groupOpen = group, group
	d.node, d.nodeOpen = node, node
	d.reKey = d.ProvisionKeys
	return nil
}

// ProvisionHybridKeys generates per-group and per-node RSA keypairs of
// the given size (>= 1024 bits; use 2048+ outside tests). Unlike the
// shared symmetric keys of ProvisionKeys, the seal side (GroupCipher,
// NodeCipher — what sources use to build onions) holds only PUBLIC
// keys: a source can address any group without gaining the ability to
// peel anyone's layers, matching classic onion routing's trust model
// (Fig. 1). Key generation costs ~100 ms per 2048-bit key.
func (d *Directory) ProvisionHybridKeys(bits int) error {
	if bits < 1024 {
		return fmt.Errorf("groups: hybrid keys need >= 1024 bits, got %d", bits)
	}
	groupSeal := make(map[onion.GroupID]onion.Cipher, len(d.members))
	groupOpen := make(map[onion.GroupID]onion.Cipher, len(d.members))
	for gid := range d.members {
		priv, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			return fmt.Errorf("groups: provision group %d: %w", gid, err)
		}
		open, err := onion.NewHybridCipher(priv)
		if err != nil {
			return err
		}
		seal, err := onion.NewHybridSealer(&priv.PublicKey)
		if err != nil {
			return err
		}
		groupSeal[onion.GroupID(gid)] = seal
		groupOpen[onion.GroupID(gid)] = open
	}
	nodeSeal := make([]onion.Cipher, d.n)
	nodeOpen := make([]onion.Cipher, d.n)
	for v := range nodeSeal {
		priv, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			return fmt.Errorf("groups: provision node %d: %w", v, err)
		}
		open, err := onion.NewHybridCipher(priv)
		if err != nil {
			return err
		}
		seal, err := onion.NewHybridSealer(&priv.PublicKey)
		if err != nil {
			return err
		}
		nodeSeal[v] = seal
		nodeOpen[v] = open
	}
	d.group, d.groupOpen = groupSeal, groupOpen
	d.node, d.nodeOpen = nodeSeal, nodeOpen
	d.reKey = func() error { return d.ProvisionHybridKeys(bits) }
	return nil
}

// GroupCipher returns the SEAL-side layer cipher of group id — what a
// source needs to address the group. With symmetric keys it can also
// open; with hybrid keys it is public-key-only. An error is returned
// if keys were not provisioned.
func (d *Directory) GroupCipher(id onion.GroupID) (onion.Cipher, error) {
	if d.group == nil {
		return nil, errors.New("groups: keys not provisioned")
	}
	c, ok := d.group[id]
	if !ok {
		return nil, fmt.Errorf("groups: no cipher for group %d", id)
	}
	return c, nil
}

// NodeCipher returns the SEAL-side destination-layer cipher of node v
// — what a source needs to address it. An error is returned if keys
// were not provisioned.
func (d *Directory) NodeCipher(v contact.NodeID) (onion.Cipher, error) {
	if d.node == nil {
		return nil, errors.New("groups: keys not provisioned")
	}
	if v < 0 || int(v) >= d.n {
		return nil, fmt.Errorf("groups: node %d out of range", v)
	}
	return d.node[v], nil
}

// SelectPath selects K distinct onion groups uniformly at random,
// excluding the groups containing src and dst so that routing paths
// stay acyclic (the assumption of Sec. IV-E). It returns the group IDs
// in travel order R_1, ..., R_K.
func (d *Directory) SelectPath(src, dst contact.NodeID, k int, s *rng.Stream) ([]onion.GroupID, error) {
	if k < 1 {
		return nil, fmt.Errorf("groups: need at least one relay group, got %d", k)
	}
	exclude := map[onion.GroupID]bool{d.GroupOf(src): true, d.GroupOf(dst): true}
	candidates := make([]onion.GroupID, 0, len(d.members))
	for gid := range d.members {
		if !exclude[onion.GroupID(gid)] {
			candidates = append(candidates, onion.GroupID(gid))
		}
	}
	if len(candidates) < k {
		return nil, fmt.Errorf("groups: only %d eligible groups for a %d-relay path", len(candidates), k)
	}
	picks := s.Sample(len(candidates), k)
	path := make([]onion.GroupID, k)
	for i, p := range picks {
		path[i] = candidates[p]
	}
	return path, nil
}

// PathMembers expands a group-ID path into member sets in travel order.
func (d *Directory) PathMembers(path []onion.GroupID) [][]contact.NodeID {
	out := make([][]contact.NodeID, len(path))
	for i, gid := range path {
		out[i] = d.Members(gid)
	}
	return out
}

// AdHoc samples K onion groups of size (up to) g from the n-node
// population, excluding the listed nodes (typically source and
// destination). Groups may overlap when the population is small — the
// Cambridge-trace regime (n = 12, g = 10, K = 3). When fewer than g
// candidates exist, every group is the full candidate set.
func AdHoc(n, g, k int, exclude []contact.NodeID, s *rng.Stream) ([][]contact.NodeID, error) {
	if n < 1 {
		return nil, fmt.Errorf("groups: need at least one node, got %d", n)
	}
	if g < 1 {
		return nil, fmt.Errorf("groups: group size %d must be positive", g)
	}
	if k < 1 {
		return nil, fmt.Errorf("groups: need at least one relay group, got %d", k)
	}
	skip := make(map[contact.NodeID]bool, len(exclude))
	for _, v := range exclude {
		skip[v] = true
	}
	candidates := make([]contact.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if !skip[contact.NodeID(v)] {
			candidates = append(candidates, contact.NodeID(v))
		}
	}
	if len(candidates) == 0 {
		return nil, errors.New("groups: no candidate relay nodes")
	}
	size := g
	if size > len(candidates) {
		size = len(candidates)
	}
	out := make([][]contact.NodeID, k)
	for i := range out {
		picks := s.Sample(len(candidates), size)
		group := make([]contact.NodeID, size)
		for j, p := range picks {
			group[j] = candidates[p]
		}
		out[i] = group
	}
	return out, nil
}
