package groups

import (
	"testing"
	"testing/quick"

	"repro/internal/contact"
	"repro/internal/onion"
	"repro/internal/rng"
)

func TestNewPartitionBasic(t *testing.T) {
	d, err := NewPartition(100, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 || d.GroupSize() != 5 {
		t.Fatalf("N=%d g=%d", d.N(), d.GroupSize())
	}
	if d.NumGroups() != 20 {
		t.Fatalf("NumGroups = %d, want 20", d.NumGroups())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < 20; gid++ {
		if len(d.Members(onion.GroupID(gid))) != 5 {
			t.Fatalf("group %d has %d members", gid, len(d.Members(onion.GroupID(gid))))
		}
	}
}

func TestNewPartitionRemainder(t *testing.T) {
	// 13 nodes, g=5: groups of 5, 5, 3 (the paper's smaller-last-group
	// case).
	d, err := NewPartition(13, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", d.NumGroups())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(d.Members(0)), len(d.Members(1)), len(d.Members(2))}
	if sizes[0] != 5 || sizes[1] != 5 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestNewPartitionErrors(t *testing.T) {
	if _, err := NewPartition(0, 1, rng.New(1)); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := NewPartition(5, 0, rng.New(1)); err == nil {
		t.Fatal("accepted g=0")
	}
	if _, err := NewPartition(5, 6, rng.New(1)); err == nil {
		t.Fatal("accepted g>n")
	}
}

func TestGroupOfConsistentWithMembers(t *testing.T) {
	d, err := NewPartition(37, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 37; v++ {
		gid := d.GroupOf(contact.NodeID(v))
		found := false
		for _, m := range d.Members(gid) {
			if m == contact.NodeID(v) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d not in its own group %d", v, gid)
		}
		if !d.Contains(gid, contact.NodeID(v)) {
			t.Fatalf("Contains disagrees for node %d", v)
		}
	}
}

func TestPartitionIsRandom(t *testing.T) {
	a, _ := NewPartition(100, 5, rng.New(1))
	b, _ := NewPartition(100, 5, rng.New(2))
	diff := false
	for v := 0; v < 100; v++ {
		if a.GroupOf(contact.NodeID(v)) != b.GroupOf(contact.NodeID(v)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("partitions identical across seeds")
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(rawN, rawG uint8) bool {
		n := int(rawN%200) + 1
		g := int(rawG)%n + 1
		d, err := NewPartition(n, g, rng.New(uint64(rawN)*256+uint64(rawG)))
		if err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPathExcludesEndpointGroups(t *testing.T) {
	d, err := NewPartition(100, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	src, dst := contact.NodeID(0), contact.NodeID(99)
	for trial := 0; trial < 200; trial++ {
		path, err := d.SelectPath(src, dst, 3, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 3 {
			t.Fatalf("path length %d", len(path))
		}
		seen := map[onion.GroupID]bool{}
		for _, gid := range path {
			if gid == d.GroupOf(src) || gid == d.GroupOf(dst) {
				t.Fatalf("path includes an endpoint group")
			}
			if seen[gid] {
				t.Fatalf("duplicate group in path")
			}
			seen[gid] = true
		}
	}
}

func TestSelectPathTooManyRelays(t *testing.T) {
	d, err := NewPartition(10, 5, rng.New(1)) // 2 groups only
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SelectPath(0, 9, 3, rng.New(1)); err == nil {
		t.Fatal("selected more groups than exist")
	}
}

func TestSelectPathErrors(t *testing.T) {
	d, _ := NewPartition(100, 5, rng.New(1))
	if _, err := d.SelectPath(0, 99, 0, rng.New(1)); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestPathMembers(t *testing.T) {
	d, _ := NewPartition(20, 5, rng.New(1))
	path, err := d.SelectPath(0, 19, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ms := d.PathMembers(path)
	if len(ms) != 2 {
		t.Fatalf("len = %d", len(ms))
	}
	for i, gid := range path {
		if len(ms[i]) != len(d.Members(gid)) {
			t.Fatalf("member set %d mismatched", i)
		}
	}
}

func TestProvisionKeysAndOnionFlow(t *testing.T) {
	d, err := NewPartition(20, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupCipher(0); err == nil {
		t.Fatal("cipher available before provisioning")
	}
	if _, err := d.NodeCipher(0); err == nil {
		t.Fatal("node cipher available before provisioning")
	}
	if err := d.ProvisionKeys(); err != nil {
		t.Fatal(err)
	}

	src, dst := contact.NodeID(0), contact.NodeID(19)
	path, err := d.SelectPath(src, dst, 3, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	hops := make([]onion.Hop, len(path))
	for i, gid := range path {
		c, err := d.GroupCipher(gid)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = onion.Hop{Group: gid, Cipher: c}
	}
	destCipher, err := d.NodeCipher(dst)
	if err != nil {
		t.Fatal(err)
	}
	data, err := onion.Build(onion.NodeID(dst), []byte("covert"), hops, destCipher, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Any member of R_1 can peel; a member of a different group cannot.
	c1, _ := d.GroupCipher(path[0])
	if _, err := onion.Peel(data, c1); err != nil {
		t.Fatalf("R_1 member failed to peel: %v", err)
	}
	other, _ := d.GroupCipher(path[1])
	if _, err := onion.Peel(data, other); err == nil {
		t.Fatal("non-member peeled the outer layer")
	}
}

func TestNodeCipherRange(t *testing.T) {
	d, _ := NewPartition(5, 2, rng.New(1))
	if err := d.ProvisionKeys(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.NodeCipher(99); err == nil {
		t.Fatal("accepted out-of-range node")
	}
}

func TestAdHocDisjointEnoughNodes(t *testing.T) {
	gs, err := AdHoc(100, 5, 3, []contact.NodeID{0, 99}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 {
		t.Fatalf("groups = %d", len(gs))
	}
	for _, g := range gs {
		if len(g) != 5 {
			t.Fatalf("group size %d", len(g))
		}
		for _, v := range g {
			if v == 0 || v == 99 {
				t.Fatal("excluded node selected")
			}
			// No duplicates within a group.
			cnt := 0
			for _, w := range g {
				if w == v {
					cnt++
				}
			}
			if cnt != 1 {
				t.Fatalf("duplicate node %d in group", v)
			}
		}
	}
}

func TestAdHocCambridgeRegime(t *testing.T) {
	// n=12, g=10, K=3, exclude src+dst: every group is the full
	// candidate set of 10.
	gs, err := AdHoc(12, 10, 3, []contact.NodeID{0, 11}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		if len(g) != 10 {
			t.Fatalf("group size %d, want all 10 candidates", len(g))
		}
	}
}

func TestAdHocErrors(t *testing.T) {
	if _, err := AdHoc(0, 1, 1, nil, rng.New(1)); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := AdHoc(5, 0, 1, nil, rng.New(1)); err == nil {
		t.Fatal("accepted g=0")
	}
	if _, err := AdHoc(5, 2, 0, nil, rng.New(1)); err == nil {
		t.Fatal("accepted k=0")
	}
	all := []contact.NodeID{0, 1, 2}
	if _, err := AdHoc(3, 2, 1, all, rng.New(1)); err == nil {
		t.Fatal("accepted empty candidate set")
	}
}

func BenchmarkNewPartition(b *testing.B) {
	s := rng.New(1)
	for i := 0; i < b.N; i++ {
		_, _ = NewPartition(100, 5, s)
	}
}

func BenchmarkSelectPath(b *testing.B) {
	d, _ := NewPartition(100, 5, rng.New(1))
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = d.SelectPath(0, 99, 3, s)
	}
}

func TestSelectPathSingleGroupNetwork(t *testing.T) {
	// n == g: one group holds everyone, including both endpoints, so
	// no eligible relay group exists. Must error, not panic.
	d, err := NewPartition(6, 6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SelectPath(0, 5, 1, rng.New(1)); err == nil {
		t.Fatal("selected a path with no eligible groups")
	}
}

func TestSelectPathEndpointsShareGroup(t *testing.T) {
	// When src and dst share a group, only one group is excluded.
	d, err := NewPartition(12, 6, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var src, dst contact.NodeID = -1, -1
	members := d.Members(0)
	src, dst = members[0], members[1]
	path, err := d.SelectPath(src, dst, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if path[0] == d.GroupOf(src) {
		t.Fatal("path includes the endpoints' group")
	}
}
