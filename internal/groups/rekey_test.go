package groups

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/onion"
	"repro/internal/rng"
)

func provisioned(t *testing.T) *Directory {
	t.Helper()
	d, err := NewPartition(20, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ProvisionKeys(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRekeyRotatesKeys(t *testing.T) {
	d := provisioned(t)
	if d.Epoch() != 0 {
		t.Fatalf("epoch = %d", d.Epoch())
	}
	member := d.Members(0)[0]
	oldCipher, err := d.MemberCipher(member, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := oldCipher.Seal([]byte("pre-rekey layer"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rekey(nil); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch = %d after rekey", d.Epoch())
	}
	newCipher, err := d.MemberCipher(member, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newCipher.Open(ct); err == nil {
		t.Fatal("new epoch key opened a pre-rekey ciphertext")
	}
}

func TestRekeyBeforeProvisionFails(t *testing.T) {
	d, err := NewPartition(10, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rekey(nil); err == nil {
		t.Fatal("rekeyed without keys")
	}
}

func TestRevocationDeniesKeys(t *testing.T) {
	d := provisioned(t)
	victim := d.Members(1)[0]
	if err := d.Rekey([]contact.NodeID{victim}); err != nil {
		t.Fatal(err)
	}
	if !d.IsRevoked(victim) || d.Revoked() != 1 {
		t.Fatal("revocation not recorded")
	}
	if _, err := d.MemberCipher(victim, 1); err == nil {
		t.Fatal("revoked member obtained its group key")
	}
	if _, err := d.OwnCipher(victim); err == nil {
		t.Fatal("revoked member obtained its node key")
	}
	// Other members of the same group keep access.
	for _, m := range d.Members(1) {
		if m == victim {
			continue
		}
		if _, err := d.MemberCipher(m, 1); err != nil {
			t.Fatalf("innocent member denied: %v", err)
		}
	}
}

func TestReinstate(t *testing.T) {
	d := provisioned(t)
	victim := d.Members(0)[1]
	if err := d.Rekey([]contact.NodeID{victim}); err != nil {
		t.Fatal(err)
	}
	d.Reinstate(victim)
	if d.IsRevoked(victim) {
		t.Fatal("still revoked after reinstate")
	}
	if _, err := d.MemberCipher(victim, 0); err != nil {
		t.Fatalf("reinstated member denied: %v", err)
	}
}

func TestMemberCipherEnforcesMembership(t *testing.T) {
	d := provisioned(t)
	outsider := d.Members(1)[0] // member of group 1, not group 0
	if _, err := d.MemberCipher(outsider, 0); err == nil {
		t.Fatal("non-member obtained a group key")
	}
	if _, err := d.MemberCipher(99, 0); err == nil {
		t.Fatal("unknown node obtained a group key")
	}
}

func TestRekeyRejectsUnknownNodes(t *testing.T) {
	d := provisioned(t)
	if err := d.Rekey([]contact.NodeID{-1}); err == nil {
		t.Fatal("revoked a negative node")
	}
	if err := d.Rekey([]contact.NodeID{100}); err == nil {
		t.Fatal("revoked an out-of-range node")
	}
}

func TestOnionAcrossRekeyMustBeRebuilt(t *testing.T) {
	// End-to-end: an onion built in epoch 0 is unpeelable after a
	// rekey; rebuilding it under the new keys restores routing.
	d := provisioned(t)
	src, dst := contact.NodeID(0), contact.NodeID(19)
	path, err := d.SelectPath(src, dst, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	build := func() []byte {
		hops := make([]onion.Hop, len(path))
		for i, gid := range path {
			c, err := d.GroupCipher(gid)
			if err != nil {
				t.Fatal(err)
			}
			hops[i] = onion.Hop{Group: gid, Cipher: c}
		}
		destCipher, err := d.NodeCipher(dst)
		if err != nil {
			t.Fatal(err)
		}
		data, err := onion.Build(onion.NodeID(dst), []byte("m"), hops, destCipher, 0)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	old := build()
	if err := d.Rekey(nil); err != nil {
		t.Fatal(err)
	}
	firstMember := d.Members(path[0])[0]
	c, err := d.MemberCipher(firstMember, path[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := onion.Peel(old, c); err == nil {
		t.Fatal("stale onion peeled after rekey")
	}
	fresh := build()
	if _, err := onion.Peel(fresh, c); err != nil {
		t.Fatalf("fresh onion rejected: %v", err)
	}
}

func TestProvisionHybridKeysTrustSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen")
	}
	d, err := NewPartition(6, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ProvisionHybridKeys(1024); err != nil {
		t.Fatal(err)
	}
	src, dst := d.Members(0)[0], d.Members(2)[0]
	path, err := d.SelectPath(src, dst, 1, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	seal, err := d.GroupCipher(path[0])
	if err != nil {
		t.Fatal(err)
	}
	destSeal, err := d.NodeCipher(dst)
	if err != nil {
		t.Fatal(err)
	}
	data, err := onion.Build(onion.NodeID(dst),
		[]byte("public keys only at the source"),
		[]onion.Hop{{Group: path[0], Cipher: seal}}, destSeal, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The seal-side cipher (what the source holds) must NOT peel.
	if _, err := onion.Peel(data, seal); err == nil {
		t.Fatal("source's public-key cipher peeled a layer")
	}
	// A group member peels with its private key.
	member := d.Members(path[0])[0]
	open, err := d.MemberCipher(member, path[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := onion.Peel(data, open)
	if err != nil {
		t.Fatal(err)
	}
	// Destination unwraps with its private key; the seal side cannot.
	destOpen, err := d.OwnCipher(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := onion.Unwrap(p.Inner, destSeal); err == nil {
		t.Fatal("public destination key unwrapped the payload")
	}
	got, err := onion.Unwrap(p.Inner, destOpen)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "public keys only at the source" {
		t.Fatalf("payload %q", got)
	}
}

func TestProvisionHybridKeysValidation(t *testing.T) {
	d, err := NewPartition(4, 2, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ProvisionHybridKeys(512); err == nil {
		t.Fatal("accepted 512-bit keys")
	}
}

func TestRekeyPreservesHybridMode(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen")
	}
	d, err := NewPartition(4, 2, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ProvisionHybridKeys(1024); err != nil {
		t.Fatal(err)
	}
	if err := d.Rekey(nil); err != nil {
		t.Fatal(err)
	}
	// After a rekey the directory must still be in hybrid mode: the
	// seal side cannot open.
	member := d.Members(0)[0]
	seal, err := d.GroupCipher(0)
	if err != nil {
		t.Fatal(err)
	}
	open, err := d.MemberCipher(member, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := seal.Seal([]byte("post-rekey"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seal.Open(ct); err == nil {
		t.Fatal("seal side opened after rekey: symmetric mode leaked in")
	}
	if _, err := open.Open(ct); err != nil {
		t.Fatalf("member failed to open after rekey: %v", err)
	}
}
