package dispatch

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resultcache"
	"repro/internal/runner"
)

func contentKey(t *testing.T, salt string) string {
	t.Helper()
	sum := sha256.Sum256([]byte(salt))
	return hex.EncodeToString(sum[:])
}

func openStore(t *testing.T, dir, salt, owner string) *resultcache.Store {
	t.Helper()
	s, err := resultcache.Open(dir, contentKey(t, salt), "spec", 1, owner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// trialFn returns a deterministic function of the trial index and
// counts its invocations.
func trialFn(calls *atomic.Int64) func(i int) (float64, error) {
	return func(i int) (float64, error) {
		calls.Add(1)
		return float64(i) * 1.5, nil
	}
}

func TestRunColdComputesAll(t *testing.T) {
	s := openStore(t, t.TempDir(), "cold", "w")
	d := New(s, Options{Owner: "w", ChunkSize: 4})
	var calls atomic.Int64
	out, err := Run(d, nil, "batch", 2, 10, trialFn(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("len(out) = %d; want 10", len(out))
	}
	for i, v := range out {
		if v != float64(i)*1.5 {
			t.Fatalf("out[%d] = %v; want %v", i, v, float64(i)*1.5)
		}
	}
	if calls.Load() != 10 {
		t.Fatalf("trial fn called %d times; want 10", calls.Load())
	}
}

func TestRunWarmComputesNothing(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, "warm", "w1")
	d := New(s, Options{Owner: "w1", ChunkSize: 4})
	var calls atomic.Int64
	want, err := Run(d, nil, "batch", 2, 10, trialFn(&calls))
	if err != nil {
		t.Fatal(err)
	}

	// A second worker over the same entry must serve every trial from
	// the cache and never invoke the trial function.
	s2 := openStore(t, dir, "warm", "w2")
	d2 := New(s2, Options{Owner: "w2", ChunkSize: 4})
	var calls2 atomic.Int64
	got, err := Run(d2, nil, "batch", 2, 10, trialFn(&calls2))
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Fatalf("warm run executed %d trials; want 0", calls2.Load())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm result %d = %v; want %v", i, got[i], want[i])
		}
	}
}

func TestRunOddTrialCountAndChunkBoundary(t *testing.T) {
	s := openStore(t, t.TempDir(), "odd", "w")
	d := New(s, Options{Owner: "w", ChunkSize: 3})
	out, err := Run(d, nil, "batch", 1, 7, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d; want %d", i, v, i*i)
		}
	}
	if n := s.Loaded(); n != 7 {
		t.Fatalf("store holds %d records; want 7", n)
	}
}

func TestRunZeroTrials(t *testing.T) {
	s := openStore(t, t.TempDir(), "zero", "w")
	d := New(s, Options{Owner: "w"})
	out, err := Run(d, nil, "batch", 1, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Run(0 trials) = %v, %v; want nil, nil", out, err)
	}
}

func TestRunPropagatesTrialError(t *testing.T) {
	s := openStore(t, t.TempDir(), "err", "w")
	d := New(s, Options{Owner: "w", ChunkSize: 4})
	boom := errors.New("boom")
	_, err := Run(d, nil, "batch", 1, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want wrapped boom", err)
	}
}

func TestRunInterrupted(t *testing.T) {
	s := openStore(t, t.TempDir(), "drain", "w")
	d := New(s, Options{Owner: "w", ChunkSize: 1})
	sup := runner.NewSupervisor(0)
	sup.Stop()
	_, err := Run(d, sup, "batch", 1, 4, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("err = %v; want ErrInterrupted", err)
	}
}

// TestFleetConcurrentWorkers runs several dispatchers over the same
// entry concurrently and asserts everyone assembles the identical
// batch with no trial computed more than... once per worker at most —
// and, in aggregate, every trial at least once.
func TestFleetConcurrentWorkers(t *testing.T) {
	dir := t.TempDir()
	const trials = 40
	const fleet = 4
	var wg sync.WaitGroup
	results := make([][]float64, fleet)
	errs := make([]error, fleet)
	var calls atomic.Int64
	for w := 0; w < fleet; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := fmt.Sprintf("w%d", w)
			s, err := resultcache.Open(dir, contentKey(t, "fleet"), "spec", 1, owner)
			if err != nil {
				errs[w] = err
				return
			}
			defer s.Close()
			d := New(s, Options{Owner: owner, ChunkSize: 4, Poll: 5 * time.Millisecond})
			results[w], errs[w] = Run(d, nil, "batch", 1, trials, trialFn(&calls))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < fleet; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d result %d = %v; worker 0 has %v", w, i, results[w][i], results[0][i])
			}
		}
	}
	if calls.Load() < trials {
		t.Fatalf("fleet computed %d trials in aggregate; want >= %d", calls.Load(), trials)
	}
}

// TestStaleLeaseStolen plants a lease whose mtime is far in the past —
// the signature of a SIGKILLed worker — and asserts a new worker
// steals it and completes the batch.
func TestStaleLeaseStolen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, "steal", "victim")
	d := New(s, Options{Owner: "victim", ChunkSize: 8, LeaseTTL: time.Hour})
	// Forge the dead worker's lease for chunk [0,8) of "batch".
	path := d.leasePath("batch", &chunk{lo: 0, hi: 8})
	if err := os.WriteFile(path, []byte("victim\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, "steal", "stealer")
	d2 := New(s2, Options{Owner: "stealer", ChunkSize: 8, LeaseTTL: time.Hour, Poll: 5 * time.Millisecond})
	out, err := Run(d2, nil, "batch", 1, 8, func(i int) (int, error) { return i + 100, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+100 {
			t.Fatalf("out[%d] = %d; want %d", i, v, i+100)
		}
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale lease still present after steal: %v", err)
	}
}

// TestReleaseSparesStolenLease pins release's owner check: after a
// TTL steal, the lease at the chunk's path belongs to the stealer, and
// the slow original holder's release must leave it in place — deleting
// it would let a third worker re-claim the chunk and triple-compute
// it. The holder's own lease is still removed.
func TestReleaseSparesStolenLease(t *testing.T) {
	s := openStore(t, t.TempDir(), "release", "holder")
	d := New(s, Options{Owner: "holder"})
	ch := &chunk{lo: 0, hi: 8}
	path := d.leasePath("batch", ch)

	if err := os.WriteFile(path, []byte("stealer\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.release("batch", ch)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("release deleted the stealer's live lease: %v", err)
	}

	if err := os.WriteFile(path, []byte("holder\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.release("batch", ch)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("release kept this worker's own lease: %v", err)
	}
}

// TestFreshLeaseBlocksThenServes asserts a live peer's lease is not
// stolen: the second worker waits until the holder's records appear.
func TestFreshLeaseBlocksThenServes(t *testing.T) {
	dir := t.TempDir()
	holder := openStore(t, dir, "block", "holder")
	dh := New(holder, Options{Owner: "holder", ChunkSize: 8, LeaseTTL: time.Hour})
	path := dh.leasePath("batch", &chunk{lo: 0, hi: 8})
	if err := os.WriteFile(path, []byte("holder\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The waiter polls; after a few polls the "holder" publishes its
	// results and releases, and the waiter assembles without ever
	// running a trial.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
		for i := 0; i < 8; i++ {
			data, err := runner.EncodeResult(i * 7)
			if err == nil {
				err = holder.Save("batch", i, data)
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
		os.Remove(path)
	}()

	waiter := openStore(t, dir, "block", "waiter")
	dw := New(waiter, Options{Owner: "waiter", ChunkSize: 8, LeaseTTL: time.Hour, Poll: 5 * time.Millisecond})
	var calls atomic.Int64
	out, err := Run(dw, nil, "batch", 1, 8, func(i int) (int, error) {
		calls.Add(1)
		return i * 7, nil
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("waiter executed %d trials behind a live lease; want 0", calls.Load())
	}
	for i, v := range out {
		if v != i*7 {
			t.Fatalf("out[%d] = %d; want %d", i, v, i*7)
		}
	}
}

// TestByteIdenticalToSupervised is the determinism pin: the dispatch
// path must hand back results gob-identical to runner.Supervised.
func TestByteIdenticalToSupervised(t *testing.T) {
	fn := func(i int) (float64, error) { return 1.0 / float64(i+1), nil }
	want, err := runner.Supervised[float64](nil, nil, "batch", 3, 20, fn)
	if err != nil {
		t.Fatal(err)
	}
	s := openStore(t, t.TempDir(), "pin", "w")
	d := New(s, Options{Owner: "w", ChunkSize: 7})
	got, err := Run(d, nil, "batch", 3, 20, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if wb, gb := fmt.Sprintf("%x", want[i]), fmt.Sprintf("%x", got[i]); wb != gb {
			t.Fatalf("trial %d: dispatch %s != supervised %s", i, gb, wb)
		}
	}
}
