// Package dispatch schedules Monte Carlo trial batches across a fleet
// of workers sharing a content-addressed result cache
// (internal/resultcache). Workers may be goroutines of one process or
// separate processes on a shared directory — the protocol is the same:
//
//  1. A batch is split into fixed trial-index chunks.
//  2. A worker claims a chunk by creating its lease file with
//     O_CREATE|O_EXCL in the cache entry's lease directory — the
//     filesystem arbitrates, exactly one creator wins.
//  3. While computing, the holder heartbeats the lease (mtime bumps).
//     A lease whose mtime is older than the TTL belonged to a dead or
//     stalled worker; any other worker steals it by renaming the lease
//     file aside (rename is atomic, so exactly one stealer wins) and
//     re-claiming the chunk.
//  4. Completed trials are appended to the worker's own cache shard;
//     everyone else picks them up by polling Refresh.
//  5. When every trial of the batch is in the cache, each worker
//     assembles the results in trial-index order.
//
// Correctness never rests on mutual exclusion: trials are
// deterministic in their index (runner.MapTrials contract), so if a
// steal races the original holder and both compute a chunk, they
// append bit-identical records and the cache index deduplicates them.
// Leases only prevent wasted duplicate work; the reduced output is
// byte-identical to a single-process run at any fleet size.
package dispatch

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/runner"
)

// Options tunes the dispatch protocol. The zero value of each field
// selects the default; results are invariant to every field.
type Options struct {
	// Owner names this worker's shard and leases (default "anon";
	// CLIs pass hostname-pid).
	Owner string
	// ChunkSize is the trial count per lease (default 32). Smaller
	// chunks spread better across a fleet; larger ones amortize lease
	// traffic.
	ChunkSize int
	// LeaseTTL is how stale a lease's mtime must be before another
	// worker steals it (default 30s). It bounds how long a dead
	// worker's chunk stays unclaimed.
	LeaseTTL time.Duration
	// Heartbeat is how often a holder refreshes its lease mtime
	// (default LeaseTTL/4).
	Heartbeat time.Duration
	// Poll is the wait between cache refreshes while another worker
	// holds the remaining chunks (default 150ms).
	Poll time.Duration
}

func (o Options) withDefaults() Options {
	if o.Owner == "" {
		o.Owner = "anon"
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 32
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.Poll <= 0 {
		o.Poll = 150 * time.Millisecond
	}
	return o
}

// Dispatcher runs batches against one open cache entry. Create one per
// (spec, seed) cache entry and attach it to the scenario engine via
// Engine.SuperviseFleet.
type Dispatcher struct {
	store *resultcache.Store
	opt   Options
}

// New returns a dispatcher over an open cache entry.
func New(store *resultcache.Store, opt Options) *Dispatcher {
	return &Dispatcher{store: store, opt: opt.withDefaults()}
}

// Store returns the underlying cache entry.
func (d *Dispatcher) Store() *resultcache.Store { return d.store }

// chunk is one leaseable trial range [lo, hi).
type chunk struct {
	lo, hi int
	done   bool
}

// Run executes one batch of trials through the fleet protocol and
// returns the results in trial-index order, byte-identical to
// runner.Supervised at any fleet size. fn must be deterministic in its
// index. workers bounds this process's concurrency within a claimed
// chunk; sup (optional) provides the watchdog, quarantine and drain
// semantics of runner.Supervised for the chunks this worker executes.
func Run[T any](d *Dispatcher, sup *runner.Supervisor, batch string, workers, trials int, fn func(i int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	chunks := make([]*chunk, 0, (trials+d.opt.ChunkSize-1)/d.opt.ChunkSize)
	for lo := 0; lo < trials; lo += d.opt.ChunkSize {
		hi := lo + d.opt.ChunkSize
		if hi > trials {
			hi = trials
		}
		chunks = append(chunks, &chunk{lo: lo, hi: hi})
	}

	c := obs.Active()
	var executed atomic.Int64 // trials this process computed (cache misses)
	remaining := len(chunks)
	for remaining > 0 {
		if sup != nil && sup.Stopping() {
			return nil, fmt.Errorf("dispatch: batch %q: %w", batch, runner.ErrInterrupted)
		}
		progressed := false
		for _, ch := range chunks {
			if ch.done {
				continue
			}
			if d.satisfied(batch, ch) {
				ch.done = true
				remaining--
				progressed = true
				continue
			}
			held, err := d.lease(batch, ch, c)
			if err != nil {
				return nil, fmt.Errorf("dispatch: batch %q chunk [%d,%d): %w", batch, ch.lo, ch.hi, err)
			}
			if !held {
				continue // another live worker owns it; revisit after Refresh
			}
			err = execute(d, sup, batch, workers, ch, &executed, fn)
			d.release(batch, ch)
			if err != nil {
				return nil, err
			}
			ch.done = true
			remaining--
			progressed = true
		}
		if remaining == 0 {
			break
		}
		if !progressed {
			// Everything left is leased elsewhere: wait for peers'
			// appends (or for their leases to go stale) and rescan.
			if sup != nil && sup.Stopping() {
				return nil, fmt.Errorf("dispatch: batch %q: %w", batch, runner.ErrInterrupted)
			}
			time.Sleep(d.opt.Poll)
		}
		if err := d.store.Refresh(); err != nil {
			return nil, fmt.Errorf("dispatch: batch %q: %w", batch, err)
		}
	}

	out, err := assemble[T](d.store, batch, trials)
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.Add(obs.CacheMisses, executed.Load())
		c.Add(obs.CacheHits, int64(trials)-executed.Load())
	}
	return out, nil
}

// satisfied reports whether every trial of the chunk is already in the
// cache index.
func (d *Dispatcher) satisfied(batch string, ch *chunk) bool {
	for i := ch.lo; i < ch.hi; i++ {
		if !d.store.Has(batch, i) {
			return false
		}
	}
	return true
}

// leasePath names the chunk's lease file. The batch label is hashed:
// it contains slashes, and hashing keeps distinct labels collision-free
// after any filename sanitization.
func (d *Dispatcher) leasePath(batch string, ch *chunk) string {
	sum := sha256.Sum256([]byte(batch))
	return filepath.Join(d.store.LeaseDir(), fmt.Sprintf("%x-%d.lease", sum[:8], ch.lo))
}

// lease tries to claim the chunk: first by creating the lease file
// exclusively, then — if the existing lease has outlived the TTL
// without a heartbeat — by atomically renaming it aside and re-trying.
// Exactly one worker can win each path; losing either race is not an
// error, just "someone else is on it".
func (d *Dispatcher) lease(batch string, ch *chunk, c *obs.Collector) (bool, error) {
	path := d.leasePath(batch, ch)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%s\n", d.opt.Owner)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(path)
				return false, fmt.Errorf("write lease: %w", werr)
			}
			if c != nil {
				c.Add(obs.DispatchLeases, 1)
			}
			return true, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return false, fmt.Errorf("create lease: %w", err)
		}
		st, serr := os.Stat(path)
		if serr != nil {
			continue // holder released between our attempts; retry create
		}
		if time.Since(st.ModTime()) < d.opt.LeaseTTL {
			return false, nil // live holder
		}
		// Stale: the holder died or stalled past the TTL. Rename the
		// lease aside — atomic, so exactly one stealer proceeds — and
		// loop back to create our own.
		aside := path + ".stale-" + resultcache.SanitizeOwner(d.opt.Owner)
		if rerr := os.Rename(path, aside); rerr != nil {
			return false, nil // another stealer won; treat as held
		}
		os.Remove(aside)
		if c != nil {
			c.Add(obs.DispatchSteals, 1)
		}
	}
	return false, nil
}

// release removes the chunk's lease, but only if it still names this
// worker. A missing file, or one naming someone else, means a stealer
// claimed the chunk while we were computing (TTL shorter than the
// chunk) and the lease at this path is now the stealer's live claim —
// deleting it would invite a third worker to re-claim and
// triple-compute the chunk. Records are bit-identical either way, so
// the owner check only prevents wasted work, never corruption.
func (d *Dispatcher) release(batch string, ch *chunk) {
	path := d.leasePath(batch, ch)
	data, err := os.ReadFile(path)
	if err != nil || strings.TrimSpace(string(data)) != d.opt.Owner {
		return
	}
	os.Remove(path)
}

// execute runs one claimed chunk through runner.Supervised, persisting
// every completed trial into this worker's shard, with a heartbeat
// keeping the lease fresh for the duration. (A free function because
// Go methods cannot take type parameters.)
func execute[T any](d *Dispatcher, sup *runner.Supervisor, batch string, workers int, ch *chunk, executed *atomic.Int64, fn func(i int) (T, error)) error {
	stop := d.heartbeat(batch, ch)
	defer stop()
	rs := &rangeStore{store: d.store, batch: batch, lo: ch.lo, executed: executed}
	_, err := runner.Supervised(sup, rs, batch, workers, ch.hi-ch.lo, func(i int) (T, error) {
		return fn(ch.lo + i)
	})
	if err != nil {
		return err
	}
	return nil
}

// heartbeat bumps the lease mtime every Heartbeat until the returned
// stop function runs. Chtimes errors are ignored: the lease may have
// been stolen and removed, which only means duplicate work, never
// corruption.
func (d *Dispatcher) heartbeat(batch string, ch *chunk) (stop func()) {
	path := d.leasePath(batch, ch)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(d.opt.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := time.Now()
				_ = os.Chtimes(path, now, now)
			}
		}
	}()
	return func() { close(done) }
}

// rangeStore adapts the cache entry to runner.ResultStore for one
// chunk: chunk-local index i maps to global trial index lo+i, so the
// runner's whole quarantine/watchdog/resume machinery runs unchanged.
// Save also counts executed trials — the process's cache-miss tally.
type rangeStore struct {
	store    *resultcache.Store
	batch    string
	lo       int
	executed *atomic.Int64
}

func (r *rangeStore) Lookup(batch string, i int) ([]byte, bool) {
	return r.store.Peek(r.batch, r.lo+i)
}

func (r *rangeStore) Save(batch string, i int, data []byte) error {
	r.executed.Add(1)
	return r.store.Save(r.batch, r.lo+i, data)
}

// assemble reads the completed batch out of the cache in trial-index
// order. Every trial must be present; a gap here is a protocol bug,
// not a recoverable condition.
func assemble[T any](store *resultcache.Store, batch string, trials int) ([]T, error) {
	out := make([]T, trials)
	for i := 0; i < trials; i++ {
		data, ok := store.Peek(batch, i)
		if !ok {
			return nil, fmt.Errorf("dispatch: batch %q: trial %d missing after all chunks completed", batch, i)
		}
		v, err := runner.DecodeResult[T](data)
		if err != nil {
			return nil, fmt.Errorf("dispatch: batch %q trial %d: %w", batch, i, err)
		}
		out[i] = v
	}
	return out, nil
}
