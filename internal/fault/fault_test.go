package fault

import (
	"testing"

	"repro/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Truncate: 1, Corrupt: 1, Duplicate: 1, Crash: 1, Retries: 10},
		Uniform(0.3),
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Truncate: -0.1},
		{Corrupt: 1.5},
		{Duplicate: 2},
		{Crash: -1},
		{Retries: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestUniform(t *testing.T) {
	if got := Uniform(0); got.Enabled() {
		t.Fatalf("Uniform(0) = %+v, want disabled zero config", got)
	}
	c := Uniform(0.2)
	if c.Truncate != 0.2 || c.Corrupt != 0.2 || c.Duplicate != 0.1 || c.Crash != 0.02 {
		t.Fatalf("Uniform(0.2) = %+v", c)
	}
	if c.Retries != 2 {
		t.Fatalf("Uniform(0.2).Retries = %d, want 2", c.Retries)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Uniform(0.2) invalid: %v", err)
	}
}

// TestZeroConfigDrawsNothing proves the acceptance criterion that a
// zero fault rate leaves every random schedule untouched: a disabled
// plan consumes no stream state at all.
func TestZeroConfigDrawsNothing(t *testing.T) {
	s := rng.New(7).Split("faults")
	ref := rng.New(7).Split("faults")
	p := NewPlan(Config{}, s)
	for i := 0; i < 100; i++ {
		if h := p.Handoff(128); h != (Handoff{}) {
			t.Fatalf("zero plan produced fault %+v", h)
		}
		if p.Crash() {
			t.Fatal("zero plan produced a crash")
		}
	}
	if got, want := s.Float64(), ref.Float64(); got != want {
		t.Fatalf("zero plan consumed stream state: next draw %v, want %v", got, want)
	}
}

// TestScheduleReproduces is the core determinism contract: the same
// config and seed yield an identical fault schedule, and different
// seeds yield different ones.
func TestScheduleReproduces(t *testing.T) {
	cfg := Uniform(0.4)
	draw := func(seed uint64) []Handoff {
		p := NewPlan(cfg, rng.New(seed).Split("faults"))
		out := make([]Handoff, 200)
		for i := range out {
			out[i] = p.Handoff(100 + i)
		}
		return out
	}
	a, b := draw(1), draw(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := draw(42)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 42 produced identical schedules")
	}
}

func TestHandoffClasses(t *testing.T) {
	p := NewPlan(Uniform(0.5), rng.New(3).Split("faults"))
	var trunc, corr, dup, clean int
	for i := 0; i < 2000; i++ {
		h := p.Handoff(256)
		switch {
		case h.Truncate:
			trunc++
			if h.Corrupt || h.Duplicate {
				t.Fatalf("truncate combined with other classes: %+v", h)
			}
			if h.Cut < 0 || h.Cut >= 256 {
				t.Fatalf("cut %d out of range", h.Cut)
			}
		case h.Corrupt:
			corr++
			if h.Duplicate {
				t.Fatalf("corrupt combined with duplicate: %+v", h)
			}
			if h.Flip < 0 || h.Flip >= 256 {
				t.Fatalf("flip %d out of range", h.Flip)
			}
		case h.Duplicate:
			dup++
		default:
			clean++
		}
		if h.Damaged() != (h.Truncate || h.Corrupt) {
			t.Fatalf("Damaged() inconsistent: %+v", h)
		}
	}
	for name, n := range map[string]int{"truncate": trunc, "corrupt": corr, "duplicate": dup, "clean": clean} {
		if n == 0 {
			t.Errorf("class %s never drawn in 2000 hand-offs at rate 0.5", name)
		}
	}
}

func TestCrash(t *testing.T) {
	p := NewPlan(Config{Crash: 0.5}, rng.New(9).Split("faults"))
	if !p.CrashEnabled() {
		t.Fatal("CrashEnabled() = false with Crash=0.5")
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if p.Crash() {
			hits++
		}
	}
	if hits < 400 || hits > 600 {
		t.Fatalf("crash rate %d/1000, want ~500", hits)
	}
	if NewPlan(Config{Truncate: 0.5}, rng.New(9)).CrashEnabled() {
		t.Fatal("CrashEnabled() = true without churn")
	}
}

func TestNewPlanPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid config", func() { NewPlan(Config{Corrupt: 2}, rng.New(1)) })
	mustPanic("nil stream", func() { NewPlan(Config{}, nil) })
}

func TestTruncateHelper(t *testing.T) {
	frame := []byte{1, 2, 3, 4, 5}
	torn := Truncate(frame, 3)
	if len(torn) != 3 || torn[0] != 1 || torn[2] != 3 {
		t.Fatalf("Truncate = %v", torn)
	}
	torn[0] = 99
	if frame[0] != 1 {
		t.Fatal("Truncate aliased its input")
	}
	if got := Truncate(frame, -1); len(got) != 0 {
		t.Fatalf("Truncate(frame, -1) = %v, want empty", got)
	}
	if got := Truncate(frame, 10); len(got) != 5 {
		t.Fatalf("Truncate(frame, 10) = %v, want full copy", got)
	}
}

func TestFlipHelper(t *testing.T) {
	frame := []byte{0x10, 0x20, 0x30}
	out := Flip(frame, 1)
	if out[1] != 0x21 || out[0] != 0x10 || out[2] != 0x30 {
		t.Fatalf("Flip = %v", out)
	}
	if frame[1] != 0x20 {
		t.Fatal("Flip mutated its input")
	}
	if got := Flip(frame, -5); got[0] != 0x11 {
		t.Fatalf("Flip clamp low = %v", got)
	}
	if got := Flip(frame, 99); got[2] != 0x31 {
		t.Fatalf("Flip clamp high = %v", got)
	}
	if Flip(nil, 0) != nil {
		t.Fatal("Flip(nil) != nil")
	}
}
