// Package fault is the deterministic fault-injection layer of the
// reproduction. The paper's models assume ideal contacts — every
// meeting completes a full onion hand-off — but its own trace
// evaluation shows delivery is driven by messy real contact structure,
// and deployed onion systems must survive truncated transfers and
// tampered onions (Ando et al.'s Π_t "bruised onion" design handles
// exactly delays and tampering). This package turns those hazards into
// a seed-driven, replayable schedule:
//
//   - contact truncation: a transfer aborts mid-bundle, leaving a torn
//     CRC frame the receiver must reject;
//   - bundle corruption: a byte flip that the Bundle-layer CRC or the
//     onion AEAD must catch, so a damaged onion is never delivered;
//   - duplicate redelivery: the same frame arrives twice and the
//     receiver must suppress the second copy;
//   - node churn: a participant crashes at a contact, dropping (or,
//     with persistent storage, preserving) its custody buffer.
//
// All decisions are drawn from an rng.Stream substream, so a fault
// schedule reproduces byte-for-byte for a fixed seed regardless of how
// the surrounding experiment is parallelized: consumers derive one
// Plan per deterministic scope (one per network, one per trial) and
// drive it in a deterministic order.
package fault

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// Config sets the independent fault probabilities. The zero value
// injects nothing and costs nothing on the hot path.
type Config struct {
	// Truncate is the per-hand-off probability that the transfer
	// aborts mid-frame, leaving the receiver a torn prefix of the
	// bundle (the CRC trailer, and usually part of the payload, is
	// missing). The sender notices the abort and may retry within the
	// same contact (Retries) before falling back to re-offering
	// custody at the next contact.
	Truncate float64
	// Corrupt is the per-hand-off probability of a transport-level
	// byte flip. The frame arrives complete but damaged; the Bundle
	// CRC (or, for a flip that survives framing, the onion AEAD)
	// must reject it. Corruption is dropped gracefully: the sender
	// keeps custody and re-offers at a later contact.
	Corrupt float64
	// Duplicate is the per-hand-off probability that a successfully
	// transferred frame is delivered a second time (retransmission
	// race). The receiver must suppress the duplicate: a message is
	// delivered to the application layer exactly once.
	Duplicate float64
	// Crash is the per-contact, per-participant probability that a
	// node crashes and restarts during the meeting. Unless
	// PreserveCustody is set, the restart loses the volatile custody
	// buffer; delivered payloads and duplicate-suppression state are
	// durable (a real node persists its delivered-ID log).
	Crash float64
	// PreserveCustody models nodes that persist custody buffers to
	// stable storage: a crash then keeps all carried onions.
	PreserveCustody bool
	// Retries is the in-contact retransmission budget after a
	// truncated hand-off. (Contacts are atomic events in the DES, so
	// the backoff between in-contact retries is immediate; the
	// custody re-offer at the next contact is the long backoff.)
	Retries int
}

// Validate checks probability ranges.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"truncate", c.Truncate},
		{"corrupt", c.Corrupt},
		{"duplicate", c.Duplicate},
		{"crash", c.Crash},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %v out of [0,1]", p.name, p.v)
		}
	}
	if c.Retries < 0 {
		return fmt.Errorf("fault: negative retry budget %d", c.Retries)
	}
	return nil
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.Truncate > 0 || c.Corrupt > 0 || c.Duplicate > 0 || c.Crash > 0
}

// handoffEnabled reports whether any per-hand-off class can fire.
func (c Config) handoffEnabled() bool {
	return c.Truncate > 0 || c.Corrupt > 0 || c.Duplicate > 0
}

// Uniform is the canonical single-knob fault mix used by the -faults
// CLI flag and the ablation-faults experiment: transfers truncate and
// corrupt at the given rate, duplicate at half of it, and nodes crash
// at a tenth of it, with a two-retry in-contact budget. rate 0 returns
// the zero Config.
func Uniform(rate float64) Config {
	if rate <= 0 {
		return Config{}
	}
	return Config{
		Truncate:  rate,
		Corrupt:   rate,
		Duplicate: rate / 2,
		Crash:     rate / 10,
		Retries:   2,
	}
}

// Handoff is the planned fate of one hand-off attempt. At most one of
// Truncate/Corrupt is set; Duplicate is only set for intact transfers.
type Handoff struct {
	Truncate  bool
	Cut       int // bytes kept of the torn frame, in [0, frameLen)
	Corrupt   bool
	Flip      int // offset of the flipped byte, in [0, frameLen)
	Duplicate bool
}

// Damaged reports whether the frame will arrive damaged.
func (h Handoff) Damaged() bool { return h.Truncate || h.Corrupt }

// Plan is one deterministic fault schedule: a Config bound to a random
// substream. Methods are safe for concurrent use, but draws are
// consumed in calling order — drive contacts sequentially (as every
// experiment in this repository does) for a reproducible schedule.
type Plan struct {
	cfg Config

	mu sync.Mutex
	s  *rng.Stream
}

// NewPlan binds a validated config to its substream. It panics on an
// invalid config; validate user input with Config.Validate first.
func NewPlan(cfg Config, s *rng.Stream) *Plan {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if s == nil {
		panic("fault: nil stream")
	}
	return &Plan{cfg: cfg, s: s}
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Handoff draws the fate of one hand-off attempt of a frame of
// frameLen bytes. Classes are drawn in a fixed order (truncate,
// corrupt, duplicate), each consuming stream state only when its
// probability is positive, so enabling a new fault class never
// perturbs the schedule of the already-enabled ones at rate 0.
func (p *Plan) Handoff(frameLen int) Handoff {
	if !p.cfg.handoffEnabled() || frameLen == 0 {
		return Handoff{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var h Handoff
	if p.cfg.Truncate > 0 && p.s.Bernoulli(p.cfg.Truncate) {
		h.Truncate = true
		h.Cut = p.s.IntN(frameLen)
		return h
	}
	if p.cfg.Corrupt > 0 && p.s.Bernoulli(p.cfg.Corrupt) {
		h.Corrupt = true
		h.Flip = p.s.IntN(frameLen)
		return h
	}
	if p.cfg.Duplicate > 0 && p.s.Bernoulli(p.cfg.Duplicate) {
		h.Duplicate = true
	}
	return h
}

// Crash draws whether one contact participant crashes during the
// meeting. It consumes no stream state when churn is disabled.
func (p *Plan) Crash() bool {
	if p.cfg.Crash <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.s.Bernoulli(p.cfg.Crash)
}

// CrashEnabled reports whether churn can fire at all, letting callers
// skip the crash roll entirely at rate 0.
func (p *Plan) CrashEnabled() bool { return p.cfg.Crash > 0 }

// Truncate returns a torn copy of the frame keeping the first keep
// bytes (clamped to [0, len(frame)]). The input is never mutated.
func Truncate(frame []byte, keep int) []byte {
	if keep < 0 {
		keep = 0
	}
	if keep > len(frame) {
		keep = len(frame)
	}
	return append([]byte(nil), frame[:keep]...)
}

// Flip returns a copy of the frame with one bit of the byte at pos
// flipped (pos is clamped into range). The input is never mutated.
func Flip(frame []byte, pos int) []byte {
	if len(frame) == 0 {
		return nil
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= len(frame) {
		pos = len(frame) - 1
	}
	out := append([]byte(nil), frame...)
	out[pos] ^= 0x01
	return out
}
