package cluster_test

// The chaos differential: the live tier runs the identical (workload,
// trace, seed) as the in-process reference, but every cluster
// connection passes through the seed-driven turbulence layer — delays,
// throttles, resets, half-open stalls, short-read tears, asymmetric
// partitions. The delivered message set and conserved stats must still
// agree EXACTLY, and every safety invariant must hold: chaos is allowed
// to cost wall time, never outcomes.
//
// This is an external test package because it closes the loop through
// internal/cluster/invariant, which itself imports cluster.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/cluster/invariant"
	"repro/internal/rng"
	"repro/internal/trace"
)

// chaosFor builds the turbulence layer for a test: the full fault
// repertoire with timing magnitudes tuned down so a CI run under -race
// stays fast, which changes nothing about coverage (every fault kind
// still fires) or determinism.
func chaosFor(seed uint64, nodes int) *chaos.Chaos {
	return chaos.New(chaos.Config{
		Seed:       seed,
		Nodes:      nodes,
		MaxDelayMs: 15,
		MinBps:     16 << 10,
		MaxBps:     64 << 10,
		MaxStallMs: 60,
	})
}

// TestDifferentialConferenceTraceUnderChaos replays the conference
// trace of TestDifferentialConferenceTrace through chaos seeds {1, 42}
// at 1 and 4 workers, demanding exact delivered-set and stats agreement
// with the chaos-free in-process reference, plus a clean invariant
// report.
func TestDifferentialConferenceTraceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP clusters")
	}
	full, err := trace.GenerateInfocom(rng.New(11).Split("trace"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := full.KeepBusiest(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Nodes: 5, GroupSize: 2, Seed: 11, Spray: true, Timeout: 10 * time.Second}
	msgs := cluster.SyntheticWorkload(11, 5, 12, 1, 2)
	const from, horizon = 32400, 7200

	ref, err := cluster.RunReference(cfg, msgs, tr, from, horizon)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.NetworkDeliveries(ref, msgs)
	if len(want) == 0 {
		t.Fatal("reference run delivered nothing — the differential would be vacuous")
	}
	wantStats := cluster.Subset(ref.TotalStats())
	spec := invariant.SpecOf(msgs)

	for _, chaosSeed := range []uint64{1, 42} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("chaos=%d_workers=%d", chaosSeed, workers), func(t *testing.T) {
				ccfg := cfg
				ccfg.Chaos = chaosFor(chaosSeed, cfg.Nodes)
				c, err := cluster.Launch(ccfg)
				if err != nil {
					t.Fatal(err)
				}
				defer func() {
					if err := c.Close(); err != nil {
						t.Errorf("close cluster: %v", err)
					}
				}()
				if err := c.Inject(msgs); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Replay(tr, from, horizon, workers); err != nil {
					t.Fatal(err)
				}
				if d := want.Diff(c.Deliveries(msgs)); d != "" {
					t.Fatalf("chaos changed the delivered set: %s", d)
				}
				if gotStats := cluster.Subset(c.TotalStats()); gotStats != wantStats {
					t.Fatalf("chaos changed conserved stats: cluster %+v, reference %+v", gotStats, wantStats)
				}
				if rep := invariant.Check(c, spec); !rep.Clean() {
					t.Fatalf("invariants violated under chaos: %v", rep.Err())
				}
			})
		}
	}
}
