package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/onion"
	"repro/internal/rng"
)

// DaemonConfig configures one dtnnode daemon.
type DaemonConfig struct {
	ID      int
	DirAddr string
	// ListenAddr defaults to an ephemeral loopback port.
	ListenAddr  string
	BufferLimit int
	// ReofferLimit caps how many buffer-full refusals a carried copy
	// survives before the daemon drops it (0 = unlimited re-offers).
	ReofferLimit int
	Spray        bool
	// Timeout bounds every socket I/O operation; the deadline is
	// refreshed on each read and write, so a multi-frame contact that
	// keeps making progress may run longer than Timeout while a stalled
	// one is torn down within it (default 10s).
	Timeout time.Duration
}

// Daemon is one DTN node running as a network service: it joins the
// directory, reconstructs the group structure and layer keys from its
// welcome, and then speaks the custody offer/verdict protocol over
// length-framed TCP. The node logic is internal/node unchanged — the
// daemon only swaps the in-memory pipe for sockets.
type Daemon struct {
	cfg  DaemonConfig
	node *node.Node

	mu          sync.Mutex
	lis         net.Listener
	addr        string
	incarnation uint64
	conns       map[net.Conn]struct{}
	closed      bool
	quit        chan struct{} // closed when the current incarnation stops
	wg          sync.WaitGroup
}

// ContactReport summarizes one live contact from the initiator's view.
type ContactReport struct {
	Offered    int // offers sent (both directions)
	Transfers  int // offers the receiving side accepted
	Deliveries int // accepted offers that were final deliveries
	Rejected   int // offers the receiving side turned down
}

// StartDaemon joins the directory at cfg.DirAddr and starts serving.
func StartDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	d := &Daemon{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
	}
	if err := d.open(1, false); err != nil {
		return nil, err
	}
	return d, nil
}

// open listens, registers at the given incarnation, and (on first
// join) builds the node from the directory's welcome.
func (d *Daemon) open(incarnation uint64, preserveCustody bool) error {
	lis, err := net.Listen("tcp", d.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("cluster: daemon %d listen: %w", d.cfg.ID, err)
	}
	welcome, err := d.register(lis.Addr().String(), incarnation)
	if err != nil {
		_ = lis.Close()
		return err
	}
	if d.node == nil {
		dir, err := buildView(welcome)
		if err != nil {
			_ = lis.Close()
			return err
		}
		if d.node, err = node.New(contact.NodeID(d.cfg.ID), dir, d.cfg.BufferLimit); err != nil {
			_ = lis.Close()
			return err
		}
		d.node.SetReofferLimit(d.cfg.ReofferLimit)
	} else {
		// Crash/restart: volatile custody is lost unless persisted;
		// durable logs (delivered, seen, acks) survive.
		d.node.Crash(preserveCustody)
	}
	d.mu.Lock()
	d.lis = lis
	d.addr = lis.Addr().String()
	d.incarnation = incarnation
	d.closed = false
	d.quit = make(chan struct{})
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(lis)
	return nil
}

// buildView reconstructs the client-side directory from a welcome:
// partition from the assignment, layer keys from the threshold shares.
func buildView(w *welcomeMsg) (*groups.Directory, error) {
	byNode := make([]onion.GroupID, len(w.Assignment))
	for i, gid := range w.Assignment {
		byNode[i] = onion.GroupID(gid)
	}
	dir, err := groups.NewFromAssignment(byNode, w.G)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuild partition: %w", err)
	}
	groupKeys, nodeKeys, err := recoverKeys(w)
	if err != nil {
		return nil, err
	}
	if err := dir.InstallSymmetricKeys(groupKeys, nodeKeys); err != nil {
		return nil, fmt.Errorf("cluster: install keys: %w", err)
	}
	return dir, nil
}

// register joins the directory and returns the welcome.
func (d *Daemon) register(addr string, incarnation uint64) (*welcomeMsg, error) {
	conn, err := dial(d.cfg.DirAddr, d.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := registerMsg{Version: protoVersion, ID: d.cfg.ID, Addr: addr, Incarnation: incarnation}
	if err := writeJSON(conn, mRegister, req); err != nil {
		return nil, err
	}
	var welcome welcomeMsg
	if err := readExpect(conn, mWelcome, &welcome); err != nil {
		return nil, fmt.Errorf("cluster: daemon %d register: %w", d.cfg.ID, err)
	}
	return &welcome, nil
}

// Addr returns the daemon's current listening address.
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addr
}

// Node exposes the underlying node for test assertions.
func (d *Daemon) Node() *node.Node { return d.node }

// Incarnation returns the daemon's current membership incarnation.
func (d *Daemon) Incarnation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.incarnation
}

// Send originates a message from this daemon's node. The path stream
// must be the same substream the reference tier uses for this message
// index (PathStream) or the two tiers route differently.
func (d *Daemon) Send(spec node.SendSpec, pathStream *rng.Stream) (string, error) {
	return d.node.Send(spec, pathStream)
}

// Kill abruptly closes the listener and every open connection without
// deregistering — the networked analogue of pulling the plug. Peers
// mid-contact observe a torn connection; custody they have not heard
// an accept-verdict for stays with them.
func (d *Daemon) Kill() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.quit)
	}
	lis := d.lis
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	d.wg.Wait()
}

// Wait blocks until the daemon's current incarnation has stopped (a
// Kill, a graceful Close, or a coordinator quit request) and every
// connection handler has drained.
func (d *Daemon) Wait() {
	d.mu.Lock()
	q := d.quit
	d.mu.Unlock()
	<-q
	d.wg.Wait()
}

// Restart brings a killed daemon back at the next incarnation,
// re-registering with the directory. Custody survives only when it was
// persisted (preserveCustody); the delivered/seen/ack logs always do.
func (d *Daemon) Restart(preserveCustody bool) error {
	d.mu.Lock()
	if !d.closed {
		d.mu.Unlock()
		return fmt.Errorf("cluster: daemon %d is still running", d.cfg.ID)
	}
	next := d.incarnation + 1
	d.mu.Unlock()
	return d.open(next, preserveCustody)
}

// Close gracefully shuts down: leave the directory, then stop serving.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	inc := d.incarnation
	d.mu.Unlock()
	if conn, err := dial(d.cfg.DirAddr, d.cfg.Timeout); err == nil {
		_ = writeJSON(conn, mLeave, leaveMsg{ID: d.cfg.ID, Incarnation: inc})
		_ = readExpect(conn, mOK, nil)
		_ = conn.Close()
	}
	d.Kill()
	return nil
}

func (d *Daemon) acceptLoop(lis net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		if c := obs.Active(); c != nil {
			c.Add(obs.ClusterAccepts, 1)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			_ = conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go d.serve(conn)
	}
}

// serve handles one inbound connection: a contact session when it
// opens with a hello, a control session otherwise.
func (d *Daemon) serve(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		_ = conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	// Per-I/O deadline refresh: progress keeps the connection alive, a
	// stall still times out within Timeout. The raw conn stays in
	// d.conns so Kill() can tear it down.
	rw := withIODeadline(conn, d.cfg.Timeout)
	typ, body, err := readMsg(rw)
	if err != nil {
		return
	}
	if typ == mHello {
		d.serveContact(rw, body)
		return
	}
	for {
		if err := d.serveControl(rw, typ, body); err != nil {
			return
		}
		if typ, body, err = readMsg(rw); err != nil {
			return
		}
	}
}

// errQuit unwinds a control session after a quit request.
var errQuit = errors.New("cluster: quit")

// serveControl executes one coordinator request.
func (d *Daemon) serveControl(conn net.Conn, typ byte, body []byte) error {
	switch typ {
	case mSend:
		var m sendMsg
		if err := unmarshalStrict(body, &m); err != nil {
			sendErr(conn, err)
			return err
		}
		if m.Src != d.cfg.ID {
			err := fmt.Errorf("send for node %d routed to node %d", m.Src, d.cfg.ID)
			sendErr(conn, err)
			return nil
		}
		spec := node.SendSpec{
			Dst:     contact.NodeID(m.Dst),
			Payload: m.Payload,
			Relays:  m.Relays,
			Copies:  m.Copies,
			Expiry:  m.Expiry,
			ID:      m.MsgID,
		}
		if _, err := d.node.Send(spec, PathStream(m.Seed, m.Index)); err != nil {
			sendErr(conn, err)
			return nil
		}
		return writeJSON(conn, mOK, okMsg{})
	case mContact:
		var m contactMsg
		if err := unmarshalStrict(body, &m); err != nil {
			sendErr(conn, err)
			return err
		}
		if _, err := d.Contact(contact.NodeID(m.Peer), m.Addr, m.Now); err != nil {
			sendErr(conn, err)
			return nil
		}
		return writeJSON(conn, mOK, okMsg{})
	case mStats:
		s := d.node.Stats()
		resp := statsRespMsg{
			Sent:      s.Sent,
			Forwarded: s.Forwarded,
			Carried:   s.Carried,
			Delivered: s.Delivered,
			Rejected:  s.Rejected,
			BufferLen: d.node.BufferLen(),
		}
		for _, rec := range d.node.DeliveryRecords() {
			resp.Deliveries = append(resp.Deliveries, deliveryRespWire{MsgID: rec.MsgID, Hops: rec.Hops})
		}
		return writeJSON(conn, mStatsResp, resp)
	case mQuit:
		_ = writeJSON(conn, mOK, okMsg{})
		go d.Close()
		return errQuit
	default:
		err := fmt.Errorf("unexpected control message type %d", typ)
		sendErr(conn, err)
		return err
	}
}

// Contact runs one live contact as the initiator, mirroring
// Network.Meet's order: the initiator offers first, then the peer.
// Custody is only released on a read accept-verdict, so a connection
// torn anywhere in the exchange leaves every unacknowledged onion with
// its current custodian — the next contact re-offers it.
func (d *Daemon) Contact(peer contact.NodeID, addr string, now float64) (ContactReport, error) {
	var rep ContactReport
	conn, err := dial(addr, d.cfg.Timeout)
	if err != nil {
		return rep, err
	}
	defer conn.Close()
	frames := 0
	d.node.Expire(now)
	hello := helloMsg{Version: protoVersion, From: d.cfg.ID, To: int(peer), Now: now}
	if err := writeJSON(conn, mHello, hello); err != nil {
		return rep, err
	}
	if err := readExpect(conn, mOK, nil); err != nil {
		return rep, fmt.Errorf("cluster: contact %d->%d: %w", d.cfg.ID, peer, err)
	}
	frames += 2

	// Outbound half: offer, await verdict, release custody on accept.
	for _, off := range d.node.OffersTo(peer, d.cfg.Spray) {
		if err := writeMsg(conn, mOffer, offerBody(off.Hops, off.Frame)); err != nil {
			return rep, err
		}
		var v verdictMsg
		if err := readExpect(conn, mVerdict, &v); err != nil {
			return rep, err
		}
		frames += 2
		rep.Offered++
		if v.Accepted {
			d.node.HandoffAccepted(off.MsgID)
			rep.Transfers++
			if v.Delivered {
				rep.Deliveries++
			}
		} else {
			rep.Rejected++
			if v.BufferFull {
				d.node.HandoffRefused(off.MsgID)
			}
		}
	}
	if err := writeMsg(conn, mEndOffers, nil); err != nil {
		return rep, err
	}
	frames++

	// Inbound half: receive the peer's offers until it signals done.
	for {
		typ, body, err := readMsg(conn)
		if err != nil {
			return rep, err
		}
		frames++
		if typ == mContactDone {
			break
		}
		if typ != mOffer {
			return rep, fmt.Errorf("cluster: contact %d->%d: unexpected message type %d", d.cfg.ID, peer, typ)
		}
		verdict := d.takeOffer(body)
		rep.Offered++
		if verdict.Accepted {
			rep.Transfers++
			if verdict.Delivered {
				rep.Deliveries++
			}
		} else {
			rep.Rejected++
		}
		if err := writeJSON(conn, mVerdict, verdict); err != nil {
			return rep, err
		}
		frames++
	}
	if c := obs.Active(); c != nil {
		c.Add(obs.ClusterContacts, 1)
		c.Observe(obs.HistClusterConnFrames, int64(frames))
		// Mirror the in-process tier's per-contact node counters (the
		// active side counts the contact once, like Network.Meet), so
		// a live scrape sees the same node.* activity series.
		c.Add(obs.NodeContacts, 1)
		c.Add(obs.NodeHandoffs, int64(rep.Transfers))
		c.Add(obs.NodeDeliveries, int64(rep.Deliveries))
		c.Add(obs.NodeRejected, int64(rep.Rejected))
		c.Observe(obs.HistContactTransfers, int64(rep.Transfers))
		c.RecordMax(obs.NodeCustodyHighWater, int64(d.node.BufferLen()))
	}
	return rep, nil
}

// serveContact is the passive side of a contact.
func (d *Daemon) serveContact(conn net.Conn, helloBody []byte) {
	var hello helloMsg
	if err := unmarshalStrict(helloBody, &hello); err != nil {
		sendErr(conn, err)
		return
	}
	if hello.Version != protoVersion {
		sendErr(conn, fmt.Errorf("protocol version %d, want %d", hello.Version, protoVersion))
		return
	}
	if hello.To != d.cfg.ID {
		sendErr(conn, fmt.Errorf("contact addressed to node %d, reached node %d", hello.To, d.cfg.ID))
		return
	}
	d.node.Expire(hello.Now)
	if err := writeJSON(conn, mOK, okMsg{}); err != nil {
		return
	}

	// Inbound half: the initiator offers first.
	for {
		typ, body, err := readMsg(conn)
		if err != nil {
			return
		}
		if typ == mEndOffers {
			break
		}
		if typ != mOffer {
			sendErr(conn, fmt.Errorf("unexpected message type %d during offers", typ))
			return
		}
		if err := writeJSON(conn, mVerdict, d.takeOffer(body)); err != nil {
			return
		}
	}

	// Outbound half: now this side offers.
	for _, off := range d.node.OffersTo(contact.NodeID(hello.From), d.cfg.Spray) {
		if err := writeMsg(conn, mOffer, offerBody(off.Hops, off.Frame)); err != nil {
			return
		}
		var v verdictMsg
		if err := readExpect(conn, mVerdict, &v); err != nil {
			return
		}
		if v.Accepted {
			d.node.HandoffAccepted(off.MsgID)
		} else if v.BufferFull {
			d.node.HandoffRefused(off.MsgID)
		}
	}
	_ = writeMsg(conn, mContactDone, nil)
}

// takeOffer ingests one offered hand-off and produces the verdict.
func (d *Daemon) takeOffer(body []byte) verdictMsg {
	hops, frame, err := decodeOffer(body)
	if err != nil {
		return verdictMsg{Reason: err.Error()}
	}
	delivered, err := d.node.Receive(frame, hops)
	if err != nil {
		return verdictMsg{Reason: err.Error(), BufferFull: errors.Is(err, node.ErrBufferFull)}
	}
	return verdictMsg{Accepted: true, Delivered: delivered}
}
