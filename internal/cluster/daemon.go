package cluster

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/onion"
	"repro/internal/rng"
)

// DaemonConfig configures one dtnnode daemon.
type DaemonConfig struct {
	ID      int
	DirAddr string
	// ListenAddr defaults to an ephemeral loopback port.
	ListenAddr  string
	BufferLimit int
	// ReofferLimit caps how many buffer-full refusals a carried copy
	// survives before the daemon drops it (0 = unlimited re-offers).
	ReofferLimit int
	Spray        bool
	// Timeout bounds every socket I/O operation; the deadline is
	// refreshed on each read and write, so a multi-frame contact that
	// keeps making progress may run longer than Timeout while a stalled
	// one is torn down within it (default 10s).
	Timeout time.Duration
	// ContactBudget caps the total wall time of one contact connection
	// (0 = uncapped). Per-I/O refresh treats any progress as liveness,
	// so without a budget a maliciously slow peer trickling one byte
	// per second can pin a contact forever.
	ContactBudget time.Duration
	// JoinWait is how long a starting (or revalidating) daemon keeps
	// retrying its directory registration with backoff before giving
	// up (0 = a single attempt). A node started before its directory
	// is listening comes up as soon as the directory does.
	JoinWait time.Duration
	// Retry shapes the backoff and circuit-breaker discipline for
	// dials and registrations; zero fields get defaults.
	Retry RetryPolicy
	// Chaos, when set, injects seed-driven network turbulence into
	// every outbound connection (see internal/chaos).
	Chaos *chaos.Chaos
}

// Daemon is one DTN node running as a network service: it joins the
// directory, reconstructs the group structure and layer keys from its
// welcome, and then speaks the custody offer/verdict protocol over
// length-framed TCP. The node logic is internal/node unchanged — the
// daemon only swaps the in-memory pipe for sockets.
type Daemon struct {
	cfg  DaemonConfig
	node *node.Node

	mu             sync.Mutex
	lis            net.Listener
	addr           string
	incarnation    uint64
	dirIncarnation uint64   // last directory incarnation seen in a welcome
	viewDigest     [32]byte // digest of the first welcome's partition + keys
	conns          map[net.Conn]struct{}
	closed         bool
	quit           chan struct{} // closed when the current incarnation stops
	wg             sync.WaitGroup

	// Self-healing state (retry.go): per-peer circuit breakers and the
	// timing-jitter stream, both created lazily under retryMu.
	retryMu  sync.Mutex
	breakers map[string]*breaker
	jitter   *rng.Stream
}

// ContactReport summarizes one live contact from the initiator's view.
type ContactReport struct {
	Offered    int // offers sent (both directions)
	Transfers  int // offers the receiving side accepted
	Deliveries int // accepted offers that were final deliveries
	Rejected   int // offers the receiving side turned down
}

// StartDaemon joins the directory at cfg.DirAddr and starts serving.
func StartDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Chaos != nil && cfg.JoinWait <= 0 {
		// Under injected turbulence a first registration can be faulted;
		// a single-attempt join would make Launch flaky by design.
		cfg.JoinWait = 10 * time.Second
	}
	d := &Daemon{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
	}
	if err := d.open(1, false); err != nil {
		return nil, err
	}
	return d, nil
}

// open listens, registers at the given incarnation, and (on first
// join) builds the node from the directory's welcome.
func (d *Daemon) open(incarnation uint64, preserveCustody bool) error {
	lis, err := net.Listen("tcp", d.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("cluster: daemon %d listen: %w", d.cfg.ID, err)
	}
	welcome, err := d.registerWithRetry(lis.Addr().String(), incarnation)
	if err != nil {
		_ = lis.Close()
		return err
	}
	digest, err := welcomeDigest(welcome)
	if err != nil {
		_ = lis.Close()
		return err
	}
	if d.node == nil {
		dir, err := buildView(welcome)
		if err != nil {
			_ = lis.Close()
			return err
		}
		if d.node, err = node.New(contact.NodeID(d.cfg.ID), dir, d.cfg.BufferLimit); err != nil {
			_ = lis.Close()
			return err
		}
		d.node.SetReofferLimit(d.cfg.ReofferLimit)
	} else {
		// Rejoin after a crash/restart: the welcome must describe the
		// same partition and keys this node already routes with — a
		// directory that lost its key material would silently orphan
		// every in-flight onion.
		d.mu.Lock()
		prev := d.viewDigest
		d.mu.Unlock()
		if digest != prev {
			_ = lis.Close()
			return fmt.Errorf("cluster: daemon %d rejoin: directory welcome diverged from the joined view", d.cfg.ID)
		}
		// Crash/restart: volatile custody is lost unless persisted;
		// durable logs (delivered, seen, acks) survive.
		d.node.Crash(preserveCustody)
	}
	d.mu.Lock()
	d.lis = lis
	d.addr = lis.Addr().String()
	d.incarnation = incarnation
	d.dirIncarnation = welcome.DirIncarnation
	d.viewDigest = digest
	d.closed = false
	d.quit = make(chan struct{})
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(lis)
	return nil
}

// buildView reconstructs the client-side directory from a welcome:
// partition from the assignment, layer keys from the threshold shares.
func buildView(w *welcomeMsg) (*groups.Directory, error) {
	byNode := make([]onion.GroupID, len(w.Assignment))
	for i, gid := range w.Assignment {
		byNode[i] = onion.GroupID(gid)
	}
	dir, err := groups.NewFromAssignment(byNode, w.G)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuild partition: %w", err)
	}
	groupKeys, nodeKeys, err := recoverKeys(w)
	if err != nil {
		return nil, err
	}
	if err := dir.InstallSymmetricKeys(groupKeys, nodeKeys); err != nil {
		return nil, fmt.Errorf("cluster: install keys: %w", err)
	}
	return dir, nil
}

// dialDir opens one connection to the directory, through the chaos
// layer when one is configured.
func (d *Daemon) dialDir() (net.Conn, error) {
	if ch := d.cfg.Chaos; ch != nil {
		raw, err := ch.DialDir(d.cfg.DirAddr, func(a string) (net.Conn, error) {
			return rawDial(a, d.cfg.Timeout)
		})
		if err != nil {
			return nil, err
		}
		return withIODeadline(raw, d.cfg.Timeout, 0), nil
	}
	return dial(d.cfg.DirAddr, d.cfg.Timeout, 0)
}

// register joins the directory once and returns the welcome.
func (d *Daemon) register(addr string, incarnation uint64) (*welcomeMsg, error) {
	conn, err := d.dialDir()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := registerMsg{Version: protoVersion, ID: d.cfg.ID, Addr: addr, Incarnation: incarnation}
	if err := writeJSON(conn, mRegister, req); err != nil {
		return nil, err
	}
	var welcome welcomeMsg
	if err := readExpect(conn, mWelcome, &welcome); err != nil {
		return nil, fmt.Errorf("cluster: daemon %d register: %w", d.cfg.ID, err)
	}
	return &welcome, nil
}

// registerWithRetry keeps re-attempting the directory registration with
// jittered exponential backoff for up to JoinWait (one attempt when
// JoinWait is zero). This is what lets a dtnnode started before its
// dtndir — or revalidating through a directory blackout — come up the
// moment the directory is reachable instead of dying on the first
// refused dial.
func (d *Daemon) registerWithRetry(addr string, incarnation uint64) (*welcomeMsg, error) {
	br := d.breakerFor(d.cfg.DirAddr)
	w, err := d.register(addr, incarnation)
	if err == nil {
		br.success()
		return w, nil
	}
	br.failure(time.Now())
	if d.cfg.JoinWait <= 0 {
		return nil, err
	}
	pol := d.cfg.Retry.filled()
	deadline := time.Now().Add(d.cfg.JoinWait)
	for attempt := 0; ; attempt++ {
		wait := pol.backoff(attempt, d.jitterFloat)
		if bw := br.wait(time.Now()); bw > wait {
			wait = bw
		}
		// A chaos partition hint is a better estimate than backoff.
		var blocked *chaos.BlockedError
		if errors.As(err, &blocked) && blocked.Wait > wait {
			wait = blocked.Wait
		}
		if time.Now().Add(wait).After(deadline) {
			return nil, fmt.Errorf("cluster: daemon %d register: join window %v exhausted: %w", d.cfg.ID, d.cfg.JoinWait, err)
		}
		d.sleepRetry(wait)
		if w, err = d.register(addr, incarnation); err == nil {
			br.success()
			return w, nil
		}
		br.failure(time.Now())
	}
}

// welcomeDigest condenses a welcome's routing-relevant content — the
// partition and every recovered layer key — into one comparable value.
// Two welcomes with equal digests produce byte-identical node views.
func welcomeDigest(w *welcomeMsg) ([32]byte, error) {
	groupKeys, nodeKeys, err := recoverKeys(w)
	if err != nil {
		return [32]byte{}, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "n=%d g=%d t=%d;", w.N, w.G, w.Threshold)
	for _, gid := range w.Assignment {
		fmt.Fprintf(h, "%d,", gid)
	}
	for gid := 0; gid < len(groupKeys); gid++ {
		h.Write(groupKeys[onion.GroupID(gid)])
	}
	for _, k := range nodeKeys {
		h.Write(k)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// Revalidate re-registers with the directory at the next incarnation
// and verifies the welcome still matches the view this node joined
// with: same partition, same recovered keys (so no Shamir share was
// re-issued from fresh key material), and a directory incarnation that
// never moves backwards. It is how a node that kept meeting through a
// directory blackout reconciles with the returned directory.
func (d *Daemon) Revalidate() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("cluster: daemon %d is stopped", d.cfg.ID)
	}
	addr := d.addr
	next := d.incarnation + 1
	prevDirInc := d.dirIncarnation
	prevDigest := d.viewDigest
	d.mu.Unlock()
	w, err := d.registerWithRetry(addr, next)
	if err != nil {
		return err
	}
	digest, err := welcomeDigest(w)
	if err != nil {
		return err
	}
	if digest != prevDigest {
		return fmt.Errorf("cluster: daemon %d revalidate: directory returned with a different partition or keys", d.cfg.ID)
	}
	if w.DirIncarnation < prevDirInc {
		return fmt.Errorf("cluster: daemon %d revalidate: directory incarnation went backwards (%d < %d)", d.cfg.ID, w.DirIncarnation, prevDirInc)
	}
	d.mu.Lock()
	d.incarnation = next
	d.dirIncarnation = w.DirIncarnation
	d.mu.Unlock()
	return nil
}

// DirIncarnation returns the directory incarnation from the most
// recent welcome this daemon accepted.
func (d *Daemon) DirIncarnation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirIncarnation
}

// Addr returns the daemon's current listening address.
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addr
}

// Node exposes the underlying node for test assertions.
func (d *Daemon) Node() *node.Node { return d.node }

// ID returns the daemon's node id.
func (d *Daemon) ID() int { return d.cfg.ID }

// Incarnation returns the daemon's current membership incarnation.
func (d *Daemon) Incarnation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.incarnation
}

// Send originates a message from this daemon's node. The path stream
// must be the same substream the reference tier uses for this message
// index (PathStream) or the two tiers route differently.
func (d *Daemon) Send(spec node.SendSpec, pathStream *rng.Stream) (string, error) {
	return d.node.Send(spec, pathStream)
}

// Kill abruptly closes the listener and every open connection without
// deregistering — the networked analogue of pulling the plug. Peers
// mid-contact observe a torn connection; custody they have not heard
// an accept-verdict for stays with them.
func (d *Daemon) Kill() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.quit)
	}
	lis := d.lis
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	d.wg.Wait()
}

// Wait blocks until the daemon's current incarnation has stopped (a
// Kill, a graceful Close, or a coordinator quit request) and every
// connection handler has drained.
func (d *Daemon) Wait() {
	d.mu.Lock()
	q := d.quit
	d.mu.Unlock()
	<-q
	d.wg.Wait()
}

// Restart brings a killed daemon back at the next incarnation,
// re-registering with the directory. Custody survives only when it was
// persisted (preserveCustody); the delivered/seen/ack logs always do.
func (d *Daemon) Restart(preserveCustody bool) error {
	d.mu.Lock()
	if !d.closed {
		d.mu.Unlock()
		return fmt.Errorf("cluster: daemon %d is still running", d.cfg.ID)
	}
	next := d.incarnation + 1
	d.mu.Unlock()
	return d.open(next, preserveCustody)
}

// Close gracefully shuts down: leave the directory, then stop serving.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	inc := d.incarnation
	d.mu.Unlock()
	if conn, err := dial(d.cfg.DirAddr, d.cfg.Timeout, 0); err == nil {
		_ = writeJSON(conn, mLeave, leaveMsg{ID: d.cfg.ID, Incarnation: inc})
		_ = readExpect(conn, mOK, nil)
		_ = conn.Close()
	}
	d.Kill()
	return nil
}

func (d *Daemon) acceptLoop(lis net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		if c := obs.Active(); c != nil {
			c.Add(obs.ClusterAccepts, 1)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			_ = conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go d.serve(conn)
	}
}

// serve handles one inbound connection: a contact session when it
// opens with a hello, a control session otherwise.
func (d *Daemon) serve(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		_ = conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	// Per-I/O deadline refresh: progress keeps the connection alive, a
	// stall still times out within Timeout. The raw conn stays in
	// d.conns so Kill() can tear it down.
	rw := withIODeadline(conn, d.cfg.Timeout, 0)
	typ, body, err := readMsg(rw)
	if err != nil {
		return
	}
	if typ == mHello {
		// Contact sessions additionally get the per-contact wall budget;
		// control sessions stay open for a whole replay and must not.
		d.serveContact(withIODeadline(conn, d.cfg.Timeout, d.cfg.ContactBudget), body)
		return
	}
	for {
		if err := d.serveControl(rw, typ, body); err != nil {
			return
		}
		if typ, body, err = readMsg(rw); err != nil {
			return
		}
	}
}

// errQuit unwinds a control session after a quit request.
var errQuit = errors.New("cluster: quit")

// serveControl executes one coordinator request.
func (d *Daemon) serveControl(conn net.Conn, typ byte, body []byte) error {
	switch typ {
	case mSend:
		var m sendMsg
		if err := unmarshalStrict(body, &m); err != nil {
			sendErr(conn, err)
			return err
		}
		if m.Src != d.cfg.ID {
			err := fmt.Errorf("send for node %d routed to node %d", m.Src, d.cfg.ID)
			sendErr(conn, err)
			return nil
		}
		spec := node.SendSpec{
			Dst:     contact.NodeID(m.Dst),
			Payload: m.Payload,
			Relays:  m.Relays,
			Copies:  m.Copies,
			Expiry:  m.Expiry,
			ID:      m.MsgID,
		}
		if _, err := d.node.Send(spec, PathStream(m.Seed, m.Index)); err != nil {
			sendErr(conn, err)
			return nil
		}
		return writeJSON(conn, mOK, okMsg{})
	case mContact:
		var m contactMsg
		if err := unmarshalStrict(body, &m); err != nil {
			sendErr(conn, err)
			return err
		}
		if _, err := d.Contact(contact.NodeID(m.Peer), m.Addr, m.Now); err != nil {
			sendErr(conn, err)
			return nil
		}
		return writeJSON(conn, mOK, okMsg{})
	case mStats:
		s := d.node.Stats()
		resp := statsRespMsg{
			Sent:      s.Sent,
			Forwarded: s.Forwarded,
			Carried:   s.Carried,
			Delivered: s.Delivered,
			Rejected:  s.Rejected,
			BufferLen: d.node.BufferLen(),
		}
		for _, rec := range d.node.DeliveryRecords() {
			resp.Deliveries = append(resp.Deliveries, deliveryRespWire{MsgID: rec.MsgID, Hops: rec.Hops})
		}
		return writeJSON(conn, mStatsResp, resp)
	case mQuit:
		_ = writeJSON(conn, mOK, okMsg{})
		go d.Close()
		return errQuit
	default:
		err := fmt.Errorf("unexpected control message type %d", typ)
		sendErr(conn, err)
		return err
	}
}

// dialContact opens one contact connection to a peer, through the
// chaos layer when one is configured, with the per-contact wall budget.
func (d *Daemon) dialContact(peer contact.NodeID, addr string) (net.Conn, error) {
	if ch := d.cfg.Chaos; ch != nil {
		raw, err := ch.DialPeer(d.cfg.ID, int(peer), addr, func(a string) (net.Conn, error) {
			return rawDial(a, d.cfg.Timeout)
		})
		if err != nil {
			return nil, err
		}
		return withIODeadline(raw, d.cfg.Timeout, d.cfg.ContactBudget), nil
	}
	return dial(addr, d.cfg.Timeout, d.cfg.ContactBudget)
}

// Contact runs one live contact as the initiator, mirroring
// Network.Meet's order: the initiator offers first, then the peer.
// Custody is only released on a read accept-verdict, so a connection
// torn anywhere in the exchange leaves every unacknowledged onion with
// its current custodian — the next contact re-offers it.
//
// Failures during the contact preamble — the dial, the hello, the
// hello ack, anything before a custody hand-off could have begun — are
// retried here with jittered backoff behind a per-peer circuit
// breaker: nothing protocol-visible happened yet, so a retry is
// indistinguishable from a slightly later first attempt. The moment
// custody negotiation has begun in either direction the attempt is
// final: a retried offer whose verdict was lost could double custody,
// so the DTN discipline (re-offer at the NEXT contact) applies
// instead.
func (d *Daemon) Contact(peer contact.NodeID, addr string, now float64) (ContactReport, error) {
	pol := d.cfg.Retry.filled()
	br := d.breakerFor(addr)
	deadline := time.Now().Add(pol.Budget)
	var attempt int
	for {
		if wait := br.wait(time.Now()); wait > 0 {
			if time.Now().Add(wait).After(deadline) {
				return ContactReport{}, fmt.Errorf("cluster: contact %d->%d: circuit breaker open for %s", d.cfg.ID, peer, addr)
			}
			d.sleepRetry(wait)
		}
		rep, progressed, err := d.contactOnce(peer, addr, now)
		if err == nil {
			br.success()
			return rep, nil
		}
		br.failure(time.Now())
		if progressed {
			return rep, err
		}
		wait := pol.backoff(attempt, d.jitterFloat)
		var blocked *chaos.BlockedError
		if errors.As(err, &blocked) && blocked.Wait > wait {
			wait = blocked.Wait
		}
		attempt++
		if time.Now().Add(wait).After(deadline) {
			return rep, fmt.Errorf("cluster: contact %d->%d: retries exhausted after %d attempts: %w", d.cfg.ID, peer, attempt, err)
		}
		d.sleepRetry(wait)
	}
}

// contactOnce is one attempt at a contact. progressed reports whether
// custody negotiation had begun — an offer written, or a peer offer
// received — before the failure; un-progressed attempts are safe to
// retry on a fresh connection.
func (d *Daemon) contactOnce(peer contact.NodeID, addr string, now float64) (rep ContactReport, progressed bool, err error) {
	conn, err := d.dialContact(peer, addr)
	if err != nil {
		return rep, false, err
	}
	defer conn.Close()
	frames := 0
	d.node.Expire(now)
	hello := helloMsg{Version: protoVersion, From: d.cfg.ID, To: int(peer), Now: now}
	if err := writeJSON(conn, mHello, hello); err != nil {
		return rep, false, err
	}
	if err := readExpect(conn, mOK, nil); err != nil {
		return rep, false, fmt.Errorf("cluster: contact %d->%d: %w", d.cfg.ID, peer, err)
	}
	frames += 2

	// Outbound half: offer, await verdict, release custody on accept.
	for _, off := range d.node.OffersTo(peer, d.cfg.Spray) {
		// From the first offer byte on, a failure is custody-ambiguous:
		// the peer may or may not have ingested the copy, so no retry.
		progressed = true
		if err := writeMsg(conn, mOffer, offerBody(off.Hops, off.Frame)); err != nil {
			return rep, progressed, err
		}
		var v verdictMsg
		if err := readExpect(conn, mVerdict, &v); err != nil {
			return rep, progressed, err
		}
		frames += 2
		rep.Offered++
		if v.Accepted {
			d.node.HandoffAccepted(off.MsgID)
			rep.Transfers++
			if v.Delivered {
				rep.Deliveries++
			}
		} else {
			rep.Rejected++
			if v.BufferFull {
				d.node.HandoffRefused(off.MsgID)
			}
		}
	}
	if err := writeMsg(conn, mEndOffers, nil); err != nil {
		return rep, progressed, err
	}
	frames++

	// Inbound half: receive the peer's offers until it signals done.
	for {
		typ, body, err := readMsg(conn)
		if err != nil {
			return rep, progressed, err
		}
		frames++
		if typ == mContactDone {
			break
		}
		if typ != mOffer {
			return rep, progressed, fmt.Errorf("cluster: contact %d->%d: unexpected message type %d", d.cfg.ID, peer, typ)
		}
		// A received offer is about to be ingested; a lost verdict from
		// here on duplicates custody if the attempt were replayed.
		progressed = true
		verdict := d.takeOffer(body)
		rep.Offered++
		if verdict.Accepted {
			rep.Transfers++
			if verdict.Delivered {
				rep.Deliveries++
			}
		} else {
			rep.Rejected++
		}
		if err := writeJSON(conn, mVerdict, verdict); err != nil {
			return rep, progressed, err
		}
		frames++
	}
	if c := obs.Active(); c != nil {
		c.Add(obs.ClusterContacts, 1)
		c.Observe(obs.HistClusterConnFrames, int64(frames))
		// Mirror the in-process tier's per-contact node counters (the
		// active side counts the contact once, like Network.Meet), so
		// a live scrape sees the same node.* activity series.
		c.Add(obs.NodeContacts, 1)
		c.Add(obs.NodeHandoffs, int64(rep.Transfers))
		c.Add(obs.NodeDeliveries, int64(rep.Deliveries))
		c.Add(obs.NodeRejected, int64(rep.Rejected))
		c.Observe(obs.HistContactTransfers, int64(rep.Transfers))
		c.RecordMax(obs.NodeCustodyHighWater, int64(d.node.BufferLen()))
	}
	return rep, progressed, nil
}

// serveContact is the passive side of a contact.
func (d *Daemon) serveContact(conn net.Conn, helloBody []byte) {
	var hello helloMsg
	if err := unmarshalStrict(helloBody, &hello); err != nil {
		sendErr(conn, err)
		return
	}
	if hello.Version != protoVersion {
		sendErr(conn, fmt.Errorf("protocol version %d, want %d", hello.Version, protoVersion))
		return
	}
	if hello.To != d.cfg.ID {
		sendErr(conn, fmt.Errorf("contact addressed to node %d, reached node %d", hello.To, d.cfg.ID))
		return
	}
	d.node.Expire(hello.Now)
	if err := writeJSON(conn, mOK, okMsg{}); err != nil {
		return
	}

	// Inbound half: the initiator offers first.
	for {
		typ, body, err := readMsg(conn)
		if err != nil {
			return
		}
		if typ == mEndOffers {
			break
		}
		if typ != mOffer {
			sendErr(conn, fmt.Errorf("unexpected message type %d during offers", typ))
			return
		}
		if err := writeJSON(conn, mVerdict, d.takeOffer(body)); err != nil {
			return
		}
	}

	// Outbound half: now this side offers.
	for _, off := range d.node.OffersTo(contact.NodeID(hello.From), d.cfg.Spray) {
		if err := writeMsg(conn, mOffer, offerBody(off.Hops, off.Frame)); err != nil {
			return
		}
		var v verdictMsg
		if err := readExpect(conn, mVerdict, &v); err != nil {
			return
		}
		if v.Accepted {
			d.node.HandoffAccepted(off.MsgID)
		} else if v.BufferFull {
			d.node.HandoffRefused(off.MsgID)
		}
	}
	_ = writeMsg(conn, mContactDone, nil)
}

// takeOffer ingests one offered hand-off and produces the verdict.
func (d *Daemon) takeOffer(body []byte) verdictMsg {
	hops, frame, err := decodeOffer(body)
	if err != nil {
		return verdictMsg{Reason: err.Error()}
	}
	delivered, err := d.node.Receive(frame, hops)
	if err != nil {
		return verdictMsg{Reason: err.Error(), BufferFull: errors.Is(err, node.ErrBufferFull)}
	}
	return verdictMsg{Accepted: true, Delivered: delivered}
}
