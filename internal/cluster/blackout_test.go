package cluster_test

// Directory blackout drills: the directory crashes mid-replay, contacts
// keep flowing on cached membership, and on its incarnation-bumped
// return every node reconciles — with exactly the same partition and
// keys, no double-issued Shamir shares, no orphaned custody, and zero
// bundles lost. This extends the PR 7 fault suite from daemon crashes
// to the bulletin board itself.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/invariant"
	"repro/internal/contact"
	"repro/internal/rng"
)

// TestDirectoryBlackoutMidReplay crashes the directory halfway through
// a trace replay and restarts it afterwards. The delivered set must
// equal the chaos-free in-process reference — the blackout may not cost
// a single bundle — and the invariant checker proves it: conservation,
// exactly-once, share threshold across the directory's whole issuance
// history, and registration monotonicity across the restart.
func TestDirectoryBlackoutMidReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP clusters")
	}
	const n = 5
	g := contact.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetRate(contact.NodeID(i), contact.NodeID(j), 1.0/200)
		}
	}
	tr := cluster.RecordSynthetic(g, 2*3600, rng.New(17).Split("contacts"))
	if len(tr.Contacts) == 0 {
		t.Fatal("synthetic realization produced no contacts")
	}
	msgs := cluster.SyntheticWorkload(17, n, 10, 1, 2)
	cfg := cluster.Config{
		Nodes: n, GroupSize: 2, Seed: 17, Spray: true,
		Timeout: 5 * time.Second,
		// Keep revalidation attempts against the dark directory short so
		// the test observes the failure instead of waiting it out.
		JoinWait: 300 * time.Millisecond,
	}

	ref, err := cluster.RunReference(cfg, msgs, tr, 0, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.NetworkDeliveries(ref, msgs)
	if len(want) == 0 {
		t.Fatal("reference run delivered nothing — the drill would be vacuous")
	}

	c, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close cluster: %v", err)
		}
	}()
	if err := c.Inject(msgs); err != nil {
		t.Fatal(err)
	}

	// First half of the replay with the directory up.
	const split = 3600.5
	if _, err := c.Replay(tr, 0, split, 2); err != nil {
		t.Fatal(err)
	}
	preAudit := c.Dir().Audit()
	if preAudit.Welcomes != n {
		t.Fatalf("welcomes before blackout = %d, want %d", preAudit.Welcomes, n)
	}

	// Blackout: the directory crashes, losing its volatile member table
	// but keeping partition and key material.
	c.Dir().Stop()

	// A node cannot reconcile against a dark directory — the bounded
	// join window fails instead of hanging — and must not burn its
	// incarnation on the failed attempt.
	d0 := c.Nodes()[0]
	if err := d0.Revalidate(); err == nil {
		t.Fatal("revalidate succeeded against a dark directory")
	}
	if d0.Incarnation() != 1 {
		t.Fatalf("failed revalidation burned incarnation: %d", d0.Incarnation())
	}

	// The second half of the replay runs entirely in the dark: contacts
	// resolve peers from the launch-time address cache.
	if _, err := c.Replay(tr, split, 2*3600-split, 2); err != nil {
		t.Fatalf("replay through the blackout: %v", err)
	}

	// The directory returns at the next incarnation; every node
	// revalidates: same view digest, bumped incarnations.
	if err := c.Dir().Restart(); err != nil {
		t.Fatal(err)
	}
	if inc := c.Dir().Incarnation(); inc != 2 {
		t.Fatalf("directory incarnation after restart = %d, want 2", inc)
	}
	if err := c.Revalidate(); err != nil {
		t.Fatalf("reconciliation with the returned directory: %v", err)
	}
	for _, d := range c.Nodes() {
		if d.DirIncarnation() != 2 {
			t.Fatalf("node %d sees directory incarnation %d, want 2", d.ID(), d.DirIncarnation())
		}
		if d.Incarnation() != 2 {
			t.Fatalf("node %d incarnation after revalidate = %d, want 2", d.ID(), d.Incarnation())
		}
	}
	if got := c.Dir().Members(); got != n {
		t.Fatalf("members after reconciliation = %d, want %d", got, n)
	}

	// Zero loss: the delivered set matches the reference exactly, and
	// the invariants — including the share threshold over the full
	// issuance history (pre- and post-crash welcomes) — all hold.
	if d := want.Diff(c.Deliveries(msgs)); d != "" {
		t.Fatalf("blackout lost or changed deliveries: %s", d)
	}
	rep := invariant.Check(c, invariant.SpecOf(msgs))
	if !rep.Clean() {
		t.Fatalf("invariants violated across the blackout: %v", rep.Err())
	}
	postAudit := c.Dir().Audit()
	if postAudit.Welcomes != 2*n {
		t.Fatalf("welcomes after reconciliation = %d, want %d", postAudit.Welcomes, 2*n)
	}
	if postAudit.MinShares != postAudit.Threshold || postAudit.MaxShares != postAudit.Threshold {
		t.Fatalf("share issuance drifted across the restart: min %d max %d threshold %d",
			postAudit.MinShares, postAudit.MaxShares, postAudit.Threshold)
	}
}
