package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/obs"
	"repro/internal/onion"
	"repro/internal/rng"
	"repro/internal/shamir"
)

// DirConfig configures the directory service.
type DirConfig struct {
	Nodes     int
	GroupSize int
	// Seed drives the group partition. It MUST equal the seed of any
	// in-process reference run (node.NewNetwork draws the partition
	// from the same "partition" substream), or the two tiers route
	// over different group structures.
	Seed uint64
	// Shares and Threshold configure the Shamir split of every layer
	// key: each key is cut into Shares fragments of which any
	// Threshold reconstruct it. Defaults: 5 and 3.
	Shares    int
	Threshold int
	// Timeout bounds every per-connection socket operation (default
	// 10s).
	Timeout time.Duration
}

func (c *DirConfig) fill() error {
	if c.Nodes < 3 {
		return fmt.Errorf("cluster: need at least 3 nodes, got %d", c.Nodes)
	}
	if c.GroupSize < 1 || c.GroupSize > c.Nodes {
		return fmt.Errorf("cluster: group size %d out of [1, %d]", c.GroupSize, c.Nodes)
	}
	if c.Shares == 0 {
		c.Shares = 5
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Threshold < 1 || c.Threshold > c.Shares || c.Shares > shamir.MaxShares {
		return fmt.Errorf("cluster: bad share split %d-of-%d", c.Threshold, c.Shares)
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return nil
}

// registration is one live membership entry.
type registration struct {
	addr        string
	incarnation uint64
}

// Dir is the bulletin-board/directory service: it owns the group
// partition and the symmetric layer keys, admits members, and hands
// each joiner the membership table plus every key as Shamir threshold
// shares. Stale and duplicate registrations are rejected by an
// incarnation discipline: a node's first registration carries
// incarnation 1, and every restart increments it — a registration at
// or below the recorded incarnation is a replay.
type Dir struct {
	cfg       DirConfig
	dir       *groups.Directory
	groupKeys map[onion.GroupID][]byte
	nodeKeys  [][]byte

	mu       sync.Mutex
	members  map[contact.NodeID]registration
	lis      net.Listener
	lastAddr string // actual bound address, so Restart rebinds the same port
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// incarnation numbers this directory's own lifetime; it starts at 1
	// and bumps on every Restart so returning nodes can assert the
	// bulletin board never moves backwards.
	incarnation uint64
	audit       DirAudit
}

// RegEvent is one admitted registration, in admission order.
type RegEvent struct {
	Node        int
	Incarnation uint64
}

// DirAudit is the directory's issuance ledger: how many welcomes were
// served and with how many Shamir shares each, plus every admitted
// registration. The invariant checker uses it to prove the share
// threshold was never exceeded (each welcome carries exactly Threshold
// shares per key — the minimum that reconstructs) even across
// directory crashes and restarts.
type DirAudit struct {
	Welcomes      int
	MinShares     int // fewest shares any welcome carried per key
	MaxShares     int // most shares any welcome carried per key
	Threshold     int
	Incarnation   uint64
	Registrations []RegEvent
}

// NewDir provisions the partition and key material without opening a
// socket; Start makes it reachable.
func NewDir(cfg DirConfig) (*Dir, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	dir, err := groups.NewPartition(cfg.Nodes, cfg.GroupSize, root.Split("partition"))
	if err != nil {
		return nil, err
	}
	groupKeys := make(map[onion.GroupID][]byte, dir.NumGroups())
	for gid := 0; gid < dir.NumGroups(); gid++ {
		key, err := onion.GenerateKey()
		if err != nil {
			return nil, err
		}
		groupKeys[onion.GroupID(gid)] = key
	}
	nodeKeys := make([][]byte, cfg.Nodes)
	for v := range nodeKeys {
		if nodeKeys[v], err = onion.GenerateKey(); err != nil {
			return nil, err
		}
	}
	if err := dir.InstallSymmetricKeys(groupKeys, nodeKeys); err != nil {
		return nil, err
	}
	return &Dir{
		cfg:         cfg,
		dir:         dir,
		groupKeys:   groupKeys,
		nodeKeys:    nodeKeys,
		members:     make(map[contact.NodeID]registration),
		conns:       make(map[net.Conn]struct{}),
		incarnation: 1,
	}, nil
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral loopback
// port) and serves requests until Close.
func (d *Dir) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: dir listen: %w", err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_ = lis.Close()
		return errors.New("cluster: dir already closed")
	}
	d.lis = lis
	d.lastAddr = lis.Addr().String()
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(lis)
	return nil
}

// Stop simulates a directory crash: the listener and every open
// connection die and the volatile membership table is lost, while the
// partition and key material — provisioned once in NewDir — survive,
// as a deployment's would on disk. Regenerating keys instead would
// silently orphan every in-flight onion. Restart brings the directory
// back on the same address at the next incarnation.
func (d *Dir) Stop() {
	d.mu.Lock()
	d.closed = true
	lis := d.lis
	d.lis = nil
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.members = make(map[contact.NodeID]registration)
	d.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	d.wg.Wait()
}

// Restart brings a stopped directory back on its previous address at
// the next incarnation. Membership starts empty — nodes reconcile by
// re-registering (Daemon.Revalidate) — while partition and keys are
// the ones provisioned in NewDir, so welcomes served before and after
// the crash are interchangeable.
func (d *Dir) Restart() error {
	d.mu.Lock()
	if !d.closed {
		d.mu.Unlock()
		return errors.New("cluster: dir is still running")
	}
	addr := d.lastAddr
	if addr == "" {
		d.mu.Unlock()
		return errors.New("cluster: dir was never started")
	}
	d.closed = false
	d.incarnation++
	d.mu.Unlock()
	if err := d.Start(addr); err != nil {
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		return err
	}
	return nil
}

// Incarnation returns the directory's current lifetime number.
func (d *Dir) Incarnation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.incarnation
}

// Audit returns a snapshot of the issuance ledger.
func (d *Dir) Audit() DirAudit {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.audit
	out.Threshold = d.cfg.Threshold
	out.Incarnation = d.incarnation
	out.Registrations = append([]RegEvent(nil), d.audit.Registrations...)
	return out
}

// Addr returns the listening address.
func (d *Dir) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lis == nil {
		return ""
	}
	return d.lis.Addr().String()
}

// Members returns the number of currently registered nodes.
func (d *Dir) Members() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.members)
}

// MemberAddr returns the registered address of node id, if any.
func (d *Dir) MemberAddr(id contact.NodeID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	reg, ok := d.members[id]
	return reg.addr, ok
}

// Directory exposes the partition (for in-process harnesses and the
// coordinator's path bookkeeping).
func (d *Dir) Directory() *groups.Directory { return d.dir }

// Close stops the listener and waits for in-flight connections.
func (d *Dir) Close() error {
	d.mu.Lock()
	d.closed = true
	lis := d.lis
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	d.wg.Wait()
	return err
}

func (d *Dir) acceptLoop(lis net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		if c := obs.Active(); c != nil {
			c.Add(obs.ClusterAccepts, 1)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			_ = conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go d.serve(conn)
	}
}

func (d *Dir) serve(raw net.Conn) {
	defer d.wg.Done()
	defer func() {
		_ = raw.Close()
		d.mu.Lock()
		delete(d.conns, raw)
		d.mu.Unlock()
	}()
	// Per-I/O deadline refresh: a slow-but-progressing welcome download
	// survives, a stalled peer is torn down within Timeout. The raw
	// conn stays keyed in d.conns so Close() can tear it down.
	conn := withIODeadline(raw, d.cfg.Timeout, 0)
	typ, body, err := readMsg(conn)
	if err != nil {
		return
	}
	switch typ {
	case mRegister:
		var reg registerMsg
		if err := unmarshalStrict(body, &reg); err != nil {
			sendErr(conn, err)
			return
		}
		welcome, err := d.register(reg)
		if err != nil {
			sendErr(conn, err)
			return
		}
		_ = writeJSON(conn, mWelcome, welcome)
	case mLookup:
		var q lookupMsg
		if err := unmarshalStrict(body, &q); err != nil {
			sendErr(conn, err)
			return
		}
		d.mu.Lock()
		reg, ok := d.members[contact.NodeID(q.ID)]
		d.mu.Unlock()
		if !ok {
			sendErr(conn, fmt.Errorf("node %d not registered", q.ID))
			return
		}
		_ = writeJSON(conn, mLookupResp, lookupRespMsg{Addr: reg.addr, Incarnation: reg.incarnation})
	case mLeave:
		var q leaveMsg
		if err := unmarshalStrict(body, &q); err != nil {
			sendErr(conn, err)
			return
		}
		if err := d.leave(q); err != nil {
			sendErr(conn, err)
			return
		}
		_ = writeJSON(conn, mOK, okMsg{})
	default:
		sendErr(conn, fmt.Errorf("directory does not handle message type %d", typ))
	}
}

// register admits (or re-admits) a node. It enforces the incarnation
// discipline and rejects malformed joins.
func (d *Dir) register(reg registerMsg) (*welcomeMsg, error) {
	if reg.Version != protoVersion {
		return nil, fmt.Errorf("protocol version %d, want %d", reg.Version, protoVersion)
	}
	if reg.ID < 0 || reg.ID >= d.cfg.Nodes {
		return nil, fmt.Errorf("node id %d out of [0, %d)", reg.ID, d.cfg.Nodes)
	}
	if reg.Addr == "" {
		return nil, errors.New("registration without an address")
	}
	if reg.Incarnation == 0 {
		return nil, errors.New("registration with incarnation 0")
	}
	d.mu.Lock()
	if cur, ok := d.members[contact.NodeID(reg.ID)]; ok {
		if reg.Incarnation == cur.incarnation {
			d.mu.Unlock()
			return nil, fmt.Errorf("duplicate registration for node %d at incarnation %d", reg.ID, reg.Incarnation)
		}
		if reg.Incarnation < cur.incarnation {
			d.mu.Unlock()
			return nil, fmt.Errorf("stale registration for node %d: incarnation %d < %d", reg.ID, reg.Incarnation, cur.incarnation)
		}
	}
	d.members[contact.NodeID(reg.ID)] = registration{addr: reg.Addr, incarnation: reg.Incarnation}
	d.audit.Registrations = append(d.audit.Registrations, RegEvent{Node: reg.ID, Incarnation: reg.Incarnation})
	d.mu.Unlock()
	if c := obs.Active(); c != nil {
		c.Add(obs.ClusterRegistrations, 1)
	}
	return d.welcome()
}

// leave removes a membership entry when the departing incarnation
// matches the live one (a stale leave from a pre-restart incarnation
// must not evict the restarted node).
func (d *Dir) leave(q leaveMsg) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, ok := d.members[contact.NodeID(q.ID)]
	if !ok {
		return fmt.Errorf("node %d not registered", q.ID)
	}
	if q.Incarnation != cur.incarnation {
		return fmt.Errorf("stale leave for node %d: incarnation %d != %d", q.ID, q.Incarnation, cur.incarnation)
	}
	delete(d.members, contact.NodeID(q.ID))
	return nil
}

// welcome builds the membership + key bundle a joiner receives. Every
// key is split fresh per join (shares are single-use transport
// encoding, not stored), and exactly Threshold shares are sent — the
// minimum that reconstructs.
func (d *Dir) welcome() (*welcomeMsg, error) {
	assign := d.dir.Assignment()
	w := &welcomeMsg{
		N:          d.cfg.Nodes,
		G:          d.cfg.GroupSize,
		Assignment: make([]int32, len(assign)),
		Threshold:  d.cfg.Threshold,
	}
	for i, gid := range assign {
		w.Assignment[i] = int32(gid)
	}
	addKey := func(kind string, index int, key []byte) error {
		shares, err := shamir.Split(key, d.cfg.Shares, d.cfg.Threshold)
		if err != nil {
			return fmt.Errorf("split %s key %d: %w", kind, index, err)
		}
		kw := keyWire{Kind: kind, Index: index, Shares: make([]shareWire, d.cfg.Threshold)}
		for j := 0; j < d.cfg.Threshold; j++ {
			kw.Shares[j] = shareWire{X: shares[j].X, Y: shares[j].Y}
		}
		w.Keys = append(w.Keys, kw)
		return nil
	}
	for gid := 0; gid < d.dir.NumGroups(); gid++ {
		if err := addKey("group", gid, d.groupKeys[onion.GroupID(gid)]); err != nil {
			return nil, err
		}
	}
	for v, key := range d.nodeKeys {
		if err := addKey("node", v, key); err != nil {
			return nil, err
		}
	}
	minS, maxS := int(^uint(0)>>1), 0
	for _, kw := range w.Keys {
		if len(kw.Shares) < minS {
			minS = len(kw.Shares)
		}
		if len(kw.Shares) > maxS {
			maxS = len(kw.Shares)
		}
	}
	d.mu.Lock()
	w.DirIncarnation = d.incarnation
	d.audit.Welcomes++
	if d.audit.Welcomes == 1 || minS < d.audit.MinShares {
		d.audit.MinShares = minS
	}
	if maxS > d.audit.MaxShares {
		d.audit.MaxShares = maxS
	}
	d.mu.Unlock()
	return w, nil
}

// recoverKeys reconstructs the layer keys from a welcome's threshold
// shares and verifies each recovered key has the expected size.
func recoverKeys(w *welcomeMsg) (map[onion.GroupID][]byte, [][]byte, error) {
	groupKeys := make(map[onion.GroupID][]byte)
	nodeKeys := make([][]byte, w.N)
	for _, kw := range w.Keys {
		shares := make([]shamir.Share, len(kw.Shares))
		for j, s := range kw.Shares {
			shares[j] = shamir.Share{X: s.X, Y: s.Y}
		}
		key, err := shamir.Combine(shares)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: combine %s key %d: %w", kw.Kind, kw.Index, err)
		}
		if len(key) != onion.KeySize {
			return nil, nil, fmt.Errorf("cluster: recovered %s key %d has %d bytes", kw.Kind, kw.Index, len(key))
		}
		switch kw.Kind {
		case "group":
			groupKeys[onion.GroupID(kw.Index)] = key
		case "node":
			if kw.Index < 0 || kw.Index >= w.N {
				return nil, nil, fmt.Errorf("cluster: node key index %d out of range", kw.Index)
			}
			nodeKeys[kw.Index] = key
		default:
			return nil, nil, fmt.Errorf("cluster: unknown key kind %q", kw.Kind)
		}
	}
	for v, key := range nodeKeys {
		if key == nil {
			return nil, nil, fmt.Errorf("cluster: welcome missing node key %d", v)
		}
	}
	return groupKeys, nodeKeys, nil
}
