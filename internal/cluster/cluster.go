package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/contact"
	"repro/internal/node"
)

// Config configures an in-process loopback cluster: one directory
// service plus one daemon per node, every process boundary a real TCP
// connection.
type Config struct {
	Nodes     int
	GroupSize int
	// Seed drives the group partition; a reference node.NewNetwork run
	// with the same seed routes over the identical partition.
	Seed        uint64
	BufferLimit int
	// ReofferLimit caps how many buffer-full refusals a carried copy
	// survives before its daemon drops it (0 = unlimited re-offers).
	ReofferLimit int
	Spray        bool
	// Shares and Threshold configure the directory's Shamir key split
	// (defaults 5 and 3).
	Shares    int
	Threshold int
	Timeout   time.Duration
	// ContactBudget caps each contact connection's total wall time
	// (0 = uncapped); see DaemonConfig.ContactBudget.
	ContactBudget time.Duration
	// JoinWait bounds each daemon's directory-registration retries
	// (0 = a single attempt); see DaemonConfig.JoinWait.
	JoinWait time.Duration
	// Retry shapes every daemon's backoff/circuit-breaker discipline.
	Retry RetryPolicy
	// Chaos, when set, is shared by every daemon: all outbound
	// connections pass through the seed-driven turbulence layer.
	Chaos *chaos.Chaos
}

// Cluster is a launched loopback cluster.
type Cluster struct {
	cfg     Config
	dir     *Dir
	daemons []*Daemon

	// peerAddrs caches each daemon's listening address at launch so a
	// replay can keep scheduling contacts while the directory is dark
	// (daemon addresses are stable across a directory blackout — only
	// daemon restarts move them, and those re-register).
	peerAddrs []string
}

// Launch starts the directory and all daemons. On any failure the
// already-started processes are torn down.
func Launch(cfg Config) (*Cluster, error) {
	dir, err := NewDir(DirConfig{
		Nodes:     cfg.Nodes,
		GroupSize: cfg.GroupSize,
		Seed:      cfg.Seed,
		Shares:    cfg.Shares,
		Threshold: cfg.Threshold,
		Timeout:   cfg.Timeout,
	})
	if err != nil {
		return nil, err
	}
	if err := dir.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		dir:       dir,
		daemons:   make([]*Daemon, cfg.Nodes),
		peerAddrs: make([]string, cfg.Nodes),
	}
	for id := 0; id < cfg.Nodes; id++ {
		d, err := StartDaemon(DaemonConfig{
			ID:            id,
			DirAddr:       dir.Addr(),
			BufferLimit:   cfg.BufferLimit,
			ReofferLimit:  cfg.ReofferLimit,
			Spray:         cfg.Spray,
			Timeout:       cfg.Timeout,
			ContactBudget: cfg.ContactBudget,
			JoinWait:      cfg.JoinWait,
			Retry:         cfg.Retry,
			Chaos:         cfg.Chaos,
		})
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("cluster: start daemon %d: %w", id, err)
		}
		c.daemons[id] = d
		c.peerAddrs[id] = d.Addr()
	}
	return c, nil
}

// peerAddr resolves node id's contact address: the directory's live
// registration when it answers, falling back to the launch-time cache
// so contacts keep flowing through a directory blackout.
func (c *Cluster) peerAddr(id contact.NodeID) (string, bool) {
	if addr, ok := c.dir.MemberAddr(id); ok {
		return addr, true
	}
	if id >= 0 && int(id) < len(c.peerAddrs) && c.peerAddrs[id] != "" {
		return c.peerAddrs[id], true
	}
	return "", false
}

// Nodes returns the launched daemons in id order.
func (c *Cluster) Nodes() []*Daemon {
	return append([]*Daemon(nil), c.daemons...)
}

// Revalidate asks every daemon to re-register with the directory and
// verify its welcome still matches the joined view (see
// Daemon.Revalidate) — the reconciliation step after a directory
// blackout ends.
func (c *Cluster) Revalidate() error {
	var errs []error
	for _, d := range c.daemons {
		if d != nil {
			errs = append(errs, d.Revalidate())
		}
	}
	return errors.Join(errs...)
}

// Dir returns the directory service.
func (c *Cluster) Dir() *Dir { return c.dir }

// Daemon returns the daemon for node id.
func (c *Cluster) Daemon(id contact.NodeID) *Daemon {
	if id < 0 || int(id) >= len(c.daemons) || c.daemons[id] == nil {
		panic(fmt.Sprintf("cluster: no daemon for node %d", id))
	}
	return c.daemons[id]
}

// Close shuts down every daemon, then the directory.
func (c *Cluster) Close() error {
	var errs []error
	for _, d := range c.daemons {
		if d != nil {
			errs = append(errs, d.Close())
		}
	}
	errs = append(errs, c.dir.Close())
	return errors.Join(errs...)
}

// TotalStats aggregates all daemon node counters, the live analogue of
// Network.TotalStats.
func (c *Cluster) TotalStats() node.Stats {
	var total node.Stats
	for _, d := range c.daemons {
		if d == nil {
			continue
		}
		s := d.Node().Stats()
		total.Sent += s.Sent
		total.Forwarded += s.Forwarded
		total.Carried += s.Carried
		total.Delivered += s.Delivered
		total.Rejected += s.Rejected
		total.Refused += s.Refused
		total.Expired += s.Expired
		total.Purged += s.Purged
		total.BackpressureDropped += s.BackpressureDropped
		total.Truncated += s.Truncated
		total.Corrupted += s.Corrupted
		total.Retried += s.Retried
		total.Duplicates += s.Duplicates
		total.Crashes += s.Crashes
		total.CrashDropped += s.CrashDropped
	}
	return total
}
