package cluster

// Self-healing discipline for the live tier: jittered exponential
// backoff for dials and registrations, and a per-peer circuit breaker
// so a dead or partitioned peer is probed on a cooldown instead of
// hammered on every attempt. Both are timing-only mechanisms — they
// decide when to try again, never what the protocol does — so they
// cannot perturb the deterministic delivered set.

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// RetryPolicy bounds one logical operation (a registration, a contact
// preamble) across its retries. The zero value of each field gets a
// sensible default.
type RetryPolicy struct {
	// Base is the first backoff sleep; each retry doubles it up to Max,
	// then full jitter in [1/2, 1] de-synchronizes the fleet.
	Base time.Duration // default 5ms
	Max  time.Duration // default 200ms
	// Budget caps the total wall time spent retrying one operation.
	Budget time.Duration // default 3s
	// BreakerThreshold consecutive failures to one peer trip its
	// breaker open; while open, attempts wait out BreakerCooldown and
	// then probe half-open.
	BreakerThreshold int           // default 3
	BreakerCooldown  time.Duration // default 150ms
}

func (p RetryPolicy) filled() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 200 * time.Millisecond
	}
	if p.Budget <= 0 {
		p.Budget = 3 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 150 * time.Millisecond
	}
	return p
}

// backoff returns the sleep before retry number attempt (0-based),
// exponential with full jitter drawn from the daemon's timing stream.
func (p RetryPolicy) backoff(attempt int, jitter func() float64) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*jitter()))
}

// breaker is a per-peer circuit breaker. Closed: attempts flow.
// After threshold consecutive failures it opens for cooldown; the
// first attempt after the cooldown is the half-open probe — success
// closes it, failure re-opens it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// wait reports how long the breaker stays open from now (0 = attempts
// may flow).
func (b *breaker) wait(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return b.openUntil.Sub(now)
	}
	return 0
}

func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	wasOpen := now.Before(b.openUntil)
	b.fails++
	tripped := b.fails >= b.threshold
	if tripped {
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
	if tripped && !wasOpen {
		if c := obs.Active(); c != nil {
			c.Add(obs.BreakerOpens, 1)
		}
	}
}

// breakerFor returns (creating on first use) the breaker guarding addr.
func (d *Daemon) breakerFor(addr string) *breaker {
	pol := d.cfg.Retry.filled()
	d.retryMu.Lock()
	defer d.retryMu.Unlock()
	if d.breakers == nil {
		d.breakers = make(map[string]*breaker)
	}
	b, ok := d.breakers[addr]
	if !ok {
		b = &breaker{threshold: pol.BreakerThreshold, cooldown: pol.BreakerCooldown}
		d.breakers[addr] = b
	}
	return b
}

// jitterFloat draws one timing-jitter variate. The stream is seeded
// per daemon and guarded by retryMu: it only shapes sleep durations,
// never protocol decisions.
func (d *Daemon) jitterFloat() float64 {
	d.retryMu.Lock()
	defer d.retryMu.Unlock()
	if d.jitter == nil {
		d.jitter = rng.New(0x6261636b6f6666 ^ uint64(d.cfg.ID))
	}
	return d.jitter.Float64()
}

// sleepRetry sleeps d and counts the retry, unless the daemon is
// shutting down.
func (d *Daemon) sleepRetry(wait time.Duration) {
	if c := obs.Active(); c != nil {
		c.Add(obs.RetryAttempts, 1)
	}
	time.Sleep(wait)
}
