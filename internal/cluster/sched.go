package cluster

// The contact scheduler: replay a recorded trace as real link events
// between daemons. sim.Replay feeds contacts to an in-process protocol
// strictly serially; over sockets that would leave every daemon idle
// while one pair talks. Replay instead runs contacts concurrently
// under a dependency order: contact i waits for the latest earlier
// contact touching either of its endpoints. Two contacts over disjoint
// node pairs commute — the custody protocol only touches its two
// endpoints — so the final delivered sets and per-node stats are
// identical to serial replay at every worker count.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/contact"
	"repro/internal/trace"
)

// Replay replays the trace contacts whose start times fall in
// [from, from+horizon] (the same window sim.Replay uses) as live
// contacts, with up to workers contacts in flight at once. The
// initiator of each contact is the trace's A endpoint, mirroring
// Network.Meet(x, y) offering x's custody first. It returns the number
// of contacts executed.
func (c *Cluster) Replay(tr *trace.Trace, from, horizon float64, workers int) (int, error) {
	if workers < 1 {
		return 0, fmt.Errorf("cluster: replay needs at least 1 worker, got %d", workers)
	}
	if horizon <= 0 {
		return 0, nil
	}
	end := from + horizon
	idx := sort.Search(len(tr.Contacts), func(i int) bool {
		return tr.Contacts[i].Start >= from
	})
	var window []trace.Contact
	for ; idx < len(tr.Contacts); idx++ {
		if tr.Contacts[idx].Start > end {
			break
		}
		window = append(window, tr.Contacts[idx])
	}
	if len(window) == 0 {
		return 0, nil
	}

	// Dependency edges: each contact waits on the previous contact
	// touching either endpoint.
	done := make([]chan struct{}, len(window))
	for i := range done {
		done[i] = make(chan struct{})
	}
	lastTouch := make(map[contact.NodeID]int, tr.NodeCount)
	deps := make([][]chan struct{}, len(window))
	for i, ct := range window {
		for _, v := range []contact.NodeID{ct.A, ct.B} {
			if j, ok := lastTouch[v]; ok && (len(deps[i]) == 0 || deps[i][len(deps[i])-1] != done[j]) {
				deps[i] = append(deps[i], done[j])
			}
			lastTouch[v] = i
		}
	}

	sem := make(chan struct{}, workers)
	errs := make([]error, len(window))
	var wg sync.WaitGroup
	for i, ct := range window {
		wg.Add(1)
		go func(i int, ct trace.Contact) {
			defer wg.Done()
			defer close(done[i])
			for _, dep := range deps[i] {
				<-dep
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			if ct.A == ct.B {
				return
			}
			addr, ok := c.peerAddr(ct.B)
			if !ok {
				errs[i] = fmt.Errorf("cluster: contact at t=%.3f: node %d not registered", ct.Start, ct.B)
				return
			}
			if _, err := c.Daemon(ct.A).Contact(ct.B, addr, ct.Start); err != nil {
				errs[i] = fmt.Errorf("cluster: contact %d-%d at t=%.3f: %w", ct.A, ct.B, ct.Start, err)
			}
		}(i, ct)
	}
	wg.Wait()
	return len(window), errors.Join(errs...)
}
