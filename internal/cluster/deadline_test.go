package cluster

// Regression tests for the per-I/O deadline discipline: a
// slow-but-progressing multi-frame contact may run longer than Timeout
// (the deadline refreshes on every read and write), while a stalled
// connection is still torn down within it. The old behavior armed one
// absolute deadline per connection phase, so any contact whose total
// wall time exceeded Timeout was killed mid-stream and its custody
// needlessly re-offered.

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/node"
)

// throttledProxy forwards both directions of each accepted connection
// to addr in small chunks with a pause per chunk, making every frame
// slow to cross while individual reads keep arriving well within any
// reasonable deadline. It returns the proxy's listen address.
func throttledProxy(t *testing.T, addr string, chunk int, pause time.Duration) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	conns := make(map[net.Conn]struct{})
	track := func(c net.Conn) {
		mu.Lock()
		conns[c] = struct{}{}
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			down, err := lis.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", addr)
			if err != nil {
				_ = down.Close()
				continue
			}
			track(down)
			track(up)
			pipe := func(dst, src net.Conn) {
				defer wg.Done()
				buf := make([]byte, chunk)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						time.Sleep(pause)
						if _, werr := dst.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				// Tear down both halves so the opposite pipe unblocks.
				_ = dst.Close()
				_ = src.Close()
			}
			wg.Add(2)
			go pipe(up, down)
			go pipe(down, up)
		}
	}()
	t.Cleanup(func() {
		_ = lis.Close()
		mu.Lock()
		for c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		wg.Wait()
	})
	return lis.Addr().String()
}

// TestSlowContactSurvivesTimeout drives a multi-frame contact through
// a throttled pipe so its total duration exceeds the daemons' Timeout.
// Every offer must still be transferred: progress refreshes the
// deadline.
func TestSlowContactSurvivesTimeout(t *testing.T) {
	const timeout = 400 * time.Millisecond
	c, err := Launch(Config{Nodes: 3, GroupSize: 1, Seed: 31, Spray: true, Timeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	d0, d1 := c.Daemon(0), c.Daemon(1)

	// Six 3-copy spray messages: every one is eligible for node 1, so
	// the contact carries six offer/verdict round trips plus framing.
	const msgs = 6
	for i := 0; i < msgs; i++ {
		spec := node.SendSpec{
			Dst: 2, Payload: []byte("slow but steady"), Relays: 1, Copies: 3,
			ID: fmt.Sprintf("%032x", 0x50+i),
		}
		if _, err := d0.Send(spec, PathStream(31, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Each onion frame crosses the pipe in 64-byte chunks at 25 ms
	// apiece, so a single offer takes longer than 100 ms and six round
	// trips comfortably outlast the 400 ms Timeout — while every
	// individual read arrives within 25 ms.
	proxyAddr := throttledProxy(t, d1.Addr(), 64, 25*time.Millisecond)
	start := time.Now()
	rep, err := d0.Contact(1, proxyAddr, 1)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("slow contact failed after %v: %v (report %+v)", elapsed, err, rep)
	}
	if elapsed <= timeout {
		t.Skipf("contact finished in %v <= Timeout %v: pipe not slow enough to exercise the regression", elapsed, timeout)
	}
	if rep.Transfers != msgs {
		t.Fatalf("transfers = %d, want %d (contact of %v was cut short)", rep.Transfers, msgs, elapsed)
	}
}

// TestStalledConnectionTimesOut: per-I/O refresh must not mean "never
// times out" — a peer that opens a contact and then goes silent is
// torn down within the I/O deadline.
func TestStalledConnectionTimesOut(t *testing.T) {
	const timeout = 300 * time.Millisecond
	c, err := Launch(Config{Nodes: 3, GroupSize: 1, Seed: 33, Timeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	conn, err := net.DialTimeout("tcp", c.Daemon(1).Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeJSON(conn, mHello, helloMsg{Version: protoVersion, From: 0, To: 1, Now: 0}); err != nil {
		t.Fatal(err)
	}
	if err := readExpect(conn, mOK, nil); err != nil {
		t.Fatal(err)
	}
	// Stall: never send an offer. The daemon's read deadline must fire
	// and close the connection; we observe the close as EOF/reset.
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(10 * timeout))
	if _, err := io.ReadAll(conn); err != nil && time.Since(start) >= 10*timeout {
		t.Fatalf("daemon never closed the stalled connection: %v", err)
	}
	if waited := time.Since(start); waited > 5*timeout {
		t.Fatalf("stalled connection lived %v, want teardown within ~%v", waited, timeout)
	}
}

// TestContactBudgetCapsTrickle: per-I/O deadline refresh treats any
// progress as liveness, so a peer trickling one byte per second could
// pin a contact forever. ContactBudget clamps every refreshed deadline
// to a per-connection wall cap, bounding the whole contact.
func TestContactBudgetCapsTrickle(t *testing.T) {
	const budget = 700 * time.Millisecond
	c, err := Launch(Config{
		Nodes: 3, GroupSize: 1, Seed: 37, Spray: true,
		Timeout:       5 * time.Second,
		ContactBudget: budget,
		// No preamble retries: the point is the cap, not the recovery.
		Retry: RetryPolicy{Budget: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	d0 := c.Daemon(0)
	spec := node.SendSpec{Dst: 2, Payload: []byte("trickle"), Relays: 1, Copies: 3, ID: fmt.Sprintf("%032x", 0x200)}
	if _, err := d0.Send(spec, PathStream(37, 0)); err != nil {
		t.Fatal(err)
	}

	// One byte per second: each byte refreshes the 5s I/O deadline, so
	// without the wall cap the hello ack alone would take ~7s and the
	// contact would still "succeed" eventually.
	proxyAddr := throttledProxy(t, c.Daemon(1).Addr(), 1, time.Second)
	start := time.Now()
	_, err = d0.Contact(1, proxyAddr, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("one-byte-per-second contact completed (%v) despite a %v budget", elapsed, budget)
	}
	if elapsed > 3*budget {
		t.Fatalf("contact lived %v, want teardown within ~%v", elapsed, budget)
	}
}

// TestClusterRefusalChargesReofferBudget: a buffer-full verdict over
// the wire charges the sender's re-offer budget; once exhausted the
// copy is dropped (BackpressureDropped) instead of re-offered forever.
func TestClusterRefusalChargesReofferBudget(t *testing.T) {
	c, err := Launch(Config{
		Nodes: 3, GroupSize: 1, Seed: 35, Spray: true,
		BufferLimit: 1, ReofferLimit: 2, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	d0, d1 := c.Daemon(0), c.Daemon(1)

	const msgs = 4
	for i := 0; i < msgs; i++ {
		spec := node.SendSpec{
			Dst: 2, Payload: []byte("pressure"), Relays: 1, Copies: 3,
			ID: fmt.Sprintf("%032x", 0x100+i),
		}
		if _, err := d0.Send(spec, PathStream(35, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Contact 1: node 1 accepts one copy and refuses the rest.
	rep, err := d0.Contact(1, d1.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 1 || rep.Rejected != msgs-1 {
		t.Fatalf("first contact = %+v, want 1 transfer and %d rejections", rep, msgs-1)
	}
	if got := d0.Node().Stats().BackpressureDropped; got != 0 {
		t.Fatalf("dropped %d copies after one refusal, want 0", got)
	}
	// Contact 2: the refusals repeat and the budget of 2 is exhausted.
	if _, err := d0.Contact(1, d1.Addr(), 2); err != nil {
		t.Fatal(err)
	}
	if got := d0.Node().Stats().BackpressureDropped; got != msgs-1 {
		t.Fatalf("BackpressureDropped = %d, want %d", got, msgs-1)
	}
	// Only the accepted message's spare spray tickets remain in
	// custody; the hopeless copies are gone.
	if got := d0.Node().BufferLen(); got != 1 {
		t.Fatalf("sender buffer = %d onions, want 1 after backpressure drops", got)
	}
	// Contact 3: the surviving copy is re-offered (the sender cannot
	// know the peer's seen log) and rejected as a duplicate — a seen
	// rejection, not a refusal, so it charges no budget.
	rep, err = d0.Contact(1, d1.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != 1 || rep.Rejected != 1 {
		t.Fatalf("third contact = %+v, want one duplicate re-offer", rep)
	}
	if got := d0.Node().Stats().BackpressureDropped; got != msgs-1 {
		t.Fatalf("seen rejection charged the re-offer budget: dropped = %d", got)
	}
}
