package cluster

// Hand-rolled goroutine-leak gate for the whole package: every test
// spawns listeners, connection handlers, and replay workers; all of
// them must drain by the time the suite ends. (No external leak
// checker is available — the repo is dependency-free by policy.)

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		// Connection teardown is asynchronous; give handlers a grace
		// period to drain before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > base {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			fmt.Fprintf(os.Stderr, "cluster: goroutine leak: %d at start, %d after tests\n%s\n",
				base, now, buf[:n])
			code = 1
		}
	}
	os.Exit(code)
}
