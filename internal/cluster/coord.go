package cluster

// Coordinator: the control-plane client cmd/dtndir's replay mode uses
// to drive remote daemons — inject workload messages at their source
// nodes, fire contacts, collect stats, and shut the fleet down. One
// persistent control connection is kept per daemon address.

import (
	"net"
	"sync"
	"time"

	"repro/internal/contact"
	"repro/internal/node"
)

// Coordinator drives daemons over their control plane.
type Coordinator struct {
	timeout time.Duration

	mu    sync.Mutex
	conns map[string]net.Conn
}

// NewCoordinator builds a coordinator with the given per-request
// timeout (default 10s).
func NewCoordinator(timeout time.Duration) *Coordinator {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Coordinator{timeout: timeout, conns: make(map[string]net.Conn)}
}

// conn returns the persistent control connection to addr, dialing on
// first use.
func (co *Coordinator) conn(addr string) (net.Conn, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if c, ok := co.conns[addr]; ok {
		_ = c.SetDeadline(time.Now().Add(co.timeout))
		return c, nil
	}
	c, err := dial(addr, co.timeout, 0)
	if err != nil {
		return nil, err
	}
	co.conns[addr] = c
	return c, nil
}

// drop discards a control connection after a transport error so the
// next request redials.
func (co *Coordinator) drop(addr string) {
	co.mu.Lock()
	if c, ok := co.conns[addr]; ok {
		_ = c.Close()
		delete(co.conns, addr)
	}
	co.mu.Unlock()
}

// request performs one control round-trip.
func (co *Coordinator) request(addr string, typ byte, body any, wantTyp byte, out any) error {
	c, err := co.conn(addr)
	if err != nil {
		return err
	}
	if err := writeJSON(c, typ, body); err != nil {
		co.drop(addr)
		return err
	}
	if err := readExpect(c, wantTyp, out); err != nil {
		if wantTyp != mOK {
			co.drop(addr)
		}
		return err
	}
	return nil
}

// Inject originates workload message m at the daemon listening on
// addr; seed must be the cluster's partition/workload seed so the
// daemon draws the message's path from the shared substream.
func (co *Coordinator) Inject(addr string, seed uint64, m Message) error {
	req := sendMsg{
		Src:     int(m.Src),
		Dst:     int(m.Dst),
		Relays:  m.Relays,
		Copies:  m.Copies,
		Expiry:  m.Expiry,
		Payload: m.Payload,
		MsgID:   m.ID,
		Seed:    seed,
		Index:   m.Index,
	}
	return co.request(addr, mSend, req, mOK, nil)
}

// Contact instructs the daemon at addr to run a contact with peer
// (listening at peerAddr) at sim time now.
func (co *Coordinator) Contact(addr string, peer contact.NodeID, peerAddr string, now float64) error {
	return co.request(addr, mContact, contactMsg{Peer: int(peer), Addr: peerAddr, Now: now}, mOK, nil)
}

// RemoteStats is a daemon's stats snapshot as seen over the wire.
type RemoteStats struct {
	Stats      StatsSubset
	Rejected   int
	BufferLen  int
	Deliveries []node.DeliveryRecord
}

// Stats fetches a stats snapshot from the daemon at addr.
func (co *Coordinator) Stats(addr string) (RemoteStats, error) {
	var resp statsRespMsg
	if err := co.request(addr, mStats, struct{}{}, mStatsResp, &resp); err != nil {
		return RemoteStats{}, err
	}
	rs := RemoteStats{
		Stats: StatsSubset{
			Sent:      resp.Sent,
			Forwarded: resp.Forwarded,
			Carried:   resp.Carried,
			Delivered: resp.Delivered,
		},
		Rejected:  resp.Rejected,
		BufferLen: resp.BufferLen,
	}
	for _, d := range resp.Deliveries {
		rs.Deliveries = append(rs.Deliveries, node.DeliveryRecord{MsgID: d.MsgID, Hops: d.Hops})
	}
	return rs, nil
}

// Quit asks the daemon at addr to shut down and discards its control
// connection.
func (co *Coordinator) Quit(addr string) error {
	err := co.request(addr, mQuit, struct{}{}, mOK, nil)
	co.drop(addr)
	return err
}

// Close drops every control connection.
func (co *Coordinator) Close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for addr, c := range co.conns {
		_ = c.Close()
		delete(co.conns, addr)
	}
}
