// Package cluster is the live networked tier of the system: the same
// protocol the in-process runtime (internal/node) executes as structs
// in a loop, run as daemons over real TCP sockets on loopback or a
// LAN. It provides
//
//   - a directory service (Dir) distributing membership and symmetric
//     layer keys — the keys travel as Shamir threshold shares
//     (internal/shamir), the bulletin-board shape of the related
//     pi_t-experiment repo;
//   - a node daemon (Daemon) that speaks the internal/bundle wire
//     format over length-framed TCP (bundle.WriteFrame/ReadFrame), so
//     the PR 2 truncation/tamper classification applies to real socket
//     tears;
//   - a contact scheduler (Cluster.Replay) replaying the same trace
//     files internal/trace parses as real link events between daemons;
//   - a differential harness (diff.go) proving the live tier delivers
//     exactly the message set the in-process sim delivers for the same
//     (trace, seed).
//
// The scenario axis this opens: one spec now runs in three tiers —
// closed-form analysis, in-process simulation, live cluster.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/bundle"
	"repro/internal/obs"
)

// Message types. Every wire message is one bundle-framed payload whose
// first byte is the type; control bodies are JSON, hand-off bodies are
// binary (hop counter + marshaled bundle).
const (
	// Node <-> node: the contact protocol.
	mHello       byte = iota + 1 // contact opening: who calls whom, at what sim time
	mOffer                       // one custody hand-off: 4-byte hops + bundle frame
	mVerdict                     // receiver's accept/reject for the preceding offer
	mEndOffers                   // initiator is done offering; peer's turn
	mContactDone                 // peer is done offering; contact over

	// Node <-> directory: the bulletin board.
	mRegister   // join/rejoin: id, address, incarnation
	mWelcome    // membership + threshold key shares
	mLookup     // resolve a node id to its current address
	mLookupResp // lookup answer
	mLeave      // voluntary departure
	mOK         // generic ack; carries an error string when the request failed

	// Coordinator -> node: control plane used by cmd/dtndir replay mode.
	mSend      // originate a message (workload spec fields)
	mContact   // initiate a contact with a peer
	mStats     // request a stats snapshot
	mStatsResp // stats answer
	mQuit      // shut down
)

// protoVersion guards against skew between daemons built from
// different revisions; Hello and Register carry it.
const protoVersion = 1

type helloMsg struct {
	Version int     `json:"v"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	Now     float64 `json:"now"`
}

type verdictMsg struct {
	Accepted  bool   `json:"accepted"`
	Delivered bool   `json:"delivered,omitempty"`
	Reason    string `json:"reason,omitempty"`
	// BufferFull distinguishes the backpressure refusal subclass of
	// rejections: the sender charges the copy's re-offer budget instead
	// of treating the peer as broken. Verdicts are parsed non-strict,
	// so older daemons ignore the field.
	BufferFull bool `json:"buffer_full,omitempty"`
}

type registerMsg struct {
	Version     int    `json:"v"`
	ID          int    `json:"id"`
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
}

type shareWire struct {
	X uint8  `json:"x"`
	Y []byte `json:"y"`
}

// keyWire is one layer key split into threshold shares. Kind is
// "group" or "node"; Index the group or node id.
type keyWire struct {
	Kind   string      `json:"kind"`
	Index  int         `json:"index"`
	Shares []shareWire `json:"shares"`
}

type welcomeMsg struct {
	N          int       `json:"n"`
	G          int       `json:"g"`
	Assignment []int32   `json:"assignment"`
	Threshold  int       `json:"threshold"`
	Keys       []keyWire `json:"keys"`
	// DirIncarnation numbers the directory's own lifetime: it bumps on
	// every directory restart, so a node that kept meeting through a
	// blackout can tell a returned directory from a never-gone one and
	// assert the bulletin board never moves backwards. Welcomes are
	// parsed non-strict, so older daemons ignore the field.
	DirIncarnation uint64 `json:"dir_incarnation,omitempty"`
}

type lookupMsg struct {
	ID int `json:"id"`
}

type lookupRespMsg struct {
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
}

type leaveMsg struct {
	ID          int    `json:"id"`
	Incarnation uint64 `json:"incarnation"`
}

type okMsg struct {
	Err string `json:"err,omitempty"`
}

type sendMsg struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Relays  int     `json:"relays"`
	Copies  int     `json:"copies"`
	Expiry  float64 `json:"expiry"`
	Payload []byte  `json:"payload"`
	MsgID   string  `json:"msg_id"`
	// Seed and Index identify the relay-selection substream
	// (PathStream) so every tier draws the same path.
	Seed  uint64 `json:"seed"`
	Index int    `json:"index"`
}

type contactMsg struct {
	Peer int     `json:"peer"`
	Addr string  `json:"addr"`
	Now  float64 `json:"now"`
}

type statsRespMsg struct {
	Sent       int                `json:"sent"`
	Forwarded  int                `json:"forwarded"`
	Carried    int                `json:"carried"`
	Delivered  int                `json:"delivered"`
	Rejected   int                `json:"rejected"`
	BufferLen  int                `json:"buffer_len"`
	Deliveries []deliveryRespWire `json:"deliveries"`
}

type deliveryRespWire struct {
	MsgID string `json:"msg_id"`
	Hops  int    `json:"hops"`
}

// writeMsg frames and writes one typed message.
func writeMsg(w io.Writer, typ byte, body []byte) error {
	payload := make([]byte, 1+len(body))
	payload[0] = typ
	copy(payload[1:], body)
	if err := bundle.WriteFrame(w, payload); err != nil {
		return err
	}
	if c := obs.Active(); c != nil {
		c.Add(obs.ClusterFramesOut, 1)
		c.Add(obs.ClusterBytesOut, int64(len(payload)))
	}
	return nil
}

// writeJSON marshals body and writes it as a typed message.
func writeJSON(w io.Writer, typ byte, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: marshal message %d: %w", typ, err)
	}
	return writeMsg(w, typ, raw)
}

// readMsg reads one typed message.
func readMsg(r io.Reader) (byte, []byte, error) {
	payload, err := bundle.ReadFrame(r)
	if err != nil {
		if c := obs.Active(); err != io.EOF && c != nil {
			c.Add(obs.ClusterFrameErrors, 1)
		}
		return 0, nil, err
	}
	if c := obs.Active(); c != nil {
		c.Add(obs.ClusterFramesIn, 1)
		c.Add(obs.ClusterBytesIn, int64(len(payload)))
	}
	return payload[0], payload[1:], nil
}

// unmarshalStrict decodes a JSON request body, rejecting unknown
// fields so protocol skew fails loudly instead of silently dropping
// data.
func unmarshalStrict(body []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("cluster: decode request: %w", err)
	}
	return nil
}

// readExpect reads one message and requires the given type, decoding a
// JSON body into out when non-nil. An mOK carrying an error string is
// surfaced as that error.
func readExpect(r io.Reader, want byte, out any) error {
	typ, body, err := readMsg(r)
	if err != nil {
		return err
	}
	if typ == mOK {
		var ok okMsg
		if err := json.Unmarshal(body, &ok); err == nil && ok.Err != "" {
			return fmt.Errorf("cluster: peer error: %s", ok.Err)
		}
		if want != mOK {
			return fmt.Errorf("cluster: unexpected ack (want message type %d)", want)
		}
		return nil
	}
	if typ != want {
		return fmt.Errorf("cluster: unexpected message type %d (want %d)", typ, want)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("cluster: decode message type %d: %w", typ, err)
	}
	return nil
}

// offerBody encodes a hand-off: 4-byte big-endian hop counter followed
// by the marshaled bundle frame.
func offerBody(hops int, frame []byte) []byte {
	body := make([]byte, 4+len(frame))
	body[0] = byte(hops >> 24)
	body[1] = byte(hops >> 16)
	body[2] = byte(hops >> 8)
	body[3] = byte(hops)
	copy(body[4:], frame)
	return body
}

// decodeOffer splits a hand-off body into hop counter and frame.
func decodeOffer(body []byte) (hops int, frame []byte, err error) {
	if len(body) < 5 {
		return 0, nil, fmt.Errorf("%w: offer body of %d bytes", bundle.ErrTruncated, len(body))
	}
	hops = int(body[0])<<24 | int(body[1])<<16 | int(body[2])<<8 | int(body[3])
	if hops < 0 {
		return 0, nil, errors.New("cluster: negative hop counter")
	}
	return hops, body[4:], nil
}

// ioDeadlineConn refreshes the socket deadline before every Read and
// Write instead of arming one absolute deadline per connection phase.
// A phase-scoped deadline kills a slow-but-progressing multi-frame
// hand-off the moment the whole exchange outlasts Timeout, forcing
// custody to be needlessly re-offered; per-I/O refresh means progress
// keeps a connection alive while a genuine stall still times out
// within Timeout.
//
// Progress-as-liveness alone lets a maliciously slow peer — one byte
// per second is still progress — pin a contact forever. The optional
// wall cap bounds the whole connection: every refreshed deadline is
// clamped to it, so a contact exceeding its ContactBudget dies with a
// deadline error no matter how steadily bytes trickle.
type ioDeadlineConn struct {
	net.Conn
	timeout time.Duration
	wall    time.Time // zero = no per-connection wall cap
}

func (c ioDeadlineConn) deadline() time.Time {
	dl := time.Now().Add(c.timeout)
	if !c.wall.IsZero() && dl.After(c.wall) {
		dl = c.wall
	}
	return dl
}

func (c ioDeadlineConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(c.deadline()); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c ioDeadlineConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(c.deadline()); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// withIODeadline wraps conn so every I/O operation gets a fresh
// deadline of timeout from now, clamped to a total wall budget when
// budget > 0.
func withIODeadline(conn net.Conn, timeout, budget time.Duration) net.Conn {
	if timeout <= 0 && budget <= 0 {
		return conn
	}
	if timeout <= 0 {
		timeout = budget
	}
	c := ioDeadlineConn{Conn: conn, timeout: timeout}
	if budget > 0 {
		c.wall = time.Now().Add(budget)
	}
	return c
}

// rawDial opens a plain connection with the configured dial timeout
// and counts it; callers layer deadlines (and chaos) on top.
func rawDial(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	if c := obs.Active(); c != nil {
		c.Add(obs.ClusterDials, 1)
	}
	return conn, nil
}

// dial opens a connection with the configured timeout; every I/O on it
// refreshes its deadline (see ioDeadlineConn), clamped to the wall
// budget when budget > 0.
func dial(addr string, timeout, budget time.Duration) (net.Conn, error) {
	conn, err := rawDial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return withIODeadline(conn, timeout, budget), nil
}

// sendErr best-effort reports a request failure to the peer.
func sendErr(w io.Writer, err error) {
	_ = writeJSON(w, mOK, okMsg{Err: err.Error()})
}
