package cluster

// Fault-layer socket tests: connections torn mid-contact, daemons
// killed and restarted, and duplicate re-offers after lost verdicts.
// The topology is pinned so every step is deterministic: 3 nodes with
// singleton groups force SelectPath (which excludes both endpoint
// groups) to route 0 -> 1 through node 2's group.

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/node"
)

const faultMsgID = "000102030405060708090a0b0c0d0e0f"

// launchTrio starts a directory and three daemons with singleton
// groups.
func launchTrio(t *testing.T) *Cluster {
	t.Helper()
	c, err := Launch(Config{Nodes: 3, GroupSize: 1, Seed: 21, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// fakePeer opens a contact with the daemon at addr, pretending to be
// node from, sends no offers of its own, and reads the daemon's first
// offer — then tears the connection without ever sending a verdict.
// It returns the raw offer body (hops + frame).
func fakePeerStealOffer(t *testing.T, addr string, from, to int) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeJSON(conn, mHello, helloMsg{Version: protoVersion, From: from, To: to, Now: 0}); err != nil {
		t.Fatal(err)
	}
	if err := readExpect(conn, mOK, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, mEndOffers, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readMsg(conn)
	if err != nil {
		t.Fatalf("reading the daemon's offer: %v", err)
	}
	if typ != mOffer {
		t.Fatalf("expected an offer, got message type %d", typ)
	}
	return body
	// conn closes here: the verdict is never sent.
}

// TestCustodySurvivesTearsAndCrash walks one message through every
// fault the live tier can throw at it: a receiver that vanishes before
// the verdict, a custodian killed and restarted mid-route, and a
// duplicate re-offer after the delivery — the message must still be
// delivered exactly once.
func TestCustodySurvivesTearsAndCrash(t *testing.T) {
	c := launchTrio(t)
	d0, d1, d2 := c.Daemon(0), c.Daemon(1), c.Daemon(2)

	// Originate 0 -> 1; the only eligible relay group is {2}.
	spec := node.SendSpec{Dst: 1, Payload: []byte("survives"), Relays: 1, Copies: 1, ID: faultMsgID}
	if _, err := d0.Send(spec, PathStream(21, 0)); err != nil {
		t.Fatal(err)
	}

	// Fault 1: the peer reads the offer and dies before the verdict.
	// The sender must keep custody — releasing on an unacknowledged
	// offer would lose the message.
	fakePeerStealOffer(t, d0.Addr(), 2, 0)
	waitStable(t, func() bool { return d0.Node().BufferLen() == 1 })
	if s := d0.Node().Stats(); s.Forwarded != 0 {
		t.Fatalf("custody released on a torn contact: forwarded=%d", s.Forwarded)
	}

	// The next real contact re-offers and the hand-off completes.
	rep, err := d0.Contact(2, d2.Addr(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 1 {
		t.Fatalf("re-offer after tear: %+v", rep)
	}
	if d0.Node().BufferLen() != 0 || d2.Node().BufferLen() != 1 {
		t.Fatalf("custody did not move: buffers %d/%d", d0.Node().BufferLen(), d2.Node().BufferLen())
	}

	// Fault 2: the destination reads the final-hop offer and dies
	// before the verdict. Save the offered body — it is exactly what a
	// duplicate re-offer will replay later.
	finalOffer := fakePeerStealOffer(t, d2.Addr(), 1, 2)
	waitStable(t, func() bool { return d2.Node().BufferLen() == 1 })

	// Fault 3: the custodian itself is killed and restarted with
	// persisted custody, rejoining at the next incarnation.
	d2.Kill()
	if err := d2.Restart(true); err != nil {
		t.Fatal(err)
	}
	if d2.Incarnation() != 2 {
		t.Fatalf("incarnation %d after restart", d2.Incarnation())
	}
	if addr, ok := c.Dir().MemberAddr(2); !ok || addr != d2.Addr() {
		t.Fatalf("directory address %q not updated to %q", addr, d2.Addr())
	}
	if d2.Node().BufferLen() != 1 {
		t.Fatal("persisted custody lost across restart")
	}

	// Delivery: the restarted custodian re-offers to the destination.
	rep, err = d2.Contact(1, d1.Addr(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 1 || rep.Deliveries != 1 {
		t.Fatalf("final hand-off: %+v", rep)
	}
	hops, ok := d1.Node().DeliveredHops(faultMsgID)
	if !ok {
		t.Fatal("message not delivered")
	}
	if hops != 2 {
		t.Fatalf("delivered in %d custody transfers, want 2", hops)
	}

	// Fault 4: the lost verdict of fault 2 means a crashed-and-revived
	// node 2 could re-offer the delivered frame. The destination's seen
	// log must reject it — accepting would deliver twice.
	conn, err := net.DialTimeout("tcp", d1.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeJSON(conn, mHello, helloMsg{Version: protoVersion, From: 2, To: 1, Now: 3.0}); err != nil {
		t.Fatal(err)
	}
	if err := readExpect(conn, mOK, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, mOffer, finalOffer); err != nil {
		t.Fatal(err)
	}
	var v verdictMsg
	if err := readExpect(conn, mVerdict, &v); err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Fatal("duplicate re-offer of a delivered message was accepted")
	}
	if !strings.Contains(v.Reason, "already saw") {
		t.Fatalf("duplicate rejected for the wrong reason: %q", v.Reason)
	}
	if err := writeMsg(conn, mEndOffers, nil); err != nil {
		t.Fatal(err)
	}
	if err := readExpect(conn, mContactDone, nil); err != nil {
		t.Fatalf("contact did not wind down after the dup rejection: %v", err)
	}
	if got := d1.Node().Stats().Delivered; got != 1 {
		t.Fatalf("delivered %d times, want exactly once", got)
	}
}

// TestVolatileCrashDropsCustodyButKeepsLogs kills a custodian without
// persisted custody: the buffered onion is gone, but the duplicate-
// suppression log survives, so the origin cannot resend the same
// message ID.
func TestVolatileCrashDropsCustodyButKeepsLogs(t *testing.T) {
	c := launchTrio(t)
	d0 := c.Daemon(0)
	spec := node.SendSpec{Dst: 1, Payload: []byte("volatile"), Relays: 1, Copies: 1, ID: faultMsgID}
	if _, err := d0.Send(spec, PathStream(21, 0)); err != nil {
		t.Fatal(err)
	}
	d0.Kill()
	if err := d0.Restart(false); err != nil {
		t.Fatal(err)
	}
	s := d0.Node().Stats()
	if d0.Node().BufferLen() != 0 || s.Crashes != 1 || s.CrashDropped != 1 {
		t.Fatalf("volatile crash bookkeeping: buffer=%d stats=%+v", d0.Node().BufferLen(), s)
	}
	if _, err := d0.Send(spec, PathStream(21, 0)); err == nil || !strings.Contains(err.Error(), "already used") {
		t.Fatalf("seen log did not survive the crash: %v", err)
	}
}

// TestRestartRequiresKill guards the lifecycle: a running daemon
// cannot be restarted in place.
func TestRestartRequiresKill(t *testing.T) {
	c := launchTrio(t)
	if err := c.Daemon(0).Restart(true); err == nil {
		t.Fatal("restarted a running daemon")
	}
}

// waitStable polls for an asynchronous teardown to settle.
func waitStable(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition did not settle")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
