package cluster

// The differential tests: the in-process runtime and the live TCP
// cluster run the identical (workload, trace, seed) and must agree on
// the delivered message set — IDs, destinations, hop counts — and on
// the conserved stats, at every replay worker count.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/trace"
)

// launchAndReplay runs the workload on a fresh cluster and returns its
// delivered set and conserved stats.
func launchAndReplay(t *testing.T, cfg Config, msgs []Message, tr *trace.Trace, from, horizon float64, workers int) (DeliverySet, StatsSubset) {
	t.Helper()
	c, err := Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close cluster: %v", err)
		}
	}()
	if err := c.Inject(msgs); err != nil {
		t.Fatal(err)
	}
	n, err := c.Replay(tr, from, horizon, workers)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("replay window held no contacts")
	}
	return c.Deliveries(msgs), Subset(c.TotalStats())
}

// diffAgainstReference runs the same (workload, trace, seed) through
// the in-process tier and through live clusters at several worker
// counts, requiring exact agreement everywhere.
func diffAgainstReference(t *testing.T, cfg Config, msgs []Message, tr *trace.Trace, from, horizon float64) {
	t.Helper()
	ref, err := RunReference(cfg, msgs, tr, from, horizon)
	if err != nil {
		t.Fatal(err)
	}
	want := NetworkDeliveries(ref, msgs)
	if len(want) == 0 {
		t.Fatal("reference run delivered nothing — the differential would be vacuous")
	}
	wantStats := Subset(ref.TotalStats())
	t.Logf("reference: %d/%d delivered, stats %+v", len(want), len(msgs), wantStats)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, gotStats := launchAndReplay(t, cfg, msgs, tr, from, horizon, workers)
			if d := want.Diff(got); d != "" {
				t.Fatalf("live cluster diverged from the in-process run: %s", d)
			}
			if gotStats != wantStats {
				t.Fatalf("conserved stats diverged: cluster %+v, reference %+v", gotStats, wantStats)
			}
		})
	}
}

// TestDifferentialConferenceTrace replays the first conference morning
// of the Infocom-like trace, shrunk to its 5 busiest nodes, on both
// tiers.
func TestDifferentialConferenceTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP clusters")
	}
	full, err := trace.GenerateInfocom(rng.New(11).Split("trace"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := full.KeepBusiest(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Nodes: 5, GroupSize: 2, Seed: 11, Spray: true, Timeout: 10 * time.Second}
	msgs := SyntheticWorkload(11, 5, 12, 1, 2)
	// The diurnal trace starts at hour 9; replay the first two hours of
	// conference mingling.
	diffAgainstReference(t, cfg, msgs, tr, 32400, 7200)
}

// TestDifferentialSyntheticContacts realizes the paper's synthetic
// pairwise-exponential contact process as a recorded trace and runs it
// on both tiers, closing the loop back to sim.RunSynthetic.
func TestDifferentialSyntheticContacts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP clusters")
	}
	const n = 6
	g := contact.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetRate(contact.NodeID(i), contact.NodeID(j), 1.0/300)
		}
	}
	tr := RecordSynthetic(g, 4*3600, rng.New(7).Split("contacts"))
	if len(tr.Contacts) == 0 {
		t.Fatal("synthetic realization produced no contacts")
	}
	cfg := Config{Nodes: n, GroupSize: 2, Seed: 7, Spray: true, Timeout: 10 * time.Second}
	msgs := SyntheticWorkload(7, n, 10, 1, 2)
	diffAgainstReference(t, cfg, msgs, tr, 0, 4*3600)
}

// TestDifferentialWithBufferPressure pins the custody-FIFO ordering
// guarantee: under a tight buffer limit, which hand-offs are refused
// depends on transfer order, so agreement here means the live tier
// replays the in-process tier's order exactly.
func TestDifferentialWithBufferPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP clusters")
	}
	const n = 6
	g := contact.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetRate(contact.NodeID(i), contact.NodeID(j), 1.0/240)
		}
	}
	tr := RecordSynthetic(g, 3*3600, rng.New(13).Split("contacts"))
	cfg := Config{Nodes: n, GroupSize: 2, Seed: 13, Spray: true, BufferLimit: 3, Timeout: 10 * time.Second}
	msgs := SyntheticWorkload(13, n, 12, 1, 3)
	diffAgainstReference(t, cfg, msgs, tr, 0, 3*3600)
}
