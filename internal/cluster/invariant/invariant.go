// Package invariant is the always-on safety checker for the live tier:
// given a launched cluster and the workload it ran, Check proves the
// cluster-wide invariants that chaos, crashes, and blackouts must never
// break, and reports every violation it finds. It is wired into the
// differential harness, cmd/dtnload soaks, and the CI chaos-soak job,
// so a custody bug surfaces as a named violated invariant rather than a
// diffuse stats mismatch.
//
// The rule families:
//
//   - exactly-once: every message is delivered at most once, and only
//     at its addressed destination. (The seen-log discipline: a verdict
//     lost to a torn connection may delay a delivery, never double it.)
//   - custody-conservation: when nothing was legitimately dropped (no
//     expiries, no backpressure drops, no crash losses, no purges),
//     every undelivered message still has at least one custodian — a
//     blackout or chaos run that "loses" a bundle fails here.
//   - ticket-bound: the spray ticket total across all custodians of a
//     message never exceeds its copy budget L (transfers move tickets,
//     they never mint them), and no held copy carries less than one.
//   - share-threshold: every welcome the directory ever served carried
//     exactly Threshold Shamir shares per key — the minimum that
//     reconstructs — even across directory crashes and restarts, so no
//     issuance leaked margin to an eavesdropper.
//   - incarnation-monotonic: per node, admitted registrations carry
//     strictly increasing incarnations (a restarted directory with an
//     empty member table must not let a replayed join regress one).
package invariant

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/contact"
)

// Message is one workload message's identity as the checker needs it.
type Message struct {
	ID     string
	Src    contact.NodeID
	Dst    contact.NodeID
	Copies int // spray ticket budget L (0 = unknown, bound not checked)
}

// Spec is the workload a cluster ran, for invariant purposes.
type Spec struct {
	Messages []Message
}

// Violation is one broken invariant.
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Report is the outcome of one Check.
type Report struct {
	Rules      int // rule families evaluated
	Messages   int // workload messages examined
	Violations []Violation
}

// Clean reports whether every invariant held.
func (r Report) Clean() bool { return len(r.Violations) == 0 }

// Err folds the violations into one error, nil when clean.
func (r Report) Err() error {
	if r.Clean() {
		return nil
	}
	errs := make([]error, len(r.Violations))
	for i, v := range r.Violations {
		errs[i] = errors.New(v.String())
	}
	return fmt.Errorf("invariant: %d violation(s): %w", len(r.Violations), errors.Join(errs...))
}

func (r *Report) add(rule, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// SpecOf builds a Spec from a cluster workload.
func SpecOf(msgs []cluster.Message) Spec {
	s := Spec{Messages: make([]Message, len(msgs))}
	for i, m := range msgs {
		s.Messages[i] = Message{ID: m.ID, Src: m.Src, Dst: m.Dst, Copies: m.Copies}
	}
	return s
}

// Check evaluates every rule family against the cluster's current
// state. It is safe to call at any quiescent point (between contacts);
// harnesses call it after each epoch and at shutdown.
func Check(c *cluster.Cluster, spec Spec) Report {
	rep := Report{Rules: 5, Messages: len(spec.Messages)}
	byID := make(map[string]Message, len(spec.Messages))
	for _, m := range spec.Messages {
		byID[m.ID] = m
	}
	daemons := c.Nodes()

	// exactly-once: collect every delivery in the fleet.
	deliveredAt := make(map[string][]int)
	for _, d := range daemons {
		if d == nil {
			continue
		}
		for _, rec := range d.Node().DeliveryRecords() {
			deliveredAt[rec.MsgID] = append(deliveredAt[rec.MsgID], d.ID())
		}
	}
	for _, m := range spec.Messages {
		nodes := deliveredAt[m.ID]
		if len(nodes) > 1 {
			rep.add("exactly-once", "message %s delivered %d times (nodes %v)", m.ID, len(nodes), nodes)
		}
		for _, n := range nodes {
			if contact.NodeID(n) != m.Dst {
				rep.add("exactly-once", "message %s delivered at node %d, addressed to node %d", m.ID, n, m.Dst)
			}
		}
	}
	for id, nodes := range deliveredAt {
		if _, known := byID[id]; !known {
			rep.add("exactly-once", "delivery of message %s that no workload sent (nodes %v)", id, nodes)
		}
	}

	// Custody and ticket census across the fleet.
	custodians := make(map[string]int)
	tickets := make(map[string]int)
	for _, d := range daemons {
		if d == nil {
			continue
		}
		for _, cr := range d.Node().CustodySnapshot() {
			custodians[cr.MsgID]++
			tickets[cr.MsgID] += cr.Tickets
			if cr.Tickets < 1 {
				rep.add("ticket-bound", "node %d holds message %s with %d tickets", d.ID(), cr.MsgID, cr.Tickets)
			}
			if _, known := byID[cr.MsgID]; !known {
				rep.add("custody-conservation", "node %d holds message %s that no workload sent", d.ID(), cr.MsgID)
			}
		}
	}
	for _, m := range spec.Messages {
		if m.Copies > 0 && tickets[m.ID] > m.Copies {
			rep.add("ticket-bound", "message %s holds %d tickets across %d custodians, budget is %d",
				m.ID, tickets[m.ID], custodians[m.ID], m.Copies)
		}
	}

	// custody-conservation: strict only when the stats prove nothing was
	// legitimately dropped — then "neither delivered nor held" means a
	// bundle vanished.
	stats := c.TotalStats()
	if stats.Expired+stats.Purged+stats.BackpressureDropped+stats.CrashDropped == 0 {
		for _, m := range spec.Messages {
			if len(deliveredAt[m.ID]) == 0 && custodians[m.ID] == 0 {
				rep.add("custody-conservation",
					"message %s neither delivered nor in any custody buffer, with no recorded drop", m.ID)
			}
		}
	}

	// share-threshold: audit the directory's entire issuance history.
	audit := c.Dir().Audit()
	if audit.Welcomes > 0 {
		if audit.MaxShares > audit.Threshold {
			rep.add("share-threshold", "a welcome carried %d shares per key, threshold is %d",
				audit.MaxShares, audit.Threshold)
		}
		if audit.MinShares < audit.Threshold {
			rep.add("share-threshold", "a welcome carried only %d shares per key, threshold is %d",
				audit.MinShares, audit.Threshold)
		}
	}

	// incarnation-monotonic: admitted registrations never regress, even
	// across a directory restart that emptied the member table.
	last := make(map[int]uint64)
	for _, ev := range audit.Registrations {
		if prev, ok := last[ev.Node]; ok && ev.Incarnation <= prev {
			rep.add("incarnation-monotonic",
				"node %d re-admitted at incarnation %d after %d", ev.Node, ev.Incarnation, prev)
		}
		last[ev.Node] = ev.Incarnation
	}
	return rep
}
