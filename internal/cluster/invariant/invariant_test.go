package invariant_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/invariant"
	"repro/internal/node"
)

const (
	msgA = "000102030405060708090a0b0c0d0e0f"
	msgB = "ffff0000111122223333444455556666"
)

// launchTrio pins the deterministic 3-node topology the fault suite
// uses: singleton groups force 0 -> 1 to route through node 2.
func launchTrio(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Launch(cluster.Config{Nodes: 3, GroupSize: 1, Seed: 21, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// routeOne sends msgA from 0 to 1 through relay 2 and completes both
// hand-offs.
func routeOne(t *testing.T, c *cluster.Cluster, copies int) {
	t.Helper()
	spec := node.SendSpec{Dst: 1, Payload: []byte("inv"), Relays: 1, Copies: copies, ID: msgA}
	if _, err := c.Daemon(0).Send(spec, cluster.PathStream(21, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Daemon(0).Contact(2, c.Daemon(2).Addr(), 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Daemon(2).Contact(1, c.Daemon(1).Addr(), 2.0); err != nil {
		t.Fatal(err)
	}
}

// TestCheckCleanRun: a faultless delivery satisfies every rule family.
func TestCheckCleanRun(t *testing.T) {
	c := launchTrio(t)
	routeOne(t, c, 1)
	rep := invariant.Check(c, invariant.Spec{Messages: []invariant.Message{
		{ID: msgA, Src: 0, Dst: 1, Copies: 1},
	}})
	if !rep.Clean() {
		t.Fatalf("clean run violated invariants: %v", rep.Err())
	}
	if rep.Rules != 5 || rep.Messages != 1 {
		t.Fatalf("report coverage: %+v", rep)
	}
	if rep.Err() != nil {
		t.Fatalf("clean report produced an error: %v", rep.Err())
	}
}

// TestCheckFlagsMisdeliveryAndLoss: a spec claiming a different
// destination trips exactly-once, and a message the workload claims to
// have sent but that is nowhere in the cluster trips conservation.
func TestCheckFlagsMisdeliveryAndLoss(t *testing.T) {
	c := launchTrio(t)
	routeOne(t, c, 1)
	rep := invariant.Check(c, invariant.Spec{Messages: []invariant.Message{
		{ID: msgA, Src: 0, Dst: 2, Copies: 1}, // actually delivered at 1
		{ID: msgB, Src: 0, Dst: 1, Copies: 1}, // never sent: vanished
	}})
	if rep.Clean() {
		t.Fatal("misdelivery and loss went undetected")
	}
	err := rep.Err().Error()
	if !strings.Contains(err, "exactly-once") {
		t.Fatalf("misdelivery not attributed to exactly-once: %v", err)
	}
	if !strings.Contains(err, "custody-conservation") {
		t.Fatalf("lost bundle not attributed to custody-conservation: %v", err)
	}
}

// TestCheckTicketBound: more tickets in the fleet than the declared
// copy budget is minting, not spraying.
func TestCheckTicketBound(t *testing.T) {
	c := launchTrio(t)
	spec := node.SendSpec{Dst: 1, Payload: []byte("inv"), Relays: 1, Copies: 2, ID: msgA}
	if _, err := c.Daemon(0).Send(spec, cluster.PathStream(21, 0)); err != nil {
		t.Fatal(err)
	}
	rep := invariant.Check(c, invariant.Spec{Messages: []invariant.Message{
		{ID: msgA, Src: 0, Dst: 1, Copies: 1}, // cluster holds 2 tickets
	}})
	if rep.Clean() || !strings.Contains(rep.Err().Error(), "ticket-bound") {
		t.Fatalf("ticket minting not flagged: %v", rep.Err())
	}
}
