package cluster

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/contact"
	"repro/internal/groups"
	"repro/internal/onion"
	"repro/internal/rng"
	"repro/internal/shamir"
)

// startDir launches a directory on an ephemeral loopback port.
func startDir(t *testing.T, cfg DirConfig) *Dir {
	t.Helper()
	d, err := NewDir(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

// dirRequest performs one raw request round-trip against the directory
// socket, so tests exercise the real wire path.
func dirRequest(t *testing.T, addr string, typ byte, body any, wantTyp byte, out any) error {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeJSON(conn, typ, body); err != nil {
		t.Fatal(err)
	}
	return readExpect(conn, wantTyp, out)
}

func register(t *testing.T, addr string, id int, inc uint64) (*welcomeMsg, error) {
	t.Helper()
	var w welcomeMsg
	req := registerMsg{Version: protoVersion, ID: id, Addr: "127.0.0.1:9", Incarnation: inc}
	if err := dirRequest(t, addr, mRegister, req, mWelcome, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// TestWelcomeRebuildsReferencePartition proves a welcome received over
// the socket reconstructs the exact partition an in-process
// node.NewNetwork run with the same seed would use, and that the
// recovered keys interoperate with the directory's own ciphers.
func TestWelcomeRebuildsReferencePartition(t *testing.T) {
	const seed = 42
	d := startDir(t, DirConfig{Nodes: 12, GroupSize: 4, Seed: seed})
	w, err := register(t, d.Addr(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.N != 12 || w.G != 4 {
		t.Fatalf("welcome shape %d/%d", w.N, w.G)
	}
	view, err := buildView(w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := groups.NewPartition(12, 4, rng.New(seed).Split("partition"))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		if view.GroupOf(contact.NodeID(v)) != ref.GroupOf(contact.NodeID(v)) {
			t.Fatalf("node %d assigned differently from the reference partition", v)
		}
	}
	// A layer sealed by the directory's origin cipher must open with
	// the keys recovered from threshold shares.
	sealer, err := d.Directory().GroupCipher(0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sealer.Seal([]byte("shares travelled over TCP"))
	if err != nil {
		t.Fatal(err)
	}
	member := view.Members(0)[0]
	opener, err := view.MemberCipher(member, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := opener.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "shares travelled over TCP" {
		t.Fatal("recovered key does not match the directory's")
	}
}

// TestThresholdRecovery proves the Shamir split behaves as a threshold
// scheme on the wire: two independently split welcomes recover the
// same keys, exactly Threshold shares are shipped, and Threshold-1
// shares reconstruct garbage.
func TestThresholdRecovery(t *testing.T) {
	d := startDir(t, DirConfig{Nodes: 6, GroupSize: 2, Seed: 9, Shares: 5, Threshold: 3})
	w0, err := register(t, d.Addr(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := register(t, d.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g0, n0, err := recoverKeys(w0)
	if err != nil {
		t.Fatal(err)
	}
	g1, n1, err := recoverKeys(w1)
	if err != nil {
		t.Fatal(err)
	}
	for gid, key := range g0 {
		if !bytes.Equal(key, g1[gid]) {
			t.Fatalf("group key %d recovered differently by the two joiners", gid)
		}
	}
	for v := range n0 {
		if !bytes.Equal(n0[v], n1[v]) {
			t.Fatalf("node key %d recovered differently by the two joiners", v)
		}
	}
	for _, kw := range w0.Keys {
		if len(kw.Shares) != 3 {
			t.Fatalf("%s key %d shipped %d shares, want exactly the threshold", kw.Kind, kw.Index, len(kw.Shares))
		}
	}
	// Below-threshold recovery: interpolation through 2 of 3 required
	// points lands on a different polynomial.
	kw := w0.Keys[0]
	partial := []shamir.Share{
		{X: kw.Shares[0].X, Y: kw.Shares[0].Y},
		{X: kw.Shares[1].X, Y: kw.Shares[1].Y},
	}
	wrong, err := shamir.Combine(partial)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(wrong, g0[onion.GroupID(kw.Index)]) {
		t.Fatal("2 shares of a 3-threshold key reconstructed the secret")
	}
}

// TestRegistrationDiscipline drives the incarnation rules over the
// socket: duplicates and stale registrations are rejected, restarts at
// a higher incarnation supersede, and leaves must quote the live
// incarnation.
func TestRegistrationDiscipline(t *testing.T) {
	d := startDir(t, DirConfig{Nodes: 5, GroupSize: 2, Seed: 3})
	if _, err := register(t, d.Addr(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := register(t, d.Addr(), 1, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate registration: %v", err)
	}
	if _, err := register(t, d.Addr(), 1, 0); err == nil {
		t.Fatal("incarnation 0 accepted")
	}
	// Crash-restart: a higher incarnation supersedes and updates the
	// address.
	var w welcomeMsg
	req := registerMsg{Version: protoVersion, ID: 1, Addr: "127.0.0.1:10", Incarnation: 2}
	if err := dirRequest(t, d.Addr(), mRegister, req, mWelcome, &w); err != nil {
		t.Fatal(err)
	}
	var look lookupRespMsg
	if err := dirRequest(t, d.Addr(), mLookup, lookupMsg{ID: 1}, mLookupResp, &look); err != nil {
		t.Fatal(err)
	}
	if look.Addr != "127.0.0.1:10" || look.Incarnation != 2 {
		t.Fatalf("lookup after restart: %+v", look)
	}
	// The pre-restart incarnation is now stale everywhere.
	if _, err := register(t, d.Addr(), 1, 1); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale registration: %v", err)
	}
	if err := dirRequest(t, d.Addr(), mLeave, leaveMsg{ID: 1, Incarnation: 1}, mOK, nil); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale leave: %v", err)
	}
	if err := dirRequest(t, d.Addr(), mLeave, leaveMsg{ID: 1, Incarnation: 2}, mOK, nil); err != nil {
		t.Fatalf("live leave: %v", err)
	}
	if err := dirRequest(t, d.Addr(), mLookup, lookupMsg{ID: 1}, mLookupResp, nil); err == nil {
		t.Fatal("lookup succeeded after leave")
	}
	if got := d.Members(); got != 0 {
		t.Fatalf("%d members after leave", got)
	}
	// A departed node may rejoin at any higher incarnation.
	if _, err := register(t, d.Addr(), 1, 7); err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
}

// TestRegisterRejectsMalformedJoins covers the admission guards.
func TestRegisterRejectsMalformedJoins(t *testing.T) {
	d := startDir(t, DirConfig{Nodes: 5, GroupSize: 2, Seed: 3})
	cases := []struct {
		name string
		req  registerMsg
	}{
		{"version skew", registerMsg{Version: protoVersion + 1, ID: 0, Addr: "a:1", Incarnation: 1}},
		{"id out of range", registerMsg{Version: protoVersion, ID: 5, Addr: "a:1", Incarnation: 1}},
		{"negative id", registerMsg{Version: protoVersion, ID: -1, Addr: "a:1", Incarnation: 1}},
		{"no address", registerMsg{Version: protoVersion, ID: 0, Incarnation: 1}},
	}
	for _, tc := range cases {
		if err := dirRequest(t, d.Addr(), mRegister, tc.req, mWelcome, nil); err == nil {
			t.Fatalf("%s: admitted", tc.name)
		}
	}
	if got := d.Members(); got != 0 {
		t.Fatalf("%d members admitted by malformed joins", got)
	}
}

func TestDirConfigValidation(t *testing.T) {
	bad := []DirConfig{
		{Nodes: 2, GroupSize: 1},
		{Nodes: 5, GroupSize: 0},
		{Nodes: 5, GroupSize: 6},
		{Nodes: 5, GroupSize: 2, Shares: 2, Threshold: 3},
		{Nodes: 5, GroupSize: 2, Shares: 300, Threshold: 3},
	}
	for i, cfg := range bad {
		if _, err := NewDir(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
