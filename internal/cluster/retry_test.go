package cluster

// Unit tests for the self-healing primitives (backoff, breaker) and
// the startup-order regression: a daemon started before its directory
// must come up as soon as the directory does, within JoinWait.

import (
	"net"
	"testing"
	"time"
)

// TestBackoffBounds: exponential growth from Base, capped at Max, with
// full jitter in [1/2, 1].
func TestBackoffBounds(t *testing.T) {
	pol := RetryPolicy{Base: 4 * time.Millisecond, Max: 32 * time.Millisecond}.filled()
	high := func() float64 { return 1.0 }
	low := func() float64 { return 0.0 }
	if got := pol.backoff(0, high); got != 4*time.Millisecond {
		t.Fatalf("backoff(0) = %v, want Base", got)
	}
	if got := pol.backoff(2, high); got != 16*time.Millisecond {
		t.Fatalf("backoff(2) = %v, want 16ms", got)
	}
	for attempt := 3; attempt < 20; attempt++ {
		if got := pol.backoff(attempt, high); got > pol.Max {
			t.Fatalf("backoff(%d) = %v escapes Max %v", attempt, got, pol.Max)
		}
	}
	if got := pol.backoff(0, low); got != 2*time.Millisecond {
		t.Fatalf("fully-jittered backoff(0) = %v, want Base/2", got)
	}
}

// TestBreakerLifecycle walks the closed -> open -> half-open -> closed
// cycle.
func TestBreakerLifecycle(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 100 * time.Millisecond}
	now := time.Now()
	b.failure(now)
	b.failure(now)
	if w := b.wait(now); w != 0 {
		t.Fatalf("breaker opened before the threshold: wait %v", w)
	}
	b.failure(now) // third consecutive failure trips it
	if w := b.wait(now); w <= 0 {
		t.Fatal("breaker did not open at the threshold")
	}
	probe := now.Add(b.cooldown)
	if w := b.wait(probe); w != 0 {
		t.Fatalf("cooldown elapsed but breaker still open: wait %v", w)
	}
	// A failed half-open probe re-opens immediately.
	b.failure(probe)
	if w := b.wait(probe); w <= 0 {
		t.Fatal("failed half-open probe did not re-open the breaker")
	}
	// A successful probe closes it and resets the failure streak.
	b.success()
	if w := b.wait(probe.Add(time.Nanosecond)); w != 0 {
		t.Fatal("success did not close the breaker")
	}
	b.failure(probe)
	b.failure(probe)
	if w := b.wait(probe); w != 0 {
		t.Fatal("success did not reset the consecutive-failure streak")
	}
}

// TestDaemonStartsBeforeDirectory: the startup-order regression. The
// daemon's registration loop must keep retrying within JoinWait and
// succeed the moment the directory starts listening.
func TestDaemonStartsBeforeDirectory(t *testing.T) {
	dir, err := NewDir(DirConfig{Nodes: 3, GroupSize: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// Reserve a port so the daemon knows the directory's address before
	// the directory exists.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dirAddr := lis.Addr().String()
	_ = lis.Close()

	type result struct {
		d   *Daemon
		err error
	}
	started := make(chan result, 1)
	go func() {
		d, err := StartDaemon(DaemonConfig{
			ID: 0, DirAddr: dirAddr,
			JoinWait: 10 * time.Second,
			Retry:    RetryPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		})
		started <- result{d, err}
	}()

	// Hold the reversed order long enough that the daemon's first
	// attempts have certainly failed.
	time.Sleep(200 * time.Millisecond)
	select {
	case r := <-started:
		t.Fatalf("daemon gave up before the directory existed: %+v, %v", r.d, r.err)
	default:
	}
	if err := dir.Start(dirAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dir.Close() })

	r := <-started
	if r.err != nil {
		t.Fatalf("daemon did not survive starting before the directory: %v", r.err)
	}
	t.Cleanup(func() { _ = r.d.Close() })
	if dir.Members() != 1 {
		t.Fatalf("members = %d after the late join, want 1", dir.Members())
	}
}

// TestSingleAttemptJoinStillFails guards the zero default: without
// JoinWait a daemon started before its directory fails fast, the
// pre-existing contract.
func TestSingleAttemptJoinStillFails(t *testing.T) {
	start := time.Now()
	_, err := StartDaemon(DaemonConfig{ID: 0, DirAddr: "127.0.0.1:1", Timeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("daemon started with no directory and no join window")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("single-attempt join took %v", elapsed)
	}
}
