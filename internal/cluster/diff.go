package cluster

// The differential harness: the same workload, trace, and seed run
// through the in-process runtime (node.Network driven by sim.Replay)
// and through the live cluster must deliver the identical message set
// — same IDs, same destinations, same hop counts — and agree on the
// conserved stats. Three pieces make the comparison exact:
//
//   - deterministic message IDs (SendSpec.ID) so deliveries are
//     identifiable across tiers;
//   - shared relay-selection substreams (PathStream) so both tiers
//     build the same onion for message i;
//   - the same partition seed, so group structure agrees.
//
// Stats compared are the conserved subset (Sent, Forwarded, Carried,
// Delivered): counters like Rejected can legitimately differ, because
// an in-process sender consults the receiver's duplicate log before
// offering while a socket sender cannot — the duplicate is rejected on
// the wire instead of skipped silently.

import (
	"fmt"
	"sort"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Message is one workload entry, realizable on any tier.
type Message struct {
	Index   int // position in the workload; selects the path substream
	Src     contact.NodeID
	Dst     contact.NodeID
	Relays  int
	Copies  int
	Expiry  float64
	Payload []byte
	ID      string // 32 hex characters, deterministic per (seed, index)
}

// PathStream returns the relay-selection substream for workload
// message i. Every tier — reference network, cluster daemon, any
// future backend — must draw message i's path from this stream for
// routing to agree.
func PathStream(seed uint64, i int) *rng.Stream {
	return rng.New(seed).SplitN("cluster-path", i)
}

// messageID derives the deterministic 32-hex-character message ID for
// workload entry (seed, index).
func messageID(seed uint64, i int) string {
	return fmt.Sprintf("%016x%016x", seed, uint64(i))
}

// SyntheticWorkload derives count messages over n nodes from the
// workload substream of seed: uniformly random distinct (src, dst)
// pairs, fixed relay/copy counts, deterministic IDs and payloads.
func SyntheticWorkload(seed uint64, n, count, relays, copies int) []Message {
	ws := rng.New(seed).Split("cluster-workload")
	msgs := make([]Message, count)
	for i := range msgs {
		src := contact.NodeID(ws.IntN(n))
		dst := contact.NodeID(ws.IntN(n - 1))
		if dst >= src {
			dst++
		}
		msgs[i] = Message{
			Index:   i,
			Src:     src,
			Dst:     dst,
			Relays:  relays,
			Copies:  copies,
			Payload: []byte(fmt.Sprintf("cluster-msg-%04d", i)),
			ID:      messageID(seed, i),
		}
	}
	return msgs
}

// spec converts a workload entry to a SendSpec.
func (m Message) spec() node.SendSpec {
	return node.SendSpec{
		Dst:     m.Dst,
		Payload: m.Payload,
		Relays:  m.Relays,
		Copies:  m.Copies,
		Expiry:  m.Expiry,
		ID:      m.ID,
	}
}

// Delivery identifies one delivered message: which, to whom, in how
// many custody transfers.
type Delivery struct {
	MsgID string
	Dst   contact.NodeID
	Hops  int
}

// DeliverySet is a delivery list sorted by message ID, the unit of
// cross-tier comparison.
type DeliverySet []Delivery

// Diff returns a human-readable description of the first divergence
// from other, or "" when the sets are identical.
func (ds DeliverySet) Diff(other DeliverySet) string {
	if len(ds) != len(other) {
		return fmt.Sprintf("delivery counts differ: %d vs %d", len(ds), len(other))
	}
	for i := range ds {
		if ds[i] != other[i] {
			return fmt.Sprintf("delivery %d differs: %+v vs %+v", i, ds[i], other[i])
		}
	}
	return ""
}

// Inject originates every workload message at its source daemon.
func (c *Cluster) Inject(msgs []Message) error {
	for _, m := range msgs {
		if _, err := c.Daemon(m.Src).Send(m.spec(), PathStream(c.cfg.Seed, m.Index)); err != nil {
			return fmt.Errorf("cluster: inject message %d: %w", m.Index, err)
		}
	}
	return nil
}

// Deliveries collects the cluster's delivered set for the workload.
func (c *Cluster) Deliveries(msgs []Message) DeliverySet {
	out := make(DeliverySet, 0, len(msgs))
	for _, m := range msgs {
		if hops, ok := c.Daemon(m.Dst).Node().DeliveredHops(m.ID); ok {
			out = append(out, Delivery{MsgID: m.ID, Dst: m.Dst, Hops: hops})
		}
	}
	sortDeliveries(out)
	return out
}

// NetworkDeliveries collects an in-process network's delivered set for
// the workload.
func NetworkDeliveries(nw *node.Network, msgs []Message) DeliverySet {
	out := make(DeliverySet, 0, len(msgs))
	for _, m := range msgs {
		if hops, ok := nw.Node(m.Dst).DeliveredHops(m.ID); ok {
			out = append(out, Delivery{MsgID: m.ID, Dst: m.Dst, Hops: hops})
		}
	}
	sortDeliveries(out)
	return out
}

func sortDeliveries(ds DeliverySet) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].MsgID < ds[j].MsgID })
}

// RunReference executes the workload on the in-process tier: a
// node.Network with the cluster's seed (hence the identical partition)
// driven by serial trace replay. It returns the network for delivery
// and stats inspection.
func RunReference(cfg Config, msgs []Message, tr *trace.Trace, from, horizon float64) (*node.Network, error) {
	nw, err := node.NewNetwork(node.Config{
		Nodes:       cfg.Nodes,
		GroupSize:   cfg.GroupSize,
		Seed:        cfg.Seed,
		Spray:       cfg.Spray,
		BufferLimit: cfg.BufferLimit,
	})
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		if _, err := nw.Node(m.Src).Send(m.spec(), PathStream(cfg.Seed, m.Index)); err != nil {
			return nil, fmt.Errorf("cluster: reference send %d: %w", m.Index, err)
		}
	}
	nw.DriveTrace(tr, from, horizon, nil)
	return nw, nil
}

// RecordSynthetic realizes the synthetic contact process (the paper's
// pairwise exponential model) as a concrete trace, so the identical
// contact sequence can drive both the in-process tier and the live
// cluster.
func RecordSynthetic(g *contact.Graph, horizon float64, s *rng.Stream) *trace.Trace {
	rec := &contactRecorder{n: g.N()}
	sim.RunSynthetic(g, horizon, s, rec)
	return &trace.Trace{NodeCount: rec.n, Contacts: rec.contacts}
}

type contactRecorder struct {
	n        int
	contacts []trace.Contact
}

func (r *contactRecorder) OnContact(t float64, a, b contact.NodeID) {
	r.contacts = append(r.contacts, trace.Contact{A: a, B: b, Start: t, End: t})
}

func (r *contactRecorder) Done() bool { return false }

// StatsSubset is the conserved-counter subset compared across tiers.
type StatsSubset struct {
	Sent      int
	Forwarded int
	Carried   int
	Delivered int
}

// Subset projects the conserved counters out of full node stats.
func Subset(s node.Stats) StatsSubset {
	return StatsSubset{Sent: s.Sent, Forwarded: s.Forwarded, Carried: s.Carried, Delivered: s.Delivered}
}
