package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapTrialsZeroAndSingleTrial(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		out, err := MapTrials(workers, 0, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatalf("workers=%d trials=0: %v", workers, err)
		}
		if len(out) != 0 {
			t.Fatalf("workers=%d trials=0: got %d results", workers, len(out))
		}
		out, err = MapTrials(workers, 1, func(i int) (int, error) { return i * 7, nil })
		if err != nil {
			t.Fatalf("workers=%d trials=1: %v", workers, err)
		}
		if len(out) != 1 || out[0] != 0 {
			t.Fatalf("workers=%d trials=1: got %v", workers, out)
		}
	}
}

func TestMapTrialsResultsInTrialOrder(t *testing.T) {
	const n = 257
	for _, workers := range []int{0, 1, 3, 16, n + 5} {
		out, err := MapTrials(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapTrialsWorkersZeroDefaultsToGOMAXPROCS(t *testing.T) {
	// Count distinct goroutines indirectly: with workers=0 and more
	// trials than GOMAXPROCS every trial must still run exactly once.
	var ran atomic.Int64
	n := 4*runtime.GOMAXPROCS(0) + 3
	out, err := MapTrials(0, n, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(ran.Load()) != n || len(out) != n {
		t.Fatalf("ran %d trials, returned %d results, want %d", ran.Load(), len(out), n)
	}
}

func TestMapTrialsErrorPropagationAndCancellation(t *testing.T) {
	const n = 10000
	sentinel := errors.New("boom")
	var ran atomic.Int64
	_, err := MapTrials(4, n, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "trial") {
		t.Fatalf("error does not name the failing trial: %v", err)
	}
	if ran.Load() >= n {
		t.Fatalf("pool was not cancelled: all %d trials ran after an immediate failure", n)
	}
}

func TestMapTrialsSequentialErrorIsFirst(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := MapTrials(1, 100, func(i int) (int, error) {
		if i >= 42 {
			return 0, fmt.Errorf("trial body %d: %w", i, sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "trial 42") {
		t.Fatalf("sequential mode must surface the first error, got: %v", err)
	}
}

// TestMapTrialsStress runs far more trials than workers so the claim
// counter and result slice are hammered from every worker; `go test
// -race ./internal/experiment/` turns this into a data-race probe of
// the pool itself.
func TestMapTrialsStress(t *testing.T) {
	const n = 2000
	for _, workers := range []int{2, 8, 32} {
		var ran atomic.Int64
		out, err := MapTrials(workers, n, func(i int) (int64, error) {
			return ran.Add(1), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if int(ran.Load()) != n {
			t.Fatalf("workers=%d: ran %d trials, want %d", workers, ran.Load(), n)
		}
		seen := make(map[int64]bool, n)
		for _, v := range out {
			if v < 1 || v > n || seen[v] {
				t.Fatalf("workers=%d: claim ticket %d duplicated or out of range", workers, v)
			}
			seen[v] = true
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(0, 100) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := ResolveWorkers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(-3, 100) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := ResolveWorkers(8, 3); got != 3 {
		t.Fatalf("ResolveWorkers(8, 3) = %d, want 3 (clamped to trials)", got)
	}
	if got := ResolveWorkers(5, 100); got != 5 {
		t.Fatalf("ResolveWorkers(5, 100) = %d, want 5", got)
	}
}
