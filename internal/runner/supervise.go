package runner

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TrialError identifies one failed trial: which batch and index it was,
// how it failed (panic, watchdog timeout, or a returned error), and how
// many attempts were made. It is the error type plain MapTrials returns
// for a panicking trial and the unit the supervised runner quarantines.
type TrialError struct {
	Batch      string // batch label (scenario ID + series); empty in plain MapTrials
	Trial      int    // trial index within the batch
	Attempts   int    // attempts made before giving up
	TimedOut   bool   // the watchdog expired on every attempt
	PanicValue string // recovered panic value, when the trial panicked
	Stack      string // goroutine stack captured at the panic site
	Err        error  // underlying error for non-panic, non-timeout failures
}

// Error names the offending trial first, so the failure is identifiable
// even from a one-line log.
func (e *TrialError) Error() string {
	where := fmt.Sprintf("trial %d", e.Trial)
	if e.Batch != "" {
		where = fmt.Sprintf("trial %d of batch %q", e.Trial, e.Batch)
	}
	switch {
	case e.PanicValue != "":
		return fmt.Sprintf("%s panicked (attempt %d): %s\n%s", where, e.Attempts, e.PanicValue, e.Stack)
	case e.TimedOut:
		return fmt.Sprintf("%s exceeded the watchdog timeout on %d attempts", where, e.Attempts)
	default:
		return fmt.Sprintf("%s failed: %v", where, e.Err)
	}
}

// Unwrap exposes the underlying error, if any.
func (e *TrialError) Unwrap() error { return e.Err }

// QuarantineError reports a batch that completed its healthy trials but
// quarantined one or more panicking or hung ones. The batch's results
// are not usable; the quarantined trials are individually identified.
type QuarantineError struct {
	Batch  string
	Trials []*TrialError
}

// Error summarizes the quarantine, leading with the first offender.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("runner: batch %q: %d trial(s) quarantined; first: %v",
		e.Batch, len(e.Trials), e.Trials[0])
}

// Unwrap exposes the first quarantined trial.
func (e *QuarantineError) Unwrap() error { return e.Trials[0] }

// ErrInterrupted is returned (wrapped) by the supervised runner when a
// drain request stopped the batch before every trial ran. Completed
// trials are already persisted when a ResultStore is attached, so a
// resumed run picks up exactly where this one stopped.
var ErrInterrupted = errors.New("interrupted before all trials completed")

// ResultStore persists completed per-trial results across process
// lifetimes. Lookup returns the stored encoding of a completed trial;
// Save records one. Implementations must be safe for concurrent use —
// internal/checkpoint provides the durable one.
type ResultStore interface {
	Lookup(batch string, trial int) (data []byte, ok bool)
	Save(batch string, trial int, data []byte) error
}

// Supervisor carries the run-wide supervision state shared by every
// batch of one command invocation: the per-trial watchdog timeout, the
// drain signal, and the quarantine record. The zero value is not
// usable; construct with NewSupervisor.
type Supervisor struct {
	timeout time.Duration
	stop    chan struct{}
	once    sync.Once

	mu          sync.Mutex
	quarantined []*TrialError
}

// NewSupervisor returns a supervisor enforcing the given per-trial
// watchdog timeout (0 disables the watchdog).
func NewSupervisor(timeout time.Duration) *Supervisor {
	return &Supervisor{timeout: timeout, stop: make(chan struct{})}
}

// Stop requests a drain: workers finish their in-flight trials, stop
// claiming new ones, and every unfinished batch returns ErrInterrupted.
// Safe to call from any goroutine, any number of times.
func (s *Supervisor) Stop() { s.once.Do(func() { close(s.stop) }) }

// Stopping reports whether a drain has been requested.
func (s *Supervisor) Stopping() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// Quarantined returns every trial quarantined so far, in the order the
// failures were recorded.
func (s *Supervisor) Quarantined() []*TrialError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*TrialError(nil), s.quarantined...)
}

func (s *Supervisor) note(te *TrialError) {
	s.mu.Lock()
	s.quarantined = append(s.quarantined, te)
	s.mu.Unlock()
}

// Supervised is the crash-safe variant of MapTrials. On top of the
// plain determinism contract it adds, when a supervisor is attached:
//
//   - panic isolation: a panicking trial is quarantined as a TrialError
//     (index, batch, stack) instead of killing the process, and the
//     remaining trials still run;
//   - a per-trial watchdog: a trial exceeding the supervisor's timeout
//     is retried once (trials are deterministic in their index, so the
//     retry recomputes the identical result) and quarantined if the
//     retry hangs too — the abandoned attempt's goroutine can no longer
//     publish anything;
//   - drain: after Supervisor.Stop, workers finish in-flight trials and
//     the batch returns ErrInterrupted (wrapped, with progress counts).
//
// When a ResultStore is attached, every completed trial is persisted
// under (batch, index) and already-stored trials are loaded instead of
// executed. Because trial i's result depends only on i (index-labeled
// RNG substreams), the loaded-or-computed union is bit-identical to an
// uninterrupted run at any worker count.
//
// With neither a supervisor nor a store, Supervised is plain MapTrials
// plus the batch label on errors.
func Supervised[T any](sup *Supervisor, store ResultStore, batch string, workers, trials int, trial func(i int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	if sup == nil && store == nil {
		out, err := MapTrials(workers, trials, trial)
		if err != nil {
			var te *TrialError
			if errors.As(err, &te) && te.Batch == "" {
				te.Batch = batch
			}
			return nil, fmt.Errorf("batch %q: %w", batch, err)
		}
		return out, nil
	}
	workers = ResolveWorkers(workers, trials)

	// Same per-batch instrumentation as MapTrials: zero RNG, no effect
	// on results, one atomic load when no collector is installed.
	c := obs.Active()
	if c != nil {
		batchStart := time.Now()
		c.Add(obs.ExpTrialBatches, 1)
		c.Add(obs.ExpTrials, int64(trials))
		c.Observe(obs.HistTrialBatchTrials, int64(trials))
		defer func() {
			wall := time.Since(batchStart)
			c.Add(obs.ExpBatchWallNanos, wall.Nanoseconds())
			c.Add(obs.ExpBatchCapacityNanos, wall.Nanoseconds()*int64(workers))
		}()
	}

	var (
		out        = make([]T, trials)
		errs       = make([]error, trials)
		failed     atomic.Bool
		done       atomic.Int64
		next       atomic.Int64
		qmu        sync.Mutex
		quarantine []*TrialError
	)
	worker := func() {
		for {
			if failed.Load() || (sup != nil && sup.Stopping()) {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= trials {
				return
			}
			if store != nil {
				if data, ok := store.Lookup(batch, i); ok {
					v, err := DecodeResult[T](data)
					if err != nil {
						errs[i] = fmt.Errorf("decode checkpointed result: %w", err)
						failed.Store(true)
						return
					}
					out[i] = v
					done.Add(1)
					continue
				}
			}
			v, err, te := attempt(sup, batch, i, c, trial)
			if te != nil {
				qmu.Lock()
				quarantine = append(quarantine, te)
				qmu.Unlock()
				continue
			}
			if err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			if store != nil {
				data, serr := EncodeResult(v)
				if serr == nil {
					serr = store.Save(batch, i, data)
				}
				if serr != nil {
					errs[i] = fmt.Errorf("checkpoint result: %w", serr)
					failed.Store(true)
					return
				}
			}
			out[i] = v
			done.Add(1)
		}
	}
	if workers == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	if failed.Load() {
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("runner: batch %q trial %d: %w", batch, i, err)
			}
		}
	}
	if int(done.Load())+len(quarantine) < trials {
		return nil, fmt.Errorf("runner: batch %q: %d/%d trials complete: %w",
			batch, done.Load(), trials, ErrInterrupted)
	}
	if len(quarantine) > 0 {
		if sup != nil {
			for _, te := range quarantine {
				sup.note(te)
			}
		}
		return nil, &QuarantineError{Batch: batch, Trials: quarantine}
	}
	return out, nil
}

// attempt runs one trial shielded from panics, under the supervisor's
// watchdog when one is set, granting one deterministic retry after a
// timeout. It returns either the trial's value/error or a quarantinable
// TrialError.
func attempt[T any](sup *Supervisor, batch string, i int, c *obs.Collector, trial func(i int) (T, error)) (T, error, *TrialError) {
	var timeout time.Duration
	if sup != nil {
		timeout = sup.timeout
	}
	for a := 1; ; a++ {
		v, err, te := runShielded(batch, i, a, timeout, c, trial)
		if te == nil {
			return v, err, nil
		}
		if te.TimedOut && a == 1 {
			continue // one deterministic retry after a watchdog timeout
		}
		var zero T
		return zero, nil, te
	}
}

type attemptResult[T any] struct {
	v   T
	err error
	te  *TrialError
}

// runShielded executes one attempt with panic recovery and, when
// timeout > 0, a watchdog. The attempt goroutine publishes only into
// its own buffered channel, so an abandoned (timed-out) attempt can
// never race a later retry on shared state.
func runShielded[T any](batch string, i, att int, timeout time.Duration, c *obs.Collector, trial func(i int) (T, error)) (T, error, *TrialError) {
	if timeout <= 0 {
		return runRecover(batch, i, att, c, trial)
	}
	ch := make(chan attemptResult[T], 1)
	go func() {
		v, err, te := runRecover(batch, i, att, c, trial)
		ch <- attemptResult[T]{v: v, err: err, te: te}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err, r.te
	case <-timer.C:
		var zero T
		return zero, nil, &TrialError{Batch: batch, Trial: i, Attempts: att, TimedOut: true}
	}
}

// runRecover executes one attempt, converting a panic into a
// TrialError carrying the recovered value and stack.
func runRecover[T any](batch string, i, att int, c *obs.Collector, trial func(i int) (T, error)) (v T, err error, te *TrialError) {
	defer func() {
		if p := recover(); p != nil {
			te = &TrialError{
				Batch: batch, Trial: i, Attempts: att,
				PanicValue: fmt.Sprint(p), Stack: string(debug.Stack()),
			}
		}
	}()
	if c != nil {
		start := time.Now()
		defer func() { c.Add(obs.ExpTrialBusyNanos, time.Since(start).Nanoseconds()) }()
	}
	v, err = trial(i)
	return v, err, nil
}

// EncodeResult serializes one trial result for a ResultStore. Gob
// preserves float64 bit patterns exactly, so a decoded result is
// bit-identical to the computed one — the property the byte-identical
// resume and cache-reuse guarantees rest on. Exported for the fleet
// dispatch layer (internal/dispatch), which reassembles batches from
// stored encodings written by other workers.
func EncodeResult[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("encode trial result: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResult is the inverse of EncodeResult.
func DecodeResult[T any](data []byte) (T, error) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return v, fmt.Errorf("decode trial result: %w", err)
	}
	return v, nil
}
