// Package runner provides the deterministic bounded worker pool that
// every Monte Carlo loop in this repository runs on. It sits below the
// experiment and scenario layers (it imports only obs) so both can
// share one pool without an import cycle.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// MapTrials runs trial(i) for every index in [0, trials) on a bounded
// pool of worker goroutines and returns the per-trial results in trial
// order. workers <= 0 means runtime.GOMAXPROCS(0).
//
// Determinism contract: trial must derive all of its randomness from
// its index (e.g. via rng.Stream.SplitN with the index as the stream
// label), never from shared mutable state, so that the result slice is
// bit-identical for every worker count and every completion order.
// Every Monte Carlo loop in the experiment and scenario packages runs
// on MapTrials, and the equivalence tests assert the resulting figures
// are byte-identical for workers in {1, 4, GOMAXPROCS}.
//
// Error contract: when one or more trials fail, the remaining workers
// stop claiming new trials promptly and the recorded failure with the
// lowest trial index is returned, wrapped with that index. A panic
// inside trial does not take the process down: it is recovered into a
// *TrialError naming the trial index and carrying the panic value and
// stack, and reported through the same error path. Which trials ran
// before cancellation is scheduling-dependent; the value results are
// only meaningful when the returned error is nil.
func MapTrials[T any](workers, trials int, trial func(i int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	workers = ResolveWorkers(workers, trials)
	// Per-batch instrumentation: wall-clock, offered worker capacity,
	// and summed per-trial busy time (their ratio is worker
	// utilization). Collection draws no RNG and does not touch the
	// trial results, so figures are byte-identical either way; when no
	// collector is installed the batch pays one atomic load and no
	// clock reads.
	c := obs.Active()
	var batchStart time.Time
	if c != nil {
		batchStart = time.Now()
		c.Add(obs.ExpTrialBatches, 1)
		c.Add(obs.ExpTrials, int64(trials))
		c.Observe(obs.HistTrialBatchTrials, int64(trials))
		defer func() {
			wall := time.Since(batchStart)
			c.Add(obs.ExpBatchWallNanos, wall.Nanoseconds())
			c.Add(obs.ExpBatchCapacityNanos, wall.Nanoseconds()*int64(workers))
		}()
	}
	timed := trial
	if c != nil {
		timed = func(i int) (T, error) {
			start := time.Now()
			v, err := trial(i)
			c.Add(obs.ExpTrialBusyNanos, time.Since(start).Nanoseconds())
			return v, err
		}
	}
	// Panic shield: a panicking trial surfaces as a *TrialError naming
	// its index instead of tearing down the whole run unattributed.
	run := func(i int) (v T, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &TrialError{
					Trial: i, Attempts: 1,
					PanicValue: fmt.Sprint(p), Stack: string(debug.Stack()),
				}
			}
		}()
		return timed(i)
	}
	out := make([]T, trials)
	if workers == 1 {
		for i := 0; i < trials; i++ {
			v, err := run(i)
			if err != nil {
				return nil, wrapTrialErr(i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, trials)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials || failed.Load() {
					return
				}
				v, err := run(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for i, err := range errs {
			if err != nil {
				return nil, wrapTrialErr(i, err)
			}
		}
	}
	return out, nil
}

// wrapTrialErr prefixes a trial failure with the runner and index. A
// *TrialError already names its own trial, so it is not double-labeled.
func wrapTrialErr(i int, err error) error {
	var te *TrialError
	if errors.As(err, &te) {
		return fmt.Errorf("runner: %w", err)
	}
	return fmt.Errorf("runner: trial %d: %w", i, err)
}

// ResolveWorkers clamps a worker count to [1, trials], defaulting
// non-positive values to GOMAXPROCS.
func ResolveWorkers(workers, trials int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
