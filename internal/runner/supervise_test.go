package runner

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memStore is an in-memory ResultStore for exercising the supervised
// runner without touching disk.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
	// saveHook, when set, runs after each successful Save with the total
	// number of saves so far.
	saveHook func(saves int)
	saves    int
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) key(batch string, trial int) string {
	return fmt.Sprintf("%s\x00%d", batch, trial)
}

func (s *memStore) Lookup(batch string, trial int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[s.key(batch, trial)]
	return data, ok
}

func (s *memStore) Save(batch string, trial int, data []byte) error {
	s.mu.Lock()
	s.m[s.key(batch, trial)] = data
	s.saves++
	n := s.saves
	hook := s.saveHook
	s.mu.Unlock()
	if hook != nil {
		hook(n)
	}
	return nil
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func TestMapTrialsPanicNamesTrial(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapTrials(workers, 8, func(i int) (int, error) {
			if i == 5 {
				panic("boom at five")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error from panicking trial", workers)
		}
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: err = %v, want *TrialError", workers, err)
		}
		if te.Trial != 5 || te.PanicValue != "boom at five" {
			t.Fatalf("workers=%d: TrialError = %+v", workers, te)
		}
		if !strings.Contains(err.Error(), "trial 5") || !strings.Contains(err.Error(), "boom at five") {
			t.Fatalf("workers=%d: error text does not identify the trial: %v", workers, err)
		}
		if te.Stack == "" {
			t.Fatalf("workers=%d: panic stack not captured", workers)
		}
	}
}

func TestSupervisedQuarantinesPanicAndContinues(t *testing.T) {
	sup := NewSupervisor(0)
	var ran atomic.Int64
	_, err := Supervised(sup, nil, "batch-a", 4, 16, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			panic(fmt.Sprintf("trial %d exploded", i))
		}
		return i * i, nil
	})
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	if qe.Batch != "batch-a" || len(qe.Trials) != 1 {
		t.Fatalf("quarantine = %+v", qe)
	}
	te := qe.Trials[0]
	if te.Trial != 3 || te.Batch != "batch-a" || te.PanicValue != "trial 3 exploded" {
		t.Fatalf("TrialError = %+v", te)
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d trials, want all 16 (run must continue past the panic)", got)
	}
	if q := sup.Quarantined(); len(q) != 1 || q[0].Trial != 3 {
		t.Fatalf("supervisor quarantine record = %+v", q)
	}
}

func TestSupervisedWatchdogRetryDeterminism(t *testing.T) {
	// Trial 2 hangs on its first attempt and succeeds on the retry; the
	// retry must recompute the same index so the result set is the same
	// as an un-hung run.
	var attempts sync.Map
	sup := NewSupervisor(50 * time.Millisecond)
	hang := make(chan struct{})
	defer close(hang)
	out, err := Supervised(sup, nil, "retry", 2, 6, func(i int) (float64, error) {
		n, _ := attempts.LoadOrStore(i, new(atomic.Int64))
		if a := n.(*atomic.Int64).Add(1); i == 2 && a == 1 {
			<-hang // first attempt of trial 2 hangs past the watchdog
		}
		return float64(i) * 1.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != float64(i)*1.5 {
			t.Fatalf("out[%d] = %v, want %v", i, v, float64(i)*1.5)
		}
	}
	n, _ := attempts.Load(2)
	if got := n.(*atomic.Int64).Load(); got != 2 {
		t.Fatalf("trial 2 attempted %d times, want 2 (one deterministic retry)", got)
	}
}

func TestSupervisedWatchdogQuarantinesAfterSecondTimeout(t *testing.T) {
	sup := NewSupervisor(30 * time.Millisecond)
	hang := make(chan struct{})
	defer close(hang)
	_, err := Supervised(sup, nil, "hung", 2, 4, func(i int) (int, error) {
		if i == 1 {
			<-hang // hangs on every attempt
		}
		return i, nil
	})
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	te := qe.Trials[0]
	if te.Trial != 1 || !te.TimedOut || te.Attempts != 2 {
		t.Fatalf("TrialError = %+v, want trial 1 timed out after 2 attempts", te)
	}
}

func TestSupervisedStopInterrupts(t *testing.T) {
	sup := NewSupervisor(0)
	store := newMemStore()
	store.saveHook = func(saves int) {
		if saves == 5 {
			sup.Stop() // drain mid-batch, as the signal handler would
		}
	}
	_, err := Supervised(sup, store, "drain", 1, 20, func(i int) (int, error) {
		return i + 100, nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := store.len(); got != 5 {
		t.Fatalf("store holds %d results, want the 5 completed before the drain", got)
	}
}

func TestSupervisedResumeFromStoreIsIdentical(t *testing.T) {
	// Interrupt a batch partway, then resume into the same store: the
	// final result slice must be bit-identical to an uninterrupted run,
	// and the resumed run must only execute the missing trials.
	trialFn := func(i int) (float64, error) {
		// Irrational-ish values so bit-identity is a real check.
		return math.Sqrt(float64(i)+2) * math.Pi, nil
	}
	golden, err := Supervised[float64](nil, nil, "resume", 1, 12, trialFn)
	if err != nil {
		t.Fatal(err)
	}

	store := newMemStore()
	sup := NewSupervisor(0)
	store.saveHook = func(saves int) {
		if saves == 7 {
			sup.Stop()
		}
	}
	if _, err := Supervised(sup, store, "resume", 1, 12, trialFn); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("first run: err = %v, want ErrInterrupted", err)
	}
	store.saveHook = nil

	var executed atomic.Int64
	sup2 := NewSupervisor(0)
	out, err := Supervised(sup2, store, "resume", 4, 12, func(i int) (float64, error) {
		executed.Add(1)
		return trialFn(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 12-7 {
		t.Fatalf("resumed run executed %d trials, want %d (rest from store)", got, 12-7)
	}
	for i := range golden {
		if math.Float64bits(out[i]) != math.Float64bits(golden[i]) {
			t.Fatalf("out[%d] = %x, golden = %x: resume not bit-identical",
				i, math.Float64bits(out[i]), math.Float64bits(golden[i]))
		}
	}
}

func TestSupervisedStoreRoundTripsStructs(t *testing.T) {
	type trialResult struct {
		Delivered bool
		Time      float64
		Model     []float64
	}
	trialFn := func(i int) (trialResult, error) {
		return trialResult{
			Delivered: i%2 == 0,
			Time:      math.Log1p(float64(i)),
			Model:     []float64{float64(i), math.NaN(), math.Inf(1)},
		}, nil
	}
	store := newMemStore()
	first, err := Supervised(NewSupervisor(0), store, "structs", 2, 6, trialFn)
	if err != nil {
		t.Fatal(err)
	}
	// Second run must hit the store for every trial.
	second, err := Supervised(NewSupervisor(0), store, "structs", 2, 6,
		func(i int) (trialResult, error) {
			t.Errorf("trial %d executed despite checkpoint hit", i)
			return trialResult{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Delivered != second[i].Delivered ||
			math.Float64bits(first[i].Time) != math.Float64bits(second[i].Time) {
			t.Fatalf("trial %d scalar mismatch: %+v vs %+v", i, first[i], second[i])
		}
		for j := range first[i].Model {
			if math.Float64bits(first[i].Model[j]) != math.Float64bits(second[i].Model[j]) {
				t.Fatalf("trial %d model[%d] bits differ (NaN/Inf must round-trip)", i, j)
			}
		}
	}
}

func TestSupervisedErrorAbortsBatch(t *testing.T) {
	sup := NewSupervisor(0)
	wantErr := errors.New("hard failure")
	_, err := Supervised(sup, nil, "hard", 4, 10, func(i int) (int, error) {
		if i >= 4 {
			return 0, wantErr
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped hard failure", err)
	}
	if !strings.Contains(err.Error(), `batch "hard"`) {
		t.Fatalf("error does not name the batch: %v", err)
	}
}

func TestSupervisedNilSupAndStoreMatchesMapTrials(t *testing.T) {
	out, err := Supervised[int](nil, nil, "plain", 3, 9, func(i int) (int, error) {
		return i * 7, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MapTrials(3, 9, func(i int) (int, error) { return i * 7, nil })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	// Errors gain the batch label on the fallback path too.
	_, err = Supervised[int](nil, nil, "plain", 1, 3, func(i int) (int, error) {
		if i == 1 {
			panic("plain-path panic")
		}
		return i, nil
	})
	var te *TrialError
	if !errors.As(err, &te) || te.Trial != 1 || te.Batch != "plain" {
		t.Fatalf("err = %v, want *TrialError for trial 1 of batch plain", err)
	}
}
