package routing

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestSampleOnionLossyZeroMatchesExact pins the acceptance criterion
// that fault rate 0 changes nothing: SampleOnionLossy(failure=0) must
// reproduce SampleOnion byte-for-byte, draw-for-draw.
func TestSampleOnionLossyZeroMatchesExact(t *testing.T) {
	g := contact.NewRandom(20, 1, 60, rng.New(5))
	p := Params{Src: 0, Dst: 19, Sets: [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}}, Copies: 2, Spray: true}
	for i := 0; i < 200; i++ {
		a, err := SampleOnion(g, p, 300, rng.New(uint64(i)).Split("x"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := SampleOnionLossy(g, p, 300, 0, rng.New(uint64(i)).Split("x"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d: lossy(0) diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestSampleOnionLossyValidation(t *testing.T) {
	g := contact.NewRandom(10, 1, 30, rng.New(1))
	p := Params{Src: 0, Dst: 9, Sets: [][]contact.NodeID{{1, 2}}, Copies: 1}
	if _, err := SampleOnionLossy(g, p, 100, -0.1, rng.New(2)); err == nil {
		t.Fatal("accepted negative failure probability")
	}
	if _, err := SampleOnionLossy(g, p, 100, 1.5, rng.New(2)); err == nil {
		t.Fatal("accepted failure probability > 1")
	}
	r, err := SampleOnionLossy(g, p, 100, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered || r.Transmissions != 0 {
		t.Fatalf("message moved when every contact fails: %+v", r)
	}
}

// TestSampleOnionLossyMonotone: raising the fault rate can only hurt
// delivery at a fixed deadline.
func TestSampleOnionLossyMonotone(t *testing.T) {
	g := contact.NewRandom(30, 1, 60, rng.New(9))
	p := Params{Src: 0, Dst: 29, Sets: [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}}, Copies: 2, Spray: true}
	const runs = 1500
	rate := func(failure float64) float64 {
		delivered := 0
		for i := 0; i < runs; i++ {
			r, err := SampleOnionLossy(g, p, 60, failure, rng.New(uint64(i)).Split("m"))
			if err != nil {
				t.Fatal(err)
			}
			if r.Delivered {
				delivered++
			}
		}
		return float64(delivered) / runs
	}
	r0, r3, r6 := rate(0), rate(0.3), rate(0.6)
	if !(r0 > r3 && r3 > r6) {
		t.Fatalf("delivery not monotone in fault rate: %.3f, %.3f, %.3f at failures 0, 0.3, 0.6", r0, r3, r6)
	}
}

// TestLossySamplerMatchesLossyEngine is the Poisson-thinning
// cross-check: scaling every candidate rate by (1-p) in the direct
// sampler must be statistically indistinguishable from running the
// full DES engine with each contact independently dropped with
// probability p (sim.Lossy). Validates both fault-layer faces at once.
func TestLossySamplerMatchesLossyEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := contact.NewRandom(25, 1, 60, rng.New(77))
	sets := [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}}
	p := Params{Src: 0, Dst: 24, Sets: sets, Copies: 2, Spray: true}
	const failure = 0.3
	const runs = 3000
	const deadline = 600

	var sampleDelivered, engineDelivered int
	var sampleTimes, engineTimes []float64
	for i := 0; i < runs; i++ {
		r, err := SampleOnionLossy(g, p, deadline, failure, rng.New(uint64(i)).Split("s"))
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered {
			sampleDelivered++
			sampleTimes = append(sampleTimes, r.Time)
		}
		o, err := NewOnion(p)
		if err != nil {
			t.Fatal(err)
		}
		lossy := sim.Lossy(o, failure, rng.New(uint64(i)).Split("drop"))
		sim.RunSynthetic(g, deadline, rng.New(uint64(i)).Split("e"), lossy)
		if er := o.Result(); er.Delivered {
			engineDelivered++
			engineTimes = append(engineTimes, er.Time)
		}
	}
	sRate := float64(sampleDelivered) / runs
	eRate := float64(engineDelivered) / runs
	if math.Abs(sRate-eRate) > 0.03 {
		t.Fatalf("delivery under faults: thinned sampler %v vs lossy engine %v", sRate, eRate)
	}
	same, d, err := stats.KSSameDistribution(sampleTimes, engineTimes, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("faulted delivery-time distributions differ: KS D = %v over %d/%d samples",
			d, len(sampleTimes), len(engineTimes))
	}
}
