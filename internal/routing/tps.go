package routing

import (
	"fmt"

	"repro/internal/contact"
)

// TPSParams configures a Threshold Pivot Scheme message [Jansen &
// Beverly 2011], the main alternative to onion groups discussed in
// Sec. VI-C: the source splits the message into s shares (Shamir
// threshold tau), routes each share through its own relay group to a
// pivot node, and the pivot — once it holds at least tau shares —
// reconstructs and forwards to the destination. The scheme trades the
// onion's long serial path for parallel two-hop share paths, at the
// cost of revealing the destination to the pivot.
type TPSParams struct {
	Src, Dst contact.NodeID
	Pivot    contact.NodeID
	// Sets are the s relay groups, one share routed through each.
	Sets [][]contact.NodeID
	// Threshold is tau, the number of shares the pivot needs.
	Threshold int
	StartTime float64
}

// Validate checks the parameters.
func (p TPSParams) Validate() error {
	if p.Src == p.Dst || p.Src == p.Pivot || p.Dst == p.Pivot {
		return fmt.Errorf("routing: tps endpoints must be distinct (src=%d dst=%d pivot=%d)", p.Src, p.Dst, p.Pivot)
	}
	if len(p.Sets) == 0 {
		return fmt.Errorf("routing: tps needs at least one share group")
	}
	if p.Threshold < 1 || p.Threshold > len(p.Sets) {
		return fmt.Errorf("routing: tps threshold %d out of [1, %d]", p.Threshold, len(p.Sets))
	}
	for i, set := range p.Sets {
		if len(set) == 0 {
			return fmt.Errorf("routing: tps share group %d is empty", i)
		}
		for _, v := range set {
			if v == p.Src || v == p.Dst || v == p.Pivot {
				return fmt.Errorf("routing: tps share group %d contains an endpoint", i)
			}
		}
	}
	if p.StartTime < 0 {
		return fmt.Errorf("routing: negative start time %v", p.StartTime)
	}
	return nil
}

// shareState tracks one share's position: held by the source, a relay,
// or the pivot.
type shareState int

const (
	shareAtSource shareState = iota + 1
	shareAtRelay
	shareAtPivot
)

// TPS is the contact-driven Threshold Pivot Scheme. It implements the
// sim.Protocol interface structurally.
type TPS struct {
	p       TPSParams
	members []map[contact.NodeID]bool
	state   []shareState     // per share
	holder  []contact.NodeID // per share, meaningful for shareAtRelay
	atPivot int
	res     TPSResult
}

// TPSResult summarizes one TPS message.
type TPSResult struct {
	Delivered     bool
	Time          float64
	Transmissions int
	SharesAtPivot int // shares the pivot had collected by the end
	// ShareRelays records which relay carried each share (or -1 if the
	// share never left the source).
	ShareRelays []contact.NodeID
}

// NewTPS builds the protocol instance for one message.
func NewTPS(p TPSParams) (*TPS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &TPS{
		p:       p,
		members: make([]map[contact.NodeID]bool, len(p.Sets)),
		state:   make([]shareState, len(p.Sets)),
		holder:  make([]contact.NodeID, len(p.Sets)),
	}
	for i, set := range p.Sets {
		m := make(map[contact.NodeID]bool, len(set))
		for _, v := range set {
			m[v] = true
		}
		t.members[i] = m
		t.state[i] = shareAtSource
		t.holder[i] = p.Src
	}
	t.res.ShareRelays = make([]contact.NodeID, len(p.Sets))
	for i := range t.res.ShareRelays {
		t.res.ShareRelays[i] = -1
	}
	return t, nil
}

// Done implements sim.Protocol.
func (t *TPS) Done() bool { return t.res.Delivered }

// Result returns the outcome so far.
func (t *TPS) Result() TPSResult {
	out := t.res
	out.SharesAtPivot = t.atPivot
	out.ShareRelays = append([]contact.NodeID(nil), t.res.ShareRelays...)
	return out
}

// OnContact implements sim.Protocol.
func (t *TPS) OnContact(now float64, a, b contact.NodeID) {
	if now < t.p.StartTime || t.res.Delivered {
		return
	}
	t.try(now, a, b)
	t.try(now, b, a)
}

func (t *TPS) try(now float64, holder, peer contact.NodeID) {
	// Pivot delivery: once the threshold is met, the pivot hands the
	// reconstructed message to the destination (which it must know —
	// the scheme's anonymity concession).
	if holder == t.p.Pivot && peer == t.p.Dst && t.atPivot >= t.p.Threshold {
		t.res.Transmissions++
		t.res.Delivered = true
		t.res.Time = now
		return
	}
	for i := range t.state {
		switch t.state[i] {
		case shareAtSource:
			if holder == t.p.Src && t.members[i][peer] {
				t.state[i] = shareAtRelay
				t.holder[i] = peer
				t.res.ShareRelays[i] = peer
				t.res.Transmissions++
				return // one share per contact
			}
		case shareAtRelay:
			if holder == t.holder[i] && peer == t.p.Pivot {
				t.state[i] = shareAtPivot
				t.holder[i] = t.p.Pivot
				t.atPivot++
				t.res.Transmissions++
				return
			}
		}
	}
}
