package routing

import (
	"fmt"

	"repro/internal/contact"
)

// BaselineResult summarizes a non-anonymous baseline run.
type BaselineResult struct {
	Delivered     bool
	Time          float64
	Transmissions int
}

// Epidemic is the flooding baseline [Vahdat & Becker 2000]: every
// contact between an infected and a susceptible node copies the
// message. It maximizes delivery rate at maximal transmission cost
// (Sec. VI-A). It implements sim.Protocol.
type Epidemic struct {
	src, dst contact.NodeID
	start    float64
	infected map[contact.NodeID]bool
	res      BaselineResult
}

// NewEpidemic builds the protocol for one message.
func NewEpidemic(src, dst contact.NodeID, start float64) (*Epidemic, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: source equals destination (%d)", src)
	}
	return &Epidemic{
		src:      src,
		dst:      dst,
		start:    start,
		infected: map[contact.NodeID]bool{src: true},
	}, nil
}

// OnContact implements sim.Protocol.
func (e *Epidemic) OnContact(t float64, a, b contact.NodeID) {
	if t < e.start || e.res.Delivered {
		return
	}
	if e.infected[a] == e.infected[b] {
		return
	}
	receiver := a
	if e.infected[a] {
		receiver = b
	}
	e.infected[receiver] = true
	e.res.Transmissions++
	if receiver == e.dst {
		e.res.Delivered = true
		e.res.Time = t
	}
}

// Done implements sim.Protocol.
func (e *Epidemic) Done() bool { return e.res.Delivered }

// Result returns the outcome so far.
func (e *Epidemic) Result() BaselineResult { return e.res }

// InfectedCount returns how many nodes carry the message.
func (e *Epidemic) InfectedCount() int { return len(e.infected) }

// SprayAndWait is the source spray-and-wait baseline [Spyropoulos et
// al. 2005]: the source hands out L-1 copies to the first distinct
// nodes it meets and keeps one; every copy holder then waits to meet
// the destination directly. This is the paper's non-anonymous
// multi-copy reference (cost 2L, Sec. IV-C). It implements
// sim.Protocol.
type SprayAndWait struct {
	src, dst contact.NodeID
	start    float64
	tickets  int
	holders  map[contact.NodeID]bool
	res      BaselineResult
}

// NewSprayAndWait builds the protocol for one message with L copies.
func NewSprayAndWait(src, dst contact.NodeID, copies int, start float64) (*SprayAndWait, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: source equals destination (%d)", src)
	}
	if copies < 1 {
		return nil, fmt.Errorf("routing: copies must be >= 1, got %d", copies)
	}
	return &SprayAndWait{
		src:     src,
		dst:     dst,
		start:   start,
		tickets: copies,
		holders: map[contact.NodeID]bool{src: true},
	}, nil
}

// OnContact implements sim.Protocol.
func (p *SprayAndWait) OnContact(t float64, a, b contact.NodeID) {
	if t < p.start || p.res.Delivered {
		return
	}
	p.try(t, a, b)
	if !p.res.Delivered {
		p.try(t, b, a)
	}
}

func (p *SprayAndWait) try(t float64, h, peer contact.NodeID) {
	if !p.holders[h] {
		return
	}
	if peer == p.dst {
		p.res.Transmissions++
		p.res.Delivered = true
		p.res.Time = t
		return
	}
	// Only the source sprays, and only while it holds spare tickets.
	if h == p.src && p.tickets >= 2 && !p.holders[peer] {
		p.holders[peer] = true
		p.tickets--
		p.res.Transmissions++
	}
}

// Done implements sim.Protocol.
func (p *SprayAndWait) Done() bool { return p.res.Delivered }

// Result returns the outcome so far.
func (p *SprayAndWait) Result() BaselineResult { return p.res }

// Direct is the direct-delivery baseline: the source waits until it
// meets the destination. One transmission, maximal delay. It
// implements sim.Protocol.
type Direct struct {
	src, dst contact.NodeID
	start    float64
	res      BaselineResult
}

// NewDirect builds the protocol for one message.
func NewDirect(src, dst contact.NodeID, start float64) (*Direct, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: source equals destination (%d)", src)
	}
	return &Direct{src: src, dst: dst, start: start}, nil
}

// OnContact implements sim.Protocol.
func (d *Direct) OnContact(t float64, a, b contact.NodeID) {
	if t < d.start || d.res.Delivered {
		return
	}
	if (a == d.src && b == d.dst) || (a == d.dst && b == d.src) {
		d.res.Transmissions++
		d.res.Delivered = true
		d.res.Time = t
	}
}

// Done implements sim.Protocol.
func (d *Direct) Done() bool { return d.res.Delivered }

// Result returns the outcome so far.
func (d *Direct) Result() BaselineResult { return d.res }
