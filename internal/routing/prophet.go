package routing

import (
	"fmt"
	"math"

	"repro/internal/contact"
)

// Prophet is the PRoPHET probabilistic routing baseline [Lindgren et
// al. 2003], representative of the history-based protocols the paper's
// related work credits with improving delivery per cost (Sec. VI-A,
// [14][15]): each node maintains delivery predictabilities P(a, b)
// updated on contact, aged over time, and propagated transitively; a
// copy is replicated to a peer whose predictability for the
// destination exceeds the holder's. It implements sim.Protocol.
type Prophet struct {
	cfg      ProphetConfig
	n        int
	src, dst contact.NodeID
	start    float64

	pred     []float64 // n x n predictability matrix, row = owner
	lastSeen []float64 // per node, time of last aging
	infected map[contact.NodeID]bool
	res      BaselineResult
}

// ProphetConfig holds the protocol constants; zero values select the
// literature defaults.
type ProphetConfig struct {
	PInit float64 // predictability boost on contact (default 0.75)
	Beta  float64 // transitivity damping (default 0.25)
	Gamma float64 // aging factor per time unit (default 0.98)
}

func (c *ProphetConfig) setDefaults() {
	if c.PInit == 0 {
		c.PInit = 0.75
	}
	if c.Beta == 0 {
		c.Beta = 0.25
	}
	if c.Gamma == 0 {
		c.Gamma = 0.98
	}
}

func (c ProphetConfig) validate() error {
	if c.PInit <= 0 || c.PInit > 1 {
		return fmt.Errorf("routing: prophet PInit %v out of (0,1]", c.PInit)
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("routing: prophet Beta %v out of [0,1]", c.Beta)
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("routing: prophet Gamma %v out of (0,1]", c.Gamma)
	}
	return nil
}

// NewProphet builds the protocol for one message over an n-node
// population.
func NewProphet(n int, src, dst contact.NodeID, start float64, cfg ProphetConfig) (*Prophet, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: source equals destination (%d)", src)
	}
	if n < 2 || src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return nil, fmt.Errorf("routing: endpoints (%d, %d) out of range [0, %d)", src, dst, n)
	}
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Prophet{
		cfg:      cfg,
		n:        n,
		src:      src,
		dst:      dst,
		start:    start,
		pred:     make([]float64, n*n),
		lastSeen: make([]float64, n),
		infected: map[contact.NodeID]bool{src: true},
	}, nil
}

func (p *Prophet) predAt(owner, about contact.NodeID) float64 {
	return p.pred[int(owner)*p.n+int(about)]
}

func (p *Prophet) setPred(owner, about contact.NodeID, v float64) {
	p.pred[int(owner)*p.n+int(about)] = v
}

// age decays all of owner's predictabilities by gamma^(dt).
func (p *Prophet) age(owner contact.NodeID, now float64) {
	dt := now - p.lastSeen[owner]
	if dt <= 0 {
		return
	}
	decay := math.Pow(p.cfg.Gamma, dt)
	row := p.pred[int(owner)*p.n : int(owner+1)*p.n]
	for i := range row {
		row[i] *= decay
	}
	p.lastSeen[owner] = now
}

// OnContact implements sim.Protocol: predictability update, transitive
// propagation, then replication toward better custodians.
func (p *Prophet) OnContact(now float64, a, b contact.NodeID) {
	if now < p.start || p.res.Delivered {
		return
	}
	p.age(a, now)
	p.age(b, now)

	// Direct update in both directions.
	for _, pair := range [2][2]contact.NodeID{{a, b}, {b, a}} {
		o, peer := pair[0], pair[1]
		v := p.predAt(o, peer)
		p.setPred(o, peer, v+(1-v)*p.cfg.PInit)
	}
	// Transitivity: a learns about everyone b predicts well, and vice
	// versa.
	for _, pair := range [2][2]contact.NodeID{{a, b}, {b, a}} {
		o, peer := pair[0], pair[1]
		for x := 0; x < p.n; x++ {
			node := contact.NodeID(x)
			if node == o || node == peer {
				continue
			}
			via := p.predAt(o, peer) * p.predAt(peer, node) * p.cfg.Beta
			if via > p.predAt(o, node) {
				p.setPred(o, node, via)
			}
		}
	}

	// Replication: hand a copy to a peer with strictly better
	// predictability for the destination (or the destination itself).
	p.replicate(now, a, b)
	if !p.res.Delivered {
		p.replicate(now, b, a)
	}
}

func (p *Prophet) replicate(now float64, holder, peer contact.NodeID) {
	if !p.infected[holder] || p.infected[peer] {
		return
	}
	if peer == p.dst {
		p.infected[peer] = true
		p.res.Transmissions++
		p.res.Delivered = true
		p.res.Time = now
		return
	}
	if p.predAt(peer, p.dst) > p.predAt(holder, p.dst) {
		p.infected[peer] = true
		p.res.Transmissions++
	}
}

// Done implements sim.Protocol.
func (p *Prophet) Done() bool { return p.res.Delivered }

// Result returns the outcome so far.
func (p *Prophet) Result() BaselineResult { return p.res }

// Carriers returns how many nodes hold a copy.
func (p *Prophet) Carriers() int { return len(p.infected) }

// BinarySprayAndWait is the binary variant of spray-and-wait
// [Spyropoulos et al. 2005]: a holder with t > 1 tickets gives HALF of
// them (floor) to any node without a copy; holders with a single
// ticket wait for the destination. Faster spraying than the source
// variant at the same total copy budget. It implements sim.Protocol.
type BinarySprayAndWait struct {
	dst     contact.NodeID
	start   float64
	tickets map[contact.NodeID]int
	res     BaselineResult
}

// NewBinarySprayAndWait builds the protocol for one message with L
// total copies.
func NewBinarySprayAndWait(src, dst contact.NodeID, copies int, start float64) (*BinarySprayAndWait, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: source equals destination (%d)", src)
	}
	if copies < 1 {
		return nil, fmt.Errorf("routing: copies must be >= 1, got %d", copies)
	}
	return &BinarySprayAndWait{
		dst:     dst,
		start:   start,
		tickets: map[contact.NodeID]int{src: copies},
	}, nil
}

// OnContact implements sim.Protocol.
func (p *BinarySprayAndWait) OnContact(now float64, a, b contact.NodeID) {
	if now < p.start || p.res.Delivered {
		return
	}
	p.try(now, a, b)
	if !p.res.Delivered {
		p.try(now, b, a)
	}
}

func (p *BinarySprayAndWait) try(now float64, holder, peer contact.NodeID) {
	t, holds := p.tickets[holder]
	if !holds {
		return
	}
	if peer == p.dst {
		p.res.Transmissions++
		p.res.Delivered = true
		p.res.Time = now
		return
	}
	if t > 1 {
		if _, has := p.tickets[peer]; !has {
			give := t / 2
			p.tickets[peer] = give
			p.tickets[holder] = t - give
			p.res.Transmissions++
		}
	}
}

// Done implements sim.Protocol.
func (p *BinarySprayAndWait) Done() bool { return p.res.Delivered }

// Result returns the outcome so far.
func (p *BinarySprayAndWait) Result() BaselineResult { return p.res }

// Carriers returns how many nodes hold at least one ticket.
func (p *BinarySprayAndWait) Carriers() int { return len(p.tickets) }
