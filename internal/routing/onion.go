package routing

import (
	"repro/internal/contact"
)

// copyState is the live state of one message copy: the target set it
// must reach next and its realized path so far.
type copyState struct {
	stage int
	trace *CopyTrace
}

// Onion is the contact-driven abstract protocol (Algorithms 1 and 2,
// plus the Spray augmentation). It implements the sim.Protocol
// interface structurally and therefore runs on the synthetic engine or
// on trace replay unchanged.
type Onion struct {
	p       Params
	members []map[contact.NodeID]bool // per target set, O(1) membership
	holders map[contact.NodeID]*copyState
	tickets int          // source's remaining tickets
	copies  []*CopyTrace // every copy ever created, in creation order
	res     Result
}

// NewOnion builds the protocol instance for one message.
func NewOnion(p Params) (*Onion, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := &Onion{
		p:       p,
		members: make([]map[contact.NodeID]bool, len(p.Sets)),
		holders: make(map[contact.NodeID]*copyState),
		tickets: p.Copies,
	}
	for k, set := range p.Sets {
		m := make(map[contact.NodeID]bool, len(set))
		for _, v := range set {
			m[v] = true
		}
		o.members[k] = m
	}
	// The source holds the message at stage 0; a nil trace marks the
	// ticket-bearing source rather than a forwarded copy.
	o.holders[p.Src] = &copyState{stage: 0}
	return o, nil
}

// Done implements sim.Protocol: the simulation may stop after the
// first delivery unless full transmission accounting was requested, or
// when no copy can ever move again.
func (o *Onion) Done() bool {
	if o.res.Delivered && !o.p.RunToCompletion {
		return true
	}
	return len(o.holders) == 0
}

// Result returns the outcome observed so far.
func (o *Onion) Result() Result {
	out := o.res
	out.Copies = make([]CopyTrace, len(o.copies))
	for i, tr := range o.copies {
		out.Copies[i] = CopyTrace{
			Visits:    append([]Visit(nil), tr.Visits...),
			Delivered: tr.Delivered,
		}
	}
	return out
}

// OnContact implements sim.Protocol. Both forwarding directions are
// attempted, but a copy that just moved cannot move again within the
// same contact.
func (o *Onion) OnContact(t float64, a, b contact.NodeID) {
	if t < o.p.StartTime || o.Done() {
		return
	}
	if !o.tryForward(t, a, b) {
		o.tryForward(t, b, a)
	}
}

// tryForward attempts a transfer from holder h to peer at time t and
// reports whether a copy moved.
func (o *Onion) tryForward(t float64, h, peer contact.NodeID) bool {
	st, ok := o.holders[h]
	if !ok {
		return false
	}
	if h == o.p.Src && st.trace == nil {
		return o.sourceForward(t, peer)
	}
	return o.relayForward(t, h, st, peer)
}

// sourceForward implements the source's ticket logic: forward a copy
// into R_1 whenever an R_1 member is met (Algorithm 2 line 7-9), and —
// in Spray mode only — hand a copy to any other node while at least
// two tickets remain (source spray-and-wait, Sec. V).
func (o *Onion) sourceForward(t float64, peer contact.NodeID) bool {
	if peer == o.p.Dst || peer == o.p.Src || o.isHolding(peer) {
		return false
	}
	var stage int
	switch {
	case o.members[0][peer]:
		stage = 1
	case o.p.Spray && o.tickets >= 2:
		stage = 0
	default:
		return false
	}
	tr := &CopyTrace{Visits: []Visit{{Node: o.p.Src, Stage: 0}}}
	o.copies = append(o.copies, tr)
	o.transfer(t, peer, stage, tr)
	o.tickets--
	if o.tickets == 0 {
		delete(o.holders, o.p.Src) // buffer emptied (Algorithm 2 line 10-11)
	}
	return true
}

// relayForward implements a single-ticket relay: at stage k <= K-1 it
// forwards to any member of R_{k+1}; at stage K it delivers to the
// destination — unless the destination already has the message, in
// which case Forward() is false and the copy stalls.
func (o *Onion) relayForward(t float64, h contact.NodeID, st *copyState, peer contact.NodeID) bool {
	k := st.stage
	if k == len(o.p.Sets) {
		if peer != o.p.Dst || o.res.Delivered {
			return false
		}
		o.res.Transmissions++
		st.trace.Visits = append(st.trace.Visits, Visit{Node: o.p.Dst, Stage: k + 1})
		st.trace.Delivered = true
		o.res.Delivered = true
		o.res.Time = t
		delete(o.holders, h)
		return true
	}
	if !o.members[k][peer] || o.isHolding(peer) || peer == o.p.Dst {
		return false
	}
	delete(o.holders, h) // relay hands off its only ticket
	o.transfer(t, peer, k+1, st.trace)
	return true
}

// transfer hands a copy to peer at the given stage, recording the
// visit and the transmission.
func (o *Onion) transfer(_ float64, peer contact.NodeID, stage int, tr *CopyTrace) {
	o.res.Transmissions++
	tr.Visits = append(tr.Visits, Visit{Node: peer, Stage: stage})
	o.holders[peer] = &copyState{stage: stage, trace: tr}
}

func (o *Onion) isHolding(v contact.NodeID) bool {
	_, ok := o.holders[v]
	return ok
}
