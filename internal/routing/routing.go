// Package routing implements the paper's abstract onion-based
// anonymous routing protocols (Sec. III) and the non-anonymous
// baselines used by the evaluation:
//
//   - Onion, the contact-driven protocol: Algorithm 1 (single-copy)
//     when Copies == 1, Algorithm 2 (multi-copy, ticket-based) when
//     Copies >= 2, and the paper's *simulated* variant — ARDEN
//     augmented with source spray-and-wait (Sec. V) — when Spray is
//     set. It runs on any contact source (synthetic engine or trace
//     replay).
//   - SampleOnion, a direct sampler for synthetic contact graphs that
//     produces statistically identical results orders of magnitude
//     faster by exploiting the memorylessness of exponential
//     inter-contact times.
//   - Epidemic, SprayAndWait and Direct baselines (Sec. VI-A).
package routing

import (
	"fmt"

	"repro/internal/contact"
)

// Stage numbering: a holder at stage k needs to reach target set k,
// where targets 0..K-1 are the onion groups R_1..R_K and target K is
// the destination. Equivalently, stage == the holder's own position on
// the onion path (0 = source or sprayed relay, k = member of R_k).

// Params configures one onion-routed message.
type Params struct {
	Src, Dst contact.NodeID
	// Sets are the onion group member sets R_1, ..., R_K in travel
	// order. They must not contain Src or Dst.
	Sets [][]contact.NodeID
	// Copies is L, the maximum number of message copies (tickets).
	Copies int
	// Spray enables the source spray-and-wait augmentation used in the
	// paper's simulations: while the source retains at least two
	// tickets it may hand a copy to *any* node it meets, not only R_1
	// members. Without Spray the protocol is Algorithm 2 verbatim
	// (Algorithm 1 when Copies == 1).
	Spray bool
	// StartTime is the activation time: contacts before it are
	// ignored. Delivery times are reported in absolute time.
	StartTime float64
	// RunToCompletion keeps the protocol consuming contacts after the
	// first delivery so that the total transmission count of all L
	// copies is observed (used by the Fig. 11 cost experiment).
	RunToCompletion bool
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Src == p.Dst {
		return fmt.Errorf("routing: source equals destination (%d)", p.Src)
	}
	if p.Src < 0 || p.Dst < 0 {
		return fmt.Errorf("routing: negative endpoint (%d, %d)", p.Src, p.Dst)
	}
	if len(p.Sets) == 0 {
		return fmt.Errorf("routing: at least one onion group is required")
	}
	for k, set := range p.Sets {
		if len(set) == 0 {
			return fmt.Errorf("routing: onion group %d is empty", k+1)
		}
		for _, v := range set {
			if v == p.Src || v == p.Dst {
				return fmt.Errorf("routing: onion group %d contains endpoint %d", k+1, v)
			}
		}
	}
	if p.Copies < 1 {
		return fmt.Errorf("routing: copies must be >= 1, got %d", p.Copies)
	}
	if p.Copies > 1 && p.Spray && len(p.Sets) < 1 {
		return fmt.Errorf("routing: spray requires onion groups")
	}
	if p.StartTime < 0 {
		return fmt.Errorf("routing: negative start time %v", p.StartTime)
	}
	return nil
}

// K returns the number of onion groups.
func (p Params) K() int { return len(p.Sets) }

// Visit records that a node held a message copy at the given onion
// path position (0 = source/sprayed relay, k = member of R_k,
// K+1 = destination).
type Visit struct {
	Node  contact.NodeID
	Stage int
}

// CopyTrace is the realized path of one message copy.
type CopyTrace struct {
	Visits    []Visit
	Delivered bool
}

// Senders returns the nodes that transmitted this copy along its path
// (every visited node except the destination), in order. For a
// delivered copy this is the sender sequence of Eq. 1.
func (c CopyTrace) Senders() []contact.NodeID {
	n := len(c.Visits)
	if c.Delivered {
		n-- // final visit is the destination, which sends nothing
	}
	out := make([]contact.NodeID, 0, n)
	for _, v := range c.Visits[:n] {
		out = append(out, v.Node)
	}
	return out
}

// Result summarizes one onion-routed message.
type Result struct {
	Delivered     bool
	Time          float64 // absolute time of first delivery
	Transmissions int     // total transmissions across all copies
	Copies        []CopyTrace
}

// Delay returns the delivery delay relative to the given start time.
func (r Result) Delay(start float64) float64 {
	if !r.Delivered {
		return 0
	}
	return r.Time - start
}

// DeliveredCopy returns the trace of the first delivered copy, if any.
func (r Result) DeliveredCopy() (CopyTrace, bool) {
	for _, c := range r.Copies {
		if c.Delivered {
			return c, true
		}
	}
	return CopyTrace{}, false
}
