package routing

import (
	"math"
	"testing"

	"repro/internal/contact"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestSamplerMatchesFullEngine validates the direct sampler against
// the brute-force synthetic engine: both simulate the same protocol on
// the same graph, so delivery rate and mean transmissions must agree
// statistically.
func TestSamplerMatchesFullEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := contact.NewRandom(30, 1, 120, rng.New(11))
	sets := [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}}
	const deadline = 240
	const runs = 3000

	for _, tc := range []struct {
		name   string
		copies int
		spray  bool
	}{
		{"single", 1, false},
		{"multi-strict", 3, false},
		{"multi-spray", 3, true},
	} {
		p := Params{Src: 0, Dst: 29, Sets: sets, Copies: tc.copies, Spray: tc.spray}

		var sampleDelivered, engineDelivered int
		var sampleTx, engineTx float64
		for i := 0; i < runs; i++ {
			r, err := SampleOnion(g, p, deadline, rng.New(uint64(i)).Split("sample"))
			if err != nil {
				t.Fatal(err)
			}
			if r.Delivered {
				sampleDelivered++
			}
			sampleTx += float64(r.Transmissions)

			o, err := NewOnion(p)
			if err != nil {
				t.Fatal(err)
			}
			sim.RunSynthetic(g, deadline, rng.New(uint64(i)).Split("engine"), o)
			er := o.Result()
			if er.Delivered {
				engineDelivered++
			}
			engineTx += float64(er.Transmissions)
		}
		sRate := float64(sampleDelivered) / runs
		eRate := float64(engineDelivered) / runs
		if math.Abs(sRate-eRate) > 0.03 {
			t.Errorf("%s: delivery rate sampler %v vs engine %v", tc.name, sRate, eRate)
		}
		if math.Abs(sampleTx-engineTx)/runs > 0.15 {
			t.Errorf("%s: mean transmissions sampler %v vs engine %v", tc.name, sampleTx/runs, engineTx/runs)
		}
	}
}

// TestSingleCopyDeliveryMatchesModel is the paper's core validation
// (Figs. 4-5): the simulated single-copy delivery rate must track the
// opportunistic onion path model (Eqs. 4-6).
func TestSingleCopyDeliveryMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := contact.NewRandom(60, 1, 360, rng.New(21))
	sets := [][]contact.NodeID{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
	}
	rates, err := contact.GroupPathRates(g, 0, 59, sets)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Src: 0, Dst: 59, Sets: sets, Copies: 1}
	// The paper's own Figs. 4-5 show a gap between analysis and
	// simulation ("the same trend can be clearly observed"): Eq. 4
	// aggregates hop rates over whole groups, which is optimistic for
	// the single holder of the simulated protocol. The reproduction
	// claims are therefore: (a) both curves rise monotonically, (b) the
	// analysis never falls below the simulation by more than noise, and
	// (c) both saturate at long deadlines.
	var prevSim, prevModel float64
	for _, deadline := range []float64{120, 360, 720, 1440, 2880} {
		want, err := model.DeliveryRate(rates, deadline)
		if err != nil {
			t.Fatal(err)
		}
		const runs = 4000
		delivered := 0
		for i := 0; i < runs; i++ {
			r, err := SampleOnion(g, p, deadline, rng.New(uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if r.Delivered {
				delivered++
			}
		}
		got := float64(delivered) / runs
		if got < prevSim-0.02 || want < prevModel-1e-9 {
			t.Errorf("T=%v: non-monotone curves (sim %v after %v, model %v after %v)",
				deadline, got, prevSim, want, prevModel)
		}
		if want < got-0.05 {
			t.Errorf("T=%v: analysis %v fell below simulation %v", deadline, want, got)
		}
		prevSim, prevModel = got, want
	}
	if prevSim < 0.95 || prevModel < 0.99 {
		t.Errorf("curves did not saturate: sim %v, model %v", prevSim, prevModel)
	}
}

// TestMultiCopyDeliveryAtLeastSingle checks the Fig. 10 ordering on a
// full simulation.
func TestMultiCopyDeliveryAtLeastSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := contact.NewRandom(60, 1, 360, rng.New(31))
	sets := [][]contact.NodeID{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
	}
	rate := func(l int) float64 {
		const runs = 3000
		delivered := 0
		for i := 0; i < runs; i++ {
			p := Params{Src: 0, Dst: 59, Sets: sets, Copies: l, Spray: true}
			r, err := SampleOnion(g, p, 240, rng.New(uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if r.Delivered {
				delivered++
			}
		}
		return float64(delivered) / runs
	}
	r1, r3, r5 := rate(1), rate(3), rate(5)
	if !(r1 <= r3+0.02 && r3 <= r5+0.02) {
		t.Fatalf("delivery rates not increasing with L: %v, %v, %v", r1, r3, r5)
	}
	if r5 <= r1 {
		t.Fatalf("L=5 (%v) shows no improvement over L=1 (%v)", r5, r1)
	}
}

// TestEpidemicDominatesOnion: flooding is the delivery-rate upper
// bound (Sec. VI-A).
func TestEpidemicDominatesOnion(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := contact.NewRandom(40, 1, 360, rng.New(41))
	sets := [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	const deadline = 120
	const runs = 2000
	onionDelivered, epiDelivered := 0, 0
	for i := 0; i < runs; i++ {
		p := Params{Src: 0, Dst: 39, Sets: sets, Copies: 1}
		r, err := SampleOnion(g, p, deadline, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered {
			onionDelivered++
		}
		e, err := NewEpidemic(0, 39, 0)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, deadline, rng.New(uint64(i)).Split("epi"), e)
		if e.Result().Delivered {
			epiDelivered++
		}
	}
	if epiDelivered < onionDelivered {
		t.Fatalf("epidemic (%d) delivered less than anonymous onion routing (%d)", epiDelivered, onionDelivered)
	}
}

func BenchmarkSampleOnionSingle(b *testing.B) {
	g := contact.NewRandom(100, 1, 360, rng.New(1))
	sets := [][]contact.NodeID{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
	}
	p := Params{Src: 0, Dst: 99, Sets: sets, Copies: 1}
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleOnion(g, p, 1800, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleOnionSpray5(b *testing.B) {
	g := contact.NewRandom(100, 1, 360, rng.New(1))
	sets := [][]contact.NodeID{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
	}
	p := Params{Src: 0, Dst: 99, Sets: sets, Copies: 5, Spray: true, RunToCompletion: true}
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleOnion(g, p, 1800, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullEngineOnion(b *testing.B) {
	g := contact.NewRandom(100, 1, 360, rng.New(1))
	sets := [][]contact.NodeID{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
	}
	p := Params{Src: 0, Dst: 99, Sets: sets, Copies: 1}
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := NewOnion(p)
		if err != nil {
			b.Fatal(err)
		}
		sim.RunSynthetic(g, 1800, s, o)
	}
}

// TestSamplerDeliveryTimeDistributionKS is the strongest equivalence
// check between the direct sampler and the brute-force engine: the
// full delivery-time DISTRIBUTIONS must pass a two-sample
// Kolmogorov-Smirnov test, not just agree in the mean.
func TestSamplerDeliveryTimeDistributionKS(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	g := contact.NewRandom(25, 1, 60, rng.New(77))
	sets := [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}}
	p := Params{Src: 0, Dst: 24, Sets: sets, Copies: 2, Spray: true}
	const runs = 4000
	const horizon = 1e6 // effectively unbounded: compare full distributions

	var sampleTimes, engineTimes []float64
	for i := 0; i < runs; i++ {
		r, err := SampleOnion(g, p, horizon, rng.New(uint64(i)).Split("s"))
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered {
			sampleTimes = append(sampleTimes, r.Time)
		}
		o, err := NewOnion(p)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, horizon, rng.New(uint64(i)).Split("e"), o)
		if er := o.Result(); er.Delivered {
			engineTimes = append(engineTimes, er.Time)
		}
	}
	if len(sampleTimes) < runs*9/10 || len(engineTimes) < runs*9/10 {
		t.Fatalf("unexpected non-delivery: %d, %d of %d", len(sampleTimes), len(engineTimes), runs)
	}
	same, d, err := stats.KSSameDistribution(sampleTimes, engineTimes, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("delivery-time distributions differ: KS D = %v over %d/%d samples",
			d, len(sampleTimes), len(engineTimes))
	}
}
