package routing

import (
	"fmt"
	"sort"

	"repro/internal/contact"
	"repro/internal/obs"
	"repro/internal/rng"
)

// SampleOnion simulates one onion-routed message on a synthetic
// contact graph by direct sampling: because pairwise inter-contact
// times are exponential (memoryless), the next protocol-relevant
// contact is the minimum of independent exponential clocks over the
// currently relevant (holder, candidate) pairs — an Exp(sum of rates)
// delay with the pair chosen proportionally to its rate. The result is
// statistically identical to feeding the protocol every contact of the
// graph (see the cross-check tests) but costs O(copies * group size)
// per hop instead of O(n^2) contacts per time unit.
//
// The message starts at p.StartTime and is abandoned at
// p.StartTime + deadline (Algorithm 1/2 error handling).
func SampleOnion(g *contact.Graph, p Params, deadline float64, s *rng.Stream) (Result, error) {
	return SampleOnionLossy(g, p, deadline, 0, s)
}

// SampleOnionLossy is SampleOnion under the fault layer's per-contact
// failure probability: each contact independently fails with
// probability failure before any hand-off can happen. By Poisson
// thinning, a rate-λ pair process whose points are each kept with
// probability 1−failure is exactly a Poisson process of rate
// λ(1−failure), so the direct sampler stays EXACT under faults by
// scaling every candidate rate — no extra draws, no approximation.
// failure = 0 multiplies every rate by exactly 1.0, so it reproduces
// SampleOnion's schedule byte-for-byte.
func SampleOnionLossy(g *contact.Graph, p Params, deadline, failure float64, s *rng.Stream) (Result, error) {
	o, err := NewOnion(p)
	if err != nil {
		return Result{}, err
	}
	if deadline <= 0 {
		return Result{}, fmt.Errorf("routing: deadline must be positive, got %v", deadline)
	}
	if failure < 0 || failure >= 1 {
		if failure == 1 {
			// Every contact fails: the message never leaves the source.
			return o.Result(), nil
		}
		return Result{}, fmt.Errorf("routing: contact failure %v out of [0,1]", failure)
	}
	keep := 1 - failure
	if p.Src < 0 || int(p.Src) >= g.N() || p.Dst < 0 || int(p.Dst) >= g.N() {
		return Result{}, fmt.Errorf("routing: endpoints (%d, %d) out of graph range", p.Src, p.Dst)
	}

	type cand struct {
		h, peer contact.NodeID
		rate    float64
	}
	var cands []cand
	holderKeys := make([]contact.NodeID, 0, p.Copies+1)

	t := p.StartTime
	horizon := p.StartTime + deadline
	// Sampled contacts are tallied locally and flushed once per call so
	// the hop loop pays nothing for observability.
	contacts := int64(0)
	for !o.Done() {
		// Enumerate the relevant pairs, deterministically ordered so a
		// fixed seed yields a fixed outcome.
		cands = cands[:0]
		holderKeys = holderKeys[:0]
		for h := range o.holders {
			holderKeys = append(holderKeys, h)
		}
		sort.Slice(holderKeys, func(i, j int) bool { return holderKeys[i] < holderKeys[j] })

		total := 0.0
		for _, h := range holderKeys {
			st := o.holders[h]
			switch {
			case h == p.Src && st.trace == nil:
				// Ticket-bearing source: R_1 members always; any other
				// node while spraying is allowed.
				for _, r := range p.Sets[0] {
					if o.isHolding(r) {
						continue
					}
					if rate := keep * g.Rate(h, r); rate > 0 {
						cands = append(cands, cand{h, r, rate})
						total += rate
					}
				}
				if p.Spray && o.tickets >= 2 {
					for v := 0; v < g.N(); v++ {
						node := contact.NodeID(v)
						if node == p.Src || node == p.Dst || o.isHolding(node) || o.members[0][node] {
							continue
						}
						if rate := keep * g.Rate(h, node); rate > 0 {
							cands = append(cands, cand{h, node, rate})
							total += rate
						}
					}
				}
			case st.stage == len(p.Sets):
				if !o.res.Delivered {
					if rate := keep * g.Rate(h, p.Dst); rate > 0 {
						cands = append(cands, cand{h, p.Dst, rate})
						total += rate
					}
				}
			default:
				for _, r := range p.Sets[st.stage] {
					if o.isHolding(r) {
						continue
					}
					if rate := keep * g.Rate(h, r); rate > 0 {
						cands = append(cands, cand{h, r, rate})
						total += rate
					}
				}
			}
		}
		if total <= 0 {
			break // no copy can ever move again
		}
		t += s.Exp(total)
		if t > horizon {
			break
		}
		x := s.Float64() * total
		for i := range cands {
			x -= cands[i].rate
			if x <= 0 || i == len(cands)-1 {
				if !o.tryForward(t, cands[i].h, cands[i].peer) {
					return Result{}, fmt.Errorf("routing: internal error: sampled candidate (%d -> %d) rejected by protocol", cands[i].h, cands[i].peer)
				}
				contacts++
				break
			}
		}
	}
	res := o.Result()
	if c := obs.Active(); c != nil {
		c.Add(obs.RoutingContacts, contacts)
		c.Add(obs.RoutingHandoffs, int64(res.Transmissions))
		if res.Delivered {
			c.Add(obs.RoutingDeliveries, 1)
		}
	}
	return res, nil
}
