package routing

import (
	"bytes"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/shamir"
	"repro/internal/sim"
)

func tpsParams() TPSParams {
	return TPSParams{
		Src: 0, Dst: 9, Pivot: 8,
		Sets:      [][]contact.NodeID{{1, 2}, {3, 4}, {5, 6}},
		Threshold: 2,
	}
}

func TestTPSValidate(t *testing.T) {
	if err := tpsParams().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*TPSParams){
		"src == dst":        func(p *TPSParams) { p.Dst = p.Src },
		"pivot == dst":      func(p *TPSParams) { p.Pivot = p.Dst },
		"no groups":         func(p *TPSParams) { p.Sets = nil },
		"zero threshold":    func(p *TPSParams) { p.Threshold = 0 },
		"threshold > s":     func(p *TPSParams) { p.Threshold = 4 },
		"empty group":       func(p *TPSParams) { p.Sets[1] = nil },
		"group holds pivot": func(p *TPSParams) { p.Sets[0] = []contact.NodeID{8} },
		"negative start":    func(p *TPSParams) { p.StartTime = -1 },
	}
	for name, mutate := range cases {
		p := tpsParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestTPSDeterministicWalk(t *testing.T) {
	tp, err := NewTPS(tpsParams())
	if err != nil {
		t.Fatal(err)
	}
	// Pivot meets dst before threshold: nothing.
	tp.OnContact(1, 8, 9)
	if tp.Result().Delivered {
		t.Fatal("delivered without shares")
	}
	// Share 0 to relay 1; share 2 to relay 5.
	tp.OnContact(2, 0, 1)
	tp.OnContact(3, 5, 0) // reversed direction
	if got := tp.Result().Transmissions; got != 2 {
		t.Fatalf("transmissions = %d, want 2", got)
	}
	// Relays deliver shares to the pivot.
	tp.OnContact(4, 1, 8)
	if tp.Result().SharesAtPivot != 1 {
		t.Fatalf("pivot shares = %d", tp.Result().SharesAtPivot)
	}
	// Pivot meets dst below threshold: still nothing.
	tp.OnContact(5, 8, 9)
	if tp.Result().Delivered {
		t.Fatal("delivered below threshold")
	}
	tp.OnContact(6, 5, 8)
	if tp.Result().SharesAtPivot != 2 {
		t.Fatalf("pivot shares = %d", tp.Result().SharesAtPivot)
	}
	// Threshold met: delivery on next pivot-dst contact.
	tp.OnContact(7, 9, 8)
	res := tp.Result()
	if !res.Delivered || res.Time != 7 {
		t.Fatalf("%+v", res)
	}
	// 2 shares x 2 hops + 1 delivery.
	if res.Transmissions != 5 {
		t.Fatalf("transmissions = %d, want 5", res.Transmissions)
	}
	if !tp.Done() {
		t.Fatal("not done")
	}
}

func TestTPSSharesUseDistinctGroups(t *testing.T) {
	tp, err := NewTPS(tpsParams())
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 is only in group 0: meeting it twice moves only share 0.
	tp.OnContact(1, 0, 1)
	tp.OnContact(2, 0, 1)
	res := tp.Result()
	if res.Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", res.Transmissions)
	}
	if res.ShareRelays[0] != 1 || res.ShareRelays[1] != -1 {
		t.Fatalf("share relays = %v", res.ShareRelays)
	}
}

func TestTPSIgnoresBeforeStart(t *testing.T) {
	p := tpsParams()
	p.StartTime = 10
	tp, err := NewTPS(p)
	if err != nil {
		t.Fatal(err)
	}
	tp.OnContact(5, 0, 1)
	if tp.Result().Transmissions != 0 {
		t.Fatal("moved a share before the start time")
	}
}

func TestTPSOnSyntheticGraph(t *testing.T) {
	g := contact.NewRandom(20, 1, 30, rng.New(1))
	delivered := 0
	var txSum int
	const runs = 100
	for i := 0; i < runs; i++ {
		p := TPSParams{
			Src: 0, Dst: 19, Pivot: 18,
			Sets:      [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}},
			Threshold: 3,
		}
		tp, err := NewTPS(p)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, 1e6, rng.New(uint64(i)), tp)
		res := tp.Result()
		if res.Delivered {
			delivered++
			txSum += res.Transmissions
			// Bounded by 2s + 1.
			if res.Transmissions > 2*4+1 {
				t.Fatalf("transmissions %d exceed 2s+1", res.Transmissions)
			}
			if res.SharesAtPivot < 3 {
				t.Fatalf("delivered with %d < threshold shares", res.SharesAtPivot)
			}
		}
	}
	if delivered < runs*9/10 {
		t.Fatalf("only %d/%d delivered with an unbounded horizon", delivered, runs)
	}
}

// TestTPSWithRealShares wires the routing layer to actual Shamir
// secret sharing: the pivot reconstructs the message from exactly the
// shares the simulation says it collected.
func TestTPSWithRealShares(t *testing.T) {
	secret := []byte("pivot may reconstruct this")
	const s, tau = 4, 2
	shares, err := shamir.Split(secret, s, tau)
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(20, 1, 30, rng.New(3))
	p := TPSParams{
		Src: 0, Dst: 19, Pivot: 18,
		Sets:      [][]contact.NodeID{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		Threshold: tau,
	}
	tp, err := NewTPS(p)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunSynthetic(g, 1e6, rng.New(4), tp)
	res := tp.Result()
	if !res.Delivered {
		t.Skip("no delivery on this realization")
	}
	// Reconstruct from the shares that reached the pivot.
	var collected []shamir.Share
	for i, st := range tp.state {
		if st == shareAtPivot {
			collected = append(collected, shares[i])
		}
	}
	if len(collected) < tau {
		t.Fatalf("pivot had %d shares at delivery", len(collected))
	}
	got, err := shamir.Combine(collected[:tau])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("pivot failed to reconstruct the secret")
	}
}

// TestTPSFasterThanOnionLongPaths demonstrates the scheme's selling
// point (Sec. VI-C): parallel two-hop share paths beat a long serial
// onion path on delay.
func TestTPSFasterThanOnionLongPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	g := contact.NewRandom(40, 1, 120, rng.New(7))
	sets := [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}, {13, 14, 15}}
	const runs = 400
	var onionDelay, tpsDelay float64
	var onionN, tpsN int
	for i := 0; i < runs; i++ {
		op := Params{Src: 0, Dst: 39, Sets: sets, Copies: 1}
		or, err := SampleOnion(g, op, 1e7, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if or.Delivered {
			onionDelay += or.Time
			onionN++
		}
		tp, err := NewTPS(TPSParams{Src: 0, Dst: 39, Pivot: 38, Sets: sets, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, 1e7, rng.New(uint64(i)).Split("tps"), tp)
		if tr := tp.Result(); tr.Delivered {
			tpsDelay += tr.Time
			tpsN++
		}
	}
	if onionN == 0 || tpsN == 0 {
		t.Fatal("no deliveries")
	}
	if tpsDelay/float64(tpsN) >= onionDelay/float64(onionN) {
		t.Fatalf("TPS delay %v not below onion delay %v (K=5)",
			tpsDelay/float64(tpsN), onionDelay/float64(onionN))
	}
}

func BenchmarkTPSOnEngine(b *testing.B) {
	g := contact.NewRandom(40, 1, 120, rng.New(1))
	sets := [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp, err := NewTPS(TPSParams{Src: 0, Dst: 39, Pivot: 38, Sets: sets, Threshold: 2})
		if err != nil {
			b.Fatal(err)
		}
		sim.RunSynthetic(g, 1800, s, tp)
	}
}
