package routing_test

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/routing"
)

// Example simulates one multi-copy onion-routed message on a random
// contact graph with the direct sampler.
func Example() {
	graph := contact.NewRandom(50, 1, 120, rng.New(7))
	params := routing.Params{
		Src: 0,
		Dst: 49,
		Sets: [][]contact.NodeID{ // R_1, R_2, R_3
			{1, 2, 3, 4, 5},
			{6, 7, 8, 9, 10},
			{11, 12, 13, 14, 15},
		},
		Copies: 3,
		Spray:  true, // the paper's simulated variant (Sec. V)
	}
	res, err := routing.SampleOnion(graph, params, 600 /* deadline, minutes */, rng.New(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered:", res.Delivered)
	fmt.Println("transmissions:", res.Transmissions)
	if copyTrace, ok := res.DeliveredCopy(); ok {
		fmt.Println("winning path hops:", len(copyTrace.Visits)-1)
	}
	// Output:
	// delivered: true
	// transmissions: 10
	// winning path hops: 4
}
