package routing

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
)

// TestOnionInvariantsUnderRandomContactStreams hammers the protocol
// with arbitrary (including adversarial: repeated, self-looping,
// out-of-universe) contacts and checks structural invariants that must
// hold regardless of the schedule.
func TestOnionInvariantsUnderRandomContactStreams(t *testing.T) {
	root := rng.New(2718)
	for trial := 0; trial < 300; trial++ {
		s := root.SplitN("trial", trial)
		n := 10 + s.IntN(30)
		k := 1 + s.IntN(3)
		gSize := 1 + s.IntN(4)
		copies := 1 + s.IntN(4)
		spray := s.Bernoulli(0.5)

		// Build K disjoint groups from nodes 1..; src=0, dst=n-1.
		sets := make([][]contact.NodeID, k)
		id := 1
		for i := range sets {
			for j := 0; j < gSize && id < n-1; j++ {
				sets[i] = append(sets[i], contact.NodeID(id))
				id++
			}
			if len(sets[i]) == 0 {
				sets[i] = append(sets[i], contact.NodeID(1))
			}
		}
		p := Params{
			Src: 0, Dst: contact.NodeID(n - 1), Sets: sets,
			Copies: copies, Spray: spray, RunToCompletion: s.Bernoulli(0.5),
		}
		o, err := NewOnion(p)
		if err != nil {
			t.Fatal(err)
		}
		lastT := 0.0
		for step := 0; step < 500; step++ {
			a := contact.NodeID(s.IntN(n))
			b := contact.NodeID(s.IntN(n)) // may equal a
			lastT += s.Float64()
			o.OnContact(lastT, a, b)
			if o.Done() && s.Bernoulli(0.3) {
				break
			}
		}
		res := o.Result()

		// Invariant: number of copies created never exceeds L.
		if len(res.Copies) > copies {
			t.Fatalf("trial %d: %d copies exceed L=%d", trial, len(res.Copies), copies)
		}
		// Invariant: transmissions == total visits excluding each
		// copy's origin visit at the source.
		visits := 0
		for _, c := range res.Copies {
			if len(c.Visits) == 0 {
				t.Fatalf("trial %d: empty copy trace", trial)
			}
			if c.Visits[0].Node != 0 || c.Visits[0].Stage != 0 {
				t.Fatalf("trial %d: copy does not start at the source: %+v", trial, c.Visits[0])
			}
			visits += len(c.Visits) - 1
		}
		if res.Transmissions != visits {
			t.Fatalf("trial %d: transmissions %d != recorded hops %d", trial, res.Transmissions, visits)
		}
		// Invariant: stages never skip or regress along a copy, and
		// only position 0 repeats (sprayed relays).
		delivered := 0
		for _, c := range res.Copies {
			prev := 0
			for vi, v := range c.Visits[1:] {
				valid := v.Stage == prev+1 || (v.Stage == 0 && prev == 0)
				if !valid {
					t.Fatalf("trial %d: stage jump %d -> %d at visit %d", trial, prev, v.Stage, vi+1)
				}
				prev = v.Stage
			}
			if c.Delivered {
				delivered++
				last := c.Visits[len(c.Visits)-1]
				if last.Node != contact.NodeID(n-1) || last.Stage != k+1 {
					t.Fatalf("trial %d: delivered copy ends at %+v", trial, last)
				}
			}
		}
		// Invariant: at most one copy delivers (Forward() is false once
		// the destination has the message).
		if delivered > 1 {
			t.Fatalf("trial %d: %d copies delivered", trial, delivered)
		}
		if res.Delivered && delivered != 1 {
			t.Fatalf("trial %d: Delivered set but %d delivered copies", trial, delivered)
		}
		// Invariant: spray disabled => every visit after the source is
		// a group member or the destination (no arbitrary carriers).
		if !spray {
			for _, c := range res.Copies {
				for _, v := range c.Visits[1:] {
					if v.Stage == 0 {
						t.Fatalf("trial %d: strict mode sprayed to %d", trial, v.Node)
					}
				}
			}
		}
	}
}

// TestTPSInvariantsUnderRandomContactStreams does the same for the
// Threshold Pivot Scheme.
func TestTPSInvariantsUnderRandomContactStreams(t *testing.T) {
	root := rng.New(314)
	for trial := 0; trial < 300; trial++ {
		s := root.SplitN("trial", trial)
		n := 12 + s.IntN(20)
		shares := 2 + s.IntN(4)
		tau := 1 + s.IntN(shares)

		sets := make([][]contact.NodeID, shares)
		id := 1
		for i := range sets {
			for j := 0; j < 2 && id < n-2; j++ {
				sets[i] = append(sets[i], contact.NodeID(id))
				id++
			}
			if len(sets[i]) == 0 {
				sets[i] = append(sets[i], contact.NodeID(1))
			}
		}
		p := TPSParams{
			Src: 0, Dst: contact.NodeID(n - 1), Pivot: contact.NodeID(n - 2),
			Sets: sets, Threshold: tau,
		}
		tp, err := NewTPS(p)
		if err != nil {
			t.Fatal(err)
		}
		lastT := 0.0
		for step := 0; step < 500 && !tp.Done(); step++ {
			a := contact.NodeID(s.IntN(n))
			b := contact.NodeID(s.IntN(n))
			lastT += s.Float64()
			tp.OnContact(lastT, a, b)
		}
		res := tp.Result()
		if res.SharesAtPivot > shares {
			t.Fatalf("trial %d: pivot holds %d > %d shares", trial, res.SharesAtPivot, shares)
		}
		if res.Delivered && res.SharesAtPivot < tau {
			t.Fatalf("trial %d: delivered below threshold", trial)
		}
		if res.Transmissions > 2*shares+1 {
			t.Fatalf("trial %d: %d transmissions exceed 2s+1", trial, res.Transmissions)
		}
		for i, relay := range res.ShareRelays {
			if relay == -1 {
				continue
			}
			found := false
			for _, m := range sets[i] {
				if m == relay {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: share %d carried by non-member %d", trial, i, relay)
			}
		}
	}
}
