package routing

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestNewProphetValidation(t *testing.T) {
	if _, err := NewProphet(10, 1, 1, 0, ProphetConfig{}); err == nil {
		t.Fatal("accepted src == dst")
	}
	if _, err := NewProphet(10, 0, 99, 0, ProphetConfig{}); err == nil {
		t.Fatal("accepted out-of-range destination")
	}
	if _, err := NewProphet(10, 0, 1, 0, ProphetConfig{PInit: 2}); err == nil {
		t.Fatal("accepted PInit > 1")
	}
	if _, err := NewProphet(10, 0, 1, 0, ProphetConfig{Gamma: -1}); err == nil {
		t.Fatal("accepted negative Gamma")
	}
}

func TestProphetPredictabilityRises(t *testing.T) {
	p, err := NewProphet(5, 0, 4, 0, ProphetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.predAt(0, 1) != 0 {
		t.Fatal("initial predictability not zero")
	}
	p.OnContact(1, 0, 1)
	first := p.predAt(0, 1)
	if first <= 0 {
		t.Fatal("predictability did not rise after contact")
	}
	p.OnContact(2, 0, 1)
	if p.predAt(0, 1) <= first {
		t.Fatal("repeated contact did not increase predictability")
	}
	if p.predAt(0, 1) > 1 {
		t.Fatal("predictability exceeded 1")
	}
}

func TestProphetAging(t *testing.T) {
	p, err := NewProphet(5, 0, 4, 0, ProphetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.OnContact(1, 0, 1)
	before := p.predAt(0, 1)
	// A much later contact with a different peer triggers aging of
	// node 0's whole row first.
	p.OnContact(100, 0, 2)
	if p.predAt(0, 1) >= before {
		t.Fatalf("predictability did not age: %v -> %v", before, p.predAt(0, 1))
	}
}

func TestProphetTransitivity(t *testing.T) {
	p, err := NewProphet(5, 0, 4, 0, ProphetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 meets 4 often: P(1, 4) high.
	for i := 0; i < 5; i++ {
		p.OnContact(float64(i)+1, 1, 4)
	}
	// 0 meets 1: learns about 4 transitively.
	p.OnContact(10, 0, 1)
	if p.predAt(0, 4) <= 0 {
		t.Fatal("no transitive predictability")
	}
	if p.predAt(0, 4) >= p.predAt(1, 4) {
		t.Fatal("transitive predictability not damped")
	}
}

func TestProphetForwardsTowardBetterCustodian(t *testing.T) {
	p, err := NewProphet(5, 0, 4, 0, ProphetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 meets the destination repeatedly: a strong custodian.
	for i := 0; i < 5; i++ {
		p.OnContact(float64(i)+1, 2, 4)
	}
	// Source meets node 3 (knows nothing): no replication.
	p.OnContact(10, 0, 3)
	if p.Carriers() != 1 {
		t.Fatal("replicated to a hopeless custodian")
	}
	// Source meets node 2: replicate.
	p.OnContact(11, 0, 2)
	if p.Carriers() != 2 {
		t.Fatal("did not replicate to a better custodian")
	}
	if p.Result().Transmissions != 1 {
		t.Fatalf("transmissions = %d", p.Result().Transmissions)
	}
	// Node 2 meets the destination: delivery.
	p.OnContact(12, 2, 4)
	r := p.Result()
	if !r.Delivered || r.Time != 12 {
		t.Fatalf("%+v", r)
	}
}

func TestProphetDeliversOnRandomGraph(t *testing.T) {
	g := contact.NewRandom(30, 1, 30, rng.New(1))
	delivered := 0
	const runs = 50
	for i := 0; i < runs; i++ {
		p, err := NewProphet(30, 0, 29, 0, ProphetConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, 1e5, rng.New(uint64(i)), p)
		if p.Result().Delivered {
			delivered++
		}
	}
	if delivered < runs*8/10 {
		t.Fatalf("only %d/%d delivered with a huge horizon", delivered, runs)
	}
}

func TestBinarySprayAndWaitHalving(t *testing.T) {
	p, err := NewBinarySprayAndWait(0, 9, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.OnContact(1, 0, 1) // 0: 4, 1: 4
	if p.tickets[0] != 4 || p.tickets[1] != 4 {
		t.Fatalf("tickets after first split: %v", p.tickets)
	}
	p.OnContact(2, 1, 2) // 1: 2, 2: 2
	p.OnContact(3, 1, 2) // 2 already has a copy: nothing
	if p.tickets[1] != 2 || p.tickets[2] != 2 {
		t.Fatalf("tickets: %v", p.tickets)
	}
	if p.Carriers() != 3 {
		t.Fatalf("carriers = %d", p.Carriers())
	}
	// Single-ticket holders do not spray.
	p.OnContact(4, 0, 3) // 0: 4 -> 0: 2, 3: 2
	p.OnContact(5, 3, 4) // 3: 2 -> 3: 1, 4: 1
	p.OnContact(6, 4, 5) // 4 has a single ticket: waits
	if _, has := p.tickets[5]; has {
		t.Fatal("single-ticket holder sprayed")
	}
	// Any holder delivers on meeting the destination.
	p.OnContact(7, 9, 3)
	r := p.Result()
	if !r.Delivered || r.Time != 7 {
		t.Fatalf("%+v", r)
	}
}

func TestBinarySprayAndWaitValidation(t *testing.T) {
	if _, err := NewBinarySprayAndWait(1, 1, 3, 0); err == nil {
		t.Fatal("accepted src == dst")
	}
	if _, err := NewBinarySprayAndWait(0, 1, 0, 0); err == nil {
		t.Fatal("accepted zero copies")
	}
}

func TestBinarySpraySpreadsFasterThanSource(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	g := contact.NewRandom(40, 1, 60, rng.New(3))
	const copies = 8
	const runs = 400
	var srcDelay, binDelay float64
	var srcN, binN int
	for i := 0; i < runs; i++ {
		s1, err := NewSprayAndWait(0, 39, copies, 0)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, 1e6, rng.New(uint64(i)), s1)
		if r := s1.Result(); r.Delivered {
			srcDelay += r.Time
			srcN++
		}
		s2, err := NewBinarySprayAndWait(0, 39, copies, 0)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunSynthetic(g, 1e6, rng.New(uint64(i)).Split("bin"), s2)
		if r := s2.Result(); r.Delivered {
			binDelay += r.Time
			binN++
		}
	}
	if srcN == 0 || binN == 0 {
		t.Fatal("no deliveries")
	}
	if binDelay/float64(binN) >= srcDelay/float64(srcN) {
		t.Fatalf("binary spray delay %v not below source spray %v",
			binDelay/float64(binN), srcDelay/float64(srcN))
	}
}

func BenchmarkProphet(b *testing.B) {
	g := contact.NewRandom(50, 1, 60, rng.New(1))
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewProphet(50, 0, 49, 0, ProphetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		sim.RunSynthetic(g, 600, s, p)
	}
}
