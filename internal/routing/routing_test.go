package routing

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
)

func twoGroupParams() Params {
	return Params{
		Src:    0,
		Dst:    7,
		Sets:   [][]contact.NodeID{{1, 2}, {3, 4}},
		Copies: 1,
	}
}

func TestParamsValidate(t *testing.T) {
	good := twoGroupParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Params){
		"src == dst":        func(p *Params) { p.Dst = p.Src },
		"negative endpoint": func(p *Params) { p.Src = -1 },
		"no groups":         func(p *Params) { p.Sets = nil },
		"empty group":       func(p *Params) { p.Sets = [][]contact.NodeID{{}} },
		"group holds src":   func(p *Params) { p.Sets = [][]contact.NodeID{{0}} },
		"group holds dst":   func(p *Params) { p.Sets = [][]contact.NodeID{{7}} },
		"zero copies":       func(p *Params) { p.Copies = 0 },
		"negative start":    func(p *Params) { p.StartTime = -1 },
	}
	for name, mutate := range cases {
		p := twoGroupParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSingleCopyDeterministicWalk(t *testing.T) {
	o, err := NewOnion(twoGroupParams())
	if err != nil {
		t.Fatal(err)
	}
	// Contact with a node outside R_1: nothing happens.
	o.OnContact(1, 0, 3)
	if r := o.Result(); r.Transmissions != 0 {
		t.Fatalf("forwarded to non-member: %+v", r)
	}
	// Meet an R_1 member: forward.
	o.OnContact(2, 0, 1)
	// Holder at stage 1 meets an R_1 (not R_2) member: nothing.
	o.OnContact(3, 1, 2)
	// Meet an R_2 member: forward.
	o.OnContact(4, 1, 4)
	// Premature meeting with destination by a non-final holder was
	// already impossible; now the final holder meets dst: deliver.
	o.OnContact(5, 4, 7)

	r := o.Result()
	if !r.Delivered || r.Time != 5 {
		t.Fatalf("not delivered at t=5: %+v", r)
	}
	if r.Transmissions != 3 { // K+1 = 3
		t.Fatalf("transmissions = %d, want 3", r.Transmissions)
	}
	if len(r.Copies) != 1 {
		t.Fatalf("copies = %d", len(r.Copies))
	}
	wantVisits := []Visit{{0, 0}, {1, 1}, {4, 2}, {7, 3}}
	got := r.Copies[0].Visits
	if len(got) != len(wantVisits) {
		t.Fatalf("visits = %v", got)
	}
	for i := range wantVisits {
		if got[i] != wantVisits[i] {
			t.Fatalf("visit %d = %v, want %v", i, got[i], wantVisits[i])
		}
	}
	senders := r.Copies[0].Senders()
	if len(senders) != 3 || senders[0] != 0 || senders[1] != 1 || senders[2] != 4 {
		t.Fatalf("senders = %v", senders)
	}
	if !o.Done() {
		t.Fatal("protocol not done after delivery")
	}
}

func TestSingleCopyIgnoresContactsBeforeStart(t *testing.T) {
	p := twoGroupParams()
	p.StartTime = 100
	o, err := NewOnion(p)
	if err != nil {
		t.Fatal(err)
	}
	o.OnContact(50, 0, 1)
	if r := o.Result(); r.Transmissions != 0 {
		t.Fatal("forwarded before start time")
	}
	o.OnContact(150, 0, 1)
	if r := o.Result(); r.Transmissions != 1 {
		t.Fatal("did not forward after start time")
	}
}

func TestSingleCopyNoDirectDelivery(t *testing.T) {
	// The source meeting the destination must NOT deliver: anonymity
	// requires the onion path.
	o, err := NewOnion(twoGroupParams())
	if err != nil {
		t.Fatal(err)
	}
	o.OnContact(1, 0, 7)
	if r := o.Result(); r.Delivered || r.Transmissions != 0 {
		t.Fatalf("direct delivery happened: %+v", r)
	}
}

func TestReverseDirectionForwarding(t *testing.T) {
	// Contacts are symmetric: (member, holder) order must work too.
	o, err := NewOnion(twoGroupParams())
	if err != nil {
		t.Fatal(err)
	}
	o.OnContact(1, 2, 0) // member listed first
	if r := o.Result(); r.Transmissions != 1 {
		t.Fatalf("reverse-direction forward failed: %+v", r)
	}
}

func TestMultiCopyStrictTickets(t *testing.T) {
	p := twoGroupParams()
	p.Copies = 2
	p.RunToCompletion = true
	o, err := NewOnion(p)
	if err != nil {
		t.Fatal(err)
	}
	// Strict Algorithm 2: the source may hand copies only to R_1
	// members. Meeting an arbitrary node does nothing.
	o.OnContact(1, 0, 5)
	if r := o.Result(); r.Transmissions != 0 {
		t.Fatal("strict mode sprayed to a non-member")
	}
	o.OnContact(2, 0, 1) // ticket 1 -> node 1
	o.OnContact(3, 0, 1) // node 1 already has m: Forward() false
	if r := o.Result(); r.Transmissions != 1 {
		t.Fatalf("duplicate forward to a holder: %+v", o.Result())
	}
	o.OnContact(4, 0, 2) // ticket 2 -> node 2; source buffer empties
	o.OnContact(5, 0, 1) // source no longer holds m
	r := o.Result()
	if r.Transmissions != 2 || len(r.Copies) != 2 {
		t.Fatalf("after ticket exhaustion: %+v", r)
	}
	// Both copies progress independently.
	o.OnContact(6, 1, 3)
	o.OnContact(7, 2, 4)
	o.OnContact(8, 3, 7) // first delivery
	r = o.Result()
	if !r.Delivered || r.Time != 8 {
		t.Fatalf("delivery: %+v", r)
	}
	// Second copy stalls at the destination (Forward() false when dst
	// has m).
	o.OnContact(9, 4, 7)
	r = o.Result()
	if r.Transmissions != 5 {
		t.Fatalf("stalled copy transmitted: %d", r.Transmissions)
	}
	delivered := 0
	for _, c := range r.Copies {
		if c.Delivered {
			delivered++
		}
	}
	if delivered != 1 {
		t.Fatalf("%d copies delivered, want 1", delivered)
	}
}

func TestSprayModeHandsCopiesToAnyNode(t *testing.T) {
	p := twoGroupParams()
	p.Copies = 3
	p.Spray = true
	o, err := NewOnion(p)
	if err != nil {
		t.Fatal(err)
	}
	// Arbitrary node 5: sprayed (tickets 3 -> 2).
	o.OnContact(1, 0, 5)
	// Arbitrary node 6: sprayed (tickets 2 -> 1).
	o.OnContact(2, 0, 6)
	// Arbitrary node 3 (an R_2 member, but not R_1): with one ticket
	// left, no more spraying — the last copy is reserved for R_1.
	o.OnContact(3, 0, 3)
	r := o.Result()
	if r.Transmissions != 2 {
		t.Fatalf("spray count = %d, want 2", r.Transmissions)
	}
	// The sprayed relay routes into R_1 like a fresh source copy.
	o.OnContact(4, 5, 1)
	r = o.Result()
	if r.Transmissions != 3 {
		t.Fatalf("sprayed relay did not forward into R_1: %+v", r)
	}
	// Source's last ticket goes to an R_1 member directly.
	o.OnContact(5, 0, 2)
	r = o.Result()
	if r.Transmissions != 4 {
		t.Fatalf("source final forward failed: %+v", r)
	}
	// Sprayed copy path records the relay at stage 0.
	var sprayTrace *CopyTrace
	for i := range r.Copies {
		if len(r.Copies[i].Visits) >= 2 && r.Copies[i].Visits[1].Node == 5 {
			sprayTrace = &r.Copies[i]
		}
	}
	if sprayTrace == nil {
		t.Fatalf("no sprayed copy trace found: %+v", r.Copies)
	}
	if sprayTrace.Visits[1].Stage != 0 {
		t.Fatalf("sprayed relay stage = %d, want 0", sprayTrace.Visits[1].Stage)
	}
}

func TestSprayNeverToDestination(t *testing.T) {
	p := twoGroupParams()
	p.Copies = 5
	p.Spray = true
	o, err := NewOnion(p)
	if err != nil {
		t.Fatal(err)
	}
	o.OnContact(1, 0, 7)
	if r := o.Result(); r.Transmissions != 0 {
		t.Fatal("sprayed a copy to the destination")
	}
}

func TestDoneWhenAllCopiesStall(t *testing.T) {
	p := twoGroupParams()
	p.Copies = 1
	o, err := NewOnion(p)
	if err != nil {
		t.Fatal(err)
	}
	if o.Done() {
		t.Fatal("done before anything happened")
	}
	o.OnContact(1, 0, 1)
	o.OnContact(2, 1, 3)
	o.OnContact(3, 3, 7)
	if !o.Done() {
		t.Fatal("not done after delivery")
	}
}

func makeCompleteGraph(n int, seed uint64) *contact.Graph {
	return contact.NewRandom(n, 1, 360, rng.New(seed))
}

func TestSampleOnionDeterministic(t *testing.T) {
	g := makeCompleteGraph(20, 1)
	p := Params{Src: 0, Dst: 19, Sets: [][]contact.NodeID{{1, 2, 3}, {4, 5, 6}}, Copies: 3, Spray: true}
	a, err := SampleOnion(g, p, 600, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleOnion(g, p, 600, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Time != b.Time || a.Transmissions != b.Transmissions {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSampleOnionValidation(t *testing.T) {
	g := makeCompleteGraph(10, 1)
	p := Params{Src: 0, Dst: 9, Sets: [][]contact.NodeID{{1}}, Copies: 1}
	if _, err := SampleOnion(g, p, 0, rng.New(1)); err == nil {
		t.Fatal("accepted zero deadline")
	}
	bad := p
	bad.Dst = 99
	if _, err := SampleOnion(g, bad, 10, rng.New(1)); err == nil {
		t.Fatal("accepted out-of-range destination")
	}
}

func TestSampleOnionRespectsDeadline(t *testing.T) {
	g := makeCompleteGraph(20, 3)
	p := Params{Src: 0, Dst: 19, Sets: [][]contact.NodeID{{1, 2}, {3, 4}, {5, 6}}, Copies: 1}
	for seed := uint64(0); seed < 50; seed++ {
		r, err := SampleOnion(g, p, 30, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered && r.Time > 30 {
			t.Fatalf("delivered at %v past deadline 30", r.Time)
		}
	}
}

func TestSampleOnionDeliveredPathShape(t *testing.T) {
	g := makeCompleteGraph(30, 5)
	sets := [][]contact.NodeID{{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}, {11, 12, 13, 14, 15}}
	p := Params{Src: 0, Dst: 29, Sets: sets, Copies: 1}
	for seed := uint64(0); seed < 30; seed++ {
		r, err := SampleOnion(g, p, 100000, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Delivered {
			continue
		}
		c, ok := r.DeliveredCopy()
		if !ok {
			t.Fatal("delivered but no delivered copy")
		}
		// Path: src (stage 0), one node per group (stages 1..3), dst.
		if len(c.Visits) != 5 {
			t.Fatalf("path length %d, want 5: %v", len(c.Visits), c.Visits)
		}
		for k := 1; k <= 3; k++ {
			node := c.Visits[k].Node
			found := false
			for _, m := range sets[k-1] {
				if m == node {
					found = true
				}
			}
			if !found {
				t.Fatalf("visit %d node %d not in R_%d", k, node, k)
			}
			if c.Visits[k].Stage != k {
				t.Fatalf("visit %d stage %d", k, c.Visits[k].Stage)
			}
		}
		if c.Visits[4].Node != 29 {
			t.Fatalf("final visit %v, want dst", c.Visits[4])
		}
		if r.Transmissions != 4 { // K+1
			t.Fatalf("transmissions = %d, want 4", r.Transmissions)
		}
	}
}

func TestSampleOnionCostWithinBound(t *testing.T) {
	g := makeCompleteGraph(40, 7)
	sets := [][]contact.NodeID{{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}, {11, 12, 13, 14, 15}}
	k := len(sets)
	for _, l := range []int{1, 2, 3, 5} {
		p := Params{Src: 0, Dst: 39, Sets: sets, Copies: l, Spray: true, RunToCompletion: true}
		for seed := uint64(0); seed < 20; seed++ {
			r, err := SampleOnion(g, p, 1e9, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			bound := 2*l - 1 + k*l
			if r.Transmissions > bound {
				t.Fatalf("L=%d: %d transmissions exceed bound %d", l, r.Transmissions, bound)
			}
		}
	}
}

func TestSampleOnionMoreCopiesFasterDelivery(t *testing.T) {
	g := makeCompleteGraph(50, 9)
	sets := [][]contact.NodeID{{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}, {11, 12, 13, 14, 15}}
	meanDelay := func(l int) float64 {
		var sum float64
		var n int
		for seed := uint64(0); seed < 400; seed++ {
			p := Params{Src: 0, Dst: 49, Sets: sets, Copies: l, Spray: true}
			r, err := SampleOnion(g, p, 1e7, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if r.Delivered {
				sum += r.Time
				n++
			}
		}
		if n == 0 {
			t.Fatal("nothing delivered")
		}
		return sum / float64(n)
	}
	if d1, d5 := meanDelay(1), meanDelay(5); d5 >= d1 {
		t.Fatalf("L=5 delay %v not below L=1 delay %v", d5, d1)
	}
}

func TestEpidemicBasics(t *testing.T) {
	e, err := NewEpidemic(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.OnContact(1, 0, 1) // infect 1
	e.OnContact(2, 1, 2) // infect 2
	e.OnContact(3, 1, 2) // both infected: nothing
	e.OnContact(4, 2, 3) // deliver
	r := e.Result()
	if !r.Delivered || r.Time != 4 || r.Transmissions != 3 {
		t.Fatalf("%+v", r)
	}
	if e.InfectedCount() != 4 {
		t.Fatalf("infected = %d", e.InfectedCount())
	}
	if !e.Done() {
		t.Fatal("not done")
	}
	if _, err := NewEpidemic(1, 1, 0); err == nil {
		t.Fatal("accepted src == dst")
	}
}

func TestSprayAndWaitBasics(t *testing.T) {
	p, err := NewSprayAndWait(0, 9, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.OnContact(1, 0, 1) // spray (tickets 3->2)
	p.OnContact(2, 0, 2) // spray (tickets 2->1)
	p.OnContact(3, 0, 3) // no spray: last ticket kept
	p.OnContact(4, 1, 2) // relays never exchange
	r := p.Result()
	if r.Transmissions != 2 {
		t.Fatalf("sprays = %d, want 2", r.Transmissions)
	}
	p.OnContact(5, 2, 9) // relay 2 meets dst
	r = p.Result()
	if !r.Delivered || r.Time != 5 || r.Transmissions != 3 {
		t.Fatalf("%+v", r)
	}
	if _, err := NewSprayAndWait(0, 1, 0, 0); err == nil {
		t.Fatal("accepted zero copies")
	}
}

func TestDirectBasics(t *testing.T) {
	d, err := NewDirect(2, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.OnContact(5, 2, 5) // before start
	d.OnContact(11, 2, 4)
	d.OnContact(12, 5, 2) // reversed order still works
	r := d.Result()
	if !r.Delivered || r.Time != 12 || r.Transmissions != 1 {
		t.Fatalf("%+v", r)
	}
}
