// Package workload drives the message-level runtime (internal/node)
// with a realistic multi-message traffic pattern: messages arrive as a
// Poisson process at random sources, each routed through onion groups
// with real cryptography, while the contact process runs underneath.
// It reports per-message outcomes and aggregate system health (buffer
// occupancy, rejects, purges) — the system-level view a deployment
// would monitor, complementing the per-message experiments of package
// experiment.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Spec describes the traffic offered to the network.
type Spec struct {
	Messages    int     // total messages to inject
	ArrivalRate float64 // Poisson arrivals per minute
	PayloadSize int     // bytes per message
	Relays      int     // K onion groups per message
	Copies      int     // L tickets per message
	PadTo       int     // onion padding target (0 = none)
	ExpiryAfter float64 // per-message relative deadline (0 = none)
	Seed        uint64
	// TrackBuffers samples total buffered onions after every contact
	// (moderate cost); PeakBuffered is zero without it.
	TrackBuffers bool
}

func (s Spec) validate() error {
	switch {
	case s.Messages < 1:
		return fmt.Errorf("workload: need at least one message, got %d", s.Messages)
	case s.ArrivalRate <= 0:
		return fmt.Errorf("workload: arrival rate must be positive, got %v", s.ArrivalRate)
	case s.Relays < 1:
		return fmt.Errorf("workload: need at least one relay group, got %d", s.Relays)
	case s.Copies < 1:
		return fmt.Errorf("workload: need at least one copy, got %d", s.Copies)
	case s.PayloadSize < 0:
		return fmt.Errorf("workload: negative payload size %d", s.PayloadSize)
	case s.ExpiryAfter < 0:
		return fmt.Errorf("workload: negative expiry %v", s.ExpiryAfter)
	}
	return nil
}

// Record is the outcome of one injected message.
type Record struct {
	ID          string
	Src, Dst    contact.NodeID
	SentAt      float64
	Delivered   bool
	DeliveredAt float64
}

// Result aggregates a workload run.
type Result struct {
	Records      []Record
	Injected     int
	Delivered    int
	DeliveryRate float64
	Delay        stats.Summary // over delivered messages
	PeakBuffered int           // only when Spec.TrackBuffers
	Totals       node.Stats
}

// driver interleaves Poisson message injection with the contact
// stream. It implements sim.Protocol.
type driver struct {
	nw      *node.Network
	graphN  int
	spec    Spec
	sends   []pendingSend // sorted by at
	nextIdx int
	records []Record
	pending map[string]int // message id -> record index, undelivered
	peak    int
	rng     *rng.Stream
	// openLoop marks a RunOpenLoop drive: load counters and the
	// delivery-latency histogram are emitted into the active
	// observability collector (service mode watches them live).
	openLoop bool
}

type pendingSend struct {
	at       float64
	src, dst contact.NodeID
}

// Run drives the network with the workload over synthetic contacts on
// the given graph until the horizon (minutes).
func Run(nw *node.Network, g *contact.Graph, spec Spec, horizon float64) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon must be positive, got %v", horizon)
	}
	root := rng.New(spec.Seed)
	arrivals := root.Split("arrivals")
	n := g.N()
	d := &driver{
		nw:      nw,
		graphN:  n,
		spec:    spec,
		pending: make(map[string]int),
		rng:     root.Split("paths"),
	}
	t := 0.0
	for i := 0; i < spec.Messages; i++ {
		t += arrivals.Exp(spec.ArrivalRate)
		src := contact.NodeID(arrivals.IntN(n))
		dst := contact.NodeID(arrivals.PickOther(n, int(src)))
		d.sends = append(d.sends, pendingSend{at: t, src: src, dst: dst})
	}
	sort.Slice(d.sends, func(i, j int) bool { return d.sends[i].at < d.sends[j].at })

	sim.RunSynthetic(g, horizon, root.Split("contacts"), d)

	res := &Result{
		Records:      d.records,
		Injected:     len(d.records),
		PeakBuffered: d.peak,
		Totals:       nw.TotalStats(),
	}
	var delay stats.Accumulator
	for _, r := range d.records {
		if r.Delivered {
			res.Delivered++
			delay.Add(r.DeliveredAt - r.SentAt)
		}
	}
	if res.Injected > 0 {
		res.DeliveryRate = float64(res.Delivered) / float64(res.Injected)
	}
	res.Delay = delay.Summarize()
	return res, nil
}

// OnContact implements sim.Protocol: inject due messages, execute the
// contact, then collect delivery outcomes.
func (d *driver) OnContact(t float64, a, b contact.NodeID) {
	for d.nextIdx < len(d.sends) && d.sends[d.nextIdx].at <= t {
		s := d.sends[d.nextIdx]
		d.nextIdx++
		expiry := 0.0
		if d.spec.ExpiryAfter > 0 {
			expiry = s.at + d.spec.ExpiryAfter
		}
		id, err := d.nw.Node(s.src).Send(node.SendSpec{
			Dst:     s.dst,
			Payload: make([]byte, d.spec.PayloadSize),
			Relays:  d.spec.Relays,
			Copies:  d.spec.Copies,
			Expiry:  expiry,
			PadTo:   d.spec.PadTo,
		}, d.rng.SplitN("path", d.nextIdx))
		if err != nil {
			// A send can fail only on misconfiguration (e.g. too few
			// groups); record it as an undeliverable injection.
			d.records = append(d.records, Record{Src: s.src, Dst: s.dst, SentAt: s.at})
			continue
		}
		d.records = append(d.records, Record{ID: id, Src: s.src, Dst: s.dst, SentAt: s.at})
		d.pending[id] = len(d.records) - 1
		if d.openLoop {
			if c := obs.Active(); c != nil {
				c.Add(obs.LoadInjected, 1)
			}
		}
	}

	d.nw.Meet(a, b, t)

	for id, idx := range d.pending {
		rec := &d.records[idx]
		if _, ok := d.nw.Node(rec.Dst).Delivered(id); ok {
			rec.Delivered = true
			rec.DeliveredAt = t
			delete(d.pending, id)
			if d.openLoop {
				ObserveDelivery(t - rec.SentAt)
			}
		}
	}
	if d.spec.TrackBuffers {
		total := 0
		for i := 0; i < d.graphN; i++ {
			total += d.nw.Node(contact.NodeID(i)).BufferLen()
		}
		if total > d.peak {
			d.peak = total
		}
	}
}

// Done implements sim.Protocol: the run ends when every message has
// been injected and either delivered or (with expiry) the horizon
// handles the rest.
func (d *driver) Done() bool {
	return d.nextIdx == len(d.sends) && len(d.pending) == 0
}
