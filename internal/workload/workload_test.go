package workload

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/rng"
)

func testSetup(t *testing.T, cfg node.Config) (*node.Network, *contact.Graph) {
	t.Helper()
	nw, err := node.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := contact.NewRandom(cfg.Nodes, 1, 20, rng.New(cfg.Seed+1))
	return nw, g
}

func TestSpecValidation(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 10, GroupSize: 2, Seed: 1})
	bad := []Spec{
		{Messages: 0, ArrivalRate: 1, Relays: 1, Copies: 1},
		{Messages: 1, ArrivalRate: 0, Relays: 1, Copies: 1},
		{Messages: 1, ArrivalRate: 1, Relays: 0, Copies: 1},
		{Messages: 1, ArrivalRate: 1, Relays: 1, Copies: 0},
		{Messages: 1, ArrivalRate: 1, Relays: 1, Copies: 1, PayloadSize: -1},
		{Messages: 1, ArrivalRate: 1, Relays: 1, Copies: 1, ExpiryAfter: -1},
	}
	for i, spec := range bad {
		if _, err := Run(nw, g, spec, 100); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
	if _, err := Run(nw, g, Spec{Messages: 1, ArrivalRate: 1, Relays: 1, Copies: 1}, 0); err == nil {
		t.Error("accepted zero horizon")
	}
}

func TestWorkloadDeliversMostMessages(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 30, GroupSize: 5, Seed: 3})
	spec := Spec{
		Messages:    40,
		ArrivalRate: 0.5, // one message every ~2 minutes
		PayloadSize: 128,
		Relays:      2,
		Copies:      1,
		PadTo:       1024,
		Seed:        7,
	}
	res, err := Run(nw, g, spec, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 40 {
		t.Fatalf("injected = %d", res.Injected)
	}
	if res.DeliveryRate < 0.95 {
		t.Fatalf("delivery rate %v with a generous horizon", res.DeliveryRate)
	}
	if res.Delay.N != res.Delivered || res.Delay.Mean <= 0 {
		t.Fatalf("delay summary inconsistent: %+v", res.Delay)
	}
	for _, r := range res.Records {
		if r.Delivered && r.DeliveredAt < r.SentAt {
			t.Fatalf("delivered before sent: %+v", r)
		}
	}
	if res.Totals.Sent != 40 {
		t.Fatalf("node stats sent = %d", res.Totals.Sent)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	spec := Spec{Messages: 15, ArrivalRate: 1, Relays: 2, Copies: 2, Seed: 11}
	run := func() *Result {
		nw, g := testSetup(t, node.Config{Nodes: 25, GroupSize: 5, Seed: 13, Spray: true})
		res, err := Run(nw, g, spec, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Injected != b.Injected {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Delivered, a.Injected, b.Delivered, b.Injected)
	}
	// Message IDs are crypto-random, but the outcome pattern must
	// match.
	for i := range a.Records {
		if a.Records[i].Delivered != b.Records[i].Delivered ||
			a.Records[i].Src != b.Records[i].Src ||
			a.Records[i].Dst != b.Records[i].Dst {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWorkloadWithExpiryDropsLateMessages(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 20, GroupSize: 4, Seed: 17})
	spec := Spec{
		Messages:    30,
		ArrivalRate: 2,
		Relays:      3,
		Copies:      1,
		ExpiryAfter: 0.5, // brutal half-minute deadline
		Seed:        19,
	}
	res, err := Run(nw, g, spec, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate > 0.5 {
		t.Fatalf("delivery rate %v despite a 0.5-minute deadline", res.DeliveryRate)
	}
	if res.Totals.Expired == 0 {
		t.Fatal("no message ever expired")
	}
}

func TestWorkloadBufferTracking(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 25, GroupSize: 5, Seed: 23, Spray: true})
	spec := Spec{
		Messages:     20,
		ArrivalRate:  5,
		Relays:       2,
		Copies:       3,
		Seed:         29,
		TrackBuffers: true,
	}
	res, err := Run(nw, g, spec, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBuffered == 0 {
		t.Fatal("no buffered onion ever observed")
	}
}

func TestWorkloadAntiPacketsReduceResidue(t *testing.T) {
	spec := Spec{Messages: 25, ArrivalRate: 2, Relays: 2, Copies: 4, Seed: 31}
	residue := func(anti bool) int {
		nw, g := testSetup(t, node.Config{Nodes: 30, GroupSize: 5, Seed: 37, Spray: true, AntiPackets: anti})
		if _, err := Run(nw, g, spec, 2000); err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < 30; i++ {
			total += nw.Node(contact.NodeID(i)).BufferLen()
		}
		return total
	}
	with, without := residue(true), residue(false)
	if with >= without {
		t.Fatalf("anti-packets left %d residual onions vs %d without", with, without)
	}
}

func BenchmarkWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw, err := node.NewNetwork(node.Config{Nodes: 30, GroupSize: 5, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		g := contact.NewRandom(30, 1, 20, rng.New(uint64(i)))
		if _, err := Run(nw, g, Spec{
			Messages: 20, ArrivalRate: 1, Relays: 2, Copies: 1, Seed: uint64(i),
		}, 2000); err != nil {
			b.Fatal(err)
		}
	}
}
