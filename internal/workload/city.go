package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/trace"
)

// CitySpec configures the city-scale synthetic mobility workload: N
// nodes dropped uniformly on a Width x Width torus (a binomial point
// process, the conditioned form of a Poisson point process), with every
// pair closer than Range meeting at the points of a Poisson process
// whose rate decays linearly with distance. The result is a sparse
// contact trace — average degree is constant in N for the default
// geometry — suitable for exercising the engine at node counts far
// beyond the paper's scenarios.
type CitySpec struct {
	Nodes      int     // node count (>= 2)
	Width      float64 // torus side, meters
	Range      float64 // radio range, meters; pairs farther apart never meet
	MeanICT    float64 // mean inter-contact time at distance 0, seconds
	ContactSec float64 // mean contact duration, seconds
	Horizon    float64 // trace span, seconds
	Seed       uint64
	Workers    int // worker pool size; <= 0 means GOMAXPROCS
}

// DefaultCitySpec returns the reference geometry for n nodes: 100 m
// radio range, a torus sized for constant node density (average degree
// ~= 4*pi regardless of n), one-hour mean inter-contact time at zero
// distance, one-minute contacts, and a one-day horizon.
func DefaultCitySpec(n int) CitySpec {
	return CitySpec{
		Nodes:      n,
		Width:      100 * math.Sqrt(float64(n)) / 2,
		Range:      100,
		MeanICT:    3600,
		ContactSec: 60,
		Horizon:    86400,
	}
}

func (s CitySpec) validate() error {
	switch {
	case s.Nodes < 2:
		return fmt.Errorf("workload: city needs at least 2 nodes, got %d", s.Nodes)
	case s.Nodes > contact.MaxNodes:
		return fmt.Errorf("workload: city node count %d exceeds limit %d", s.Nodes, contact.MaxNodes)
	case !(s.Width > 0):
		return fmt.Errorf("workload: city width must be positive, got %v", s.Width)
	case !(s.Range > 0):
		return fmt.Errorf("workload: city range must be positive, got %v", s.Range)
	case !(s.MeanICT > 0):
		return fmt.Errorf("workload: city mean ICT must be positive, got %v", s.MeanICT)
	case !(s.ContactSec > 0):
		return fmt.Errorf("workload: city contact duration must be positive, got %v", s.ContactSec)
	case !(s.Horizon > 0):
		return fmt.Errorf("workload: city horizon must be positive, got %v", s.Horizon)
	}
	return nil
}

// cityRate is the pair contact rate at torus distance d: linear decay
// from 1/MeanICT at d=0 to zero at d=Range (and zero beyond).
func (s CitySpec) cityRate(d float64) float64 {
	if d >= s.Range {
		return 0
	}
	return (1 - d/s.Range) / s.MeanICT
}

// cityPositions places the nodes: one sequential stream, so positions
// are identical for every worker count.
func (s CitySpec) cityPositions(root *rng.Stream) (xs, ys []float64) {
	pos := root.Split("city-pos")
	xs = make([]float64, s.Nodes)
	ys = make([]float64, s.Nodes)
	for i := 0; i < s.Nodes; i++ {
		xs[i] = pos.Uniform(0, s.Width)
		ys[i] = pos.Uniform(0, s.Width)
	}
	return xs, ys
}

// torusDist is the minimum-image distance on the Width x Width torus.
func torusDist(x1, y1, x2, y2, w float64) float64 {
	dx := math.Abs(x1 - x2)
	if dx > w-dx {
		dx = w - dx
	}
	dy := math.Abs(y1 - y2)
	if dy > w-dy {
		dy = w - dy
	}
	return math.Hypot(dx, dy)
}

// cityGrid bins nodes into square cells no smaller than Range, so all
// pairs within range are found by scanning a node's cell and its eight
// torus neighbors — O(N) candidate pairs at constant density instead of
// the O(N^2) all-pairs scan.
type cityGrid struct {
	cells int
	size  float64
	bins  [][]int32
}

func newCityGrid(s CitySpec, xs, ys []float64) *cityGrid {
	cells := int(s.Width / s.Range)
	if cells < 1 {
		cells = 1
	}
	g := &cityGrid{cells: cells, size: s.Width / float64(cells), bins: make([][]int32, cells*cells)}
	for i := range xs {
		g.bins[g.cellOf(xs[i], ys[i])] = append(g.bins[g.cellOf(xs[i], ys[i])], int32(i))
	}
	return g
}

func (g *cityGrid) cellOf(x, y float64) int {
	cx := int(x / g.size)
	if cx >= g.cells {
		cx = g.cells - 1
	}
	cy := int(y / g.size)
	if cy >= g.cells {
		cy = g.cells - 1
	}
	return cy*g.cells + cx
}

// neighborhood calls fn for each node in the 3x3 cell block around
// (x, y), visiting each cell at most once even when the torus wraps the
// block onto itself (cells < 3).
func (g *cityGrid) neighborhood(x, y float64, fn func(j int32)) {
	c := g.cellOf(x, y)
	cx, cy := c%g.cells, c/g.cells
	var visited [9]int
	nv := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx := (cx + dx + g.cells) % g.cells
			ny := (cy + dy + g.cells) % g.cells
			cell := ny*g.cells + nx
			dup := false
			for k := 0; k < nv; k++ {
				if visited[k] == cell {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			visited[nv] = cell
			nv++
			for _, j := range g.bins[cell] {
				fn(j)
			}
		}
	}
}

// CityScale generates a city-scale contact trace from the spec. The
// trace is byte-identical for every worker count: positions come from
// one sequential stream, each pair's contact process from a stream
// derived only from the pair's node indices, and per-node results are
// concatenated in node order before the final stable sort by start
// time.
func CityScale(s CitySpec) (*trace.Trace, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	root := rng.New(s.Seed)
	xs, ys := s.cityPositions(root)
	grid := newCityGrid(s, xs, ys)
	contacts := root.Split("city-contacts")

	perNode, err := runner.MapTrials(s.Workers, s.Nodes, func(i int) ([]trace.Contact, error) {
		// Collect in-range higher-indexed partners of node i, sorted so
		// the per-node contact list is generated in a canonical order.
		var partners []int32
		grid.neighborhood(xs[i], ys[i], func(j int32) {
			if int(j) > i && torusDist(xs[i], ys[i], xs[j], ys[j], s.Width) < s.Range {
				partners = append(partners, j)
			}
		})
		sort.Slice(partners, func(a, b int) bool { return partners[a] < partners[b] })

		var out []trace.Contact
		for _, j := range partners {
			d := torusDist(xs[i], ys[i], xs[j], ys[j], s.Width)
			rate := s.cityRate(d)
			if rate <= 0 {
				continue
			}
			pair := contacts.SplitN("pair-i", i).SplitN("pair-j", int(j))
			for t := pair.Exp(rate); t <= s.Horizon; t += pair.Exp(rate) {
				out = append(out, trace.Contact{
					A:     contact.NodeID(i),
					B:     contact.NodeID(j),
					Start: t,
					End:   t + pair.Exp(1/s.ContactSec),
				})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, fmt.Errorf("workload: city generation: %w", err)
	}

	total := 0
	for _, c := range perNode {
		total += len(c)
	}
	tr := &trace.Trace{NodeCount: s.Nodes, Contacts: make([]trace.Contact, 0, total)}
	for _, c := range perNode {
		tr.Contacts = append(tr.Contacts, c...)
	}
	tr.SortByStart()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: city trace invalid: %w", err)
	}
	return tr, nil
}
