package workload

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// cityGoldenSpec is the pinned configuration of the committed golden
// trace (testdata/city-golden.trace). Regenerate after an intentional
// generator change with:
//
//	UPDATE_CITY_GOLDEN=1 go test ./internal/workload/ -run CityGoldenTrace
func cityGoldenSpec() CitySpec {
	s := DefaultCitySpec(50)
	s.Horizon = 7200
	s.Seed = 7
	s.Workers = 1
	return s
}

// TestCityGoldenTrace locks the generator output byte-for-byte at a
// pinned seed: any change to position placement, pair streams, rate
// math, or serialization fails here rather than silently shifting every
// scale benchmark.
func TestCityGoldenTrace(t *testing.T) {
	tr, err := CityScale(cityGoldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "city-golden.trace")
	if os.Getenv("UPDATE_CITY_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, buf.Len())
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("city trace drifted from committed golden (%d bytes generated, %d committed)", buf.Len(), len(golden))
	}
}

// TestCityWorkerDeterminism asserts the MapTrials contract holds for
// the generator: the trace is identical for every worker count.
func TestCityWorkerDeterminism(t *testing.T) {
	s := DefaultCitySpec(300)
	s.Horizon = 14400
	s.Seed = 42
	var base *bytes.Buffer
	for _, workers := range []int{1, 4} {
		s.Workers = workers
		tr, err := CityScale(s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = &buf
			continue
		}
		if !bytes.Equal(base.Bytes(), buf.Bytes()) {
			t.Fatalf("trace differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestCityGridMatchesBruteForce checks the cell-binned neighbor search
// against the O(N^2) definition, including the degenerate geometries
// where the 3x3 block wraps onto itself (1 and 2 cells per side).
func TestCityGridMatchesBruteForce(t *testing.T) {
	for _, width := range []float64{80, 150, 450, 2000} {
		s := DefaultCitySpec(200)
		s.Width = width
		s.Seed = 3
		root := rng.New(s.Seed)
		xs, ys := s.cityPositions(root)
		grid := newCityGrid(s, xs, ys)

		want := map[[2]int]bool{}
		for i := 0; i < s.Nodes; i++ {
			for j := i + 1; j < s.Nodes; j++ {
				if torusDist(xs[i], ys[i], xs[j], ys[j], s.Width) < s.Range {
					want[[2]int{i, j}] = true
				}
			}
		}
		got := map[[2]int]bool{}
		for i := 0; i < s.Nodes; i++ {
			grid.neighborhood(xs[i], ys[i], func(j int32) {
				if int(j) > i && torusDist(xs[i], ys[i], xs[int(j)], ys[int(j)], s.Width) < s.Range {
					if got[[2]int{i, int(j)}] {
						t.Fatalf("width %v: pair (%d,%d) visited twice", width, i, j)
					}
					got[[2]int{i, int(j)}] = true
				}
			})
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("width %v: grid found %d pairs, brute force %d", width, len(got), len(want))
		}
	}
}

// TestCityPoissonSanity checks the statistical model: the busiest
// pair's inter-contact gaps follow the exponential law at that pair's
// distance-derived rate (two-sample KS), and the total contact count
// sits near its analytic expectation.
func TestCityPoissonSanity(t *testing.T) {
	s := DefaultCitySpec(40)
	s.Horizon = 10 * 86400
	s.Seed = 11
	tr, err := CityScale(s)
	if err != nil {
		t.Fatal(err)
	}

	root := rng.New(s.Seed)
	xs, ys := s.cityPositions(root)

	// Analytic expected total: sum of rate*Horizon over in-range pairs.
	expected := 0.0
	for i := 0; i < s.Nodes; i++ {
		for j := i + 1; j < s.Nodes; j++ {
			expected += s.cityRate(torusDist(xs[i], ys[i], xs[j], ys[j], s.Width)) * s.Horizon
		}
	}
	got := float64(len(tr.Contacts))
	// Poisson sum: sd = sqrt(mean); allow 6 sigma.
	if sigma := math.Sqrt(expected); math.Abs(got-expected) > 6*sigma {
		t.Errorf("total contacts %v too far from expectation %v (sd %v)", got, expected, sigma)
	}

	// Busiest pair's inter-contact gaps vs a reference exponential
	// sample at the same rate.
	counts := map[[2]int]int{}
	starts := map[[2]int][]float64{}
	for _, c := range tr.Contacts {
		k := [2]int{int(c.A), int(c.B)}
		counts[k]++
		starts[k] = append(starts[k], c.Start)
	}
	var best [2]int
	for k, n := range counts {
		if n > counts[best] {
			best = k
		}
	}
	st := starts[best]
	gaps := make([]float64, 0, len(st))
	prev := 0.0
	for _, v := range st {
		gaps = append(gaps, v-prev)
		prev = v
	}
	rate := s.cityRate(torusDist(xs[best[0]], ys[best[0]], xs[best[1]], ys[best[1]], s.Width))
	ref := rng.New(99).Split("city-ks-ref")
	refSample := make([]float64, 2000)
	for i := range refSample {
		refSample[i] = ref.Exp(rate)
	}
	same, d, err := stats.KSSameDistribution(gaps, refSample, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Errorf("busiest pair gaps (n=%d, rate=%v) rejected as exponential: KS=%v", len(gaps), rate, d)
	}
}

// TestCitySpecValidate covers the rejection paths.
func TestCitySpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CitySpec)
	}{
		{"one node", func(s *CitySpec) { s.Nodes = 1 }},
		{"too many nodes", func(s *CitySpec) { s.Nodes = 1<<24 + 1 }},
		{"zero width", func(s *CitySpec) { s.Width = 0 }},
		{"nan width", func(s *CitySpec) { s.Width = math.NaN() }},
		{"zero range", func(s *CitySpec) { s.Range = 0 }},
		{"negative ict", func(s *CitySpec) { s.MeanICT = -1 }},
		{"zero contact duration", func(s *CitySpec) { s.ContactSec = 0 }},
		{"zero horizon", func(s *CitySpec) { s.Horizon = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultCitySpec(100)
			tc.mutate(&s)
			if _, err := CityScale(s); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}
