package workload

// Open-loop load generation: the arrival schedule is drawn up front
// from the offered-rate process alone, so injection pressure never
// adapts to how the system is coping — the defining property of an
// open-loop load test. (The closed-loop alternative, waiting for the
// previous batch before offering more, silently throttles itself
// exactly when the system is saturated and hides the overload.)
// Arrivals are plain Poisson or a 2-state Markov-modulated Poisson
// process (MMPP-2, "bursty") calibrated so the long-run mean equals
// the configured target rate.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/contact"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Arrivals describes an open-loop arrival process.
type Arrivals struct {
	// Rate is the long-run mean arrival rate (messages per minute).
	Rate float64
	// Burst, when > 1, turns the process into an MMPP-2: the process
	// alternates calm and burst states, and the instantaneous rate in
	// burst is Burst x the calm rate. 0 or 1 means plain Poisson.
	Burst float64
	// BurstFraction is the long-run fraction of time spent in the
	// burst state (0 < f < 1 when Burst > 1).
	BurstFraction float64
	// BurstDwell is the mean duration of one burst episode (minutes).
	// Defaults to 5 when Burst > 1.
	BurstDwell float64
}

func (a Arrivals) validate() error {
	switch {
	case a.Rate <= 0:
		return fmt.Errorf("workload: arrival rate must be positive, got %v", a.Rate)
	case a.Burst < 0:
		return fmt.Errorf("workload: negative burst factor %v", a.Burst)
	case a.Burst > 1 && (a.BurstFraction <= 0 || a.BurstFraction >= 1):
		return fmt.Errorf("workload: burst fraction %v out of (0,1)", a.BurstFraction)
	case a.BurstDwell < 0:
		return fmt.Errorf("workload: negative burst dwell %v", a.BurstDwell)
	}
	return nil
}

func (a Arrivals) bursty() bool { return a.Burst > 1 }

// rates returns the calm and burst instantaneous rates, calibrated so
// the long-run mean is a.Rate: r_calm*(1-f) + Burst*r_calm*f = Rate.
func (a Arrivals) rates() (calm, burst float64) {
	if !a.bursty() {
		return a.Rate, a.Rate
	}
	calm = a.Rate / ((1 - a.BurstFraction) + a.Burst*a.BurstFraction)
	return calm, a.Burst * calm
}

// Schedule draws arrival times on [0, horizon) from the process. The
// schedule depends only on the stream and the horizon — never on the
// system under test.
func (a Arrivals) Schedule(horizon float64, s *rng.Stream) []float64 {
	calmRate, burstRate := a.rates()
	var times []float64
	if !a.bursty() {
		for t := s.Exp(calmRate); t < horizon; t += s.Exp(calmRate) {
			times = append(times, t)
		}
		return times
	}
	dwellBurst := a.BurstDwell
	if dwellBurst == 0 {
		dwellBurst = 5
	}
	// Mean calm dwell follows from the stationary burst fraction:
	// f = dwellBurst / (dwellBurst + dwellCalm).
	dwellCalm := dwellBurst * (1 - a.BurstFraction) / a.BurstFraction
	t, inBurst := 0.0, false
	switchAt := s.Exp(1 / dwellCalm)
	for t < horizon {
		rate := calmRate
		if inBurst {
			rate = burstRate
		}
		next := t + s.Exp(rate)
		if next >= switchAt {
			// The state flips before the tentative arrival; restart the
			// (memoryless) draw from the switch point in the new state.
			t = switchAt
			inBurst = !inBurst
			dwell := dwellCalm
			if inBurst {
				dwell = dwellBurst
			}
			switchAt = t + s.Exp(1/dwell)
			continue
		}
		t = next
		if t < horizon {
			times = append(times, t)
		}
	}
	return times
}

// OpenLoopSpec configures one open-loop run.
type OpenLoopSpec struct {
	Arrivals    Arrivals
	Horizon     float64 // injection window (sim minutes)
	Drain       float64 // extra window to let in-flight messages land
	PayloadSize int
	Relays      int
	Copies      int
	PadTo       int
	ExpiryAfter float64
	Seed        uint64
	// TrackBuffers samples total buffered onions after every contact;
	// PeakBuffered is zero without it.
	TrackBuffers bool
}

func (s OpenLoopSpec) validate() error {
	if err := s.Arrivals.validate(); err != nil {
		return err
	}
	switch {
	case s.Horizon <= 0:
		return fmt.Errorf("workload: horizon must be positive, got %v", s.Horizon)
	case s.Drain < 0:
		return fmt.Errorf("workload: negative drain %v", s.Drain)
	case s.Relays < 1:
		return fmt.Errorf("workload: need at least one relay group, got %d", s.Relays)
	case s.Copies < 1:
		return fmt.Errorf("workload: need at least one copy, got %d", s.Copies)
	case s.PayloadSize < 0:
		return fmt.Errorf("workload: negative payload size %d", s.PayloadSize)
	case s.ExpiryAfter < 0:
		return fmt.Errorf("workload: negative expiry %v", s.ExpiryAfter)
	}
	return nil
}

// OpenLoopResult aggregates one open-loop run.
type OpenLoopResult struct {
	Records   []Record
	Injected  int
	Delivered int
	// DeliveryRatio is Delivered/Injected, 0 when nothing was injected.
	DeliveryRatio float64
	// OfferedRate is the achieved injection rate over the window
	// (messages per minute) — under open-loop load it tracks the
	// configured rate regardless of how the system copes.
	OfferedRate float64
	// Latencies holds one send-to-delivery delay (sim minutes) per
	// delivered message; empty when nothing was delivered.
	Latencies    []float64
	PeakBuffered int
	Totals       node.Stats
}

// LatencyQuantile returns the q-quantile of delivery latency and
// whether any message was delivered. A false second return means the
// quantile is undefined — never 0, which would read as "instant".
func (r *OpenLoopResult) LatencyQuantile(q float64) (float64, bool) {
	if len(r.Latencies) == 0 {
		return 0, false
	}
	return stats.Quantile(r.Latencies, q), true
}

// FormatLatency renders a latency quantile for human output, with the
// zero-delivered path spelled out instead of NaN or a division panic.
func (r *OpenLoopResult) FormatLatency(q float64) string {
	v, ok := r.LatencyQuantile(q)
	if !ok {
		return "n/a (nothing delivered)"
	}
	return fmt.Sprintf("%.2f min", v)
}

// SLO is a service-level objective for a sustained-load run. Zero
// values disable the corresponding check.
type SLO struct {
	MinDeliveryRatio float64 // delivered/injected must be >= this
	MaxP50           float64 // median delivery latency bound (minutes)
	MaxP99           float64 // p99 delivery latency bound (minutes)
}

// SLOVerdict is the outcome of checking a run against an SLO.
type SLOVerdict struct {
	Pass     bool
	Breaches []string // one human-readable line per violated objective
}

// CheckSLO evaluates the run against the objectives. A run that
// delivered nothing breaches any configured latency bound (unbounded
// latency), rather than vacuously passing.
func (r *OpenLoopResult) CheckSLO(slo SLO) SLOVerdict {
	v := SLOVerdict{Pass: true}
	fail := func(format string, args ...any) {
		v.Pass = false
		v.Breaches = append(v.Breaches, fmt.Sprintf(format, args...))
	}
	if slo.MinDeliveryRatio > 0 && r.DeliveryRatio < slo.MinDeliveryRatio {
		fail("delivery ratio %.4f < %.4f", r.DeliveryRatio, slo.MinDeliveryRatio)
	}
	checkQ := func(name string, q, bound float64) {
		if bound <= 0 {
			return
		}
		lat, ok := r.LatencyQuantile(q)
		if !ok {
			fail("%s latency unbounded: nothing delivered (bound %.2f min)", name, bound)
			return
		}
		if lat > bound {
			fail("%s latency %.2f min > %.2f min", name, lat, bound)
		}
	}
	checkQ("p50", 0.50, slo.MaxP50)
	checkQ("p99", 0.99, slo.MaxP99)
	return v
}

// RunOpenLoop drives the network with an open-loop arrival schedule
// over synthetic contacts on g. Arrivals stop at spec.Horizon; the
// contact process keeps running through spec.Drain so in-flight
// messages can land. The run never ends early because the system is
// keeping up — offered load is independent of outcomes.
func RunOpenLoop(nw *node.Network, g *contact.Graph, spec OpenLoopSpec) (*OpenLoopResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	root := rng.New(spec.Seed)
	times := spec.Arrivals.Schedule(spec.Horizon, root.Split("arrivals"))
	endpoints := root.Split("endpoints")
	n := g.N()
	d := &driver{
		nw:      nw,
		graphN:  n,
		pending: make(map[string]int),
		rng:     root.Split("paths"),
		spec: Spec{
			PayloadSize:  spec.PayloadSize,
			Relays:       spec.Relays,
			Copies:       spec.Copies,
			PadTo:        spec.PadTo,
			ExpiryAfter:  spec.ExpiryAfter,
			TrackBuffers: spec.TrackBuffers,
		},
		openLoop: true,
	}
	for _, at := range times {
		src := contact.NodeID(endpoints.IntN(n))
		dst := contact.NodeID(endpoints.PickOther(n, int(src)))
		d.sends = append(d.sends, pendingSend{at: at, src: src, dst: dst})
	}
	sort.Slice(d.sends, func(i, j int) bool { return d.sends[i].at < d.sends[j].at })

	sim.RunSynthetic(g, spec.Horizon+spec.Drain, root.Split("contacts"), d)

	res := &OpenLoopResult{
		Records:      d.records,
		Injected:     len(d.records),
		PeakBuffered: d.peak,
		Totals:       nw.TotalStats(),
	}
	for _, r := range d.records {
		if r.Delivered {
			res.Delivered++
			res.Latencies = append(res.Latencies, r.DeliveredAt-r.SentAt)
		}
	}
	if res.Injected > 0 {
		res.DeliveryRatio = float64(res.Delivered) / float64(res.Injected)
	}
	res.OfferedRate = float64(res.Injected) / spec.Horizon
	return res, nil
}

// LatencyMillis converts a sim-minutes latency to integer
// milliseconds for histogram observation.
func LatencyMillis(minutes float64) int64 {
	return int64(math.Round(minutes * 60_000))
}

// ObserveDelivery records one delivery outcome into the active
// observability collector (no-op when collection is disabled).
func ObserveDelivery(latencyMinutes float64) {
	if c := obs.Active(); c != nil {
		c.Add(obs.LoadDelivered, 1)
		c.Observe(obs.HistLoadLatencyMillis, LatencyMillis(latencyMinutes))
	}
}
