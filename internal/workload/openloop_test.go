package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/node"
	"repro/internal/rng"
)

func TestArrivalsValidation(t *testing.T) {
	bad := []Arrivals{
		{Rate: 0},
		{Rate: -1},
		{Rate: 1, Burst: -2},
		{Rate: 1, Burst: 4},                      // bursty without a fraction
		{Rate: 1, Burst: 4, BurstFraction: 1},    // fraction not in (0,1)
		{Rate: 1, Burst: 4, BurstFraction: -0.1}, // fraction not in (0,1)
		{Rate: 1, Burst: 4, BurstFraction: 0.2, BurstDwell: -1},
	}
	for i, a := range bad {
		if err := a.validate(); err == nil {
			t.Errorf("arrivals %d accepted: %+v", i, a)
		}
	}
	good := []Arrivals{
		{Rate: 2},
		{Rate: 2, Burst: 1}, // factor 1 = plain Poisson
		{Rate: 2, Burst: 8, BurstFraction: 0.1},
	}
	for i, a := range good {
		if err := a.validate(); err != nil {
			t.Errorf("arrivals %d rejected: %v", i, err)
		}
	}
}

// TestScheduleRateCalibration: both the plain Poisson and the MMPP-2
// schedule must achieve the configured long-run mean rate. The MMPP
// calibration divides the calm rate down so bursts do not inflate the
// mean.
func TestScheduleRateCalibration(t *testing.T) {
	const horizon, rate = 50_000.0, 2.0
	cases := map[string]Arrivals{
		"poisson": {Rate: rate},
		"mmpp":    {Rate: rate, Burst: 6, BurstFraction: 0.2, BurstDwell: 10},
	}
	for name, a := range cases {
		times := a.Schedule(horizon, rng.New(11))
		got := float64(len(times)) / horizon
		if math.Abs(got-rate)/rate > 0.05 {
			t.Errorf("%s: achieved rate %.3f, want %.1f ±5%%", name, got, rate)
		}
		for i, at := range times {
			if at < 0 || at >= horizon {
				t.Fatalf("%s: arrival %d at %v outside [0, %v)", name, i, at, horizon)
			}
			if i > 0 && at < times[i-1] {
				t.Fatalf("%s: arrivals out of order at %d", name, i)
			}
		}
	}
}

// TestMMPPBurstier: with the same mean rate, the MMPP-2 process must
// show more count variance over fixed windows than plain Poisson —
// that is the point of modeling bursts.
func TestMMPPBurstier(t *testing.T) {
	const horizon, rate, window = 20_000.0, 2.0, 50.0
	variance := func(times []float64) float64 {
		bins := make([]float64, int(horizon/window))
		for _, at := range times {
			bins[int(at/window)]++
		}
		mean := 0.0
		for _, c := range bins {
			mean += c
		}
		mean /= float64(len(bins))
		v := 0.0
		for _, c := range bins {
			v += (c - mean) * (c - mean)
		}
		return v / float64(len(bins))
	}
	poisson := variance(Arrivals{Rate: rate}.Schedule(horizon, rng.New(13)))
	mmpp := variance(Arrivals{Rate: rate, Burst: 8, BurstFraction: 0.15, BurstDwell: 20}.Schedule(horizon, rng.New(13)))
	if mmpp < 2*poisson {
		t.Fatalf("MMPP window variance %.2f not clearly above Poisson %.2f", mmpp, poisson)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Arrivals{Rate: 3, Burst: 5, BurstFraction: 0.25}
	x := a.Schedule(1000, rng.New(17))
	y := a.Schedule(1000, rng.New(17))
	if len(x) != len(y) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestRunOpenLoopDelivers(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 30, GroupSize: 5, Seed: 23})
	spec := OpenLoopSpec{
		Arrivals:    Arrivals{Rate: 0.5},
		Horizon:     100,
		Drain:       5000,
		PayloadSize: 64,
		Relays:      2,
		Copies:      1,
		Seed:        24,
	}
	res, err := RunOpenLoop(nw, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if got := res.OfferedRate; math.Abs(got-0.5) > 0.3 {
		t.Errorf("offered rate %.3f far from target 0.5", got)
	}
	if res.DeliveryRatio < 0.9 {
		t.Fatalf("delivery ratio %.3f with a generous drain", res.DeliveryRatio)
	}
	if len(res.Latencies) != res.Delivered {
		t.Fatalf("%d latencies for %d deliveries", len(res.Latencies), res.Delivered)
	}
	p50, ok := res.LatencyQuantile(0.50)
	if !ok || p50 <= 0 {
		t.Fatalf("p50 = %v, %v", p50, ok)
	}
	p99, _ := res.LatencyQuantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %.2f < p50 %.2f", p99, p50)
	}
	v := res.CheckSLO(SLO{MinDeliveryRatio: 0.5, MaxP99: p99 + 1})
	if !v.Pass {
		t.Fatalf("generous SLO breached: %v", v.Breaches)
	}
	v = res.CheckSLO(SLO{MinDeliveryRatio: 1.1})
	if v.Pass || len(v.Breaches) != 1 {
		t.Fatalf("impossible SLO passed: %+v", v)
	}
}

// TestZeroDeliveredPathPinned pins the zero-delivered guard the old
// closed-loop example lacked: every latency accessor must degrade
// explicitly instead of dividing by zero or calling Quantile on an
// empty slice.
func TestZeroDeliveredPathPinned(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 10, GroupSize: 2, Seed: 29})
	// Sub-millisecond expiry: every onion dies at the contact after its
	// injection, so nothing is ever delivered while injection proceeds
	// at full rate.
	res, err := RunOpenLoop(nw, g, OpenLoopSpec{
		Arrivals:    Arrivals{Rate: 1},
		Horizon:     200,
		Relays:      1,
		Copies:      1,
		ExpiryAfter: 1e-9,
		Seed:        30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("open-loop injection must proceed even when nothing delivers")
	}
	if res.Delivered != 0 {
		t.Skipf("%d messages beat the expiry; cannot pin the zero path", res.Delivered)
	}
	if res.DeliveryRatio != 0 {
		t.Fatalf("delivery ratio = %v, want exactly 0", res.DeliveryRatio)
	}
	if _, ok := res.LatencyQuantile(0.99); ok {
		t.Fatal("quantile reported defined with zero deliveries")
	}
	if s := res.FormatLatency(0.99); !strings.Contains(s, "n/a") {
		t.Fatalf("FormatLatency = %q, want an explicit n/a", s)
	}
	// A latency SLO must breach (unbounded latency), not vacuously pass.
	if v := res.CheckSLO(SLO{MaxP99: 60}); v.Pass {
		t.Fatal("latency SLO passed with zero deliveries")
	}
}

// TestZeroInjectedPath: an empty schedule (or a contact process that
// never fires) yields zeros, not NaN.
func TestZeroInjectedPath(t *testing.T) {
	res := &OpenLoopResult{}
	if res.DeliveryRatio != 0 || len(res.Latencies) != 0 {
		t.Fatalf("zero value corrupt: %+v", res)
	}
	if s := res.FormatLatency(0.5); !strings.Contains(s, "n/a") {
		t.Fatalf("FormatLatency = %q", s)
	}
	if v := res.CheckSLO(SLO{MinDeliveryRatio: 0.5}); v.Pass {
		t.Fatal("ratio SLO passed with zero injected")
	}
}

func TestOpenLoopSpecValidation(t *testing.T) {
	nw, g := testSetup(t, node.Config{Nodes: 10, GroupSize: 2, Seed: 31})
	bad := []OpenLoopSpec{
		{Arrivals: Arrivals{Rate: 0}, Horizon: 10, Relays: 1, Copies: 1},
		{Arrivals: Arrivals{Rate: 1}, Horizon: 0, Relays: 1, Copies: 1},
		{Arrivals: Arrivals{Rate: 1}, Horizon: 10, Drain: -1, Relays: 1, Copies: 1},
		{Arrivals: Arrivals{Rate: 1}, Horizon: 10, Relays: 0, Copies: 1},
		{Arrivals: Arrivals{Rate: 1}, Horizon: 10, Relays: 1, Copies: 0},
		{Arrivals: Arrivals{Rate: 1}, Horizon: 10, Relays: 1, Copies: 1, PayloadSize: -1},
		{Arrivals: Arrivals{Rate: 1}, Horizon: 10, Relays: 1, Copies: 1, ExpiryAfter: -1},
	}
	for i, spec := range bad {
		if _, err := RunOpenLoop(nw, g, spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestLatencyMillis(t *testing.T) {
	cases := []struct {
		minutes float64
		want    int64
	}{
		{0, 0}, {1, 60_000}, {0.5, 30_000}, {1.0 / 60_000, 1},
	}
	for _, c := range cases {
		if got := LatencyMillis(c.minutes); got != c.want {
			t.Errorf("LatencyMillis(%v) = %d, want %d", c.minutes, got, c.want)
		}
	}
}
