// Package resultcache is the content-addressed trial result store: a
// directory of cache entries, one per (spec content, effort options,
// seed) triple, each holding the gob encodings of completed Monte
// Carlo trials keyed by (batch, trial index).
//
// It differs from internal/checkpoint in two deliberate ways:
//
//   - Addressing. A checkpoint is keyed by the git revision of the
//     writing binary, so every commit invalidates it. A cache entry is
//     addressed by a sha256 content hash of the spec's numerical
//     inputs (base config, axis params and values, measurement
//     parameters, effort options, seed) — computed by the caller, e.g.
//     scenario.ContentKey — so unchanged (spec, seed, trial) cells
//     survive commits that do not touch them, and regenerating every
//     figure after a one-spec edit recomputes only the edited spec.
//   - Sharing. A checkpoint has one writer. A cache entry is a shared
//     directory written by a whole fleet: every worker appends to its
//     own shard log (single-writer, so appends never interleave) and
//     reads everyone's shards, which is what the work-stealing
//     dispatch layer (internal/dispatch) builds on.
//
// # Layout
//
//	cachedir/
//	  <content-key>/            one entry per content hash (hex sha256)
//	    meta.json               spec id, key, seed, creation time (tooling)
//	    shard-<owner>.log       frame logs (checkpoint format), one per writer
//	    leases/                 dispatch lease files (transient)
//
// Shards reuse the checkpoint frame-log format byte for byte, with the
// content sentinel in place of a git revision in the key frame, so the
// same torn-tail repair and corruption classification applies. Reading
// a shard that another live process is appending to is safe: a torn
// trailing frame is simply retried on the next Refresh.
package resultcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
)

// ContentRevision is the sentinel stored in the key frame's revision
// slot of every cache shard. It marks the file as content-addressed —
// valid across git revisions — distinguishing it from a per-run
// checkpoint, which a specific revision wrote.
const ContentRevision = "content-addressed"

// metaFile is the per-entry description written for tooling.
const metaFile = "meta.json"

// leaseSubdir holds the dispatch layer's transient lease files.
const leaseSubdir = "leases"

// Meta describes one cache entry for tooling (obscheck -cache listing
// and garbage collection). It never influences results.
type Meta struct {
	SpecID  string    `json:"specId"`
	Key     string    `json:"key"`
	Seed    uint64    `json:"seed"`
	Created time.Time `json:"created"`
}

// keyPattern is the shape of a content key directory name: a full hex
// sha256. Anything else under the cache root is ignored by tooling.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ownerPattern restricts shard owner names to filename-safe bytes.
var ownerPattern = regexp.MustCompile(`[^0-9A-Za-z._-]`)

// SanitizeOwner maps an arbitrary owner string (hostname-pid, test
// names) to a filename-safe shard suffix.
func SanitizeOwner(owner string) string {
	if owner == "" {
		return "anon"
	}
	return ownerPattern.ReplaceAllString(owner, "-")
}

type recordKey struct {
	batch string
	trial int
}

// Store is one open cache entry: an append handle on this worker's own
// shard plus an in-memory index over every complete record of every
// shard read so far. Safe for concurrent use; Refresh picks up records
// appended by other workers since the last scan.
type Store struct {
	mu      sync.Mutex
	dir     string // entry directory
	key     checkpoint.Key
	own     *os.File
	ownPath string
	loaded  map[recordKey][]byte
	offsets map[string]int // per-shard resume offset for incremental Refresh
}

// Open opens (creating if needed) the cache entry for contentKey under
// dir, with this worker appending to shard-<owner>.log. specID and
// seed are recorded in the entry's meta.json for tooling; every shard
// in the entry must carry the same (ContentRevision, contentKey, seed)
// key or Open/Refresh fail loudly — a foreign shard means a content
// hash collision or a corrupted cache, never something to paper over.
func Open(dir, contentKey, specID string, seed uint64, owner string) (*Store, error) {
	if !keyPattern.MatchString(contentKey) {
		return nil, fmt.Errorf("resultcache: content key %q is not a hex sha256", contentKey)
	}
	entry := filepath.Join(dir, contentKey)
	if err := os.MkdirAll(filepath.Join(entry, leaseSubdir), 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: create entry %s: %w", entry, err)
	}
	if _, err := os.Stat(filepath.Join(entry, metaFile)); errors.Is(err, os.ErrNotExist) {
		meta := Meta{SpecID: specID, Key: contentKey, Seed: seed, Created: time.Now().UTC()}
		data, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("resultcache: marshal meta: %w", err)
		}
		if err := atomicio.WriteFile(filepath.Join(entry, metaFile), append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	key := checkpoint.Key{GitRevision: ContentRevision, SpecHash: contentKey, Seed: seed}
	s := &Store{
		dir:     entry,
		key:     key,
		ownPath: filepath.Join(entry, "shard-"+SanitizeOwner(owner)+".log"),
		loaded:  make(map[recordKey][]byte),
		offsets: make(map[string]int),
	}
	if err := s.openOwnShard(); err != nil {
		return nil, err
	}
	if err := s.Refresh(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// openOwnShard creates this worker's shard, or reopens a leftover one
// from a previous process with the same owner name (repairing a torn
// tail exactly like checkpoint.Resume).
func (s *Store) openOwnShard() error {
	if _, err := os.Stat(s.ownPath); errors.Is(err, os.ErrNotExist) {
		hdr, err := checkpoint.HeaderBytes(s.key)
		if err != nil {
			return err
		}
		if err := atomicio.WriteFile(s.ownPath, hdr, 0o644); err != nil {
			return err
		}
	} else {
		data, err := os.ReadFile(s.ownPath)
		if err != nil {
			return fmt.Errorf("resultcache: read %s: %w", s.ownPath, err)
		}
		gotKey, off, err := checkpoint.DecodeHeader(data)
		if err != nil {
			return fmt.Errorf("resultcache: %s: %w", s.ownPath, err)
		}
		if gotKey != s.key {
			return fmt.Errorf("resultcache: %s: shard key %+v does not match entry key %+v: %w",
				s.ownPath, gotKey, s.key, checkpoint.ErrKeyMismatch)
		}
		_, validEnd, derr := checkpoint.DecodeRecordsFrom(data, off)
		if derr != nil {
			if !errors.Is(derr, checkpoint.ErrTruncated) {
				return fmt.Errorf("resultcache: %s: %w", s.ownPath, derr)
			}
			// Our own previous process died mid-append: repair the tail
			// before appending new frames after it.
			if err := os.Truncate(s.ownPath, int64(validEnd)); err != nil {
				return fmt.Errorf("resultcache: repair torn tail of %s: %w", s.ownPath, err)
			}
		}
	}
	f, err := os.OpenFile(s.ownPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultcache: open shard for append: %w", err)
	}
	s.own = f
	return nil
}

// Refresh scans every shard in the entry for records appended since
// the last scan (or ever, on the first call), merging them into the
// in-memory index. Records are bit-identical regardless of which
// worker computed them — the determinism contract — so duplicate
// (batch, trial) records from racing workers are harmless overwrites.
// A torn trailing frame in a shard another process is actively writing
// is not an error: the scan stops at the last complete frame and
// resumes from there next time.
//
// Only the tail past each shard's stored resume offset is read —
// Refresh is polled by every waiting dispatch worker, so I/O per poll
// must scale with new appends, not with total cache size.
func (s *Store) Refresh() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, "shard-*.log"))
	if err != nil {
		return fmt.Errorf("resultcache: scan shards: %w", err)
	}
	sort.Strings(paths)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, path := range paths {
		if err := s.refreshShard(path); err != nil {
			return err
		}
	}
	return nil
}

// refreshShard merges one shard's newly appended records into the
// index. A shard seen before is read from its last valid frame
// boundary only (frames are self-delimiting, so decoding can start at
// any prior validEnd); an unseen shard is read in full so its key
// frame can be verified against the entry key.
func (s *Store) refreshShard(path string) error {
	base, seen := s.offsets[path]
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // pruned by GC between glob and open
		}
		return fmt.Errorf("resultcache: open %s: %w", path, err)
	}
	defer f.Close()
	if seen {
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("resultcache: stat %s: %w", path, err)
		}
		if st.Size() <= int64(base) {
			return nil // no appends since the last scan
		}
		if _, err := f.Seek(int64(base), io.SeekStart); err != nil {
			return fmt.Errorf("resultcache: seek %s: %w", path, err)
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("resultcache: read %s: %w", path, err)
	}
	off := 0
	if !seen {
		gotKey, hdrEnd, err := checkpoint.DecodeHeader(data)
		if err != nil {
			if errors.Is(err, checkpoint.ErrTruncated) {
				return nil // another process is mid-create; retry later
			}
			return fmt.Errorf("resultcache: %s: %w", path, err)
		}
		if gotKey != s.key {
			return fmt.Errorf("resultcache: %s: shard key %+v does not match entry key %+v: %w",
				path, gotKey, s.key, checkpoint.ErrKeyMismatch)
		}
		off = hdrEnd
	}
	records, validEnd, derr := checkpoint.DecodeRecordsFrom(data, off)
	if derr != nil && !errors.Is(derr, checkpoint.ErrTruncated) {
		return fmt.Errorf("resultcache: %s: %w", path, derr)
	}
	for _, r := range records {
		s.loaded[recordKey{r.Batch, r.Trial}] = r.Data
	}
	s.offsets[path] = base + validEnd
	return nil
}

// Peek returns the stored encoding of one trial, consulting only the
// in-memory index (call Refresh to pick up other workers' appends).
func (s *Store) Peek(batch string, trial int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.loaded[recordKey{batch, trial}]
	return data, ok
}

// Has reports whether the index holds the trial.
func (s *Store) Has(batch string, trial int) bool {
	_, ok := s.Peek(batch, trial)
	return ok
}

// Lookup implements runner.ResultStore as an alias of Peek, so a Store
// can also serve as a plain (non-fleet) checkpoint replacement.
func (s *Store) Lookup(batch string, trial int) ([]byte, bool) { return s.Peek(batch, trial) }

// Save durably appends one completed trial result to this worker's
// shard (a single write, so a SIGKILL tears at most the in-flight
// frame) and indexes it.
func (s *Store) Save(batch string, trial int, data []byte) error {
	frame, err := checkpoint.EncodeRecord(checkpoint.Record{Batch: batch, Trial: trial, Data: data})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.own == nil {
		return errors.New("resultcache: store is closed")
	}
	if _, err := s.own.Write(frame); err != nil {
		return fmt.Errorf("resultcache: append record: %w", err)
	}
	s.loaded[recordKey{batch, trial}] = data
	return nil
}

// Loaded reports how many distinct (batch, trial) records the index
// currently holds.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.loaded)
}

// LeaseDir returns the entry's lease directory for the dispatch layer.
func (s *Store) LeaseDir() string { return filepath.Join(s.dir, leaseSubdir) }

// Dir returns the entry directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the shard append handle. Safe to call more than once.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.own == nil {
		return nil
	}
	err := s.own.Close()
	s.own = nil
	return err
}
