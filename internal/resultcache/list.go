package resultcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/checkpoint"
)

// EntryInfo summarizes one cache entry for tooling: its identity from
// meta.json plus counts recovered by scanning the shard logs.
type EntryInfo struct {
	Meta
	Shards int // shard log files in the entry
	Trials int // distinct (batch, trial) records across all shards
}

// List scans a cache directory and returns a summary of every entry,
// sorted by spec ID then key. Subdirectories that are not hex sha256
// names are ignored (the cache root may be shared with other state);
// an entry with a malformed meta.json or an unreadable shard is
// reported as an error, never skipped silently.
func List(dir string) ([]EntryInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultcache: read cache dir %s: %w", dir, err)
	}
	var out []EntryInfo
	for _, e := range ents {
		if !e.IsDir() || !keyPattern.MatchString(e.Name()) {
			continue
		}
		info, err := describe(filepath.Join(dir, e.Name()), e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SpecID != out[j].SpecID {
			return out[i].SpecID < out[j].SpecID
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// describe builds the EntryInfo for one entry directory.
func describe(entry, key string) (EntryInfo, error) {
	var info EntryInfo
	data, err := os.ReadFile(filepath.Join(entry, metaFile))
	if err != nil {
		return EntryInfo{}, fmt.Errorf("resultcache: entry %s: %w", key, err)
	}
	if err := json.Unmarshal(data, &info.Meta); err != nil {
		return EntryInfo{}, fmt.Errorf("resultcache: entry %s: malformed %s: %w", key, metaFile, err)
	}
	if info.Key != key {
		return EntryInfo{}, fmt.Errorf("resultcache: entry %s: %s claims key %s", key, metaFile, info.Key)
	}
	paths, err := filepath.Glob(filepath.Join(entry, "shard-*.log"))
	if err != nil {
		return EntryInfo{}, fmt.Errorf("resultcache: entry %s: %w", key, err)
	}
	sort.Strings(paths)
	seen := make(map[recordKey]struct{})
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return EntryInfo{}, fmt.Errorf("resultcache: read %s: %w", p, err)
		}
		_, off, err := checkpoint.DecodeHeader(data)
		if err != nil {
			return EntryInfo{}, fmt.Errorf("resultcache: %s: %w", p, err)
		}
		records, _, derr := checkpoint.DecodeRecordsFrom(data, off)
		if derr != nil && !errors.Is(derr, checkpoint.ErrTruncated) {
			return EntryInfo{}, fmt.Errorf("resultcache: %s: %w", p, derr)
		}
		for _, r := range records {
			seen[recordKey{r.Batch, r.Trial}] = struct{}{}
		}
	}
	info.Shards = len(paths)
	info.Trials = len(seen)
	return info, nil
}

// GC removes every entry whose meta.json spec ID is not accepted by
// keep, returning the removed entries' summaries. Entries the keep
// predicate accepts are untouched; unreadable entries abort the sweep
// before anything is deleted, so a corrupt cache is never half-pruned.
func GC(dir string, keep func(specID string) bool) ([]EntryInfo, error) {
	all, err := List(dir)
	if err != nil {
		return nil, err
	}
	var pruned []EntryInfo
	for _, info := range all {
		if keep(info.SpecID) {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, info.Key)); err != nil {
			return pruned, fmt.Errorf("resultcache: prune entry %s: %w", info.Key, err)
		}
		pruned = append(pruned, info)
	}
	return pruned, nil
}
