package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

func testKey(t *testing.T, salt string) string {
	t.Helper()
	sum := sha256.Sum256([]byte(salt))
	return hex.EncodeToString(sum[:])
}

func TestOpenRejectsBadKey(t *testing.T) {
	if _, err := Open(t.TempDir(), "not-a-hash", "spec", 1, "w"); err == nil {
		t.Fatal("Open accepted a non-sha256 content key")
	}
}

func TestRoundtripAndReopen(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, "roundtrip")
	s, err := Open(dir, key, "fig-1", 42, "worker-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("fig-1/delivery/s0", 0, []byte("r0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("fig-1/delivery/s0", 3, []byte("r3")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Peek("fig-1/delivery/s0", 3); !ok || string(got) != "r3" {
		t.Fatalf("Peek = %q, %v; want r3, true", got, ok)
	}
	if s.Has("fig-1/delivery/s0", 1) {
		t.Fatal("Has reported an unsaved trial")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process with the same owner resumes the same shard.
	s2, err := Open(dir, key, "fig-1", 42, "worker-a")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != 2 {
		t.Fatalf("Loaded = %d after reopen; want 2", s2.Loaded())
	}
	if got, ok := s2.Lookup("fig-1/delivery/s0", 0); !ok || string(got) != "r0" {
		t.Fatalf("Lookup after reopen = %q, %v; want r0, true", got, ok)
	}
}

func TestRefreshSeesOtherWorkersShards(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, "fleet")
	a, err := Open(dir, key, "fig-1", 1, "worker-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, key, "fig-1", 1, "worker-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Save("batch", 0, []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Save("batch", 1, []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if a.Has("batch", 1) {
		t.Fatal("worker-a saw worker-b's record before Refresh")
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Peek("batch", 1); !ok || string(got) != "from-b" {
		t.Fatalf("after Refresh, Peek = %q, %v; want from-b, true", got, ok)
	}
	// Incremental: a second append is visible on the next Refresh too.
	if err := b.Save("batch", 2, []byte("more-b")); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !a.Has("batch", 2) {
		t.Fatal("incremental Refresh missed a later append")
	}
}

func TestRefreshToleratesTornForeignTail(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, "torn")
	a, err := Open(dir, key, "fig-1", 1, "worker-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, key, "fig-1", 1, "worker-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Save("batch", 0, []byte("complete")); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Simulate worker-b dying mid-append: tear its last frame.
	shard := filepath.Join(dir, key, "shard-worker-b.log")
	rec, err := checkpoint.EncodeRecord(checkpoint.Record{Batch: "batch", Trial: 1, Data: []byte("torn")})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(shard, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The live reader keeps the complete record and ignores the tear.
	if err := a.Refresh(); err != nil {
		t.Fatalf("Refresh failed on a foreign torn tail: %v", err)
	}
	if !a.Has("batch", 0) {
		t.Fatal("complete record lost behind a torn tail")
	}
	if a.Has("batch", 1) {
		t.Fatal("torn record surfaced as complete")
	}

	// The tail "heals" when the bytes complete; Refresh picks it up.
	f, err = os.OpenFile(shard, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[len(rec)-3:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Peek("batch", 1); !ok || string(got) != "torn" {
		t.Fatalf("healed record: Peek = %q, %v; want torn, true", got, ok)
	}
}

// TestRefreshReadsOnlyTheTail pins the incremental-scan contract: once
// a shard's prefix has been scanned, later Refreshes start from the
// stored offset and never revisit earlier bytes — I/O per poll scales
// with new appends, not total cache size. Scribbling over the
// already-scanned header is therefore invisible to the live reader.
func TestRefreshReadsOnlyTheTail(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, "tail")
	a, err := Open(dir, key, "fig-1", 1, "worker-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, key, "fig-1", 1, "worker-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Save("batch", 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Destroy the magic bytes of b's already-scanned header in place.
	// A reader that re-read the file from the start would now fail;
	// a tail-only reader never looks back.
	shard := filepath.Join(dir, key, "shard-worker-b.log")
	f, err := os.OpenFile(shard, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := b.Save("batch", 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatalf("Refresh re-read the scanned prefix: %v", err)
	}
	if got, ok := a.Peek("batch", 1); !ok || string(got) != "second" {
		t.Fatalf("tail append missed: Peek = %q, %v; want second, true", got, ok)
	}
}

func TestReopenRepairsOwnTornTail(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, "self-repair")
	s, err := Open(dir, key, "fig-1", 1, "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("batch", 0, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	shard := filepath.Join(dir, key, "shard-w.log")
	if f, err := os.OpenFile(shard, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		t.Fatal(err)
	} else {
		f.Write([]byte{9, 0, 0, 0}) // half a frame header
		f.Close()
	}

	s2, err := Open(dir, key, "fig-1", 1, "w")
	if err != nil {
		t.Fatalf("reopen over own torn tail: %v", err)
	}
	defer s2.Close()
	if !s2.Has("batch", 0) {
		t.Fatal("repair lost the complete record")
	}
	if err := s2.Save("batch", 1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	// The file must be fully valid again.
	s3, err := Open(dir, key, "fig-1", 1, "reader")
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Loaded() != 2 {
		t.Fatalf("after repair+append, Loaded = %d; want 2", s3.Loaded())
	}
}

func TestForeignShardKeyRejected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, "entry")
	s, err := Open(dir, key, "fig-1", 1, "w")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Plant a shard written under a different seed in the same entry.
	hdr, err := checkpoint.HeaderBytes(checkpoint.Key{GitRevision: ContentRevision, SpecHash: key, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key, "shard-evil.log"), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	err = s.Refresh()
	if !errors.Is(err, checkpoint.ErrKeyMismatch) {
		t.Fatalf("Refresh over a foreign shard: err = %v; want ErrKeyMismatch", err)
	}
}

func TestSanitizeOwner(t *testing.T) {
	for in, want := range map[string]string{
		"":             "anon",
		"host-1234":    "host-1234",
		"my host/12:x": "my-host-12-x",
		"a.b_c-D9":     "a.b_c-D9",
	} {
		if got := SanitizeOwner(in); got != want {
			t.Errorf("SanitizeOwner(%q) = %q; want %q", in, got, want)
		}
	}
}

func TestListAndGC(t *testing.T) {
	dir := t.TempDir()
	mk := func(salt, spec string, seed uint64, trials int) string {
		key := testKey(t, salt)
		s, err := Open(dir, key, spec, seed, "w")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < trials; i++ {
			if err := s.Save("b", i, []byte(fmt.Sprintf("t%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		return key
	}
	keyA := mk("a", "fig-1", 1, 3)
	keyB := mk("b", "fig-2", 1, 5)
	mk("c", "stale-spec", 7, 2)

	// Non-entry clutter must be ignored.
	if err := os.Mkdir(filepath.Join(dir, "not-a-key"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("List returned %d entries; want 3", len(infos))
	}
	byID := make(map[string]EntryInfo)
	for _, info := range infos {
		byID[info.SpecID] = info
	}
	if got := byID["fig-2"]; got.Trials != 5 || got.Shards != 1 || got.Key != keyB {
		t.Fatalf("fig-2 entry = %+v", got)
	}

	pruned, err := GC(dir, func(spec string) bool { return strings.HasPrefix(spec, "fig-") })
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0].SpecID != "stale-spec" {
		t.Fatalf("GC pruned %+v; want exactly stale-spec", pruned)
	}
	if _, err := os.Stat(filepath.Join(dir, keyA)); err != nil {
		t.Fatal("GC removed a kept entry")
	}
	infos, err = List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("after GC, List returned %d entries; want 2", len(infos))
	}
}
