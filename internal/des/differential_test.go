package des

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// The differential suite is the safety proof for the ladder-queue
// rewrite: the legacy binary heap (NewLegacyHeap) is the reference
// implementation, and randomized programs of scheduler operations are
// applied to both backends in lockstep. Any divergence in event
// execution order (including FIFO tie-breaks of simultaneous events),
// observed clock values, or queue lengths fails the test.

// diffEntry is one dispatched event in a machine's execution log.
type diffEntry struct {
	id  int
	now float64
}

// diffMachine drives one Scheduler and records its execution trace.
// Child scheduling and stop decisions are pure functions of the event
// id, so two machines given the same op program behave identically
// exactly when their backends dispatch in the same order.
type diffMachine struct {
	s      *Scheduler
	log    []diffEntry
	nextID int
	total  int // all events ever scheduled, to bound runaway growth
}

const diffMaxEvents = 20000

// diffDeltas are the quantized schedule offsets. Coarse repeated values
// force same-time collisions (exercising seq tie-breaks), the spread of
// magnitudes forces rung subdivision, and the sub-integer steps land
// events away from bucket boundaries and on them.
var diffDeltas = []float64{0, 0, 0, 0.25, 0.25, 0.5, 1, 1, 2.5, 7.75, 64, 513.25, 10000}

// diffChildren returns the child offsets event id spawns when it fires.
func diffChildren(id int) []float64 {
	h := uint64(id)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	h ^= h >> 29
	n := int(h % 4) // 0..3 children
	out := make([]float64, 0, n)
	for c := 0; c < n; c++ {
		out = append(out, diffDeltas[int((h>>(7*c+3))%uint64(len(diffDeltas)))])
	}
	return out
}

// diffStops reports whether event id calls Stop when it fires.
func diffStops(id int) bool {
	h := uint64(id) * 0xd1342543de82ef95
	return (h>>17)%23 == 0
}

func (m *diffMachine) schedule(delta float64) {
	if m.total >= diffMaxEvents {
		return
	}
	m.total++
	id := m.nextID
	m.nextID++
	m.s.At(m.s.Now()+delta, func() {
		m.log = append(m.log, diffEntry{id: id, now: m.s.Now()})
		for _, cd := range diffChildren(id) {
			m.schedule(cd)
		}
		if diffStops(id) {
			m.s.Stop()
		}
	})
}

// diffOp is one step of a lockstep program.
type diffOp struct {
	kind  byte    // 's' schedule, 'r' Run, 'u' RunUntil, 't' Step, 'x' Reset
	delta float64 // schedule offset or RunUntil horizon offset
}

func runDifferential(t *testing.T, ops []diffOp) {
	t.Helper()
	ladder := &diffMachine{s: New()}
	legacy := &diffMachine{s: NewLegacyHeap()}
	for opIdx, op := range ops {
		for _, m := range []*diffMachine{ladder, legacy} {
			switch op.kind {
			case 's':
				m.schedule(op.delta)
			case 'r':
				m.s.Run()
			case 'u':
				m.s.RunUntil(m.s.Now() + op.delta)
			case 't':
				m.s.Step()
			case 'x':
				m.s.Reset()
				// Logs intentionally survive Reset; ids keep counting.
			}
		}
		if ladder.s.Now() != legacy.s.Now() {
			t.Fatalf("op %d (%c): Now diverged: ladder=%v legacy=%v",
				opIdx, op.kind, ladder.s.Now(), legacy.s.Now())
		}
		if ladder.s.Len() != legacy.s.Len() {
			t.Fatalf("op %d (%c): Len diverged: ladder=%d legacy=%d",
				opIdx, op.kind, ladder.s.Len(), legacy.s.Len())
		}
		if len(ladder.log) != len(legacy.log) {
			t.Fatalf("op %d (%c): dispatched %d events on ladder, %d on legacy heap",
				opIdx, op.kind, len(ladder.log), len(legacy.log))
		}
	}
	for i := range ladder.log {
		a, b := ladder.log[i], legacy.log[i]
		if a != b {
			t.Fatalf("execution traces diverge at event %d: ladder fired id=%d t=%v, legacy fired id=%d t=%v",
				i, a.id, a.now, b.id, b.now)
		}
	}
	if len(ladder.log) == 0 {
		t.Fatal("differential program dispatched no events; program generator is broken")
	}
}

// opsFromStream generates a random lockstep program. Schedules dominate
// so queues grow deep enough to exercise rung subdivision.
func opsFromStream(s *rng.Stream, n int) []diffOp {
	kinds := []byte{'s', 's', 's', 's', 's', 's', 'r', 'u', 'u', 't', 't', 't', 'x'}
	ops := make([]diffOp, 0, n)
	for i := 0; i < n; i++ {
		op := diffOp{kind: kinds[s.IntN(len(kinds))]}
		switch op.kind {
		case 's':
			op.delta = diffDeltas[s.IntN(len(diffDeltas))]
		case 'u':
			op.delta = diffDeltas[s.IntN(len(diffDeltas))]
		}
		ops = append(ops, op)
	}
	// Drain whatever is left so the full schedule is compared.
	for i := 0; i < 50; i++ {
		ops = append(ops, diffOp{kind: 'r'})
	}
	return ops
}

// TestSchedulerDifferentialRandomPrograms runs many randomized lockstep
// programs over both backends.
func TestSchedulerDifferentialRandomPrograms(t *testing.T) {
	programs := 300
	if testing.Short() {
		programs = 30
	}
	root := rng.New(0xd1f)
	for p := 0; p < programs; p++ {
		p := p
		s := root.SplitN("program", p)
		t.Run(fmt.Sprintf("program%d", p), func(t *testing.T) {
			runDifferential(t, opsFromStream(s, 120))
		})
	}
}

// TestSchedulerDifferentialDeepQueue pushes one backlog far beyond the
// rung-subdivision threshold, with heavy same-time collisions, then
// drains: the shape that most stresses ladder bucket math.
func TestSchedulerDifferentialDeepQueue(t *testing.T) {
	s := rng.New(0xbeef).Split("deep")
	ops := make([]diffOp, 0, 6200)
	for i := 0; i < 6000; i++ {
		ops = append(ops, diffOp{kind: 's', delta: diffDeltas[s.IntN(len(diffDeltas))]})
	}
	// Interleave partial drains with refills at the advanced clock.
	for i := 0; i < 40; i++ {
		ops = append(ops, diffOp{kind: 'u', delta: 100})
		ops = append(ops, diffOp{kind: 's', delta: diffDeltas[s.IntN(len(diffDeltas))]})
	}
	ops = append(ops, diffOp{kind: 'r'})
	runDifferential(t, ops)
}

// TestSchedulerDifferentialAdversarialTimes drives times designed to
// sit exactly on bucket boundaries: powers of two, dense equal blocks,
// and values separated by one ulp.
func TestSchedulerDifferentialAdversarialTimes(t *testing.T) {
	var ops []diffOp
	base := 1024.0
	for i := 0; i < 600; i++ {
		switch i % 5 {
		case 0:
			ops = append(ops, diffOp{kind: 's', delta: base})
		case 1:
			ops = append(ops, diffOp{kind: 's', delta: base / 2})
		case 2:
			ops = append(ops, diffOp{kind: 's', delta: math.Nextafter(base, 2*base) - base + base})
		case 3:
			ops = append(ops, diffOp{kind: 's', delta: 0})
		case 4:
			ops = append(ops, diffOp{kind: 's', delta: base * 3})
		}
	}
	ops = append(ops, diffOp{kind: 'u', delta: base}, diffOp{kind: 'r'})
	runDifferential(t, ops)
}

// FuzzSchedulerDifferential lets the fuzzer search for a byte program
// whose op sequence makes the backends diverge.
func FuzzSchedulerDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 13, 13, 13, 42, 42})
	f.Add([]byte{'s', 'r', 'u', 't', 'x', 's', 's', 'r'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		kinds := []byte{'s', 's', 's', 's', 'u', 't', 'r', 'x'}
		var ops []diffOp
		for _, b := range data {
			op := diffOp{kind: kinds[int(b)%len(kinds)]}
			if op.kind == 's' || op.kind == 'u' {
				op.delta = diffDeltas[int(b>>3)%len(diffDeltas)]
			}
			ops = append(ops, op)
		}
		for i := 0; i < 50; i++ {
			ops = append(ops, diffOp{kind: 'r'})
		}
		// The fuzz harness tolerates programs that dispatch nothing.
		ladder := &diffMachine{s: New()}
		legacy := &diffMachine{s: NewLegacyHeap()}
		for opIdx, op := range ops {
			for _, m := range []*diffMachine{ladder, legacy} {
				switch op.kind {
				case 's':
					m.schedule(op.delta)
				case 'r':
					m.s.Run()
				case 'u':
					m.s.RunUntil(m.s.Now() + op.delta)
				case 't':
					m.s.Step()
				case 'x':
					m.s.Reset()
				}
			}
			if ladder.s.Now() != legacy.s.Now() || ladder.s.Len() != legacy.s.Len() || len(ladder.log) != len(legacy.log) {
				t.Fatalf("op %d (%c): state diverged: now %v vs %v, len %d vs %d, dispatched %d vs %d",
					opIdx, op.kind, ladder.s.Now(), legacy.s.Now(),
					ladder.s.Len(), legacy.s.Len(), len(ladder.log), len(legacy.log))
			}
		}
		for i := range ladder.log {
			if ladder.log[i] != legacy.log[i] {
				t.Fatalf("traces diverge at event %d: %+v vs %+v", i, ladder.log[i], legacy.log[i])
			}
		}
	})
}

// benchQueue measures the classic hold model (pop one, reschedule one
// exponential step ahead) at a steady queue depth n.
func benchQueue(b *testing.B, mk func() *Scheduler, n int) {
	s := mk()
	src := rng.New(1).Split("bench")
	var fire func()
	fire = func() { s.After(src.Exp(1), fire) }
	for i := 0; i < n; i++ {
		s.At(src.Exp(1), fire)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkHoldLadder1e3(b *testing.B) { benchQueue(b, New, 1000) }
func BenchmarkHoldLegacy1e3(b *testing.B) { benchQueue(b, NewLegacyHeap, 1000) }
func BenchmarkHoldLadder1e5(b *testing.B) { benchQueue(b, New, 100000) }
func BenchmarkHoldLegacy1e5(b *testing.B) { benchQueue(b, NewLegacyHeap, 100000) }
func BenchmarkHoldLadder1e6(b *testing.B) { benchQueue(b, New, 1000000) }
func BenchmarkHoldLegacy1e6(b *testing.B) { benchQueue(b, NewLegacyHeap, 1000000) }
