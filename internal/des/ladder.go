package des

import (
	"math"
	"sort"
)

// ladderQueue is a calendar-style priority queue (a "ladder queue",
// after Tang, Goh & Thng 2005) with O(1) amortized push and pop.
//
// Layout: far-future events accumulate unsorted in `top`; when the
// sorted structures drain, top is spread across a rung of equal-width
// buckets (one bucket per pending event on average). Dequeueing sorts
// one bucket at a time into `bottom`, which is consumed front-first;
// an overfull bucket is recursively spread across a narrower child
// rung instead of being sorted wholesale. Each event is therefore
// touched a constant number of times between push and pop.
//
// Correctness does not depend on where float rounding places bucket
// boundaries. Every pending event is routed by a walk that uses one
// monotone index function per rung (floor((t-start)/width)), and a
// bucket is only ever consumed after an exact (time, seq) sort; since
// the index is monotone in t, events in bucket k never have larger
// times than events in bucket k+1 of the same rung, and descent into a
// child rung is gated on the parent's own index function, so the
// structures partition pending events without ever deciding relative
// order of two events by inconsistent arithmetic. The only direct time
// comparison is against topStart, which is used exactly for both
// routing into top and draining it.
type ladderQueue struct {
	size int

	// top: unsorted far-future events with time >= topStart.
	top            []event
	topMin, topMax float64
	topStart       float64

	// rungs: rungs[0] is the widest (spawned from top); rungs[d+1]
	// subdivides the bucket rungs[d+1].ownerIdx of rungs[d].
	rungs []*ladderRung

	// bottom: sorted ascending by (time, seq), consumed from botIdx.
	bottom []event
	botIdx int
}

const (
	// ladderThres is the bucket size above which a bucket is spread
	// into a child rung rather than sorted directly.
	ladderThres = 64
	// ladderMaxRungs caps rung recursion; a bucket that cannot spawn
	// another rung is sorted wholesale, degrading gracefully to
	// O(m log m) for pathological time distributions.
	ladderMaxRungs = 8
)

// ladderRung is one array of equal-width buckets starting at start.
// Buckets before cur are consumed (drained into bottom or spread into
// a child rung).
type ladderRung struct {
	width   float64
	start   float64
	cur     int
	buckets [][]event
	size    int
	// ownerIdx is the bucket index in the PARENT rung this rung was
	// spawned from (-1 for the rung spawned from top). New events
	// descend into this rung only when the parent's index function
	// maps them to ownerIdx.
	ownerIdx int
}

func newLadderQueue() *ladderQueue { return &ladderQueue{} }

// rawIdx maps a time onto the rung's bucket axis with floor semantics
// (no clamping): negative for times below start.
func (r *ladderRung) rawIdx(t float64) int {
	return int(math.Floor((t - r.start) / r.width))
}

func (q *ladderQueue) len() int { return q.size }

func (q *ladderQueue) reset() {
	*q = ladderQueue{}
}

func (q *ladderQueue) push(e event) {
	if q.size == 0 {
		// Queue went empty: restart so pushes stay O(1) appends to top
		// instead of degenerating into sorted bottom inserts.
		q.top = q.top[:0]
		q.rungs = q.rungs[:0]
		q.bottom = q.bottom[:0]
		q.botIdx = 0
		q.topStart = e.time
	}
	q.size++
	if e.time >= q.topStart {
		if len(q.top) == 0 || e.time < q.topMin {
			q.topMin = e.time
		}
		if len(q.top) == 0 || e.time > q.topMax {
			q.topMax = e.time
		}
		q.top = append(q.top, e)
		return
	}
	// Walk the rung chain from widest to deepest. At each rung the
	// event either lands in a live bucket, descends into the child
	// subdividing an already-consumed bucket, or falls to bottom.
	for d := 0; d < len(q.rungs); d++ {
		r := q.rungs[d]
		idx := r.rawIdx(e.time)
		if idx >= len(r.buckets) {
			// Beyond the rung's nominal range: the last bucket is the
			// only structure between this rung and top, so it absorbs
			// the overflow (sorted before consumption). Clamp BEFORE
			// the liveness check — a fully-consumed rung must route the
			// event onward, never into a bucket that will not be
			// revisited.
			idx = len(r.buckets) - 1
		}
		if idx >= r.cur {
			r.buckets[idx] = append(r.buckets[idx], e)
			r.size++
			return
		}
		if d+1 < len(q.rungs) && idx == q.rungs[d+1].ownerIdx {
			continue // descend into the child rung
		}
		break // consumed region with no live child: imminent event
	}
	q.enqueueBottom(e)
}

// enqueueBottom adds an event destined for the sorted bottom. When no
// rung exists and bottom has grown past the bucket threshold — e.g. a
// burst of pushes below topStart into an otherwise empty queue — the
// bottom is converted into a rung first, keeping pushes O(1) amortized
// instead of degrading to O(n) sorted inserts.
func (q *ladderQueue) enqueueBottom(e event) {
	if len(q.rungs) == 0 && len(q.bottom)-q.botIdx >= ladderThres && q.bottomToRung(e) {
		return
	}
	q.insertBottom(e)
}

// bottomToRung spreads the pending bottom events plus e across a fresh
// rung (the queue has none). It refuses when the events cannot be
// subdivided, exactly like newChildRung.
func (q *ladderQueue) bottomToRung(e event) bool {
	evs := append([]event(nil), q.bottom[q.botIdx:]...)
	evs = append(evs, e)
	minT, maxT := evs[0].time, evs[0].time
	for _, v := range evs[1:] {
		if v.time < minT {
			minT = v.time
		}
		if v.time > maxT {
			maxT = v.time
		}
	}
	if minT == maxT {
		return false
	}
	width := (maxT - minT) / float64(len(evs))
	if !(width > 0) || minT+width == minT {
		return false
	}
	r := &ladderRung{width: width, start: minT, buckets: make([][]event, len(evs)+2), ownerIdx: -1}
	for _, v := range evs {
		r.place(v)
	}
	r.size = len(evs)
	q.rungs = append(q.rungs[:0], r)
	q.bottom = q.bottom[:0]
	q.botIdx = 0
	return true
}

// insertBottom places an event into the sorted bottom, preserving
// (time, seq) order among the unconsumed suffix.
func (q *ladderQueue) insertBottom(e event) {
	lo := q.botIdx
	pos := lo + sort.Search(len(q.bottom)-lo, func(k int) bool {
		return e.before(q.bottom[lo+k])
	})
	q.bottom = append(q.bottom, event{})
	copy(q.bottom[pos+1:], q.bottom[pos:])
	q.bottom[pos] = e
}

func (q *ladderQueue) peek() (event, bool) {
	if !q.ensureBottom() {
		return event{}, false
	}
	return q.bottom[q.botIdx], true
}

func (q *ladderQueue) pop() (event, bool) {
	if !q.ensureBottom() {
		return event{}, false
	}
	e := q.bottom[q.botIdx]
	q.bottom[q.botIdx] = event{} // release the callback reference
	q.botIdx++
	q.size--
	if q.botIdx >= len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.botIdx = 0
	}
	return e, true
}

// ensureBottom refills the sorted bottom from the rungs or the top
// until it holds the globally earliest pending events, and reports
// whether any event is pending.
func (q *ladderQueue) ensureBottom() bool {
	for q.botIdx >= len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.botIdx = 0
		switch {
		case len(q.rungs) > 0:
			q.refillFromRungs()
		case len(q.top) > 0:
			q.spawnFromTop()
		default:
			return false
		}
	}
	return true
}

// refillFromRungs advances the deepest rung: its next non-empty bucket
// is either sorted into bottom or, if overfull, spread into a child
// rung. Exhausted rungs are popped.
func (q *ladderQueue) refillFromRungs() {
	r := q.rungs[len(q.rungs)-1]
	if r.size == 0 {
		q.rungs = q.rungs[:len(q.rungs)-1]
		return
	}
	for r.cur < len(r.buckets) && len(r.buckets[r.cur]) == 0 {
		r.cur++
	}
	if r.cur >= len(r.buckets) {
		// Defensive: size and buckets disagree; drop the rung.
		q.rungs = q.rungs[:len(q.rungs)-1]
		return
	}
	k := r.cur
	b := r.buckets[k]
	r.buckets[k] = nil
	r.size -= len(b)
	r.cur++
	if len(b) > ladderThres && len(q.rungs) < ladderMaxRungs {
		if child, ok := newChildRung(r, k, b); ok {
			q.rungs = append(q.rungs, child)
			return
		}
	}
	sortEvents(b)
	q.bottom = b
	q.botIdx = 0
}

// spawnFromTop converts the unsorted top into the first rung, with one
// bucket per event on average, and raises topStart so new far-future
// events keep landing in top.
func (q *ladderQueue) spawnFromTop() {
	n := len(q.top)
	width := (q.topMax - q.topMin) / float64(n)
	if !(width > 0) || q.topMin+width == q.topMin {
		// All events effectively share one time: sort directly.
		sortEvents(q.top)
		q.bottom = q.top
		q.botIdx = 0
		q.top = nil
		q.topStart = q.topMax
		return
	}
	r := &ladderRung{width: width, start: q.topMin, buckets: make([][]event, n+2), ownerIdx: -1}
	for _, e := range q.top {
		r.place(e)
	}
	r.size = n
	q.rungs = append(q.rungs[:0], r)
	q.top = nil
	q.topStart = q.topMax
}

// newChildRung spreads an overfull bucket (index k of parent) across a
// narrower rung. It refuses (ok=false) when the events cannot be
// subdivided — width underflow or a single shared timestamp — in which
// case the caller sorts the bucket wholesale.
func newChildRung(parent *ladderRung, k int, b []event) (*ladderRung, bool) {
	width := parent.width / ladderThres
	start := parent.start + float64(k)*parent.width
	if !(width > 0) || start+width == start {
		return nil, false
	}
	minT, maxT := b[0].time, b[0].time
	for _, e := range b[1:] {
		if e.time < minT {
			minT = e.time
		}
		if e.time > maxT {
			maxT = e.time
		}
	}
	if minT == maxT {
		return nil, false
	}
	r := &ladderRung{
		width:    width,
		start:    start,
		buckets:  make([][]event, ladderThres+2),
		ownerIdx: k,
	}
	for _, e := range b {
		r.place(e)
	}
	r.size = len(b)
	return r, true
}

// place drops an event into the rung's bucket for its time, clamping
// stray indices (float rounding at range edges) into the valid range.
// Used only while building a rung, when every bucket is live.
func (r *ladderRung) place(e event) {
	idx := r.rawIdx(e.time)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.buckets) {
		idx = len(r.buckets) - 1
	}
	r.buckets[idx] = append(r.buckets[idx], e)
}

// sortEvents orders a bucket by (time, seq); seq is unique, so the
// order is total and the sort deterministic.
func sortEvents(b []event) {
	sort.Slice(b, func(i, j int) bool { return b[i].before(b[j]) })
}
