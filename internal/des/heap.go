package des

import "container/heap"

// heapQueue is the original container/heap event queue, kept as the
// reference backend for the differential suite (see NewLegacyHeap).
type heapQueue struct {
	h eventHeap
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{} // release the callback reference
	*h = old[:n-1]
	return e
}

func (q *heapQueue) push(e event) { heap.Push(&q.h, e) }

func (q *heapQueue) peek() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return q.h[0], true
}

func (q *heapQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return heap.Pop(&q.h).(event), true
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) reset() { q.h = q.h[:0] }
