package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Scheduler
	var got []float64
	for _, tt := range []float64{5, 1, 3, 2, 4} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	if n := s.Run(); n != 5 {
		t.Fatalf("dispatched %d events", n)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	var s Scheduler
	s.At(2, func() {
		if s.Now() != 2 {
			t.Fatalf("Now = %v inside event at 2", s.Now())
		}
	})
	s.Run()
	if s.Now() != 2 {
		t.Fatalf("Now = %v after run", s.Now())
	}
}

func TestAfter(t *testing.T) {
	var s Scheduler
	fired := 0.0
	s.At(3, func() {
		s.After(2, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 5 {
		t.Fatalf("After event fired at %v, want 5", fired)
	}
}

func TestAtPastPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	s.At(1, func() {})
}

func TestAfterNegativePanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestRunUntilHorizon(t *testing.T) {
	var s Scheduler
	var got []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	n := s.RunUntil(3)
	if n != 3 {
		t.Fatalf("dispatched %d, want 3 (inclusive horizon)", n)
	}
	if s.Len() != 2 {
		t.Fatalf("pending %d, want 2", s.Len())
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want horizon 3", s.Now())
	}
}

func TestRunUntilAdvancesClockToHorizonWhenEmpty(t *testing.T) {
	var s Scheduler
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("Now = %v, want 42", s.Now())
	}
}

func TestStopDuringRun(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	n := s.Run()
	if n != 4 || count != 4 {
		t.Fatalf("dispatched %d (count %d), want 4", n, count)
	}
	if s.Len() != 6 {
		t.Fatalf("pending %d, want 6", s.Len())
	}
}

func TestEventsScheduledDuringDispatch(t *testing.T) {
	var s Scheduler
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 5 {
			s.After(1, schedule)
		}
	}
	s.At(0, schedule)
	s.Run()
	if depth != 5 {
		t.Fatalf("chained depth %d, want 5", depth)
	}
	if s.Now() != 4 {
		t.Fatalf("Now = %v, want 4", s.Now())
	}
}

func TestReset(t *testing.T) {
	var s Scheduler
	s.At(1, func() {})
	s.At(2, func() {})
	s.Step()
	s.Reset()
	if s.Now() != 0 || s.Len() != 0 {
		t.Fatal("Reset did not clear state")
	}
	s.At(0.5, func() {}) // must not panic after reset
	s.Run()
}

func TestOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Scheduler
		var got []float64
		for _, r := range raw {
			tt := float64(r)
			s.At(tt, func() { got = append(got, tt) })
		}
		s.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Scheduler
		for j := 0; j < 1000; j++ {
			s.At(float64(j%97), func() {})
		}
		s.Run()
	}
}
