// Package des implements a minimal discrete-event scheduler: a
// time-ordered queue of callbacks with deterministic FIFO tie-breaking
// for simultaneous events. It underlies both the synthetic contact
// simulator and trace replay.
//
// The default event queue is a calendar-style ladder queue (ladder.go)
// with O(1) amortized schedule/pop, replacing the original binary heap
// whose O(log n) pops dominated city-scale runs. The heap is retained
// (NewLegacyHeap) as the reference implementation for the differential
// property suite: both backends pop in exactly (time, seq) order, so a
// randomized lockstep run over identical schedules must produce
// identical execution traces.
package des

import (
	"fmt"

	"repro/internal/obs"
)

// event is one scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for equal times
	fn   func()
}

// before reports whether e pops before o: strict (time, seq) order.
func (e event) before(o event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// eventQueue is the priority-queue contract shared by the ladder queue
// and the legacy binary heap: pop yields pending events in strictly
// ascending (time, seq) order.
type eventQueue interface {
	push(e event)
	// peek returns the next event without removing it.
	peek() (event, bool)
	// pop removes and returns the next event.
	pop() (event, bool)
	len() int
	reset()
}

// Scheduler orders and dispatches events. The zero value is ready to
// use and is backed by the ladder queue. Scheduler is not safe for
// concurrent use; simulations are single-threaded by design and
// parallelism happens across runs.
type Scheduler struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool
	// maxQueue tracks the deepest the pending queue has been — a plain
	// int so the per-event cost is one compare; it is flushed to the
	// observability layer when a Run/RunUntil drains.
	maxQueue int
}

// New returns a Scheduler backed by the calendar (ladder) queue — the
// same as the zero value.
func New() *Scheduler { return &Scheduler{} }

// NewLegacyHeap returns a Scheduler backed by the pre-ladder binary
// heap. It exists for the differential test suite and for paired
// queue benchmarks; behavior is identical to New.
func NewLegacyHeap() *Scheduler { return &Scheduler{queue: &heapQueue{}} }

// q returns the backing queue, installing the default ladder queue on
// first use so the zero value stays ready.
func (s *Scheduler) q() eventQueue {
	if s.queue == nil {
		s.queue = newLadderQueue()
	}
	return s.queue
}

// Now returns the current simulation time.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int {
	if s.queue == nil {
		return 0
	}
	return s.queue.len()
}

// At schedules fn to run at time t. Scheduling in the past (t < Now)
// panics: it would silently reorder causality.
func (s *Scheduler) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: event scheduled at %v before current time %v", t, s.now))
	}
	q := s.q()
	q.push(event{time: t, seq: s.seq, fn: fn})
	s.seq++
	if n := q.len(); n > s.maxQueue {
		s.maxQueue = n
	}
}

// After schedules fn to run delay time units from now. Negative delays
// panic.
func (s *Scheduler) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	s.At(s.now+delay, fn)
}

// Step dispatches the earliest pending event and reports whether one
// was dispatched.
func (s *Scheduler) Step() bool {
	e, ok := s.q().pop()
	if !ok {
		return false
	}
	s.now = e.time
	e.fn()
	return true
}

// RunUntil dispatches events in order until the queue drains, the
// horizon is passed, or Stop is called. Events scheduled exactly at the
// horizon are dispatched; later ones are left pending. It returns the
// number of events dispatched.
func (s *Scheduler) RunUntil(horizon float64) int {
	s.stopped = false
	dispatched := 0
	q := s.q()
	for !s.stopped {
		head, ok := q.peek()
		if !ok || head.time > horizon {
			break
		}
		s.Step()
		dispatched++
	}
	if s.now < horizon && !s.stopped {
		s.now = horizon
	}
	s.flushObs(dispatched)
	return dispatched
}

// Run dispatches all pending events (including ones scheduled during
// dispatch) until the queue drains or Stop is called, and returns the
// number dispatched.
func (s *Scheduler) Run() int {
	s.stopped = false
	dispatched := 0
	for !s.stopped && s.Step() {
		dispatched++
	}
	s.flushObs(dispatched)
	return dispatched
}

// flushObs reports a completed dispatch loop to the observability
// layer: one atomic pointer load when disabled, no RNG, no effect on
// event order.
func (s *Scheduler) flushObs(dispatched int) {
	if c := obs.Active(); c != nil {
		c.Add(obs.DESEvents, int64(dispatched))
		c.RecordMax(obs.DESQueueHighWater, int64(s.maxQueue))
	}
}

// Stop makes the current RunUntil/Run return after the in-flight event
// completes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Reset discards all pending events and rewinds the clock to zero.
func (s *Scheduler) Reset() {
	s.now = 0
	if s.queue != nil {
		s.queue.reset()
	}
	s.seq = 0
	s.stopped = false
	s.maxQueue = 0
}
