// Package des implements a minimal discrete-event scheduler: a
// time-ordered queue of callbacks with deterministic FIFO tie-breaking
// for simultaneous events. It underlies both the synthetic contact
// simulator and trace replay.
package des

import (
	"container/heap"
	"fmt"

	"repro/internal/obs"
)

// Scheduler orders and dispatches events. The zero value is ready to
// use. Scheduler is not safe for concurrent use; simulations are
// single-threaded by design and parallelism happens across runs.
type Scheduler struct {
	now     float64
	queue   eventHeap
	seq     uint64
	stopped bool
	// maxQueue tracks the deepest the pending queue has been — a plain
	// int so the per-event cost is one compare; it is flushed to the
	// observability layer when a Run/RunUntil drains.
	maxQueue int
}

type event struct {
	time float64
	seq  uint64 // FIFO tie-break for equal times
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current simulation time.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return s.queue.Len() }

// At schedules fn to run at time t. Scheduling in the past (t < Now)
// panics: it would silently reorder causality.
func (s *Scheduler) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: event scheduled at %v before current time %v", t, s.now))
	}
	heap.Push(&s.queue, event{time: t, seq: s.seq, fn: fn})
	s.seq++
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
}

// After schedules fn to run delay time units from now. Negative delays
// panic.
func (s *Scheduler) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	s.At(s.now+delay, fn)
}

// Step dispatches the earliest pending event and reports whether one
// was dispatched.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.time
	e.fn()
	return true
}

// RunUntil dispatches events in order until the queue drains, the
// horizon is passed, or Stop is called. Events scheduled exactly at the
// horizon are dispatched; later ones are left pending. It returns the
// number of events dispatched.
func (s *Scheduler) RunUntil(horizon float64) int {
	s.stopped = false
	dispatched := 0
	for s.queue.Len() > 0 && !s.stopped {
		if s.queue[0].time > horizon {
			break
		}
		s.Step()
		dispatched++
	}
	if s.now < horizon && !s.stopped {
		s.now = horizon
	}
	s.flushObs(dispatched)
	return dispatched
}

// Run dispatches all pending events (including ones scheduled during
// dispatch) until the queue drains or Stop is called, and returns the
// number dispatched.
func (s *Scheduler) Run() int {
	s.stopped = false
	dispatched := 0
	for s.queue.Len() > 0 && !s.stopped {
		s.Step()
		dispatched++
	}
	s.flushObs(dispatched)
	return dispatched
}

// flushObs reports a completed dispatch loop to the observability
// layer: one atomic pointer load when disabled, no RNG, no effect on
// event order.
func (s *Scheduler) flushObs(dispatched int) {
	if c := obs.Active(); c != nil {
		c.Add(obs.DESEvents, int64(dispatched))
		c.RecordMax(obs.DESQueueHighWater, int64(s.maxQueue))
	}
}

// Stop makes the current RunUntil/Run return after the in-flight event
// completes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Reset discards all pending events and rewinds the clock to zero.
func (s *Scheduler) Reset() {
	s.now = 0
	s.queue = s.queue[:0]
	s.seq = 0
	s.stopped = false
	s.maxQueue = 0
}
