package scenario

import (
	"testing"

	"repro/internal/core"
)

// kSweepSpec is a 10-value relay-count sweep over the full deadline
// axis — the shape where the delivery memo cache pays: every trial
// evaluates the analytical curve at 12 deadlines, and each trial's
// evaluator (coefficient precomputation) is shared across them.
func kSweepSpec() Scenario {
	return Scenario{
		ID:     "bench-k-sweep",
		Title:  "bench",
		XLabel: "deadline",
		YLabel: "delivery",
		Base:   core.DefaultConfig(),
		Series: Axis{
			Param:       "Relays",
			Values:      []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			LabelFormat: "K=%d",
		},
		X:       Axis{Param: ParamDeadline, Values: DeliveryDeadlines()},
		Measure: Measure{Kind: KindDeliveryCurve},
	}
}

func benchSweep(b *testing.B, noCache bool) {
	b.Helper()
	opt := Options{Seed: 1, Runs: 40, SecurityRuns: 1, TraceRuns: 1, Workers: 1}
	spec := kSweepSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(opt)
		e.noCache = noCache
		if _, err := e.Run(&spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepModelCached measures the 10-value K-sweep with the
// engine memo caches on (the default); BenchmarkSweepModelUncached is
// the same sweep recomputing every hypoexponential CDF from scratch,
// the pre-refactor behavior. Both produce byte-identical figures (see
// TestEngineCacheBitIdentity); the delta is pure model-evaluation
// time. Results are recorded in BENCH_scenario.json.
func BenchmarkSweepModelCached(b *testing.B)   { benchSweep(b, false) }
func BenchmarkSweepModelUncached(b *testing.B) { benchSweep(b, true) }
