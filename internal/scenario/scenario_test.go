package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func validSpec() Scenario {
	return Scenario{
		ID:     "t-delivery",
		Title:  "test",
		XLabel: "deadline",
		YLabel: "delivery",
		Base:   core.DefaultConfig(),
		Series: Axis{Param: "GroupSize", Values: []float64{1, 5}, LabelFormat: "g=%d"},
		X:      Axis{Param: ParamDeadline, Values: []float64{60, 600}},
		Measure: Measure{
			Kind: KindDeliveryCurve,
		},
	}
}

func TestParseSpecsSingleObject(t *testing.T) {
	data, err := json.Marshal(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].ID != "t-delivery" {
		t.Fatalf("parsed %+v", specs)
	}
}

func TestParseSpecsArray(t *testing.T) {
	a, b := validSpec(), validSpec()
	b.ID = "t-other"
	data, err := json.Marshal([]Scenario{a, b})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].ID != "t-other" {
		t.Fatalf("parsed %+v", specs)
	}
}

// TestParseSpecsRoundTrip: a spec survives Marshal → ParseSpecs with
// every field intact.
func TestParseSpecsRoundTrip(t *testing.T) {
	want := validSpec()
	want.Notes = []string{"a note"}
	want.LogX = true
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs[0], want) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", specs[0], want)
	}
}

// TestParseSpecsDefaultsBase: a spec that omits "base" gets the
// paper's default config, not the zero config.
func TestParseSpecsDefaultsBase(t *testing.T) {
	specs, err := ParseSpecs([]byte(`{
		"id": "t", "title": "t", "xLabel": "x", "yLabel": "y",
		"series": {"param": "GroupSize", "values": [1, 5]},
		"x": {"param": "deadline", "values": [60, 600]},
		"measure": {"kind": "delivery-curve"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Base != core.DefaultConfig() {
		t.Fatalf("base = %+v, want defaults", specs[0].Base)
	}
}

// TestParseSpecsMalformed: the malformed-spec corpus must fail loudly,
// each with a diagnostic naming the problem — never a silent skip or a
// zero-value spec.
func TestParseSpecsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		raw     string // overrides mutate when set
		wantErr string
	}{
		{
			name:    "unknown kind",
			mutate:  func(s *Scenario) { s.Measure.Kind = "histogram" },
			wantErr: "unknown measurement kind",
		},
		{
			name:    "empty series axis",
			mutate:  func(s *Scenario) { s.Series.Values = nil },
			wantErr: "delivery-curve needs a non-empty series axis",
		},
		{
			name:    "empty x axis",
			mutate:  func(s *Scenario) { s.X.Values = nil },
			wantErr: "needs a non-empty",
		},
		{
			name:    "missing id",
			mutate:  func(s *Scenario) { s.ID = "" },
			wantErr: "no id",
		},
		{
			name:    "wrong x param",
			mutate:  func(s *Scenario) { s.X.Param = "GroupSize" },
			wantErr: "delivery-curve needs",
		},
		{
			name: "NaN axis value",
			raw: `{"id": "t", "title": "t", "xLabel": "x", "yLabel": "y",
				"series": {"param": "GroupSize", "values": [1]},
				"x": {"param": "deadline", "values": ["NaN"]},
				"measure": {"kind": "delivery-curve"}}`,
			wantErr: "", // any loud failure is fine; JSON has no NaN literal
		},
		{
			name: "NaN measure frac",
			raw: `{"id": "t", "title": "t", "xLabel": "x", "yLabel": "y",
				"series": {"param": "Copies", "values": [1]},
				"x": {"param": "frac", "values": [0.1]},
				"measure": {"kind": "security-point", "seriesSaltStride": 10, "frac": "NaN"}}`,
			wantErr: "",
		},
		{
			name: "unknown field",
			raw: `{"id": "t", "title": "t", "xLabel": "x", "yLabel": "y", "bogus": 3,
				"series": {"param": "GroupSize", "values": [1]},
				"x": {"param": "deadline", "values": [60]},
				"measure": {"kind": "delivery-curve"}}`,
			wantErr: "unknown field",
		},
		{
			name:    "empty list",
			raw:     `[]`,
			wantErr: "no specs",
		},
		{
			name:    "not JSON",
			raw:     `kind: delivery-curve`,
			wantErr: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var data []byte
			if tc.raw != "" {
				data = []byte(tc.raw)
			} else {
				s := validSpec()
				tc.mutate(&s)
				var err error
				data, err = json.Marshal(s)
				if err != nil {
					t.Fatal(err)
				}
			}
			_, err := ParseSpecs(data)
			if err == nil {
				t.Fatal("malformed spec accepted")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseSpecsDuplicateID(t *testing.T) {
	data, err := json.Marshal([]Scenario{validSpec(), validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecs(data); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate ids accepted: %v", err)
	}
}

func TestValidateNaNAxisValue(t *testing.T) {
	s := validSpec()
	s.X.Values = []float64{60, nan()}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN axis value accepted")
	}
	s = validSpec()
	s.Measure.Frac = nan()
	if err := s.Validate(); err == nil {
		t.Fatal("NaN measure frac accepted")
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestOptionsValidate(t *testing.T) {
	good := Options{Seed: 1, Runs: 10, SecurityRuns: 10, TraceRuns: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		{Runs: 0, SecurityRuns: 10, TraceRuns: 10},
		{Runs: 10, SecurityRuns: 10, TraceRuns: 10, Workers: -1},
		{Runs: 10, SecurityRuns: 10, TraceRuns: 10, FaultRate: 1},
		{Runs: 10, SecurityRuns: 10, TraceRuns: 10, FaultRate: -0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("options %+v accepted", bad)
		}
	}
}

// TestEngineCacheBitIdentity: the memo caches must not change results —
// a cached engine and a cache-disabled engine produce byte-identical
// figures, and the cached run actually hits the cache.
func TestEngineCacheBitIdentity(t *testing.T) {
	opt := Options{Seed: 1, Runs: 30, SecurityRuns: 30, TraceRuns: 5, Workers: 2}
	spec := validSpec()

	cached := NewEngine(opt)
	figA, err := cached.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	uncached := NewEngine(opt)
	uncached.noCache = true
	figB, err := uncached.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := figA.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := figB.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("cache changed figure bytes")
	}
	st := cached.CacheStats()
	if st.DeliveryValueHits+st.DeliveryEvalHits == 0 {
		t.Fatalf("cached run never hit the cache: %+v", st)
	}
}
