package scenario

import (
	"reflect"
	"testing"
)

// TestPinnedAxes pins the shared sweep axes element by element. The
// historical accumulator loops are gone, but every committed golden
// was generated against exactly these values — including the
// duplicated trailing 1800 deadline — so any drift here silently
// invalidates all figure goldens.
func TestPinnedAxes(t *testing.T) {
	wantDeadlines := []float64{
		60, 234, 408, 582, 756, 930, 1104, 1278, 1452, 1626, 1800, 1800,
	}
	if got := DeliveryDeadlines(); !reflect.DeepEqual(got, wantDeadlines) {
		t.Errorf("DeliveryDeadlines() = %v, want %v", got, wantDeadlines)
	}
	wantFracs := []float64{
		0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
	}
	got := CompromisedFractions()
	if len(got) != len(wantFracs) {
		t.Fatalf("CompromisedFractions() = %v, want %v", got, wantFracs)
	}
	for i, w := range wantFracs {
		// The legacy loop computed float64(5*i)/100; require bit
		// equality with that expression, not approximate equality.
		if got[i] != w && got[i] != float64(5*i)/100 {
			t.Errorf("CompromisedFractions()[%d] = %v, want %v", i, got[i], w)
		}
	}
}

// TestAxesReturnFreshSlices: callers may append to or mutate the
// returned slices without corrupting later calls.
func TestAxesReturnFreshSlices(t *testing.T) {
	a := DeliveryDeadlines()
	a[0] = -1
	if DeliveryDeadlines()[0] != 60 {
		t.Error("DeliveryDeadlines shares backing storage across calls")
	}
	b := CompromisedFractions()
	b[0] = -1
	if CompromisedFractions()[0] != 0.01 {
		t.Error("CompromisedFractions shares backing storage across calls")
	}
}
