package scenario

// DeliveryDeadlines is the paper's deadline sweep: 60 to 1800 minutes
// (Table II). The historical generator accumulated `t += 174` in
// floating point and then appended a final 1800, which (since
// 60 + 10*174 == 1800 exactly) produced twelve values with a duplicate
// trailing 1800. Indexes are now integral so no accumulation error can
// creep in, and the duplicate endpoint is preserved deliberately: the
// published CSVs carry it, and the delivery-curve ECDF is evaluated per
// listed deadline, so dropping it would change every delivery figure.
func DeliveryDeadlines() []float64 {
	out := make([]float64, 0, 12)
	for i := 0; i <= 10; i++ {
		out = append(out, float64(60+174*i))
	}
	return append(out, 1800)
}

// CompromisedFractions is the paper's compromised-rate sweep: 1% to
// 50% (Table II). Generated from integer percent counts (the
// historical `f += 0.05` accumulator drifted and leaned on a
// math.Round repair; float64(5*i)/100 produces the same eleven values
// exactly).
func CompromisedFractions() []float64 {
	out := []float64{0.01}
	for i := 1; i <= 10; i++ {
		out = append(out, float64(5*i)/100)
	}
	return out
}
