// Package scenario turns the paper's evaluations into data: a Scenario
// is a declarative spec — a base core.Config, one or two named axis
// mutations, and a measurement kind — and Engine is the single
// evaluation core that runs any spec through the deterministic trial
// pool (internal/runner) with the existing obs and fault wiring.
//
// Every figure and ablation in internal/experiment, and every
// cmd/sweep invocation, is one of these specs; user-authored specs run
// through `figures -scenario spec.json` without recompilation. The
// engine memoizes repeated analytical-model evaluations (hypoexponential
// delivery CDFs, traceable rates) behind keyed caches; cache hits
// return previously computed values of the same pure functions, so
// caching can never change output (see DESIGN.md).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Options tunes evaluation effort. Defaults reproduce the paper's
// shapes in seconds per figure; raise the run counts for smoother
// curves.
type Options struct {
	Seed         uint64
	Runs         int // routed messages per delivery/cost point
	SecurityRuns int // sampled paths per security point
	TraceRuns    int // routed messages per trace figure (paper: 50)
	Workers      int // concurrent trial workers (0 = GOMAXPROCS); figures are byte-identical for any value
	// FaultRate injects the deterministic fault layer into every
	// generator that drives contacts: abstract simulations thin each
	// pair process to λ(1−p) (core.Config.ContactFailure), trace
	// replays drop each contact with probability p, and the runtime
	// figures run under fault.Uniform(p). Analytical "model" series
	// stay at the paper's ideal-contact curves. 0 (the default) is
	// byte-identical to a build without the fault layer.
	FaultRate float64
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.Runs < 1 || o.SecurityRuns < 1 || o.TraceRuns < 1 {
		return fmt.Errorf("scenario: run counts must be positive: %+v", o)
	}
	if o.Workers < 0 {
		return fmt.Errorf("scenario: workers must be non-negative (0 = GOMAXPROCS): %+v", o)
	}
	if o.FaultRate < 0 || o.FaultRate >= 1 {
		return fmt.Errorf("scenario: fault rate %v out of [0,1)", o.FaultRate)
	}
	return nil
}

// Measurement kinds. Each selects one evaluation shape in the engine.
const (
	// KindDeliveryCurve simulates routed messages and plots empirical
	// delivery rate vs. deadline, paired with the analytical curve
	// (Eqs. 4-7) unless SimOnly is set. Series axis mutates the config;
	// X axis is "deadline".
	KindDeliveryCurve = "delivery-curve"
	// KindSecurityPoint samples path realizations and measures the
	// traceable rate (Eq. 1 vs. Eq. 12).
	KindSecurityPoint = "security-point"
	// KindAnonymity samples path realizations and measures path
	// anonymity (Eqs. 13-20).
	KindAnonymity = "anonymity"
	// KindCost plots the transmission-cost bounds of Sec. IV-C against
	// the simulated protocol, vs. the number of copies.
	KindCost = "cost"
	// KindTraceReplay replays a recorded contact trace (Sec. V-D/E)
	// and plots delivery rate vs. deadline per copy count.
	KindTraceReplay = "trace-replay"
	// KindTable evaluates delivery, cost and both security metrics at
	// a single operating point per axis value — cmd/sweep's format.
	KindTable = "table"
	// KindCustom dispatches to a generator registered with
	// RegisterCustom; the spec still owns the ID, title and labels.
	KindCustom = "custom"
)

// Pseudo-parameters accepted by Axis.Param alongside core.Config field
// names.
const (
	// ParamFrac sweeps the compromised fraction c/n.
	ParamFrac = "frac"
	// ParamDeadline sweeps the message deadline T.
	ParamDeadline = "deadline"
	// ParamFault sweeps the per-contact failure rate.
	ParamFault = "fault"
)

// configParams are the core.Config fields an axis may mutate.
var configParams = map[string]bool{
	"Nodes": true, "GroupSize": true, "Relays": true, "Copies": true,
	"Spray": true, "MinICT": true, "MaxICT": true,
}

// intParams are the config params that only take integral values.
var intParams = map[string]bool{
	"Nodes": true, "GroupSize": true, "Relays": true, "Copies": true,
}

// Axis is one named sweep dimension: the parameter it mutates and the
// values it takes. Labels name the resulting series; explicit Labels
// win over LabelFormat (a Sprintf format applied to each value — "%d"
// formats receive int(value)).
type Axis struct {
	// Name is the axis' display name, used in per-point phase labels
	// (table kind) and diagnostics.
	Name string `json:"name,omitempty"`
	// Param is a core.Config field name (Nodes, GroupSize, Relays,
	// Copies, Spray, MinICT, MaxICT) or a pseudo-parameter ("frac",
	// "deadline", "fault"). Empty for axes whose meaning is implied by
	// the kind (e.g. the cost kind's copies axis).
	Param  string    `json:"param,omitempty"`
	Values []float64 `json:"values"`
	// Labels optionally names each value's series explicitly.
	Labels []string `json:"labels,omitempty"`
	// LabelFormat derives labels from values, e.g. "g=%d", "L=%d",
	// "%d onions".
	LabelFormat string `json:"labelFormat,omitempty"`
}

// Empty reports whether the axis has no values.
func (a Axis) Empty() bool { return len(a.Values) == 0 }

// Label returns the display label of the i-th value.
func (a Axis) Label(i int) string {
	if len(a.Labels) > 0 {
		return a.Labels[i]
	}
	v := a.Values[i]
	if a.LabelFormat != "" {
		if strings.Contains(a.LabelFormat, "%d") {
			return fmt.Sprintf(a.LabelFormat, int(v))
		}
		return fmt.Sprintf(a.LabelFormat, v)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// apply mutates cfg with the i-th axis value. Pseudo-parameters are
// the caller's concern and are rejected here.
func (a Axis) apply(cfg *core.Config, i int) error {
	v := a.Values[i]
	switch a.Param {
	case "Nodes":
		cfg.Nodes = int(v)
	case "GroupSize":
		cfg.GroupSize = int(v)
	case "Relays":
		cfg.Relays = int(v)
	case "Copies":
		cfg.Copies = int(v)
	case "Spray":
		cfg.Spray = v != 0
	case "MinICT":
		cfg.MinICT = v
	case "MaxICT":
		cfg.MaxICT = v
	default:
		return fmt.Errorf("scenario: axis param %q cannot mutate the config", a.Param)
	}
	return nil
}

// saltKey is the deterministic integer this axis value contributes to
// security-sampling salts. A frac axis in X position contributes its
// index; every other axis contributes its (legacy) integer value —
// int(v*100) for fractions, int(v) for config parameters. These rules
// reproduce the pre-refactor per-figure salt schemes bit-for-bit.
func (a Axis) saltKey(i int, asX bool) int {
	v := a.Values[i]
	if a.Param == ParamFrac {
		if asX {
			return i
		}
		return int(v * 100)
	}
	return int(v)
}

// Measure selects and parameterizes the evaluation kind.
type Measure struct {
	Kind string `json:"kind"`
	// Deadline is the fixed routing deadline for the cost and table
	// kinds (minutes).
	Deadline float64 `json:"deadline,omitempty"`
	// Frac is the fixed compromised fraction for security kinds whose
	// axes are both config parameters, and the table kind's default.
	Frac float64 `json:"frac,omitempty"`
	// RunToCompletion routes past the deadline so transmission counts
	// include late deliveries (cost kind is always run-to-completion).
	RunToCompletion bool `json:"runToCompletion,omitempty"`
	// SimOnly drops the paired analytical series from delivery curves;
	// series are then named by the axis label alone.
	SimOnly bool `json:"simOnly,omitempty"`
	// TxNotes appends a "<label>: <mean> mean transmissions" note per
	// series (delivery-curve kind).
	TxNotes bool `json:"txNotes,omitempty"`
	// Trace names the recorded contact trace ("cambridge" or
	// "infocom"). Required by trace-replay; on security kinds it marks
	// the trace-population sampling style (small n from Base.Nodes,
	// exact entropy forms, per-series seeds).
	Trace string `json:"trace,omitempty"`
	// SeriesSaltStride spaces the per-series security salts (legacy
	// per-figure constants: 100..100000).
	SeriesSaltStride int `json:"seriesSaltStride,omitempty"`
	// Custom names a generator registered with RegisterCustom.
	Custom string `json:"custom,omitempty"`
}

// Scenario is one declarative evaluation spec.
type Scenario struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	XLabel string `json:"xLabel"`
	YLabel string `json:"yLabel"`
	LogX   bool   `json:"logX,omitempty"`
	// Notes are static caveats appended after any dynamically
	// generated notes (skipped-trial counts etc.).
	Notes []string `json:"notes,omitempty"`
	// Base is the configuration every axis value mutates. Base.Seed is
	// always overridden by Options.Seed; Base.ContactFailure is
	// overridden by Options.FaultRate when the latter is non-zero (for
	// the kinds that drive contacts).
	Base core.Config `json:"base"`
	// Series is the per-series axis (one series — or Analysis +
	// Simulation pair — per value).
	Series Axis `json:"series,omitempty"`
	// X is the per-point axis within each series.
	X       Axis    `json:"x,omitempty"`
	Measure Measure `json:"measure"`
}

// UnmarshalJSON decodes a spec with core.DefaultConfig() as the
// starting Base, so hand-written specs only state the fields they
// change.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	type plain Scenario
	tmp := plain{Base: core.DefaultConfig()}
	if err := json.Unmarshal(data, &tmp); err != nil {
		return err
	}
	*s = Scenario(tmp)
	return nil
}

// ParseSpecs decodes a JSON spec file — either one Scenario object or
// an array of them — with unknown fields rejected, defaults Base to
// core.DefaultConfig() per spec, and validates every spec. Malformed
// input fails loudly before any evaluation work.
func ParseSpecs(data []byte) ([]Scenario, error) {
	var raws []json.RawMessage
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(data, &raws); err != nil {
			return nil, fmt.Errorf("scenario: parse spec list: %w", err)
		}
	} else {
		raws = []json.RawMessage{data}
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("scenario: spec file holds no specs")
	}
	specs := make([]Scenario, 0, len(raws))
	seen := make(map[string]bool, len(raws))
	for i, raw := range raws {
		s, err := parseSpec(raw)
		if err != nil {
			return nil, fmt.Errorf("scenario: spec %d: %w", i, err)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("scenario: duplicate spec id %q", s.ID)
		}
		seen[s.ID] = true
		specs = append(specs, *s)
	}
	return specs, nil
}

func parseSpec(raw []byte) (*Scenario, error) {
	type plain Scenario
	tmp := plain{Base: core.DefaultConfig()}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tmp); err != nil {
		return nil, err
	}
	s := Scenario(tmp)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func validAxisValues(name string, a Axis) error {
	for _, v := range a.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario: %s axis value %v is not finite", name, v)
		}
	}
	if len(a.Labels) > 0 && len(a.Labels) != len(a.Values) {
		return fmt.Errorf("scenario: %s axis has %d labels for %d values", name, len(a.Labels), len(a.Values))
	}
	if a.Param != "" && a.Param != ParamFrac && a.Param != ParamDeadline && a.Param != ParamFault {
		if !configParams[a.Param] {
			return fmt.Errorf("scenario: unknown axis param %q", a.Param)
		}
		if intParams[a.Param] {
			for _, v := range a.Values {
				if v != math.Trunc(v) {
					return fmt.Errorf("scenario: param %q takes integer values, got %v", a.Param, v)
				}
				if v < math.MinInt32 || v > math.MaxInt32 {
					return fmt.Errorf("scenario: param %q value %v out of integer range", a.Param, v)
				}
			}
		}
	}
	return nil
}

// Validate checks the spec for structural sanity: known kind, known
// axis params, non-empty axes where the kind requires them, finite
// values, matching label counts. It is called by Engine.Run and by the
// JSON loading path, so malformed specs fail loudly before any work.
func (s *Scenario) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("scenario: spec has no id")
	}
	if err := validAxisValues("series", s.Series); err != nil {
		return fmt.Errorf("%w (spec %s)", err, s.ID)
	}
	if err := validAxisValues("x", s.X); err != nil {
		return fmt.Errorf("%w (spec %s)", err, s.ID)
	}
	if math.IsNaN(s.Measure.Frac) || s.Measure.Frac < 0 || s.Measure.Frac >= 1 {
		return fmt.Errorf("scenario: %s: measure frac %v out of [0,1)", s.ID, s.Measure.Frac)
	}
	if math.IsNaN(s.Measure.Deadline) || math.IsInf(s.Measure.Deadline, 0) || s.Measure.Deadline < 0 {
		return fmt.Errorf("scenario: %s: measure deadline %v invalid", s.ID, s.Measure.Deadline)
	}
	switch s.Measure.Kind {
	case KindDeliveryCurve:
		if s.Series.Empty() {
			return fmt.Errorf("scenario: %s: delivery-curve needs a non-empty series axis", s.ID)
		}
		if !configParams[s.Series.Param] {
			return fmt.Errorf("scenario: %s: delivery-curve series axis must mutate a config param, got %q", s.ID, s.Series.Param)
		}
		if s.X.Param != ParamDeadline || s.X.Empty() {
			return fmt.Errorf("scenario: %s: delivery-curve needs a non-empty %q x axis", s.ID, ParamDeadline)
		}
	case KindSecurityPoint, KindAnonymity:
		if s.Series.Empty() || s.X.Empty() {
			return fmt.Errorf("scenario: %s: %s needs non-empty series and x axes", s.ID, s.Measure.Kind)
		}
		seriesFrac := s.Series.Param == ParamFrac
		xFrac := s.X.Param == ParamFrac
		if seriesFrac && xFrac {
			return fmt.Errorf("scenario: %s: only one axis may sweep %q", s.ID, ParamFrac)
		}
		if !seriesFrac && !configParams[s.Series.Param] {
			return fmt.Errorf("scenario: %s: series axis param %q unknown", s.ID, s.Series.Param)
		}
		if !xFrac && !configParams[s.X.Param] {
			return fmt.Errorf("scenario: %s: x axis param %q unknown", s.ID, s.X.Param)
		}
		if !seriesFrac && !xFrac && s.Measure.Frac <= 0 {
			return fmt.Errorf("scenario: %s: no %q axis and no fixed measure frac", s.ID, ParamFrac)
		}
		if s.Measure.Trace == "" && s.Measure.SeriesSaltStride <= 0 {
			return fmt.Errorf("scenario: %s: security kinds need a positive seriesSaltStride", s.ID)
		}
		if s.Measure.Trace != "" {
			if s.Measure.Trace != TraceCambridge && s.Measure.Trace != TraceInfocom {
				return fmt.Errorf("scenario: %s: unknown trace %q", s.ID, s.Measure.Trace)
			}
			// Trace-population sampling seeds one stream per copy count
			// and sweeps the fraction on x.
			if s.Series.Param != "Copies" {
				return fmt.Errorf("scenario: %s: trace security kinds need a Copies series axis, got %q", s.ID, s.Series.Param)
			}
			if !xFrac {
				return fmt.Errorf("scenario: %s: trace security kinds sweep %q on the x axis", s.ID, ParamFrac)
			}
		}
	case KindCost:
		if s.X.Param != "Copies" || s.X.Empty() {
			return fmt.Errorf("scenario: %s: cost needs a non-empty Copies x axis", s.ID)
		}
		if s.Measure.Deadline <= 0 {
			return fmt.Errorf("scenario: %s: cost needs a positive measure deadline", s.ID)
		}
	case KindTraceReplay:
		if s.Measure.Trace != TraceCambridge && s.Measure.Trace != TraceInfocom {
			return fmt.Errorf("scenario: %s: trace-replay needs trace %q or %q, got %q", s.ID, TraceCambridge, TraceInfocom, s.Measure.Trace)
		}
		if s.Series.Param != "Copies" || s.Series.Empty() {
			return fmt.Errorf("scenario: %s: trace-replay needs a non-empty Copies series axis", s.ID)
		}
		if s.X.Param != ParamDeadline || s.X.Empty() {
			return fmt.Errorf("scenario: %s: trace-replay needs a non-empty %q x axis", s.ID, ParamDeadline)
		}
	case KindTable:
		if s.X.Empty() {
			return fmt.Errorf("scenario: %s: table needs a non-empty x axis", s.ID)
		}
		p := s.X.Param
		if !configParams[p] && p != ParamFrac && p != ParamDeadline && p != ParamFault {
			return fmt.Errorf("scenario: %s: table axis param %q unknown", s.ID, p)
		}
		if s.Measure.Deadline <= 0 {
			return fmt.Errorf("scenario: %s: table needs a positive measure deadline", s.ID)
		}
	case KindCustom:
		if _, ok := customs[s.Measure.Custom]; !ok {
			return fmt.Errorf("scenario: %s: custom generator %q not registered", s.ID, s.Measure.Custom)
		}
	default:
		return fmt.Errorf("scenario: %s: unknown measurement kind %q", s.ID, s.Measure.Kind)
	}
	return nil
}
