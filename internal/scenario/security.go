package scenario

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// securityMetric selects the sampled metric for one outcome.
func securityMetric(kind string, o core.SecurityOutcome) float64 {
	if kind == KindSecurityPoint {
		return o.TraceableRate
	}
	return o.PathAnonymity
}

// securityPoint measures one fast-mode security point. Samples are
// drawn concurrently on opt.Workers workers and accumulated in trial
// order.
func (e *Engine) securityPoint(nw *core.Network, frac float64, runs, salt int, batch string, metric func(core.SecurityOutcome) float64) (stats.Summary, error) {
	vals, err := Trials(e, batch, runs, func(i int) (float64, error) {
		out, err := nw.FastSecurityTrial(frac, salt*1000003+i)
		if err != nil {
			return 0, err
		}
		return metric(out), nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	var acc stats.Accumulator
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Summarize(), nil
}

// securitySweep runs the random-network security kinds: one Analysis +
// Simulation pair per series value, a point per X value. Either axis
// may sweep the compromised fraction; a spec with two config axes
// fixes the fraction at Measure.Frac. Per-point sampling salts are
// seriesKey*SeriesSaltStride + xKey (see Axis.saltKey), reproducing
// the historical per-figure schemes exactly.
func (e *Engine) securitySweep(s *Scenario) ([]stats.Series, []string, error) {
	opt := e.opt
	xIsFrac := s.X.Param == ParamFrac
	seriesIsFrac := s.Series.Param == ParamFrac
	var series []stats.Series
	for si := range s.Series.Values {
		label := s.Series.Label(si)
		analysis := stats.Series{Name: "Analysis: " + label}
		simulation := stats.Series{Name: "Simulation: " + label}
		for xi, xv := range s.X.Values {
			cfg, err := e.seriesConfig(s, si, false)
			if err != nil {
				return nil, nil, err
			}
			if !xIsFrac {
				if err := s.X.apply(&cfg, xi); err != nil {
					return nil, nil, err
				}
			}
			frac := s.Measure.Frac
			switch {
			case xIsFrac:
				frac = xv
			case seriesIsFrac:
				frac = s.Series.Values[si]
			}
			nw, err := e.network(cfg)
			if err != nil {
				return nil, nil, err
			}
			var modelVal float64
			if s.Measure.Kind == KindSecurityPoint {
				modelVal = e.TraceableRate(cfg.Relays+1, frac)
			} else {
				modelVal = nw.ModelPathAnonymity(frac)
			}
			analysis.Append(xv, modelVal, 0)
			salt := s.Series.saltKey(si, false)*s.Measure.SeriesSaltStride + s.X.saltKey(xi, true)
			batch := fmt.Sprintf("%s/security/s%d/x%d", s.ID, si, xi)
			sum, err := e.securityPoint(nw, frac, opt.SecurityRuns, salt, batch,
				func(o core.SecurityOutcome) float64 { return securityMetric(s.Measure.Kind, o) })
			if err != nil {
				return nil, nil, err
			}
			simulation.Append(xv, sum.Mean, sum.CI95)
		}
		series = append(series, analysis, simulation)
	}
	return series, nil, nil
}

// traceSecurity runs the security kinds in trace-population style
// (Sec. V-D): the metrics are contact-graph independent, so only the
// population size Base.Nodes, the group size, the relay count and the
// per-series copy count matter. The small-n trace populations use the
// exact entropy ratio (Eqs. 14/17) instead of the Stirling form, whose
// n >> K premise fails there. One root stream per series value, seeded
// opt.Seed + copies; per-sample substreams labeled fracIndex*1e6 + i.
func (e *Engine) traceSecurity(s *Scenario) ([]stats.Series, []string, error) {
	opt := e.opt
	n, g, relays := s.Base.Nodes, s.Base.GroupSize, s.Base.Relays
	fracs := s.X.Values
	var series []stats.Series
	for si := range s.Series.Values {
		l := int(s.Series.Values[si])
		label := s.Series.Label(si)
		analysis := stats.Series{Name: "Analysis: " + label}
		for _, frac := range fracs {
			var v float64
			if s.Measure.Kind == KindSecurityPoint {
				v = e.TraceableRate(relays+1, frac)
			} else {
				v = model.PathAnonymityMultiCopyExact(n, relays+1, g, frac, l)
			}
			analysis.Append(frac, v, 0)
		}
		root := rng.New(opt.Seed + uint64(l))
		simulation := stats.Series{Name: "Simulation: " + label}
		for fi, frac := range fracs {
			batch := fmt.Sprintf("%s/tracesec/s%d/x%d", s.ID, si, fi)
			vals, err := Trials(e, batch, opt.SecurityRuns, func(i int) (float64, error) {
				st := root.SplitN("trial", fi*1000000+i)
				adv, err := adversary.RandomFraction(n, frac, st.Split("adv"))
				if err != nil {
					return 0, err
				}
				senders, err := adversary.SampleSenders(n, relays, st.Split("senders"))
				if err != nil {
					return 0, err
				}
				positions, err := adversary.SamplePositions(n, relays, l, g, l > 1, st.Split("positions"))
				if err != nil {
					return 0, err
				}
				if s.Measure.Kind == KindSecurityPoint {
					return model.TraceableRateOfPath(adv.SenderBits(senders)), nil
				}
				return model.PathAnonymityExact(n, relays+1, g, float64(adv.PositionsCompromised(positions))), nil
			})
			if err != nil {
				return nil, nil, err
			}
			var acc stats.Accumulator
			for _, v := range vals {
				acc.Add(v)
			}
			simulation.Append(frac, acc.Mean(), acc.CI95())
		}
		series = append(series, analysis, simulation)
	}
	return series, nil, nil
}
