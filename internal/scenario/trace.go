package scenario

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Trace names accepted by Measure.Trace (Sec. V-D/E populations).
const (
	TraceCambridge = "cambridge"
	TraceInfocom   = "infocom"
)

// traceNetwork builds the named synthetic trace network. The trace is
// generated from opt.Seed and replayed with opt.Seed+1, exactly as the
// historical per-figure builders did.
func (e *Engine) traceNetwork(name string) (*core.TraceNetwork, error) {
	var (
		tr  *trace.Trace
		err error
	)
	switch name {
	case TraceCambridge:
		tr, err = trace.GenerateCambridge(rng.New(e.opt.Seed))
	case TraceInfocom:
		tr, err = trace.GenerateInfocom(rng.New(e.opt.Seed))
	default:
		return nil, fmt.Errorf("scenario: unknown trace %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: generate %s: %w", name, err)
	}
	return core.NewTraceNetwork(tr, e.opt.Seed+1)
}

// traceTrialOutcome is one replayed trace message: the simulated delay
// plus the analytical delivery rate per deadline (ModelOK is false
// where the fitted path had a zero-rate hop and the model could not be
// evaluated). Fields are exported so checkpointed results gob-encode.
type traceTrialOutcome struct {
	Delivered bool
	Delay     float64
	Model     []float64
	ModelOK   []bool
}

// traceReplay builds one Analysis + Simulation pair per copy count by
// replaying the trace (deadlines in seconds). Replays run concurrently
// on opt.Workers workers and aggregate in trial order.
func (e *Engine) traceReplay(s *Scenario) ([]stats.Series, []string, error) {
	opt := e.opt
	tn, err := e.traceNetwork(s.Measure.Trace)
	if err != nil {
		return nil, nil, err
	}
	g, relays := s.Base.GroupSize, s.Base.Relays
	deadlines := s.X.Values
	maxT := deadlines[len(deadlines)-1]
	var series []stats.Series
	var notes []string
	for si := range s.Series.Values {
		l := int(s.Series.Values[si])
		batch := fmt.Sprintf("%s/replay/s%d", s.ID, si)
		trials, err := Trials(e, batch, opt.TraceRuns, func(i int) (traceTrialOutcome, error) {
			trial, err := tn.NewTrial(l*1000000+i, g, relays)
			if err != nil {
				return traceTrialOutcome{}, err
			}
			res, err := tn.RouteLossy(trial, maxT, l, true, false, opt.FaultRate, l*1000000+i)
			if err != nil {
				return traceTrialOutcome{}, err
			}
			out := traceTrialOutcome{
				Delivered: res.Delivered,
				Delay:     res.Time - trial.Start,
				Model:     make([]float64, len(deadlines)),
				ModelOK:   make([]bool, len(deadlines)),
			}
			for d, t := range deadlines {
				if trial.Rates == nil {
					continue
				}
				m, err := e.DeliveryRate(trial.Rates, l, t)
				if err != nil {
					return traceTrialOutcome{}, err
				}
				out.Model[d], out.ModelOK[d] = m, true
			}
			return out, nil
		})
		if err != nil {
			return nil, nil, err
		}
		ecdf := stats.NewECDF()
		modelAcc := make([]stats.Accumulator, len(deadlines))
		modelSkipped := 0
		for _, tt := range trials {
			if tt.Delivered {
				ecdf.Observe(tt.Delay)
			} else {
				ecdf.ObserveCensored()
			}
			for d := range deadlines {
				if !tt.ModelOK[d] {
					if d == 0 {
						modelSkipped++
					}
					continue
				}
				modelAcc[d].Add(tt.Model[d])
			}
		}
		if modelSkipped > 0 {
			notes = append(notes, fmt.Sprintf(
				"L=%d: %d/%d trials excluded from the analysis curve (a fitted hop rate was zero)",
				l, modelSkipped, opt.TraceRuns))
		}
		label := s.Series.Label(si)
		analysis := stats.Series{Name: "Analysis: " + label}
		simulation := stats.Series{Name: "Simulation: " + label}
		n := float64(ecdf.N())
		for d, t := range deadlines {
			analysis.Append(t, modelAcc[d].Mean(), modelAcc[d].CI95())
			p := ecdf.At(t)
			ci := 0.0
			if n > 0 {
				ci = 1.96 * math.Sqrt(p*(1-p)/n)
			}
			simulation.Append(t, p, ci)
		}
		series = append(series, analysis, simulation)
	}
	return series, notes, nil
}
