package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Fixed series produced by the table kind, in column order.
var tableSeries = []string{
	"delivery sim", "delivery model", "transmissions",
	"traceable sim", "traceable model", "anonymity sim", "anonymity model",
}

// table evaluates the one-axis tradeoff sweep behind cmd/sweep: every
// X value yields one row of simulation and analysis metrics, emitted
// as seven fixed series (one per column). Unlike the delivery-curve
// kind, a trial that fails to find an eligible group path is an error,
// not a skip — the historical sweep semantics.
func (e *Engine) table(s *Scenario) ([]stats.Series, []string, error) {
	opt := e.opt
	axisName := s.X.Name
	if axisName == "" {
		axisName = s.X.Param
	}
	series := make([]stats.Series, len(tableSeries))
	for i, name := range tableSeries {
		series[i] = stats.Series{Name: name}
	}
	for xi, v := range s.X.Values {
		endPhase := obs.Current().StartPhase(fmt.Sprintf("%s=%v", axisName, v))
		cfg := s.Base
		cfg.Seed = opt.Seed
		dl, frac := s.Measure.Deadline, s.Measure.Frac
		switch s.X.Param {
		case ParamFrac:
			frac = v
		case ParamDeadline:
			dl = v
		case ParamFault:
			cfg.ContactFailure = v
		default:
			if err := s.X.apply(&cfg, xi); err != nil {
				endPhase()
				return nil, nil, err
			}
		}
		row, err := e.tablePoint(cfg, dl, frac, fmt.Sprintf("%s/table/x%d", s.ID, xi))
		endPhase()
		if err != nil {
			return nil, nil, fmt.Errorf("%s=%v: %w", axisName, v, err)
		}
		for i := range series {
			series[i].Append(v, row[i], 0)
		}
	}
	return series, nil, nil
}

// tablePoint measures one sweep row, returning values in tableSeries
// order.
func (e *Engine) tablePoint(cfg core.Config, deadline, frac float64, batch string) ([7]float64, error) {
	opt := e.opt
	var row [7]float64
	nw, err := e.network(cfg)
	if err != nil {
		return row, err
	}
	row[4] = e.TraceableRate(cfg.Relays+1, frac)
	row[6] = nw.ModelPathAnonymity(frac)
	type trialOut struct {
		Delivered              bool
		Model, Tx, Trace, Anon float64
	}
	trials, err := Trials(e, batch, opt.Runs, func(i int) (trialOut, error) {
		trial, err := nw.NewTrial(i)
		if err != nil {
			return trialOut{}, err
		}
		res, err := nw.Route(trial, deadline, true, i)
		if err != nil {
			return trialOut{}, err
		}
		// Thinned model: identical to ModelDelivery when the
		// contact-failure rate is zero.
		m, err := e.DeliveryRate(nw.ThinnedRates(trial), cfg.Copies, deadline)
		if err != nil {
			return trialOut{}, err
		}
		sec, err := nw.FastSecurityTrial(frac, i)
		if err != nil {
			return trialOut{}, err
		}
		return trialOut{
			Delivered: res.Delivered,
			Model:     m,
			Tx:        float64(res.Transmissions),
			Trace:     sec.TraceableRate,
			Anon:      sec.PathAnonymity,
		}, nil
	})
	if err != nil {
		return row, err
	}
	var delivered int
	var model, tx, tr, an stats.Accumulator
	for _, to := range trials {
		if to.Delivered {
			delivered++
		}
		model.Add(to.Model)
		tx.Add(to.Tx)
		tr.Add(to.Trace)
		an.Add(to.Anon)
	}
	row[0] = float64(delivered) / float64(opt.Runs)
	row[1] = model.Mean()
	row[2] = tx.Mean()
	row[3] = tr.Mean()
	row[5] = an.Mean()
	return row, nil
}
