package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Figure is one reproduced evaluation artifact.
type Figure struct {
	ID     string         `json:"id"` // e.g. "fig04"
	Title  string         `json:"title"`
	XLabel string         `json:"xLabel"`
	YLabel string         `json:"yLabel"`
	LogX   bool           `json:"logX,omitempty"`
	Series []stats.Series `json:"series"`
	Notes  []string       `json:"notes,omitempty"` // substitutions, skipped trials, caveats
}

// JSON renders the figure as indented JSON for machine consumption.
func (f *Figure) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal %s: %w", f.ID, err)
	}
	return append(out, '\n'), nil
}

// Validate checks the figure's series for consistency.
func (f *Figure) Validate() error {
	if len(f.Series) == 0 {
		return fmt.Errorf("scenario: figure %s has no series", f.ID)
	}
	for i := range f.Series {
		if err := f.Series[i].Validate(); err != nil {
			return fmt.Errorf("scenario: figure %s: %w", f.ID, err)
		}
		if len(f.Series[i].X) == 0 {
			return fmt.Errorf("scenario: figure %s series %q is empty", f.ID, f.Series[i].Name)
		}
	}
	return nil
}

// CSV renders the figure in tidy format: series,x,y,ci.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y,ci\n")
	for _, s := range f.Series {
		for i := range s.X {
			ci := 0.0
			if s.CI != nil {
				ci = s.CI[i]
			}
			fmt.Fprintf(&b, "%s,%s,%s,%s\n",
				csvEscape(s.Name),
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', 6, 64),
				strconv.FormatFloat(ci, 'g', 4, 64))
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Render draws an ASCII plot of the figure, suitable for terminals and
// EXPERIMENTS.md. Markers a, b, c, ... identify series in the legend.
func (f *Figure) Render(width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			x, y := f.xCoord(s.X[i]), s.Y[i]
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if first {
		return "(empty figure)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extremes stay visible.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		marker := byte('a' + si%26)
		for i := range s.X {
			col := int((f.xCoord(s.X[i]) - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%9.3g +%s+\n", ymax, strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%9s |%s|\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%9.3g +%s+\n", ymin, strings.Repeat("-", width))
	xLeft := strconv.FormatFloat(f.xTick(xmin), 'g', 3, 64)
	xRight := strconv.FormatFloat(f.xTick(xmax), 'g', 3, 64)
	gapWidth := width - len(xLeft) - len(xRight)
	if gapWidth < 1 {
		gapWidth = 1
	}
	fmt.Fprintf(&b, "%9s  %s%s%s  (%s)\n", "", xLeft, strings.Repeat(" ", gapWidth), xRight, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "          %c = %s\n", 'a'+si%26, s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "          note: %s\n", n)
	}
	return b.String()
}

func (f *Figure) xCoord(x float64) float64 {
	if f.LogX && x > 0 {
		return math.Log2(x)
	}
	return x
}

func (f *Figure) xTick(coord float64) float64 {
	if f.LogX {
		return math.Exp2(coord)
	}
	return coord
}

// SeriesByName returns the named series, if present.
func (f *Figure) SeriesByName(name string) (*stats.Series, bool) {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i], true
		}
	}
	return nil, false
}
