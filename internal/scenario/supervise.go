package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Supervise attaches a supervisor (panic quarantine, watchdog, drain)
// and an optional per-run result store (checkpoint/resume) to the
// engine. Every Monte Carlo batch the engine runs from then on goes
// through runner.Supervised under stable batch labels. Call before
// Run; an engine with neither attached runs on the plain MapTrials
// hot path, byte-identical to previous releases.
func (e *Engine) Supervise(sup *runner.Supervisor, store runner.ResultStore) {
	e.sup = sup
	e.store = store
}

// SuperviseFleet attaches a supervisor plus a work-stealing dispatcher
// over a content-addressed cache entry (internal/dispatch). Every
// Monte Carlo batch then runs through the fleet protocol: trials
// already in the cache are served, the rest are leased in chunks and
// computed, and other processes sharing the cache directory pick up
// each other's work. Mutually exclusive with Supervise's store — the
// dispatcher owns persistence.
func (e *Engine) SuperviseFleet(sup *runner.Supervisor, d *dispatch.Dispatcher) {
	e.sup = sup
	e.fleet = d
}

// Trials routes one of the engine's Monte Carlo batches through the
// trial pool. batch must be a stable label — derived from the scenario
// ID and axis indices, never from map order or timing — because it
// keys checkpointed and cached results across process lifetimes.
func Trials[T any](e *Engine, batch string, trials int, fn func(i int) (T, error)) ([]T, error) {
	if e.fleet != nil {
		return dispatch.Run(e.fleet, e.sup, batch, e.opt.Workers, trials, fn)
	}
	return runner.Supervised(e.sup, e.store, batch, e.opt.Workers, trials, fn)
}

// RunKey derives the checkpoint identity of running spec s at options
// opt: the git revision of this binary, a hash of the spec plus every
// option bit that influences trial results, and the seed. Workers is
// deliberately excluded — trial results are index-labeled, so a run
// may resume at any -workers value.
func RunKey(s *Scenario, opt Options) (checkpoint.Key, error) {
	spec, err := json.Marshal(s)
	if err != nil {
		return checkpoint.Key{}, fmt.Errorf("scenario: hash spec %s: %w", s.ID, err)
	}
	h := sha256.New()
	h.Write(spec)
	var b [8]byte
	for _, v := range []uint64{
		uint64(opt.Runs), uint64(opt.SecurityRuns), uint64(opt.TraceRuns),
		math.Float64bits(opt.FaultRate),
	} {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	return checkpoint.Key{
		GitRevision: obs.GitRevision(),
		SpecHash:    hex.EncodeToString(h.Sum(nil)),
		Seed:        opt.Seed,
	}, nil
}

// contentSpec is the canonical form hashed by ContentKey: every spec
// and option bit that can influence a trial result, and nothing else.
// Presentation fields — titles, axis labels and label formats, notes —
// are deliberately absent, so editing them regenerates figures from
// cache without recomputing a single trial. Workers is absent because
// results are index-labeled; the git revision is absent by design —
// that is the whole point of content addressing.
type contentSpec struct {
	ID           string
	Base         core.Config
	SeriesParam  string
	SeriesValues []float64
	XParam       string
	XValues      []float64
	Measure      Measure
	Runs         int
	SecurityRuns int
	TraceRuns    int
	FaultRate    float64
	Seed         uint64
}

// ContentKey derives the content-addressed cache identity of running
// spec s at options opt: a hex sha256 of the spec's evaluation-
// affecting inputs. Two runs with equal content keys compute
// bit-identical trial results on any revision, any worker count, any
// fleet size — the invariant the result cache (internal/resultcache)
// rests on. Compare RunKey, which pins the git revision and so is
// invalidated by every commit.
func ContentKey(s *Scenario, opt Options) (string, error) {
	canon, err := json.Marshal(contentSpec{
		ID:           s.ID,
		Base:         s.Base,
		SeriesParam:  s.Series.Param,
		SeriesValues: s.Series.Values,
		XParam:       s.X.Param,
		XValues:      s.X.Values,
		Measure:      s.Measure,
		Runs:         opt.Runs,
		SecurityRuns: opt.SecurityRuns,
		TraceRuns:    opt.TraceRuns,
		FaultRate:    opt.FaultRate,
		Seed:         opt.Seed,
	})
	if err != nil {
		return "", fmt.Errorf("scenario: content key for %s: %w", s.ID, err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}
