package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Supervise attaches a supervisor (panic quarantine, watchdog, drain)
// and an optional per-run result store (checkpoint/resume) to the
// engine. Every Monte Carlo batch the engine runs from then on goes
// through runner.Supervised under stable batch labels. Call before
// Run; an engine with neither attached runs on the plain MapTrials
// hot path, byte-identical to previous releases.
func (e *Engine) Supervise(sup *runner.Supervisor, store runner.ResultStore) {
	e.sup = sup
	e.store = store
}

// Trials routes one of the engine's Monte Carlo batches through the
// trial pool. batch must be a stable label — derived from the scenario
// ID and axis indices, never from map order or timing — because it
// keys checkpointed results across process lifetimes.
func Trials[T any](e *Engine, batch string, trials int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Supervised(e.sup, e.store, batch, e.opt.Workers, trials, fn)
}

// RunKey derives the checkpoint identity of running spec s at options
// opt: the git revision of this binary, a hash of the spec plus every
// option bit that influences trial results, and the seed. Workers is
// deliberately excluded — trial results are index-labeled, so a run
// may resume at any -workers value.
func RunKey(s *Scenario, opt Options) (checkpoint.Key, error) {
	spec, err := json.Marshal(s)
	if err != nil {
		return checkpoint.Key{}, fmt.Errorf("scenario: hash spec %s: %w", s.ID, err)
	}
	h := sha256.New()
	h.Write(spec)
	var b [8]byte
	for _, v := range []uint64{
		uint64(opt.Runs), uint64(opt.SecurityRuns), uint64(opt.TraceRuns),
		math.Float64bits(opt.FaultRate),
	} {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	return checkpoint.Key{
		GitRevision: obs.GitRevision(),
		SpecHash:    hex.EncodeToString(h.Sum(nil)),
		Seed:        opt.Seed,
	}, nil
}
