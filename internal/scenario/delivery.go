package scenario

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/stats"
)

// deliveryTrial is the outcome of one routed message: the simulated
// delivery plus the analytical delivery rate at every deadline. A
// skipped trial (no eligible group path) contributes nothing. Fields
// are exported so checkpointed results gob-encode.
type deliveryTrial struct {
	Skipped   bool
	Delivered bool
	Time      float64
	Tx        float64
	Model     []float64 // per deadline; nil when SimOnly
}

// deliveryCurve runs one simulation series (and, unless SimOnly, one
// paired analysis series) per series-axis value: each routed message
// is simulated once to the maximum deadline and its delivery time
// feeds an empirical CDF, which is exactly the delivery rate as a
// function of the deadline. Trials run concurrently on opt.Workers
// workers and are aggregated in trial order, so the series are
// identical for every worker count.
func (e *Engine) deliveryCurve(s *Scenario) ([]stats.Series, []string, error) {
	opt := e.opt
	deadlines := s.X.Values
	maxT := deadlines[len(deadlines)-1]
	var series []stats.Series
	var notes []string
	for si := range s.Series.Values {
		label := s.Series.Label(si)
		cfg, err := e.seriesConfig(s, si, true)
		if err != nil {
			return nil, nil, err
		}
		nw, err := e.network(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: %s: %w", label, err)
		}
		simOnly := s.Measure.SimOnly
		batch := fmt.Sprintf("%s/delivery/s%d", s.ID, si)
		trials, err := Trials(e, batch, opt.Runs, func(i int) (deliveryTrial, error) {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return deliveryTrial{Skipped: true}, nil
			}
			res, err := nw.Route(trial, maxT, s.Measure.RunToCompletion, i)
			if err != nil {
				return deliveryTrial{}, fmt.Errorf("%s run %d: %w", label, i, err)
			}
			dt := deliveryTrial{
				Delivered: res.Delivered,
				Time:      res.Time,
				Tx:        float64(res.Transmissions),
			}
			if !simOnly {
				dt.Model = make([]float64, len(deadlines))
				for d, t := range deadlines {
					m, err := e.DeliveryRate(trial.Rates, cfg.Copies, t)
					if err != nil {
						return deliveryTrial{}, fmt.Errorf("%s model: %w", label, err)
					}
					dt.Model[d] = m
				}
			}
			return dt, nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: %w", err)
		}
		ecdf := stats.NewECDF()
		modelAcc := make([]stats.Accumulator, len(deadlines))
		var tx stats.Accumulator
		skipped := 0
		for _, dt := range trials {
			if dt.Skipped {
				skipped++
				continue
			}
			if dt.Delivered {
				ecdf.Observe(dt.Time)
			} else {
				ecdf.ObserveCensored()
			}
			tx.Add(dt.Tx)
			for d := range dt.Model {
				modelAcc[d].Add(dt.Model[d])
			}
		}
		if skipped > 0 && !simOnly {
			notes = append(notes, fmt.Sprintf("%s: %d trials skipped (no eligible group path)", label, skipped))
		}

		simName := label
		if !simOnly {
			simName = "Simulation: " + label
		}
		simulation := stats.Series{Name: simName}
		analysis := stats.Series{Name: "Analysis: " + label}
		n := float64(ecdf.N())
		for d, t := range deadlines {
			if !simOnly {
				analysis.Append(t, modelAcc[d].Mean(), modelAcc[d].CI95())
			}
			p := ecdf.At(t)
			ci := 0.0
			if n > 0 {
				ci = 1.96 * math.Sqrt(p*(1-p)/n)
			}
			simulation.Append(t, p, ci)
		}
		if simOnly {
			series = append(series, simulation)
		} else {
			series = append(series, analysis, simulation)
		}
		if s.Measure.TxNotes {
			notes = append(notes, fmt.Sprintf("%s: %.1f mean transmissions", label, tx.Mean()))
		}
	}
	return series, notes, nil
}

// cost plots the transmission bounds of Sec. IV-C — the non-anonymous
// baseline 2L and the analysis bound 2L-1+KL — against the simulated
// protocol's mean transmissions, per copy count.
func (e *Engine) cost(s *Scenario) ([]stats.Series, []string, error) {
	opt := e.opt
	nonAnon := stats.Series{Name: "Non-anonymous"}
	analysis := stats.Series{Name: "Analysis"}
	simulation := stats.Series{Name: "Simulation"}
	for xi, lv := range s.X.Values {
		l := int(lv)
		nonAnon.Append(float64(l), float64(model.CostNonAnonymous(l)), 0)
		analysis.Append(float64(l), float64(model.CostMultiCopyBound(s.Base.Relays, l)), 0)

		cfg := s.Base
		cfg.Copies = l
		cfg.Seed = opt.Seed
		if opt.FaultRate != 0 {
			cfg.ContactFailure = opt.FaultRate
		}
		nw, err := e.network(cfg)
		if err != nil {
			return nil, nil, err
		}
		type txTrial struct {
			Ok bool
			Tx float64
		}
		batch := fmt.Sprintf("%s/cost/x%d", s.ID, xi)
		trials, err := Trials(e, batch, opt.Runs, func(i int) (txTrial, error) {
			trial, err := nw.NewTrial(i)
			if err != nil {
				return txTrial{}, nil
			}
			res, err := nw.Route(trial, s.Measure.Deadline, true, i)
			if err != nil {
				return txTrial{}, err
			}
			return txTrial{Ok: true, Tx: float64(res.Transmissions)}, nil
		})
		if err != nil {
			return nil, nil, err
		}
		var acc stats.Accumulator
		for _, tt := range trials {
			if tt.Ok {
				acc.Add(tt.Tx)
			}
		}
		simulation.Append(float64(l), acc.Mean(), acc.CI95())
	}
	return []stats.Series{nonAnon, analysis, simulation}, nil, nil
}
