package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(a, a); d != 0 {
		t.Fatalf("D = %v for identical samples", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("D = %v for disjoint samples, want 1", d)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a = {1,3}, b = {2,4}: CDFs diverge by 0.5 between points.
	a := []float64{1, 3}
	b := []float64{2, 4}
	if d := KSStatistic(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("D = %v, want 0.5", d)
	}
}

func TestKSStatisticPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KSStatistic(nil, []float64{1})
}

func TestKSThreshold(t *testing.T) {
	thr, err := KSThreshold(100, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.358 * math.Sqrt(200.0/10000.0)
	if math.Abs(thr-want) > 1e-12 {
		t.Fatalf("threshold %v, want %v", thr, want)
	}
	if _, err := KSThreshold(100, 100, 0.42); err == nil {
		t.Fatal("accepted unsupported alpha")
	}
	if _, err := KSThreshold(0, 10, 0.05); err == nil {
		t.Fatal("accepted empty sample size")
	}
}

func TestKSAcceptsSameDistribution(t *testing.T) {
	s := rng.New(7)
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = s.Exp(0.5)
		b[i] = s.Exp(0.5)
	}
	same, d, err := KSSameDistribution(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("rejected identical exponential samples (D = %v)", d)
	}
}

func TestKSRejectsDifferentDistributions(t *testing.T) {
	s := rng.New(9)
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = s.Exp(0.5)
		b[i] = s.Exp(0.7) // 40% different rate
	}
	same, d, err := KSSameDistribution(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatalf("failed to reject different rates (D = %v)", d)
	}
}

func TestKSSameDistributionErrors(t *testing.T) {
	if _, _, err := KSSameDistribution(nil, []float64{1}, 0.05); err == nil {
		t.Fatal("accepted empty sample")
	}
	if _, _, err := KSSameDistribution([]float64{1}, []float64{2}, 0.42); err == nil {
		t.Fatal("accepted unsupported alpha")
	}
}

func BenchmarkKSStatistic(b *testing.B) {
	s := rng.New(1)
	a := make([]float64, 2000)
	c := make([]float64, 2000)
	for i := range a {
		a[i] = s.Exp(1)
		c[i] = s.Exp(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KSStatistic(a, c)
	}
}
