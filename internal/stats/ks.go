package stats

import (
	"fmt"
	"math"
	"sort"
)

// Two-sample Kolmogorov-Smirnov test, used by the cross-validation
// tests to show that the direct sampler and the full contact engine
// produce the *same delivery-time distribution*, not merely the same
// mean.

// KSStatistic returns the two-sample KS statistic
// D = sup_x |F_a(x) - F_b(x)| between the empirical CDFs of a and b.
// It panics if either sample is empty.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KS statistic of empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Evaluate the CDF gap just after each distinct value; ties
		// advance both sides together.
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// ksCritical maps significance levels to the c(alpha) coefficient of
// the large-sample KS threshold c(alpha) * sqrt((n+m)/(n*m)).
var ksCritical = map[float64]float64{
	0.10:  1.224,
	0.05:  1.358,
	0.01:  1.628,
	0.001: 1.949,
}

// KSThreshold returns the rejection threshold for the two-sample KS
// test at the given significance level (supported: 0.10, 0.05, 0.01,
// 0.001) and sample sizes.
func KSThreshold(n, m int, alpha float64) (float64, error) {
	c, ok := ksCritical[alpha]
	if !ok {
		return 0, fmt.Errorf("stats: unsupported KS significance level %v", alpha)
	}
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("stats: KS threshold needs positive sample sizes, got %d, %d", n, m)
	}
	return c * math.Sqrt(float64(n+m)/float64(n)/float64(m)), nil
}

// KSSameDistribution reports whether the two samples are consistent
// with a common distribution at the given significance level: true
// means the KS test does NOT reject equality.
func KSSameDistribution(a, b []float64, alpha float64) (bool, float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return false, 0, fmt.Errorf("stats: KS test needs non-empty samples")
	}
	d := KSStatistic(a, b)
	thr, err := KSThreshold(len(a), len(b), alpha)
	if err != nil {
		return false, d, err
	}
	return d <= thr, d, nil
}
