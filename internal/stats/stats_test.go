package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || !math.IsNaN(a.Mean()) || a.Variance() != 0 {
		t.Fatal("zero-value accumulator not empty")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 4*8/7.
	want := 4.0 * 8 / 7
	if math.Abs(a.Variance()-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", a.Variance(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("variance with one observation should be 0")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Fatal("min/max wrong for single observation")
	}
}

func TestAccumulatorAddBool(t *testing.T) {
	var a Accumulator
	for i := 0; i < 10; i++ {
		a.AddBool(i < 3)
	}
	if math.Abs(a.Mean()-0.3) > 1e-12 {
		t.Fatalf("mean = %v, want 0.3", a.Mean())
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		var a Accumulator
		for _, v := range xs {
			a.Add(v)
		}
		return math.Abs(a.Mean()-Mean(xs)) <= 1e-6*(1+math.Abs(Mean(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Accumulator
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 2))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	if s := a.Summarize().String(); s == "" {
		t.Fatal("empty summary string")
	}
}

// TestMeanEmpty pins the empty-input contract: the mean of nothing is
// NaN, never a silent 0 that an empty upstream result could hide
// behind. Callers that may legally see empty input must guard first.
func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatalf("Mean(nil) = %v, want NaN", Mean(nil))
	}
	if !math.IsNaN(Mean([]float64{})) {
		t.Fatalf("Mean([]) = %v, want NaN", Mean([]float64{}))
	}
}

// TestAccumulatorEmptyContract pins the full empty-accumulator
// behavior: Mean (and Summarize().Mean) are NaN; the spread statistics
// stay at their harmless zeros.
func TestAccumulatorEmptyContract(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) {
		t.Fatalf("empty Mean = %v, want NaN", a.Mean())
	}
	if a.Variance() != 0 || a.StdDev() != 0 || a.StdErr() != 0 || a.CI95() != 0 {
		t.Fatal("empty spread statistics should be 0")
	}
	if a.Min() != 0 || a.Max() != 0 {
		t.Fatal("empty min/max should be 0")
	}
	s := a.Summarize()
	if s.N != 0 || !math.IsNaN(s.Mean) {
		t.Fatalf("empty summary = %+v, want N=0 Mean=NaN", s)
	}
	// One observation restores a well-defined mean.
	a.Add(7)
	if a.Mean() != 7 {
		t.Fatalf("Mean after one Add = %v", a.Mean())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if v := Quantile(xs, 0.25); v != 2 {
		t.Fatalf("q25 = %v", v)
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF()
	if e.At(10) != 0 {
		t.Fatal("empty ECDF should be 0 everywhere")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		e.Observe(v)
	}
	e.ObserveCensored() // one never-delivered message
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct{ t, want float64 }{
		{0.5, 0}, {1, 0.2}, {2.5, 0.4}, {4, 0.8}, {100, 0.8},
	}
	for _, c := range cases {
		if got := e.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestECDFObserveAfterQuery(t *testing.T) {
	e := NewECDF()
	e.Observe(2)
	_ = e.At(1) // forces sort
	e.Observe(1)
	if got := e.At(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(1) after re-observe = %v, want 0.5", got)
	}
}

func TestECDFCurveMonotone(t *testing.T) {
	e := NewECDF()
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		e.Observe(v)
	}
	ts := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	curve := e.Curve(ts)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("ECDF not monotone at %v", ts[i])
		}
	}
	if curve[len(curve)-1] != 1 {
		t.Fatal("ECDF should reach 1 past the max")
	}
}

func TestEntropy(t *testing.T) {
	if v := Entropy([]float64{0.5, 0.5}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("Entropy(fair coin) = %v", v)
	}
	if v := Entropy([]float64{1, 0, 0}); v != 0 {
		t.Fatalf("Entropy(deterministic) = %v", v)
	}
	if v := Entropy([]float64{0.25, 0.25, 0.25, 0.25}); math.Abs(v-2) > 1e-12 {
		t.Fatalf("Entropy(4-uniform) = %v", v)
	}
}

func TestEntropyPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative probability")
		}
	}()
	Entropy([]float64{-0.1, 1.1})
}

func TestUniformEntropy(t *testing.T) {
	if UniformEntropy(1) != 0 || UniformEntropy(0) != 0 {
		t.Fatal("UniformEntropy of trivial sets should be 0")
	}
	if math.Abs(UniformEntropy(8)-3) > 1e-12 {
		t.Fatalf("UniformEntropy(8) = %v", UniformEntropy(8))
	}
}

func TestRuns(t *testing.T) {
	cases := []struct {
		bits []bool
		want []Run
	}{
		{nil, nil},
		{[]bool{true}, []Run{{true, 1}}},
		{[]bool{true, true, false, true}, []Run{{true, 2}, {false, 1}, {true, 1}}},
		{[]bool{false, false, false}, []Run{{false, 3}}},
	}
	for _, c := range cases {
		got := Runs(c.bits)
		if len(got) != len(c.want) {
			t.Fatalf("Runs(%v) = %v, want %v", c.bits, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Runs(%v) = %v, want %v", c.bits, got, c.want)
			}
		}
	}
}

func TestRunsTotalLength(t *testing.T) {
	f := func(bits []bool) bool {
		total := 0
		for _, r := range Runs(bits) {
			if r.Length <= 0 {
				return false
			}
			total += r.Length
		}
		return total == len(bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsAlternate(t *testing.T) {
	// Adjacent runs must alternate values.
	f := func(bits []bool) bool {
		rs := Runs(bits)
		for i := 1; i < len(rs); i++ {
			if rs[i].Value == rs[i-1].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumSquaredTrueRuns(t *testing.T) {
	// Paper's example: path 10010 -> runs of 1s: [1],[1] -> 1+1 = 2.
	bits := []bool{true, false, false, true, false}
	if got := SumSquaredTrueRuns(bits); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	// Paper's example: 01110 -> one run of 3 -> 9.
	bits = []bool{false, true, true, true, false}
	if got := SumSquaredTrueRuns(bits); got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	// Paper Sec. II-C: compromising v1,v2,v4 on a 4-hop path gives
	// bits 1101 -> 4+1 = 5 (traceable rate 5/16).
	bits = []bool{true, true, false, true}
	if got := SumSquaredTrueRuns(bits); got != 5 {
		t.Fatalf("got %d, want 5", got)
	}
}

func TestSeriesValidate(t *testing.T) {
	s := &Series{Name: "a"}
	s.Append(1, 2, 0.1)
	s.Append(2, 3, 0.2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Series{Name: "b", X: []float64{1}, Y: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched series validated")
	}
	badCI := &Series{Name: "c", X: []float64{1}, Y: []float64{1}, CI: []float64{1, 2}}
	if err := badCI.Validate(); err == nil {
		t.Fatal("mismatched CI validated")
	}
}

// TestSeriesValidateRejectsNaN pins the guard that makes an empty
// accumulator loud: appending its NaN mean to a series must fail
// validation with a message naming the likely cause, instead of
// surviving until JSON marshaling (which cannot encode NaN).
func TestSeriesValidateRejectsNaN(t *testing.T) {
	var empty Accumulator
	s := &Series{Name: "nan"}
	s.Append(1, empty.Mean(), empty.CI95())
	err := s.Validate()
	if err == nil {
		t.Fatal("series with NaN point validated")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("error %q does not mention NaN", err)
	}
	badX := &Series{Name: "nanx", X: []float64{math.NaN()}, Y: []float64{1}}
	if err := badX.Validate(); err == nil {
		t.Fatal("series with NaN x validated")
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(float64(i))
	}
}

func BenchmarkSumSquaredTrueRuns(b *testing.B) {
	bits := make([]bool, 64)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	for i := 0; i < b.N; i++ {
		_ = SumSquaredTrueRuns(bits)
	}
}
