// Package stats provides the descriptive statistics used by the
// experiment harness: streaming moment accumulators, confidence
// intervals, empirical CDFs (delivery-time to delivery-rate curves),
// Shannon entropy, and the run-length decomposition at the heart of the
// traceable-rate metric (Eq. 1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance (Welford). The zero
// value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(v float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = v, v
	} else {
		a.min = math.Min(a.min, v)
		a.max = math.Max(a.max, v)
	}
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

// AddBool incorporates an indicator observation (1 for true, 0 for
// false), convenient for success-rate estimation.
func (a *Accumulator) AddBool(b bool) {
	if b {
		a.Add(1)
	} else {
		a.Add(0)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or NaN if empty. NaN — not a silent
// zero — so an upstream empty-result bug cannot masquerade as a
// legitimate zero data point; callers that can validly be empty must
// guard with N() > 0 (Series.Validate rejects NaN points for the same
// reason).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval around the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Min returns the smallest observation, or 0 if empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if empty.
func (a *Accumulator) Max() float64 { return a.max }

// Summary is a value snapshot of an Accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize returns a snapshot of the accumulator. An empty
// accumulator summarizes with Mean = NaN (see Mean).
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), CI95: a.CI95(), Min: a.min, Max: a.max}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.3g (sd=%.3g, min=%.3g, max=%.3g)",
		s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice —
// never a silent 0, which would let an empty upstream result pass as a
// legitimate zero data point. Callers that may legally see an empty
// slice must check len(xs) first.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or
// out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function over observed
// values, with support for censored observations (values known only to
// exceed some bound, e.g. messages not delivered by the simulation
// horizon).
type ECDF struct {
	values   []float64
	censored int
	sorted   bool
}

// NewECDF returns an empty ECDF.
func NewECDF() *ECDF { return &ECDF{} }

// Observe records a realized value (e.g. a delivery time).
func (e *ECDF) Observe(v float64) {
	e.values = append(e.values, v)
	e.sorted = false
}

// ObserveCensored records an observation that never materialized within
// the horizon (e.g. an undelivered message); it contributes to the
// denominator at every evaluation point.
func (e *ECDF) ObserveCensored() { e.censored++ }

// N returns the total number of observations, censored included.
func (e *ECDF) N() int { return len(e.values) + e.censored }

// At returns the fraction of observations with value <= t. Censored
// observations count as "greater than any t".
func (e *ECDF) At(t float64) float64 {
	n := e.N()
	if n == 0 {
		return 0
	}
	if !e.sorted {
		sort.Float64s(e.values)
		e.sorted = true
	}
	idx := sort.SearchFloat64s(e.values, math.Nextafter(t, math.Inf(1)))
	return float64(idx) / float64(n)
}

// Curve evaluates the ECDF at each point in ts.
func (e *ECDF) Curve(ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = e.At(t)
	}
	return out
}

// Entropy returns the Shannon entropy (bits) of the distribution p.
// Entries that are zero contribute nothing; p need not be normalized
// exactly, but negative entries panic.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v < 0 {
			panic("stats: negative probability")
		}
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// UniformEntropy returns log2(n), the entropy of a uniform distribution
// over n outcomes; 0 for n <= 1.
func UniformEntropy(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// Run is a maximal block of consecutive equal bits.
type Run struct {
	Value  bool // the bit value of the block
	Length int  // number of consecutive positions
}

// Runs decomposes bits into maximal runs, in order. An empty input
// yields nil.
func Runs(bits []bool) []Run {
	if len(bits) == 0 {
		return nil
	}
	var out []Run
	cur := Run{Value: bits[0], Length: 1}
	for _, b := range bits[1:] {
		if b == cur.Value {
			cur.Length++
			continue
		}
		out = append(out, cur)
		cur = Run{Value: b, Length: 1}
	}
	return append(out, cur)
}

// SumSquaredTrueRuns returns the sum over maximal runs of true bits of
// the squared run length — the numerator of the traceable rate (Eq. 1).
func SumSquaredTrueRuns(bits []bool) int {
	total := 0
	for _, r := range Runs(bits) {
		if r.Value {
			total += r.Length * r.Length
		}
	}
	return total
}

// Series is a named sequence of (x, y) points with optional
// per-point confidence half-widths, the unit of figure output.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
	CI   []float64 `json:"ci,omitempty"` // optional; nil or same length as Y
}

// Append adds a point to the series.
func (s *Series) Append(x, y, ci float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.CI = append(s.CI, ci)
}

// Validate checks internal consistency. NaN points are rejected with
// an explicit error: they are what an empty accumulator's Mean looks
// like downstream (and JSON cannot encode them), so surfacing them at
// validation names the bug instead of failing at marshal time.
func (s *Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("stats: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	if s.CI != nil && len(s.CI) != len(s.Y) {
		return fmt.Errorf("stats: series %q has %d CI values and %d y values", s.Name, len(s.CI), len(s.Y))
	}
	for i := range s.Y {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
			return fmt.Errorf("stats: series %q has NaN at point %d (empty accumulator upstream?)", s.Name, i)
		}
	}
	return nil
}
