package bundle

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func sample() *Bundle {
	b := &Bundle{
		Expiry:    123.5,
		Group:     7,
		DeliverTo: -1,
		Data:      []byte("onion ciphertext bytes"),
	}
	copy(b.ID[:], "0123456789abcdef")
	return b
}

func TestRoundTripRelay(t *testing.T) {
	b := sample()
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != FrameSize(len(b.Data)) {
		t.Fatalf("frame size %d, want %d", len(frame), FrameSize(len(b.Data)))
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != b.ID || got.Expiry != b.Expiry || got.LastHop || got.Group != 7 || got.DeliverTo != -1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !bytes.Equal(got.Data, b.Data) {
		t.Fatal("payload mismatch")
	}
}

func TestRoundTripLastHop(t *testing.T) {
	b := sample()
	b.LastHop = true
	b.DeliverTo = 42
	b.Group = -1
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.LastHop || got.DeliverTo != 42 || got.Group != -1 {
		t.Fatalf("last hop fields: %+v", got)
	}
}

func TestUnmarshalDoesNotAliasFrame(t *testing.T) {
	b := sample()
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	frame[headerSize] ^= 0xFF
	if got.Data[0] == b.Data[0]^0xFF {
		t.Fatal("decoded payload aliases the frame buffer")
	}
}

func TestValidate(t *testing.T) {
	cases := map[string]func(*Bundle){
		"empty payload":       func(b *Bundle) { b.Data = nil },
		"oversize payload":    func(b *Bundle) { b.Data = make([]byte, MaxPayload+1) },
		"negative expiry":     func(b *Bundle) { b.Expiry = -1 },
		"NaN expiry":          func(b *Bundle) { b.Expiry = math.NaN() },
		"lasthop without dst": func(b *Bundle) { b.LastHop = true; b.DeliverTo = -1 },
		"relay without group": func(b *Bundle) { b.Group = -1 },
	}
	for name, mutate := range cases {
		b := sample()
		mutate(b)
		if _, err := b.Marshal(); err == nil {
			t.Errorf("%s: marshaled", name)
		}
	}
}

func TestEveryCorruptByteDetected(t *testing.T) {
	b := sample()
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	b := sample()
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 4, headerSize - 1, headerSize, len(frame) - 1} {
		if _, err := Unmarshal(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
	// Extension detected too.
	if _, err := Unmarshal(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Fatal("extended frame not detected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	b := sample()
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	copy(bad[0:4], "XXXX")
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), frame...)
	bad[4] = 99
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestHostileLengthField(t *testing.T) {
	b := sample()
	frame, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	// Claim a huge payload; must be rejected before any allocation.
	bad[38], bad[39], bad[40], bad[41] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(id [16]byte, payload []byte, group uint16, lastHop bool, deliver uint16, expiry uint32) bool {
		if len(payload) == 0 {
			payload = []byte{1}
		}
		b := &Bundle{ID: id, Expiry: float64(expiry), Data: payload, Group: -1, DeliverTo: -1}
		if lastHop {
			b.LastHop = true
			b.DeliverTo = int32(deliver)
		} else {
			b.Group = int32(group)
		}
		frame, err := b.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(frame)
		if err != nil {
			return false
		}
		return got.ID == b.ID && got.LastHop == b.LastHop &&
			got.Group == b.Group && got.DeliverTo == b.DeliverTo &&
			got.Expiry == b.Expiry && bytes.Equal(got.Data, b.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	bd := sample()
	bd.Data = make([]byte, 2048)
	b.SetBytes(int64(FrameSize(len(bd.Data))))
	for i := 0; i < b.N; i++ {
		if _, err := bd.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	bd := sample()
	bd.Data = make([]byte, 2048)
	frame, err := bd.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}
