package bundle

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte{0x01},
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for i, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean boundary: got %v, want io.EOF", err)
	}
}

func TestFrameBundlePayloadRoundTrip(t *testing.T) {
	frame, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, frame); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(got)
	if err != nil {
		t.Fatalf("bundle inside frame rejected: %v", err)
	}
	if b.ID != sample().ID {
		t.Fatal("bundle identity lost in framing")
	}
}

func TestFrameWriteRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if buf.Len() != 0 {
		t.Fatal("rejected writes left bytes on the stream")
	}
}

// TestFrameTornReads covers every cut position of a small frame: a cut
// inside the prefix and a cut inside the payload must both classify as
// ErrTruncated, never ErrTampered, never a panic.
func TestFrameTornReads(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("torn transfer classification")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestFrameHostilePrefix(t *testing.T) {
	cases := []struct {
		name   string
		prefix uint32
	}{
		{"zero length", 0},
		{"over limit", MaxFrame + 1},
		{"max uint32", 0xFFFFFFFF},
	}
	for _, tc := range cases {
		var raw [FramePrefixSize]byte
		binary.BigEndian.PutUint32(raw[:], tc.prefix)
		_, err := ReadFrame(bytes.NewReader(raw[:]))
		if !errors.Is(err, ErrTampered) {
			t.Fatalf("%s: got %v, want ErrTampered", tc.name, err)
		}
	}
	// A hostile prefix must be rejected before the payload allocation:
	// reading from a stream that declares 4 GiB but carries 4 bytes
	// must not attempt to allocate 4 GiB. Covered implicitly — the
	// max-uint32 case above returned without OOM.
}

func TestFrameMidHeaderSplit(t *testing.T) {
	// A stream cut inside the length prefix itself (the "mid-header
	// split" a SIGKILLed peer produces) is a truncation.
	for cut := 1; cut < FramePrefixSize; cut++ {
		var raw [FramePrefixSize]byte
		binary.BigEndian.PutUint32(raw[:], 16)
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}
