// Package bundle implements the wire format of the Bundle layer, where
// DTN routing lives (Sec. I: "a DTN routing is implemented in the
// Bundle layer which is located between the transport and application
// layers"). A bundle frames one onion ciphertext together with the
// metadata a custodian needs to forward it: message ID, deadline, and
// either the onion group that can peel the current layer or — after
// the last relay layer — the destination.
//
// Layout (big endian):
//
//	offset size  field
//	0      4     magic "ODTN"
//	4      1     version (1)
//	5      1     flags (bit 0: last hop)
//	6      16    message ID
//	22     8     expiry (float64 bits; 0 = none)
//	30     4     group ID (uint32; 0xFFFFFFFF when last hop)
//	34     4     deliver-to node (uint32; 0xFFFFFFFF unless last hop)
//	38     4     payload length
//	42     n     payload (onion ciphertext)
//	42+n   4     CRC-32C over bytes [0, 42+n)
//
// The CRC detects transport corruption of the frame itself; the onion
// payload is additionally protected end to end by AEAD, so a frame
// that passes the CRC but carries tampered ciphertext is still
// rejected at decryption.
package bundle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the current wire format version.
const Version = 1

// HeaderSize and TrailerSize are the fixed framing overheads around the
// onion payload. They are exported so fault injection and tests can
// construct boundary-exact torn frames (e.g. a frame cut at precisely
// the header/payload boundary) without duplicating the layout.
const (
	HeaderSize  = 4 + 1 + 1 + 16 + 8 + 4 + 4 + 4
	TrailerSize = 4
)

const (
	magic       = "ODTN"
	headerSize  = HeaderSize
	trailerSize = TrailerSize
	noneID      = 0xFFFFFFFF

	flagLastHop = 1 << 0
)

// Unmarshal failures carry one of these sentinels (via errors.Is) so
// custodians can distinguish a torn transfer — worth an immediate
// retransmission, the peer is still in contact — from a damaged or
// hostile frame, which is dropped gracefully and re-offered only at a
// later contact.
var (
	// ErrTruncated marks a frame shorter than its declared length: the
	// transfer aborted mid-bundle.
	ErrTruncated = errors.New("bundle: truncated frame")
	// ErrTampered marks a complete-looking frame that fails
	// verification: bad magic, version skew, hostile length field,
	// trailing garbage, or checksum mismatch.
	ErrTampered = errors.New("bundle: tampered frame")
)

// MaxPayload bounds a bundle's onion size (16 MiB), protecting
// receivers from hostile length fields.
const MaxPayload = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Bundle is one framed onion in custody.
type Bundle struct {
	ID      [16]byte
	Expiry  float64 // absolute deadline; 0 = never expires
	LastHop bool
	// Group is the onion group whose members can peel the payload's
	// outer layer; meaningful when !LastHop.
	Group int32
	// DeliverTo is the final destination; meaningful when LastHop.
	DeliverTo int32
	// Data is the onion ciphertext at its current layer.
	Data []byte
}

// Validate checks semantic invariants before marshaling.
func (b *Bundle) Validate() error {
	switch {
	case len(b.Data) == 0:
		return errors.New("bundle: empty payload")
	case len(b.Data) > MaxPayload:
		return fmt.Errorf("bundle: payload %d exceeds limit %d", len(b.Data), MaxPayload)
	case b.Expiry < 0 || math.IsNaN(b.Expiry) || math.IsInf(b.Expiry, 0):
		return fmt.Errorf("bundle: invalid expiry %v", b.Expiry)
	case b.LastHop && b.DeliverTo < 0:
		return errors.New("bundle: last hop without destination")
	case !b.LastHop && b.Group < 0:
		return errors.New("bundle: relay hop without group")
	}
	return nil
}

// Marshal encodes the bundle into the wire format.
func (b *Bundle) Marshal() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, headerSize+len(b.Data)+trailerSize)
	copy(out[0:4], magic)
	out[4] = Version
	if b.LastHop {
		out[5] |= flagLastHop
	}
	copy(out[6:22], b.ID[:])
	binary.BigEndian.PutUint64(out[22:30], math.Float64bits(b.Expiry))
	group, deliver := uint32(noneID), uint32(noneID)
	if b.LastHop {
		deliver = uint32(b.DeliverTo)
	} else {
		group = uint32(b.Group)
	}
	binary.BigEndian.PutUint32(out[30:34], group)
	binary.BigEndian.PutUint32(out[34:38], deliver)
	binary.BigEndian.PutUint32(out[38:42], uint32(len(b.Data)))
	copy(out[headerSize:], b.Data)
	sum := crc32.Checksum(out[:headerSize+len(b.Data)], castagnoli)
	binary.BigEndian.PutUint32(out[headerSize+len(b.Data):], sum)
	return out, nil
}

// Unmarshal decodes and verifies a wire frame. Any corruption —
// truncation, bad magic, version skew, length mismatch, checksum
// failure — yields an error, so a custodian never accepts a damaged
// frame and the sender retains custody.
func Unmarshal(frame []byte) (*Bundle, error) {
	if len(frame) < headerSize+trailerSize {
		// Shorter than any legal frame — includes the boundary case of
		// a transfer torn at exactly the end of the header, which must
		// be rejected even though the whole header parses cleanly.
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(frame), headerSize+trailerSize)
	}
	if string(frame[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrTampered)
	}
	if frame[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrTampered, frame[4])
	}
	payloadLen := binary.BigEndian.Uint32(frame[38:42])
	if payloadLen > MaxPayload {
		return nil, fmt.Errorf("%w: declared payload %d exceeds limit", ErrTampered, payloadLen)
	}
	want := headerSize + int(payloadLen) + trailerSize
	if len(frame) < want {
		return nil, fmt.Errorf("%w: frame length %d, want %d", ErrTruncated, len(frame), want)
	}
	if len(frame) > want {
		return nil, fmt.Errorf("%w: frame length %d, want %d", ErrTampered, len(frame), want)
	}
	body := frame[:headerSize+int(payloadLen)]
	sum := binary.BigEndian.Uint32(frame[headerSize+int(payloadLen):])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrTampered)
	}

	b := &Bundle{
		LastHop: frame[5]&flagLastHop != 0,
		Expiry:  math.Float64frombits(binary.BigEndian.Uint64(frame[22:30])),
		Data:    append([]byte(nil), frame[headerSize:headerSize+int(payloadLen)]...),
	}
	copy(b.ID[:], frame[6:22])
	group := binary.BigEndian.Uint32(frame[30:34])
	deliver := binary.BigEndian.Uint32(frame[34:38])
	if b.LastHop {
		if deliver == noneID {
			return nil, errors.New("bundle: last hop without destination")
		}
		b.DeliverTo = int32(deliver)
		b.Group = -1
	} else {
		if group == noneID {
			return nil, errors.New("bundle: relay hop without group")
		}
		b.Group = int32(group)
		b.DeliverTo = -1
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// FrameSize returns the wire size for a payload of n bytes.
func FrameSize(n int) int { return headerSize + n + trailerSize }
