package bundle

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestTruncationClassified pins the error taxonomy the node layer
// relies on for its retry decision: a frame shorter than declared is
// ErrTruncated (retransmit in-contact), everything else that fails
// verification is ErrTampered (drop gracefully, re-offer later).
func TestTruncationClassified(t *testing.T) {
	frame, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Every possible tear point — including the exact header boundary,
	// where the header itself parses cleanly and only the length
	// bookkeeping can save the receiver.
	for keep := 0; keep < len(frame); keep++ {
		_, err := Unmarshal(fault.Truncate(frame, keep))
		if err == nil {
			t.Fatalf("frame torn at %d bytes accepted", keep)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("frame torn at %d bytes: %v, want ErrTruncated", keep, err)
		}
		if errors.Is(err, ErrTampered) {
			t.Fatalf("frame torn at %d bytes classified as both truncated and tampered", keep)
		}
	}
}

// TestHeaderBoundaryTear is the regression for the satellite fix: a
// frame cut at exactly HeaderSize bytes — complete header, zero
// payload bytes, no trailer — must be rejected as truncated.
func TestHeaderBoundaryTear(t *testing.T) {
	frame, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	torn := fault.Truncate(frame, HeaderSize)
	if len(torn) != HeaderSize {
		t.Fatalf("tear kept %d bytes, want %d", len(torn), HeaderSize)
	}
	b, err := Unmarshal(torn)
	if err == nil {
		t.Fatalf("header-boundary tear accepted as %+v", b)
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("header-boundary tear: %v, want ErrTruncated", err)
	}
	// The same holds with the trailer missing but payload intact.
	noTrailer := fault.Truncate(frame, len(frame)-TrailerSize)
	if _, err := Unmarshal(noTrailer); !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing trailer: %v, want ErrTruncated", err)
	}
}

func TestTamperClassified(t *testing.T) {
	frame, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"flipped payload byte": fault.Flip(frame, HeaderSize),
		"flipped header byte":  fault.Flip(frame, 6),
		"flipped trailer byte": fault.Flip(frame, len(frame)-1),
		"bad magic":            fault.Flip(frame, 0),
		"version skew":         fault.Flip(frame, 4),
		"trailing garbage":     append(append([]byte(nil), frame...), 0xAB),
	}
	for name, bad := range cases {
		_, err := Unmarshal(bad)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrTampered) {
			t.Errorf("%s: %v, want ErrTampered", name, err)
		}
		if errors.Is(err, ErrTruncated) {
			t.Errorf("%s: classified as truncated", name)
		}
	}
}

// TestEveryFlipClassifiedTampered extends the flip-every-byte property
// with the classification the retry logic depends on: a complete but
// damaged frame is never mistaken for a torn one.
func TestEveryFlipClassifiedTampered(t *testing.T) {
	frame, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		_, err := Unmarshal(fault.Flip(frame, i))
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if i >= 38 && i < 42 {
			// A flip inside the length field inflating the declared
			// payload is indistinguishable on the wire from a tear;
			// either classification is sound as long as it's rejected.
			if !errors.Is(err, ErrTampered) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("flip in length field at byte %d unclassified: %v", i, err)
			}
			continue
		}
		if !errors.Is(err, ErrTampered) {
			t.Fatalf("flip at byte %d: %v, want ErrTampered", i, err)
		}
	}
}
