package bundle

// Stream framing: bundles travel over byte-stream transports (the TCP
// runtime in internal/cluster) as length-prefixed frames, so a receiver
// can delimit messages without trusting the peer to behave. The prefix
// is 4 bytes big endian; the payload is opaque to this layer (the
// cluster protocol puts a type byte plus either JSON or a marshaled
// bundle inside).
//
// Framing failures reuse the PR 2 damage taxonomy so socket tears get
// the same treatment as in-memory ones: a read that ends mid-prefix or
// mid-payload is ErrTruncated (the connection died — the sender keeps
// custody and re-offers at a later contact), while a hostile or
// corrupted length prefix is ErrTampered (drop the connection, do not
// retry).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FramePrefixSize is the size of the length prefix.
const FramePrefixSize = 4

// MaxFrame bounds a stream frame's payload: the largest legal bundle
// frame plus slack for the cluster protocol's envelope (type byte, hop
// counter) and control messages. Anything larger is a hostile prefix.
const MaxFrame = HeaderSize + MaxPayload + TrailerSize + 64

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return errors.New("bundle: empty frame payload")
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("bundle: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	var prefix [FramePrefixSize]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("bundle: write frame prefix: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("bundle: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r. It returns io.EOF
// only at a clean frame boundary (no bytes read); a stream that ends
// mid-prefix or mid-payload yields ErrTruncated, and a prefix declaring
// zero or more than MaxFrame bytes yields ErrTampered before any
// payload allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var prefix [FramePrefixSize]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: stream ended mid-prefix: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrTampered)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: declared frame %d exceeds limit %d", ErrTampered, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: stream ended mid-frame (%v)", ErrTruncated, err)
	}
	return payload, nil
}
