package bundle

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/fault"
	"repro/internal/rng"
)

// FuzzUnmarshal hammers the wire decoder with arbitrary bytes: it must
// never panic, and any frame it accepts must survive a re-marshal
// round trip.
func FuzzUnmarshal(f *testing.F) {
	good, err := sample().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("ODTN"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	truncated := append([]byte(nil), good[:len(good)-3]...)
	f.Add(truncated)

	// Fault-layer-produced shapes: the exact frames the injection layer
	// puts on the wire, so the fuzzer's corpus covers real injected
	// damage, not just synthetic mutations.
	f.Add(fault.Truncate(good, HeaderSize))            // torn at the header boundary
	f.Add(fault.Truncate(good, len(good)-TrailerSize)) // trailer ripped off
	plan := fault.NewPlan(fault.Uniform(1), rng.New(1).Split("faults"))
	for i := 0; i < 8; i++ {
		h := plan.Handoff(len(good))
		switch {
		case h.Truncate:
			f.Add(fault.Truncate(good, h.Cut))
		case h.Corrupt:
			f.Add(fault.Flip(good, h.Flip))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			return
		}
		frame, err := b.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		b2, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("re-marshaled frame rejected: %v", err)
		}
		if b2.ID != b.ID || b2.LastHop != b.LastHop || !bytes.Equal(b2.Data, b.Data) {
			t.Fatal("round trip after fuzz accept diverged")
		}
	})
}

// FuzzFrameDecode hammers the TCP length-framing decoder with
// arbitrary byte streams: it must never panic or over-allocate, every
// error must classify as io.EOF (clean boundary), ErrTruncated (torn
// stream), or ErrTampered (hostile prefix), and every accepted payload
// must survive a re-frame round trip. The corpus is seeded from the
// same torn/flipped shapes the PR 2 fault layer produces, wrapped in
// frames, plus mid-prefix splits and oversized-length prefixes.
func FuzzFrameDecode(f *testing.F) {
	good, err := sample().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	framed := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(framed(good))
	f.Add(append(framed(good), framed([]byte{0x7F})...)) // back-to-back frames
	f.Add([]byte{})
	f.Add([]byte{0x00})                       // mid-prefix split
	f.Add(framed(good)[:FramePrefixSize+3])   // mid-header split
	f.Add(framed(good)[:len(framed(good))-5]) // torn payload
	oversize := make([]byte, FramePrefixSize)
	binary.BigEndian.PutUint32(oversize, MaxFrame+1)
	f.Add(oversize)                                    // hostile length prefix
	f.Add(append([]byte(nil), 0xFF, 0xFF, 0xFF, 0xFF)) // max uint32 prefix

	// Fault-layer-produced damage, framed: the exact shapes a torn or
	// flipped socket write would deliver.
	f.Add(framed(fault.Truncate(good, HeaderSize)))
	plan := fault.NewPlan(fault.Uniform(1), rng.New(1).Split("faults"))
	for i := 0; i < 8; i++ {
		h := plan.Handoff(len(good))
		switch {
		case h.Truncate:
			if h.Cut > 0 {
				f.Add(framed(fault.Truncate(good, h.Cut)))
			}
		case h.Corrupt:
			f.Add(framed(fault.Flip(good, h.Flip)))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTampered) {
					t.Fatalf("unclassified frame error: %v", err)
				}
				return
			}
			if len(payload) == 0 || len(payload) > MaxFrame {
				t.Fatalf("accepted payload of %d bytes", len(payload))
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, payload); err != nil {
				t.Fatalf("accepted payload failed to re-frame: %v", err)
			}
			again, err := ReadFrame(&buf)
			if err != nil || !bytes.Equal(again, payload) {
				t.Fatalf("re-framed payload diverged: %v", err)
			}
		}
	})
}
