package bundle

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/rng"
)

// FuzzUnmarshal hammers the wire decoder with arbitrary bytes: it must
// never panic, and any frame it accepts must survive a re-marshal
// round trip.
func FuzzUnmarshal(f *testing.F) {
	good, err := sample().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("ODTN"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	truncated := append([]byte(nil), good[:len(good)-3]...)
	f.Add(truncated)

	// Fault-layer-produced shapes: the exact frames the injection layer
	// puts on the wire, so the fuzzer's corpus covers real injected
	// damage, not just synthetic mutations.
	f.Add(fault.Truncate(good, HeaderSize))            // torn at the header boundary
	f.Add(fault.Truncate(good, len(good)-TrailerSize)) // trailer ripped off
	plan := fault.NewPlan(fault.Uniform(1), rng.New(1).Split("faults"))
	for i := 0; i < 8; i++ {
		h := plan.Handoff(len(good))
		switch {
		case h.Truncate:
			f.Add(fault.Truncate(good, h.Cut))
		case h.Corrupt:
			f.Add(fault.Flip(good, h.Flip))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			return
		}
		frame, err := b.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		b2, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("re-marshaled frame rejected: %v", err)
		}
		if b2.ID != b.ID || b2.LastHop != b.LastHop || !bytes.Equal(b2.Data, b.Data) {
			t.Fatal("round trip after fuzz accept diverged")
		}
	})
}
